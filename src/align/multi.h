// Multiple-network alignment (the extension IsoRankN and GWL advertise,
// paper §3.1/§3.6): aligns k graphs jointly by star composition — every
// graph is aligned pairwise to a reference, and cross-graph correspondences
// are obtained by composing through the reference.
//
// This is the standard reduction used by multi-alignment systems when the
// pairwise aligner is a black box; it inherits the pairwise method's quality
// and adds no hyperparameters.
#ifndef GRAPHALIGN_ALIGN_MULTI_H_
#define GRAPHALIGN_ALIGN_MULTI_H_

#include <vector>

#include "align/aligner.h"

namespace graphalign {

struct MultiAlignmentResult {
  // Index of the reference graph (the largest by default).
  int reference = 0;
  // to_reference[g][u] = reference node aligned with node u of graph g
  // (identity for the reference graph itself; -1 if unmatched).
  std::vector<Alignment> to_reference;
};

// Aligns all graphs to a common reference with `aligner` + `method`.
// `reference` < 0 selects the largest graph. Requires >= 2 graphs.
Result<MultiAlignmentResult> AlignMultiple(const std::vector<Graph>& graphs,
                                           Aligner* aligner,
                                           AssignmentMethod method,
                                           int reference = -1);

// Correspondence from graph `from` to graph `to`, composed through the
// reference: f = to_ref[to]^-1 ∘ to_ref[from]. Unresolvable nodes get -1.
Result<Alignment> ComposeAlignment(const MultiAlignmentResult& result,
                                   const std::vector<Graph>& graphs, int from,
                                   int to);

// Node clusters ("functional orthologs" in IsoRankN terms): for each
// reference node, the list of (graph, node) pairs mapped onto it.
std::vector<std::vector<std::pair<int, int>>> AlignmentClusters(
    const MultiAlignmentResult& result, const std::vector<Graph>& graphs);

}  // namespace graphalign

#endif  // GRAPHALIGN_ALIGN_MULTI_H_
