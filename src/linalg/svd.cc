#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/failpoint.h"

namespace graphalign {

namespace {

// One-sided Jacobi on a tall (m >= n) matrix: rotates column pairs of `a`
// until all pairs are orthogonal; accumulates rotations into `v`. Each
// column-pair rotation costs O(m); the checker is polled per pair.
Status JacobiSweep(DenseMatrix* a_io, DenseMatrix* v_io,
                   DeadlineChecker* checker, bool* converged) {
  DenseMatrix& a = *a_io;
  DenseMatrix& v = *v_io;
  const int m = a.rows();
  const int n = a.cols();
  *converged = true;
  for (int p = 0; p < n - 1; ++p) {
    for (int q = p + 1; q < n; ++q) {
      GA_RETURN_IF_EXPIRED(*checker, "Svd");
      double app = 0.0, aqq = 0.0, apq = 0.0;
      for (int i = 0; i < m; ++i) {
        const double x = a(i, p);
        const double y = a(i, q);
        app += x * x;
        aqq += y * y;
        apq += x * y;
      }
      if (std::fabs(apq) <= 1e-15 * std::sqrt(app * aqq) || apq == 0.0) {
        continue;
      }
      *converged = false;
      const double tau = (aqq - app) / (2.0 * apq);
      const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                       (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
      const double c = 1.0 / std::sqrt(1.0 + t * t);
      const double s = c * t;
      for (int i = 0; i < m; ++i) {
        const double x = a(i, p);
        const double y = a(i, q);
        a(i, p) = c * x - s * y;
        a(i, q) = s * x + c * y;
      }
      for (int i = 0; i < n; ++i) {
        const double x = v(i, p);
        const double y = v(i, q);
        v(i, p) = c * x - s * y;
        v(i, q) = s * x + c * y;
      }
    }
  }
  return Status::Ok();
}

// Largest |<a_p, a_q>| / (|a_p| |a_q|) over pairs of *significant* columns:
// the residual non-orthogonality left after the sweeps. Columns whose norm is
// below 1e-12 of the largest are numerically zero — their singular values
// round to 0 and their directions are noise (rank-deficient inputs leave such
// columns at scales like 1e-160, where the Gram products underflow and the
// rotations can never orthogonalize them) — so they are excluded.
double MaxRelativeOffDiagonal(const DenseMatrix& a) {
  const int m = a.rows();
  const int n = a.cols();
  std::vector<double> norm(n, 0.0);
  double max_norm = 0.0;
  for (int j = 0; j < n; ++j) {
    double s = 0.0;
    for (int i = 0; i < m; ++i) s += a(i, j) * a(i, j);
    norm[j] = std::sqrt(s);
    max_norm = std::max(max_norm, norm[j]);
  }
  const double floor = 1e-12 * max_norm;
  double worst = 0.0;
  for (int p = 0; p < n - 1; ++p) {
    if (norm[p] <= floor) continue;
    for (int q = p + 1; q < n; ++q) {
      if (norm[q] <= floor) continue;
      double apq = 0.0;
      for (int i = 0; i < m; ++i) apq += a(i, p) * a(i, q);
      worst = std::max(worst, std::fabs(apq) / (norm[p] * norm[q]));
    }
  }
  return worst;
}

Result<SvdResult> SvdTall(DenseMatrix a, const Deadline& deadline) {
  const int m = a.rows();
  const int n = a.cols();
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      if (!std::isfinite(a(i, j))) {
        return Status::InvalidArgument("Svd: non-finite input");
      }
    }
  }
  GA_FAILPOINT_STATUS(
      "linalg.svd.no-converge",
      Status::Numerical("Svd: Jacobi sweeps exhausted without convergence"));
  DenseMatrix v = DenseMatrix::Identity(n);
  DeadlineChecker checker(deadline, /*stride=*/64);
  bool converged = false;
  for (int sweep = 0; sweep < 60 && !converged; ++sweep) {
    GA_RETURN_IF_ERROR(JacobiSweep(&a, &v, &checker, &converged));
  }
  if (!converged) {
    // The per-rotation threshold (1e-15, relative) is tighter than what
    // downstream consumers need, so sweeps routinely end with rotations
    // still firing on an already-orthogonal-for-all-practical-purposes
    // basis. Accept that; only a factorization with *meaningful* residual
    // non-orthogonality — previously returned silently — is surfaced as a
    // recoverable numerical failure for callers to degrade on.
    if (MaxRelativeOffDiagonal(a) > 1e-8) {
      return Status::Numerical(
          "Svd: Jacobi sweeps exhausted without convergence");
    }
  }
  // Singular values are the column norms of the rotated A.
  std::vector<double> sigma(n);
  for (int j = 0; j < n; ++j) {
    double s = 0.0;
    for (int i = 0; i < m; ++i) s += a(i, j) * a(i, j);
    sigma[j] = std::sqrt(s);
  }
  // Order descending.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int x, int y) { return sigma[x] > sigma[y]; });

  SvdResult res;
  res.u = DenseMatrix(m, n);
  res.v = DenseMatrix(n, n);
  res.singular_values.resize(n);
  for (int j = 0; j < n; ++j) {
    const int src = order[j];
    res.singular_values[j] = sigma[src];
    if (sigma[src] > 0.0) {
      for (int i = 0; i < m; ++i) res.u(i, j) = a(i, src) / sigma[src];
    }
    for (int i = 0; i < n; ++i) res.v(i, j) = v(i, src);
  }
  return res;
}

}  // namespace

Result<SvdResult> Svd(const DenseMatrix& a, const Deadline& deadline) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("Svd: empty matrix");
  }
  if (a.rows() >= a.cols()) return SvdTall(a, deadline);
  // Wide matrix: factor the transpose and swap U/V.
  GA_ASSIGN_OR_RETURN(SvdResult t, SvdTall(a.Transposed(), deadline));
  SvdResult res;
  res.u = std::move(t.v);
  res.v = std::move(t.u);
  res.singular_values = std::move(t.singular_values);
  return res;
}

Result<DenseMatrix> PseudoInverse(const DenseMatrix& a, double rcond,
                                  const Deadline& deadline) {
  GA_ASSIGN_OR_RETURN(SvdResult svd, Svd(a, deadline));
  const double cutoff =
      svd.singular_values.empty() ? 0.0 : rcond * svd.singular_values[0];
  const int r = static_cast<int>(svd.singular_values.size());
  // pinv(A) = V * diag(1/sigma) * U^T.
  DenseMatrix vs = svd.v;  // n x r
  for (int j = 0; j < r; ++j) {
    const double s = svd.singular_values[j];
    const double inv = s > cutoff ? 1.0 / s : 0.0;
    for (int i = 0; i < vs.rows(); ++i) vs(i, j) *= inv;
  }
  return MultiplyABt(vs, svd.u);
}

Result<QrResult> ThinQr(const DenseMatrix& a, double tol,
                        const Deadline& deadline) {
  const int m = a.rows();
  const int n = a.cols();
  if (m == 0 || n == 0) return Status::InvalidArgument("ThinQr: empty matrix");
  DeadlineChecker checker(deadline, /*stride=*/16);
  std::vector<std::vector<double>> q_cols;
  std::vector<std::vector<double>> r_rows;  // Row i of R (length n).
  double max_norm = 0.0;
  for (int j = 0; j < n; ++j) {
    std::vector<double> v = a.Col(j);
    max_norm = std::max(max_norm, Norm2(v));
  }
  const double cutoff = std::max(tol * max_norm, 1e-300);
  for (int j = 0; j < n; ++j) {
    GA_RETURN_IF_EXPIRED(checker, "ThinQr");
    std::vector<double> v = a.Col(j);
    std::vector<double> coeffs(q_cols.size());
    // Two MGS passes for numerical robustness.
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i < q_cols.size(); ++i) {
        const double c = Dot(v, q_cols[i]);
        coeffs[i] += c;
        Axpy(-c, q_cols[i], &v);
      }
    }
    const double norm = Norm2(v);
    for (size_t i = 0; i < q_cols.size(); ++i) r_rows[i][j] = coeffs[i];
    if (norm > cutoff) {
      for (double& x : v) x /= norm;
      q_cols.push_back(std::move(v));
      r_rows.emplace_back(n, 0.0);
      r_rows.back()[j] = norm;
    }
  }
  const int r = static_cast<int>(q_cols.size());
  QrResult res;
  res.q = DenseMatrix(m, r);
  res.r = DenseMatrix(r, n);
  for (int i = 0; i < r; ++i) {
    res.q.SetCol(i, q_cols[i]);
    for (int j = 0; j < n; ++j) res.r(i, j) = r_rows[i][j];
  }
  return res;
}

Result<DenseMatrix> ProcrustesRotation(const DenseMatrix& a,
                                       const DenseMatrix& b,
                                       const Deadline& deadline) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return Status::InvalidArgument("Procrustes: shape mismatch");
  }
  GA_ASSIGN_OR_RETURN(SvdResult svd, Svd(MultiplyAtB(a, b), deadline));
  // Q = U V^T.
  return MultiplyABt(svd.u, svd.v);
}

}  // namespace graphalign
