// Bounds-checked little-endian (de)serialization primitives.
//
// ByteWriter/ByteReader started life inside the server protocol
// (server/protocol.h) and moved here when the durable job journal
// (src/jobs) needed the same total-decoding discipline without pulling the
// whole protocol in: every component that persists or ships bytes — GAF1
// payloads, the cache log, the job journal — encodes with the writer and
// decodes with the reader, whose every getter returns false (and poisons
// the reader) on underflow so decoders can chain reads and check once.
#ifndef GRAPHALIGN_COMMON_WIRE_H_
#define GRAPHALIGN_COMMON_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace graphalign {

class ByteWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void F64(double v);
  // u32 length followed by the raw bytes.
  void Str(std::string_view s);

  std::string Take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

// Every getter returns false (and leaves the reader poisoned) on underflow,
// so decoders can chain reads and check once.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  bool U8(uint8_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool I32(int32_t* v);
  bool F64(double* v);
  // Reads a u32-length-prefixed string of at most max_len bytes.
  bool Str(std::string* s, size_t max_len);

  bool failed() const { return failed_; }
  bool AtEnd() const { return !failed_ && pos_ == bytes_.size(); }

 private:
  bool Take(size_t n, const char** p);

  std::string_view bytes_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_COMMON_WIRE_H_
