#include "graph/io.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/failpoint.h"

namespace graphalign {

namespace {

Status ParseError(const std::string& path, int line_no,
                  const std::string& message) {
  return Status::InvalidArgument(path + ":" + std::to_string(line_no) + ": " +
                                 message);
}

struct EdgeKeyHash {
  size_t operator()(const std::pair<long long, long long>& e) const {
    const uint64_t a = static_cast<uint64_t>(e.first);
    const uint64_t b = static_cast<uint64_t>(e.second);
    // Splitmix-style combine; ids are already canonicalised (min, max).
    uint64_t h = a * 0x9E3779B97F4A7C15ull ^ (b + 0x9E3779B97F4A7C15ull +
                                              (a << 6) + (a >> 2));
    return static_cast<size_t>(h);
  }
};

}  // namespace

Result<Graph> ReadEdgeList(const std::string& path, int num_nodes,
                           LoadStats* stats) {
  GA_FAILPOINT_STATUS("graph.io.read.error",
                      Status::Internal("read failed for " + path));
  LoadStats local;
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::vector<std::pair<long long, long long>> raw_edges;
  // First line each canonical (min, max) edge appeared on, to name both
  // offenders when a duplicate shows up.
  std::unordered_map<std::pair<long long, long long>, int, EdgeKeyHash>
      first_seen;
  long long max_id = -1;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    // Parse exactly two integer ids with strtoll so that overflow (ERANGE)
    // is distinguishable from a malformed line, then insist the rest of the
    // line is blank: silently ignoring a third column would misread
    // weighted edge lists as unweighted ones.
    const char* cursor = line.c_str();
    long long ids[2];
    for (int k = 0; k < 2; ++k) {
      char* end = nullptr;
      errno = 0;
      ids[k] = std::strtoll(cursor, &end, 10);
      if (end == cursor) {
        return ParseError(path, line_no,
                          "malformed edge line (expected two integer ids): '" +
                              line + "'");
      }
      if (errno == ERANGE) {
        return ParseError(path, line_no, "node id out of range: '" + line +
                                             "'");
      }
      cursor = end;
    }
    while (*cursor == ' ' || *cursor == '\t' || *cursor == '\r') ++cursor;
    if (*cursor != '\0') {
      return ParseError(path, line_no,
                        "trailing data after edge (expected two integer "
                        "ids): '" +
                            line + "'");
    }
    const long long u = ids[0], v = ids[1];
    if (u < 0 || v < 0) {
      return ParseError(path, line_no, "negative node id: '" + line + "'");
    }
    if (u == v) {
      // Dropped, as the paper's loaders do — but counted, not silent.
      ++local.self_loops_dropped;
      continue;
    }
    const std::pair<long long, long long> key =
        u < v ? std::make_pair(u, v) : std::make_pair(v, u);
    auto [it, inserted] = first_seen.emplace(key, line_no);
    if (!inserted) {
      return ParseError(path, line_no,
                        "duplicate edge " + std::to_string(u) + " " +
                            std::to_string(v) + " (first seen at line " +
                            std::to_string(it->second) + ")");
    }
    raw_edges.emplace_back(u, v);
    max_id = std::max({max_id, u, v});
  }
  if (in.bad()) return Status::Internal("read failed for " + path);
  std::vector<Edge> edges;
  edges.reserve(raw_edges.size());
  int total_nodes;
  if (max_id < 50'000'000) {
    // Dense id space: ids are kept verbatim so that mapping/ground-truth
    // files written against the same graph stay consistent across reloads.
    for (const auto& [u, v] : raw_edges) {
      edges.push_back({static_cast<int>(u), static_cast<int>(v)});
    }
    total_nodes = static_cast<int>(max_id + 1);
  } else {
    // Sparse id space (e.g. hash-like ids): compact by first appearance.
    std::unordered_map<long long, int> id_map;
    int next_id = 0;
    auto intern = [&](long long raw) {
      auto [it, inserted] = id_map.emplace(raw, next_id);
      if (inserted) ++next_id;
      return it->second;
    };
    for (const auto& [u, v] : raw_edges) {
      edges.push_back({intern(u), intern(v)});
    }
    total_nodes = next_id;
  }
  if (stats != nullptr) *stats = local;
  return Graph::FromEdges(std::max(num_nodes, total_nodes), edges);
}

Status WriteEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot write " + path);
  for (const Edge& e : g.Edges()) {
    out << e.u << " " << e.v << "\n";
  }
  if (!out) return Status::Internal("write failed for " + path);
  return Status::Ok();
}

}  // namespace graphalign
