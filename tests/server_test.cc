// Tests for the alignment service daemon: protocol framing (table-driven
// over malformed inputs), payload codecs, the content-addressed LRU result
// cache, and an end-to-end daemon exercising isolation, caching, admission
// control, and shutdown over a real Unix socket.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/random.h"
#include "common/subprocess.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "server/cache.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace graphalign {
namespace {

// ---------------------------------------------------------------------------
// Framing: the parser must map every byte sequence to a typed outcome.

std::string FrameHeader(uint32_t declared_len) {
  std::string h(kFrameMagic, sizeof(kFrameMagic));
  for (int i = 0; i < 4; ++i) {
    h.push_back(static_cast<char>((declared_len >> (8 * i)) & 0xff));
  }
  return h;
}

struct FrameCase {
  const char* name;
  std::string input;
  FrameStatus want;
};

TEST(FramingTest, MalformedInputsYieldTypedOutcomes) {
  const std::string good = EncodeFrame("hello");
  const FrameCase cases[] = {
      {"empty buffer", "", FrameStatus::kIncomplete},
      {"partial magic", "GA", FrameStatus::kIncomplete},
      {"magic only", std::string(kFrameMagic, 4), FrameStatus::kIncomplete},
      {"truncated header", good.substr(0, 6), FrameStatus::kIncomplete},
      {"truncated payload", good.substr(0, good.size() - 1),
       FrameStatus::kIncomplete},
      {"garbage magic", "XXXXXXXXXXXX", FrameStatus::kBadMagic},
      {"garbage partial magic", "QQ", FrameStatus::kBadMagic},
      {"http request", "GET / HTTP/1.1\r\n\r\n", FrameStatus::kBadMagic},
      {"near-miss magic", "GAF2" + good.substr(4), FrameStatus::kBadMagic},
      {"zero-length payload", FrameHeader(0), FrameStatus::kEmpty},
      {"oversized declaration", FrameHeader(kMaxFramePayload + 1),
       FrameStatus::kOversized},
      {"huge declaration", FrameHeader(0xffffffffu), FrameStatus::kOversized},
      {"complete frame", good, FrameStatus::kComplete},
      {"frame plus trailing bytes", good + "junk", FrameStatus::kComplete},
  };
  for (const FrameCase& c : cases) {
    std::string payload;
    size_t consumed = 0;
    EXPECT_EQ(TryParseFrame(c.input, &payload, &consumed), c.want) << c.name;
    if (c.want == FrameStatus::kComplete) {
      EXPECT_EQ(payload, "hello") << c.name;
      EXPECT_EQ(consumed, good.size()) << c.name;
    }
  }
}

TEST(FramingTest, OversizedDeclarationRejectedBeforeBuffering) {
  // An attacker declaring a 4 GB payload must be rejected from the 8-byte
  // header alone, not after the parser tries to buffer the declared length.
  std::string header = FrameHeader(0xfffffff0u);
  std::string payload;
  size_t consumed = 0;
  EXPECT_EQ(TryParseFrame(header, &payload, &consumed),
            FrameStatus::kOversized);
}

TEST(FramingTest, RoundTripsBinaryPayloads) {
  std::string binary;
  for (int i = 0; i < 512; ++i) binary.push_back(static_cast<char>(i & 0xff));
  std::string framed = EncodeFrame(binary);
  std::string payload;
  size_t consumed = 0;
  ASSERT_EQ(TryParseFrame(framed, &payload, &consumed), FrameStatus::kComplete);
  EXPECT_EQ(payload, binary);
  EXPECT_EQ(consumed, framed.size());
}

TEST(FramingTest, BackToBackFramesParseSequentially) {
  std::string buf = EncodeFrame("first") + EncodeFrame("second");
  std::string payload;
  size_t consumed = 0;
  ASSERT_EQ(TryParseFrame(buf, &payload, &consumed), FrameStatus::kComplete);
  EXPECT_EQ(payload, "first");
  buf.erase(0, consumed);
  ASSERT_EQ(TryParseFrame(buf, &payload, &consumed), FrameStatus::kComplete);
  EXPECT_EQ(payload, "second");
  EXPECT_EQ(consumed, buf.size());
}

TEST(FramingTest, StatusNamesAreDistinct) {
  EXPECT_STREQ(FrameStatusName(FrameStatus::kComplete), "COMPLETE");
  EXPECT_STRNE(FrameStatusName(FrameStatus::kBadMagic),
               FrameStatusName(FrameStatus::kOversized));
}

// ---------------------------------------------------------------------------
// ByteReader: underflow poisons the reader instead of reading junk.

TEST(ByteReaderTest, UnderflowPoisons) {
  ByteWriter w;
  w.U32(7);
  std::string bytes = w.Take();
  ByteReader r(bytes);
  uint32_t v = 0;
  EXPECT_TRUE(r.U32(&v));
  EXPECT_EQ(v, 7u);
  EXPECT_TRUE(r.AtEnd());
  uint64_t big = 0;
  EXPECT_FALSE(r.U64(&big));  // Past the end.
  EXPECT_TRUE(r.failed());
  EXPECT_FALSE(r.U32(&v));  // Stays poisoned.
  EXPECT_FALSE(r.AtEnd());
}

TEST(ByteReaderTest, StringLengthIsBoundsChecked) {
  ByteWriter w;
  w.U32(0xffffffffu);  // Declares a 4 GB string with no bytes behind it.
  std::string bytes = w.Take();
  ByteReader r(bytes);
  std::string s;
  EXPECT_FALSE(r.Str(&s, 1u << 20));
  EXPECT_TRUE(r.failed());
}

TEST(ByteReaderTest, StringMaxLenEnforced) {
  ByteWriter w;
  w.Str("this string is too long");
  std::string bytes = w.Take();
  ByteReader r(bytes);
  std::string s;
  EXPECT_FALSE(r.Str(&s, 4));
}

// ---------------------------------------------------------------------------
// Request/response codecs: total decoding of hostile payloads.

Graph MustGraph(int n, const std::vector<Edge>& edges) {
  auto g = Graph::FromEdges(n, edges);
  GA_CHECK(g.ok());
  return *std::move(g);
}

Request MakeAlignRequest(const Graph& g1, const Graph& g2,
                         const std::string& algo) {
  Request req;
  req.type = RequestType::kAlign;
  req.align.algo = algo;
  req.align.assign = "JV";
  req.align.g1 = ToWire(g1);
  req.align.g2 = ToWire(g2);
  return req;
}

TEST(CodecTest, RequestRoundTrip) {
  Graph g1 = MustGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  Graph g2 = MustGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  Request req = MakeAlignRequest(g1, g2, "NSD");
  req.align.deadline_ms = 1500;
  req.align.mem_limit_mb = 256;
  req.align.no_cache = true;

  auto decoded = DecodeRequest(EncodeRequest(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, RequestType::kAlign);
  EXPECT_EQ(decoded->align.algo, "NSD");
  EXPECT_EQ(decoded->align.assign, "JV");
  EXPECT_EQ(decoded->align.deadline_ms, 1500u);
  EXPECT_EQ(decoded->align.mem_limit_mb, 256u);
  EXPECT_TRUE(decoded->align.no_cache);
  EXPECT_EQ(decoded->align.g1.num_nodes, 4);
  EXPECT_EQ(decoded->align.g1.edges.size(), 3u);
  EXPECT_EQ(decoded->align.g2.edges.size(), 4u);
}

TEST(CodecTest, MalformedRequestsAreTypedErrors) {
  const std::string good =
      EncodeRequest(MakeAlignRequest(MustGraph(3, {{0, 1}, {1, 2}}),
                                     MustGraph(3, {{0, 1}}), "NSD"));
  const std::vector<std::pair<const char*, std::string>> cases = {
      {"empty payload", ""},
      {"single byte", "\x02"},
      {"bad version", std::string("\xff", 1) + good.substr(1)},
      {"unknown request type", [&] {
         ByteWriter w;
         w.U32(kProtocolVersion);
         w.U8(99);
         return w.Take();
       }()},
      {"truncated align body", good.substr(0, good.size() / 2)},
      {"trailing junk", good + "zzz"},
      {"random garbage", "\x01\x00\x00\x00\x02garbagegarbage"},
  };
  for (const auto& [name, payload] : cases) {
    auto decoded = DecodeRequest(payload);
    ASSERT_FALSE(decoded.ok()) << name;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument) << name;
  }
}

TEST(CodecTest, RequestWithAbsurdNodeCountRejected) {
  ByteWriter w;
  w.U32(kProtocolVersion);
  w.U8(static_cast<uint8_t>(RequestType::kStats));
  w.I32(0x7fffffff);  // num_nodes far beyond the wire bound.
  w.U32(0);           // no edges
  auto decoded = DecodeRequest(w.Take());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(CodecTest, ResponseRoundTrip) {
  Response resp;
  resp.code = ResponseCode::kCrash;
  resp.cache_hit = false;
  resp.elapsed_us = 123456;
  resp.message = "the aligner crashed (signal 11)";
  resp.body = std::string("\x00\x01\x02", 3);
  auto decoded = DecodeResponse(EncodeResponse(resp));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->code, ResponseCode::kCrash);
  EXPECT_EQ(decoded->elapsed_us, 123456u);
  EXPECT_EQ(decoded->message, resp.message);
  EXPECT_EQ(decoded->body, resp.body);
}

TEST(CodecTest, AlignResultRoundTrip) {
  AlignResult r;
  r.mapping = {2, 0, 1, -1};
  r.mnc = 0.75;
  r.ec = 0.5;
  r.s3 = 0.25;
  r.align_seconds = 0.125;
  auto decoded = DecodeAlignResult(EncodeAlignResult(r));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->mapping, r.mapping);
  EXPECT_DOUBLE_EQ(decoded->mnc, 0.75);
  EXPECT_DOUBLE_EQ(decoded->align_seconds, 0.125);
}

TEST(CodecTest, ResponseCodesMatchExitCodes) {
  // The submit subcommand exits with the raw response code; the meanings
  // must stay aligned with common/exit_codes.h forever.
  EXPECT_EQ(static_cast<int>(ResponseCode::kDnf), kExitDnf);
  EXPECT_EQ(static_cast<int>(ResponseCode::kCrash), kExitCrash);
  EXPECT_EQ(static_cast<int>(ResponseCode::kOom), kExitOom);
  EXPECT_EQ(static_cast<int>(ResponseCode::kBusy), kExitBusy);
  EXPECT_EQ(static_cast<int>(ResponseCode::kShuttingDown), kExitShuttingDown);
  EXPECT_EQ(static_cast<int>(ResponseCode::kShed), kExitShed);
  EXPECT_EQ(static_cast<int>(ResponseCode::kQuarantined), kExitQuarantined);
}

TEST(CodecTest, RequestCarriesClientIdentity) {
  Request req;
  req.type = RequestType::kPing;
  req.client = "tenant-a";
  auto decoded = DecodeRequest(EncodeRequest(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->type, RequestType::kPing);
  EXPECT_EQ(decoded->client, "tenant-a");
}

TEST(CodecTest, ServerStatsResultRoundTrips) {
  ServerStatsResult r;
  r.workers = 4;
  r.uptime_seconds = 321.5;
  r.accepted = 1000;
  r.served = 998;
  r.busy_rejected = 7;
  r.quota_rejected = 3;
  r.shed = 2;
  r.quarantined = 5;
  r.quarantined_signatures = 1;
  r.watchdog_kills = 2;
  r.queue_depth = 4;
  r.in_flight = 4;
  r.cache_replayed = 12;
  r.cache_crc_skipped = 1;
  r.cache_truncated_bytes = 37;
  r.cache_append_errors = 2;
  r.cache_open_errors = 0;
  r.store_puts = 9;
  r.store_gets = 15;
  r.store_corrupt = 1;
  r.store_missing = 2;
  r.store_unavailable = 1;
  r.worker_restarts = {0, 2, 0, 1};
  auto decoded = DecodeServerStatsResult(EncodeServerStatsResult(r));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->workers, 4u);
  EXPECT_DOUBLE_EQ(decoded->uptime_seconds, 321.5);
  EXPECT_EQ(decoded->accepted, 1000u);
  EXPECT_EQ(decoded->served, 998u);
  EXPECT_EQ(decoded->busy_rejected, 7u);
  EXPECT_EQ(decoded->quota_rejected, 3u);
  EXPECT_EQ(decoded->shed, 2u);
  EXPECT_EQ(decoded->quarantined, 5u);
  EXPECT_EQ(decoded->quarantined_signatures, 1u);
  EXPECT_EQ(decoded->watchdog_kills, 2u);
  EXPECT_EQ(decoded->cache_replayed, 12u);
  EXPECT_EQ(decoded->cache_crc_skipped, 1u);
  EXPECT_EQ(decoded->cache_truncated_bytes, 37u);
  EXPECT_EQ(decoded->cache_append_errors, 2u);
  EXPECT_EQ(decoded->store_puts, 9u);
  EXPECT_EQ(decoded->store_gets, 15u);
  EXPECT_EQ(decoded->store_corrupt, 1u);
  EXPECT_EQ(decoded->store_missing, 2u);
  EXPECT_EQ(decoded->store_unavailable, 1u);
  EXPECT_EQ(decoded->worker_restarts, (std::vector<uint64_t>{0, 2, 0, 1}));
}

// ---------------------------------------------------------------------------
// Result cache.

TEST(CacheTest, KeyDependsOnEveryComponent) {
  const uint64_t base = ResultCache::Key(1, 2, "NSD", "JV");
  EXPECT_NE(base, ResultCache::Key(3, 2, "NSD", "JV"));
  EXPECT_NE(base, ResultCache::Key(1, 3, "NSD", "JV"));
  EXPECT_NE(base, ResultCache::Key(2, 1, "NSD", "JV"));  // Order matters.
  EXPECT_NE(base, ResultCache::Key(1, 2, "GRASP", "JV"));
  EXPECT_NE(base, ResultCache::Key(1, 2, "NSD", "MWM"));
  EXPECT_EQ(base, ResultCache::Key(1, 2, "NSD", "JV"));
  // Length-prefixing keeps ("AB","C") distinct from ("A","BC").
  EXPECT_NE(ResultCache::Key(1, 2, "AB", "C"), ResultCache::Key(1, 2, "A", "BC"));
}

TEST(CacheTest, GetPutAndStats) {
  ResultCache cache(1 << 20);
  std::string value;
  EXPECT_FALSE(cache.Get(42, &value));
  cache.Put(42, "result-a");
  ASSERT_TRUE(cache.Get(42, &value));
  EXPECT_EQ(value, "result-a");
  cache.Put(42, "result-b");  // Replace.
  ASSERT_TRUE(cache.Get(42, &value));
  EXPECT_EQ(value, "result-b");

  ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 8u);
  EXPECT_EQ(stats.capacity_bytes, static_cast<uint64_t>(1 << 20));
}

TEST(CacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(30);  // Room for three 10-byte values.
  const std::string ten(10, 'x');
  cache.Put(1, ten);
  cache.Put(2, ten);
  cache.Put(3, ten);
  std::string value;
  ASSERT_TRUE(cache.Get(1, &value));  // Refresh 1: LRU order is now 2,3,1.
  cache.Put(4, ten);                  // Evicts 2.
  EXPECT_FALSE(cache.Get(2, &value));
  EXPECT_TRUE(cache.Get(1, &value));
  EXPECT_TRUE(cache.Get(3, &value));
  EXPECT_TRUE(cache.Get(4, &value));
  EXPECT_EQ(cache.GetStats().evictions, 1u);
  EXPECT_EQ(cache.GetStats().entries, 3u);
}

TEST(CacheTest, ValueLargerThanCapacityNeverCached) {
  ResultCache cache(16);
  cache.Put(1, "tiny");
  cache.Put(2, std::string(64, 'y'));  // Larger than the whole cache.
  std::string value;
  EXPECT_FALSE(cache.Get(2, &value));
  EXPECT_TRUE(cache.Get(1, &value));  // The resident survived.
}

TEST(CacheTest, SnapshotIsLeastRecentlyUsedFirst) {
  ResultCache cache(1 << 20);
  cache.Put(1, "a");
  cache.Put(2, "b");
  cache.Put(3, "c");
  std::string v;
  ASSERT_TRUE(cache.Get(1, &v));  // 1 becomes most recent.
  const auto snapshot = cache.Snapshot();
  // LRU-first, so replaying the snapshot in order (as startup compaction
  // does) restores both the contents and the recency ranking.
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].first, 2u);
  EXPECT_EQ(snapshot[1].first, 3u);
  EXPECT_EQ(snapshot[2].first, 1u);
  EXPECT_EQ(snapshot[2].second, "a");
}

TEST(CacheTest, ConcurrentAccessIsSafe) {
  ResultCache cache(1 << 16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      std::string value;
      for (int i = 0; i < 500; ++i) {
        uint64_t key = static_cast<uint64_t>((t * 131 + i) % 64);
        cache.Put(key, std::string(32, static_cast<char>('a' + t)));
        cache.Get(key, &value);
      }
    });
  }
  for (auto& th : threads) th.join();
  ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits + stats.misses, 4u * 500u);
  EXPECT_LE(stats.bytes, static_cast<uint64_t>(1 << 16));
}

// ---------------------------------------------------------------------------
// End-to-end daemon over a Unix socket.

std::string TempSocketPath(const char* tag) {
  // sockaddr_un caps paths at ~107 bytes, so keep it short and unique.
  return "/tmp/ga_srv_" + std::string(tag) + "_" + std::to_string(getpid());
}

class ServerFixture : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options) {
    socket_path_ = options.socket_path;
    auto server = Server::Create(options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = *std::move(server);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Shutdown();
      server_->Wait();
    }
    if (!socket_path_.empty()) ::unlink(socket_path_.c_str());
  }

  Result<Client> Connect(double timeout_seconds = 60.0) {
    ClientOptions copts;
    copts.socket_path = socket_path_;
    copts.timeout_seconds = timeout_seconds;
    return Client::Connect(copts);
  }

  Response MustCall(Client& client, const Request& req) {
    auto resp = client.Call(req);
    GA_CHECK(resp.ok());
    return *std::move(resp);
  }

  std::string socket_path_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerFixture, RejectsBadOptions) {
  ServerOptions opts;  // Neither socket nor port.
  EXPECT_FALSE(Server::Create(opts).ok());
  opts.socket_path = "/tmp/x";
  opts.port = 4242;  // Both transports at once.
  EXPECT_FALSE(Server::Create(opts).ok());
  opts.port = -1;
  opts.workers = 0;
  EXPECT_FALSE(Server::Create(opts).ok());
  opts.workers = 2;
  opts.socket_path = std::string(300, 'p');  // Exceeds sockaddr_un.
  EXPECT_FALSE(Server::Create(opts).ok());
}

TEST_F(ServerFixture, ConnectToMissingSocketFails) {
  ClientOptions copts;
  copts.socket_path = TempSocketPath("nonexistent");
  auto client = Client::Connect(copts);
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kNotFound);
}

TEST_F(ServerFixture, PingAndStatsAndEvaluate) {
  ServerOptions opts;
  opts.socket_path = TempSocketPath("basic");
  opts.workers = 2;
  StartServer(opts);

  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  Request ping;
  ping.type = RequestType::kPing;
  Response resp = MustCall(*client, ping);
  EXPECT_EQ(resp.code, ResponseCode::kOk);
  EXPECT_EQ(resp.message, "pong");

  // Stats over the wire must agree with local Graph computation.
  Graph g = MustGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  Request stats;
  stats.type = RequestType::kStats;
  stats.stats.g = ToWire(g);
  resp = MustCall(*client, stats);
  ASSERT_EQ(resp.code, ResponseCode::kOk) << resp.message;
  auto sr = DecodeStatsResult(resp.body);
  ASSERT_TRUE(sr.ok());
  EXPECT_EQ(sr->num_nodes, 5);
  EXPECT_EQ(sr->num_edges, 5);
  EXPECT_EQ(sr->components, 1);
  EXPECT_EQ(sr->content_hash, g.ContentHash());

  // Evaluate the identity mapping of a graph against itself: perfect scores.
  Request eval;
  eval.type = RequestType::kEvaluate;
  eval.evaluate.g1 = ToWire(g);
  eval.evaluate.g2 = ToWire(g);
  eval.evaluate.mapping = {0, 1, 2, 3, 4};
  eval.evaluate.truth = {0, 1, 2, 3, 4};
  resp = MustCall(*client, eval);
  ASSERT_EQ(resp.code, ResponseCode::kOk) << resp.message;
  auto er = DecodeEvaluateResult(resp.body);
  ASSERT_TRUE(er.ok());
  EXPECT_DOUBLE_EQ(er->ec, 1.0);
  ASSERT_TRUE(er->has_accuracy);
  EXPECT_DOUBLE_EQ(er->accuracy, 1.0);
}

TEST_F(ServerFixture, EvaluateRejectsMalformedMapping) {
  ServerOptions opts;
  opts.socket_path = TempSocketPath("badmap");
  opts.workers = 1;
  StartServer(opts);
  auto client = Connect();
  ASSERT_TRUE(client.ok());

  Graph g = MustGraph(3, {{0, 1}, {1, 2}});
  Request eval;
  eval.type = RequestType::kEvaluate;
  eval.evaluate.g1 = ToWire(g);
  eval.evaluate.g2 = ToWire(g);
  eval.evaluate.mapping = {0, 1};  // Wrong size.
  Response resp = MustCall(*client, eval);
  EXPECT_EQ(resp.code, ResponseCode::kBadRequest);

  // The connection was closed after the bad request; a fresh one works.
  auto client2 = Connect();
  ASSERT_TRUE(client2.ok());
  Request ping;
  ping.type = RequestType::kPing;
  EXPECT_EQ(MustCall(*client2, ping).code, ResponseCode::kOk);
}

TEST_F(ServerFixture, AlignCachesAndIsolatesFaults) {
  ServerOptions opts;
  opts.socket_path = TempSocketPath("align");
  opts.workers = 2;
  opts.wall_slack_seconds = 5.0;
  StartServer(opts);

  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  Rng rng(7);
  auto gen1 = ErdosRenyi(60, 0.15, &rng);
  auto gen2 = ErdosRenyi(60, 0.15, &rng);
  GA_CHECK(gen1.ok() && gen2.ok());
  Graph g1 = *std::move(gen1);
  Graph g2 = *std::move(gen2);
  Request align = MakeAlignRequest(g1, g2, "NSD");

  // Cold: a real isolated alignment.
  Response cold = MustCall(*client, align);
  ASSERT_EQ(cold.code, ResponseCode::kOk) << cold.message;
  EXPECT_FALSE(cold.cache_hit);
  auto cold_result = DecodeAlignResult(cold.body);
  ASSERT_TRUE(cold_result.ok());
  EXPECT_EQ(cold_result->mapping.size(), 60u);

  // Identical request: served from cache with an identical body.
  Response warm = MustCall(*client, align);
  ASSERT_EQ(warm.code, ResponseCode::kOk) << warm.message;
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.body, cold.body);

  // no_cache bypasses the cache even though the entry exists.
  Request uncached = align;
  uncached.align.no_cache = true;
  Response fresh = MustCall(*client, uncached);
  ASSERT_EQ(fresh.code, ResponseCode::kOk) << fresh.message;
  EXPECT_FALSE(fresh.cache_hit);

  // A crashing alignment yields a typed CRASH response on its own
  // connection...
  Request crash = MakeAlignRequest(g1, g2, "_CRASH");
  Response crash_resp = MustCall(*client, crash);
  EXPECT_EQ(crash_resp.code, ResponseCode::kCrash) << crash_resp.message;

  // ...and the daemon keeps serving: the cached result is still there.
  Response after = MustCall(*client, align);
  ASSERT_EQ(after.code, ResponseCode::kOk) << after.message;
  EXPECT_TRUE(after.cache_hit);

  // An OOM-ing alignment under a memory cap is classified as OOM.
  Request oom = MakeAlignRequest(g1, g2, "_OOM");
  oom.align.mem_limit_mb = 256;
  Response oom_resp = MustCall(*client, oom);
  EXPECT_EQ(oom_resp.code, ResponseCode::kOom) << oom_resp.message;

  // A non-cooperative hang is SIGKILLed by the wall backstop → DNF.
  Request hang = MakeAlignRequest(g1, g2, "_HANG");
  hang.align.deadline_ms = 200;  // Backstop = 2 * 0.2 s + 5 s slack.
  Response hang_resp = MustCall(*client, hang);
  EXPECT_EQ(hang_resp.code, ResponseCode::kDnf) << hang_resp.message;

  // Unknown algorithm: an in-request error, not a dead daemon.
  Request bogus = MakeAlignRequest(g1, g2, "NO_SUCH_ALGO");
  Response bogus_resp = MustCall(*client, bogus);
  EXPECT_EQ(bogus_resp.code, ResponseCode::kError);

  ResultCache::Stats stats = server_->cache_stats();
  EXPECT_GE(stats.hits, 2u);
  EXPECT_GE(stats.entries, 1u);
}

TEST_F(ServerFixture, AdmissionControlSendsBusy) {
  ServerOptions opts;
  opts.socket_path = TempSocketPath("busy");
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.io_timeout_seconds = 30.0;
  StartServer(opts);

  // Occupy the single worker: ServeConnection holds the connection between
  // requests, so a client that has completed a ping owns the worker until
  // it disconnects.
  auto holder = Connect();
  ASSERT_TRUE(holder.ok());
  Request ping;
  ping.type = RequestType::kPing;
  ASSERT_EQ(MustCall(*holder, ping).code, ResponseCode::kOk);

  // Fill the admission queue with a second connection (accepted, queued,
  // never dispatched while the worker is held).
  auto queued = Connect();
  ASSERT_TRUE(queued.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // The third connection must be refused immediately with a typed BUSY
  // response, not stalled.
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                socket_path_.c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  struct timeval tv = {5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::string payload;
  auto got = ReadFrameFromFd(fd, &payload);
  ::close(fd);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(*got);
  auto busy = DecodeResponse(payload);
  ASSERT_TRUE(busy.ok()) << busy.status().ToString();
  EXPECT_EQ(busy->code, ResponseCode::kBusy);
  EXPECT_NE(busy->message.find("admission queue full"), std::string::npos)
      << busy->message;
}

TEST_F(ServerFixture, GarbageBytesGetBadRequestNotCrash) {
  ServerOptions opts;
  opts.socket_path = TempSocketPath("garbage");
  opts.workers = 1;
  StartServer(opts);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                socket_path_.c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char garbage[] = "not a frame at all, definitely not GAF1";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL), 0);
  struct timeval tv = {5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::string payload;
  auto got = ReadFrameFromFd(fd, &payload);
  ::close(fd);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(*got);
  auto resp = DecodeResponse(payload);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, ResponseCode::kBadRequest);

  // The daemon survived the garbage.
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  Request ping;
  ping.type = RequestType::kPing;
  EXPECT_EQ(MustCall(*client, ping).code, ResponseCode::kOk);
}

TEST_F(ServerFixture, ShutdownRequestStopsTheDaemon) {
  ServerOptions opts;
  opts.socket_path = TempSocketPath("shutdown");
  opts.workers = 2;
  StartServer(opts);

  auto client = Connect();
  ASSERT_TRUE(client.ok());
  Request shutdown;
  shutdown.type = RequestType::kShutdown;
  Response resp = MustCall(*client, shutdown);
  EXPECT_EQ(resp.code, ResponseCode::kOk);

  server_->Wait();  // Must return: the daemon stopped itself.
  server_.reset();
}

TEST_F(ServerFixture, ConcurrentClientsAreServed) {
  ServerOptions opts;
  opts.socket_path = TempSocketPath("conc");
  opts.workers = 4;
  StartServer(opts);

  Rng rng(11);
  auto gen1 = ErdosRenyi(40, 0.2, &rng);
  auto gen2 = ErdosRenyi(40, 0.2, &rng);
  GA_CHECK(gen1.ok() && gen2.ok());
  Graph g1 = *std::move(gen1);
  Graph g2 = *std::move(gen2);

  std::vector<std::thread> threads;
  std::vector<int> oks(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      // These client threads share the daemon's process (unlike real
      // clients), so register them with the fork-safety audit: they only
      // block on socket IO and hold no locks while workers fork.
      ScopedForkTolerantThread fork_tolerant;
      auto client = Connect();
      if (!client.ok()) return;
      // Mix of inline (stats) and isolated (align) work per client.
      Request stats;
      stats.type = RequestType::kStats;
      stats.stats.g = ToWire(g1);
      auto r1 = client->Call(stats);
      Request align = MakeAlignRequest(g1, g2, "NSD");
      auto r2 = client->Call(align);
      if (r1.ok() && r1->code == ResponseCode::kOk && r2.ok() &&
          r2->code == ResponseCode::kOk) {
        oks[t] = 1;
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(oks[t], 1) << "client " << t;
}

// ---------------------------------------------------------------------------
// Overload robustness (DESIGN.md §14): quarantine, shedding, quotas, and the
// kServerStats introspection request.

TEST_F(ServerFixture, QuarantineTripsAtThresholdAndIsPerSignature) {
  ServerOptions opts;
  opts.socket_path = TempSocketPath("quar");
  opts.workers = 2;
  opts.wall_slack_seconds = 5.0;
  opts.quarantine_threshold = 2;
  StartServer(opts);

  Rng rng(17);
  auto gen1 = ErdosRenyi(40, 0.15, &rng);
  auto gen2 = ErdosRenyi(40, 0.15, &rng);
  GA_CHECK(gen1.ok() && gen2.ok());
  Graph g1 = *std::move(gen1);
  Graph g2 = *std::move(gen2);

  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Below the threshold every attempt really forks and gets a typed CRASH.
  Request crash = MakeAlignRequest(g1, g2, "_CRASH");
  EXPECT_EQ(MustCall(*client, crash).code, ResponseCode::kCrash);
  EXPECT_EQ(MustCall(*client, crash).code, ResponseCode::kCrash);

  // At the threshold the signature is quarantined: typed QUARANTINED, no
  // fork, and it stays that way on every further attempt.
  Response quarantined = MustCall(*client, crash);
  EXPECT_EQ(quarantined.code, ResponseCode::kQuarantined)
      << quarantined.message;
  EXPECT_NE(quarantined.message.find("quarantined"), std::string::npos)
      << quarantined.message;
  EXPECT_EQ(MustCall(*client, crash).code, ResponseCode::kQuarantined);

  // Quarantine is per (g1, g2, algo) signature: a healthy align of the very
  // same graph pair is untouched.
  Response healthy = MustCall(*client, MakeAlignRequest(g1, g2, "NSD"));
  EXPECT_EQ(healthy.code, ResponseCode::kOk) << healthy.message;

  ServerStatsResult stats = server_->stats();
  EXPECT_EQ(stats.quarantined_signatures, 1u);
  EXPECT_GE(stats.quarantined, 2u);
}

TEST_F(ServerFixture, SuccessResetsTheConsecutiveFaultCount) {
  ServerOptions opts;
  opts.socket_path = TempSocketPath("quarclr");
  opts.workers = 2;
  opts.wall_slack_seconds = 5.0;
  opts.quarantine_threshold = 2;
  StartServer(opts);

  // _CRASH and NSD on the same pair are different signatures, so interleave
  // crashes of one signature with its own successes via no_cache: impossible
  // — a signature either crashes or it doesn't. Instead verify the clearing
  // path with the quarantine disabled counter: one crash, then stats shows
  // no quarantined signature (count 1 < threshold 2).
  Rng rng(19);
  auto gen1 = ErdosRenyi(40, 0.15, &rng);
  auto gen2 = ErdosRenyi(40, 0.15, &rng);
  GA_CHECK(gen1.ok() && gen2.ok());
  Graph g1 = *std::move(gen1);
  Graph g2 = *std::move(gen2);

  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ(MustCall(*client, MakeAlignRequest(g1, g2, "_CRASH")).code,
            ResponseCode::kCrash);
  ServerStatsResult stats = server_->stats();
  EXPECT_EQ(stats.quarantined_signatures, 0u);
  EXPECT_EQ(stats.quarantined, 0u);
}

TEST_F(ServerFixture, ShedAnswersRequestsWhoseQueueWaitAteTheDeadline) {
  ServerOptions opts;
  opts.socket_path = TempSocketPath("shed");
  opts.workers = 1;
  opts.queue_capacity = 4;
  opts.shed = true;
  StartServer(opts);

  // Occupy the single worker with a connected client that already completed
  // a request (it holds its worker until it disconnects).
  auto holder_conn = Connect();
  ASSERT_TRUE(holder_conn.ok());
  auto holder = std::make_unique<Client>(*std::move(holder_conn));
  Request ping;
  ping.type = RequestType::kPing;
  ASSERT_EQ(MustCall(*holder, ping).code, ResponseCode::kOk);

  // Park a raw connection with an already-written align request carrying a
  // 100 ms deadline; it sits in the admission queue while the worker is
  // held, far past that deadline.
  Rng rng(23);
  auto gen1 = ErdosRenyi(30, 0.2, &rng);
  auto gen2 = ErdosRenyi(30, 0.2, &rng);
  GA_CHECK(gen1.ok() && gen2.ok());
  Request align = MakeAlignRequest(*gen1, *gen2, "NSD");
  align.align.deadline_ms = 100;

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                socket_path_.c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  struct timeval tv = {10, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ASSERT_TRUE(WriteFrameToFd(fd, EncodeRequest(align)).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  // Release the worker; the dequeued request has outwaited its deadline and
  // must be shed, not forked into guaranteed-late work.
  holder.reset();
  std::string payload;
  auto got = ReadFrameFromFd(fd, &payload);
  ::close(fd);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(*got);
  auto resp = DecodeResponse(payload);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->code, ResponseCode::kShed) << resp->message;
  EXPECT_NE(resp->message.find("shed"), std::string::npos) << resp->message;
  EXPECT_EQ(server_->stats().shed, 1u);
}

TEST_F(ServerFixture, QuotaRejectsOnlyTheGreedyClient) {
  ServerOptions opts;
  opts.socket_path = TempSocketPath("quota");
  opts.workers = 2;
  opts.wall_slack_seconds = 5.0;
  opts.quota_rps = 0.5;  // Burst of 1 token; ~2 s to refill.
  StartServer(opts);

  Rng rng(29);
  auto gen1 = ErdosRenyi(20, 0.2, &rng);
  auto gen2 = ErdosRenyi(20, 0.2, &rng);
  GA_CHECK(gen1.ok() && gen2.ok());
  Graph g1 = *std::move(gen1);
  Graph g2 = *std::move(gen2);

  auto greedy = Connect();
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
  Request align = MakeAlignRequest(g1, g2, "NSD");
  align.client = "greedy";
  EXPECT_EQ(MustCall(*greedy, align).code, ResponseCode::kOk);

  // The burst is spent; the immediate follow-up from the same client is a
  // typed BUSY naming the quota.
  Response over = MustCall(*greedy, align);
  EXPECT_EQ(over.code, ResponseCode::kBusy) << over.message;
  EXPECT_NE(over.message.find("quota"), std::string::npos) << over.message;

  // Another client has its own bucket and is unaffected (cache hit from the
  // greedy client's successful align — quota is checked before the cache).
  auto polite = Connect();
  ASSERT_TRUE(polite.ok()) << polite.status().ToString();
  Request polite_align = align;
  polite_align.client = "polite";
  EXPECT_EQ(MustCall(*polite, polite_align).code, ResponseCode::kOk);

  // Pings are never quota-gated: health checks keep working while a client
  // is throttled.
  Request ping;
  ping.type = RequestType::kPing;
  ping.client = "greedy";
  EXPECT_EQ(MustCall(*greedy, ping).code, ResponseCode::kOk);

  EXPECT_GE(server_->stats().quota_rejected, 1u);
}

TEST_F(ServerFixture, ServerStatsRequestReportsLiveCounters) {
  ServerOptions opts;
  opts.socket_path = TempSocketPath("sstats");
  opts.workers = 3;
  StartServer(opts);

  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Request ping;
  ping.type = RequestType::kPing;
  ASSERT_EQ(MustCall(*client, ping).code, ResponseCode::kOk);

  Request stats_req;
  stats_req.type = RequestType::kServerStats;
  Response resp = MustCall(*client, stats_req);
  ASSERT_EQ(resp.code, ResponseCode::kOk) << resp.message;
  auto stats = DecodeServerStatsResult(resp.body);
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_EQ(stats->workers, 3u);
  EXPECT_GE(stats->uptime_seconds, 0.0);
  EXPECT_GE(stats->accepted, 1u);
  EXPECT_GE(stats->served, 1u);  // The ping that preceded this request.
  EXPECT_EQ(stats->in_flight, 1u);  // This very request.
  EXPECT_EQ(stats->watchdog_kills, 0u);
  ASSERT_EQ(stats->worker_restarts.size(), 3u);
  for (uint64_t restarts : stats->worker_restarts) {
    EXPECT_EQ(restarts, 0u);
  }
  // The wire payload and the in-process accessor agree.
  EXPECT_EQ(server_->stats().workers, stats->workers);
}

}  // namespace
}  // namespace graphalign
