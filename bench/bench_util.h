// Shared helpers for the figure/table reproduction benches.
//
// Every bench binary accepts the common flags of BenchArgs (see
// bench_framework/experiment.h). By default benches run at reduced,
// smoke-test scale so that `for b in build/bench/*; do $b; done` finishes in
// minutes; pass --full for paper-scale sweeps (which also turns on per-cell
// process isolation — see DESIGN.md §10).
#ifndef GRAPHALIGN_BENCH_BENCH_UTIL_H_
#define GRAPHALIGN_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <initializer_list>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "align/aligner.h"
#include "align/sgwl.h"
#include "bench_framework/experiment.h"
#include "bench_framework/journal.h"
#include "common/table.h"

namespace graphalign {
namespace bench {

// Prints the standard bench banner.
inline void Banner(const std::string& id, const std::string& what,
                   const BenchArgs& args) {
  std::printf("=== %s: %s ===\n", id.c_str(), what.c_str());
  std::printf("mode: %s (pass --full for paper-scale)\n",
              args.full ? "FULL" : "smoke");
  if (args.isolate) {
    if (args.mem_limit_mb > 0.0) {
      std::printf("isolation: per-cell subprocess, mem limit %.0f MB\n",
                  args.mem_limit_mb);
    } else {
      std::printf("isolation: per-cell subprocess\n");
    }
  }
}

// Instantiates an aligner; S-GWL gets the sparse-beta preset when requested
// (the paper tunes beta by density, §6.4.2). Fault-injection names
// (_CRASH/_OOM/_HANG) resolve to the bench framework's test hooks.
inline std::unique_ptr<Aligner> MakeBenchAligner(const std::string& name,
                                                 bool sparse_graph = false) {
  if (auto fault = MakeFaultAligner(name)) return fault;
  if (name == "S-GWL" && sparse_graph) {
    return std::make_unique<SgwlAligner>(SgwlOptions::ForSparseGraphs());
  }
  auto aligner = MakeAligner(name);
  GA_CHECK_MSG(aligner.ok(), aligner.status().ToString());
  return *std::move(aligner);
}

// Emits the table and optional CSV/JSON. `meta` is embedded in the JSON
// output so a checked-in result file records how it was produced.
inline void Emit(const Table& table, const BenchArgs& args,
                 const std::vector<std::pair<std::string, std::string>>& meta =
                     {}) {
  table.Print(std::cout);
  if (!args.csv_path.empty()) {
    if (table.WriteCsv(args.csv_path)) {
      std::printf("csv written to %s\n", args.csv_path.c_str());
    } else {
      std::printf("FAILED to write csv %s\n", args.csv_path.c_str());
    }
  }
  if (!args.json_path.empty()) {
    if (table.WriteJson(args.json_path, meta)) {
      std::printf("json written to %s\n", args.json_path.c_str());
    } else {
      std::printf("FAILED to write json %s\n", args.json_path.c_str());
    }
  }
  std::printf("\n");
}

// Opens the sweep journal named by --journal (a disabled journal without
// the flag). Aborts on an unreadable/corrupt journal file: silently
// recomputing a sweep the user asked to resume would waste the hours the
// journal exists to save.
inline Journal MustOpenJournal(const BenchArgs& args) {
  if (args.journal_path.empty()) return Journal();
  auto journal = Journal::Open(args.journal_path, args.resume);
  GA_CHECK_MSG(journal.ok(), journal.status().ToString());
  if (args.resume && journal->loaded() > 0) {
    std::printf("journal: resuming, %zu cells already completed\n",
                journal->loaded());
  }
  return *std::move(journal);
}

// Joins the fields identifying one sweep cell into a journal key.
inline std::string CellKey(std::initializer_list<std::string> parts) {
  std::string key;
  for (const std::string& part : parts) {
    if (!key.empty()) key += '|';
    key += part;
  }
  return key;
}

// Produces one table row through the journal: a row already recorded under
// `key` (from a --resume'd journal) is replayed without running anything;
// otherwise `compute` runs and its cells are journaled before being added.
inline void JournaledRow(
    Table* table, Journal* journal, const std::string& key,
    const std::function<std::vector<std::string>()>& compute) {
  if (const std::vector<std::string>* cached = journal->Row(key)) {
    table->AddRow(*cached);
    return;
  }
  std::vector<std::string> cells = compute();
  Status recorded = journal->Record(key, cells);
  if (!recorded.ok()) {
    std::fprintf(stderr, "journal: %s\n", recorded.ToString().c_str());
  }
  table->AddRow(cells);
}

// Noise levels for the low-noise experiments (Figs 1-7).
inline std::vector<double> LowNoiseLevels(bool full) {
  if (full) return {0.00, 0.01, 0.02, 0.03, 0.04, 0.05};
  return {0.00, 0.02, 0.05};
}

// Noise levels for the high-noise experiments (Figs 8-9).
inline std::vector<double> HighNoiseLevels(bool full) {
  if (full) return {0.00, 0.05, 0.10, 0.15, 0.20, 0.25};
  return {0.00, 0.10, 0.25};
}

}  // namespace bench
}  // namespace graphalign

#endif  // GRAPHALIGN_BENCH_BENCH_UTIL_H_
