// Jonker-Volgenant algorithm for the dense linear assignment problem
// (R. Jonker & A. Volgenant, Computing 38, 1987): column reduction,
// reduction transfer, two passes of augmenting row reduction, then
// shortest-augmenting-path augmentation for the remaining free rows.
//
// The paper standardizes on JV as the assignment method for all alignment
// algorithms (§6.2); unit tests cross-check its optimal objective against
// the Hungarian solver and brute force.
#include <cmath>
#include <limits>
#include <vector>

#include "assignment/assignment.h"

namespace graphalign {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Solves the square min-cost LAP; fills rowsol (row -> col).
//
// Degeneracy guard: with nearly-identical float costs the classic augmenting
// row reduction can ping-pong two rows over one column forever, because the
// dual update v[j] -= (usubmin - umin) underflows to a no-op when the gap is
// tiny relative to |v[j]|. Gaps below a cost-scaled epsilon are therefore
// treated as ties, which only reroutes rows into the (always-terminating)
// shortest-augmenting-path phase; optimality is unaffected.
Status LapjvSquare(const DenseMatrix& c, const Deadline& deadline,
                   std::vector<int>* rowsol_out) {
  const int n = c.rows();
  const double tie_eps = 1e-12 * (c.MaxAbs() + 1.0);
  // Polled between O(n)-cost steps of every phase; stride 32 bounds the
  // overshoot to ~32n operations past the deadline.
  DeadlineChecker checker(deadline, /*stride=*/32);
  std::vector<int>& rowsol = *rowsol_out;
  rowsol.assign(n, -1);
  std::vector<int> colsol(n, -1);
  std::vector<double> u(n, 0.0), v(n, 0.0);
  std::vector<int> free_rows(n, 0), collist(n, 0), matches(n, 0), pred(n, 0);
  std::vector<double> d(n, 0.0);

  // COLUMN REDUCTION (reverse order gives better initial duals).
  for (int j = n - 1; j >= 0; --j) {
    double min = c(0, j);
    int imin = 0;
    for (int i = 1; i < n; ++i) {
      if (c(i, j) < min) {
        min = c(i, j);
        imin = i;
      }
    }
    v[j] = min;
    if (++matches[imin] == 1) {
      rowsol[imin] = j;
      colsol[j] = imin;
    } else {
      colsol[j] = -1;
    }
  }

  // REDUCTION TRANSFER from single-assigned rows.
  int numfree = 0;
  for (int i = 0; i < n; ++i) {
    if (matches[i] == 0) {
      free_rows[numfree++] = i;
    } else if (matches[i] == 1) {
      const int j1 = rowsol[i];
      double min = kInf;
      for (int j = 0; j < n; ++j) {
        if (j != j1 && c(i, j) - v[j] < min) min = c(i, j) - v[j];
      }
      if (std::isfinite(min)) v[j1] -= min;
    }
  }

  // AUGMENTING ROW REDUCTION, two passes. This phase is a heuristic
  // accelerator: on degenerate matrices (many near-identical rows) its
  // immediate-retry path can make progress only in dual steps barely above
  // the tie threshold, so each pass gets a work budget; rows not settled
  // within it are deferred to the augmentation phase, which terminates
  // structurally regardless of cost values.
  for (int loopcnt = 0; loopcnt < 2; ++loopcnt) {
    int k = 0;
    const int prvnumfree = numfree;
    numfree = 0;
    int budget = 5 * prvnumfree + 100;
    while (k < prvnumfree) {
      GA_RETURN_IF_EXPIRED(checker, "JonkerVolgenantAssign");
      if (--budget < 0) {
        // Defer every unprocessed row (numfree <= k, so this is in-place
        // compaction, never an overwrite of pending entries).
        while (k < prvnumfree) free_rows[numfree++] = free_rows[k++];
        break;
      }
      const int i = free_rows[k++];
      // Two smallest reduced costs in row i.
      double umin = c(i, 0) - v[0];
      int j1 = 0;
      double usubmin = kInf;
      int j2 = -1;
      for (int j = 1; j < n; ++j) {
        const double h = c(i, j) - v[j];
        if (h < usubmin) {
          if (h >= umin) {
            usubmin = h;
            j2 = j;
          } else {
            usubmin = umin;
            j2 = j1;
            umin = h;
            j1 = j;
          }
        }
      }
      int i0 = colsol[j1];
      const bool strict_gap = umin < usubmin - tie_eps;
      if (strict_gap) {
        if (std::isfinite(usubmin)) v[j1] -= usubmin - umin;
      } else if (i0 >= 0 && j2 >= 0) {
        j1 = j2;
        i0 = colsol[j1];
      }
      rowsol[i] = j1;
      colsol[j1] = i;
      if (i0 >= 0) {
        if (strict_gap) {
          free_rows[--k] = i0;  // Reconsider the displaced row immediately.
        } else {
          free_rows[numfree++] = i0;
        }
      }
    }
  }

  // AUGMENTATION: shortest alternating path (Dijkstra over reduced costs)
  // for every remaining free row.
  for (int f = 0; f < numfree; ++f) {
    const int freerow = free_rows[f];
    for (int j = 0; j < n; ++j) {
      d[j] = c(freerow, j) - v[j];
      pred[j] = freerow;
      collist[j] = j;
    }
    int low = 0;   // Columns with final shortest distance, below `low`.
    int up = 0;    // Columns in [low, up) are scanned at current minimum.
    int last = 0;
    int endofpath = -1;
    double min = 0.0;
    bool unassigned_found = false;
    do {
      GA_RETURN_IF_EXPIRED(checker, "JonkerVolgenantAssign");
      if (up == low) {
        last = low - 1;
        min = d[collist[up++]];
        for (int k = up; k < n; ++k) {
          const int j = collist[k];
          const double h = d[j];
          if (h <= min) {
            if (h < min) {
              up = low;
              min = h;
            }
            collist[k] = collist[up];
            collist[up++] = j;
          }
        }
        for (int k = low; k < up; ++k) {
          const int j = collist[k];
          if (colsol[j] < 0) {
            endofpath = j;
            unassigned_found = true;
            break;
          }
        }
      }
      if (!unassigned_found) {
        const int j1 = collist[low++];
        const int i = colsol[j1];
        const double h = c(i, j1) - v[j1] - min;
        for (int k = up; k < n; ++k) {
          const int j = collist[k];
          const double v2 = c(i, j) - v[j] - h;
          if (v2 < d[j]) {
            d[j] = v2;
            pred[j] = i;
            if (v2 == min) {
              if (colsol[j] < 0) {
                endofpath = j;
                unassigned_found = true;
                break;
              }
              collist[k] = collist[up];
              collist[up++] = j;
            }
          }
        }
      }
    } while (!unassigned_found);

    // Update duals for columns with finalized distances.
    for (int k = 0; k <= last; ++k) {
      const int j = collist[k];
      v[j] += d[j] - min;
    }
    // Flip the alternating path.
    int i;
    do {
      i = pred[endofpath];
      colsol[endofpath] = i;
      const int j1 = endofpath;
      endofpath = rowsol[i];
      rowsol[i] = j1;
    } while (i != freerow);
  }
  (void)u;  // Row duals are implicit in this formulation.
  return Status::Ok();
}

}  // namespace

Result<Alignment> JonkerVolgenantAssign(const DenseMatrix& similarity,
                                        const Deadline& deadline) {
  const int n = similarity.rows();
  const int m = similarity.cols();
  if (n == 0 || m == 0) {
    return Status::InvalidArgument("JonkerVolgenantAssign: empty matrix");
  }
  // Pad to square with zero-similarity dummies; maximize by negating.
  const int dim = std::max(n, m);
  DenseMatrix cost(dim, dim, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) cost(i, j) = -similarity(i, j);
  }
  std::vector<int> rowsol;
  GA_RETURN_IF_ERROR(LapjvSquare(cost, deadline, &rowsol));
  Alignment align(n, -1);
  for (int i = 0; i < n; ++i) {
    align[i] = rowsol[i] < m ? rowsol[i] : -1;
  }
  return align;
}

}  // namespace graphalign
