// Gromov-Wasserstein Learning (Xu et al., ICML 2019), paper §3.6: jointly
// estimates an optimal transport between the graphs and node embeddings,
// alternating (a) proximal-point GW/Wasserstein transport updates and
// (b) embedding updates regularized by the learned transport (Eq. 11).
//
// Embedding update (simplification of the reference's gradient descent, see
// DESIGN.md): each graph's embeddings are pulled toward the transport-
// weighted barycenter of the other graph's embeddings, which is the fixed
// point the Wasserstein term drives toward.
#ifndef GRAPHALIGN_ALIGN_GWL_H_
#define GRAPHALIGN_ALIGN_GWL_H_

#include <cstdint>
#include <string>

#include "align/aligner.h"
#include "align/gw_common.h"

namespace graphalign {

struct GwlOptions {
  GwOptions gw;              // Proximal-point transport parameters.
  int epochs = 1;            // Embedding/transport alternations (Table 1).
  int embedding_dim = 16;    // Node embedding dimension.
  double embedding_weight = 0.1;  // alpha in Eq. 11.
  uint64_t seed = 11;
};

class GwlAligner : public Aligner {
 public:
  explicit GwlAligner(const GwlOptions& options = {}) : options_(options) {}

  std::string name() const override { return "GWL"; }
  AssignmentMethod default_assignment() const override {
    return AssignmentMethod::kNearestNeighbor;  // As proposed (Table 1).
  }
 protected:
  // Similarity = the learned transport plan (scaled to max 1).
  Result<DenseMatrix> ComputeSimilarityImpl(const Graph& g1, const Graph& g2,
                                            const Deadline& deadline) override;

 private:
  GwlOptions options_;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_ALIGN_GWL_H_
