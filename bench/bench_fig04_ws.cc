// Figure 4: Accuracy, S3, and MNC on Watts-Strogatz small-world graphs
// (k = 10, p = 0.5), three noise types, noise up to 5% (paper §6.3).
#include "figure_synthetic.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  return graphalign::bench::RunSyntheticFigure(
      "Figure 4", "Watts-Strogatz",
      [](int n, graphalign::Rng* rng) {
        return graphalign::WattsStrogatz(n, 10, 0.5, rng);
      },
      argc, argv);
}
