# Empty compiler generated dependencies file for bench_ablation_lrea_cone.
# This may be replaced when dependencies are built.
