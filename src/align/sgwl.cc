#include "align/sgwl.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/sinkhorn.h"

namespace graphalign {

namespace {

// Induced-subgraph adjacency of `nodes` as CSR over local indices.
CsrMatrix InducedCsr(const Graph& g, const std::vector<int>& nodes,
                     std::vector<int>* local_of) {
  local_of->assign(g.num_nodes(), -1);
  for (size_t i = 0; i < nodes.size(); ++i) (*local_of)[nodes[i]] = i;
  std::vector<Triplet> trip;
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (int v : g.Neighbors(nodes[i])) {
      const int lv = (*local_of)[v];
      if (lv >= 0) trip.push_back({static_cast<int>(i), lv, 1.0});
    }
  }
  return CsrMatrix::FromTriplets(static_cast<int>(nodes.size()),
                                 static_cast<int>(nodes.size()),
                                 std::move(trip));
}

std::vector<double> DegreeMarginal(const CsrMatrix& adj) {
  std::vector<double> m = adj.RowSums();
  double z = 0.0;
  for (double& v : m) {
    v += 1.0;
    z += v;
  }
  for (double& v : m) v /= z;
  return m;
}

class SgwlSolver {
 public:
  SgwlSolver(const Graph& g1, const Graph& g2, const SgwlOptions& options,
             const Deadline& deadline, DenseMatrix* sim)
      : g1_(g1), g2_(g2), options_(options), deadline_(deadline), sim_(sim) {}

  Status Run() {
    std::vector<int> all1(g1_.num_nodes()), all2(g2_.num_nodes());
    for (int i = 0; i < g1_.num_nodes(); ++i) all1[i] = i;
    for (int j = 0; j < g2_.num_nodes(); ++j) all2[j] = j;
    return Recurse(all1, all2, 0);
  }

 private:
  Status SolveLeaf(const std::vector<int>& nodes1,
                   const std::vector<int>& nodes2) {
    if (nodes1.empty() || nodes2.empty()) return Status::Ok();
    std::vector<int> lo1, lo2;
    const CsrMatrix cs = InducedCsr(g1_, nodes1, &lo1);
    const CsrMatrix ct = InducedCsr(g2_, nodes2, &lo2);
    GA_ASSIGN_OR_RETURN(
        DenseMatrix t,
        GromovWassersteinTransport(cs, ct, DegreeMarginal(cs),
                                   DegreeMarginal(ct), options_.gw,
                                   /*extra_cost=*/nullptr,
                                   /*initial_transport=*/nullptr, deadline_));
    const double mx = t.MaxAbs();
    const double scale = mx > 0.0 ? 1.0 / mx : 1.0;
    for (size_t i = 0; i < nodes1.size(); ++i) {
      for (size_t j = 0; j < nodes2.size(); ++j) {
        (*sim_)(nodes1[i], nodes2[j]) = scale * t(i, j);
      }
    }
    return Status::Ok();
  }

  Status Recurse(const std::vector<int>& nodes1,
                 const std::vector<int>& nodes2, int depth) {
    const int n1 = static_cast<int>(nodes1.size());
    const int n2 = static_cast<int>(nodes2.size());
    if (n1 == 0 || n2 == 0) return Status::Ok();
    if (std::min(n1, n2) <= options_.leaf_size ||
        depth >= options_.max_depth) {
      return SolveLeaf(nodes1, nodes2);
    }
    const int k =
        std::min({options_.partition_k, n1, n2});
    std::vector<int> lo1, lo2;
    const CsrMatrix cs = InducedCsr(g1_, nodes1, &lo1);
    const CsrMatrix ct = InducedCsr(g2_, nodes2, &lo2);
    const std::vector<double> mu = DegreeMarginal(cs);
    const std::vector<double> nu = DegreeMarginal(ct);
    const std::vector<double> wb = UniformMarginal(k);

    // Barycenter cost: start from a graded diagonal-dominant structure so
    // parts are distinguishable, then alternate transports and barycenter
    // updates.
    DenseMatrix cb(k, k);
    for (int a = 0; a < k; ++a) {
      for (int b = 0; b < k; ++b) {
        cb(a, b) = a == b ? 1.0 : 0.2 / (1.0 + std::abs(a - b));
      }
    }
    DenseMatrix t1, t2;
    for (int it = 0; it < options_.barycenter_iterations; ++it) {
      GA_RETURN_IF_EXPIRED(deadline_, "S-GWL barycenter");
      const CsrMatrix cb_csr = DenseToCsr(cb);
      GA_ASSIGN_OR_RETURN(
          t1, GromovWassersteinTransport(cs, cb_csr, mu, wb, options_.gw,
                                         /*extra_cost=*/nullptr,
                                         /*initial_transport=*/nullptr,
                                         deadline_));
      GA_ASSIGN_OR_RETURN(
          t2, GromovWassersteinTransport(ct, cb_csr, nu, wb, options_.gw,
                                         /*extra_cost=*/nullptr,
                                         /*initial_transport=*/nullptr,
                                         deadline_));
      // Barycenter update: Cb = avg_s (Ts^T Cs Ts) ./ (ms ms^T).
      DenseMatrix num1 = cs.Multiply(t1);        // n1 x k
      DenseMatrix c1 = MultiplyAtB(t1, num1);    // k x k
      DenseMatrix num2 = ct.Multiply(t2);
      DenseMatrix c2 = MultiplyAtB(t2, num2);
      std::vector<double> m1(k, 0.0), m2(k, 0.0);
      for (int i = 0; i < n1; ++i) {
        for (int a = 0; a < k; ++a) m1[a] += t1(i, a);
      }
      for (int j = 0; j < n2; ++j) {
        for (int a = 0; a < k; ++a) m2[a] += t2(j, a);
      }
      for (int a = 0; a < k; ++a) {
        for (int b = 0; b < k; ++b) {
          const double d1 = std::max(m1[a] * m1[b], 1e-12);
          const double d2 = std::max(m2[a] * m2[b], 1e-12);
          cb(a, b) = 0.5 * (c1(a, b) / d1 + c2(a, b) / d2);
        }
      }
    }

    // Hard co-partition by the transports' argmax.
    std::vector<std::vector<int>> parts1(k), parts2(k);
    for (int i = 0; i < n1; ++i) {
      int best = 0;
      for (int a = 1; a < k; ++a) {
        if (t1(i, a) > t1(i, best)) best = a;
      }
      parts1[best].push_back(nodes1[i]);
    }
    for (int j = 0; j < n2; ++j) {
      int best = 0;
      for (int a = 1; a < k; ++a) {
        if (t2(j, a) > t2(j, best)) best = a;
      }
      parts2[best].push_back(nodes2[j]);
    }

    // Degenerate partition (everything in one bucket): solve directly
    // rather than recursing forever.
    int nonempty_pairs = 0;
    for (int a = 0; a < k; ++a) {
      if (!parts1[a].empty() && !parts2[a].empty()) ++nonempty_pairs;
    }
    if (nonempty_pairs <= 1) return SolveLeaf(nodes1, nodes2);

    for (int a = 0; a < k; ++a) {
      GA_RETURN_IF_ERROR(Recurse(parts1[a], parts2[a], depth + 1));
    }
    return Status::Ok();
  }

  const Graph& g1_;
  const Graph& g2_;
  const SgwlOptions& options_;
  const Deadline& deadline_;
  DenseMatrix* sim_;
};

}  // namespace

Result<DenseMatrix> SgwlAligner::ComputeSimilarityImpl(
    const Graph& g1, const Graph& g2, const Deadline& deadline) {
  GA_RETURN_IF_ERROR(ValidateInputs(g1, g2));
  if (options_.partition_k < 2 || options_.leaf_size < 2) {
    return Status::InvalidArgument("S-GWL: bad options");
  }
  DenseMatrix sim(g1.num_nodes(), g2.num_nodes());
  SgwlSolver solver(g1, g2, options_, deadline, &sim);
  GA_RETURN_IF_ERROR(solver.Run());
  return sim;
}

}  // namespace graphalign
