// Experiment harness shared by the figure/table benchmarks.
//
// Mirrors the paper's protocol (§5.1): for each configuration, several noisy
// instances are generated from one base graph, every algorithm aligns each
// instance, and averaged quality/timing is reported. Runtime of the
// similarity stage is reported separately from assignment (§6.2), and runs
// exceeding a time budget are reported as DNF — the same semantics as the
// paper's 3-hour limit (Table 3).
//
// Failure containment: with isolation on (--isolate; the default for --full
// sweeps), every cell runs in a forked child under rlimit memory and
// wall-clock caps (common/subprocess.h). A segfault, GA_CHECK abort, or
// out-of-memory kill in one cell becomes a CRASH/OOM table entry and the
// sweep continues; the outcome taxonomy is OK / ERR / DNF / CRASH / OOM
// (DESIGN.md §10).
#ifndef GRAPHALIGN_BENCH_FRAMEWORK_EXPERIMENT_H_
#define GRAPHALIGN_BENCH_FRAMEWORK_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "align/aligner.h"
#include "common/status.h"
#include "graph/graph.h"
#include "metrics/metrics.h"
#include "noise/noise.h"

namespace graphalign {

// Command-line contract shared by all bench binaries:
//   --full           paper-scale sizes (default: scaled-down smoke sizes)
//   --reps N         repetitions per configuration
//   --algos A,B,C    restrict to a subset of algorithms
//   --csv PATH       also write the result table as CSV
//   --json PATH      also write the result table as JSON (rows as objects)
//   --seed S         master seed
//   --time-limit T   per-run budget in seconds (DNF beyond it)
//   --isolate        run every cell in a forked child (crash/OOM containment)
//   --no-isolate     opt out of the --full default isolation
//   --mem-limit MB   per-cell memory cap (implies --isolate)
//   --journal PATH   append every completed cell to a checkpoint journal
//   --resume         skip cells already present in the journal
//   --retries N      extra attempts for transiently failed isolated cells
//                    (CRASH/OOM/fork failure); 0 disables retries
struct BenchArgs {
  bool full = false;
  int repetitions = 0;  // 0 = bench-specific default.
  std::vector<std::string> algorithms;  // Empty = all.
  std::string csv_path;
  std::string json_path;
  uint64_t seed = 2023;
  double time_limit_seconds = 600.0;
  bool isolate = false;          // Resolved: --isolate, --mem-limit, or
                                 // --full without --no-isolate.
  double mem_limit_mb = 0.0;     // 0 = no memory cap.
  std::string journal_path;      // Empty = no journal.
  bool resume = false;
  int retries = 1;               // Extra attempts per transiently-failed
                                 // isolated cell before the journal records
                                 // the fault.
};

BenchArgs ParseBenchArgs(int argc, char** argv);

// The algorithms selected by the args (all paper algorithms when empty).
std::vector<std::string> SelectedAlgorithms(const BenchArgs& args);

// Outcome of one or more alignment runs.
struct RunOutcome {
  bool completed = false;
  std::string error;          // Set when not completed; the leading token
                              // ("DNF"/"CRASH"/"OOM", else ERR) is what the
                              // tables render.
  QualityReport quality;      // Averaged over completed repetitions.
  double similarity_seconds = 0.0;  // Averaged.
  double assignment_seconds = 0.0;  // Averaged.
  int completed_runs = 0;
  double peak_mem_mb = 0.0;   // Child's peak RSS; only set by isolated runs.
  int64_t aux_count = 0;      // Bench-defined auxiliary counter, carried
                              // across the isolation pipe (e.g. the sparse
                              // pipeline's candidate count).
  bool degraded = false;      // Completed via a numerical fallback; tables
                              // render the value with a trailing '*'.
  std::string degrade_reason;
};

// Runs `aligner` once on `problem`, timing similarity and assignment
// separately. The budget is enforced cooperatively: the similarity stage is
// given a Deadline and aborts with DNF soon after it expires, rather than
// only being flagged DNF after running to completion.
RunOutcome RunAligner(Aligner* aligner, const AlignmentProblem& problem,
                      AssignmentMethod method, double time_limit_seconds);

// The paper's averaged protocol: `reps` noisy instances from `base` per the
// options, aligned and averaged. Stops early (DNF) once the budget is spent.
RunOutcome RunAveraged(Aligner* aligner, const Graph& base,
                       const NoiseOptions& noise, AssignmentMethod method,
                       int reps, uint64_t seed, double time_limit_seconds);

// Isolation-aware overloads: honor args.isolate / args.mem_limit_mb on top
// of the cooperative args.time_limit_seconds budget. When isolation is on,
// the run executes in a forked child and a crash, memory blow-up, or
// non-cooperative hang is contained there and reported in the outcome.
RunOutcome RunAligner(Aligner* aligner, const AlignmentProblem& problem,
                      AssignmentMethod method, const BenchArgs& args);
RunOutcome RunAveraged(Aligner* aligner, const Graph& base,
                       const NoiseOptions& noise, AssignmentMethod method,
                       int reps, uint64_t seed, const BenchArgs& args);

// Runs `body` under the args' isolation policy: inline when isolation is
// off, otherwise in a forked child with the args' memory cap and a hard
// wall-clock backstop derived from the time limit. Crash/OOM/kill outcomes
// come back as RunOutcome errors ("CRASH (...)", "OOM (...)", "DNF (...)").
RunOutcome RunContained(const BenchArgs& args,
                        const std::function<RunOutcome()>& body);

// Peak-memory probe for the scalability benches: always forks (VmHWM is
// monotone per process), applies the args' limits, and reports the child's
// peak RSS in outcome.peak_mem_mb with the same failure classification as
// RunContained.
RunOutcome MeasurePeakMemory(const BenchArgs& args,
                             const std::function<void()>& body);

// Test-only fault injectors, reachable from every bench via --algos:
//   _CRASH  raises SIGSEGV inside ComputeSimilarity
//   _OOM    allocates unboundedly (capped at a few GB as a safety net)
//   _HANG   spins without polling the cooperative deadline
// They model exactly the non-cooperative failures the isolated executor
// contains; run them only under --isolate. Returns nullptr for other names.
std::unique_ptr<Aligner> MakeFaultAligner(const std::string& name);

// Formats an outcome's accuracy (or "DNF"/"CRASH"/"OOM"/"ERR") for tables.
// Degraded outcomes render as "value*" (see RunOutcome::degraded).
std::string FormatOutcome(const RunOutcome& outcome, double value);
std::string FormatAccuracy(const RunOutcome& outcome);

}  // namespace graphalign

#endif  // GRAPHALIGN_BENCH_FRAMEWORK_EXPERIMENT_H_
