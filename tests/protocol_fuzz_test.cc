// Deterministic fuzz suite for the wire protocol (DESIGN.md §11, §14): the
// decoders are total functions, so every byte sequence — pure noise,
// truncated prefixes of valid messages, valid messages with flipped bytes —
// must map to a typed outcome without crashing, hanging, or reading out of
// bounds. The suite is seeded (SplitMix64) so every run covers the same
// inputs; tools/run_sanitize.sh re-runs this binary under AddressSanitizer,
// where a silent overread becomes a hard failure.

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/status.h"
#include "gateway/http.h"
#include "gateway/json.h"
#include "graph/graph.h"
#include "server/protocol.h"
#include "store/gst.h"

namespace graphalign {
namespace {

// SplitMix64: tiny, seedable, and good enough to cover the byte space. Kept
// local so the fuzz corpus never shifts underneath a changed shared RNG.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  std::string Bytes(size_t n) {
    std::string out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(static_cast<char>(Next() & 0xff));
    }
    return out;
  }

 private:
  uint64_t state_;
};

// Exercises every decoder that can see attacker bytes on `payload`. The only
// assertion is "no crash / no hang / no overread": each call must return,
// and ASan enforces the memory-safety half.
void DrainDecoders(std::string_view payload) {
  { Result<Request> r = DecodeRequest(payload); (void)r; }
  { Result<Response> r = DecodeResponse(payload); (void)r; }
  { Result<AlignResult> r = DecodeAlignResult(payload); (void)r; }
  { Result<EvaluateResult> r = DecodeEvaluateResult(payload); (void)r; }
  { Result<StatsResult> r = DecodeStatsResult(payload); (void)r; }
  { Result<CacheInfoResult> r = DecodeCacheInfoResult(payload); (void)r; }
  { Result<ServerStatsResult> r = DecodeServerStatsResult(payload); (void)r; }
  { Result<PutGraphResult> r = DecodePutGraphResult(payload); (void)r; }
  { Result<HasGraphResult> r = DecodeHasGraphResult(payload); (void)r; }
  { Result<AlignBatchResult> r = DecodeAlignBatchResult(payload); (void)r; }
}

// The GST1 opener sees whatever bytes survived the disk; like the wire
// decoders it must be a total function. Callers hand it 8-aligned mmapped
// buffers, so fuzz inputs are copied into an aligned allocation first.
Result<Graph> OpenGstAlignedCopy(std::string_view bytes) {
  const size_t words = bytes.size() / 8 + 1;
  auto aligned = std::make_shared<std::vector<uint64_t>>(words);
  std::memcpy(aligned->data(), bytes.data(), bytes.size());
  const std::string_view view(
      reinterpret_cast<const char*>(aligned->data()), bytes.size());
  GstInfo info;
  return OpenGstBytes(view, aligned, &info);
}

void DrainGstOpener(std::string_view bytes) {
  Result<Graph> r = OpenGstAlignedCopy(bytes);
  if (r.ok()) {
    // Anything that opens must be internally coherent enough to walk.
    EXPECT_GE(r->num_nodes(), 0);
    EXPECT_GE(r->num_edges(), 0);
  } else {
    // Only the typed verification/availability codes may come back — an
    // unknown code would mean some error path bypassed classification.
    const StatusCode code = r.status().code();
    EXPECT_TRUE(code == StatusCode::kCorrupt ||
                code == StatusCode::kUnavailable)
        << r.status().message();
  }
}

WireGraph SmallWireGraph(SplitMix64* rng, int num_nodes, int num_edges) {
  WireGraph g;
  g.num_nodes = num_nodes;
  for (int i = 0; i < num_edges; ++i) {
    int u = static_cast<int>(rng->Below(static_cast<uint64_t>(num_nodes)));
    int v = static_cast<int>(rng->Below(static_cast<uint64_t>(num_nodes)));
    if (u == v) v = (v + 1) % num_nodes;
    g.edges.push_back(Edge{u < v ? u : v, u < v ? v : u});
  }
  return g;
}

// A small deterministic graph whose GST1 encoding seeds the mutation tests.
std::string SeedGstBytes(SplitMix64* rng, int num_nodes, int num_edges) {
  WireGraph wg = SmallWireGraph(rng, num_nodes, num_edges);
  Result<Graph> g = Graph::FromEdges(wg.num_nodes, wg.edges);
  EXPECT_TRUE(g.ok()) << g.status().message();
  return EncodeGst(*g);
}

// A corpus of well-formed encoded payloads: one request per RequestType and
// one response per shape of body. Mutations start from these so the fuzz
// reaches deep decoder paths (graph loops, string reads, vector counts)
// instead of dying at the type byte.
std::vector<std::string> SeedCorpus(SplitMix64* rng) {
  std::vector<std::string> corpus;

  Request ping;
  ping.type = RequestType::kPing;
  ping.client = "fuzz";
  corpus.push_back(EncodeRequest(ping));

  Request align;
  align.type = RequestType::kAlign;
  align.client = "fuzz-align";
  align.align.algo = "NSD";
  align.align.assign = "JV";
  align.align.deadline_ms = 1500;
  align.align.mem_limit_mb = 256;
  align.align.g1 = SmallWireGraph(rng, 12, 20);
  align.align.g2 = SmallWireGraph(rng, 12, 20);
  corpus.push_back(EncodeRequest(align));

  Request evaluate;
  evaluate.type = RequestType::kEvaluate;
  evaluate.evaluate.g1 = SmallWireGraph(rng, 8, 10);
  evaluate.evaluate.g2 = SmallWireGraph(rng, 8, 10);
  evaluate.evaluate.mapping = {0, 1, 2, 3, 4, 5, 6, 7};
  evaluate.evaluate.truth = {0, 1, 2, 3, -1, -1, 6, 7};
  corpus.push_back(EncodeRequest(evaluate));

  Request stats;
  stats.type = RequestType::kStats;
  stats.stats.g = SmallWireGraph(rng, 10, 15);
  corpus.push_back(EncodeRequest(stats));

  for (RequestType t : {RequestType::kCacheInfo, RequestType::kShutdown,
                        RequestType::kServerStats}) {
    Request r;
    r.type = t;
    r.client = "fuzz";
    corpus.push_back(EncodeRequest(r));
  }

  Request put;
  put.type = RequestType::kPutGraph;
  put.client = "fuzz-put";
  put.put_graph.g = SmallWireGraph(rng, 9, 14);
  corpus.push_back(EncodeRequest(put));

  Request has;
  has.type = RequestType::kHasGraph;
  has.client = "fuzz-has";
  has.has_graph.hash = 0x0123456789abcdefull;
  corpus.push_back(EncodeRequest(has));

  // Submit-by-hash: an align frame that names graphs instead of carrying
  // them. Mutations of this seed cover the hash fields and the by-hash flag.
  Request by_hash;
  by_hash.type = RequestType::kAlign;
  by_hash.client = "fuzz-by-hash";
  by_hash.align.algo = "GRASP";
  by_hash.align.assign = "JV";
  by_hash.align.by_hash = true;
  by_hash.align.g1_hash = 0x1111222233334444ull;
  by_hash.align.g2_hash = 0x5555666677778888ull;
  corpus.push_back(EncodeRequest(by_hash));

  // A batch: two graph-table entries (one by hash, one inline), three jobs.
  // Mutations of this seed cover the table/job counts, the per-job index
  // validation, and the by-hash exclusivity check.
  Request batch;
  batch.type = RequestType::kAlignBatch;
  batch.client = "fuzz-batch";
  BatchGraphRef by_hash_ref;
  by_hash_ref.by_hash = true;
  by_hash_ref.hash = 0x99aabbccddeeff00ull;
  batch.align_batch.graphs.push_back(by_hash_ref);
  BatchGraphRef inline_ref;
  inline_ref.inline_graph = SmallWireGraph(rng, 7, 10);
  batch.align_batch.graphs.push_back(inline_ref);
  for (int j = 0; j < 3; ++j) {
    BatchJob job;
    job.g1 = static_cast<uint32_t>(j % 2);
    job.g2 = static_cast<uint32_t>((j + 1) % 2);
    job.algo = j == 0 ? "NSD" : "LREA";
    job.deadline_ms = 100 * static_cast<uint64_t>(j);
    job.no_cache = (j == 2);
    batch.align_batch.jobs.push_back(job);
  }
  corpus.push_back(EncodeRequest(batch));

  Response ok;
  ok.code = ResponseCode::kOk;
  ok.cache_hit = true;
  ok.elapsed_us = 1234;
  AlignResult align_body;
  align_body.mapping = {3, 1, 0, 2};
  align_body.mnc = 0.5;
  align_body.ec = 0.25;
  align_body.s3 = 0.125;
  align_body.align_seconds = 0.01;
  align_body.degraded = true;
  align_body.degrade_reason = "eigen fallback";
  ok.body = EncodeAlignResult(align_body);
  corpus.push_back(EncodeResponse(ok));

  Response err;
  err.code = ResponseCode::kQuarantined;
  err.message = "request signature quarantined";
  corpus.push_back(EncodeResponse(err));

  EvaluateResult eval_body;
  eval_body.mnc = 0.75;
  eval_body.has_accuracy = true;
  eval_body.accuracy = 0.9;
  corpus.push_back(EncodeEvaluateResult(eval_body));

  StatsResult stats_body;
  stats_body.num_nodes = 60;
  stats_body.num_edges = 171;
  stats_body.content_hash = 0xdeadbeefcafef00dull;
  corpus.push_back(EncodeStatsResult(stats_body));

  CacheInfoResult cache_body;
  cache_body.hits = 10;
  cache_body.entries = 3;
  cache_body.capacity_bytes = 1u << 20;
  corpus.push_back(EncodeCacheInfoResult(cache_body));

  ServerStatsResult server_body;
  server_body.workers = 4;
  server_body.uptime_seconds = 12.5;
  server_body.accepted = 100;
  server_body.quarantined_signatures = 2;
  server_body.worker_restarts = {0, 1, 0, 3};
  corpus.push_back(EncodeServerStatsResult(server_body));

  PutGraphResult put_body;
  put_body.content_hash = 0x27f1f48ddd44eec1ull;
  put_body.already_present = true;
  corpus.push_back(EncodePutGraphResult(put_body));

  HasGraphResult has_body;
  has_body.present = true;
  corpus.push_back(EncodeHasGraphResult(has_body));

  // A partial batch result: one OK job carrying a nested AlignResult body,
  // one failed job. Flips reach the nested-body length and the per-job
  // code validation.
  AlignBatchResult batch_body;
  batch_body.graph_loads = 2;
  BatchJobOutcome job_ok;
  job_ok.code = ResponseCode::kOk;
  job_ok.cache_hit = true;
  AlignResult nested;
  nested.mapping = {2, 0, 1};
  nested.mnc = 0.5;
  job_ok.body = EncodeAlignResult(nested);
  batch_body.jobs.push_back(job_ok);
  BatchJobOutcome job_bad;
  job_bad.code = ResponseCode::kDnf;
  job_bad.message = "deadline exceeded in child";
  batch_body.jobs.push_back(job_bad);
  corpus.push_back(EncodeAlignBatchResult(batch_body));

  return corpus;
}

TEST(ProtocolFuzzTest, RandomBlobsNeverCrashTheFrameParser) {
  SplitMix64 rng(0x6761665f66757a31ull);  // "gaf_fuz1"
  for (int iter = 0; iter < 4000; ++iter) {
    std::string blob = rng.Bytes(rng.Below(96));
    // A random prefix sometimes gets the real magic so length validation is
    // reached, not just the magic check.
    if (blob.size() >= 4 && rng.Below(2) == 0) {
      std::memcpy(blob.data(), kFrameMagic, sizeof(kFrameMagic));
    }
    std::string payload;
    size_t consumed = 0;
    FrameStatus status = TryParseFrame(blob, &payload, &consumed);
    switch (status) {
      case FrameStatus::kComplete:
        EXPECT_LE(consumed, blob.size());
        EXPECT_LE(payload.size(), kMaxFramePayload);
        break;
      case FrameStatus::kIncomplete:
      case FrameStatus::kBadMagic:
      case FrameStatus::kOversized:
      case FrameStatus::kEmpty:
        break;
      default:
        FAIL() << "untyped frame status " << static_cast<int>(status);
    }
  }
}

TEST(ProtocolFuzzTest, RandomBlobsNeverCrashTheDecoders) {
  SplitMix64 rng(0x6761665f66757a32ull);
  for (int iter = 0; iter < 2000; ++iter) {
    DrainDecoders(rng.Bytes(rng.Below(160)));
  }
  // Empty and single-byte payloads are the classic off-by-one edges.
  DrainDecoders("");
  for (int b = 0; b < 256; ++b) {
    char c = static_cast<char>(b);
    DrainDecoders(std::string_view(&c, 1));
  }
}

TEST(ProtocolFuzzTest, EveryTruncationOfEveryValidMessageIsTyped) {
  SplitMix64 rng(0x6761665f66757a33ull);
  for (const std::string& msg : SeedCorpus(&rng)) {
    for (size_t len = 0; len < msg.size(); ++len) {
      DrainDecoders(std::string_view(msg.data(), len));
      // Framed truncations: the stream reader's view of a torn message.
      std::string framed = EncodeFrame(msg).substr(0, kFrameHeaderBytes + len);
      std::string payload;
      size_t consumed = 0;
      EXPECT_EQ(TryParseFrame(framed, &payload, &consumed),
                FrameStatus::kIncomplete);
    }
  }
}

TEST(ProtocolFuzzTest, ByteFlipsOnValidMessagesAreTyped) {
  SplitMix64 rng(0x6761665f66757a34ull);
  for (const std::string& msg : SeedCorpus(&rng)) {
    // Single flip at every offset: cheap and covers the length/count fields
    // a random fuzz would rarely hit with exactly-wrong values.
    for (size_t pos = 0; pos < msg.size(); ++pos) {
      std::string mutated = msg;
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1u << rng.Below(8)));
      DrainDecoders(mutated);
    }
    // Multi-byte stomps: overwrite a random window with random bytes.
    for (int iter = 0; iter < 200; ++iter) {
      std::string mutated = msg;
      size_t pos = rng.Below(mutated.size());
      size_t n = 1 + rng.Below(8);
      for (size_t i = 0; i < n && pos + i < mutated.size(); ++i) {
        mutated[pos + i] = static_cast<char>(rng.Next() & 0xff);
      }
      DrainDecoders(mutated);
    }
  }
}

TEST(ProtocolFuzzTest, HostileLengthPrefixesDoNotBlowUpAllocation) {
  // A four-byte count field stomped to 0xffffffff must fail the bounds
  // check, not reserve 4 G entries. Build payloads that are valid up to a
  // huge trailing count.
  SplitMix64 rng(0x6761665f66757a35ull);
  for (const std::string& msg : SeedCorpus(&rng)) {
    for (int iter = 0; iter < 64; ++iter) {
      std::string mutated = msg;
      if (mutated.size() < 4) continue;
      size_t pos = rng.Below(mutated.size() - 3);
      uint32_t huge = 0xfffffff0u + static_cast<uint32_t>(rng.Below(16));
      std::memcpy(mutated.data() + pos, &huge, sizeof(huge));
      DrainDecoders(mutated);
    }
  }
}

TEST(ProtocolFuzzTest, ValidCorpusStillRoundTrips) {
  // Guard against the fuzz passing because the decoders reject everything:
  // the untouched corpus must decode cleanly as the type that produced it.
  SplitMix64 rng(0x6761665f66757a36ull);
  std::vector<std::string> corpus = SeedCorpus(&rng);
  int request_ok = 0;
  int response_ok = 0;
  for (const std::string& msg : corpus) {
    if (DecodeRequest(msg).ok()) ++request_ok;
    if (DecodeResponse(msg).ok()) ++response_ok;
  }
  // One per RequestType, plus the by-hash align and the batch.
  EXPECT_GE(request_ok, 11);
  EXPECT_GE(response_ok, 2);  // The kOk and kQuarantined seeds.

  Request align;
  align.type = RequestType::kAlign;
  align.client = "roundtrip";
  align.align.algo = "GRASP";
  align.align.g1 = SmallWireGraph(&rng, 6, 8);
  align.align.g2 = SmallWireGraph(&rng, 6, 8);
  Result<Request> decoded = DecodeRequest(EncodeRequest(align));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->type, RequestType::kAlign);
  EXPECT_EQ(decoded->client, "roundtrip");
  EXPECT_EQ(decoded->align.algo, "GRASP");
  EXPECT_EQ(decoded->align.g1.edges.size(), align.align.g1.edges.size());
}

// --- GST1 store format -----------------------------------------------------
// The same discipline as the wire decoders, applied to the on-disk graph
// format: the opener must map every byte sequence to a typed outcome
// (DESIGN.md §15). These run under ASan via tools/run_sanitize.sh, where a
// lying section offset that is dereferenced before validation becomes a
// hard failure instead of a silent overread.

// --- Hostile HTTP ----------------------------------------------------------
// The gateway's HTTP parser (DESIGN.md §16) faces raw internet-shaped bytes
// on a TCP port, so it gets the same total-function treatment as the GAF1
// decoders, under the same ASan pass: random blobs, truncations of valid
// requests, header floods, and hostile Content-Length declarations must all
// return a typed HttpParseStatus without crashing or buffering past a cap.

void DrainHttpParser(std::string_view buf, const HttpLimits& limits) {
  HttpRequest request;
  size_t consumed = 0;
  std::string error;
  const HttpParseStatus status =
      ParseHttpRequest(buf, limits, &request, &consumed, &error);
  switch (status) {
    case HttpParseStatus::kComplete:
      EXPECT_LE(consumed, buf.size());
      EXPECT_LE(request.body.size(), limits.max_body_bytes);
      break;
    case HttpParseStatus::kIncomplete:
    case HttpParseStatus::kBad:
    case HttpParseStatus::kTooLarge:
    case HttpParseStatus::kBodyTooLarge:
    case HttpParseStatus::kUnsupported:
      break;
    default:
      FAIL() << "untyped HTTP parse status " << static_cast<int>(status);
  }
}

TEST(HttpFuzzTest, RandomBlobsNeverCrashTheParser) {
  SplitMix64 rng(0x687474705f66757aull);  // "http_fuz"
  const HttpLimits limits;
  for (int iter = 0; iter < 4000; ++iter) {
    std::string blob = rng.Bytes(rng.Below(256));
    // Half the blobs get a plausible prefix so header and body parsing are
    // reached, not just the request-line check.
    switch (rng.Below(4)) {
      case 0:
        blob = "POST /v1/align HTTP/1.1\r\n" + blob;
        break;
      case 1:
        blob = "GET / HTTP/1.1\r\nContent-Length: " + blob;
        break;
      default:
        break;
    }
    DrainHttpParser(blob, limits);
  }
  DrainHttpParser("", limits);
  for (int b = 0; b < 256; ++b) {
    char c = static_cast<char>(b);
    DrainHttpParser(std::string_view(&c, 1), limits);
  }
}

TEST(HttpFuzzTest, TruncationsAndFlipsOfValidRequestsAreTyped) {
  SplitMix64 rng(0x687474705f66757bull);
  const HttpLimits limits;
  const std::string valid =
      "POST /v1/align:batch HTTP/1.1\r\n"
      "Host: localhost:8080\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 24\r\n"
      "\r\n"
      "{\"graphs\":[],\"jobs\":[]}x";
  for (size_t len = 0; len < valid.size(); ++len) {
    DrainHttpParser(std::string_view(valid.data(), len), limits);
  }
  for (size_t pos = 0; pos < valid.size(); ++pos) {
    std::string mutated = valid;
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1u << rng.Below(8)));
    DrainHttpParser(mutated, limits);
  }
}

TEST(HttpFuzzTest, HeaderFloodsAreBoundedByTheCap) {
  // An endless header drip must flip to kTooLarge once the cap is crossed
  // and stay there — the caller never buffers proportional to attacker
  // input beyond max_head_bytes plus one read.
  HttpLimits limits;
  limits.max_head_bytes = 2048;
  std::string flood = "GET / HTTP/1.1\r\n";
  bool saturated = false;
  while (flood.size() < limits.max_head_bytes * 2) {
    HttpRequest request;
    size_t consumed = 0;
    std::string error;
    const HttpParseStatus status =
        ParseHttpRequest(flood, limits, &request, &consumed, &error);
    if (flood.size() > limits.max_head_bytes) {
      EXPECT_EQ(status, HttpParseStatus::kTooLarge);
      saturated = true;
    } else {
      EXPECT_EQ(status, HttpParseStatus::kIncomplete);
    }
    flood += "X-F: " + std::string(97, 'a') + "\r\n";
  }
  EXPECT_TRUE(saturated);
}

TEST(HttpFuzzTest, HostileContentLengthsNeverAllocate) {
  SplitMix64 rng(0x687474705f66757cull);
  const HttpLimits limits;
  const char* hostile[] = {
      "18446744073709551615", "99999999999999999999", "0x1000", "1e9",
      "-1", " 5", "5 ", "5,5", "+5", "005x", "", "9223372036854775808",
  };
  for (const char* cl : hostile) {
    const std::string req = "POST / HTTP/1.1\r\nContent-Length: " +
                            std::string(cl) + "\r\n\r\n";
    DrainHttpParser(req, limits);
  }
  // Random numeric declarations: over the cap must reject from the header
  // alone (kBodyTooLarge), never wait for (or buffer) the declared bytes.
  for (int iter = 0; iter < 256; ++iter) {
    const uint64_t declared = rng.Next() % (uint64_t{1} << 40);
    const std::string req = "POST / HTTP/1.1\r\nContent-Length: " +
                            std::to_string(declared) + "\r\n\r\n";
    HttpRequest request;
    size_t consumed = 0;
    std::string error;
    const HttpParseStatus status =
        ParseHttpRequest(req, limits, &request, &consumed, &error);
    if (declared > limits.max_body_bytes) {
      EXPECT_EQ(status, HttpParseStatus::kBodyTooLarge) << declared;
    } else {
      EXPECT_EQ(status, HttpParseStatus::kIncomplete) << declared;
    }
  }
}

TEST(HttpFuzzTest, JsonParserIsTotalOnHostileBodies) {
  // The JSON layer sits directly behind the HTTP body; same discipline.
  SplitMix64 rng(0x6a736f6e5f66757aull);  // "json_fuz"
  for (int iter = 0; iter < 2000; ++iter) {
    std::string blob = rng.Bytes(rng.Below(160));
    if (rng.Below(2) == 0) blob = "{\"a\":[" + blob;
    Result<JsonValue> r = ParseJson(blob);
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    }
  }
  const std::string valid =
      R"({"graphs":[{"hash":"00ff00ff00ff00ff"},{"n":3,"edges":[[0,1]]}],)"
      R"("jobs":[{"g1":0,"g2":1,"algo":"NSD","deadline_ms":100}]})";
  for (size_t len = 0; len < valid.size(); ++len) {
    Result<JsonValue> r = ParseJson(std::string_view(valid.data(), len));
    (void)r;
  }
  for (size_t pos = 0; pos < valid.size(); ++pos) {
    std::string mutated = valid;
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1u << rng.Below(8)));
    Result<JsonValue> r = ParseJson(mutated);
    if (r.ok()) {
      // Anything that parses must re-serialize without crashing.
      (void)r->Dump();
    }
  }
}

TEST(GstFuzzTest, RandomBlobsNeverCrashTheOpener) {
  SplitMix64 rng(0x6773745f66757a31ull);  // "gst_fuz1"
  for (int iter = 0; iter < 2000; ++iter) {
    std::string blob = rng.Bytes(rng.Below(512));
    // Half the blobs get the real magic so version/size/table validation is
    // reached, not just the magic check.
    if (blob.size() >= 4 && rng.Below(2) == 0) {
      std::memcpy(blob.data(), kGstMagic, sizeof(kGstMagic));
    }
    DrainGstOpener(blob);
  }
  DrainGstOpener("");
  for (int b = 0; b < 256; ++b) {
    char c = static_cast<char>(b);
    DrainGstOpener(std::string_view(&c, 1));
  }
}

TEST(GstFuzzTest, EveryTruncationOfAValidFileIsCorrupt) {
  SplitMix64 rng(0x6773745f66757a32ull);
  std::string gst = SeedGstBytes(&rng, 24, 40);
  for (size_t len = 0; len < gst.size(); ++len) {
    Result<Graph> r = OpenGstAlignedCopy(std::string_view(gst.data(), len));
    ASSERT_FALSE(r.ok()) << "truncation to " << len << " bytes opened";
    EXPECT_EQ(r.status().code(), StatusCode::kCorrupt) << "len=" << len;
  }
}

TEST(GstFuzzTest, EverySingleBitFlipIsCorrupt) {
  // The header comment claims every byte is covered by exactly one CRC;
  // prove it for every bit of every byte of a seed file.
  SplitMix64 rng(0x6773745f66757a33ull);
  std::string gst = SeedGstBytes(&rng, 12, 18);
  for (size_t pos = 0; pos < gst.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = gst;
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1u << bit));
      Result<Graph> r = OpenGstAlignedCopy(mutated);
      ASSERT_FALSE(r.ok()) << "flip at byte " << pos << " bit " << bit;
      EXPECT_EQ(r.status().code(), StatusCode::kCorrupt);
    }
  }
}

TEST(GstFuzzTest, ByteStompsOnValidFilesAreTyped) {
  SplitMix64 rng(0x6773745f66757a34ull);
  std::string gst = SeedGstBytes(&rng, 20, 30);
  for (int iter = 0; iter < 1000; ++iter) {
    std::string mutated = gst;
    size_t pos = rng.Below(mutated.size());
    size_t n = 1 + rng.Below(16);
    for (size_t i = 0; i < n && pos + i < mutated.size(); ++i) {
      mutated[pos + i] = static_cast<char>(rng.Next() & 0xff);
    }
    DrainGstOpener(mutated);
  }
}

TEST(GstFuzzTest, HostileSectionTablesWithFixedCrcsAreStillTyped) {
  // Stomp the section-table offset/length fields with hostile values, then
  // re-stamp the header CRC so the checksum passes and the opener's bounds
  // checks are what must reject the file. Under ASan this proves no lying
  // offset is ever dereferenced before validation.
  SplitMix64 rng(0x6773745f66757a35ull);
  std::string gst = SeedGstBytes(&rng, 16, 24);
  // u64 offset and length fields of both section-table entries.
  const size_t kFields[] = {40 + 8, 40 + 16, 40 + 32 + 8, 40 + 32 + 16};
  for (size_t field : kFields) {
    for (int iter = 0; iter < 64; ++iter) {
      std::string mutated = gst;
      uint64_t hostile = 0;
      switch (iter % 4) {
        case 0:  // Pure noise.
          hostile = rng.Next();
          break;
        case 1:  // offset + length wraparound bait.
          hostile = 0xffffffffffffff00ull + rng.Below(256);
          break;
        case 2:  // Just past end of file.
          hostile = mutated.size() + rng.Below(64);
          break;
        case 3:  // In-bounds but pointing at the wrong bytes.
          hostile = rng.Below(mutated.size());
          break;
      }
      if (std::memcmp(mutated.data() + field, &hostile, sizeof(hostile)) ==
          0) {
        continue;  // Landed on the original value: still a valid file.
      }
      std::memcpy(mutated.data() + field, &hostile, sizeof(hostile));
      std::string preamble(mutated.data(), kGstPreambleBytes);
      std::memset(preamble.data() + 32, 0, 4);  // header_crc field zeroed.
      const uint32_t crc = Crc32c(preamble);
      std::memcpy(mutated.data() + 32, &crc, sizeof(crc));
      Result<Graph> r = OpenGstAlignedCopy(mutated);
      ASSERT_FALSE(r.ok()) << "field@" << field << " iter " << iter;
      EXPECT_EQ(r.status().code(), StatusCode::kCorrupt)
          << r.status().message();
    }
  }
}

}  // namespace
}  // namespace graphalign
