#!/usr/bin/env bash
# End-to-end exercise of the alignment service daemon (DESIGN.md §11):
#   1. start the daemon on a Unix socket and wait for it to answer pings,
#   2. fire concurrent submits, one of which is a _CRASH fault request —
#      the faulting request must get a typed CRASH response and the daemon
#      must keep serving everyone else,
#   3. resubmit an identical align request and assert it is answered from
#      the content-addressed cache, at least 10x faster than the cold run,
#   4. stop the daemon with a shutdown request.
#
# Usage: tools/run_server_smoke.sh [path-to-graphalign-binary]
set -euo pipefail

TOOL="${1:-build/src/cli/graphalign}"
if [[ ! -x "$TOOL" ]]; then
  echo "graphalign binary not found: $TOOL (build it first)" >&2
  exit 1
fi

WORK="$(mktemp -d)"
# Unix socket paths are capped at ~107 bytes; mktemp -d under /tmp is short.
SOCK="$WORK/ga.sock"
DAEMON_PID=""
cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2> /dev/null; then
    kill "$DAEMON_PID" 2> /dev/null || true
    wait "$DAEMON_PID" 2> /dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== 0/4 generate a graph pair =="
"$TOOL" generate --model er --n 300 --p 0.05 --seed 7 --out "$WORK/g1.txt"
"$TOOL" perturb --in "$WORK/g1.txt" --noise one-way --level 0.05 --seed 8 \
  --out "$WORK/g2.txt"

echo "== 1/4 start the daemon =="
"$TOOL" serve --socket "$SOCK" --workers 4 --cache-mb 16 \
  > "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

# Readiness: the client's own --retries loop (jittered exponential backoff
# on connect failures) replaces shell sleep-polling; between rounds, check
# the daemon is still alive so a crashed startup fails fast with its log
# instead of spinning out the full retry budget.
up=0
for _ in 1 2 3; do
  if "$TOOL" submit --socket "$SOCK" --ping --retries 4 > /dev/null 2>&1; then
    up=1
    break
  fi
  kill -0 "$DAEMON_PID" 2> /dev/null || break
done
if [[ "$up" != 1 ]]; then
  echo "daemon never came up (or died during startup):" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
fi

echo "== 2/4 concurrent submits with a crashing request =="
"$TOOL" submit --socket "$SOCK" --g1 "$WORK/g1.txt" --g2 "$WORK/g2.txt" \
  --algo NSD > "$WORK/align_a.out" &
A=$!
"$TOOL" submit --socket "$SOCK" --g1 "$WORK/g1.txt" --g2 "$WORK/g2.txt" \
  --algo _CRASH > "$WORK/crash.out" 2> "$WORK/crash.err" &
C=$!
"$TOOL" submit --socket "$SOCK" --stats "$WORK/g1.txt" \
  > "$WORK/stats.out" &
S=$!

wait "$A" || { echo "concurrent NSD align failed" >&2; exit 1; }
crash_rc=0
wait "$C" || crash_rc=$?
wait "$S" || { echo "concurrent stats failed" >&2; exit 1; }

# The fault request must come back as a typed CRASH (exit code 4), not as a
# dead daemon or a generic failure.
if [[ "$crash_rc" != 4 ]] || ! grep -q "status=CRASH" "$WORK/crash.out"; then
  echo "expected a typed CRASH response (rc=4), got rc=$crash_rc:" >&2
  cat "$WORK/crash.out" "$WORK/crash.err" >&2
  exit 1
fi
kill -0 "$DAEMON_PID" 2> /dev/null || {
  echo "daemon died after the _CRASH request:" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
}
grep -q "hash=" "$WORK/stats.out" || {
  echo "stats response missing content hash" >&2; exit 1; }
echo "daemon survived a crashing alignment; concurrent requests served"

echo "== 3/4 cache hit on an identical resubmit =="
# The first NSD align above populated the cache; run a fresh cold align of a
# *different* pair orientation to time the uncached path, then resubmit the
# original request and require a cache hit >= 10x faster (server-side time).
"$TOOL" submit --socket "$SOCK" --g1 "$WORK/g1.txt" --g2 "$WORK/g2.txt" \
  --algo NSD --no-cache > "$WORK/cold.out"
"$TOOL" submit --socket "$SOCK" --g1 "$WORK/g1.txt" --g2 "$WORK/g2.txt" \
  --algo NSD > "$WORK/warm.out"

grep -q "cache=miss" "$WORK/cold.out" || {
  echo "--no-cache run unexpectedly hit the cache:" >&2
  cat "$WORK/cold.out" >&2
  exit 1
}
grep -q "status=OK cache=hit" "$WORK/warm.out" || {
  echo "identical resubmit was not served from the cache:" >&2
  cat "$WORK/warm.out" >&2
  exit 1
}
cold_us="$(sed -n 's/.*elapsed_us=\([0-9]*\).*/\1/p' "$WORK/cold.out" | head -1)"
warm_us="$(sed -n 's/.*elapsed_us=\([0-9]*\).*/\1/p' "$WORK/warm.out" | head -1)"
if [[ -z "$cold_us" || -z "$warm_us" ]]; then
  echo "could not extract elapsed_us from submit output" >&2
  exit 1
fi
if (( warm_us == 0 )); then warm_us=1; fi
if (( cold_us < 10 * warm_us )); then
  echo "cache hit not >=10x faster: cold=${cold_us}us warm=${warm_us}us" >&2
  exit 1
fi
echo "cache hit: cold=${cold_us}us warm=${warm_us}us ($((cold_us / warm_us))x)"
"$TOOL" submit --socket "$SOCK" --cache-info

echo "== 4/4 shutdown request stops the daemon =="
"$TOOL" submit --socket "$SOCK" --shutdown > /dev/null
for _ in $(seq 1 50); do
  kill -0 "$DAEMON_PID" 2> /dev/null || break
  sleep 0.1
done
if kill -0 "$DAEMON_PID" 2> /dev/null; then
  echo "daemon ignored the shutdown request" >&2
  exit 1
fi
wait "$DAEMON_PID" 2> /dev/null || true
DAEMON_PID=""
grep -q "daemon stopped" "$WORK/daemon.log" || {
  echo "daemon log missing clean-stop line:" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
}

echo "server smoke test passed"
