// Social-network de-anonymization (the paper's introductory motivation):
// re-identify the same users across two crawls of a social network.
//
// Crawl A is the full network; crawl B is an "anonymized" release — node
// ids shuffled and 8% of friendships missing. We compare the scalable
// embedding methods (REGAL, CONE) against IsoRank with its degree prior and
// report how many users each method re-identifies, plus the structural
// overlap scores a practitioner would inspect when no ground truth exists.
//
// Build & run:  ./build/examples/social_deanonymization [--full]
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "align/aligner.h"
#include "common/random.h"
#include "common/table.h"
#include "common/timer.h"
#include "datasets/datasets.h"
#include "metrics/metrics.h"
#include "noise/noise.h"

int main(int argc, char** argv) {
  using namespace graphalign;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  // A Facebook-like social graph (Table-2 stand-in).
  auto crawl_a = MakeStandIn("Facebook", /*seed=*/7, full ? 1.0 : 0.1);
  if (!crawl_a.ok()) {
    std::fprintf(stderr, "%s\n", crawl_a.status().ToString().c_str());
    return 1;
  }
  std::printf("crawl A: %d users, %lld friendships\n", crawl_a->num_nodes(),
              static_cast<long long>(crawl_a->num_edges()));

  // The anonymized release: labels shuffled, 8% of edges not re-crawled.
  Rng rng(99);
  NoiseOptions noise;
  noise.type = NoiseType::kOneWay;
  noise.level = 0.08;
  auto problem = MakeAlignmentProblem(*crawl_a, noise, &rng);
  if (!problem.ok()) {
    std::fprintf(stderr, "%s\n", problem.status().ToString().c_str());
    return 1;
  }

  Table t({"method", "re-identified", "accuracy", "MNC", "S3", "seconds"});
  for (const std::string& name : {"REGAL", "CONE", "IsoRank"}) {
    auto aligner = MakeAligner(name);
    WallTimer timer;
    auto alignment = (*aligner)->Align(problem->g1, problem->g2,
                                       AssignmentMethod::kJonkerVolgenant);
    const double secs = timer.Seconds();
    if (!alignment.ok()) {
      t.AddRow({name, "-", "ERR", "-", "-", "-"});
      continue;
    }
    QualityReport q = EvaluateAlignment(problem->g1, problem->g2, *alignment,
                                        problem->ground_truth);
    const int hits = static_cast<int>(q.accuracy * crawl_a->num_nodes());
    t.AddRow({name, std::to_string(hits), Table::Num(q.accuracy),
              Table::Num(q.mnc), Table::Num(q.s3), Table::Num(secs, 2)});
  }
  t.Print(std::cout);
  std::printf(
      "\nMNC and S3 are computable WITHOUT ground truth — they are what an\n"
      "attacker (or auditor) would use to judge alignment confidence.\n");
  return 0;
}
