// Immutable undirected simple graph stored as sorted CSR adjacency lists.
//
// This is the substrate every alignment algorithm operates on. Nodes are
// 0-based contiguous ints; self-loops and parallel edges are rejected or
// deduplicated at construction.
#ifndef GRAPHALIGN_GRAPH_GRAPH_H_
#define GRAPHALIGN_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"
#include "linalg/csr.h"
#include "linalg/dense.h"

namespace graphalign {

struct Edge {
  int u;
  int v;
  bool operator==(const Edge&) const = default;
};

class Graph {
 public:
  Graph() = default;

  // Builds a simple undirected graph on `num_nodes` nodes. Duplicate edges
  // (in either orientation) are deduplicated; self-loops are rejected.
  static Result<Graph> FromEdges(int num_nodes, const std::vector<Edge>& edges);

  // Adopts an already-canonical CSR without copying: `offsets` (num_nodes+1
  // entries, offsets[num_nodes] == 2*num_edges) and `adj` stay owned by
  // `backing`, which the Graph keeps alive for its whole lifetime. This is
  // the zero-copy entry point of the mmap'ed store (src/store): the arrays
  // live in a read-only file mapping and are shared, unmodified, across
  // forked workers. The caller vouches for canonical form (sorted rows, no
  // self-loops, symmetric) — the store verifies structure before calling.
  static Graph FromCsrUnchecked(int num_nodes, int64_t num_edges,
                                const int64_t* offsets, const int* adj,
                                std::shared_ptr<const void> backing);

  int num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return num_edges_; }

  // Raw CSR arrays, e.g. for serialization by the store writer. Empty for a
  // default-constructed Graph.
  std::span<const int64_t> RawOffsets() const {
    if (offsets_ == nullptr) return {};
    return {offsets_, static_cast<size_t>(num_nodes_) + 1};
  }
  std::span<const int> RawAdjacency() const {
    if (adj_ == nullptr) return {};
    return {adj_, static_cast<size_t>(2 * num_edges_)};
  }

  // Sorted neighbor list of u.
  std::span<const int> Neighbors(int u) const {
    return {adj_ + offsets_[u],
            static_cast<size_t>(offsets_[u + 1] - offsets_[u])};
  }
  int Degree(int u) const {
    return static_cast<int>(offsets_[u + 1] - offsets_[u]);
  }
  bool HasEdge(int u, int v) const;

  int MaxDegree() const;
  double AverageDegree() const {
    return num_nodes_ == 0 ? 0.0 : 2.0 * num_edges_ / num_nodes_;
  }

  // All edges with u < v.
  std::vector<Edge> Edges() const;

  // Stable 64-bit content hash: FNV-1a over the node count and the
  // canonicalized (sorted, deduplicated, u < v) edge list. Because
  // construction canonicalizes, the hash is invariant to the insertion
  // order of edges and to their orientation, and changes when any single
  // edge is added or removed. Used as the content-addressed cache key of
  // the alignment server and printed by `graphalign stats`.
  uint64_t ContentHash() const;

  // Binary adjacency as CSR (symmetric, unit weights).
  CsrMatrix AdjacencyCsr() const;
  // Row-stochastic random-walk matrix D^-1 A (isolated nodes get zero rows).
  CsrMatrix RandomWalkCsr() const;
  // Symmetrically normalized adjacency D^-1/2 A D^-1/2.
  CsrMatrix SymNormalizedAdjacencyCsr() const;
  // Dense normalized Laplacian I - D^-1/2 A D^-1/2 (O(n^2) memory).
  DenseMatrix NormalizedLaplacianDense() const;

  // Relabels node u to perm[u]; perm must be a permutation of 0..n-1.
  Result<Graph> Permuted(const std::vector<int>& perm) const;

  // Component id per node (ids are 0..k-1 in discovery order).
  std::vector<int> ConnectedComponents(int* num_components = nullptr) const;
  bool IsConnected() const;
  // Number of nodes outside the largest connected component ("l" in Table 2).
  int NodesOutsideLargestComponent() const;

  // Triangle count incident to each node.
  std::vector<int64_t> TriangleCounts() const;

 private:
  // Heap backing for FromEdges-built graphs; mmap'ed graphs use a
  // MappedFile backing instead (src/store). Copying a Graph copies two
  // pointers and bumps a refcount — O(1), never the arrays.
  struct Owned {
    std::vector<int64_t> offsets;
    std::vector<int> adj;
  };

  int num_nodes_ = 0;
  int64_t num_edges_ = 0;
  const int64_t* offsets_ = nullptr;  // num_nodes_ + 1 entries.
  const int* adj_ = nullptr;          // concatenated sorted neighbor lists.
  std::shared_ptr<const void> backing_;  // keeps the arrays alive.
};

}  // namespace graphalign

#endif  // GRAPHALIGN_GRAPH_GRAPH_H_
