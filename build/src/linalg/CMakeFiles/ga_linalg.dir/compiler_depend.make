# Empty compiler generated dependencies file for ga_linalg.
# This may be replaced when dependencies are built.
