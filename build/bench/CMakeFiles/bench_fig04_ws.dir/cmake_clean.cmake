file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_ws.dir/bench_fig04_ws.cc.o"
  "CMakeFiles/bench_fig04_ws.dir/bench_fig04_ws.cc.o.d"
  "bench_fig04_ws"
  "bench_fig04_ws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_ws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
