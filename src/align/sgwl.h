// Scalable Gromov-Wasserstein Learning (Xu, Luo & Carin, NeurIPS 2019),
// paper §3.6: recursive divide-and-conquer. Both graphs are co-partitioned
// by computing GW transports to a common K-node barycenter graph; matched
// partition pairs are recursed on, and leaves are aligned with the plain
// proximal-point GW solver. beta is 0.025 on sparse and 0.1 on dense graphs
// (Table 1 / §6.4.2).
#ifndef GRAPHALIGN_ALIGN_SGWL_H_
#define GRAPHALIGN_ALIGN_SGWL_H_

#include <string>
#include <vector>

#include "align/aligner.h"
#include "align/gw_common.h"

namespace graphalign {

struct SgwlOptions {
  GwOptions gw;            // Leaf/partition transport parameters.
  int partition_k = 4;     // Barycenter size K per recursion level.
  int leaf_size = 128;     // Solve directly below this size.
  int barycenter_iterations = 3;
  int max_depth = 12;

  SgwlOptions() {
    gw.beta = 0.1;
    // The recursion solves many small problems; extra proximal steps are
    // cheap there and materially improve partition consistency.
    gw.outer_iterations = 60;
  }

  // The paper sets beta by density (§6.4.2): 0.025 sparse, 0.1 dense.
  static SgwlOptions ForSparseGraphs() {
    SgwlOptions o;
    o.gw.beta = 0.025;
    return o;
  }
};

class SgwlAligner : public Aligner {
 public:
  explicit SgwlAligner(const SgwlOptions& options = {}) : options_(options) {}

  std::string name() const override { return "S-GWL"; }
  AssignmentMethod default_assignment() const override {
    return AssignmentMethod::kNearestNeighbor;  // As proposed (Table 1).
  }
 protected:
  // Block-sparse similarity assembled from the leaf transports (zero across
  // partitions), densified for assignment-method interchangeability.
  Result<DenseMatrix> ComputeSimilarityImpl(const Graph& g1, const Graph& g2,
                                            const Deadline& deadline) override;

 private:
  SgwlOptions options_;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_ALIGN_SGWL_H_
