// Chaos suite (DESIGN.md §12): arms each failpoint site and asserts the
// system's claimed recovery path actually engages — graceful numerical
// degradation in the aligners, retry/backoff in the bench harness, typed
// containment for crash/OOM faults, and typed responses (never a hang or a
// dead daemon) from the alignment service. Registered under the `chaos`
// ctest label alongside tools/run_chaos.sh, which drives the same sites
// through the CLI via GRAPHALIGN_FAILPOINTS.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "align/aligner.h"
#include "assignment/sparse_lap.h"
#include "bench_framework/experiment.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "common/retry.h"
#include "common/status.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "noise/noise.h"
#include "server/cache_store.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace graphalign {
namespace {

// Shared scaffolding: every test disarms all faults on exit so failures in
// one test cannot cascade into the next.
class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { DeactivateAllFailpoints(); }

  static Graph SmallGraph(uint64_t seed) {
    Rng rng(seed);
    auto g = ErdosRenyi(30, 0.2, &rng);
    GA_CHECK(g.ok());
    return *std::move(g);
  }

  static AlignmentProblem SmallProblem(uint64_t seed) {
    Graph base = SmallGraph(seed);
    NoiseOptions noise;
    noise.level = 0.05;
    Rng rng(seed + 1);
    auto problem = MakeAlignmentProblem(base, noise, &rng);
    GA_CHECK(problem.ok());
    return *std::move(problem);
  }
};

// ---------------------------------------------------------------------------
// Aligner-level degradation: injected numerical faults complete degraded,
// never crash and never silently pretend full quality.

TEST_F(ChaosTest, SimilarityErrorDegradesEveryAligner) {
  const Graph g1 = SmallGraph(11);
  const Graph g2 = SmallGraph(12);
  ASSERT_TRUE(ActivateFailpoint("align.similarity.error", "error").ok());
  for (const char* name : {"IsoRank", "NSD", "LREA", "GRASP"}) {
    auto aligner = MakeAligner(name);
    ASSERT_TRUE(aligner.ok()) << name;
    auto robust = (*aligner)->AlignRobust(g1, g2,
                                          AssignmentMethod::kJonkerVolgenant);
    ASSERT_TRUE(robust.ok()) << name << ": " << robust.status().ToString();
    EXPECT_TRUE(robust->degraded) << name;
    EXPECT_NE(robust->degrade_reason.find("degree-profile fallback"),
              std::string::npos)
        << name << ": " << robust->degrade_reason;
    EXPECT_EQ(robust->alignment.size(), static_cast<size_t>(g1.num_nodes()))
        << name;
  }
}

TEST_F(ChaosTest, NanPoisonIsSanitizedAndMarked) {
  const Graph g1 = SmallGraph(21);
  const Graph g2 = SmallGraph(22);
  ASSERT_TRUE(ActivateFailpoint("align.similarity.nan", "nan").ok());
  auto aligner = MakeAligner("NSD");
  ASSERT_TRUE(aligner.ok());
  auto sim = (*aligner)->ComputeSimilarityRobust(g1, g2);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  EXPECT_TRUE(sim->degraded);
  EXPECT_NE(sim->degrade_reason.find("non-finite"), std::string::npos)
      << sim->degrade_reason;
  // The sanitized matrix must be fully finite.
  for (int i = 0; i < sim->similarity.rows(); ++i) {
    for (int j = 0; j < sim->similarity.cols(); ++j) {
      ASSERT_TRUE(std::isfinite(sim->similarity(i, j)));
    }
  }
}

TEST_F(ChaosTest, EigenNoConvergeDegradesSpectralAligner) {
  // GRASP sits on the symmetric eigensolver; its injected non-convergence
  // must surface as a degraded result, not an error.
  const Graph g1 = SmallGraph(31);
  const Graph g2 = SmallGraph(32);
  ASSERT_TRUE(ActivateFailpoint("linalg.eigen.no-converge", "error").ok());
  auto aligner = MakeAligner("GRASP");
  ASSERT_TRUE(aligner.ok());
  auto robust = (*aligner)->AlignRobust(g1, g2,
                                        AssignmentMethod::kJonkerVolgenant);
  ASSERT_TRUE(robust.ok()) << robust.status().ToString();
  EXPECT_TRUE(robust->degraded);
  EXPECT_NE(robust->degrade_reason.find("did not converge"),
            std::string::npos)
      << robust->degrade_reason;
}

TEST_F(ChaosTest, DelayModeSlowsButDoesNotDegrade) {
  const Graph g1 = SmallGraph(41);
  const Graph g2 = SmallGraph(42);
  ASSERT_TRUE(ActivateFailpoint("align.similarity.error", "delay-ms:20").ok());
  auto aligner = MakeAligner("NSD");
  ASSERT_TRUE(aligner.ok());
  auto robust = (*aligner)->AlignRobust(g1, g2,
                                        AssignmentMethod::kSortGreedy);
  ASSERT_TRUE(robust.ok()) << robust.status().ToString();
  EXPECT_FALSE(robust->degraded);
}

TEST_F(ChaosTest, ExtractionFaultFallsBackToGreedyOnce) {
  const Graph g1 = SmallGraph(51);
  const Graph g2 = SmallGraph(52);
  auto aligner = MakeAligner("NSD");
  ASSERT_TRUE(aligner.ok());

  // `once`: the JV attempt fails, the greedy retry finds the site spent.
  ASSERT_TRUE(ActivateFailpoint("assignment.extract.error", "once").ok());
  auto robust = (*aligner)->AlignRobust(g1, g2,
                                        AssignmentMethod::kJonkerVolgenant);
  ASSERT_TRUE(robust.ok()) << robust.status().ToString();
  EXPECT_TRUE(robust->degraded);
  EXPECT_NE(robust->degrade_reason.find("greedy-assignment fallback"),
            std::string::npos)
      << robust->degrade_reason;

  // Persistent fault: the greedy retry fails too and the typed kNumerical
  // error propagates — degradation is best-effort, not error swallowing.
  ASSERT_TRUE(ActivateFailpoint("assignment.extract.error", "error").ok());
  robust = (*aligner)->AlignRobust(g1, g2,
                                   AssignmentMethod::kJonkerVolgenant);
  ASSERT_FALSE(robust.ok());
  EXPECT_EQ(robust.status().code(), StatusCode::kNumerical);
}

TEST_F(ChaosTest, GraphIoFaultIsTypedError) {
  ASSERT_TRUE(ActivateFailpoint("graph.io.read.error", "error").ok());
  auto g = ReadEdgeList("/tmp/ga_chaos_does_not_matter.txt");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInternal);
  EXPECT_NE(g.status().message().find("read failed"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sparse pipeline sites (DESIGN.md §13): candidate generation faults are
// typed errors, and injected per-pop delays inside the sparse LAP solver are
// cut off by the in-loop deadline poll instead of stretching the run
// unboundedly.

TEST_F(ChaosTest, SparseCandidateFaultIsTypedError) {
  const AlignmentProblem problem = SmallProblem(91);
  ASSERT_TRUE(
      ActivateFailpoint("align.sparse.candidates.error", "error").ok());
  auto aligner = MakeAligner("NSD");
  ASSERT_TRUE(aligner.ok());
  auto sparse =
      (*aligner)->ComputeSparseSimilarity(problem.g1, problem.g2);
  ASSERT_FALSE(sparse.ok());
  EXPECT_EQ(sparse.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(sparse.status().message().find("LSH candidate generation failed"),
            std::string::npos)
      << sparse.status().ToString();
  // AlignSparse propagates the same typed error end to end.
  auto aligned = (*aligner)->AlignSparse(problem.g1, problem.g2);
  ASSERT_FALSE(aligned.ok());
  EXPECT_EQ(aligned.status().code(), StatusCode::kUnavailable);
}

TEST_F(ChaosTest, SparseLapPopFaultIsTypedError) {
  ASSERT_TRUE(ActivateFailpoint("assignment.sparse_lap.pop", "error").ok());
  auto a = SparseLapAssign(3, 3, {{0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}});
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(a.status().message().find("injected solver fault"),
            std::string::npos)
      << a.status().ToString();
}

TEST_F(ChaosTest, SparseLapDelayIsBoundedByInLoopDeadlinePoll) {
  // Per-pop injected delays model a pathologically slow solver. The deadline
  // is polled every ~4096 pops, so a 1 ms/pop crawl on a problem needing
  // tens of thousands of pops must DNF within one polling stride (a few
  // seconds) instead of sleeping through the whole Dijkstra run.
  // Triangular instance: row i reaches cols 0..i, and its only free column
  // (col i) carries the worst similarity, so every augmentation explores the
  // whole occupied prefix before finding it — O(n^2) pops in total.
  const int n = 250;
  std::vector<SparseCandidate> cands;
  cands.reserve(static_cast<size_t>(n) * (n + 1) / 2);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < i; ++j) cands.push_back({i, j, 1.0});
    cands.push_back({i, i, 0.0});
  }
  ASSERT_TRUE(
      ActivateFailpoint("assignment.sparse_lap.pop", "delay-ms:1").ok());
  const auto start = std::chrono::steady_clock::now();
  auto a = SparseLapAssign(n, n, cands, Deadline::AfterSeconds(0.25));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kDeadlineExceeded);
  // One stride past the 0.25 s budget at ~1 ms/pop is ~4 s; far under the
  // ~20+ s a full undeadlined run of this instance would sleep through.
  EXPECT_LT(elapsed, 15.0);
}

// ---------------------------------------------------------------------------
// Bench harness: transient cell faults are retried before the journal ever
// records them; persistent faults stay typed table entries.

RunOutcome CompletedOutcome() {
  RunOutcome out;
  out.completed = true;
  out.completed_runs = 1;
  return out;
}

TEST_F(ChaosTest, FlakyCellIsRetriedToSuccess) {
  ASSERT_TRUE(ActivateFailpoint("bench.cell.flaky", "once").ok());
  BenchArgs args;
  args.retries = 1;
  int body_runs = 0;
  RunOutcome out = RunContained(args, [&body_runs] {
    ++body_runs;
    return CompletedOutcome();
  });
  EXPECT_TRUE(out.completed) << out.error;
  EXPECT_EQ(body_runs, 1);  // The flaky fault preempts the first attempt.
}

TEST_F(ChaosTest, FlakyCellWithoutRetriesRecordsTypedFault) {
  ASSERT_TRUE(ActivateFailpoint("bench.cell.flaky", "once").ok());
  BenchArgs args;
  args.retries = 0;
  RunOutcome out = RunContained(args, [] { return CompletedOutcome(); });
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.error.rfind("CRASH", 0), 0u) << out.error;
  EXPECT_EQ(FormatOutcome(out, 0.0), "CRASH");
}

TEST_F(ChaosTest, ForkFailureIsRetriedAsTransient) {
  ASSERT_TRUE(ActivateFailpoint("subprocess.fork.error", "once").ok());
  BenchArgs args;
  args.isolate = true;
  args.retries = 1;
  args.time_limit_seconds = 60.0;
  RunOutcome out = RunContained(args, [] { return CompletedOutcome(); });
  EXPECT_TRUE(out.completed) << out.error;
}

TEST_F(ChaosTest, CrashModeIsContainedUnderIsolation) {
  const AlignmentProblem problem = SmallProblem(61);
  ASSERT_TRUE(ActivateFailpoint("align.similarity.error", "crash").ok());
  auto aligner = MakeAligner("NSD");
  ASSERT_TRUE(aligner.ok());
  BenchArgs args;
  args.isolate = true;
  args.retries = 0;
  args.time_limit_seconds = 60.0;
  RunOutcome out = RunAligner(aligner->get(), problem,
                              AssignmentMethod::kSortGreedy, args);
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.error.rfind("CRASH", 0), 0u) << out.error;
  EXPECT_EQ(FormatOutcome(out, 0.0), "CRASH");
}

TEST_F(ChaosTest, OomModeIsContainedUnderIsolation) {
  const AlignmentProblem problem = SmallProblem(62);
  ASSERT_TRUE(ActivateFailpoint("align.similarity.error", "oom").ok());
  auto aligner = MakeAligner("NSD");
  ASSERT_TRUE(aligner.ok());
  BenchArgs args;
  args.isolate = true;
  args.retries = 0;
  args.mem_limit_mb = 192.0;
  args.time_limit_seconds = 60.0;
  RunOutcome out = RunAligner(aligner->get(), problem,
                              AssignmentMethod::kSortGreedy, args);
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.error.rfind("OOM", 0), 0u) << out.error;
  EXPECT_EQ(FormatOutcome(out, 0.0), "OOM");
}

TEST_F(ChaosTest, DegradedOutcomeRendersTrailingStar) {
  const AlignmentProblem problem = SmallProblem(63);
  ASSERT_TRUE(ActivateFailpoint("linalg.eigen.no-converge", "error").ok());
  auto aligner = MakeAligner("GRASP");
  ASSERT_TRUE(aligner.ok());
  RunOutcome out = RunAligner(aligner->get(), problem,
                              AssignmentMethod::kJonkerVolgenant, 60.0);
  ASSERT_TRUE(out.completed) << out.error;
  EXPECT_TRUE(out.degraded);
  EXPECT_FALSE(out.degrade_reason.empty());
  const std::string cell = FormatOutcome(out, 0.5);
  ASSERT_FALSE(cell.empty());
  EXPECT_EQ(cell.back(), '*') << cell;
}

// ---------------------------------------------------------------------------
// Service daemon: every injected server-side fault becomes a typed response
// on the affected connection while the daemon keeps serving everyone else.

std::string TempSocketPath(const char* tag) {
  return "/tmp/ga_chaos_" + std::string(tag) + "_" + std::to_string(getpid());
}

class ChaosServerTest : public ChaosTest {
 protected:
  void StartServer(ServerOptions options) {
    socket_path_ = options.socket_path;
    auto server = Server::Create(options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = *std::move(server);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Shutdown();
      server_->Wait();
    }
    if (!socket_path_.empty()) ::unlink(socket_path_.c_str());
    ChaosTest::TearDown();
  }

  ClientOptions ConnOptions(double timeout_seconds = 60.0) const {
    ClientOptions copts;
    copts.socket_path = socket_path_;
    copts.timeout_seconds = timeout_seconds;
    return copts;
  }

  Result<Client> Connect(double timeout_seconds = 60.0) {
    return Client::Connect(ConnOptions(timeout_seconds));
  }

  static Request PingRequest() {
    Request req;
    req.type = RequestType::kPing;
    return req;
  }

  static Request AlignRequest(const Graph& g1, const Graph& g2,
                              const std::string& algo) {
    Request req;
    req.type = RequestType::kAlign;
    req.align.algo = algo;
    req.align.assign = "JV";
    req.align.g1 = ToWire(g1);
    req.align.g2 = ToWire(g2);
    return req;
  }

  std::string socket_path_;
  std::unique_ptr<Server> server_;
};

TEST_F(ChaosServerTest, RequestFaultIsTypedAndDaemonSurvives) {
  ServerOptions opts;
  opts.socket_path = TempSocketPath("reqerr");
  opts.workers = 2;
  StartServer(opts);
  ASSERT_TRUE(ActivateFailpoint("server.request.error", "once").ok());

  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto faulted = client->Call(PingRequest());
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_EQ(faulted->code, ResponseCode::kError);
  EXPECT_NE(faulted->message.find("injected fault"), std::string::npos)
      << faulted->message;

  // Same connection, next request: the daemon is still healthy.
  auto healthy = client->Call(PingRequest());
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_EQ(healthy->code, ResponseCode::kOk);
}

TEST_F(ChaosServerTest, WorkerDropSendsTypedErrorNotSilence) {
  // Satellite fix: a worker dying mid-request used to leave the client
  // blocked on a reply forever. The injected worker fault must now produce
  // a typed ERROR response before the connection closes.
  ServerOptions opts;
  opts.socket_path = TempSocketPath("wdrop");
  opts.workers = 2;
  StartServer(opts);
  ASSERT_TRUE(ActivateFailpoint("server.worker.drop", "once").ok());

  auto client = Connect(10.0);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto resp = client->Call(PingRequest());
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->code, ResponseCode::kError);
  EXPECT_NE(resp->message.find("worker failed mid-request"),
            std::string::npos)
      << resp->message;

  // A fresh connection is served normally afterwards.
  auto again = Connect();
  ASSERT_TRUE(again.ok());
  auto healthy = again->Call(PingRequest());
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_EQ(healthy->code, ResponseCode::kOk);
}

TEST_F(ChaosServerTest, BusyOnceThenClientRetrySucceeds) {
  ServerOptions opts;
  opts.socket_path = TempSocketPath("busy1");
  opts.workers = 1;
  StartServer(opts);
  ASSERT_TRUE(ActivateFailpoint("server.busy", "once").ok());

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 10.0;
  policy.max_backoff_ms = 50.0;
  auto resp = CallWithRetry(ConnOptions(), PingRequest(), policy);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->code, ResponseCode::kOk);
  // The armed `once` fault really fired (on the first, retried attempt).
  EXPECT_EQ(Failpoint::Get("server.busy").hits(), 1);
}

TEST_F(ChaosServerTest, DrainAnswersQueuedClientsWithShuttingDown) {
  ServerOptions opts;
  opts.socket_path = TempSocketPath("drain");
  opts.workers = 1;
  opts.queue_capacity = 2;
  StartServer(opts);

  // Occupy the single worker: a client that completed a request holds its
  // worker until it disconnects.
  auto holder_conn = Connect();
  ASSERT_TRUE(holder_conn.ok());
  auto holder = std::make_unique<Client>(*std::move(holder_conn));
  auto held = holder->Call(PingRequest());
  ASSERT_TRUE(held.ok());
  ASSERT_EQ(held->code, ResponseCode::kOk);

  // Park a raw connection in the admission queue.
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                socket_path_.c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  struct timeval tv = {10, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // Drain: the queued connection gets a typed SHUTTING_DOWN response, not
  // silence, and the daemon finishes cleanly once the holder disconnects.
  server_->Drain();
  std::string payload;
  auto got = ReadFrameFromFd(fd, &payload);
  ::close(fd);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(*got);
  auto resp = DecodeResponse(payload);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->code, ResponseCode::kShuttingDown);
  EXPECT_NE(resp->message.find("draining"), std::string::npos)
      << resp->message;

  holder.reset();   // Disconnect the worker's client.
  server_->Wait();  // A drained daemon winds down without Shutdown().
}

TEST_F(ChaosServerTest, DegradedAlignIsReportedAndNotCached) {
  ServerOptions opts;
  opts.socket_path = TempSocketPath("degr");
  opts.workers = 2;
  opts.wall_slack_seconds = 10.0;
  StartServer(opts);

  const Graph g1 = SmallGraph(71);
  const Graph g2 = SmallGraph(72);
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Forked align children inherit programmatically armed faults.
  ASSERT_TRUE(ActivateFailpoint("align.similarity.error", "error").ok());
  auto degraded = client->Call(AlignRequest(g1, g2, "NSD"));
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  ASSERT_EQ(degraded->code, ResponseCode::kOk) << degraded->message;
  auto result = DecodeAlignResult(degraded->body);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->degraded);
  EXPECT_NE(result->degrade_reason.find("degree-profile fallback"),
            std::string::npos)
      << result->degrade_reason;

  // Degraded results are not cached: once the fault clears, the same
  // request is recomputed at full quality instead of replaying the fallback.
  DeactivateAllFailpoints();
  auto healthy = client->Call(AlignRequest(g1, g2, "NSD"));
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  ASSERT_EQ(healthy->code, ResponseCode::kOk) << healthy->message;
  EXPECT_FALSE(healthy->cache_hit);
  auto healthy_result = DecodeAlignResult(healthy->body);
  ASSERT_TRUE(healthy_result.ok());
  EXPECT_FALSE(healthy_result->degraded);

  // Healthy results do get cached.
  auto warm = client->Call(AlignRequest(g1, g2, "NSD"));
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_EQ(warm->code, ResponseCode::kOk);
  EXPECT_TRUE(warm->cache_hit);
}

TEST_F(ChaosServerTest, PersistentNumericalFaultYieldsNumericalResponse) {
  ServerOptions opts;
  opts.socket_path = TempSocketPath("numer");
  opts.workers = 2;
  opts.wall_slack_seconds = 10.0;
  StartServer(opts);

  const Graph g1 = SmallGraph(81);
  const Graph g2 = SmallGraph(82);
  // A persistent extraction fault defeats even the greedy fallback, so the
  // child's typed kNumerical error must map to a NUMERICAL response.
  ASSERT_TRUE(ActivateFailpoint("assignment.extract.error", "error").ok());
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto resp = client->Call(AlignRequest(g1, g2, "NSD"));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->code, ResponseCode::kNumerical) << resp->message;
}

// ---------------------------------------------------------------------------
// Durable cache log (DESIGN.md §14): crash-shaped damage — torn tails, bit
// rot, an unreadable log — yields a warm-or-cold cache, never a dead daemon.

class CacheStoreChaosTest : public ChaosTest {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/ga_chaos_cacheXXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    ::unlink((dir_ + "/cache.log").c_str());
    ::rmdir(dir_.c_str());
    ChaosTest::TearDown();
  }

  // Opens the log and collects everything replay delivers.
  Result<std::unique_ptr<CacheStore>> OpenCollecting(
      std::vector<std::pair<uint64_t, std::string>>* out,
      CacheStore::ReplayStats* stats) {
    return CacheStore::Open(
        dir_,
        [out](uint64_t key, std::string value) {
          out->push_back({key, std::move(value)});
        },
        stats);
  }

  std::string dir_;
};

TEST_F(CacheStoreChaosTest, GoldenRoundTripAcrossReopen) {
  {
    std::vector<std::pair<uint64_t, std::string>> replayed;
    auto store = OpenCollecting(&replayed, nullptr);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE(replayed.empty());
    (*store)->Append(1, "first");
    (*store)->Append(2, std::string(1000, 'x'));
    (*store)->Append(3, "");  // Zero-length values are legal records.
    EXPECT_EQ((*store)->append_errors(), 0u);
  }
  std::vector<std::pair<uint64_t, std::string>> replayed;
  CacheStore::ReplayStats stats;
  auto store = OpenCollecting(&replayed, &stats);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(replayed[0].first, 1u);
  EXPECT_EQ(replayed[0].second, "first");
  EXPECT_EQ(replayed[1].second, std::string(1000, 'x'));
  EXPECT_EQ(replayed[2].second, "");
  EXPECT_EQ(stats.replayed, 3u);
  EXPECT_EQ(stats.crc_skipped, 0u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
}

TEST_F(CacheStoreChaosTest, TornTailIsTruncatedBackToLastGoodRecord) {
  {
    std::vector<std::pair<uint64_t, std::string>> replayed;
    auto store = OpenCollecting(&replayed, nullptr);
    ASSERT_TRUE(store.ok());
    (*store)->Append(10, "survives");
    // The armed torn append writes a record cut off mid-payload, exactly
    // what a crash between write() and close() leaves behind.
    ASSERT_TRUE(ActivateFailpoint("server.cache.append.torn", "once").ok());
    (*store)->Append(11, "torn-away-by-the-crash");
  }
  std::vector<std::pair<uint64_t, std::string>> replayed;
  CacheStore::ReplayStats stats;
  auto store = OpenCollecting(&replayed, &stats);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].first, 10u);
  EXPECT_EQ(replayed[0].second, "survives");
  EXPECT_EQ(stats.replayed, 1u);
  EXPECT_GT(stats.truncated_bytes, 0u);

  // The truncation healed the file: appends after the reopen land on a
  // clean boundary and a third open replays both records undamaged.
  (*store)->Append(12, "after-heal");
  store->reset();
  replayed.clear();
  auto again = OpenCollecting(&replayed, &stats);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[1].first, 12u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
}

TEST_F(CacheStoreChaosTest, CrcMismatchSkipsOnlyTheRottedRecord) {
  const std::string value_a(16, 'a');
  const std::string value_b(16, 'b');
  const std::string value_c(16, 'c');
  {
    std::vector<std::pair<uint64_t, std::string>> replayed;
    auto store = OpenCollecting(&replayed, nullptr);
    ASSERT_TRUE(store.ok());
    (*store)->Append(20, value_a);
    (*store)->Append(21, value_b);
    (*store)->Append(22, value_c);
  }
  // Flip one byte inside record B's value. Records are
  // 12-byte header + 8-byte key + value, so B's value starts at
  // (12+8+16) + 12 + 8.
  const std::streamoff record_bytes = 12 + 8 + 16;
  const std::streamoff target = record_bytes + 12 + 8 + 4;
  {
    std::fstream f(dir_ + "/cache.log",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(target);
    char byte = 0;
    f.get(byte);
    f.seekp(target);
    f.put(static_cast<char>(byte ^ 0x40));
    ASSERT_TRUE(f.good());
  }
  std::vector<std::pair<uint64_t, std::string>> replayed;
  CacheStore::ReplayStats stats;
  auto store = OpenCollecting(&replayed, &stats);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  // Bit rot is local: A and C survive, only B is dropped.
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].first, 20u);
  EXPECT_EQ(replayed[1].first, 22u);
  EXPECT_EQ(stats.replayed, 2u);
  EXPECT_EQ(stats.crc_skipped, 1u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
}

TEST_F(CacheStoreChaosTest, CompactionReplaysByteIdenticallyAndDropsDead) {
  // Build a log with a superseded value, a torn tail, and live records —
  // exactly the residue startup compaction exists to shed.
  {
    std::vector<std::pair<uint64_t, std::string>> replayed;
    auto store = OpenCollecting(&replayed, nullptr);
    ASSERT_TRUE(store.ok());
    (*store)->Append(40, "stale-value");
    (*store)->Append(41, std::string(500, 'q'));
    (*store)->Append(40, "fresh-value");  // Supersedes the first record.
    ASSERT_TRUE(ActivateFailpoint("server.cache.append.torn", "once").ok());
    (*store)->Append(42, "torn-away");
  }
  // Replay as the daemon would, collapse to live entries, compact.
  std::vector<std::pair<uint64_t, std::string>> replayed;
  auto store = OpenCollecting(&replayed, nullptr);
  ASSERT_TRUE(store.ok());
  ASSERT_EQ(replayed.size(), 3u);
  const std::vector<std::pair<uint64_t, std::string>> live = {
      {41, std::string(500, 'q')}, {40, "fresh-value"}};
  const uint64_t before = (*store)->log_bytes();
  ASSERT_TRUE((*store)->Compact(live).ok());
  EXPECT_LT((*store)->log_bytes(), before);
  // The append fd switched to the published log: post-compaction appends
  // land in the new file.
  (*store)->Append(43, "after-compact");
  store->reset();

  // Byte-identical replay: same keys, same values, same order, plus the
  // post-compaction append; no skips, no truncation.
  std::vector<std::pair<uint64_t, std::string>> after;
  CacheStore::ReplayStats stats;
  auto reopened = OpenCollecting(&after, &stats);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(after.size(), 3u);
  EXPECT_EQ(after[0], live[0]);
  EXPECT_EQ(after[1], live[1]);
  EXPECT_EQ(after[2],
            (std::pair<uint64_t, std::string>{43, "after-compact"}));
  EXPECT_EQ(stats.crc_skipped, 0u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
  // No .tmp residue after the atomic publish.
  std::string cmd = "ls -1 '" + dir_ + "' | grep -q tmp";
  EXPECT_NE(std::system(cmd.c_str()), 0);
}

TEST_F(CacheStoreChaosTest, AppendErrorFailpointIsCountedNotFatal) {
  std::vector<std::pair<uint64_t, std::string>> replayed;
  auto store = OpenCollecting(&replayed, nullptr);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(ActivateFailpoint("server.cache.append.error", "once").ok());
  (*store)->Append(30, "dropped");
  (*store)->Append(31, "kept");
  EXPECT_EQ((*store)->append_errors(), 1u);
  store->reset();

  CacheStore::ReplayStats stats;
  replayed.clear();
  auto again = OpenCollecting(&replayed, &stats);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].first, 31u);
}

TEST_F(CacheStoreChaosTest, ReplayErrorFailpointFailsOpenOnly) {
  ASSERT_TRUE(ActivateFailpoint("server.cache.replay.error", "error").ok());
  std::vector<std::pair<uint64_t, std::string>> replayed;
  auto store = OpenCollecting(&replayed, nullptr);
  ASSERT_FALSE(store.ok());
  DeactivateAllFailpoints();
  // The failure mode is "cold cache", not "poisoned directory": the next
  // open succeeds.
  auto again = OpenCollecting(&replayed, nullptr);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
}

// Daemon-level durable cache: restart comes up warm; an unreadable log cold
// starts the cache but never the daemon.

class DurableServerTest : public ChaosServerTest {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/ga_chaos_srvcacheXXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    cache_dir_ = tmpl;
  }

  void TearDown() override {
    ChaosServerTest::TearDown();
    ::unlink((cache_dir_ + "/cache.log").c_str());
    ::rmdir(cache_dir_.c_str());
  }

  void StopServer() {
    server_->Shutdown();
    server_->Wait();
    server_.reset();
    ::unlink(socket_path_.c_str());
  }

  std::string cache_dir_;
};

TEST_F(DurableServerTest, RestartReplaysTheCacheLogWarm) {
  ServerOptions opts;
  opts.socket_path = TempSocketPath("warm1");
  opts.workers = 2;
  opts.wall_slack_seconds = 10.0;
  opts.cache_dir = cache_dir_;
  StartServer(opts);

  const Graph g1 = SmallGraph(101);
  const Graph g2 = SmallGraph(102);
  {
    auto client = Connect();
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto cold = client->Call(AlignRequest(g1, g2, "NSD"));
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    ASSERT_EQ(cold->code, ResponseCode::kOk) << cold->message;
    EXPECT_FALSE(cold->cache_hit);
  }
  StopServer();

  // Second daemon instance, same --cache-dir: the identical request must be
  // a replay-warmed cache hit, answered without forking an aligner.
  opts.socket_path = TempSocketPath("warm2");
  StartServer(opts);
  ServerStatsResult stats = server_->stats();
  EXPECT_GE(stats.cache_replayed, 1u);
  EXPECT_EQ(stats.cache_crc_skipped, 0u);
  EXPECT_EQ(stats.cache_truncated_bytes, 0u);

  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto warm = client->Call(AlignRequest(g1, g2, "NSD"));
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_EQ(warm->code, ResponseCode::kOk) << warm->message;
  EXPECT_TRUE(warm->cache_hit);
}

TEST_F(DurableServerTest, UnreadableLogColdStartsTheCacheNotTheDaemon) {
  ASSERT_TRUE(ActivateFailpoint("server.cache.replay.error", "error").ok());
  ServerOptions opts;
  opts.socket_path = TempSocketPath("coldlog");
  opts.workers = 1;
  opts.cache_dir = cache_dir_;
  StartServer(opts);
  DeactivateAllFailpoints();

  ServerStatsResult stats = server_->stats();
  EXPECT_EQ(stats.cache_open_errors, 1u);
  EXPECT_EQ(stats.cache_replayed, 0u);

  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto resp = client->Call(PingRequest());
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->code, ResponseCode::kOk);
}

TEST_F(DurableServerTest, AppendFaultDegradesDurabilityNotService) {
  ServerOptions opts;
  opts.socket_path = TempSocketPath("apperr");
  opts.workers = 2;
  opts.wall_slack_seconds = 10.0;
  opts.cache_dir = cache_dir_;
  StartServer(opts);
  ASSERT_TRUE(ActivateFailpoint("server.cache.append.error", "error").ok());

  const Graph g1 = SmallGraph(111);
  const Graph g2 = SmallGraph(112);
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto resp = client->Call(AlignRequest(g1, g2, "NSD"));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->code, ResponseCode::kOk) << resp->message;

  // The append was dropped and counted, but the in-memory cache is hot.
  EXPECT_GE(server_->stats().cache_append_errors, 1u);
  auto warm = client->Call(AlignRequest(g1, g2, "NSD"));
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_EQ(warm->code, ResponseCode::kOk);
  EXPECT_TRUE(warm->cache_hit);
}

// ---------------------------------------------------------------------------
// Watchdog: a non-cooperative hang is SIGKILLed past deadline + grace and
// surfaces as a typed ERROR naming the watchdog, not a wall-limit DNF
// half a minute later.

TEST_F(ChaosServerTest, WatchdogKillsNonCooperativeHangAndCountsIt) {
  ServerOptions opts;
  opts.socket_path = TempSocketPath("wdog");
  opts.workers = 1;
  opts.watchdog_grace_seconds = 0.5;
  StartServer(opts);

  const Graph g1 = SmallGraph(121);
  const Graph g2 = SmallGraph(122);
  Request req = AlignRequest(g1, g2, "_HANG");
  req.align.deadline_ms = 300;  // _HANG ignores the cooperative deadline.

  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto start = std::chrono::steady_clock::now();
  auto resp = client->Call(req);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->code, ResponseCode::kError) << resp->message;
  EXPECT_NE(resp->message.find("watchdog"), std::string::npos)
      << resp->message;
  // Deadline (0.3 s) + grace (0.5 s) + watchdog poll stride — far below the
  // ~30 s wall-clock backstop that would otherwise catch this hang.
  EXPECT_LT(elapsed, 10.0);

  ServerStatsResult stats = server_->stats();
  EXPECT_EQ(stats.watchdog_kills, 1u);
  ASSERT_EQ(stats.worker_restarts.size(), 1u);
  EXPECT_EQ(stats.worker_restarts[0], 1u);
}

}  // namespace
}  // namespace graphalign
