file(REMOVE_RECURSE
  "CMakeFiles/ga_assignment.dir/assignment.cc.o"
  "CMakeFiles/ga_assignment.dir/assignment.cc.o.d"
  "CMakeFiles/ga_assignment.dir/hungarian.cc.o"
  "CMakeFiles/ga_assignment.dir/hungarian.cc.o.d"
  "CMakeFiles/ga_assignment.dir/jv.cc.o"
  "CMakeFiles/ga_assignment.dir/jv.cc.o.d"
  "CMakeFiles/ga_assignment.dir/sparse_lap.cc.o"
  "CMakeFiles/ga_assignment.dir/sparse_lap.cc.o.d"
  "libga_assignment.a"
  "libga_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
