# Empty compiler generated dependencies file for ppi_alignment.
# This may be replaced when dependencies are built.
