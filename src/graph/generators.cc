#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

namespace graphalign {

Result<Graph> ErdosRenyi(int n, double p, Rng* rng) {
  if (n < 0) return Status::InvalidArgument("ErdosRenyi: n < 0");
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("ErdosRenyi: p outside [0,1]");
  }
  std::vector<Edge> edges;
  if (p > 0.0 && n > 1) {
    if (p == 1.0) {
      for (int u = 0; u < n; ++u) {
        for (int v = u + 1; v < n; ++v) edges.push_back({u, v});
      }
    } else {
      // Geometric skipping over the implicit enumeration of node pairs
      // (Batagelj & Brandes): jump log(U)/log(1-p) pairs at a time.
      const double log1p = std::log(1.0 - p);
      int64_t v = 1;
      int64_t w = -1;
      while (v < n) {
        const double r = 1.0 - rng->Uniform();  // in (0, 1]
        w += 1 + static_cast<int64_t>(std::floor(std::log(r) / log1p));
        while (w >= v && v < n) {
          w -= v;
          ++v;
        }
        if (v < n) edges.push_back({static_cast<int>(w), static_cast<int>(v)});
      }
    }
  }
  return Graph::FromEdges(n, edges);
}

Result<Graph> BarabasiAlbert(int n, int m, Rng* rng) {
  if (m < 1) return Status::InvalidArgument("BarabasiAlbert: m < 1");
  if (n <= m) {
    return Status::InvalidArgument("BarabasiAlbert: need n > m");
  }
  std::vector<Edge> edges;
  // `targets` holds each node once per incident edge; uniform sampling from
  // it is degree-proportional sampling.
  std::vector<int> targets;
  targets.reserve(static_cast<size_t>(2) * m * n);
  // Seed: star over the first m+1 nodes so every seed node has degree >= 1.
  for (int v = 1; v <= m; ++v) {
    edges.push_back({0, v});
    targets.push_back(0);
    targets.push_back(v);
  }
  std::vector<int> chosen;
  for (int v = m + 1; v < n; ++v) {
    chosen.clear();
    while (static_cast<int>(chosen.size()) < m) {
      int t = targets[rng->UniformInt(static_cast<uint64_t>(targets.size()))];
      if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
        chosen.push_back(t);
      }
    }
    for (int t : chosen) {
      edges.push_back({v, t});
      targets.push_back(v);
      targets.push_back(t);
    }
  }
  return Graph::FromEdges(n, edges);
}

namespace {

// Ring lattice edges: each node connects to its k/2 clockwise neighbors.
Result<std::vector<Edge>> RingLattice(int n, int k) {
  if (k < 0 || k % 2 != 0) {
    return Status::InvalidArgument("ring lattice: k must be even and >= 0");
  }
  if (k >= n) {
    return Status::InvalidArgument("ring lattice: need k < n");
  }
  std::vector<Edge> edges;
  for (int u = 0; u < n; ++u) {
    for (int j = 1; j <= k / 2; ++j) {
      edges.push_back({u, (u + j) % n});
    }
  }
  return edges;
}

}  // namespace

Result<Graph> WattsStrogatz(int n, int k, double p, Rng* rng) {
  GA_ASSIGN_OR_RETURN(std::vector<Edge> edges, RingLattice(n, k));
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("WattsStrogatz: p outside [0,1]");
  }
  // Rewire the far endpoint of each lattice edge with probability p,
  // avoiding self-loops and (best effort) duplicates.
  std::set<std::pair<int, int>> present;
  for (const Edge& e : edges) {
    present.insert({std::min(e.u, e.v), std::max(e.u, e.v)});
  }
  for (Edge& e : edges) {
    if (!rng->Bernoulli(p)) continue;
    for (int attempt = 0; attempt < 16; ++attempt) {
      int w = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
      if (w == e.u || w == e.v) continue;
      auto key = std::make_pair(std::min(e.u, w), std::max(e.u, w));
      if (present.count(key) > 0) continue;
      present.erase({std::min(e.u, e.v), std::max(e.u, e.v)});
      present.insert(key);
      e.v = w;
      break;
    }
  }
  return Graph::FromEdges(n, edges);
}

Result<Graph> NewmanWatts(int n, int k, double p, Rng* rng) {
  GA_ASSIGN_OR_RETURN(std::vector<Edge> edges, RingLattice(n, k));
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("NewmanWatts: p outside [0,1]");
  }
  const size_t lattice_edges = edges.size();
  for (size_t i = 0; i < lattice_edges; ++i) {
    if (!rng->Bernoulli(p)) continue;
    const int u = edges[i].u;
    for (int attempt = 0; attempt < 16; ++attempt) {
      int w = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
      if (w == u) continue;
      edges.push_back({u, w});  // Duplicates removed by Graph::FromEdges.
      break;
    }
  }
  return Graph::FromEdges(n, edges);
}

Result<Graph> PowerlawCluster(int n, int m, double p, Rng* rng) {
  if (m < 1) return Status::InvalidArgument("PowerlawCluster: m < 1");
  if (n <= m) return Status::InvalidArgument("PowerlawCluster: need n > m");
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("PowerlawCluster: p outside [0,1]");
  }
  std::vector<Edge> edges;
  std::vector<int> targets;
  std::vector<std::set<int>> adj(n);
  auto add_edge = [&](int u, int v) {
    edges.push_back({u, v});
    adj[u].insert(v);
    adj[v].insert(u);
    targets.push_back(u);
    targets.push_back(v);
  };
  for (int v = 1; v <= m; ++v) add_edge(0, v);
  for (int v = m + 1; v < n; ++v) {
    int added = 0;
    int last_target = -1;
    while (added < m) {
      int t;
      if (last_target >= 0 && rng->Bernoulli(p)) {
        // Triangle step: connect to a random neighbor of the last target.
        const std::set<int>& nbrs = adj[last_target];
        std::vector<int> candidates;
        for (int w : nbrs) {
          if (w != v && adj[v].count(w) == 0) candidates.push_back(w);
        }
        if (candidates.empty()) {
          last_target = -1;
          continue;  // Fall back to preferential attachment.
        }
        t = candidates[rng->UniformInt(candidates.size())];
      } else {
        t = targets[rng->UniformInt(targets.size())];
        if (t == v || adj[v].count(t) > 0) continue;
      }
      add_edge(v, t);
      last_target = t;
      ++added;
    }
  }
  return Graph::FromEdges(n, edges);
}

Result<Graph> ConfigurationModel(const std::vector<int>& degrees, Rng* rng) {
  const int n = static_cast<int>(degrees.size());
  int64_t total = 0;
  for (int d : degrees) {
    if (d < 0) {
      return Status::InvalidArgument("ConfigurationModel: negative degree");
    }
    total += d;
  }
  if (total % 2 != 0) {
    return Status::InvalidArgument("ConfigurationModel: odd degree sum");
  }
  std::vector<int> stubs;
  stubs.reserve(static_cast<size_t>(total));
  for (int v = 0; v < n; ++v) {
    for (int i = 0; i < degrees[v]; ++i) stubs.push_back(v);
  }
  rng->Shuffle(&stubs);
  std::vector<Edge> edges;
  edges.reserve(stubs.size() / 2);
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (stubs[i] != stubs[i + 1]) {
      edges.push_back({stubs[i], stubs[i + 1]});  // Dups erased by FromEdges.
    }
  }
  return Graph::FromEdges(n, edges);
}

Result<Graph> RandomGeometric(int n, double radius, Rng* rng) {
  if (n < 0) return Status::InvalidArgument("RandomGeometric: n < 0");
  if (radius < 0.0) {
    return Status::InvalidArgument("RandomGeometric: radius < 0");
  }
  std::vector<double> x(n), y(n);
  for (int i = 0; i < n; ++i) {
    x[i] = rng->Uniform();
    y[i] = rng->Uniform();
  }
  // Grid-bucket neighbor search keeps this O(n) for small radii.
  const int cells = std::max(1, static_cast<int>(1.0 / std::max(radius, 1e-9)));
  std::vector<std::vector<int>> grid(static_cast<size_t>(cells) * cells);
  auto cell_of = [&](double v) {
    return std::min(cells - 1, static_cast<int>(v * cells));
  };
  for (int i = 0; i < n; ++i) {
    grid[static_cast<size_t>(cell_of(x[i])) * cells + cell_of(y[i])].push_back(
        i);
  }
  const double r2 = radius * radius;
  std::vector<Edge> edges;
  for (int i = 0; i < n; ++i) {
    const int cx = cell_of(x[i]);
    const int cy = cell_of(y[i]);
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        const int nx = cx + dx, ny = cy + dy;
        if (nx < 0 || nx >= cells || ny < 0 || ny >= cells) continue;
        for (int j : grid[static_cast<size_t>(nx) * cells + ny]) {
          if (j <= i) continue;
          const double ddx = x[i] - x[j];
          const double ddy = y[i] - y[j];
          if (ddx * ddx + ddy * ddy <= r2) edges.push_back({i, j});
        }
      }
    }
  }
  return Graph::FromEdges(n, edges);
}

namespace {

void MakeSumEven(std::vector<int>* degrees) {
  int64_t total = 0;
  for (int d : *degrees) total += d;
  if (total % 2 != 0 && !degrees->empty()) {
    (*degrees)[0] += 1;
  }
}

}  // namespace

std::vector<int> NormalDegreeSequence(int n, double mean, double stddev,
                                      Rng* rng) {
  std::vector<int> degrees(n);
  for (int i = 0; i < n; ++i) {
    double d = rng->Normal(mean, stddev);
    degrees[i] = std::clamp(static_cast<int>(std::lround(d)), 1,
                            std::max(1, n - 1));
  }
  MakeSumEven(&degrees);
  return degrees;
}

std::vector<int> PowerLawDegreeSequence(int n, double gamma, int kmin,
                                        Rng* rng) {
  std::vector<int> degrees(n);
  for (int i = 0; i < n; ++i) {
    double d = rng->PowerLaw(gamma, static_cast<double>(kmin));
    degrees[i] = std::clamp(static_cast<int>(std::lround(d)), kmin,
                            std::max(kmin, n - 1));
  }
  MakeSumEven(&degrees);
  return degrees;
}

Graph LargestComponentSubgraph(const Graph& g, std::vector<int>* old_to_new) {
  int k = 0;
  std::vector<int> comp = g.ConnectedComponents(&k);
  std::vector<int> sizes(std::max(k, 1), 0);
  for (int c : comp) sizes[c]++;
  const int best = static_cast<int>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  std::vector<int> mapping(g.num_nodes(), -1);
  int next = 0;
  for (int v = 0; v < g.num_nodes(); ++v) {
    if (comp[v] == best) mapping[v] = next++;
  }
  std::vector<Edge> edges;
  for (const Edge& e : g.Edges()) {
    if (mapping[e.u] >= 0 && mapping[e.v] >= 0) {
      edges.push_back({mapping[e.u], mapping[e.v]});
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(mapping);
  auto sub = Graph::FromEdges(next, edges);
  GA_CHECK(sub.ok());
  return *std::move(sub);
}

}  // namespace graphalign
