file(REMOVE_RECURSE
  "CMakeFiles/metrics_noise_test.dir/metrics_noise_test.cc.o"
  "CMakeFiles/metrics_noise_test.dir/metrics_noise_test.cc.o.d"
  "metrics_noise_test"
  "metrics_noise_test.pdb"
  "metrics_noise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_noise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
