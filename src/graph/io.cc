#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace graphalign {

Result<Graph> ReadEdgeList(const std::string& path, int num_nodes) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::vector<std::pair<long long, long long>> raw_edges;
  long long max_id = -1;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    long long u, v;
    if (!(ss >> u >> v)) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": malformed edge line");
    }
    if (u < 0 || v < 0) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": negative node id");
    }
    if (u == v) continue;  // Drop self-loops silently, as the paper's loaders do.
    raw_edges.emplace_back(u, v);
    max_id = std::max({max_id, u, v});
  }
  std::vector<Edge> edges;
  edges.reserve(raw_edges.size());
  int total_nodes;
  if (max_id < 50'000'000) {
    // Dense id space: ids are kept verbatim so that mapping/ground-truth
    // files written against the same graph stay consistent across reloads.
    for (const auto& [u, v] : raw_edges) {
      edges.push_back({static_cast<int>(u), static_cast<int>(v)});
    }
    total_nodes = static_cast<int>(max_id + 1);
  } else {
    // Sparse id space (e.g. hash-like ids): compact by first appearance.
    std::unordered_map<long long, int> id_map;
    int next_id = 0;
    auto intern = [&](long long raw) {
      auto [it, inserted] = id_map.emplace(raw, next_id);
      if (inserted) ++next_id;
      return it->second;
    };
    for (const auto& [u, v] : raw_edges) {
      edges.push_back({intern(u), intern(v)});
    }
    total_nodes = next_id;
  }
  return Graph::FromEdges(std::max(num_nodes, total_nodes), edges);
}

Status WriteEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot write " + path);
  for (const Edge& e : g.Edges()) {
    out << e.u << " " << e.v << "\n";
  }
  if (!out) return Status::Internal("write failed for " + path);
  return Status::Ok();
}

}  // namespace graphalign
