// Figure 17 (repo extension): sparse LSH pipeline vs dense similarity.
//
// Sweeps node count on configuration-model graphs with 5% one-way noise and
// runs each algorithm twice per point: the dense pipeline (n^2 similarity
// matrix + greedy extraction) and the sparse pipeline (LSH candidates +
// candidate-only scoring + sparse LAP). The dense path hits the memory wall
// at 10^5 nodes (an 8 GB matrix per algorithm run); under --mem-limit the
// cell is contained and recorded as OOM while the sparse path completes —
// that contrast is the point of the figure. Accuracy against the planted
// ground truth records what the candidate restriction costs.
//
// The checked-in BENCH_sparse.json is produced by:
//   bench_fig17_sparse_scal --full --mem-limit 2048 --json BENCH_sparse.json
#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "metrics/metrics.h"
#include "noise/noise.h"

namespace graphalign {
namespace bench {
namespace {

struct Point {
  std::string label;
  int n;
  double avg_degree;
};

std::vector<Point> SweepPoints(bool full) {
  if (full) {
    return {{"2^10", 1 << 10, 10.0},
            {"2^13", 1 << 13, 10.0},
            {"10^5", 100'000, 10.0}};
  }
  return {{"n500", 500, 8.0}, {"n1000", 1000, 8.0}, {"n2000", 2000, 8.0}};
}

// Workload: configuration-model base, 5% one-way noise, permuted copy with
// planted ground truth (so `accuracy` measures real recovery, not identity).
AlignmentProblem MakeProblem(int n, double avg_degree, uint64_t seed) {
  Rng rng(seed);
  std::vector<int> degrees =
      NormalDegreeSequence(n, avg_degree, avg_degree / 4.0, &rng);
  auto base = ConfigurationModel(degrees, &rng);
  GA_CHECK(base.ok());
  NoiseOptions noise;
  noise.level = 0.05;
  auto problem = MakeAlignmentProblem(*base, noise, &rng);
  GA_CHECK(problem.ok());
  return *std::move(problem);
}

int Run(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  Banner("Figure 17",
         "sparse LSH pipeline vs dense similarity (runtime, memory, quality)",
         args);
  // Default to the native-sparse algorithms; --algos can add the rest (they
  // run the dense-fallback sparse path, which saves assignment memory only).
  const std::vector<std::string> algorithms =
      args.algorithms.empty()
          ? std::vector<std::string>{"NSD", "LREA", "REGAL"}
          : args.algorithms;

  Journal journal = MustOpenJournal(args);
  Table t({"point", "n", "avg_deg", "algorithm", "mode", "seconds",
           "accuracy", "candidates"});
  // An algorithm whose dense cell DNF'd/OOM'd is not retried dense at larger
  // points (the paper's cutoff rule); the sparse cells keep running.
  std::set<std::string> dense_out;
  for (const Point& point : SweepPoints(args.full)) {
    AlignmentProblem problem =
        MakeProblem(point.n, point.avg_degree, args.seed);
    const double dense_gb = static_cast<double>(point.n) * point.n * 8.0 /
                            (1024.0 * 1024.0 * 1024.0);
    for (const std::string& name : algorithms) {
      for (const bool sparse : {false, true}) {
        const char* mode = sparse ? "sparse" : "dense";
        const std::string key = CellKey({point.label, name, mode});
        JournaledRow(&t, &journal, key, [&]() -> std::vector<std::string> {
          std::string seconds, accuracy = "-", candidates = "-";
          if (!sparse && dense_out.count(name) > 0) {
            seconds = "DNF";
          } else if (!sparse && args.mem_limit_mb <= 0.0 && dense_gb > 4.0) {
            // Unprotected run: attempting an n^2 matrix this size would take
            // the whole bench down instead of one contained cell.
            seconds = "SKIP (dense needs " + Table::Num(dense_gb, 1) + " GB)";
            dense_out.insert(name);
          } else {
            RunOutcome out = RunContained(args, [&] {
              auto aligner = MakeBenchAligner(name);
              const Deadline deadline =
                  Deadline::AfterSeconds(args.time_limit_seconds);
              RunOutcome one;
              WallTimer timer;
              Alignment alignment;
              if (sparse) {
                LshOptions lsh;
                lsh.seed = args.seed;
                auto aligned =
                    aligner->AlignSparse(problem.g1, problem.g2, lsh,
                                         deadline);
                if (!aligned.ok()) {
                  one.error = aligned.status().code() ==
                                      StatusCode::kDeadlineExceeded
                                  ? "DNF (time limit)"
                                  : aligned.status().ToString();
                  return one;
                }
                alignment = std::move(aligned->alignment);
                one.aux_count = aligned->num_candidates;
              } else {
                auto sim = aligner->ComputeSimilarity(problem.g1, problem.g2,
                                                      deadline);
                if (!sim.ok()) {
                  one.error =
                      sim.status().code() == StatusCode::kDeadlineExceeded
                          ? "DNF (time limit)"
                          : sim.status().ToString();
                  return one;
                }
                auto extracted = ExtractAlignment(
                    *sim, AssignmentMethod::kSortGreedy, deadline);
                if (!extracted.ok()) {
                  one.error = extracted.status().ToString();
                  return one;
                }
                alignment = std::move(*extracted);
              }
              one.similarity_seconds = timer.Seconds();
              if (one.similarity_seconds > args.time_limit_seconds) {
                one.error = "DNF (time limit)";
                return one;
              }
              one.quality = EvaluateAlignment(problem.g1, problem.g2,
                                              alignment,
                                              problem.ground_truth);
              one.completed = true;
              one.completed_runs = 1;
              return one;
            });
            if (!out.completed && !sparse) dense_out.insert(name);
            seconds = FormatOutcome(out, out.similarity_seconds);
            if (out.completed) {
              accuracy = Table::Num(out.quality.accuracy);
              if (sparse) candidates = std::to_string(out.aux_count);
            }
          }
          return {point.label, std::to_string(point.n),
                  Table::Num(point.avg_degree, 1), name, mode, seconds,
                  accuracy, candidates};
        });
      }
    }
  }
  Emit(t, args,
       {{"bench", "fig17_sparse_scal"},
        {"mode", args.full ? "full" : "smoke"},
        {"seed", std::to_string(args.seed)},
        {"time_limit_s", Table::Num(args.time_limit_seconds, 1)},
        {"mem_limit_mb", Table::Num(args.mem_limit_mb, 1)},
        {"noise", "one-way 0.05"}});
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace graphalign

int main(int argc, char** argv) {
  return graphalign::bench::Run(argc, argv);
}
