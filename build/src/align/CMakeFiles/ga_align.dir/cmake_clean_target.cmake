file(REMOVE_RECURSE
  "libga_align.a"
)
