#include "gateway/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace graphalign {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::Has(const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

const JsonValue& JsonValue::Get(const std::string& key) const {
  static const JsonValue kNull;
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  return kNull;
}

void JsonValue::Push(JsonValue v) {
  GA_CHECK(kind_ == Kind::kArray);
  array_.push_back(std::move(v));
}

void JsonValue::Set(std::string key, JsonValue v) {
  GA_CHECK(kind_ == Kind::kObject);
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

bool JsonValue::AsInt64(int64_t* out, int64_t min, int64_t max) const {
  if (kind_ != Kind::kNumber) return false;
  if (!std::isfinite(number_) || number_ != std::floor(number_)) return false;
  // Compare in double space: the bounds used by the gateway are all far
  // below 2^53, so the conversion is exact.
  if (number_ < static_cast<double>(min) ||
      number_ > static_cast<double>(max)) {
    return false;
  }
  *out = static_cast<int64_t>(number_);
  return true;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void DumpTo(const JsonValue& v, std::string* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += v.AsBool() ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber: {
      const double d = v.AsNumber();
      char buf[32];
      if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
      } else if (std::isfinite(d)) {
        std::snprintf(buf, sizeof(buf), "%.17g", d);
      } else {
        // JSON has no NaN/Inf; null is the least-wrong total encoding.
        std::snprintf(buf, sizeof(buf), "null");
      }
      *out += buf;
      break;
    }
    case JsonValue::Kind::kString:
      *out += '"';
      *out += JsonEscape(v.AsString());
      *out += '"';
      break;
    case JsonValue::Kind::kArray: {
      *out += '[';
      bool first = true;
      for (const JsonValue& e : v.AsArray()) {
        if (!first) *out += ',';
        first = false;
        DumpTo(e, out);
      }
      *out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [k, e] : v.Items()) {
        if (!first) *out += ',';
        first = false;
        *out += '"';
        *out += JsonEscape(k);
        *out += "\":";
        DumpTo(e, out);
      }
      *out += '}';
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    GA_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing bytes after the JSON document");
    }
    return v;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth > kMaxJsonDepth) return Fail("nesting exceeds the depth cap");
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == 'n') {
      if (!Literal("null")) return Fail("bad literal");
      *out = JsonValue::Null();
      return Status::Ok();
    }
    if (c == 't') {
      if (!Literal("true")) return Fail("bad literal");
      *out = JsonValue::Bool(true);
      return Status::Ok();
    }
    if (c == 'f') {
      if (!Literal("false")) return Fail("bad literal");
      *out = JsonValue::Bool(false);
      return Status::Ok();
    }
    if (c == '"') return ParseString(out);
    if (c == '[') return ParseArray(out, depth);
    if (c == '{') return ParseObject(out, depth);
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
    return Fail(std::string("unexpected character '") + c + "'");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      return pos_ > before;
    };
    // Grammar-strict integer part: a bare "-" or a leading zero followed by
    // digits is malformed JSON, not a lenient parse.
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;
    } else if (!digits()) {
      return Fail("malformed number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) return Fail("malformed number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) return Fail("malformed number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE ||
        !std::isfinite(d)) {
      return Fail("number out of range");
    }
    *out = JsonValue::Number(d);
    return Status::Ok();
  }

  Status ParseString(JsonValue* out) {
    std::string s;
    GA_RETURN_IF_ERROR(ParseRawString(&s));
    *out = JsonValue::Str(std::move(s));
    return Status::Ok();
  }

  Status ParseRawString(std::string* s) {
    ++pos_;  // Opening quote (caller verified).
    s->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c < 0x20) return Fail("unescaped control byte in string");
      if (c != '\\') {
        s->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': s->push_back('"'); break;
        case '\\': s->push_back('\\'); break;
        case '/': s->push_back('/'); break;
        case 'b': s->push_back('\b'); break;
        case 'f': s->push_back('\f'); break;
        case 'n': s->push_back('\n'); break;
        case 'r': s->push_back('\r'); break;
        case 't': s->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<uint32_t>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // Encode as UTF-8. Surrogate pairs are not combined (the gateway
          // never needs astral-plane text); lone surrogates round-trip as
          // their replacement-free byte encoding would be invalid, so map
          // them to U+FFFD.
          if (cp >= 0xD800 && cp <= 0xDFFF) cp = 0xFFFD;
          if (cp < 0x80) {
            s->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            s->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            s->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    ++pos_;  // '['
    JsonValue arr = JsonValue::Array();
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = std::move(arr);
      return Status::Ok();
    }
    while (true) {
      JsonValue elem;
      GA_RETURN_IF_ERROR(ParseValue(&elem, depth + 1));
      arr.Push(std::move(elem));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        *out = std::move(arr);
        return Status::Ok();
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::Object();
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = std::move(obj);
      return Status::Ok();
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      GA_RETURN_IF_ERROR(ParseRawString(&key));
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      JsonValue val;
      GA_RETURN_IF_ERROR(ParseValue(&val, depth + 1));
      obj.Set(std::move(key), std::move(val));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        *out = std::move(obj);
        return Status::Ok();
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace graphalign
