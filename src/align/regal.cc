#include "align/regal.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "linalg/kdtree.h"
#include "linalg/svd.h"

namespace graphalign {

namespace {

// Discounted k-hop degree histogram features (Eq. 8), log2 buckets.
Status HopDegreeFeatures(const Graph& g, int max_hops, double discount,
                         int num_buckets, const Deadline& deadline,
                         DenseMatrix* features, int row_offset) {
  const int n = g.num_nodes();
  DeadlineChecker checker(deadline, /*stride=*/64);
  std::vector<int> dist(n);
  std::vector<int> frontier;
  for (int src = 0; src < n; ++src) {
    GA_RETURN_IF_EXPIRED(checker, "REGAL features");
    std::fill(dist.begin(), dist.end(), -1);
    dist[src] = 0;
    frontier.assign(1, src);
    double weight = 1.0;
    double* feat = features->Row(row_offset + src);
    for (int hop = 1; hop <= max_hops && !frontier.empty(); ++hop) {
      std::vector<int> next;
      for (int u : frontier) {
        for (int v : g.Neighbors(u)) {
          if (dist[v] != -1) continue;
          dist[v] = hop;
          next.push_back(v);
          const int d = g.Degree(v);
          if (d > 0) {
            const int b =
                std::min(num_buckets - 1,
                         static_cast<int>(std::floor(std::log2(d))));
            feat[b] += weight;
          }
        }
      }
      frontier = std::move(next);
      weight *= discount;
    }
  }
  return Status::Ok();
}

}  // namespace

Result<DenseMatrix> RegalAligner::ComputeEmbeddings(const Graph& g1,
                                                    const Graph& g2,
                                                    const Deadline& deadline) {
  GA_RETURN_IF_ERROR(ValidateInputs(g1, g2));
  if (options_.max_hops < 1 || options_.discount < 0.0 ||
      options_.landmark_factor < 1) {
    return Status::InvalidArgument("REGAL: bad options");
  }
  const int n1 = g1.num_nodes();
  const int n2 = g2.num_nodes();
  const int n = n1 + n2;
  const int max_deg = std::max(std::max(g1.MaxDegree(), g2.MaxDegree()), 1);
  const int num_buckets =
      static_cast<int>(std::floor(std::log2(max_deg))) + 1;

  DenseMatrix features(n, num_buckets);
  GA_RETURN_IF_ERROR(HopDegreeFeatures(g1, options_.max_hops,
                                       options_.discount, num_buckets,
                                       deadline, &features, 0));
  GA_RETURN_IF_ERROR(HopDegreeFeatures(g2, options_.max_hops,
                                       options_.discount, num_buckets,
                                       deadline, &features, n1));

  // Landmark selection over the union of both node sets.
  const int p = std::min(
      n, std::max(2, static_cast<int>(options_.landmark_factor *
                                      std::log2(std::max(n, 2)))));
  Rng rng(options_.seed);
  std::vector<int> landmarks = RandomPermutation(n, &rng);
  landmarks.resize(p);

  // Node-to-landmark similarities C (Eq. 9 with gamma_attr = 0). One bounded
  // parallel region; a single check before it keeps overshoot bounded.
  GA_RETURN_IF_EXPIRED(deadline, "REGAL landmarks");
  DenseMatrix c(n, p);
  ParallelFor(n, [&](int64_t lo, int64_t hi) {
    for (int i = static_cast<int>(lo); i < hi; ++i) {
      const double* fi = features.Row(i);
      double* crow = c.Row(i);
      for (int l = 0; l < p; ++l) {
        const double* fl = features.Row(landmarks[l]);
        double d2 = 0.0;
        for (int b = 0; b < num_buckets; ++b) {
          const double diff = fi[b] - fl[b];
          d2 += diff * diff;
        }
        crow[l] = std::exp(-options_.gamma_struc * d2);
      }
    }
  }, std::max<int64_t>(2, 500'000 / (static_cast<int64_t>(p) * num_buckets + 1)));

  // Nystrom: S ~= C W^+ C^T with W the landmark-to-landmark block;
  // factor W^+ = U S V^T and embed Y = C U S^{1/2}.
  DenseMatrix w(p, p);
  for (int a = 0; a < p; ++a) {
    for (int b = 0; b < p; ++b) w(a, b) = c(landmarks[a], b);
  }
  GA_ASSIGN_OR_RETURN(DenseMatrix w_pinv, PseudoInverse(w, 1e-10, deadline));
  GA_ASSIGN_OR_RETURN(SvdResult svd, Svd(w_pinv, deadline));
  DenseMatrix u_scaled = svd.u;  // p x p
  for (int j = 0; j < p; ++j) {
    const double s = std::sqrt(std::max(svd.singular_values[j], 0.0));
    for (int i = 0; i < p; ++i) u_scaled(i, j) *= s;
  }
  DenseMatrix y = Multiply(c, u_scaled);  // n x p
  // Row-normalize embeddings (as REGAL's reference implementation does).
  for (int i = 0; i < n; ++i) {
    double* row = y.Row(i);
    double norm = 0.0;
    for (int j = 0; j < p; ++j) norm += row[j] * row[j];
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (int j = 0; j < p; ++j) row[j] /= norm;
    }
  }
  return y;
}

Result<DenseMatrix> RegalAligner::ComputeSimilarityImpl(
    const Graph& g1, const Graph& g2, const Deadline& deadline) {
  GA_ASSIGN_OR_RETURN(DenseMatrix y, ComputeEmbeddings(g1, g2, deadline));
  GA_RETURN_IF_EXPIRED(deadline, "REGAL similarity");
  const int n1 = g1.num_nodes();
  const int n2 = g2.num_nodes();
  const int d = y.cols();
  DenseMatrix sim(n1, n2);
  ParallelFor(n1, [&](int64_t lo, int64_t hi) {
    for (int u = static_cast<int>(lo); u < hi; ++u) {
      const double* yu = y.Row(u);
      double* out = sim.Row(u);
      for (int v = 0; v < n2; ++v) {
        const double* yv = y.Row(n1 + v);
        double d2 = 0.0;
        for (int j = 0; j < d; ++j) {
          const double diff = yu[j] - yv[j];
          d2 += diff * diff;
        }
        out[v] = std::exp(-d2);  // Eq. 10.
      }
    }
  }, std::max<int64_t>(2, 500'000 / (static_cast<int64_t>(n2) * d + 1)));
  return sim;
}

Status RegalAligner::ScoreSparseCandidatesImpl(
    const Graph& g1, const Graph& g2, const Deadline& deadline,
    std::vector<SparseCandidate>* candidates) {
  GA_ASSIGN_OR_RETURN(DenseMatrix y, ComputeEmbeddings(g1, g2, deadline));
  GA_RETURN_IF_EXPIRED(deadline, "REGAL sparse similarity");
  const int n1 = g1.num_nodes();
  const int d = y.cols();
  for (SparseCandidate& c : *candidates) {
    const double* yu = y.Row(c.row);
    const double* yv = y.Row(n1 + c.col);
    double d2 = 0.0;
    for (int j = 0; j < d; ++j) {
      const double diff = yu[j] - yv[j];
      d2 += diff * diff;
    }
    c.similarity = std::exp(-d2);  // Eq. 10, sampled at the candidate.
  }
  return Status::Ok();
}

Result<Alignment> RegalAligner::AlignNativeImpl(const Graph& g1,
                                                const Graph& g2,
                                                const Deadline& deadline) {
  GA_ASSIGN_OR_RETURN(DenseMatrix y, ComputeEmbeddings(g1, g2, deadline));
  GA_RETURN_IF_EXPIRED(deadline, "REGAL nearest-neighbor");
  const int n1 = g1.num_nodes();
  const int n2 = g2.num_nodes();
  DenseMatrix targets(n2, y.cols());
  for (int v = 0; v < n2; ++v) {
    for (int j = 0; j < y.cols(); ++j) targets(v, j) = y(n1 + v, j);
  }
  KdTree tree(targets);
  Alignment align(n1, -1);
  for (int u = 0; u < n1; ++u) {
    align[u] = tree.Nearest(y.Row(u)).index;
  }
  return align;
}

}  // namespace graphalign
