file(REMOVE_RECURSE
  "CMakeFiles/graphlets5_test.dir/graphlets5_test.cc.o"
  "CMakeFiles/graphlets5_test.dir/graphlets5_test.cc.o.d"
  "graphlets5_test"
  "graphlets5_test.pdb"
  "graphlets5_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphlets5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
