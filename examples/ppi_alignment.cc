// Protein-protein interaction (PPI) network alignment — the biological
// application IsoRank was designed for (§3.1) and the MultiMagna protocol
// of §6.5: align a base interactome against progressively noisier variants
// to find proteins playing similar roles in related species.
//
// In PPI alignment the identity of a node matters less than conserved
// interaction structure, so Edge Correctness, ICS, and S3 are the headline
// measures, with accuracy as the sanity check.
//
// Build & run:  ./build/examples/ppi_alignment [--full]
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "align/aligner.h"
#include "common/random.h"
#include "common/table.h"
#include "datasets/datasets.h"
#include "metrics/metrics.h"
#include "noise/noise.h"

int main(int argc, char** argv) {
  using namespace graphalign;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  // Base interactome (MultiMagna yeast-network stand-in) and five variants
  // with 5%..25% extra interactions (experimental noise / species drift).
  auto base = MakeStandIn("MultiMagna", /*seed=*/11, full ? 1.0 : 0.3);
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }
  Rng rng(5);
  auto variants = MultiMagnaVariants(*base, /*count=*/5, /*step=*/0.05, &rng);
  if (!variants.ok()) {
    std::fprintf(stderr, "%s\n", variants.status().ToString().c_str());
    return 1;
  }
  std::printf("base interactome: %d proteins, %lld interactions\n",
              base->num_nodes(), static_cast<long long>(base->num_edges()));

  Table t({"variant", "method", "accuracy", "EC", "ICS", "S3"});
  for (size_t v = 0; v < variants->size(); ++v) {
    Rng prng(100 + v);
    auto problem = MakeProblemFromPair(*base, (*variants)[v], &prng);
    if (!problem.ok()) continue;
    for (const std::string& name : {"IsoRank", "GWL"}) {
      auto aligner = MakeAligner(name);
      auto alignment = (*aligner)->Align(problem->g1, problem->g2,
                                         AssignmentMethod::kJonkerVolgenant);
      if (!alignment.ok()) {
        t.AddRow({"v" + std::to_string(v + 1), name, "ERR", "-", "-", "-"});
        continue;
      }
      QualityReport q = EvaluateAlignment(problem->g1, problem->g2,
                                          *alignment, problem->ground_truth);
      t.AddRow({"v" + std::to_string(v + 1), name, Table::Num(q.accuracy),
                Table::Num(q.ec), Table::Num(q.ics), Table::Num(q.s3)});
    }
  }
  t.Print(std::cout);
  std::printf(
      "\nhigh EC with lower accuracy indicates functionally-equivalent\n"
      "(automorphic) proteins being swapped — acceptable in PPI analysis.\n");
  return 0;
}
