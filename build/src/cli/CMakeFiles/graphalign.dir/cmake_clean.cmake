file(REMOVE_RECURSE
  "CMakeFiles/graphalign.dir/main.cc.o"
  "CMakeFiles/graphalign.dir/main.cc.o.d"
  "graphalign"
  "graphalign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphalign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
