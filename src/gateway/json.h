// Minimal JSON parser and writer for the HTTP gateway (DESIGN.md §16).
//
// The gateway's request bodies are small, flat documents (an edge list is
// the largest thing they carry), so this is a strict recursive-descent
// parser over the full text — total like every other decoder in the repo:
// any byte sequence yields a parsed value or an InvalidArgument naming the
// offset, never a crash, an unbounded recursion, or a proportional-to-
// declared-size allocation. No dependencies; shared by the gateway, the
// CLI's `submit --batch`, and the loadgen HTTP mode.
//
// Deliberate restrictions (wire-compatible with standard JSON):
//  - numbers parse as double (the protocol's integers all fit exactly),
//  - nesting depth is capped (kMaxJsonDepth) against stack exhaustion,
//  - input size is the caller's problem (the HTTP body cap bounds it).
#ifndef GRAPHALIGN_GATEWAY_JSON_H_
#define GRAPHALIGN_GATEWAY_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace graphalign {

inline constexpr size_t kMaxJsonDepth = 32;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }

  // Object access. Get returns null when the key is absent; Has
  // distinguishes an absent key from an explicit null.
  bool Has(const std::string& key) const;
  const JsonValue& Get(const std::string& key) const;
  // Keys in insertion order (the writer emits them in this order too).
  const std::vector<std::pair<std::string, JsonValue>>& Items() const {
    return object_;
  }

  // Builders.
  void Push(JsonValue v);                       // Array append.
  void Set(std::string key, JsonValue v);       // Object insert/overwrite.

  // Integer view of a number: false unless the double is integral and in
  // [min, max]. The gateway uses it for node ids, indices, and limits.
  bool AsInt64(int64_t* out, int64_t min, int64_t max) const;

  // Serializes with no insignificant whitespace. Doubles print round-trip
  // exactly (%.17g) with integral values shortened to integer form.
  std::string Dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

// Strict parse of exactly one JSON document (trailing non-whitespace is an
// error). Errors name the byte offset of the violation.
Result<JsonValue> ParseJson(std::string_view text);

// Escapes a string for embedding in a JSON document (no surrounding
// quotes). Control bytes become \u00XX; invalid UTF-8 is passed through
// byte-wise (the daemon's messages are ASCII).
std::string JsonEscape(std::string_view s);

}  // namespace graphalign

#endif  // GRAPHALIGN_GATEWAY_JSON_H_
