#include "linalg/csr.h"

#include <algorithm>

#include "common/parallel.h"

namespace graphalign {

CsrMatrix CsrMatrix::FromTriplets(int rows, int cols,
                                  std::vector<Triplet> triplets) {
  GA_CHECK(rows >= 0 && cols >= 0);
  for (const Triplet& t : triplets) {
    GA_CHECK(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  size_t i = 0;
  for (int r = 0; r < rows; ++r) {
    while (i < triplets.size() && triplets[i].row == r) {
      // Sum duplicates.
      double v = triplets[i].value;
      int c = triplets[i].col;
      ++i;
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        v += triplets[i].value;
        ++i;
      }
      m.col_idx_.push_back(c);
      m.values_.push_back(v);
    }
    m.row_ptr_[r + 1] = static_cast<int64_t>(m.col_idx_.size());
  }
  return m;
}

std::vector<double> CsrMatrix::Multiply(const std::vector<double>& x) const {
  GA_CHECK(static_cast<int>(x.size()) == cols_);
  std::vector<double> y(rows_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      s += values_[k] * x[col_idx_[k]];
    }
    y[r] = s;
  }
  return y;
}

std::vector<double> CsrMatrix::MultiplyTransposed(
    const std::vector<double>& x) const {
  GA_CHECK(static_cast<int>(x.size()) == rows_);
  std::vector<double> y(cols_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      y[col_idx_[k]] += values_[k] * xr;
    }
  }
  return y;
}

DenseMatrix CsrMatrix::Multiply(const DenseMatrix& b) const {
  GA_CHECK(cols_ == b.rows());
  DenseMatrix c(rows_, b.cols());
  const int64_t avg_flops_per_row =
      rows_ > 0 ? (nnz() * b.cols()) / rows_ + 1 : 1;
  ParallelFor(
      rows_,
      [&](int64_t lo, int64_t hi) {
        for (int r = static_cast<int>(lo); r < hi; ++r) {
          double* crow = c.Row(r);
          for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
            const double v = values_[k];
            const double* brow = b.Row(col_idx_[k]);
            for (int j = 0; j < b.cols(); ++j) crow[j] += v * brow[j];
          }
        }
      },
      /*min_work=*/std::max<int64_t>(2, 1'000'000 / avg_flops_per_row));
  return c;
}

DenseMatrix CsrMatrix::MultiplyTransposed(const DenseMatrix& b) const {
  GA_CHECK(rows_ == b.rows());
  DenseMatrix c(cols_, b.cols());
  // The natural row-major loop scatters into c.Row(col_idx_[k]), which races
  // when rows are split across threads. Build a column-major view (CSC) with
  // an O(nnz) counting sort, then give each block a disjoint range of output
  // rows. The stable fill keeps each column's entries in ascending source-row
  // order, so per-entry accumulation order — and therefore every bit of the
  // result — matches the sequential scatter loop.
  std::vector<int64_t> col_ptr(cols_ + 1, 0);
  for (int c2 : col_idx_) ++col_ptr[c2 + 1];
  for (int j = 0; j < cols_; ++j) col_ptr[j + 1] += col_ptr[j];
  std::vector<int> src_row(values_.size());
  std::vector<double> src_val(values_.size());
  {
    std::vector<int64_t> fill = col_ptr;
    for (int r = 0; r < rows_; ++r) {
      for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        const int64_t slot = fill[col_idx_[k]]++;
        src_row[slot] = r;
        src_val[slot] = values_[k];
      }
    }
  }
  const int64_t avg_flops_per_row =
      cols_ > 0 ? (nnz() * b.cols()) / cols_ + 1 : 1;
  ParallelFor(
      cols_,
      [&](int64_t lo, int64_t hi) {
        for (int i = static_cast<int>(lo); i < hi; ++i) {
          double* crow = c.Row(i);
          for (int64_t k = col_ptr[i]; k < col_ptr[i + 1]; ++k) {
            const double v = src_val[k];
            const double* brow = b.Row(src_row[k]);
            for (int j = 0; j < b.cols(); ++j) crow[j] += v * brow[j];
          }
        }
      },
      /*min_work=*/std::max<int64_t>(2, 1'000'000 / avg_flops_per_row));
  return c;
}

DenseMatrix CsrMatrix::RightMultiplied(const DenseMatrix& x) const {
  GA_CHECK(x.cols() == rows_);
  DenseMatrix c(x.rows(), cols_);
  const int64_t flops_per_row = nnz() + rows_ + 1;
  ParallelFor(
      x.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int i = static_cast<int>(lo); i < hi; ++i) {
          const double* xrow = x.Row(i);
          double* crow = c.Row(i);
          for (int r = 0; r < rows_; ++r) {
            const double xv = xrow[r];
            if (xv == 0.0) continue;
            for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
              crow[col_idx_[k]] += xv * values_[k];
            }
          }
        }
      },
      /*min_work=*/std::max<int64_t>(2, 1'000'000 / flops_per_row));
  return c;
}

CsrMatrix CsrMatrix::Transposed() const {
  std::vector<Triplet> t;
  t.reserve(values_.size());
  for (int r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      t.push_back({col_idx_[k], r, values_[k]});
    }
  }
  return FromTriplets(cols_, rows_, std::move(t));
}

std::vector<double> CsrMatrix::RowSums() const {
  std::vector<double> s(rows_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      s[r] += values_[k];
    }
  }
  return s;
}

CsrMatrix CsrMatrix::ScaleRows(const std::vector<double>& scale) const {
  GA_CHECK(static_cast<int>(scale.size()) == rows_);
  CsrMatrix m = *this;
  for (int r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      m.values_[k] *= scale[r];
    }
  }
  return m;
}

DenseMatrix CsrMatrix::ToDense() const {
  DenseMatrix d(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      d(r, col_idx_[k]) += values_[k];
    }
  }
  return d;
}

}  // namespace graphalign
