// Entropy-regularized optimal transport via Sinkhorn-Knopp scaling.
//
// GWL's proximal-point steps and CONE's Wasserstein alignment both reduce to
// repeated Sinkhorn projections of a Gibbs kernel onto prescribed marginals.
#ifndef GRAPHALIGN_LINALG_SINKHORN_H_
#define GRAPHALIGN_LINALG_SINKHORN_H_

#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "linalg/dense.h"

namespace graphalign {

struct SinkhornOptions {
  double epsilon = 0.05;     // Entropic regularization strength.
  int max_iters = 200;       // Scaling iterations.
  double tolerance = 1e-6;   // L1 marginal violation to stop at.
};

// Minimizes <C, T> - eps * H(T) over couplings T with marginals (mu, nu).
// C is n x m; mu has length n, nu length m, both summing to ~1.
// Returns the transport plan T (n x m). Numerically stabilized by shifting
// each row of C by its minimum before exponentiation.
Result<DenseMatrix> SinkhornTransport(const DenseMatrix& cost,
                                      const std::vector<double>& mu,
                                      const std::vector<double>& nu,
                                      const SinkhornOptions& options = {},
                                      const Deadline& deadline = Deadline());

// Sinkhorn projection of an explicit positive kernel K onto the transport
// polytope with marginals (mu, nu): T = diag(a) K diag(b). Used by GWL's
// proximal updates where K = exp(-grad/beta) ⊙ T_prev.
//
// Peaked kernels (tiny epsilon, concentrated costs) can underflow: entries
// round to zero, rows/columns lose all mass, or overflow poisons entries
// with inf/NaN. Instead of rejecting such kernels, the projection restarts
// in the log domain (potentials + log-sum-exp), which handles entries down
// to exp(-745) and below without ever forming the underflowed products.
// `used_log_fallback`, when non-null, reports whether that path ran.
// Negative kernel entries are still InvalidArgument — they are a caller bug,
// not an underflow. Arming the `linalg.sinkhorn.strict` failpoint restores
// the historical hard rejection of non-finite kernels (for tests).
Result<DenseMatrix> SinkhornProject(const DenseMatrix& kernel,
                                    const std::vector<double>& mu,
                                    const std::vector<double>& nu,
                                    int max_iters = 200,
                                    double tolerance = 1e-6,
                                    const Deadline& deadline = Deadline(),
                                    bool* used_log_fallback = nullptr);

// Uniform probability vector of length n.
std::vector<double> UniformMarginal(int n);

}  // namespace graphalign

#endif  // GRAPHALIGN_LINALG_SINKHORN_H_
