// Shared implementation for Figures 2-6: one synthetic graph model, three
// noise types, noise 0-5%, reporting Accuracy, S3, and MNC per algorithm
// (paper §6.3). The paper fixes n = 1133 and matches degree distributions to
// the real graphs; smoke mode shrinks n.
#ifndef GRAPHALIGN_BENCH_FIGURE_SYNTHETIC_H_
#define GRAPHALIGN_BENCH_FIGURE_SYNTHETIC_H_

#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "graph/graph.h"
#include "noise/noise.h"

namespace graphalign {
namespace bench {

using GraphFactory = std::function<Result<Graph>(int n, Rng* rng)>;

inline int RunSyntheticFigure(const std::string& figure_id,
                              const std::string& model_name,
                              const GraphFactory& factory, int argc,
                              char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  Banner(figure_id, "Accuracy/S3/MNC on " + model_name +
                        " graphs, three noise types, noise 0-5%",
         args);
  const int n = args.full ? 1133 : 170;
  const int reps = args.repetitions > 0 ? args.repetitions
                                        : (args.full ? 10 : 1);
  Rng rng(args.seed);
  auto base = factory(n, &rng);
  GA_CHECK_MSG(base.ok(), base.status().ToString());
  std::printf("model %s: n=%d m=%lld avg_deg=%.1f\n", model_name.c_str(),
              base->num_nodes(), static_cast<long long>(base->num_edges()),
              base->AverageDegree());
  const bool sparse = base->AverageDegree() < 20.0;

  Journal journal = MustOpenJournal(args);
  Table t({"algorithm", "noise_type", "noise", "accuracy", "s3", "mnc"});
  for (const std::string& name : SelectedAlgorithms(args)) {
    auto aligner = MakeBenchAligner(name, sparse);
    for (NoiseType type : {NoiseType::kOneWay, NoiseType::kMultiModal,
                           NoiseType::kTwoWay}) {
      for (double level : LowNoiseLevels(args.full)) {
        NoiseOptions noise;
        noise.type = type;
        noise.level = level;
        JournaledRow(
            &t, &journal,
            CellKey({name, NoiseTypeName(type), Table::Num(level, 2)}), [&] {
              RunOutcome out = RunAveraged(
                  aligner.get(), *base, noise,
                  AssignmentMethod::kJonkerVolgenant, reps,
                  args.seed + static_cast<uint64_t>(level * 1000), args);
              return std::vector<std::string>{
                  name, NoiseTypeName(type), Table::Num(level, 2),
                  FormatAccuracy(out), FormatOutcome(out, out.quality.s3),
                  FormatOutcome(out, out.quality.mnc)};
            });
      }
    }
  }
  Emit(t, args);
  return 0;
}

}  // namespace bench
}  // namespace graphalign

#endif  // GRAPHALIGN_BENCH_FIGURE_SYNTHETIC_H_
