file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_pl.dir/bench_fig06_pl.cc.o"
  "CMakeFiles/bench_fig06_pl.dir/bench_fig06_pl.cc.o.d"
  "bench_fig06_pl"
  "bench_fig06_pl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_pl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
