file(REMOVE_RECURSE
  "CMakeFiles/ga_benchfw.dir/experiment.cc.o"
  "CMakeFiles/ga_benchfw.dir/experiment.cc.o.d"
  "libga_benchfw.a"
  "libga_benchfw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_benchfw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
