file(REMOVE_RECURSE
  "libga_assignment.a"
)
