#include "server/protocol.h"

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>

namespace graphalign {

namespace {

// Decoding bounds: a request that declares more than these is rejected
// before any proportional allocation happens. The frame cap already bounds
// the true byte count; these bound the *declared* counts so a 16-byte
// garbage frame cannot request a 4-billion-entry reserve.
constexpr uint32_t kMaxWireNodes = 8u << 20;    // 8M nodes.
constexpr uint64_t kMaxWireEdges = 32u << 20;   // 32M edges (256 MB decoded).
constexpr size_t kMaxMessageLen = 4096;

Status BadPayload(const std::string& what) {
  return Status::InvalidArgument("protocol: " + what);
}

bool ReadWireGraph(ByteReader* r, WireGraph* g) {
  uint32_t n = 0;
  uint64_t m = 0;
  if (!r->U32(&n) || !r->U64(&m)) return false;
  if (n > kMaxWireNodes || m > kMaxWireEdges) return false;
  g->num_nodes = static_cast<int>(n);
  g->edges.clear();
  g->edges.reserve(static_cast<size_t>(m));
  for (uint64_t i = 0; i < m; ++i) {
    uint32_t u = 0, v = 0;
    if (!r->U32(&u) || !r->U32(&v)) return false;
    // Endpoint range is validated here so Graph::FromEdges sees sane ints;
    // semantic validation (self-loops, duplicates) stays with the graph.
    if (u >= n || v >= n) return false;
    g->edges.push_back({static_cast<int>(u), static_cast<int>(v)});
  }
  return true;
}

void WriteWireGraph(ByteWriter* w, const WireGraph& g) {
  w->U32(static_cast<uint32_t>(g.num_nodes));
  w->U64(g.edges.size());
  for (const Edge& e : g.edges) {
    w->U32(static_cast<uint32_t>(e.u));
    w->U32(static_cast<uint32_t>(e.v));
  }
}

bool ReadMapping(ByteReader* r, std::vector<int32_t>* mapping) {
  uint32_t n = 0;
  if (!r->U32(&n) || n > kMaxWireNodes) return false;
  mapping->clear();
  mapping->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    int32_t v = 0;
    if (!r->I32(&v)) return false;
    mapping->push_back(v);
  }
  return true;
}

void WriteMapping(ByteWriter* w, const std::vector<int32_t>& mapping) {
  w->U32(static_cast<uint32_t>(mapping.size()));
  for (int32_t v : mapping) w->I32(v);
}

// The align-request field block, shared by kAlign, kSubmitJob, and the
// durable job spec (EncodeAlignSpec): one encoding, three carriers.
void WriteAlignRequest(ByteWriter* w, const AlignRequest& a) {
  w->Str(a.algo);
  w->Str(a.assign);
  w->U64(a.deadline_ms);
  w->U64(a.mem_limit_mb);
  w->U8(a.no_cache ? 1 : 0);
  w->U8(a.by_hash ? 1 : 0);
  w->U64(a.g1_hash);
  w->U64(a.g2_hash);
  WriteWireGraph(w, a.g1);
  WriteWireGraph(w, a.g2);
}

bool ReadAlignRequest(ByteReader* r, AlignRequest* a) {
  uint8_t no_cache = 0;
  uint8_t by_hash = 0;
  if (!r->Str(&a->algo, kMaxNameLen) || !r->Str(&a->assign, kMaxNameLen) ||
      !r->U64(&a->deadline_ms) || !r->U64(&a->mem_limit_mb) ||
      !r->U8(&no_cache) || !r->U8(&by_hash) || !r->U64(&a->g1_hash) ||
      !r->U64(&a->g2_hash) || !ReadWireGraph(r, &a->g1) ||
      !ReadWireGraph(r, &a->g2)) {
    return false;
  }
  a->no_cache = no_cache != 0;
  a->by_hash = by_hash != 0;
  // A by-hash align must not also carry inline graphs: the two sources
  // could disagree and the cache key would be ambiguous.
  if (a->by_hash && (a->g1.num_nodes != 0 || !a->g1.edges.empty() ||
                     a->g2.num_nodes != 0 || !a->g2.edges.empty())) {
    return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Framing.

const char* FrameStatusName(FrameStatus status) {
  switch (status) {
    case FrameStatus::kComplete: return "COMPLETE";
    case FrameStatus::kIncomplete: return "INCOMPLETE";
    case FrameStatus::kBadMagic: return "BAD_MAGIC";
    case FrameStatus::kOversized: return "OVERSIZED";
    case FrameStatus::kEmpty: return "EMPTY";
  }
  return "UNKNOWN";
}

FrameStatus TryParseFrame(std::string_view buf, std::string* payload,
                          size_t* consumed) {
  if (buf.empty()) return FrameStatus::kIncomplete;
  // Validate the magic on whatever prefix is available, so garbage is
  // rejected after its first bytes instead of after kFrameHeaderBytes.
  const size_t magic_avail = std::min(buf.size(), sizeof(kFrameMagic));
  if (std::memcmp(buf.data(), kFrameMagic, magic_avail) != 0) {
    return FrameStatus::kBadMagic;
  }
  if (buf.size() < kFrameHeaderBytes) return FrameStatus::kIncomplete;
  uint32_t len = 0;
  std::memcpy(&len, buf.data() + sizeof(kFrameMagic), sizeof(len));
  if (len == 0) return FrameStatus::kEmpty;
  if (len > kMaxFramePayload) return FrameStatus::kOversized;
  if (buf.size() < kFrameHeaderBytes + len) return FrameStatus::kIncomplete;
  payload->assign(buf.data() + kFrameHeaderBytes, len);
  *consumed = kFrameHeaderBytes + len;
  return FrameStatus::kComplete;
}

std::string EncodeFrame(std::string_view payload) {
  GA_CHECK(!payload.empty() && payload.size() <= kMaxFramePayload);
  std::string frame(kFrameMagic, sizeof(kFrameMagic));
  const uint32_t len = static_cast<uint32_t>(payload.size());
  frame.append(reinterpret_cast<const char*>(&len), sizeof(len));
  frame.append(payload);
  return frame;
}

Result<bool> ReadFrameFromFd(int fd, std::string* payload) {
  char header[kFrameHeaderBytes];
  size_t got = 0;
  while (got < sizeof(header)) {
    const ssize_t n = recv(fd, header + got, sizeof(header) - got, 0);
    if (n == 0) {
      if (got == 0) return false;  // Clean close between frames.
      return BadPayload("connection closed inside a frame header");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("socket read timed out");
      }
      return Status::Internal("recv() failed: " +
                              std::string(strerror(errno)));
    }
    got += static_cast<size_t>(n);
  }
  uint32_t len = 0;
  if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return BadPayload("bad frame magic");
  }
  std::memcpy(&len, header + sizeof(kFrameMagic), sizeof(len));
  if (len == 0) return BadPayload("zero-length frame");
  if (len > kMaxFramePayload) {
    return BadPayload("frame of " + std::to_string(len) +
                      " bytes exceeds the " +
                      std::to_string(kMaxFramePayload) + "-byte cap");
  }
  payload->resize(len);
  size_t off = 0;
  while (off < len) {
    const ssize_t n = recv(fd, payload->data() + off, len - off, 0);
    if (n == 0) return BadPayload("connection closed inside a frame body");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("socket read timed out");
      }
      return Status::Internal("recv() failed: " +
                              std::string(strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

Status WriteFrameToFd(int fd, std::string_view payload) {
  const std::string frame = EncodeFrame(payload);
  size_t off = 0;
  while (off < frame.size()) {
    // MSG_NOSIGNAL: a peer that hung up must yield EPIPE, not kill the
    // daemon with SIGPIPE.
    const ssize_t n =
        send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("send() failed: " +
                              std::string(strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Requests. (ByteWriter/ByteReader live in common/wire.cc.)

WireGraph ToWire(const Graph& g) {
  WireGraph wire;
  wire.num_nodes = g.num_nodes();
  wire.edges = g.Edges();
  return wire;
}

std::string EncodeRequest(const Request& request) {
  ByteWriter w;
  w.U32(kProtocolVersion);
  w.U8(static_cast<uint8_t>(request.type));
  w.Str(request.client);
  w.U8(static_cast<uint8_t>(request.transport));
  switch (request.type) {
    case RequestType::kPing:
    case RequestType::kCacheInfo:
    case RequestType::kShutdown:
    case RequestType::kServerStats:
      break;
    case RequestType::kAlign:
      WriteAlignRequest(&w, request.align);
      break;
    case RequestType::kSubmitJob:
      WriteAlignRequest(&w, request.submit_job.align);
      w.Str(request.submit_job.idem_key);
      break;
    case RequestType::kJobStatus:
    case RequestType::kJobResult:
    case RequestType::kCancelJob:
      w.U64(request.job_id.job_id);
      break;
    case RequestType::kEvaluate: {
      const EvaluateRequest& e = request.evaluate;
      WriteWireGraph(&w, e.g1);
      WriteWireGraph(&w, e.g2);
      WriteMapping(&w, e.mapping);
      WriteMapping(&w, e.truth);
      break;
    }
    case RequestType::kStats:
      WriteWireGraph(&w, request.stats.g);
      break;
    case RequestType::kPutGraph:
      WriteWireGraph(&w, request.put_graph.g);
      break;
    case RequestType::kHasGraph:
      w.U64(request.has_graph.hash);
      break;
    case RequestType::kAlignBatch: {
      const AlignBatchRequest& b = request.align_batch;
      w.U32(static_cast<uint32_t>(b.graphs.size()));
      for (const BatchGraphRef& g : b.graphs) {
        w.U8(g.by_hash ? 1 : 0);
        w.U64(g.hash);
        WriteWireGraph(&w, g.inline_graph);
      }
      w.U32(static_cast<uint32_t>(b.jobs.size()));
      for (const BatchJob& j : b.jobs) {
        w.U32(j.g1);
        w.U32(j.g2);
        w.Str(j.algo);
        w.Str(j.assign);
        w.U64(j.deadline_ms);
        w.U64(j.mem_limit_mb);
        w.U8(j.no_cache ? 1 : 0);
      }
      break;
    }
  }
  return w.Take();
}

Result<Request> DecodeRequest(std::string_view payload) {
  ByteReader r(payload);
  uint32_t version = 0;
  uint8_t type = 0;
  if (!r.U32(&version) || !r.U8(&type)) {
    return BadPayload("request too short for version and type");
  }
  if (version != kProtocolVersion) {
    return BadPayload("unsupported protocol version " +
                      std::to_string(version));
  }
  Request request;
  if (!r.Str(&request.client, kMaxNameLen)) {
    return BadPayload("malformed client identity");
  }
  uint8_t transport = 0;
  if (!r.U8(&transport) ||
      transport > static_cast<uint8_t>(Transport::kHttp)) {
    return BadPayload("malformed transport tag");
  }
  request.transport = static_cast<Transport>(transport);
  switch (static_cast<RequestType>(type)) {
    case RequestType::kPing:
    case RequestType::kCacheInfo:
    case RequestType::kShutdown:
    case RequestType::kServerStats:
      request.type = static_cast<RequestType>(type);
      break;
    case RequestType::kAlign:
      request.type = RequestType::kAlign;
      if (!ReadAlignRequest(&r, &request.align)) {
        return BadPayload("malformed align request");
      }
      break;
    case RequestType::kSubmitJob:
      request.type = RequestType::kSubmitJob;
      if (!ReadAlignRequest(&r, &request.submit_job.align) ||
          !r.Str(&request.submit_job.idem_key, kMaxNameLen)) {
        return BadPayload("malformed submit-job request");
      }
      break;
    case RequestType::kJobStatus:
    case RequestType::kJobResult:
    case RequestType::kCancelJob:
      request.type = static_cast<RequestType>(type);
      if (!r.U64(&request.job_id.job_id)) {
        return BadPayload("malformed job id request");
      }
      break;
    case RequestType::kEvaluate: {
      request.type = RequestType::kEvaluate;
      EvaluateRequest& e = request.evaluate;
      if (!ReadWireGraph(&r, &e.g1) || !ReadWireGraph(&r, &e.g2) ||
          !ReadMapping(&r, &e.mapping) || !ReadMapping(&r, &e.truth)) {
        return BadPayload("malformed evaluate request");
      }
      break;
    }
    case RequestType::kStats:
      request.type = RequestType::kStats;
      if (!ReadWireGraph(&r, &request.stats.g)) {
        return BadPayload("malformed stats request");
      }
      break;
    case RequestType::kPutGraph:
      request.type = RequestType::kPutGraph;
      if (!ReadWireGraph(&r, &request.put_graph.g)) {
        return BadPayload("malformed put-graph request");
      }
      break;
    case RequestType::kHasGraph:
      request.type = RequestType::kHasGraph;
      if (!r.U64(&request.has_graph.hash)) {
        return BadPayload("malformed has-graph request");
      }
      break;
    case RequestType::kAlignBatch: {
      request.type = RequestType::kAlignBatch;
      AlignBatchRequest& b = request.align_batch;
      uint32_t num_graphs = 0;
      if (!r.U32(&num_graphs) || num_graphs == 0 ||
          num_graphs > kMaxBatchGraphs) {
        return BadPayload("malformed batch graph table");
      }
      b.graphs.resize(num_graphs);
      for (BatchGraphRef& g : b.graphs) {
        uint8_t by_hash = 0;
        if (!r.U8(&by_hash) || by_hash > 1 || !r.U64(&g.hash) ||
            !ReadWireGraph(&r, &g.inline_graph)) {
          return BadPayload("malformed batch graph entry");
        }
        g.by_hash = by_hash != 0;
        // Mirror the kAlign rule: a hash reference must not also carry an
        // inline graph (the two could disagree).
        if (g.by_hash && (g.inline_graph.num_nodes != 0 ||
                          !g.inline_graph.edges.empty())) {
          return BadPayload("batch graph entry has both hash and inline");
        }
      }
      uint32_t num_jobs = 0;
      if (!r.U32(&num_jobs) || num_jobs == 0 || num_jobs > kMaxBatchJobs) {
        return BadPayload("malformed batch job list");
      }
      b.jobs.resize(num_jobs);
      for (BatchJob& j : b.jobs) {
        uint8_t no_cache = 0;
        if (!r.U32(&j.g1) || !r.U32(&j.g2) || !r.Str(&j.algo, kMaxNameLen) ||
            !r.Str(&j.assign, kMaxNameLen) || !r.U64(&j.deadline_ms) ||
            !r.U64(&j.mem_limit_mb) || !r.U8(&no_cache)) {
          return BadPayload("malformed batch job");
        }
        j.no_cache = no_cache != 0;
        if (j.g1 >= num_graphs || j.g2 >= num_graphs) {
          return BadPayload("batch job references a graph out of range");
        }
      }
      break;
    }
    default:
      return BadPayload("unknown request type " + std::to_string(type));
  }
  if (!r.AtEnd()) return BadPayload("trailing bytes after request");
  return request;
}

// ---------------------------------------------------------------------------
// Responses.

const char* ResponseCodeName(ResponseCode code) {
  switch (code) {
    case ResponseCode::kOk: return "OK";
    case ResponseCode::kError: return "ERROR";
    case ResponseCode::kBadRequest: return "BAD_REQUEST";
    case ResponseCode::kDnf: return "DNF";
    case ResponseCode::kCrash: return "CRASH";
    case ResponseCode::kOom: return "OOM";
    case ResponseCode::kBusy: return "BUSY";
    case ResponseCode::kNumerical: return "NUMERICAL";
    case ResponseCode::kShuttingDown: return "SHUTTING_DOWN";
    case ResponseCode::kShed: return "SHED";
    case ResponseCode::kQuarantined: return "QUARANTINED";
    case ResponseCode::kNoGraph: return "NO_GRAPH";
    case ResponseCode::kPartial: return "PARTIAL";
    case ResponseCode::kAccepted: return "ACCEPTED";
    case ResponseCode::kNoJob: return "NO_JOB";
    case ResponseCode::kConflict: return "CONFLICT";
  }
  return "UNKNOWN";
}

std::string EncodeResponse(const Response& response) {
  ByteWriter w;
  w.U32(kProtocolVersion);
  w.U8(static_cast<uint8_t>(response.code));
  w.U8(response.cache_hit ? 1 : 0);
  w.U64(response.elapsed_us);
  w.U64(response.retry_after_ms);
  w.Str(response.message);
  w.Str(response.body);
  return w.Take();
}

Result<Response> DecodeResponse(std::string_view payload) {
  ByteReader r(payload);
  uint32_t version = 0;
  uint8_t code = 0, cache_hit = 0;
  Response response;
  if (!r.U32(&version) || !r.U8(&code) || !r.U8(&cache_hit) ||
      !r.U64(&response.elapsed_us) || !r.U64(&response.retry_after_ms) ||
      !r.Str(&response.message, kMaxMessageLen) ||
      !r.Str(&response.body, kMaxFramePayload) ||
      !r.AtEnd()) {
    return BadPayload("malformed response");
  }
  if (version != kProtocolVersion) {
    return BadPayload("unsupported protocol version " +
                      std::to_string(version));
  }
  switch (static_cast<ResponseCode>(code)) {
    case ResponseCode::kOk:
    case ResponseCode::kError:
    case ResponseCode::kBadRequest:
    case ResponseCode::kDnf:
    case ResponseCode::kCrash:
    case ResponseCode::kOom:
    case ResponseCode::kBusy:
    case ResponseCode::kNumerical:
    case ResponseCode::kShuttingDown:
    case ResponseCode::kShed:
    case ResponseCode::kQuarantined:
    case ResponseCode::kNoGraph:
    case ResponseCode::kPartial:
    case ResponseCode::kAccepted:
    case ResponseCode::kNoJob:
    case ResponseCode::kConflict:
      response.code = static_cast<ResponseCode>(code);
      break;
    default:
      return BadPayload("unknown response code " + std::to_string(code));
  }
  response.cache_hit = cache_hit != 0;
  return response;
}

std::string EncodeAlignResult(const AlignResult& result) {
  ByteWriter w;
  WriteMapping(&w, result.mapping);
  w.F64(result.mnc);
  w.F64(result.ec);
  w.F64(result.s3);
  w.F64(result.align_seconds);
  w.U8(result.degraded ? 1 : 0);
  w.Str(result.degrade_reason);
  return w.Take();
}

Result<AlignResult> DecodeAlignResult(std::string_view body) {
  ByteReader r(body);
  AlignResult result;
  uint8_t degraded = 0;
  if (!ReadMapping(&r, &result.mapping) || !r.F64(&result.mnc) ||
      !r.F64(&result.ec) || !r.F64(&result.s3) ||
      !r.F64(&result.align_seconds) || !r.U8(&degraded) ||
      !r.Str(&result.degrade_reason, kMaxMessageLen) || !r.AtEnd()) {
    return BadPayload("malformed align result");
  }
  result.degraded = degraded != 0;
  return result;
}

std::string EncodeAlignBatchResult(const AlignBatchResult& result) {
  ByteWriter w;
  w.U32(result.graph_loads);
  w.U32(static_cast<uint32_t>(result.jobs.size()));
  for (const BatchJobOutcome& job : result.jobs) {
    w.U8(static_cast<uint8_t>(job.code));
    w.U8(job.cache_hit ? 1 : 0);
    w.Str(job.message);
    w.Str(job.body);
  }
  return w.Take();
}

Result<AlignBatchResult> DecodeAlignBatchResult(std::string_view body) {
  ByteReader r(body);
  AlignBatchResult result;
  uint32_t num_jobs = 0;
  if (!r.U32(&result.graph_loads) || !r.U32(&num_jobs) ||
      num_jobs > kMaxBatchJobs) {
    return BadPayload("malformed align batch result");
  }
  result.jobs.resize(num_jobs);
  for (BatchJobOutcome& job : result.jobs) {
    uint8_t code = 0, cache_hit = 0;
    if (!r.U8(&code) || !r.U8(&cache_hit) ||
        !r.Str(&job.message, kMaxMessageLen) ||
        !r.Str(&job.body, kMaxFramePayload) ||
        strcmp(ResponseCodeName(static_cast<ResponseCode>(code)),
               "UNKNOWN") == 0) {
      return BadPayload("malformed align batch job outcome");
    }
    job.code = static_cast<ResponseCode>(code);
    job.cache_hit = cache_hit != 0;
  }
  if (!r.AtEnd()) return BadPayload("malformed align batch result");
  return result;
}

std::string EncodeEvaluateResult(const EvaluateResult& result) {
  ByteWriter w;
  w.F64(result.mnc);
  w.F64(result.ec);
  w.F64(result.ics);
  w.F64(result.s3);
  w.U8(result.has_accuracy ? 1 : 0);
  w.F64(result.accuracy);
  return w.Take();
}

Result<EvaluateResult> DecodeEvaluateResult(std::string_view body) {
  ByteReader r(body);
  EvaluateResult result;
  uint8_t has_accuracy = 0;
  if (!r.F64(&result.mnc) || !r.F64(&result.ec) || !r.F64(&result.ics) ||
      !r.F64(&result.s3) || !r.U8(&has_accuracy) ||
      !r.F64(&result.accuracy) || !r.AtEnd()) {
    return BadPayload("malformed evaluate result");
  }
  result.has_accuracy = has_accuracy != 0;
  return result;
}

std::string EncodeStatsResult(const StatsResult& result) {
  ByteWriter w;
  w.I32(result.num_nodes);
  w.U64(static_cast<uint64_t>(result.num_edges));
  w.F64(result.avg_degree);
  w.I32(result.max_degree);
  w.I32(result.components);
  w.U64(result.content_hash);
  return w.Take();
}

Result<StatsResult> DecodeStatsResult(std::string_view body) {
  ByteReader r(body);
  StatsResult result;
  uint64_t edges = 0;
  if (!r.I32(&result.num_nodes) || !r.U64(&edges) ||
      !r.F64(&result.avg_degree) || !r.I32(&result.max_degree) ||
      !r.I32(&result.components) || !r.U64(&result.content_hash) ||
      !r.AtEnd()) {
    return BadPayload("malformed stats result");
  }
  result.num_edges = static_cast<int64_t>(edges);
  return result;
}

std::string EncodeJobInfo(const JobInfo& info) {
  ByteWriter w;
  w.U64(info.job_id);
  w.U32(info.state);
  w.Str(info.state_name);
  w.U32(info.attempts);
  w.U32(info.max_attempts);
  w.U64(info.submitted_unix_ms);
  w.U64(info.updated_unix_ms);
  w.U32(info.terminal_code);
  w.Str(info.message);
  w.U8(info.existing ? 1 : 0);
  return w.Take();
}

Result<JobInfo> DecodeJobInfo(std::string_view body) {
  ByteReader r(body);
  JobInfo info;
  uint8_t existing = 0;
  if (!r.U64(&info.job_id) || !r.U32(&info.state) ||
      !r.Str(&info.state_name, kMaxNameLen) || !r.U32(&info.attempts) ||
      !r.U32(&info.max_attempts) || !r.U64(&info.submitted_unix_ms) ||
      !r.U64(&info.updated_unix_ms) || !r.U32(&info.terminal_code) ||
      !r.Str(&info.message, kMaxMessageLen) || !r.U8(&existing) ||
      !r.AtEnd()) {
    return BadPayload("malformed job info");
  }
  info.existing = existing != 0;
  return info;
}

std::string EncodeAlignSpec(const AlignRequest& align) {
  ByteWriter w;
  WriteAlignRequest(&w, align);
  return w.Take();
}

Result<AlignRequest> DecodeAlignSpec(std::string_view spec) {
  ByteReader r(spec);
  AlignRequest align;
  if (!ReadAlignRequest(&r, &align) || !r.AtEnd()) {
    return BadPayload("malformed align spec");
  }
  return align;
}

std::string EncodeServerStatsResult(const ServerStatsResult& result) {
  ByteWriter w;
  w.U64(result.workers);
  w.F64(result.uptime_seconds);
  w.U64(result.accepted);
  w.U64(result.served);
  w.U64(result.busy_rejected);
  w.U64(result.quota_rejected);
  w.U64(result.shed);
  w.U64(result.quarantined);
  w.U64(result.quarantined_signatures);
  w.U64(result.watchdog_kills);
  w.U64(result.queue_depth);
  w.U64(result.in_flight);
  w.U64(result.cache_replayed);
  w.U64(result.cache_crc_skipped);
  w.U64(result.cache_truncated_bytes);
  w.U64(result.cache_append_errors);
  w.U64(result.cache_open_errors);
  w.U64(result.store_puts);
  w.U64(result.store_gets);
  w.U64(result.store_corrupt);
  w.U64(result.store_missing);
  w.U64(result.store_unavailable);
  w.U64(result.served_http);
  w.U64(result.quota_rejected_http);
  w.U64(result.shed_http);
  w.U64(result.batches);
  w.U64(result.batch_jobs);
  w.U64(result.batch_cache_hits);
  w.U64(result.batch_graph_loads);
  w.U64(result.jobs_submitted);
  w.U64(result.jobs_deduped);
  w.U64(result.jobs_done);
  w.U64(result.jobs_failed);
  w.U64(result.jobs_cancelled);
  w.U64(result.jobs_executions);
  w.U64(result.jobs_recovered);
  w.U64(result.jobs_pending);
  w.U32(static_cast<uint32_t>(result.worker_restarts.size()));
  for (uint64_t r : result.worker_restarts) w.U64(r);
  return w.Take();
}

Result<ServerStatsResult> DecodeServerStatsResult(std::string_view body) {
  ByteReader r(body);
  ServerStatsResult result;
  uint32_t workers = 0;
  if (!r.U64(&result.workers) || !r.F64(&result.uptime_seconds) ||
      !r.U64(&result.accepted) || !r.U64(&result.served) ||
      !r.U64(&result.busy_rejected) || !r.U64(&result.quota_rejected) ||
      !r.U64(&result.shed) || !r.U64(&result.quarantined) ||
      !r.U64(&result.quarantined_signatures) ||
      !r.U64(&result.watchdog_kills) || !r.U64(&result.queue_depth) ||
      !r.U64(&result.in_flight) || !r.U64(&result.cache_replayed) ||
      !r.U64(&result.cache_crc_skipped) ||
      !r.U64(&result.cache_truncated_bytes) ||
      !r.U64(&result.cache_append_errors) ||
      !r.U64(&result.cache_open_errors) || !r.U64(&result.store_puts) ||
      !r.U64(&result.store_gets) || !r.U64(&result.store_corrupt) ||
      !r.U64(&result.store_missing) || !r.U64(&result.store_unavailable) ||
      !r.U64(&result.served_http) || !r.U64(&result.quota_rejected_http) ||
      !r.U64(&result.shed_http) || !r.U64(&result.batches) ||
      !r.U64(&result.batch_jobs) || !r.U64(&result.batch_cache_hits) ||
      !r.U64(&result.batch_graph_loads) || !r.U64(&result.jobs_submitted) ||
      !r.U64(&result.jobs_deduped) || !r.U64(&result.jobs_done) ||
      !r.U64(&result.jobs_failed) || !r.U64(&result.jobs_cancelled) ||
      !r.U64(&result.jobs_executions) || !r.U64(&result.jobs_recovered) ||
      !r.U64(&result.jobs_pending) || !r.U32(&workers)) {
    return BadPayload("malformed server stats result");
  }
  // Worker count is operator-bounded (<= 1024 threads); the same bound
  // protects the decode against a hostile length.
  if (workers > 1024) return BadPayload("malformed server stats result");
  result.worker_restarts.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    uint64_t restarts = 0;
    if (!r.U64(&restarts)) return BadPayload("malformed server stats result");
    result.worker_restarts.push_back(restarts);
  }
  if (!r.AtEnd()) return BadPayload("malformed server stats result");
  return result;
}

std::string EncodeCacheInfoResult(const CacheInfoResult& result) {
  ByteWriter w;
  w.U64(result.hits);
  w.U64(result.misses);
  w.U64(result.evictions);
  w.U64(result.entries);
  w.U64(result.bytes);
  w.U64(result.capacity_bytes);
  return w.Take();
}

Result<CacheInfoResult> DecodeCacheInfoResult(std::string_view body) {
  ByteReader r(body);
  CacheInfoResult result;
  if (!r.U64(&result.hits) || !r.U64(&result.misses) ||
      !r.U64(&result.evictions) || !r.U64(&result.entries) ||
      !r.U64(&result.bytes) || !r.U64(&result.capacity_bytes) ||
      !r.AtEnd()) {
    return BadPayload("malformed cache info result");
  }
  return result;
}

std::string EncodePutGraphResult(const PutGraphResult& result) {
  ByteWriter w;
  w.U64(result.content_hash);
  w.U8(result.already_present ? 1 : 0);
  return w.Take();
}

Result<PutGraphResult> DecodePutGraphResult(std::string_view body) {
  ByteReader r(body);
  PutGraphResult result;
  uint8_t already = 0;
  if (!r.U64(&result.content_hash) || !r.U8(&already) || !r.AtEnd()) {
    return BadPayload("malformed put-graph result");
  }
  result.already_present = already != 0;
  return result;
}

std::string EncodeHasGraphResult(const HasGraphResult& result) {
  ByteWriter w;
  w.U8(result.present ? 1 : 0);
  return w.Take();
}

Result<HasGraphResult> DecodeHasGraphResult(std::string_view body) {
  ByteReader r(body);
  HasGraphResult result;
  uint8_t present = 0;
  if (!r.U8(&present) || !r.AtEnd()) {
    return BadPayload("malformed has-graph result");
  }
  result.present = present != 0;
  return result;
}

}  // namespace graphalign
