#include "common/random.h"

#include <cmath>
#include <numeric>

#include "common/status.h"

namespace graphalign {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// SplitMix64: used only to expand the seed into xoshiro's 256-bit state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  GA_CHECK(n > 0);
  const uint64_t threshold = -n % n;  // = (2^64 - n) mod n
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  GA_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Normal() {
  for (;;) {
    double u = Uniform(-1.0, 1.0);
    double v = Uniform(-1.0, 1.0);
    double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::PowerLaw(double alpha, double xmin) {
  GA_CHECK(alpha > 1.0);
  GA_CHECK(xmin > 0.0);
  // Inverse transform for the Pareto density ~ x^-alpha, x >= xmin.
  double u = 1.0 - Uniform();  // in (0, 1]
  return xmin * std::pow(u, -1.0 / (alpha - 1.0));
}

Rng Rng::Fork() { return Rng(Next()); }

std::vector<int> RandomPermutation(int n, Rng* rng) {
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng->Shuffle(&perm);
  return perm;
}

}  // namespace graphalign
