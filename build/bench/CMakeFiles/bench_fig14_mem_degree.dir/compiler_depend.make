# Empty compiler generated dependencies file for bench_fig14_mem_degree.
# This may be replaced when dependencies are built.
