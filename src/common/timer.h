// Wall-clock timing utilities for the scalability experiments (Figs 11-12).
#ifndef GRAPHALIGN_COMMON_TIMER_H_
#define GRAPHALIGN_COMMON_TIMER_H_

#include <chrono>

namespace graphalign {

// Monotonic stopwatch. Started on construction; Restart() resets the origin.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_COMMON_TIMER_H_
