// Figure 6: Accuracy, S3, and MNC on powerlaw-cluster (Holme-Kim) graphs
// (m = 5, triangle probability 0.5), three noise types, noise up to 5%
// (paper §6.3).
#include "figure_synthetic.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  return graphalign::bench::RunSyntheticFigure(
      "Figure 6", "Powerlaw-cluster",
      [](int n, graphalign::Rng* rng) {
        return graphalign::PowerlawCluster(n, 5, 0.5, rng);
      },
      argc, argv);
}
