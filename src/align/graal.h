// GRAAL (Kuchaiev et al. 2010), paper §3.2: graphlet-degree-vector node
// signatures combined with a degree term into the cost of Eq. 2,
//   C(u,v) = 2 - ((1-alpha) (d_u + d_v)/(maxdeg_1 + maxdeg_2) + alpha S(u,v)),
// followed by seed-and-extend alignment: repeatedly match the cheapest
// unmatched pair and greedily align the BFS spheres around the two seeds,
// finishing leftovers with SortGreedy.
//
// Signatures use the 15 orbits of 2-4-node graphlets (the original uses 73
// orbits of 2-5-node graphlets; see the substitution note in DESIGN.md) with
// the published log-scaled distance and orbit-dependency weights.
#ifndef GRAPHALIGN_ALIGN_GRAAL_H_
#define GRAPHALIGN_ALIGN_GRAAL_H_

#include <cstdint>
#include <string>

#include "align/aligner.h"

namespace graphalign {

struct GraalOptions {
  double alpha = 0.8;  // Signature weight in Eq. 2 (Table 1).
  // Enumeration budget mirroring the paper's GRAAL timeouts on dense graphs.
  int64_t max_subgraphs = 200'000'000;
  // Use the full 73-orbit graphlet degree vector (2-5-node graphlets) as
  // GRAAL was published with. Off by default: 5-node enumeration multiplies
  // preprocessing cost (the paper excluded GRAAL from scalability runs for
  // exactly this reason) and the 15-orbit signature reproduces GRAAL's
  // mid-field benchmark position already.
  bool use_five_node_orbits = false;
};

class GraalAligner : public Aligner {
 public:
  explicit GraalAligner(const GraalOptions& options = {})
      : options_(options) {}

  std::string name() const override { return "GRAAL"; }
  AssignmentMethod default_assignment() const override {
    return AssignmentMethod::kSortGreedy;  // As proposed (Table 1).
  }

 protected:
  // Similarity = 2 - C(u,v), in [0, 2].
  Result<DenseMatrix> ComputeSimilarityImpl(const Graph& g1, const Graph& g2,
                                            const Deadline& deadline) override;

  // Native seed-and-extend extraction.
  Result<Alignment> AlignNativeImpl(const Graph& g1, const Graph& g2,
                                    const Deadline& deadline) override;

 private:
  GraalOptions options_;
};

// Graphlet-signature similarity S(u,v) in [0,1] for all node pairs, built
// from per-orbit log-scaled distances with orbit-dependency weights
// (Milenkovic & Przulj's graphlet degree signature similarity; orbits 0-14,
// or the full 73-orbit GDV when `full_gdv`). Exposed for tests and the
// GRAAL ablation bench.
Result<DenseMatrix> GraphletSignatureSimilarity(const Graph& g1,
                                                const Graph& g2,
                                                int64_t max_subgraphs,
                                                bool full_gdv = false,
                                                const Deadline& deadline =
                                                    Deadline());

}  // namespace graphalign

#endif  // GRAPHALIGN_ALIGN_GRAAL_H_
