// Deadline propagation tests: every aligner and iterative solver must abort
// promptly (kDeadlineExceeded) once its Deadline expires, fast-fail on an
// already-expired deadline, and behave identically when no deadline is given.
#include <chrono>
#include <cstdint>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "align/aligner.h"
#include "align/cone.h"
#include "align/graal.h"
#include "align/grasp.h"
#include "align/gwl.h"
#include "align/isorank.h"
#include "align/lrea.h"
#include "align/nsd.h"
#include "align/regal.h"
#include "align/sgwl.h"
#include "assignment/assignment.h"
#include "assignment/sparse_lap.h"
#include "bench_framework/experiment.h"
#include "common/deadline.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/graphlets.h"
#include "linalg/eigen_sym.h"
#include "linalg/sinkhorn.h"
#include "linalg/svd.h"

namespace graphalign {
namespace {

Graph MakeEr(int n, double p, uint64_t seed) {
  Rng rng(seed);
  auto g = ErdosRenyi(n, p, &rng);
  GA_CHECK(g.ok());
  return *std::move(g);
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Runs `aligner` under a 50 ms deadline on a configuration sized to run far
// beyond a second unconstrained, and asserts a prompt kDeadlineExceeded.
// The 2 s elapsed bound is generous for loaded CI machines while still
// proving the abort is cooperative, not a timeout-after-the-fact.
void ExpectPromptDeadline(Aligner* aligner, const Graph& g1, const Graph& g2) {
  const auto start = std::chrono::steady_clock::now();
  auto sim = aligner->ComputeSimilarity(g1, g2, Deadline::AfterSeconds(0.05));
  const double elapsed = SecondsSince(start);
  ASSERT_FALSE(sim.ok()) << aligner->name() << " finished under 50ms";
  EXPECT_EQ(sim.status().code(), StatusCode::kDeadlineExceeded)
      << aligner->name() << ": " << sim.status().ToString();
  EXPECT_LT(elapsed, 2.0) << aligner->name() << " overshot the deadline";
}

// --- Deadline primitive ---------------------------------------------------

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_GE(d.RemainingSeconds(), 1e8);
  EXPECT_TRUE(Deadline::Infinite().is_infinite());
}

TEST(DeadlineTest, ZeroOrNegativeBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::AfterSeconds(0.0).Expired());
  EXPECT_TRUE(Deadline::AfterSeconds(-3.5).Expired());
  EXPECT_LE(Deadline::AfterSeconds(0.0).RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, HugeBudgetIsInfinite) {
  EXPECT_TRUE(Deadline::AfterSeconds(1e18).is_infinite());
  EXPECT_FALSE(Deadline::AfterSeconds(1e18).Expired());
}

TEST(DeadlineTest, PositiveBudgetExpiresAfterSleeping) {
  Deadline d = Deadline::AfterSeconds(0.01);
  EXPECT_FALSE(d.is_infinite());
  while (!d.Expired()) {
    // Spin; the monotonic clock advances past the 10 ms expiry.
  }
  EXPECT_TRUE(d.Expired());
  EXPECT_LE(d.RemainingSeconds(), 0.0);
}

TEST(DeadlineCheckerTest, FirstCallPollsTheClock) {
  DeadlineChecker checker(Deadline::AfterSeconds(0.0), /*stride=*/1000);
  // Even with a huge stride, the first call must notice expiry.
  EXPECT_TRUE(checker.Expired());
}

TEST(DeadlineCheckerTest, StaysExpiredOnceExpired) {
  DeadlineChecker checker(Deadline::AfterSeconds(0.0));
  ASSERT_TRUE(checker.Expired());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(checker.Expired());
}

TEST(DeadlineCheckerTest, InfiniteDeadlineNeverExpires) {
  DeadlineChecker checker((Deadline()));
  for (int i = 0; i < 1000; ++i) ASSERT_FALSE(checker.Expired());
}

// --- Zero-budget fast fail and backward compatibility ---------------------

TEST(DeadlineAlignerTest, AllAlignersFastFailOnExpiredDeadline) {
  const Graph g1 = MakeEr(60, 0.1, 1);
  const Graph g2 = MakeEr(60, 0.1, 2);
  for (const std::string& name : AllAlignerNames()) {
    auto aligner = MakeAligner(name);
    ASSERT_TRUE(aligner.ok()) << name;
    const auto start = std::chrono::steady_clock::now();
    auto sim =
        (*aligner)->ComputeSimilarity(g1, g2, Deadline::AfterSeconds(0.0));
    ASSERT_FALSE(sim.ok()) << name;
    EXPECT_EQ(sim.status().code(), StatusCode::kDeadlineExceeded) << name;
    EXPECT_LT(SecondsSince(start), 0.5) << name << " was not a fast fail";

    auto align =
        (*aligner)->AlignNative(g1, g2, Deadline::AfterSeconds(-1.0));
    ASSERT_FALSE(align.ok()) << name;
    EXPECT_EQ(align.status().code(), StatusCode::kDeadlineExceeded) << name;
  }
}

TEST(DeadlineAlignerTest, NoDeadlineKeepsWorking) {
  const Graph g1 = MakeEr(40, 0.15, 3);
  const Graph g2 = MakeEr(40, 0.15, 4);
  for (const std::string& name : AllAlignerNames()) {
    auto aligner = MakeAligner(name);
    ASSERT_TRUE(aligner.ok()) << name;
    auto sim = (*aligner)->ComputeSimilarity(g1, g2);
    ASSERT_TRUE(sim.ok()) << name << ": " << sim.status().ToString();
    auto align = (*aligner)->AlignNative(g1, g2);
    ASSERT_TRUE(align.ok()) << name << ": " << align.status().ToString();
  }
}

TEST(DeadlineAlignerTest, GenerousDeadlineCompletesNormally) {
  const Graph g1 = MakeEr(40, 0.15, 5);
  const Graph g2 = MakeEr(40, 0.15, 6);
  for (const std::string& name : AllAlignerNames()) {
    auto aligner = MakeAligner(name);
    ASSERT_TRUE(aligner.ok()) << name;
    // Under-budget runs must be indistinguishable from no-deadline runs.
    auto with = (*aligner)->ComputeSimilarity(g1, g2,
                                              Deadline::AfterSeconds(3600.0));
    auto without = (*aligner)->ComputeSimilarity(g1, g2);
    ASSERT_TRUE(with.ok()) << name;
    ASSERT_TRUE(without.ok()) << name;
    EXPECT_TRUE(*with == *without) << name << " result changed under budget";
  }
}

// --- Per-aligner prompt abort under a 50 ms deadline ----------------------
// Each configuration is cranked (iteration counts far beyond defaults, or
// combinatorially large enumeration) so the unconstrained run would take
// from many seconds to effectively forever.

TEST(DeadlinePromptTest, IsoRank) {
  const Graph g1 = MakeEr(300, 0.03, 10);
  const Graph g2 = MakeEr(300, 0.03, 11);
  IsoRankOptions opt;
  opt.max_iterations = 10'000'000;
  opt.tolerance = 0.0;  // Never converge early.
  IsoRankAligner aligner(opt);
  ExpectPromptDeadline(&aligner, g1, g2);
}

TEST(DeadlinePromptTest, Graal) {
  // 5-node graphlet enumeration on a dense-ish graph is combinatorial.
  const Graph g1 = MakeEr(300, 0.05, 12);
  const Graph g2 = MakeEr(300, 0.05, 13);
  GraalOptions opt;
  opt.use_five_node_orbits = true;
  GraalAligner aligner(opt);
  ExpectPromptDeadline(&aligner, g1, g2);
}

TEST(DeadlinePromptTest, Nsd) {
  const Graph g1 = MakeEr(250, 0.04, 14);
  const Graph g2 = MakeEr(250, 0.04, 15);
  NsdOptions opt;
  opt.iterations = 50'000'000;
  NsdAligner aligner(opt);
  ExpectPromptDeadline(&aligner, g1, g2);
}

TEST(DeadlinePromptTest, Lrea) {
  const Graph g1 = MakeEr(200, 0.05, 16);
  const Graph g2 = MakeEr(200, 0.05, 17);
  LreaOptions opt;
  opt.iterations = 10'000'000;
  LreaAligner aligner(opt);
  ExpectPromptDeadline(&aligner, g1, g2);
}

TEST(DeadlinePromptTest, Regal) {
  // Landmark factor cranked so the Nystrom pseudo-inverse is a huge Jacobi
  // SVD; the deadline must abort inside it.
  const Graph g1 = MakeEr(600, 0.015, 18);
  const Graph g2 = MakeEr(600, 0.015, 19);
  RegalOptions opt;
  opt.landmark_factor = 200;
  RegalAligner aligner(opt);
  ExpectPromptDeadline(&aligner, g1, g2);
}

TEST(DeadlinePromptTest, Gwl) {
  const Graph g1 = MakeEr(250, 0.04, 20);
  const Graph g2 = MakeEr(250, 0.04, 21);
  GwlOptions opt;
  opt.epochs = 1000;
  opt.gw.outer_iterations = 200'000;
  opt.gw.tolerance = 0.0;  // Never converge early.
  GwlAligner aligner(opt);
  ExpectPromptDeadline(&aligner, g1, g2);
}

TEST(DeadlinePromptTest, Sgwl) {
  const Graph g1 = MakeEr(300, 0.03, 22);
  const Graph g2 = MakeEr(300, 0.03, 23);
  SgwlOptions opt;
  opt.gw.outer_iterations = 200'000;
  opt.gw.tolerance = 0.0;
  SgwlAligner aligner(opt);
  ExpectPromptDeadline(&aligner, g1, g2);
}

TEST(DeadlinePromptTest, Cone) {
  const Graph g1 = MakeEr(300, 0.03, 24);
  const Graph g2 = MakeEr(300, 0.03, 25);
  ConeOptions opt;
  opt.outer_iterations = 500'000;
  ConeAligner aligner(opt);
  ExpectPromptDeadline(&aligner, g1, g2);
}

TEST(DeadlinePromptTest, Grasp) {
  // Above the n=1200 dense cutoff: two 600-step Lanczos eigensolves.
  const Graph g1 = MakeEr(1500, 0.004, 26);
  const Graph g2 = MakeEr(1500, 0.004, 27);
  GraspAligner aligner;
  ExpectPromptDeadline(&aligner, g1, g2);
}

// --- Iterative solvers and enumeration -----------------------------------

TEST(DeadlineSolverTest, HungarianAbortsMidSolve) {
  Rng rng(30);
  const int n = 700;
  DenseMatrix sim(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) sim(i, j) = rng.Normal();
  }
  const auto start = std::chrono::steady_clock::now();
  auto align = HungarianAssign(sim, Deadline::AfterSeconds(0.005));
  ASSERT_FALSE(align.ok());
  EXPECT_EQ(align.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(SecondsSince(start), 2.0);
}

TEST(DeadlineSolverTest, AssignmentSolversFastFailWhenExpired) {
  Rng rng(31);
  DenseMatrix sim(50, 50);
  for (int i = 0; i < 50; ++i) {
    for (int j = 0; j < 50; ++j) sim(i, j) = rng.Normal();
  }
  const Deadline expired = Deadline::AfterSeconds(0.0);
  EXPECT_EQ(HungarianAssign(sim, expired).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(JonkerVolgenantAssign(sim, expired).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(NearestNeighborAssign(sim, expired).status().code(),
            StatusCode::kDeadlineExceeded);
  std::vector<SparseCandidate> cands;
  for (int i = 0; i < 50; ++i) cands.push_back({i, i, 1.0});
  EXPECT_EQ(SparseLapAssign(50, 50, cands, expired).status().code(),
            StatusCode::kDeadlineExceeded);
  for (AssignmentMethod m :
       {AssignmentMethod::kNearestNeighbor, AssignmentMethod::kSortGreedy,
        AssignmentMethod::kHungarian, AssignmentMethod::kJonkerVolgenant}) {
    EXPECT_EQ(ExtractAlignment(sim, m, expired).status().code(),
              StatusCode::kDeadlineExceeded);
  }
}

TEST(DeadlineSolverTest, EigenSolversRespectDeadline) {
  Rng rng(32);
  const int n = 200;
  DenseMatrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      a(i, j) = rng.Normal();
      a(j, i) = a(i, j);
    }
  }
  EXPECT_EQ(SymmetricEigen(a, Deadline::AfterSeconds(0.0)).status().code(),
            StatusCode::kDeadlineExceeded);
  LinearOperator op = [&a](const std::vector<double>& x,
                           std::vector<double>* y) {
    *y = MultiplyVec(a, x);
  };
  EXPECT_EQ(LanczosEigen(op, n, 10, SpectrumEnd::kLargest, 0, 12345,
                         Deadline::AfterSeconds(0.0))
                .status()
                .code(),
            StatusCode::kDeadlineExceeded);
}

TEST(DeadlineSolverTest, SinkhornAndSvdRespectDeadline) {
  Rng rng(33);
  const int n = 80;
  DenseMatrix kernel(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) kernel(i, j) = 0.1 + rng.Uniform();
  }
  const std::vector<double> marg = UniformMarginal(n);
  EXPECT_EQ(SinkhornProject(kernel, marg, marg, 200, 1e-6,
                            Deadline::AfterSeconds(0.0))
                .status()
                .code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Svd(kernel, Deadline::AfterSeconds(0.0)).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ThinQr(kernel, 1e-12, Deadline::AfterSeconds(0.0))
                .status()
                .code(),
            StatusCode::kDeadlineExceeded);
}

TEST(DeadlineSolverTest, GraphletEnumerationRespectsDeadline) {
  const Graph g = MakeEr(200, 0.1, 34);
  const auto start = std::chrono::steady_clock::now();
  auto orbits = CountGraphletOrbits73(
      g, /*max_subgraphs=*/std::numeric_limits<int64_t>::max(),
      Deadline::AfterSeconds(0.02));
  ASSERT_FALSE(orbits.ok());
  EXPECT_EQ(orbits.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(SecondsSince(start), 2.0);
}

// --- Bench harness DNF semantics ------------------------------------------

TEST(DeadlineBenchTest, RunAlignerReportsDnfWithinBudgetWindow) {
  const Graph g1 = MakeEr(250, 0.04, 40);
  const Graph g2 = MakeEr(250, 0.04, 41);
  AlignmentProblem problem;
  problem.g1 = g1;
  problem.g2 = g2;
  problem.ground_truth.resize(g1.num_nodes());
  std::iota(problem.ground_truth.begin(), problem.ground_truth.end(), 0);
  IsoRankOptions opt;
  opt.max_iterations = 10'000'000;
  opt.tolerance = 0.0;
  IsoRankAligner aligner(opt);
  const double limit = 0.05;
  const auto start = std::chrono::steady_clock::now();
  RunOutcome out = RunAligner(&aligner, problem,
                              AssignmentMethod::kSortGreedy, limit);
  const double elapsed = SecondsSince(start);
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.error, "DNF (time limit)");
  EXPECT_LT(elapsed, 2.0) << "DNF took " << elapsed << "s for a " << limit
                          << "s budget";
}

TEST(DeadlineBenchTest, RunAlignerCompletesUnderGenerousBudget) {
  const Graph g1 = MakeEr(60, 0.1, 42);
  const Graph g2 = MakeEr(60, 0.1, 43);
  AlignmentProblem problem;
  problem.g1 = g1;
  problem.g2 = g2;
  problem.ground_truth.resize(g1.num_nodes());
  std::iota(problem.ground_truth.begin(), problem.ground_truth.end(), 0);
  IsoRankAligner aligner;
  RunOutcome out = RunAligner(&aligner, problem,
                              AssignmentMethod::kSortGreedy, 600.0);
  EXPECT_TRUE(out.completed) << out.error;
}

TEST(DeadlineBenchTest, ExhaustedBudgetFastFailsNextRepetition) {
  // RunAligner with a non-positive remaining budget (RunAveraged passes
  // time_limit - spent) must DNF instantly, not run the aligner.
  const Graph g1 = MakeEr(100, 0.08, 44);
  const Graph g2 = MakeEr(100, 0.08, 45);
  AlignmentProblem problem;
  problem.g1 = g1;
  problem.g2 = g2;
  IsoRankAligner aligner;
  const auto start = std::chrono::steady_clock::now();
  RunOutcome out = RunAligner(&aligner, problem,
                              AssignmentMethod::kSortGreedy, -0.5);
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.error, "DNF (time limit)");
  EXPECT_LT(SecondsSince(start), 0.5);
}

// --- Strict bench flag parsing (satellite: ParseBenchArgs validation) -----

using DeadlineBenchArgsDeathTest = ::testing::Test;

char** FakeArgv(std::vector<std::string>& storage) {
  static std::vector<char*> ptrs;
  ptrs.clear();
  for (auto& s : storage) ptrs.push_back(s.data());
  ptrs.push_back(nullptr);
  return ptrs.data();
}

TEST(DeadlineBenchArgsTest, ValidValuesParse) {
  std::vector<std::string> args = {"bench", "--reps", "3",
                                   "--time-limit", "2.5", "--seed", "99"};
  BenchArgs parsed = ParseBenchArgs(7, FakeArgv(args));
  EXPECT_EQ(parsed.repetitions, 3);
  EXPECT_DOUBLE_EQ(parsed.time_limit_seconds, 2.5);
  EXPECT_EQ(parsed.seed, 99u);
}

TEST(DeadlineBenchArgsDeathTest, MalformedRepsIsRejected) {
  std::vector<std::string> args = {"bench", "--reps", "5x"};
  EXPECT_EXIT(ParseBenchArgs(3, FakeArgv(args)),
              ::testing::ExitedWithCode(2), "invalid value '5x' for --reps");
}

TEST(DeadlineBenchArgsDeathTest, NonPositiveRepsIsRejected) {
  std::vector<std::string> args = {"bench", "--reps", "0"};
  EXPECT_EXIT(ParseBenchArgs(3, FakeArgv(args)),
              ::testing::ExitedWithCode(2), "positive integer");
}

TEST(DeadlineBenchArgsDeathTest, MalformedTimeLimitIsRejected) {
  std::vector<std::string> args = {"bench", "--time-limit", "abc"};
  EXPECT_EXIT(ParseBenchArgs(3, FakeArgv(args)),
              ::testing::ExitedWithCode(2),
              "invalid value 'abc' for --time-limit");
}

TEST(DeadlineBenchArgsDeathTest, NegativeTimeLimitIsRejected) {
  std::vector<std::string> args = {"bench", "--time-limit", "-5"};
  EXPECT_EXIT(ParseBenchArgs(3, FakeArgv(args)),
              ::testing::ExitedWithCode(2), "positive number of seconds");
}

TEST(DeadlineBenchArgsDeathTest, InfiniteTimeLimitIsRejected) {
  std::vector<std::string> args = {"bench", "--time-limit", "inf"};
  EXPECT_EXIT(ParseBenchArgs(3, FakeArgv(args)),
              ::testing::ExitedWithCode(2), "positive number of seconds");
}

}  // namespace
}  // namespace graphalign
