// The graphalign alignment service daemon (DESIGN.md §11).
//
// A long-running server that accepts align/evaluate/stats requests over the
// length-prefixed binary protocol (server/protocol.h) on a Unix or TCP
// socket and dispatches them to a bounded worker pool:
//
//   accept thread ──▶ bounded queue ──▶ K worker threads
//                        │
//                        └── full? send a typed BUSY response and close
//                            (admission control never stalls the accept loop)
//
// Request isolation: every align request runs in a forked child via
// RunIsolated (common/subprocess.h), with the request's deadline_ms mapped
// to a cooperative Deadline inside the child, a wall-clock SIGKILL backstop
// behind it, and mem_limit_mb enforced with RLIMIT_AS. A crashing, OOM-ing,
// or hanging alignment therefore produces a typed CRASH/OOM/DNF response to
// its own client while the daemon and all other in-flight requests keep
// going. Evaluate/stats requests are metric-only (no aligner kernels) and
// run inline in the worker.
//
// Caching: completed align results are stored in a content-addressed LRU
// cache (server/cache.h) keyed on (g1 hash, g2 hash, algo, assignment), so
// a repeated identical request is answered from memory in microseconds.
// With cache_dir set, completed entries also spill to an append-only
// CRC-checksummed log (server/cache_store.h) replayed at startup, so a
// restart comes up warm.
//
// Overload robustness (DESIGN.md §14): per-client token-bucket quotas
// (quota_rps), queue-deadline shedding (shed), a poison-request quarantine
// that stops re-forking signatures which repeatedly CRASH/OOM
// (quarantine_threshold), and a watchdog that SIGKILLs isolated children
// hung past deadline + watchdog_grace_seconds.
#ifndef GRAPHALIGN_SERVER_SERVER_H_
#define GRAPHALIGN_SERVER_SERVER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "server/cache.h"
#include "server/protocol.h"

namespace graphalign {

struct ServerOptions {
  // Exactly one transport: a Unix socket path (preferred for local use;
  // must fit sockaddr_un, ~107 bytes), or a TCP port on 127.0.0.1 when
  // socket_path is empty (port 0 = kernel-assigned; read it back from
  // Server::port()).
  std::string socket_path;
  int port = -1;

  // Worker pool size and admission-control queue depth (0 = 2 * workers).
  // Once `queue_capacity` connections are waiting, further arrivals get an
  // immediate BUSY response.
  int workers = 4;
  int queue_capacity = 0;

  // Result-cache capacity in megabytes.
  double cache_mb = 64.0;

  // Per-connection socket send/receive timeout: a client that stalls
  // mid-frame is cut off with a typed protocol error instead of pinning a
  // worker forever.
  double io_timeout_seconds = 30.0;

  // Wall-clock backstop for isolated align children: 2 * deadline +
  // `wall_slack_seconds` when the request carries a deadline, else
  // `default_wall_limit_seconds`. The backstop SIGKILLs non-cooperative
  // hangs; cooperative overruns are caught by the Deadline well before it.
  double wall_slack_seconds = 30.0;
  double default_wall_limit_seconds = 300.0;

  // Durable cache log directory (server/cache_store.h). Replayed at
  // startup (warm restart); every clean cached result is appended. Empty =
  // in-memory cache only. Open/replay failure degrades to a cold cache and
  // is counted in the stats; it never prevents startup.
  std::string cache_dir;

  // Per-client admission quota for align requests, in requests/second
  // (token bucket per Request::client, burst = max(1, 2 * quota_rps)).
  // A client over its quota gets a typed BUSY naming the quota. 0 = off.
  double quota_rps = 0.0;

  // Queue-deadline shedding: when true, an align request whose admission
  // queue wait already consumed its deadline_ms is answered with a typed
  // SHED immediately instead of being forked into guaranteed-late work.
  bool shed = false;

  // Poison-request quarantine: after this many consecutive CRASH/OOM
  // outcomes for one (g1 hash, g2 hash, algo) signature, further requests
  // for it get a typed QUARANTINED without forking. Success clears the
  // count; quarantine lasts until restart. 0 disables.
  int quarantine_threshold = 3;

  // Worker watchdog: an isolated align child still running this many
  // seconds past its cooperative deadline is SIGKILLed and its client gets
  // a typed ERROR (only for requests that carry a deadline_ms; the
  // wall-clock backstop still guards the rest). <= 0 disables.
  double watchdog_grace_seconds = 10.0;

  // Memory-mapped graph repository (store/graph_store.h): kPutGraph uploads
  // land here and align-by-hash requests resolve against it. Empty = store
  // surface disabled (by-hash requests answer NO_GRAPH). An unopenable
  // directory degrades the daemon to the wire-graph path — startup never
  // fails because of the store.
  std::string store_dir;

  // Startup compaction threshold for the durable cache log, in megabytes:
  // when the log on disk exceeds this after replay, live records are
  // rewritten to a fresh log via the same atomic temp+fsync+rename publish
  // the store uses. 0 = never compact.
  double cache_compact_mb = 0.0;

  // Durable async job subsystem (src/jobs, DESIGN.md §17): kSubmitJob
  // requests are journaled here and executed by dedicated runner threads;
  // a restart replays the journal and resumes interrupted work. Empty =
  // jobs disabled (job requests answer a typed ERROR). An unusable
  // directory degrades the daemon to synchronous-only — startup never
  // fails because of the job journal.
  std::string jobs_dir;

  // Executions per job before it becomes a typed FAILED (bounds the retry
  // cost of a job that crashes the daemon or its isolated child every time).
  int job_attempts = 3;

  // Terminal jobs (DONE/FAILED/CANCELLED/...) older than this are expired
  // by journal GC (startup + periodic); their results become NO_JOB.
  double job_ttl_seconds = 24.0 * 3600.0;

  // Dedicated job-runner threads (beyond the request workers). Each runs
  // one claimed job at a time through the same isolated-fork path as a
  // synchronous align.
  int job_workers = 1;
};

class Server {
 public:
  // Binds and listens. Fails (with a Status) on bad options or socket
  // errors; never half-starts.
  static Result<std::unique_ptr<Server>> Create(const ServerOptions& options);

  ~Server();  // Shutdown() + Wait().

  // Spawns the accept thread and the worker pool. All server threads
  // register as fork-tolerant (common/subprocess.h) so workers can fork
  // isolated alignments while their siblings keep serving.
  Status Start();

  // Signals every thread to stop: closes the listening socket, shuts down
  // queued and in-flight connections, and wakes idle workers. Safe to call
  // from any thread (including a worker, via a kShutdown request) and more
  // than once.
  void Shutdown();

  // Graceful drain (SIGTERM semantics): stops accepting new connections,
  // lets workers finish the requests they are serving, and answers every
  // connection still waiting in the admission queue with a typed
  // SHUTTING_DOWN response before closing it — no accepted client is left
  // blocked on a reply. Follow with Wait(); Shutdown() escalates a drain
  // to a hard stop. Safe to call from any thread and more than once.
  void Drain();

  // Joins all server threads. Returns after Shutdown() has taken effect and
  // every worker has finished its current request.
  void Wait();

  // Resolved TCP port (useful with port = 0); -1 for Unix transport.
  int port() const;

  ResultCache::Stats cache_stats() const;

  // Admission/quarantine/watchdog/durable-cache counters since Start()
  // (the same payload a kServerStats request returns over the wire).
  ServerStatsResult stats() const;

 private:
  class Impl;
  explicit Server(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_SERVER_SERVER_H_
