// Ablation (paper §6.4): GRASP's sensitivity to disconnected components.
// The same community-structured graph is aligned (a) as generated
// (connected) and (b) with a bridge removed so it splits into components.
// The paper attributes GRASP's collapses on euroroad/hamsterster to exactly
// this spectral-degeneracy effect.
#include <string>

#include "align/grasp.h"
#include "bench_util.h"
#include "common/random.h"
#include "graph/generators.h"
#include "metrics/metrics.h"

namespace graphalign {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  bench::Banner("Ablation", "GRASP on connected vs disconnected graphs (§6.4)",
                args);
  const int half = args.full ? 200 : 80;
  Rng rng(args.seed);

  // Two communities bridged by a few edges (connected), vs the same two
  // communities with the bridges removed (disconnected).
  auto c1 = PowerlawCluster(half, 4, 0.4, &rng);
  auto c2 = PowerlawCluster(half, 4, 0.4, &rng);
  GA_CHECK(c1.ok() && c2.ok());
  std::vector<Edge> edges;
  for (const Edge& e : c1->Edges()) edges.push_back(e);
  for (const Edge& e : c2->Edges()) edges.push_back({e.u + half, e.v + half});
  std::vector<Edge> bridged = edges;
  for (int b = 0; b < 4; ++b) {
    bridged.push_back(
        {static_cast<int>(rng.UniformInt(static_cast<uint64_t>(half))),
         half + static_cast<int>(rng.UniformInt(static_cast<uint64_t>(half)))});
  }
  auto connected = Graph::FromEdges(2 * half, bridged);
  auto disconnected = Graph::FromEdges(2 * half, edges);
  GA_CHECK(connected.ok() && disconnected.ok());

  Table t({"variant", "components", "noise", "accuracy"});
  GraspAligner grasp;
  for (const auto& [label, graph] :
       {std::pair{"connected", &*connected},
        std::pair{"disconnected", &*disconnected}}) {
    int comps = 0;
    graph->ConnectedComponents(&comps);
    for (double level : {0.0, 0.01, 0.03}) {
      NoiseOptions noise;
      noise.level = level;
      RunOutcome out = RunAveraged(&grasp, *graph, noise,
                                   AssignmentMethod::kJonkerVolgenant,
                                   args.repetitions > 0 ? args.repetitions : 3,
                                   args.seed, args);
      t.AddRow({label, std::to_string(comps), Table::Num(level, 2),
                FormatAccuracy(out)});
    }
  }
  bench::Emit(t, args);
  return 0;
}

}  // namespace
}  // namespace graphalign

int main(int argc, char** argv) { return graphalign::Main(argc, argv); }
