#include "bench_framework/journal.h"

#include <fstream>
#include <sstream>

namespace graphalign {

namespace {

Status CheckField(const std::string& field) {
  if (field.find('\t') != std::string::npos ||
      field.find('\n') != std::string::npos) {
    return Status::InvalidArgument("journal fields must not contain tabs or "
                                   "newlines: '" + field + "'");
  }
  return Status::Ok();
}

}  // namespace

Result<Journal> Journal::Open(const std::string& path, bool resume) {
  Journal journal;
  journal.path_ = path;
  if (!resume) {
    std::ofstream out(path, std::ios::trunc);
    if (!out) return Status::Internal("cannot create journal " + path);
    return journal;
  }
  std::ifstream in(path);
  if (!in) {
    // Resuming with no journal yet is a fresh start, not an error: the
    // sweep may have been killed before its first cell completed.
    std::ofstream out(path, std::ios::app);
    if (!out) return Status::Internal("cannot create journal " + path);
    return journal;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  size_t start = 0;
  while (start < content.size()) {
    const size_t nl = content.find('\n', start);
    if (nl == std::string::npos) break;  // Trailing partial record: drop it.
    const std::string line = content.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;
    std::vector<std::string> fields;
    size_t field_start = 0;
    for (;;) {
      const size_t tab = line.find('\t', field_start);
      if (tab == std::string::npos) {
        fields.push_back(line.substr(field_start));
        break;
      }
      fields.push_back(line.substr(field_start, tab - field_start));
      field_start = tab + 1;
    }
    if (fields.size() < 2) {
      return Status::InvalidArgument("malformed journal record in " + path +
                                     ": '" + line + "'");
    }
    const std::string key = fields.front();
    fields.erase(fields.begin());
    // Last record wins; duplicate keys can appear if a sweep was resumed
    // from a journal written without --resume semantics in mind.
    journal.done_[key] = std::move(fields);
  }
  return journal;
}

const std::vector<std::string>* Journal::Row(const std::string& key) const {
  auto it = done_.find(key);
  return it == done_.end() ? nullptr : &it->second;
}

Status Journal::Record(const std::string& key,
                       const std::vector<std::string>& cells) {
  if (!enabled()) return Status::Ok();
  GA_RETURN_IF_ERROR(CheckField(key));
  if (cells.empty()) {
    return Status::InvalidArgument("journal record needs at least one cell");
  }
  for (const std::string& cell : cells) GA_RETURN_IF_ERROR(CheckField(cell));
  std::ofstream out(path_, std::ios::app);
  if (!out) return Status::Internal("cannot append to journal " + path_);
  out << key;
  for (const std::string& cell : cells) out << '\t' << cell;
  out << '\n';
  out.flush();
  if (!out) return Status::Internal("journal write failed for " + path_);
  done_[key] = cells;
  return Status::Ok();
}

}  // namespace graphalign
