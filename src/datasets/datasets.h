// Synthetic stand-ins for the paper's real datasets (Table 2) and the
// evolving ground-truth graphs of §6.5.
//
// The benchmark environment has no network access, so each real dataset is
// replaced by a generated graph matching its size and structural family:
// powerlaw-cluster models for social/communication/collaboration networks
// (skewed degrees, triangles), random geometric graphs for proximity and
// sparse infrastructure networks (spatial structure, natural disconnected
// fragments), ring-plus-shortcuts for the power grid, and configuration-
// model powerlaw graphs where the original has many small components.
// See DESIGN.md §4 for the substitution rationale.
#ifndef GRAPHALIGN_DATASETS_DATASETS_H_
#define GRAPHALIGN_DATASETS_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "graph/graph.h"

namespace graphalign {

struct DatasetSpec {
  std::string name;
  std::string type;   // Table 2's network type.
  int n;              // Node count of the original.
  int64_t m;          // Edge count of the original.
  int l;              // Nodes outside the largest connected component.
};

// All sixteen datasets of Table 2, in table order.
std::vector<DatasetSpec> Table2Specs();

// Generates the stand-in for `name` (exact Table-2 names, e.g. "Arenas").
// `scale` in (0, 1] shrinks the node count proportionally (density family
// preserved) so benches can run at laptop scale; scale = 1 reproduces the
// full Table-2 size. Returns NotFound for unknown names.
Result<Graph> MakeStandIn(const std::string& name, uint64_t seed = 2023,
                          double scale = 1.0);

// Temporal snapshots for the HighSchool/Voles protocol (§6.5): nested edge
// subsets retaining the given fractions of the base graph's edges, over the
// same node set. fractions must be ascending in (0, 1].
Result<std::vector<Graph>> EvolvingSnapshots(
    const Graph& base, const std::vector<double>& fractions, Rng* rng);

// PPI-style variants for the MultiMagna protocol (§6.5): `count` graphs,
// variant i carrying i * step extra noise edges relative to the base.
Result<std::vector<Graph>> MultiMagnaVariants(const Graph& base, int count,
                                              double step, Rng* rng);

}  // namespace graphalign

#endif  // GRAPHALIGN_DATASETS_DATASETS_H_
