#include "store/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"

namespace graphalign {

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path) {
  GA_FAILPOINT_STATUS("store.mmap.error",
                      Status::Unavailable("mmap failed (injected)"));
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::Unavailable("cannot open " + path + ": " +
                               std::string(strerror(errno)));
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    const int err = errno;
    close(fd);
    return Status::Unavailable("cannot stat " + path + ": " +
                               std::string(strerror(err)));
  }
  const size_t len = static_cast<size_t>(st.st_size);
  if (len == 0) {
    // mmap of length 0 is an error; an empty file is not a valid mapping
    // target, and for GST1 it is the torn-write signature — let the format
    // layer classify it, here it is simply unmappable content.
    close(fd);
    return Status::Corrupt("empty file: " + path);
  }
  void* addr = mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  const int err = errno;
  close(fd);  // The mapping keeps its own reference to the inode.
  if (addr == MAP_FAILED) {
    return Status::Unavailable("mmap of " + path + " failed: " +
                               std::string(strerror(err)));
  }
  return std::shared_ptr<MappedFile>(new MappedFile(addr, len, path));
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr) munmap(addr_, len_);
}

}  // namespace graphalign
