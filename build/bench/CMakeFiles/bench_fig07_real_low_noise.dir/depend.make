# Empty dependencies file for bench_fig07_real_low_noise.
# This may be replaced when dependencies are built.
