file(REMOVE_RECURSE
  "CMakeFiles/datasets_benchfw_test.dir/datasets_benchfw_test.cc.o"
  "CMakeFiles/datasets_benchfw_test.dir/datasets_benchfw_test.cc.o.d"
  "datasets_benchfw_test"
  "datasets_benchfw_test.pdb"
  "datasets_benchfw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datasets_benchfw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
