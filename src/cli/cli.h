// The graphalign command-line tool, as a library so tests can drive it.
//
// Subcommands:
//   generate  --model {er,ba,ws,nw,pl,geometric} --n N [--p P] [--m M]
//             [--k K] [--seed S] --out FILE
//   perturb   --in FILE --noise {one-way,multi-modal,two-way} --level L
//             [--seed S] [--no-permute] --out FILE [--truth FILE]
//   align     --g1 FILE --g2 FILE --algo NAME
//             [--assign {NN,SG,MWM,JV,native}] [--out FILE]
//   evaluate  --g1 FILE --g2 FILE --mapping FILE [--truth FILE]
//   stats     --in FILE
//
// Mapping/truth files are "u v" per line (node of g1, node of g2).
#ifndef GRAPHALIGN_CLI_CLI_H_
#define GRAPHALIGN_CLI_CLI_H_

#include <ostream>

namespace graphalign {

// Runs the CLI; returns the process exit code. Output (including errors)
// goes to `out` / `err`.
int RunCli(int argc, const char* const* argv, std::ostream& out,
           std::ostream& err);

}  // namespace graphalign

#endif  // GRAPHALIGN_CLI_CLI_H_
