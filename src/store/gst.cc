#include "store/gst.h"

#include <fcntl.h>
#include <libgen.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <limits>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "store/mapped_file.h"

namespace graphalign {

namespace {

constexpr size_t kSectionTableOff = 40;
constexpr size_t kSectionEntryBytes = 32;
constexpr size_t kHeaderCrcOff = 32;
constexpr uint32_t kSectionOffsets = 1;
constexpr uint32_t kSectionAdjacency = 2;

void PutU32(std::string* out, size_t pos, uint32_t v) {
  std::memcpy(out->data() + pos, &v, sizeof(v));
}
void PutU64(std::string* out, size_t pos, uint64_t v) {
  std::memcpy(out->data() + pos, &v, sizeof(v));
}
uint32_t GetU32(std::string_view bytes, size_t pos) {
  uint32_t v = 0;
  std::memcpy(&v, bytes.data() + pos, sizeof(v));
  return v;
}
uint64_t GetU64(std::string_view bytes, size_t pos) {
  uint64_t v = 0;
  std::memcpy(&v, bytes.data() + pos, sizeof(v));
  return v;
}

bool WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = write(fd, data + off, len - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

Status Corrupt(const std::string& what) {
  return Status::Corrupt("GST1: " + what);
}

}  // namespace

std::string EncodeGst(const Graph& g) {
  std::span<const int64_t> offsets = g.RawOffsets();
  std::span<const int> adj = g.RawAdjacency();
  // A default-constructed Graph has no arrays; the canonical empty graph
  // still serializes with its single offsets[0] == 0 entry.
  static constexpr int64_t kZero = 0;
  if (offsets.empty()) offsets = {&kZero, 1};

  const uint32_t n = static_cast<uint32_t>(g.num_nodes());
  const uint64_t m = static_cast<uint64_t>(g.num_edges());
  const uint64_t off_len = offsets.size_bytes();
  const uint64_t adj_len = adj.size_bytes();
  const uint64_t off_pos = kGstPreambleBytes;
  const uint64_t adj_pos = off_pos + off_len;

  const char* off_bytes = reinterpret_cast<const char*>(offsets.data());
  const char* adj_bytes = reinterpret_cast<const char*>(adj.data());
  const uint32_t off_crc = Crc32c({off_bytes, off_len});
  const uint32_t adj_crc = Crc32c({adj_bytes, adj_len});

  std::string out(kGstPreambleBytes, '\0');
  std::memcpy(out.data(), kGstMagic, sizeof(kGstMagic));
  PutU32(&out, 4, kGstVersion);
  PutU32(&out, 8, n);
  PutU32(&out, 12, 2);  // section_count
  PutU64(&out, 16, m);
  PutU64(&out, 24, g.ContentHash());
  // header_crc (offset 32) stays zero until the table is in place.
  size_t e = kSectionTableOff;
  PutU32(&out, e + 0, kSectionOffsets);
  PutU32(&out, e + 4, off_crc);
  PutU64(&out, e + 8, off_pos);
  PutU64(&out, e + 16, off_len);
  e += kSectionEntryBytes;
  PutU32(&out, e + 0, kSectionAdjacency);
  PutU32(&out, e + 4, adj_crc);
  PutU64(&out, e + 8, adj_pos);
  PutU64(&out, e + 16, adj_len);
  PutU32(&out, kHeaderCrcOff, Crc32c(out));

  out.append(off_bytes, off_len);
  out.append(adj_bytes, adj_len);
  return out;
}

Result<Graph> OpenGstBytes(std::string_view bytes,
                           std::shared_ptr<const void> backing,
                           GstInfo* info) {
  GA_FAILPOINT_STATUS("store.verify.corrupt",
                      Corrupt("verification failed (injected)"));
  if (reinterpret_cast<uintptr_t>(bytes.data()) % 8 != 0) {
    return Status::InvalidArgument("GST1: buffer must be 8-byte aligned");
  }
  if (bytes.size() < kGstPreambleBytes) {
    return Corrupt("truncated preamble (" + std::to_string(bytes.size()) +
                   " bytes)");
  }
  if (std::memcmp(bytes.data(), kGstMagic, sizeof(kGstMagic)) != 0) {
    return Corrupt("bad magic");
  }
  const uint32_t version = GetU32(bytes, 4);
  if (version != kGstVersion) {
    return Corrupt("unsupported version " + std::to_string(version));
  }
  const uint32_t n = GetU32(bytes, 8);
  const uint32_t section_count = GetU32(bytes, 12);
  const uint64_t m = GetU64(bytes, 16);
  const uint64_t content_hash = GetU64(bytes, 24);
  const uint32_t header_crc = GetU32(bytes, kHeaderCrcOff);

  // Verify the preamble+table CRC before trusting any field further: a
  // flipped bit in a length or offset must not steer the later checks.
  std::string preamble(bytes.substr(0, kGstPreambleBytes));
  std::memset(preamble.data() + kHeaderCrcOff, 0, sizeof(uint32_t));
  if (Crc32c(preamble) != header_crc) {
    return Corrupt("header CRC mismatch");
  }

  if (section_count != 2) {
    return Corrupt("unexpected section count " +
                   std::to_string(section_count));
  }
  if (n > static_cast<uint32_t>(std::numeric_limits<int>::max())) {
    return Corrupt("node count overflows int");
  }
  // Every edge contributes 8 adjacency bytes, so a sane m is bounded by the
  // file size; this also kills multiplication overflow below.
  if (m > bytes.size()) {
    return Corrupt("edge count exceeds file capacity");
  }
  const uint64_t off_len = (static_cast<uint64_t>(n) + 1) * 8;
  const uint64_t adj_len = 2 * m * 4;
  const uint64_t off_pos = kGstPreambleBytes;
  const uint64_t adj_pos = off_pos + off_len;
  if (bytes.size() != adj_pos + adj_len) {
    return Corrupt("file size " + std::to_string(bytes.size()) +
                   " does not match declared sections");
  }
  struct SectionWant {
    uint32_t id;
    uint64_t pos;
    uint64_t len;
  };
  const SectionWant want[2] = {{kSectionOffsets, off_pos, off_len},
                               {kSectionAdjacency, adj_pos, adj_len}};
  for (int i = 0; i < 2; ++i) {
    const size_t e = kSectionTableOff + i * kSectionEntryBytes;
    if (GetU32(bytes, e) != want[i].id ||
        GetU64(bytes, e + 8) != want[i].pos ||
        GetU64(bytes, e + 16) != want[i].len) {
      return Corrupt("section table entry " + std::to_string(i) +
                     " disagrees with the preamble");
    }
    const uint32_t crc = GetU32(bytes, e + 4);
    if (Crc32c(bytes.substr(want[i].pos, want[i].len)) != crc) {
      return Corrupt(std::string(i == 0 ? "offsets" : "adjacency") +
                     " section CRC mismatch");
    }
  }

  // CRCs passed; now re-validate CSR structure so even a file with
  // self-consistent checksums can never hand out an out-of-range index.
  const int64_t* offsets =
      reinterpret_cast<const int64_t*>(bytes.data() + off_pos);
  const int* adj = reinterpret_cast<const int*>(bytes.data() + adj_pos);
  const int64_t total = static_cast<int64_t>(2 * m);
  if (offsets[0] != 0 || offsets[n] != total) {
    return Corrupt("offsets do not span the adjacency section");
  }
  for (uint32_t u = 0; u < n; ++u) {
    if (offsets[u + 1] < offsets[u]) {
      return Corrupt("offsets not monotone at node " + std::to_string(u));
    }
    int prev = -1;
    for (int64_t k = offsets[u]; k < offsets[u + 1]; ++k) {
      const int v = adj[k];
      if (v < 0 || v >= static_cast<int>(n)) {
        return Corrupt("neighbor out of range at node " + std::to_string(u));
      }
      if (v == static_cast<int>(u)) {
        return Corrupt("self-loop at node " + std::to_string(u));
      }
      if (v <= prev) {
        return Corrupt("neighbor row not strictly sorted at node " +
                       std::to_string(u));
      }
      prev = v;
    }
  }

  if (info != nullptr) {
    info->num_nodes = static_cast<int>(n);
    info->num_edges = static_cast<int64_t>(m);
    info->content_hash = content_hash;
    info->file_bytes = bytes.size();
  }
  return Graph::FromCsrUnchecked(static_cast<int>(n),
                                 static_cast<int64_t>(m), offsets, adj,
                                 std::move(backing));
}

Result<Graph> OpenGstFile(const std::string& path, GstInfo* info) {
  GA_ASSIGN_OR_RETURN(std::shared_ptr<MappedFile> file,
                      MappedFile::Open(path));
  const std::string_view bytes = file->bytes();
  return OpenGstBytes(bytes, std::move(file), info);
}

Status WriteGstFile(const Graph& g, const std::string& path) {
  GA_FAILPOINT_STATUS("store.write.error",
                      Status::Unavailable("store write failed (injected)"));
  // Disk full is the transient-environment failure class, NEVER corruption:
  // the temp file simply did not commit, nothing on disk lies, and no
  // quarantine may fire. The injected status carries the strerror(ENOSPC)
  // text so callers exercise the same message path a real full disk takes.
  GA_FAILPOINT_STATUS(
      "store.write.enospc",
      Status::Unavailable("write to " + path + ".tmp failed: " +
                          std::string(strerror(ENOSPC)) +
                          " (injected ENOSPC)"));
  const std::string bytes = EncodeGst(g);
  // pid + sequence keeps concurrent writers (daemon worker threads racing
  // to publish the same graph) off each other's temp files; whoever renames
  // last wins with identical content.
  static std::atomic<uint64_t> temp_seq{0};
  const std::string tmp = path + ".tmp-" + std::to_string(getpid()) + "-" +
                          std::to_string(temp_seq.fetch_add(1));
  const int fd = open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Unavailable("cannot create " + tmp + ": " +
                               std::string(strerror(errno)));
  }
  if (!WriteAll(fd, bytes.data(), bytes.size())) {
    const int err = errno;
    close(fd);
    unlink(tmp.c_str());
    return Status::Unavailable("write to " + tmp + " failed: " +
                               std::string(strerror(err)));
  }
  if (GA_FAILPOINT_FIRED("store.fsync.error") || fsync(fd) != 0) {
    close(fd);
    unlink(tmp.c_str());
    return Status::Unavailable("fsync of " + tmp + " failed");
  }
  close(fd);
  // The crash window: temp durable, final name not yet published. The
  // injected variant returns here ON PURPOSE without unlinking the temp —
  // exactly the garbage a real crash leaves for `store gc` to collect.
  GA_FAILPOINT_STATUS(
      "store.rename.error",
      Status::Unavailable("crash before rename (injected); temp left behind"));
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    unlink(tmp.c_str());
    return Status::Unavailable("rename to " + path + " failed: " +
                               std::string(strerror(err)));
  }
  // fsync the directory so the rename itself survives power loss; without
  // it the publish is atomic but not yet durable.
  std::string dir_copy = path;
  const char* dir = dirname(dir_copy.data());
  const int dfd = open(dir, O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    return Status::Unavailable("cannot open directory " + std::string(dir) +
                               " for fsync: " + std::string(strerror(errno)));
  }
  if (fsync(dfd) != 0) {
    const int err = errno;
    close(dfd);
    return Status::Unavailable("directory fsync failed: " +
                               std::string(strerror(err)));
  }
  close(dfd);
  return Status::Ok();
}

}  // namespace graphalign
