// Figure 15: accuracy under 1% one-way noise on Newman-Watts graphs of
// n = 2000 nodes (§6.7), varying (a) the rewiring/shortcut probability p at
// fixed k, and (b) the lattice degree k at fixed p = 0.5.
//
// Expected shape: CONE and S-GWL lead but falter on the sparsest setting
// (p = 0.2) and on flat degree distributions (large k); GWL/S-GWL cannot
// align graphs of very low or very high average degree; IsoRank does
// comparatively well at low degree.
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "graph/generators.h"

namespace graphalign {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  bench::Banner("Figure 15",
                "accuracy vs density, Newman-Watts n=2000, 1% one-way noise",
                args);
  const int n = args.full ? 2000 : 300;
  const int reps = args.repetitions > 0 ? args.repetitions : (args.full ? 5 : 1);

  Journal journal = bench::MustOpenJournal(args);
  Table t({"sweep", "k", "p", "algorithm", "accuracy"});
  auto run_point = [&](const std::string& sweep, int k, double p) {
    Rng rng(args.seed);
    auto base = NewmanWatts(n, k, p, &rng);
    GA_CHECK(base.ok());
    const bool sparse = base->AverageDegree() < 20.0;
    for (const std::string& name : SelectedAlgorithms(args)) {
      auto aligner = bench::MakeBenchAligner(name, sparse);
      NoiseOptions noise;
      noise.level = 0.01;
      bench::JournaledRow(
          &t, &journal,
          bench::CellKey({sweep, std::to_string(k), Table::Num(p, 1), name}),
          [&] {
            RunOutcome out = RunAveraged(
                aligner.get(), *base, noise,
                AssignmentMethod::kJonkerVolgenant, reps, args.seed + k, args);
            return std::vector<std::string>{sweep, std::to_string(k),
                                            Table::Num(p, 1), name,
                                            FormatAccuracy(out)};
          });
    }
  };

  // (a) p sweep at fixed k (k = 10 scaled with n).
  const int k_fixed = args.full ? 10 : 6;
  for (double p : {0.2, 0.5, 0.9}) run_point("p-sweep", k_fixed, p);

  // (b) k sweep at fixed p = 0.5, spanning sparse to dense regimes.
  const std::vector<int> ks = args.full
                                  ? std::vector<int>{10, 100, 200, 400, 600}
                                  : std::vector<int>{6, 30, 60};
  for (int k : ks) run_point("k-sweep", k, 0.5);

  bench::Emit(t, args);
  return 0;
}

}  // namespace
}  // namespace graphalign

int main(int argc, char** argv) { return graphalign::Main(argc, argv); }
