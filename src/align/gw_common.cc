#include "align/gw_common.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "linalg/sinkhorn.h"

namespace graphalign {

namespace {

// Elementwise-squared copy of a CSR matrix.
CsrMatrix SquaredValues(const CsrMatrix& m) {
  CsrMatrix out = m;
  for (double& v : *out.mutable_values()) v *= v;
  return out;
}

// grad = (Cs^2 mu) 1^T + 1 (Ct^2 nu)^T - 2 Cs T Ct^T. Ct is symmetric here
// (costs come from undirected structure), so Ct^T = Ct.
DenseMatrix GwGradient(const CsrMatrix& cs, const CsrMatrix& cs2,
                       const CsrMatrix& ct, const CsrMatrix& ct2,
                       const std::vector<double>& mu,
                       const std::vector<double>& nu,
                       const DenseMatrix& t) {
  const std::vector<double> row_part = cs2.Multiply(mu);
  const std::vector<double> col_part = ct2.Multiply(nu);
  DenseMatrix cross = ct.RightMultiplied(cs.Multiply(t));  // Cs T Ct
  DenseMatrix grad(t.rows(), t.cols());
  ParallelFor(t.rows(), [&](int64_t lo, int64_t hi) {
    for (int i = static_cast<int>(lo); i < hi; ++i) {
      double* grow = grad.Row(i);
      const double* xrow = cross.Row(i);
      for (int j = 0; j < t.cols(); ++j) {
        grow[j] = row_part[i] + col_part[j] - 2.0 * xrow[j];
      }
    }
  }, std::max<int64_t>(2, 500'000 / (t.cols() + 1)));
  return grad;
}

}  // namespace

CsrMatrix DenseToCsr(const DenseMatrix& m) {
  std::vector<Triplet> trip;
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) {
      if (m(i, j) != 0.0) trip.push_back({i, j, m(i, j)});
    }
  }
  return CsrMatrix::FromTriplets(m.rows(), m.cols(), std::move(trip));
}

Result<DenseMatrix> GromovWassersteinTransport(
    const CsrMatrix& cs, const CsrMatrix& ct, const std::vector<double>& mu,
    const std::vector<double>& nu, const GwOptions& options,
    const DenseMatrix* extra_cost, const DenseMatrix* initial_transport,
    const Deadline& deadline) {
  const int n1 = cs.rows();
  const int n2 = ct.rows();
  if (cs.rows() != cs.cols() || ct.rows() != ct.cols()) {
    return Status::InvalidArgument("GW: cost matrices must be square");
  }
  if (static_cast<int>(mu.size()) != n1 || static_cast<int>(nu.size()) != n2) {
    return Status::InvalidArgument("GW: marginal size mismatch");
  }
  if (options.beta <= 0.0) {
    return Status::InvalidArgument("GW: beta must be positive");
  }
  if (extra_cost != nullptr &&
      (extra_cost->rows() != n1 || extra_cost->cols() != n2)) {
    return Status::InvalidArgument("GW: extra cost shape mismatch");
  }

  const CsrMatrix cs2 = SquaredValues(cs);
  const CsrMatrix ct2 = SquaredValues(ct);

  DenseMatrix t(n1, n2);
  if (initial_transport != nullptr) {
    if (initial_transport->rows() != n1 || initial_transport->cols() != n2) {
      return Status::InvalidArgument("GW: initial transport shape mismatch");
    }
    t = *initial_transport;
  } else {
    for (int i = 0; i < n1; ++i) {
      for (int j = 0; j < n2; ++j) t(i, j) = mu[i] * nu[j];
    }
  }

  for (int iter = 0; iter < options.outer_iterations; ++iter) {
    // Each proximal step costs O(nnz * n2 + n1 * n2), so checking every
    // iteration bounds overshoot by one step.
    GA_RETURN_IF_EXPIRED(deadline, "GW transport");
    DenseMatrix grad = GwGradient(cs, cs2, ct, ct2, mu, nu, t);
    if (extra_cost != nullptr) grad.Axpy(1.0, *extra_cost);
    // Proximal kernel K = T .* exp(-grad/beta), stabilized by the row-wise
    // gradient minimum.
    double gmin = grad(0, 0);
    for (int i = 0; i < n1; ++i) {
      const double* grow = grad.Row(i);
      for (int j = 0; j < n2; ++j) gmin = std::min(gmin, grow[j]);
    }
    DenseMatrix kernel(n1, n2);
    constexpr double kFloor = 1e-16;
    for (int i = 0; i < n1; ++i) {
      const double* grow = grad.Row(i);
      const double* trow = t.Row(i);
      double* krow = kernel.Row(i);
      for (int j = 0; j < n2; ++j) {
        krow[j] = std::max(trow[j], kFloor) *
                  std::exp(-(grow[j] - gmin) / options.beta);
      }
    }
    GA_ASSIGN_OR_RETURN(
        DenseMatrix next,
        SinkhornProject(kernel, mu, nu, options.sinkhorn_iterations,
                        /*tolerance=*/1e-6, deadline));
    DenseMatrix delta = next;
    delta.Axpy(-1.0, t);
    const double change = delta.MaxAbs();
    t = std::move(next);
    if (change < options.tolerance) break;
  }
  return t;
}

double GromovWassersteinObjective(const CsrMatrix& cs, const CsrMatrix& ct,
                                  const std::vector<double>& mu,
                                  const std::vector<double>& nu,
                                  const DenseMatrix& transport) {
  const CsrMatrix cs2 = SquaredValues(cs);
  const CsrMatrix ct2 = SquaredValues(ct);
  DenseMatrix grad =
      GwGradient(cs, cs2, ct, ct2, mu, nu, transport);
  // <L, T> with L = f1 mu 1' + 1 nu' f2 - 2 Cs T Ct; grad already is that L.
  double obj = 0.0;
  for (int i = 0; i < transport.rows(); ++i) {
    const double* g = grad.Row(i);
    const double* t = transport.Row(i);
    for (int j = 0; j < transport.cols(); ++j) obj += g[j] * t[j];
  }
  return obj;
}

}  // namespace graphalign
