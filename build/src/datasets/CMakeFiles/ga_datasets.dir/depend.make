# Empty dependencies file for ga_datasets.
# This may be replaced when dependencies are built.
