// Figure 9: the time-accuracy tradeoff on NetScience; marks correspond to
// one-way noise in {0.25, 0.2, 0.15, 0.1, 0.05, 0} (§6.4.2).
//
// Expected shape: CONE and S-GWL resolve the tradeoff best (high accuracy at
// moderate runtime); GRAAL included despite heavy preprocessing.
#include <string>
#include <vector>

#include "bench_util.h"
#include "datasets/datasets.h"

namespace graphalign {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  bench::Banner("Figure 9", "time vs accuracy on ca-netscience", args);
  const int reps = args.repetitions > 0 ? args.repetitions : (args.full ? 5 : 1);
  const double scale = args.full ? 1.0 : 0.5;
  auto base = MakeStandIn("ca-netscience", args.seed, scale);
  GA_CHECK(base.ok());
  std::printf("ca-netscience stand-in: n=%d m=%lld\n", base->num_nodes(),
              static_cast<long long>(base->num_edges()));

  Journal journal = bench::MustOpenJournal(args);
  Table t({"algorithm", "noise", "accuracy", "similarity_s", "assignment_s"});
  for (const std::string& name : SelectedAlgorithms(args)) {
    auto aligner = bench::MakeBenchAligner(name, /*sparse_graph=*/true);
    for (double level : bench::HighNoiseLevels(args.full)) {
      NoiseOptions noise;
      noise.level = level;
      bench::JournaledRow(
          &t, &journal, bench::CellKey({name, Table::Num(level, 2)}), [&] {
            RunOutcome out = RunAveraged(
                aligner.get(), *base, noise,
                AssignmentMethod::kJonkerVolgenant, reps,
                args.seed + static_cast<uint64_t>(level * 1000), args);
            return std::vector<std::string>{
                name, Table::Num(level, 2), FormatAccuracy(out),
                FormatOutcome(out, out.similarity_seconds),
                FormatOutcome(out, out.assignment_seconds)};
          });
    }
  }
  bench::Emit(t, args);
  return 0;
}

}  // namespace
}  // namespace graphalign

int main(int argc, char** argv) { return graphalign::Main(argc, argv); }
