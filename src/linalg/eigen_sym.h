// Dense symmetric eigendecomposition and Lanczos iteration.
//
// GRASP needs the k smallest eigenpairs of the normalized Laplacian; CONE
// needs leading eigenpairs of a random-walk polynomial; LREA and IsoRank use
// power iterations built on these kernels.
#ifndef GRAPHALIGN_LINALG_EIGEN_SYM_H_
#define GRAPHALIGN_LINALG_EIGEN_SYM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "linalg/dense.h"

namespace graphalign {

struct SymmetricEigenResult {
  // Ascending eigenvalues.
  std::vector<double> eigenvalues;
  // Column j of `eigenvectors` is the unit eigenvector for eigenvalues[j].
  DenseMatrix eigenvectors;
};

// Full eigendecomposition of a dense symmetric matrix via Householder
// tridiagonalization followed by the implicit-shift QL algorithm
// (EISPACK tred2/tql2 lineage). O(n^3) time, O(n^2) space.
// Fails if the input is not square or QL fails to converge. The deadline is
// polled between Householder columns and QL sweeps.
Result<SymmetricEigenResult> SymmetricEigen(DenseMatrix a,
                                            const Deadline& deadline =
                                                Deadline());

// Matrix-free symmetric operator: y = A x.
using LinearOperator =
    std::function<void(const std::vector<double>& x, std::vector<double>* y)>;

enum class SpectrumEnd { kSmallest, kLargest };

// k extremal eigenpairs of a symmetric operator of dimension n using Lanczos
// with full reorthogonalization. `steps` bounds the Krylov dimension
// (defaulted internally to min(n, max(2k + 20, 40)) when <= 0). The deadline
// is polled between Lanczos steps.
Result<SymmetricEigenResult> LanczosEigen(const LinearOperator& op, int n,
                                          int k, SpectrumEnd end,
                                          int steps = 0,
                                          uint64_t seed = 12345,
                                          const Deadline& deadline =
                                              Deadline());

}  // namespace graphalign

#endif  // GRAPHALIGN_LINALG_EIGEN_SYM_H_
