# Empty compiler generated dependencies file for bench_fig10_real_noise.
# This may be replaced when dependencies are built.
