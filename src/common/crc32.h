// CRC32C (Castagnoli) checksums for the durable cache log (DESIGN.md §14).
//
// The cache store appends records to a log file that a crash can truncate
// mid-write; each record therefore carries a CRC over its payload so replay
// can tell a torn or bit-rotted record from a good one. CRC32C is the
// conventional choice for storage framing (iSCSI, ext4, LevelDB-family
// logs): short, cheap, and with well-known test vectors. This is the plain
// table-driven byte-at-a-time form — the log is written once per cached
// alignment result, so hardware-accelerated variants would be noise here.
#ifndef GRAPHALIGN_COMMON_CRC32_H_
#define GRAPHALIGN_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace graphalign {

// CRC32C of `bytes`, with the standard init/final XOR (0xFFFFFFFF). The
// canonical check vector: Crc32c("123456789") == 0xE3069283.
uint32_t Crc32c(std::string_view bytes);

// Incremental form: feed `crc` the running value from a previous call
// (starting from Crc32cInit()) and finish with Crc32cFinish().
inline constexpr uint32_t Crc32cInit() { return 0xFFFFFFFFu; }
uint32_t Crc32cUpdate(uint32_t crc, const void* data, size_t len);
inline constexpr uint32_t Crc32cFinish(uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

}  // namespace graphalign

#endif  // GRAPHALIGN_COMMON_CRC32_H_
