# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/assignment_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_noise_test[1]_include.cmake")
include("/root/repo/build/tests/align_test[1]_include.cmake")
include("/root/repo/build/tests/datasets_benchfw_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/multi_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[2]_include.cmake")
include("/root/repo/build/tests/parallel_test[3]_include.cmake")
include("/root/repo/build/tests/graphlets5_test[1]_include.cmake")
include("/root/repo/build/tests/deadline_test[1]_include.cmake")
include("/root/repo/build/tests/deadline_test[2]_include.cmake")
include("/root/repo/build/tests/deadline_test[3]_include.cmake")
