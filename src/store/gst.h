// GST1: the on-disk binary CSR graph format (DESIGN.md §15).
//
// Layout (all integers little-endian; fixed 104-byte preamble):
//
//   offset  size  field
//        0     4  magic "GST1"
//        4     4  u32 format version (1)
//        8     4  u32 num_nodes
//       12     4  u32 section_count (2)
//       16     8  u64 num_edges
//       24     8  u64 content_hash (Graph::ContentHash of the payload)
//       32     4  u32 header_crc — CRC32C over bytes [0, 104) with this
//                 field zeroed, i.e. over the prologue AND section table
//       36     4  u32 reserved (0)
//       40    64  section table: 2 entries x 32 bytes
//                   u32 id (1 = offsets, 2 = adjacency)
//                   u32 crc32c of the section payload
//                   u64 byte offset from file start
//                   u64 byte length
//                   u64 reserved (0)
//      104     -  section payloads: offsets ((n+1) x i64, 8-aligned), then
//                 adjacency (2m x i32)
//
// Every byte of the file is covered by exactly one CRC (header_crc covers
// the preamble and table, each section CRC covers its payload), so any
// single flipped bit anywhere is detectable on open. Opening additionally
// re-validates CSR structure (monotone offsets, in-range sorted neighbor
// rows, no self-loops, symmetry of counts) so even an adversarial file with
// self-consistent CRCs can never hand the aligners an out-of-bounds index.
// All verification failures come back as the typed StatusCode::kCorrupt;
// transient IO/mmap problems come back kUnavailable and must not be treated
// as corruption.
//
// Writes are crash-safe by construction: WriteGstFile writes a temp file in
// the destination directory, fsyncs it, rename(2)s it over the final name,
// and fsyncs the directory. A crash at any point leaves either no visible
// file or the complete published file — never a visible partial.
//
// Failpoints (tools/run_chaos.sh arms them): store.write.error,
// store.fsync.error, store.rename.error (crash window between temp write
// and publish), store.mmap.error, store.verify.corrupt.
#ifndef GRAPHALIGN_STORE_GST_H_
#define GRAPHALIGN_STORE_GST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "graph/graph.h"

namespace graphalign {

inline constexpr char kGstMagic[4] = {'G', 'S', 'T', '1'};
inline constexpr uint32_t kGstVersion = 1;
inline constexpr size_t kGstPreambleBytes = 104;

// Decoded preamble fields, reported alongside the Graph on open.
struct GstInfo {
  int num_nodes = 0;
  int64_t num_edges = 0;
  uint64_t content_hash = 0;
  uint64_t file_bytes = 0;
};

// Serializes `g` into GST1 bytes. Deterministic: the same graph always
// yields the same bytes.
std::string EncodeGst(const Graph& g);

// Verifies and opens GST1 bytes already in memory (used by the fuzz suite
// and as the core of OpenGstFile). The returned Graph's CSR arrays point
// into `bytes`; `backing` must own them and is held for the Graph's
// lifetime. `bytes` must be 8-byte aligned (mmap regions and heap strings
// are). Any integrity or structure violation returns kCorrupt.
Result<Graph> OpenGstBytes(std::string_view bytes,
                           std::shared_ptr<const void> backing,
                           GstInfo* info = nullptr);

// mmaps `path` read-only and opens it via OpenGstBytes. kNotFound when the
// path does not exist, kUnavailable on IO/mmap trouble, kCorrupt when the
// bytes fail verification.
Result<Graph> OpenGstFile(const std::string& path, GstInfo* info = nullptr);

// Atomically publishes `g` at `path` (temp + fsync + rename + dir fsync).
Status WriteGstFile(const Graph& g, const std::string& path);

}  // namespace graphalign

#endif  // GRAPHALIGN_STORE_GST_H_
