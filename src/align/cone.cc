#include "align/cone.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "align/isorank.h"
#include "common/parallel.h"
#include "linalg/csr.h"
#include "linalg/eigen_sym.h"
#include "linalg/kdtree.h"
#include "linalg/sinkhorn.h"
#include "linalg/svd.h"

namespace graphalign {

namespace {

// Proximity embedding: top-d eigenpairs of M = sum_{r=1..T} Ahat^r / T,
// scaled by sqrt(|lambda|). Ahat is the symmetric normalized adjacency.
Result<DenseMatrix> ProximityEmbedding(const Graph& g, int dim, int window,
                                       uint64_t seed,
                                       const Deadline& deadline) {
  const int n = g.num_nodes();
  // Clamp well below n: with d ~ n the Procrustes rotation is flexible
  // enough to map anything onto anything and alignment signal vanishes.
  const int d = std::max(2, std::min(dim, n / 3));
  const CsrMatrix ahat = g.SymNormalizedAdjacencyCsr();
  LinearOperator op = [&ahat, window](const std::vector<double>& x,
                                      std::vector<double>* y) {
    std::vector<double> power = x;
    y->assign(x.size(), 0.0);
    for (int r = 1; r <= window; ++r) {
      power = ahat.Multiply(power);
      for (size_t i = 0; i < x.size(); ++i) (*y)[i] += power[i];
    }
    for (double& v : *y) v /= window;
  };
  // The polynomial's extreme eigenvalues can be negative for bipartite-ish
  // graphs, but the dominant structure lives at the large end.
  GA_ASSIGN_OR_RETURN(
      SymmetricEigenResult eig,
      LanczosEigen(op, n, d, SpectrumEnd::kLargest,
                   std::min(n, std::max(2 * d + 20, 60)), seed, deadline));
  DenseMatrix y = eig.eigenvectors;  // n x d
  for (int j = 0; j < y.cols(); ++j) {
    const double s = std::sqrt(std::fabs(eig.eigenvalues[j]));
    for (int i = 0; i < n; ++i) y(i, j) *= s;
  }
  return y;
}

// Pads embedding matrices to a common column count (dims can differ when the
// graphs have very different sizes).
void PadColumns(DenseMatrix* m, int cols) {
  if (m->cols() == cols) return;
  DenseMatrix out(m->rows(), cols);
  for (int i = 0; i < m->rows(); ++i) {
    for (int j = 0; j < std::min(m->cols(), cols); ++j) {
      out(i, j) = (*m)(i, j);
    }
  }
  *m = std::move(out);
}

}  // namespace

Result<DenseMatrix> ConeAligner::AlignedEmbeddings(const Graph& g1,
                                                   const Graph& g2,
                                                   const Deadline& deadline) {
  GA_RETURN_IF_ERROR(ValidateInputs(g1, g2));
  if (options_.dim < 2 || options_.window < 1 ||
      options_.outer_iterations < 1) {
    return Status::InvalidArgument("CONE: bad options");
  }
  const int n1 = g1.num_nodes();
  const int n2 = g2.num_nodes();
  GA_ASSIGN_OR_RETURN(
      DenseMatrix y1,
      ProximityEmbedding(g1, options_.dim, options_.window, options_.seed,
                         deadline));
  GA_ASSIGN_OR_RETURN(
      DenseMatrix y2,
      ProximityEmbedding(g2, options_.dim, options_.window, options_.seed + 1,
                         deadline));
  const int d = std::max(y1.cols(), y2.cols());
  PadColumns(&y1, d);
  PadColumns(&y2, d);

  const std::vector<double> mu = UniformMarginal(n1);
  const std::vector<double> nu = UniformMarginal(n2);

  // Warm start (CONE initializes the alternation with a convex surrogate;
  // we use a degree-similarity transport, which serves the same purpose of
  // avoiding the trivial local optimum at Q = I): rotate Y1 onto the
  // barycentric projection of a degree-informed coupling.
  DenseMatrix q = DenseMatrix::Identity(d);
  {
    DenseMatrix prior = DegreeSimilarityPrior(g1, g2);
    auto t0 = SinkhornProject(prior, mu, nu, options_.sinkhorn_iterations,
                              /*tolerance=*/1e-6, deadline);
    if (t0.ok()) {
      DenseMatrix target = Multiply(*t0, y2);
      target.Scale(static_cast<double>(n1));
      auto q0 = ProcrustesRotation(y1, target, deadline);
      if (q0.ok()) q = *std::move(q0);
    }
  }
  for (int iter = 0; iter < options_.outer_iterations; ++iter) {
    // One Wasserstein/Procrustes alternation per check: each costs
    // O(n1 n2 d), so the overshoot is bounded by a single alternation.
    GA_RETURN_IF_EXPIRED(deadline, "CONE");
    DenseMatrix y1q = Multiply(y1, q);  // n1 x d
    // Cost: squared Euclidean distances.
    DenseMatrix cost(n1, n2);
    std::vector<double> norm2(n2, 0.0);
    for (int v = 0; v < n2; ++v) {
      const double* row = y2.Row(v);
      for (int j = 0; j < d; ++j) norm2[v] += row[j] * row[j];
    }
    ParallelFor(n1, [&](int64_t lo, int64_t hi) {
      for (int u = static_cast<int>(lo); u < hi; ++u) {
        const double* a = y1q.Row(u);
        double na = 0.0;
        for (int j = 0; j < d; ++j) na += a[j] * a[j];
        double* crow = cost.Row(u);
        for (int v = 0; v < n2; ++v) {
          const double* b = y2.Row(v);
          double dot = 0.0;
          for (int j = 0; j < d; ++j) dot += a[j] * b[j];
          crow[v] = na + norm2[v] - 2.0 * dot;
        }
      }
    }, std::max<int64_t>(2, 500'000 / (static_cast<int64_t>(n2) * d + 1)));
    // Normalize the cost scale so epsilon is a relative regularization
    // strength regardless of embedding magnitude.
    const double cost_scale = cost.Sum() / (static_cast<double>(n1) * n2);
    if (cost_scale > 0.0) cost.Scale(1.0 / cost_scale);
    SinkhornOptions sopt;
    sopt.epsilon = options_.epsilon;
    sopt.max_iters = options_.sinkhorn_iterations;
    GA_ASSIGN_OR_RETURN(DenseMatrix t,
                        SinkhornTransport(cost, mu, nu, sopt, deadline));
    // Procrustes: rotate Y1 onto the barycentric projection n1 * T * Y2.
    DenseMatrix target = Multiply(t, y2);
    target.Scale(static_cast<double>(n1));
    GA_ASSIGN_OR_RETURN(q, ProcrustesRotation(y1, target, deadline));
  }

  DenseMatrix stacked(n1 + n2, d);
  DenseMatrix y1q = Multiply(y1, q);
  for (int u = 0; u < n1; ++u) {
    for (int j = 0; j < d; ++j) stacked(u, j) = y1q(u, j);
  }
  for (int v = 0; v < n2; ++v) {
    for (int j = 0; j < d; ++j) stacked(n1 + v, j) = y2(v, j);
  }
  return stacked;
}

Result<DenseMatrix> ConeAligner::ComputeSimilarityImpl(
    const Graph& g1, const Graph& g2, const Deadline& deadline) {
  GA_ASSIGN_OR_RETURN(DenseMatrix y, AlignedEmbeddings(g1, g2, deadline));
  GA_RETURN_IF_EXPIRED(deadline, "CONE similarity");
  const int n1 = g1.num_nodes();
  const int n2 = g2.num_nodes();
  const int d = y.cols();
  DenseMatrix sim(n1, n2);
  ParallelFor(n1, [&](int64_t lo, int64_t hi) {
    for (int u = static_cast<int>(lo); u < hi; ++u) {
      const double* a = y.Row(u);
      double* out = sim.Row(u);
      for (int v = 0; v < n2; ++v) {
        const double* b = y.Row(n1 + v);
        double d2 = 0.0;
        for (int j = 0; j < d; ++j) {
          const double diff = a[j] - b[j];
          d2 += diff * diff;
        }
        out[v] = 1.0 / (1.0 + std::sqrt(d2));
      }
    }
  }, std::max<int64_t>(2, 500'000 / (static_cast<int64_t>(n2) * d + 1)));
  return sim;
}

Result<Alignment> ConeAligner::AlignNativeImpl(const Graph& g1,
                                               const Graph& g2,
                                               const Deadline& deadline) {
  GA_ASSIGN_OR_RETURN(DenseMatrix y, AlignedEmbeddings(g1, g2, deadline));
  GA_RETURN_IF_EXPIRED(deadline, "CONE nearest-neighbor");
  const int n1 = g1.num_nodes();
  const int n2 = g2.num_nodes();
  DenseMatrix targets(n2, y.cols());
  for (int v = 0; v < n2; ++v) {
    for (int j = 0; j < y.cols(); ++j) targets(v, j) = y(n1 + v, j);
  }
  KdTree tree(targets);
  Alignment align(n1, -1);
  for (int u = 0; u < n1; ++u) {
    align[u] = tree.Nearest(y.Row(u)).index;
  }
  return align;
}

}  // namespace graphalign
