file(REMOVE_RECURSE
  "libga_graph.a"
)
