# Empty compiler generated dependencies file for bench_ablation_grasp_disconnect.
# This may be replaced when dependencies are built.
