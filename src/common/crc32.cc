#include "common/crc32.h"

namespace graphalign {

namespace {

// 256-entry lookup table for the reflected Castagnoli polynomial
// 0x82F63B78, generated once on first use (cheap, and keeps the table out
// of the binary image).
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      entries[i] = crc;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable table;
  return table;
}

}  // namespace

uint32_t Crc32cUpdate(uint32_t crc, const void* data, size_t len) {
  const Crc32cTable& table = Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table.entries[(crc ^ p[i]) & 0xFFu];
  }
  return crc;
}

uint32_t Crc32c(std::string_view bytes) {
  return Crc32cFinish(Crc32cUpdate(Crc32cInit(), bytes.data(), bytes.size()));
}

}  // namespace graphalign
