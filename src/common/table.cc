#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace graphalign {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v, int precision) {
  if (std::isnan(v)) return "-";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << "\n";
  };
  emit(header_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

namespace {
std::string CsvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}
}  // namespace

void Table::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << CsvEscape(row[c]);
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

bool Table::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  PrintCsv(f);
  return static_cast<bool>(f);
}

}  // namespace graphalign
