#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "metrics/metrics.h"
#include "noise/noise.h"

namespace graphalign {
namespace {

Graph MustGraph(int n, const std::vector<Edge>& edges) {
  auto g = Graph::FromEdges(n, edges);
  GA_CHECK(g.ok());
  return *std::move(g);
}

Alignment IdentityAlignment(int n) {
  Alignment a(n);
  std::iota(a.begin(), a.end(), 0);
  return a;
}

TEST(AccuracyTest, PerfectAndPartial) {
  std::vector<int> truth = {2, 0, 1};
  EXPECT_DOUBLE_EQ(Accuracy({2, 0, 1}, truth), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({2, 1, 0}, truth), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({-1, -1, -1}, truth), 0.0);
}

TEST(MncTest, IdentityAlignmentOnIdenticalGraphsIsPerfect) {
  Graph g = MustGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_DOUBLE_EQ(MeanMatchedNeighborhoodConsistency(g, g,
                                                      IdentityAlignment(4)),
                   1.0);
}

TEST(MncTest, UnmatchedNodesScoreZero) {
  Graph g = MustGraph(3, {{0, 1}, {1, 2}});
  Alignment a = {0, 1, -1};
  double mnc = MeanMatchedNeighborhoodConsistency(g, g, a);
  EXPECT_LT(mnc, 1.0);
  EXPECT_GT(mnc, 0.0);
}

TEST(MncTest, HandComputedExample) {
  // G1: path 0-1-2. Alignment swaps 0 and 2 (an automorphism of the path),
  // so MNC must be perfect.
  Graph g = MustGraph(3, {{0, 1}, {1, 2}});
  Alignment a = {2, 1, 0};
  EXPECT_DOUBLE_EQ(MeanMatchedNeighborhoodConsistency(g, g, a), 1.0);
}

TEST(MncTest, BadAlignmentScoresLow) {
  // Star vs itself, but alignment maps center to a leaf.
  Graph g = MustGraph(4, {{0, 1}, {0, 2}, {0, 3}});
  Alignment a = {1, 0, 2, 3};
  EXPECT_LT(MeanMatchedNeighborhoodConsistency(g, g, a), 0.7);
}

TEST(EdgeMetricsTest, PerfectAlignment) {
  Graph g = MustGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  Alignment id = IdentityAlignment(5);
  EXPECT_DOUBLE_EQ(EdgeCorrectness(g, g, id), 1.0);
  EXPECT_DOUBLE_EQ(InducedConservedStructure(g, g, id), 1.0);
  EXPECT_DOUBLE_EQ(SymmetricSubstructureScore(g, g, id), 1.0);
}

TEST(EdgeMetricsTest, HandComputedOverlap) {
  // G1: triangle 0-1-2. G2: path 0-1-2 plus edge 0-2 missing.
  Graph g1 = MustGraph(3, {{0, 1}, {1, 2}, {0, 2}});
  Graph g2 = MustGraph(3, {{0, 1}, {1, 2}});
  Alignment id = IdentityAlignment(3);
  EdgeOverlap o = ComputeEdgeOverlap(g1, g2, id);
  EXPECT_EQ(o.source_edges, 3);
  EXPECT_EQ(o.preserved_edges, 2);
  EXPECT_EQ(o.induced_edges, 2);
  EXPECT_DOUBLE_EQ(EdgeCorrectness(g1, g2, id), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(InducedConservedStructure(g1, g2, id), 1.0);
  EXPECT_DOUBLE_EQ(SymmetricSubstructureScore(g1, g2, id), 2.0 / 3.0);
}

TEST(EdgeMetricsTest, IcsPenalizesDenseTargetRegion) {
  // G1: single edge into a K3 region of G2.
  Graph g1 = MustGraph(3, {{0, 1}});
  Graph g2 = MustGraph(3, {{0, 1}, {1, 2}, {0, 2}});
  Alignment a = {0, 1, 2};
  EXPECT_DOUBLE_EQ(EdgeCorrectness(g1, g2, a), 1.0);  // EC blind to density.
  EXPECT_DOUBLE_EQ(InducedConservedStructure(g1, g2, a), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(SymmetricSubstructureScore(g1, g2, a), 1.0 / 3.0);
}

TEST(EdgeMetricsTest, MetricsInvariantUnderConsistentRelabeling) {
  Rng rng(1);
  auto base = ErdosRenyi(30, 0.2, &rng);
  ASSERT_TRUE(base.ok());
  std::vector<int> perm = RandomPermutation(30, &rng);
  auto g2 = base->Permuted(perm);
  ASSERT_TRUE(g2.ok());
  // Aligning along the permutation is perfect.
  Alignment a(30);
  for (int i = 0; i < 30; ++i) a[i] = perm[i];
  EXPECT_DOUBLE_EQ(EdgeCorrectness(*base, *g2, a), 1.0);
  EXPECT_DOUBLE_EQ(SymmetricSubstructureScore(*base, *g2, a), 1.0);
  EXPECT_DOUBLE_EQ(MeanMatchedNeighborhoodConsistency(*base, *g2, a), 1.0);
}

TEST(EvaluateAlignmentTest, AggregatesAllMeasures) {
  Graph g = MustGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  Alignment id = IdentityAlignment(4);
  std::vector<int> truth = {0, 1, 2, 3};
  QualityReport r = EvaluateAlignment(g, g, id, truth);
  EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(r.mnc, 1.0);
  EXPECT_DOUBLE_EQ(r.ec, 1.0);
  EXPECT_DOUBLE_EQ(r.ics, 1.0);
  EXPECT_DOUBLE_EQ(r.s3, 1.0);
}

// ---------------------------------------------------------------------------
// Noise models.

TEST(NoiseTest, RemoveRandomEdgesCount) {
  Rng rng(2);
  auto g = ErdosRenyi(50, 0.2, &rng);
  ASSERT_TRUE(g.ok());
  auto h = RemoveRandomEdges(*g, 20, &rng);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_edges(), g->num_edges() - 20);
  // Removing more than |E| clamps.
  auto all = RemoveRandomEdges(*g, g->num_edges() + 100, &rng);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_edges(), 0);
  EXPECT_FALSE(RemoveRandomEdges(*g, -1, &rng).ok());
}

TEST(NoiseTest, RemovedEdgesAreSubset) {
  Rng rng(3);
  auto g = ErdosRenyi(30, 0.3, &rng);
  ASSERT_TRUE(g.ok());
  auto h = RemoveRandomEdges(*g, 10, &rng);
  ASSERT_TRUE(h.ok());
  for (const Edge& e : h->Edges()) EXPECT_TRUE(g->HasEdge(e.u, e.v));
}

TEST(NoiseTest, KeepConnectedPreservesConnectivity) {
  Rng rng(4);
  auto g = BarabasiAlbert(100, 2, &rng);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(g->IsConnected());
  auto h = RemoveRandomEdges(*g, 30, &rng, /*keep_connected=*/true);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->IsConnected());
  EXPECT_LE(h->num_edges(), g->num_edges() - 1);
}

TEST(NoiseTest, AddRandomEdgesCountAndNovelty) {
  Rng rng(5);
  auto g = ErdosRenyi(40, 0.1, &rng);
  ASSERT_TRUE(g.ok());
  auto h = AddRandomEdges(*g, 25, &rng);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_edges(), g->num_edges() + 25);
  for (const Edge& e : g->Edges()) EXPECT_TRUE(h->HasEdge(e.u, e.v));
}

TEST(NoiseTest, AddRandomEdgesClampsAtCompleteGraph) {
  Rng rng(6);
  Graph g = MustGraph(4, {{0, 1}});
  auto h = AddRandomEdges(g, 100, &rng);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_edges(), 6);
}

TEST(NoiseTest, OneWayProblemStructure) {
  Rng rng(7);
  auto base = BarabasiAlbert(60, 3, &rng);
  ASSERT_TRUE(base.ok());
  NoiseOptions opts;
  opts.type = NoiseType::kOneWay;
  opts.level = 0.10;
  auto prob = MakeAlignmentProblem(*base, opts, &rng);
  ASSERT_TRUE(prob.ok());
  // Source untouched; target lost ~10% of edges.
  EXPECT_EQ(prob->g1.num_edges(), base->num_edges());
  const int64_t k = std::llround(0.10 * base->num_edges());
  EXPECT_EQ(prob->g2.num_edges(), base->num_edges() - k);
  // Ground truth is a permutation and maps surviving edges correctly.
  std::vector<bool> seen(60, false);
  for (int t : prob->ground_truth) {
    ASSERT_GE(t, 0);
    ASSERT_FALSE(seen[t]);
    seen[t] = true;
  }
  for (const Edge& e : prob->g2.Edges()) {
    (void)e;  // Every g2 edge must be the image of some base edge.
  }
  int preserved = 0;
  for (const Edge& e : base->Edges()) {
    if (prob->g2.HasEdge(prob->ground_truth[e.u], prob->ground_truth[e.v])) {
      ++preserved;
    }
  }
  EXPECT_EQ(preserved, prob->g2.num_edges());
}

TEST(NoiseTest, MultiModalKeepsEdgeCount) {
  Rng rng(8);
  auto base = BarabasiAlbert(60, 3, &rng);
  ASSERT_TRUE(base.ok());
  NoiseOptions opts;
  opts.type = NoiseType::kMultiModal;
  opts.level = 0.10;
  auto prob = MakeAlignmentProblem(*base, opts, &rng);
  ASSERT_TRUE(prob.ok());
  EXPECT_EQ(prob->g2.num_edges(), base->num_edges());
  EXPECT_EQ(prob->g1.num_edges(), base->num_edges());
}

TEST(NoiseTest, TwoWayPerturbsBothGraphs) {
  Rng rng(9);
  auto base = BarabasiAlbert(60, 3, &rng);
  ASSERT_TRUE(base.ok());
  NoiseOptions opts;
  opts.type = NoiseType::kTwoWay;
  opts.level = 0.10;
  auto prob = MakeAlignmentProblem(*base, opts, &rng);
  ASSERT_TRUE(prob.ok());
  const int64_t k = std::llround(0.10 * base->num_edges());
  EXPECT_EQ(prob->g1.num_edges(), base->num_edges() - k);
  EXPECT_EQ(prob->g2.num_edges(), base->num_edges() - k);
}

TEST(NoiseTest, ZeroNoiseIsIsomorphicPair) {
  Rng rng(10);
  auto base = ErdosRenyi(40, 0.15, &rng);
  ASSERT_TRUE(base.ok());
  NoiseOptions opts;
  opts.level = 0.0;
  auto prob = MakeAlignmentProblem(*base, opts, &rng);
  ASSERT_TRUE(prob.ok());
  // Aligning along ground truth gives all metrics = 1.
  QualityReport r = EvaluateAlignment(prob->g1, prob->g2, prob->ground_truth,
                                      prob->ground_truth);
  EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(r.ec, 1.0);
  EXPECT_DOUBLE_EQ(r.s3, 1.0);
  EXPECT_DOUBLE_EQ(r.mnc, 1.0);
}

TEST(NoiseTest, NoPermuteKeepsIdentityTruth) {
  Rng rng(11);
  auto base = ErdosRenyi(20, 0.2, &rng);
  ASSERT_TRUE(base.ok());
  NoiseOptions opts;
  opts.level = 0.05;
  opts.permute = false;
  auto prob = MakeAlignmentProblem(*base, opts, &rng);
  ASSERT_TRUE(prob.ok());
  for (int i = 0; i < 20; ++i) EXPECT_EQ(prob->ground_truth[i], i);
}

TEST(NoiseTest, InvalidLevelRejected) {
  Rng rng(12);
  auto base = ErdosRenyi(20, 0.2, &rng);
  ASSERT_TRUE(base.ok());
  NoiseOptions opts;
  opts.level = 1.5;
  EXPECT_FALSE(MakeAlignmentProblem(*base, opts, &rng).ok());
}

TEST(NoiseTest, PairProblemRequiresSameSize) {
  Rng rng(13);
  auto a = ErdosRenyi(10, 0.3, &rng);
  auto b = ErdosRenyi(12, 0.3, &rng);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(MakeProblemFromPair(*a, *b, &rng).ok());
  auto c = ErdosRenyi(10, 0.3, &rng);
  ASSERT_TRUE(c.ok());
  auto prob = MakeProblemFromPair(*a, *c, &rng);
  ASSERT_TRUE(prob.ok());
  EXPECT_EQ(prob->g1.num_edges(), a->num_edges());
  EXPECT_EQ(prob->g2.num_edges(), c->num_edges());
}

TEST(NoiseTest, NoiseTypeNames) {
  EXPECT_STREQ(NoiseTypeName(NoiseType::kOneWay), "one-way");
  EXPECT_STREQ(NoiseTypeName(NoiseType::kMultiModal), "multi-modal");
  EXPECT_STREQ(NoiseTypeName(NoiseType::kTwoWay), "two-way");
}

}  // namespace
}  // namespace graphalign
