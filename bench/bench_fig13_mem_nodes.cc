// Figure 13: peak resident memory vs node count, measured per run in a
// forked child (§6.6).
#include "scalability.h"

int main(int argc, char** argv) {
  graphalign::BenchArgs probe = graphalign::ParseBenchArgs(argc, argv);
  return graphalign::bench::RunScalabilitySweep(
      "Figure 13", "peak memory vs number of nodes",
      graphalign::bench::NodeSweep(probe.full),
      graphalign::bench::SweepMetric::kMemory, argc, argv);
}
