#include "align/aligner.h"

#include "align/cone.h"
#include "align/graal.h"
#include "align/grasp.h"
#include "align/gwl.h"
#include "align/isorank.h"
#include "align/lrea.h"
#include "align/nsd.h"
#include "align/regal.h"
#include "align/sgwl.h"

namespace graphalign {

Status Aligner::ValidateInputs(const Graph& g1, const Graph& g2) {
  if (g1.num_nodes() == 0 || g2.num_nodes() == 0) {
    return Status::InvalidArgument("aligner: empty input graph");
  }
  return Status::Ok();
}

Result<DenseMatrix> Aligner::ComputeSimilarity(const Graph& g1,
                                               const Graph& g2,
                                               const Deadline& deadline) {
  // Zero-budget fast fail: an already-expired deadline returns before any
  // algorithm-specific work begins.
  GA_RETURN_IF_EXPIRED(deadline, name());
  return ComputeSimilarityImpl(g1, g2, deadline);
}

Result<Alignment> Aligner::Align(const Graph& g1, const Graph& g2,
                                 AssignmentMethod method,
                                 const Deadline& deadline) {
  GA_ASSIGN_OR_RETURN(DenseMatrix sim, ComputeSimilarity(g1, g2, deadline));
  return ExtractAlignment(sim, method, deadline);
}

Result<Alignment> Aligner::AlignNative(const Graph& g1, const Graph& g2,
                                       const Deadline& deadline) {
  GA_RETURN_IF_EXPIRED(deadline, name());
  return AlignNativeImpl(g1, g2, deadline);
}

Result<std::unique_ptr<Aligner>> MakeAligner(const std::string& name) {
  if (name == "IsoRank") return std::unique_ptr<Aligner>(new IsoRankAligner());
  if (name == "GRAAL") return std::unique_ptr<Aligner>(new GraalAligner());
  if (name == "NSD") return std::unique_ptr<Aligner>(new NsdAligner());
  if (name == "LREA") return std::unique_ptr<Aligner>(new LreaAligner());
  if (name == "REGAL") return std::unique_ptr<Aligner>(new RegalAligner());
  if (name == "GWL") return std::unique_ptr<Aligner>(new GwlAligner());
  if (name == "S-GWL") return std::unique_ptr<Aligner>(new SgwlAligner());
  if (name == "CONE") return std::unique_ptr<Aligner>(new ConeAligner());
  if (name == "GRASP") return std::unique_ptr<Aligner>(new GraspAligner());
  return Status::NotFound("unknown aligner: " + name);
}

std::vector<std::string> AllAlignerNames() {
  return {"IsoRank", "GRAAL", "NSD",  "LREA", "REGAL",
          "GWL",     "S-GWL", "CONE", "GRASP"};
}

}  // namespace graphalign
