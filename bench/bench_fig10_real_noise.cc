// Figure 10: accuracy, MNC, and S3 on graphs with REAL ground-truth noise
// (§6.5): the last snapshot of a temporal network matched against versions
// with {80, 85, 90, 99}% of its edges (HighSchool, Voles protocol), and a
// base PPI network matched against five progressively perturbed variants
// (MultiMagna protocol).
//
// Expected shape: GWL and CONE lead; IsoRank strong on MultiMagna (it was
// designed for PPI networks); the rest do well only when the graphs barely
// differ (99% snapshots / first variants).
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "datasets/datasets.h"
#include "metrics/metrics.h"

namespace graphalign {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  bench::Banner("Figure 10",
                "real-noise protocols: temporal snapshots and PPI variants",
                args);
  const double scale = args.full ? 1.0 : 0.5;
  Rng rng(args.seed);

  Journal journal = bench::MustOpenJournal(args);
  Table t({"dataset", "variant", "algorithm", "accuracy", "mnc", "s3"});

  // Temporal protocol: match the full graph against earlier snapshots.
  for (const std::string& dataset : {"HighSchool", "Voles"}) {
    auto base = MakeStandIn(dataset, args.seed, scale);
    GA_CHECK(base.ok());
    auto snaps = EvolvingSnapshots(*base, {0.80, 0.85, 0.90, 0.99}, &rng);
    GA_CHECK(snaps.ok());
    const bool sparse = base->AverageDegree() < 20.0;
    const char* labels[] = {"80%", "85%", "90%", "99%"};
    for (size_t s = 0; s < snaps->size(); ++s) {
      Rng prng = rng.Fork();
      auto problem = MakeProblemFromPair(*base, (*snaps)[s], &prng);
      GA_CHECK(problem.ok());
      for (const std::string& name : SelectedAlgorithms(args)) {
        auto aligner = bench::MakeBenchAligner(name, sparse);
        bench::JournaledRow(
            &t, &journal, bench::CellKey({dataset, labels[s], name}), [&] {
              RunOutcome out =
                  RunAligner(aligner.get(), *problem,
                             AssignmentMethod::kJonkerVolgenant, args);
              return std::vector<std::string>{
                  dataset, labels[s], name, FormatAccuracy(out),
                  FormatOutcome(out, out.quality.mnc),
                  FormatOutcome(out, out.quality.s3)};
            });
      }
    }
  }

  // PPI protocol: base vs five noisier variants.
  {
    auto base = MakeStandIn("MultiMagna", args.seed, scale);
    GA_CHECK(base.ok());
    auto variants = MultiMagnaVariants(*base, 5, 0.05, &rng);
    GA_CHECK(variants.ok());
    for (size_t v = 0; v < variants->size(); ++v) {
      Rng prng = rng.Fork();
      auto problem = MakeProblemFromPair(*base, (*variants)[v], &prng);
      GA_CHECK(problem.ok());
      const std::string variant = "variant" + std::to_string(v + 1);
      for (const std::string& name : SelectedAlgorithms(args)) {
        auto aligner = bench::MakeBenchAligner(name, /*sparse_graph=*/true);
        bench::JournaledRow(
            &t, &journal, bench::CellKey({"MultiMagna", variant, name}), [&] {
              RunOutcome out =
                  RunAligner(aligner.get(), *problem,
                             AssignmentMethod::kJonkerVolgenant, args);
              return std::vector<std::string>{
                  "MultiMagna", variant, name, FormatAccuracy(out),
                  FormatOutcome(out, out.quality.mnc),
                  FormatOutcome(out, out.quality.s3)};
            });
      }
    }
  }
  bench::Emit(t, args);
  return 0;
}

}  // namespace
}  // namespace graphalign

int main(int argc, char** argv) { return graphalign::Main(argc, argv); }
