// Figure 12: similarity-stage runtime vs average degree (10..10^4 at paper
// scale, n = 2^14) on configuration-model graphs (§6.6).
#include "scalability.h"

int main(int argc, char** argv) {
  graphalign::BenchArgs probe = graphalign::ParseBenchArgs(argc, argv);
  return graphalign::bench::RunScalabilitySweep(
      "Figure 12", "runtime vs average degree (assignment excluded)",
      graphalign::bench::DegreeSweep(probe.full),
      graphalign::bench::SweepMetric::kTime, argc, argv);
}
