// Edge-list graph IO (whitespace-separated "u v" per line, '#' or '%'
// comments), the format used by SNAP / KONECT / network-repository dumps.
#ifndef GRAPHALIGN_GRAPH_IO_H_
#define GRAPHALIGN_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace graphalign {

// What ReadEdgeList silently altered while loading. Dropped self-loops do
// not fail the load (the paper's loaders drop them too) but they are real
// data: the count lets `graphalign stats` and tests surface the difference
// between the file and the graph.
struct LoadStats {
  int64_t self_loops_dropped = 0;
};

// Reads an edge list. Node ids may be arbitrary non-negative ints and are
// compacted to 0..n-1 preserving order of first appearance; `num_nodes`
// (if positive) forces at least that many nodes. When `stats` is non-null it
// receives what the loader silently altered (currently: dropped self-loops).
//
// Malformed input never aborts: a line that is not exactly two integer ids,
// an id that overflows long long, a negative id, or a duplicate edge
// (either orientation) yields InvalidArgument naming "path:line". Self-loops
// are dropped (and counted in `stats`), matching the paper's loaders.
Result<Graph> ReadEdgeList(const std::string& path, int num_nodes = 0,
                           LoadStats* stats = nullptr);

// Writes "u v" per line for every edge with u < v.
Status WriteEdgeList(const Graph& g, const std::string& path);

}  // namespace graphalign

#endif  // GRAPHALIGN_GRAPH_IO_H_
