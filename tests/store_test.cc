// Graph store unit suite (DESIGN.md §15): the GST1 on-disk format and the
// content-addressed GraphStore repository. Adversarial bytes — truncation,
// bit flips, self-consistent-but-lying section tables — must come back as
// typed kCorrupt, never as a crash or a silently wrong Graph; the chaos
// suite (store_chaos_test.cc) covers the injected-fault and daemon paths.
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/random.h"
#include "common/status.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "store/graph_store.h"
#include "store/gst.h"

namespace graphalign {
namespace {

Graph TestGraph(uint64_t seed, int n = 40) {
  Rng rng(seed);
  auto g = ErdosRenyi(n, 0.15, &rng);
  GA_CHECK(g.ok());
  return *std::move(g);
}

// Opens encoded bytes without file IO; the backing keeps `bytes` alive.
Result<Graph> OpenBytes(const std::string& bytes, GstInfo* info = nullptr) {
  auto owned = std::make_shared<std::string>(bytes);
  return OpenGstBytes(*owned, owned, info);
}

class StoreDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/ga_store_testXXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    // Best-effort sweep of everything a test may have left behind.
    std::string cmd = "rm -rf '" + dir_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// GST1 encode/open round trips.

TEST(GstTest, EncodeOpenRoundTripPreservesEverything) {
  const Graph g = TestGraph(7);
  auto mapped = OpenBytes(EncodeGst(g));
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->num_nodes(), g.num_nodes());
  EXPECT_EQ(mapped->num_edges(), g.num_edges());
  EXPECT_EQ(mapped->ContentHash(), g.ContentHash());
  for (int u = 0; u < g.num_nodes(); ++u) {
    auto a = g.Neighbors(u);
    auto b = mapped->Neighbors(u);
    ASSERT_EQ(a.size(), b.size()) << "node " << u;
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(GstTest, EmptyAndEdgelessGraphsRoundTrip) {
  for (const Graph& g :
       {Graph(), *Graph::FromEdges(5, std::vector<Edge>{})}) {
    GstInfo info;
    auto mapped = OpenBytes(EncodeGst(g), &info);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    EXPECT_EQ(mapped->num_nodes(), g.num_nodes());
    EXPECT_EQ(mapped->num_edges(), 0);
    EXPECT_EQ(info.content_hash, g.ContentHash());
  }
}

TEST(GstTest, InfoReportsHeaderFields) {
  const Graph g = TestGraph(8);
  const std::string bytes = EncodeGst(g);
  GstInfo info;
  ASSERT_TRUE(OpenBytes(bytes, &info).ok());
  EXPECT_EQ(info.num_nodes, g.num_nodes());
  EXPECT_EQ(info.num_edges, g.num_edges());
  EXPECT_EQ(info.content_hash, g.ContentHash());
  EXPECT_EQ(info.file_bytes, bytes.size());
}

// ---------------------------------------------------------------------------
// Integrity: every single-bit flip anywhere in the file must be caught.

TEST(GstTest, AnySingleBitFlipIsTypedCorrupt) {
  const Graph g = TestGraph(9, 20);
  const std::string good = EncodeGst(g);
  ASSERT_TRUE(OpenBytes(good).ok());
  for (size_t pos = 0; pos < good.size(); ++pos) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x10);
    auto mapped = OpenBytes(bad);
    ASSERT_FALSE(mapped.ok()) << "flip at byte " << pos << " went unnoticed";
    EXPECT_EQ(mapped.status().code(), StatusCode::kCorrupt)
        << "flip at byte " << pos << ": " << mapped.status().ToString();
  }
}

TEST(GstTest, EveryTruncationIsTypedCorrupt) {
  const Graph g = TestGraph(10, 20);
  const std::string good = EncodeGst(g);
  // Truncate at 8-byte steps (the opener requires 8-alignment; unaligned
  // lengths cannot occur via mmap of our own files).
  for (size_t len = 0; len < good.size(); len += 8) {
    auto mapped = OpenBytes(good.substr(0, len));
    ASSERT_FALSE(mapped.ok()) << "truncation to " << len << " bytes opened";
    EXPECT_EQ(mapped.status().code(), StatusCode::kCorrupt) << len;
  }
}

TEST(GstTest, TrailingGarbageIsTypedCorrupt) {
  const std::string padded = EncodeGst(TestGraph(11)) + std::string(8, '\0');
  auto mapped = OpenBytes(padded);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kCorrupt);
}

TEST(GstTest, ForeignMagicIsTypedCorrupt) {
  std::string bytes = EncodeGst(TestGraph(12));
  std::memcpy(bytes.data(), "GAR1", 4);  // A cache-log record, say.
  auto mapped = OpenBytes(bytes);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kCorrupt);
}

// A file whose CRCs are all self-consistent but whose CSR payload lies
// (out-of-range neighbor) must still be rejected: CRCs authenticate bytes,
// structural validation authenticates meaning. An attacker (or a confused
// writer) can always stamp matching CRCs over bad structure.
TEST(GstTest, ConsistentCrcsWithLyingPayloadStillCorrupt) {
  auto g = Graph::FromEdges(3, std::vector<Edge>{{0, 1}, {1, 2}});
  ASSERT_TRUE(g.ok());
  std::string bytes = EncodeGst(*g);
  // Point the last adjacency entry at node 9 (out of range for n=3), then
  // re-stamp the adjacency section CRC (entry 2 of the table, crc field at
  // offset 40 + 32 + 4) and the header CRC (offset 32, computed over the
  // first 104 bytes with its own field zeroed) so every checksum matches.
  const size_t adj_pos = bytes.size() - sizeof(int);
  const int liar = 9;
  std::memcpy(bytes.data() + adj_pos, &liar, sizeof(liar));
  uint64_t adj_off = 0, adj_len = 0;
  std::memcpy(&adj_off, bytes.data() + 40 + 32 + 8, sizeof(adj_off));
  std::memcpy(&adj_len, bytes.data() + 40 + 32 + 16, sizeof(adj_len));
  const uint32_t adj_crc =
      Crc32c(std::string_view(bytes.data() + adj_off, adj_len));
  std::memcpy(bytes.data() + 40 + 32 + 4, &adj_crc, sizeof(adj_crc));
  std::string preamble(bytes.data(), kGstPreambleBytes);
  std::memset(preamble.data() + 32, 0, sizeof(uint32_t));
  const uint32_t header_crc = Crc32c(preamble);
  std::memcpy(bytes.data() + 32, &header_crc, sizeof(header_crc));

  auto mapped = OpenBytes(bytes);
  ASSERT_FALSE(mapped.ok()) << "out-of-range neighbor decoded";
  EXPECT_EQ(mapped.status().code(), StatusCode::kCorrupt)
      << mapped.status().ToString();
  EXPECT_NE(mapped.status().message().find("neighbor"), std::string::npos)
      << mapped.status().ToString();
}

// ---------------------------------------------------------------------------
// File round trip and atomic publish hygiene.

TEST_F(StoreDirTest, WriteAndOpenFileRoundTrip) {
  const Graph g = TestGraph(13);
  const std::string path = dir_ + "/g.gst";
  ASSERT_TRUE(WriteGstFile(g, path).ok());
  GstInfo info;
  auto mapped = OpenGstFile(path, &info);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->ContentHash(), g.ContentHash());
  EXPECT_EQ(info.content_hash, g.ContentHash());
  // No temp leftovers after a clean publish.
  std::string cmd = "ls '" + dir_ + "' | grep -q tmp-";
  EXPECT_NE(std::system(cmd.c_str()), 0);
}

TEST_F(StoreDirTest, OpenMissingFileIsNotFound) {
  auto mapped = OpenGstFile(dir_ + "/absent.gst");
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kNotFound);
}

TEST_F(StoreDirTest, OpenEmptyFileIsCorrupt) {
  const std::string path = dir_ + "/empty.gst";
  { std::ofstream f(path); }
  auto mapped = OpenGstFile(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kCorrupt);
}

// ---------------------------------------------------------------------------
// GraphStore repository semantics.

TEST_F(StoreDirTest, PutGetHasAndDedupe) {
  auto store = GraphStore::Open(dir_);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  const Graph g = TestGraph(14);

  bool already = true;
  auto hash = (*store)->Put(g, &already);
  ASSERT_TRUE(hash.ok()) << hash.status().ToString();
  EXPECT_EQ(*hash, g.ContentHash());
  EXPECT_FALSE(already);
  EXPECT_TRUE((*store)->Has(*hash));

  // Second Put of identical content dedupes.
  auto again = (*store)->Put(g, &already);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *hash);
  EXPECT_TRUE(already);

  auto got = (*store)->Get(*hash);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->ContentHash(), g.ContentHash());
  EXPECT_EQ(got->num_edges(), g.num_edges());

  const GraphStore::Counters c = (*store)->counters();
  EXPECT_EQ(c.puts, 2u);
  EXPECT_EQ(c.gets, 1u);
  EXPECT_EQ(c.corrupt, 0u);
  EXPECT_EQ(c.missing, 0u);
}

TEST_F(StoreDirTest, GetMissingIsNotFoundAndCounted) {
  auto store = GraphStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  auto got = (*store)->Get(0xdeadbeefu);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*store)->counters().missing, 1u);
}

TEST_F(StoreDirTest, ListIsSortedAndSkipsStrangers) {
  auto store = GraphStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  auto h1 = (*store)->Put(TestGraph(15));
  auto h2 = (*store)->Put(TestGraph(16));
  ASSERT_TRUE(h1.ok() && h2.ok());
  // A foreign file in the directory is not an entry.
  { std::ofstream f(dir_ + "/README.txt"); f << "not a graph"; }
  auto entries = (*store)->List();
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_LT((*entries)[0].hash, (*entries)[1].hash);
  EXPECT_FALSE((*entries)[0].corrupt);
  EXPECT_GT((*entries)[0].file_bytes, 0u);
}

TEST_F(StoreDirTest, BitFlipQuarantinesOnGetThenReuploadHeals) {
  auto store = GraphStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  const Graph g = TestGraph(17);
  auto hash = (*store)->Put(g);
  ASSERT_TRUE(hash.ok());
  const std::string path = dir_ + "/" + GraphStore::HashName(*hash) + ".gst";

  // Rot one byte in the middle of the file.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(200);
    f.put('\x7f');
  }
  auto got = (*store)->Get(*hash);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorrupt)
      << got.status().ToString();
  EXPECT_NE(got.status().message().find("quarantined"), std::string::npos);

  // Quarantined: original gone, corpse kept, entry no longer served.
  struct stat st;
  EXPECT_NE(::stat(path.c_str(), &st), 0);
  EXPECT_EQ(::stat((path + ".corrupt").c_str(), &st), 0);
  EXPECT_FALSE((*store)->Has(*hash));
  auto after = (*store)->Get(*hash);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*store)->counters().corrupt, 1u);

  // Re-upload publishes a fresh good copy under the original name.
  auto reput = (*store)->Put(g);
  ASSERT_TRUE(reput.ok());
  auto healed = (*store)->Get(*hash);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(healed->ContentHash(), g.ContentHash());
}

TEST_F(StoreDirTest, FsckCatchesRenamedEntryWhoseNameLies) {
  auto store = GraphStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  auto hash = (*store)->Put(TestGraph(18));
  ASSERT_TRUE(hash.ok());
  // The file's bytes are perfectly valid — but the *name* commits to a
  // different content hash. A cheap Get catches this via the header; fsck
  // additionally recomputes the hash from the adjacency itself.
  const std::string real = dir_ + "/" + GraphStore::HashName(*hash) + ".gst";
  const std::string liar = dir_ + "/0123456789abcdef.gst";
  ASSERT_EQ(::rename(real.c_str(), liar.c_str()), 0);

  auto report = (*store)->Fsck();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->checked, 1);
  EXPECT_EQ(report->ok, 0);
  EXPECT_EQ(report->corrupt, 1);
  ASSERT_EQ(report->quarantined.size(), 1u);
  EXPECT_EQ(report->quarantined[0], liar + ".corrupt");
}

TEST_F(StoreDirTest, FsckPassesCleanStoreAndGcSweepsCorpses) {
  auto store = GraphStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  auto hash = (*store)->Put(TestGraph(19));
  ASSERT_TRUE(hash.ok());
  auto clean = (*store)->Fsck();
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->checked, 1);
  EXPECT_EQ(clean->ok, 1);
  EXPECT_EQ(clean->corrupt, 0);

  // Manufacture a corpse and a publish leftover; gc removes exactly those.
  { std::ofstream f(dir_ + "/ffffffffffffffff.gst.corrupt"); f << "corpse"; }
  { std::ofstream f(dir_ + "/abc.gst.tmp-99-1"); f << "leftover"; }
  auto gc = (*store)->Gc();
  ASSERT_TRUE(gc.ok()) << gc.status().ToString();
  EXPECT_EQ(gc->removed, 2);
  EXPECT_GT(gc->bytes_freed, 0u);
  EXPECT_TRUE((*store)->Has(*hash));  // Live entries untouched.
}

TEST(GraphStoreTest, HashNameRoundTripsAndParseIsStrict) {
  const uint64_t hash = 0x0123456789abcdefull;
  const std::string name = GraphStore::HashName(hash);
  EXPECT_EQ(name, "0123456789abcdef");
  auto parsed = GraphStore::ParseHashName(name);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, hash);
  for (const char* bad : {"", "0123", "0123456789abcdeg", "0123456789abcdef0",
                          "0x123456789abcde", " 123456789abcdef"}) {
    EXPECT_FALSE(GraphStore::ParseHashName(bad).ok()) << bad;
  }
}

TEST(GraphStoreTest, OpenRejectsUnusableDirectory) {
  // A path whose parent is a *file* can never become a directory.
  char tmpl[] = "/tmp/ga_store_fileXXXXXX";
  const int fd = ::mkstemp(tmpl);
  ASSERT_GE(fd, 0);
  ::close(fd);
  auto store = GraphStore::Open(std::string(tmpl) + "/sub");
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kUnavailable);
  ::unlink(tmpl);
}

// Mapped graphs stay valid after the store (and its cache) is destroyed —
// the Graph's backing keeps the mapping alive.
TEST_F(StoreDirTest, MappedGraphOutlivesStore) {
  const Graph g = TestGraph(23);
  Graph mapped;
  {
    auto store = GraphStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    auto hash = (*store)->Put(g);
    ASSERT_TRUE(hash.ok());
    auto got = (*store)->Get(*hash);
    ASSERT_TRUE(got.ok());
    mapped = *got;
  }
  EXPECT_EQ(mapped.ContentHash(), g.ContentHash());
  int64_t degree_sum = 0;
  for (int u = 0; u < mapped.num_nodes(); ++u) {
    degree_sum += static_cast<int64_t>(mapped.Neighbors(u).size());
  }
  EXPECT_EQ(degree_sum, 2 * g.num_edges());
}

}  // namespace
}  // namespace graphalign
