#!/usr/bin/env bash
# Chaos walkthrough (DESIGN.md §12): arms every compiled-in failpoint site
# through GRAPHALIGN_FAILPOINTS and asserts each injected fault produces a
# *typed* outcome — a documented exit code, a degraded-but-complete result,
# or a contained CRASH — never an unhandled abort, a hang, or silence:
#   1. every site x {error, delay-ms} through an isolated align: exit code
#      must stay in the documented set and the run must finish in time,
#   2. crash mode on the similarity path under --isolate: typed exit 4,
#   3. a forced eigensolver non-convergence: degraded result, exit 0,
#   4. a daemon armed with server.busy=once: submit --retries rides through
#      BUSY; SIGTERM then drains it cleanly,
#   5. the graph store (DESIGN.md §15): a torn write publishes nothing and
#      gc sweeps the leftover; bit rot is caught by verify, quarantined,
#      and healed by re-import; a daemon whose --store-dir is unusable
#      degrades to the wire-graph path instead of dying.
#
# Usage: tools/run_chaos.sh [path-to-graphalign-binary]
set -euo pipefail

TOOL="${1:-build/src/cli/graphalign}"
if [[ ! -x "$TOOL" ]]; then
  echo "graphalign binary not found: $TOOL (build it first)" >&2
  exit 1
fi

WORK="$(mktemp -d)"
SOCK="$WORK/ga.sock"
DAEMON_PID=""
cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2> /dev/null; then
    kill -9 "$DAEMON_PID" 2> /dev/null || true
    wait "$DAEMON_PID" 2> /dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== 0/5 generate a graph pair =="
"$TOOL" generate --model er --n 60 --p 0.1 --seed 7 --out "$WORK/g1.txt"
"$TOOL" perturb --in "$WORK/g1.txt" --noise one-way --level 0.05 --seed 8 \
  --out "$WORK/g2.txt"

# Documented align exit codes: 0 ok, 1 error, 3 DNF, 4 crash, 5 OOM,
# 7 numerical. 2 (usage), >=124 (timeout(1): the run hung), 139 (uncontained
# SIGSEGV) and anything undocumented fail the walkthrough.
check_typed_exit() {
  local rc=$1 what=$2
  case "$rc" in
    0 | 1 | 3 | 4 | 5 | 7) return 0 ;;
  esac
  echo "untyped outcome (rc=$rc) for: $what" >&2
  return 1
}

echo "== 1/5 every site x {error, delay}: typed outcomes only =="
SITES="$("$TOOL" failpoints)"
[[ -n "$SITES" ]] || { echo "failpoints listing is empty" >&2; exit 1; }
for site in $SITES; do
  for mode in error delay-ms:10; do
    rc=0
    GRAPHALIGN_FAILPOINTS="$site=$mode" timeout 120 \
      "$TOOL" align --g1 "$WORK/g1.txt" --g2 "$WORK/g2.txt" \
      --algo GRASP --isolate > "$WORK/cell.out" 2> "$WORK/cell.err" || rc=$?
    check_typed_exit "$rc" "$site=$mode" || {
      cat "$WORK/cell.out" "$WORK/cell.err" >&2; exit 1; }
  done
done
echo "all $(echo "$SITES" | wc -l) sites yielded typed outcomes"

echo "== 2/5 crash mode is contained under isolation =="
rc=0
GRAPHALIGN_FAILPOINTS="align.similarity.error=crash" timeout 120 \
  "$TOOL" align --g1 "$WORK/g1.txt" --g2 "$WORK/g2.txt" \
  --algo NSD --isolate > "$WORK/crash.out" 2> "$WORK/crash.err" || rc=$?
if [[ "$rc" != 4 ]] || ! grep -q "CRASH" "$WORK/crash.err"; then
  echo "expected contained CRASH (rc=4), got rc=$rc:" >&2
  cat "$WORK/crash.out" "$WORK/crash.err" >&2
  exit 1
fi
echo "injected SIGSEGV contained as a typed CRASH"

echo "== 3/5 forced eigensolver failure degrades gracefully =="
GRAPHALIGN_FAILPOINTS="linalg.eigen.no-converge=error" \
  "$TOOL" align --g1 "$WORK/g1.txt" --g2 "$WORK/g2.txt" \
  --algo GRASP > "$WORK/degraded.out"
grep -q "\[degraded:" "$WORK/degraded.out" || {
  echo "degraded run did not report its fallback:" >&2
  cat "$WORK/degraded.out" >&2
  exit 1
}
echo "degraded run completed and reported: $(grep -o '\[degraded:.*' "$WORK/degraded.out")"

echo "== 4/5 daemon: BUSY ridden out by --retries, drained by SIGTERM =="
GRAPHALIGN_FAILPOINTS="server.busy=once" \
  "$TOOL" serve --socket "$SOCK" --workers 1 > "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
# Readiness via the client's own --retries backoff (it also rides through
# the armed once-BUSY); between rounds, fail fast with the daemon log if
# the process died instead of burning the whole retry budget.
up=0
for _ in 1 2 3; do
  if "$TOOL" submit --socket "$SOCK" --ping --retries 4 > /dev/null 2>&1; then
    up=1
    break
  fi
  kill -0 "$DAEMON_PID" 2> /dev/null || break
done
if [[ "$up" != 1 ]]; then
  echo "daemon never answered despite retries (or died):" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
fi

kill -TERM "$DAEMON_PID"
for _ in $(seq 1 50); do
  kill -0 "$DAEMON_PID" 2> /dev/null || break
  sleep 0.1
done
if kill -0 "$DAEMON_PID" 2> /dev/null; then
  echo "daemon did not drain on SIGTERM" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
fi
wait "$DAEMON_PID" 2> /dev/null || true
DAEMON_PID=""
grep -q "draining" "$WORK/daemon.log" || {
  echo "daemon log missing the draining notice:" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
}
grep -q "daemon stopped" "$WORK/daemon.log" || {
  echo "daemon log missing clean-stop line:" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
}
echo "daemon rode out injected BUSY and drained cleanly on SIGTERM"

echo "== 5/5 graph store: torn write, bit rot, unusable store dir =="
STORE="$WORK/store"

# (a) Torn write: the rename failpoint dies in the crash window between the
# fsynced temp file and the publish. Nothing may become visible, and gc must
# sweep the leftover temp.
rc=0
GRAPHALIGN_FAILPOINTS="store.rename.error=once" \
  "$TOOL" store import --dir "$STORE" --in "$WORK/g1.txt" \
  > "$WORK/torn.out" 2>&1 || rc=$?
if [[ "$rc" == 0 ]]; then
  echo "torn write reported success:" >&2
  cat "$WORK/torn.out" >&2
  exit 1
fi
if compgen -G "$STORE/*.gst" > /dev/null; then
  echo "torn write published a visible entry:" >&2
  ls "$STORE" >&2
  exit 1
fi
"$TOOL" store gc --dir "$STORE" > "$WORK/gc.out"
grep -q "removed=1" "$WORK/gc.out" || {
  echo "gc did not sweep the torn temp file:" >&2
  cat "$WORK/gc.out" >&2; ls "$STORE" >&2
  exit 1
}
echo "torn write published nothing; gc swept the leftover temp"

# (b) Bit rot: flip one byte of the published entry. verify must report it
# corrupt (exit 1) and quarantine the corpse aside; re-import heals.
"$TOOL" store import --dir "$STORE" --in "$WORK/g1.txt" > /dev/null
GST="$(compgen -G "$STORE/*.gst")"
printf '\xff' | dd of="$GST" bs=1 seek=150 count=1 conv=notrunc 2> /dev/null
rc=0
"$TOOL" store verify --dir "$STORE" > "$WORK/verify.out" 2>&1 || rc=$?
if [[ "$rc" != 1 ]] || ! grep -q "quarantined:" "$WORK/verify.out"; then
  echo "bit rot was not caught and quarantined (rc=$rc):" >&2
  cat "$WORK/verify.out" >&2
  exit 1
fi
if [[ -e "$GST" ]] || ! compgen -G "$STORE/*.gst.corrupt" > /dev/null; then
  echo "quarantine did not move the rotten entry aside:" >&2
  ls "$STORE" >&2
  exit 1
fi
"$TOOL" store import --dir "$STORE" --in "$WORK/g1.txt" > /dev/null
"$TOOL" store verify --dir "$STORE" > "$WORK/verify2.out"
grep -q "corrupt=0" "$WORK/verify2.out" || {
  echo "re-import did not heal the store:" >&2
  cat "$WORK/verify2.out" >&2
  exit 1
}
echo "bit rot quarantined by verify (exit 1); re-import healed the entry"

# (c) Unusable --store-dir: the daemon must degrade to the wire-graph path,
# not die. Inline aligns keep working; by-hash submissions get the typed
# NO_GRAPH answer (exit 11).
SOCK2="$WORK/ga-store.sock"
"$TOOL" serve --socket "$SOCK2" --workers 1 \
  --store-dir "$WORK/g1.txt/not-a-dir" > "$WORK/daemon2.log" 2>&1 &
DAEMON_PID=$!
up=0
for _ in 1 2 3; do
  if "$TOOL" submit --socket "$SOCK2" --ping --retries 4 > /dev/null 2>&1; then
    up=1
    break
  fi
  kill -0 "$DAEMON_PID" 2> /dev/null || break
done
if [[ "$up" != 1 ]]; then
  echo "daemon with unusable --store-dir never came up:" >&2
  cat "$WORK/daemon2.log" >&2
  exit 1
fi
grep -q "graph store disabled" "$WORK/daemon2.log" || {
  echo "daemon log missing the store-disabled notice:" >&2
  cat "$WORK/daemon2.log" >&2
  exit 1
}
"$TOOL" submit --socket "$SOCK2" --g1 "$WORK/g1.txt" --g2 "$WORK/g2.txt" \
  --algo GRASP > /dev/null || {
  echo "wire-graph align failed on the degraded daemon" >&2
  cat "$WORK/daemon2.log" >&2
  exit 1
}
rc=0
"$TOOL" submit --socket "$SOCK2" --g1-hash 1111111111111111 \
  --g2-hash 2222222222222222 --algo GRASP > "$WORK/byhash.out" 2>&1 || rc=$?
if [[ "$rc" != 11 ]] || ! grep -q "NO_GRAPH" "$WORK/byhash.out"; then
  echo "by-hash against the degraded daemon was not a typed NO_GRAPH (rc=$rc):" >&2
  cat "$WORK/byhash.out" >&2
  exit 1
fi
kill -TERM "$DAEMON_PID" 2> /dev/null || true
wait "$DAEMON_PID" 2> /dev/null || true
DAEMON_PID=""
echo "unusable store dir degraded to the wire path; by-hash answered NO_GRAPH"

echo "chaos walkthrough passed"
