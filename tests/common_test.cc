#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/exit_codes.h"
#include "common/memory.h"
#include "common/parse.h"
#include "common/random.h"
#include "common/status.h"
#include "common/table.h"
#include "common/timer.h"

namespace graphalign {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad graph");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad graph");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad graph");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kResourceExhausted, StatusCode::kInternal,
        StatusCode::kNotImplemented}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  GA_ASSIGN_OR_RETURN(int half, HalfOf(x));
  GA_ASSIGN_OR_RETURN(int quarter, HalfOf(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*QuarterOf(8), 2);
  EXPECT_FALSE(QuarterOf(6).ok());  // 6/2 = 3 is odd.
  EXPECT_FALSE(QuarterOf(7).ok());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) counts[rng.UniformInt(uint64_t{10})]++;
  for (int c : counts) EXPECT_NEAR(c, 5000, 400);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(int64_t{-2}, int64_t{2});
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, PowerLawRespectsMinimum) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.PowerLaw(2.5, 3.0), 3.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(29);
  Rng child = parent.Fork();
  // The child stream should not replay the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.Next() == child.Next());
  EXPECT_LT(same, 4);
}

TEST(RandomPermutationTest, IsAPermutation) {
  Rng rng(31);
  std::vector<int> p = RandomPermutation(100, &rng);
  std::vector<bool> seen(100, false);
  for (int x : p) {
    ASSERT_GE(x, 0);
    ASSERT_LT(x, 100);
    ASSERT_FALSE(seen[x]);
    seen[x] = true;
  }
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer t;
  // Busy-wait until the monotonic clock visibly advances.
  double elapsed = 0.0;
  for (int i = 0; i < 100000000 && elapsed <= 0.0; ++i) elapsed = t.Seconds();
  EXPECT_GT(elapsed, 0.0);
  EXPECT_NEAR(t.Millis(), t.Seconds() * 1e3, 1.0);
  t.Restart();
  EXPECT_LT(t.Seconds(), 1.0);
}

TEST(MemoryTest, PeakRssIsPositiveOnLinux) {
  EXPECT_GT(PeakRssBytes(), 0);
  EXPECT_GT(CurrentRssBytes(), 0);
}

TEST(MemoryTest, MeasurePeakMemoryDetectsAllocation) {
  auto base = MeasurePeakMemoryMb([] {});
  ASSERT_TRUE(base.ok());
  auto big = MeasurePeakMemoryMb([] {
    std::vector<double> v(16 * 1024 * 1024, 1.5);  // 128 MiB.
    volatile double sink = v[12345];
    (void)sink;
  });
  ASSERT_TRUE(big.ok());
  EXPECT_GT(*big, *base + 100.0);
}

TEST(TableTest, AlignedAndCsvOutput) {
  Table t({"algo", "acc"});
  t.AddRow({"IsoRank", Table::Num(0.91)});
  t.AddRow({"GWL", Table::Num(std::nan(""))});
  EXPECT_EQ(t.num_rows(), 2u);

  std::ostringstream text;
  t.Print(text);
  EXPECT_NE(text.str().find("IsoRank"), std::string::npos);
  EXPECT_NE(text.str().find("0.910"), std::string::npos);

  std::ostringstream csv;
  t.PrintCsv(csv);
  EXPECT_EQ(csv.str(), "algo,acc\nIsoRank,0.910\nGWL,-\n");
}

TEST(TableTest, CsvEscaping) {
  Table t({"name"});
  t.AddRow({"a,b \"c\""});
  std::ostringstream csv;
  t.PrintCsv(csv);
  EXPECT_EQ(csv.str(), "name\n\"a,b \"\"c\"\"\"\n");
}

TEST(ParseTest, StrictPositiveIntAcceptsWholeNumbers) {
  auto v = ParseStrictPositiveInt("42");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(*ParseStrictPositiveInt("1"), 1);
}

TEST(ParseTest, StrictPositiveIntRejectsJunk) {
  for (const char* bad : {"", "0", "-3", "4x", "x4", "4.5", " 4", "4 ",
                          "99999999999999999999", "+", "--2", "0x10"}) {
    EXPECT_FALSE(ParseStrictPositiveInt(bad).ok()) << "'" << bad << "'";
  }
}

TEST(ParseTest, StrictPositiveDouble) {
  auto v = ParseStrictPositiveDouble("2.5");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 2.5);
  for (const char* bad : {"", "0", "-1.5", "2.5x", "nan", "inf", "1e400"}) {
    EXPECT_FALSE(ParseStrictPositiveDouble(bad).ok()) << "'" << bad << "'";
  }
}

TEST(ParseTest, StrictUint64) {
  auto v = ParseStrictUint64("18446744073709551615");  // 2^64 - 1.
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 18446744073709551615ull);
  EXPECT_EQ(*ParseStrictUint64("0"), 0ull);  // Zero is a valid uint64.
  for (const char* bad : {"", "-1", "18446744073709551616", "12a", "1.0"}) {
    EXPECT_FALSE(ParseStrictUint64(bad).ok()) << "'" << bad << "'";
  }
}

TEST(ExitCodesTest, ValuesArePinned) {
  // These values are a public contract: scripts, the bench journal, and the
  // service protocol all interpret them. They can never be renumbered.
  EXPECT_EQ(kExitOk, 0);
  EXPECT_EQ(kExitError, 1);
  EXPECT_EQ(kExitUsage, 2);
  EXPECT_EQ(kExitDnf, 3);
  EXPECT_EQ(kExitCrash, 4);
  EXPECT_EQ(kExitOom, 5);
  EXPECT_EQ(kExitBusy, 6);
  EXPECT_EQ(kExitNumerical, 7);
  EXPECT_EQ(kExitShuttingDown, 8);
  EXPECT_EQ(kExitShed, 9);
  EXPECT_EQ(kExitQuarantined, 10);
}

TEST(Crc32cTest, MatchesKnownVectors) {
  // The canonical CRC32C check value plus the RFC 3720 (iSCSI) vectors: a
  // wrong polynomial, init, reflection, or final XOR fails at least one.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
  EXPECT_EQ(Crc32c(std::string(32, '\xff')), 0x62A8AB43u);
  std::string ascending(32, '\0');
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<char>(i);
  EXPECT_EQ(Crc32c(ascending), 0x46DD794Eu);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const std::string data = "the durable cache log payload";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cInit();
    crc = Crc32cUpdate(crc, data.data(), split);
    crc = Crc32cUpdate(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(Crc32cFinish(crc), Crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  const std::string data = "GAR1-framed cache record";
  const uint32_t good = Crc32c(data);
  for (size_t pos = 0; pos < data.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[pos] = static_cast<char>(flipped[pos] ^ (1 << bit));
      EXPECT_NE(Crc32c(flipped), good) << "pos " << pos << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace graphalign
