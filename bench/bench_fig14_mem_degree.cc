// Figure 14: peak resident memory vs average degree, measured per run in a
// forked child (§6.6). CONE's sparse representation keeps its footprint flat
// as density grows.
#include "scalability.h"

int main(int argc, char** argv) {
  graphalign::BenchArgs probe = graphalign::ParseBenchArgs(argc, argv);
  return graphalign::bench::RunScalabilitySweep(
      "Figure 14", "peak memory vs average degree",
      graphalign::bench::DegreeSweep(probe.full),
      graphalign::bench::SweepMetric::kMemory, argc, argv);
}
