file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_er.dir/bench_fig02_er.cc.o"
  "CMakeFiles/bench_fig02_er.dir/bench_fig02_er.cc.o.d"
  "bench_fig02_er"
  "bench_fig02_er.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_er.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
