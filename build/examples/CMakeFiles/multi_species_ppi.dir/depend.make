# Empty dependencies file for multi_species_ppi.
# This may be replaced when dependencies are built.
