#include "align/isorank.h"

#include <algorithm>
#include <cmath>

#include "linalg/csr.h"

namespace graphalign {

DenseMatrix DegreeSimilarityPrior(const Graph& g1, const Graph& g2) {
  const int n1 = g1.num_nodes();
  const int n2 = g2.num_nodes();
  DenseMatrix e(n1, n2);
  for (int u = 0; u < n1; ++u) {
    const double du = g1.Degree(u);
    double* row = e.Row(u);
    for (int v = 0; v < n2; ++v) {
      const double dv = g2.Degree(v);
      const double mx = std::max(du, dv);
      row[v] = mx == 0.0 ? 1.0 : 1.0 - std::fabs(du - dv) / mx;
    }
  }
  return e;
}

Result<DenseMatrix> IsoRankAligner::ComputeSimilarityImpl(
    const Graph& g1, const Graph& g2, const Deadline& deadline) {
  GA_RETURN_IF_ERROR(ValidateInputs(g1, g2));
  if (options_.alpha < 0.0 || options_.alpha > 1.0) {
    return Status::InvalidArgument("IsoRank: alpha outside [0,1]");
  }
  // Column-normalized operators: A D_A^-1 applied from the left is
  // RW_A^T x, and D_B^-1 B from the right is x RW_B.
  const CsrMatrix rw1 = g1.RandomWalkCsr();
  const CsrMatrix rw2 = g2.RandomWalkCsr();

  DenseMatrix prior = options_.use_degree_prior
                          ? DegreeSimilarityPrior(g1, g2)
                          : DenseMatrix(g1.num_nodes(), g2.num_nodes(), 1.0);
  // Normalize the prior to unit mass so alpha balances comparable scales.
  const double prior_sum = prior.Sum();
  if (prior_sum > 0.0) prior.Scale(1.0 / prior_sum);

  DenseMatrix r = prior;
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    GA_RETURN_IF_EXPIRED(deadline, "IsoRank");
    // M r = (A D_A^-1) r (D_B^-1 B) = RW_A^T * r * RW_B.
    DenseMatrix next = rw2.RightMultiplied(rw1.MultiplyTransposed(r));
    next.Scale(options_.alpha);
    next.Axpy(1.0 - options_.alpha, prior);
    const double sum = next.Sum();
    if (sum > 0.0) next.Scale(1.0 / sum);

    DenseMatrix delta = next;
    delta.Axpy(-1.0, r);
    const double change = delta.MaxAbs();
    r = std::move(next);
    if (change < options_.tolerance) break;
  }
  return r;
}

}  // namespace graphalign
