# Empty compiler generated dependencies file for ga_graph.
# This may be replaced when dependencies are built.
