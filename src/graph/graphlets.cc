#include "graph/graphlets.h"

#include <algorithm>
#include <array>
#include <functional>
#include <map>
#include <numeric>
#include <vector>

namespace graphalign {

namespace {

// Classifies a connected induced 4-node subgraph and adds orbit counts.
// `deg` are the induced degrees of the four nodes; `edges` the induced edge
// count (3..6).
void AddOrbits4(const std::array<int, 5>& nodes, const std::array<int, 4>& deg,
                int edges, DenseMatrix* orbits) {
  switch (edges) {
    case 3: {
      // Path P4 (degrees 1,1,2,2) or star/claw (1,1,1,3).
      bool is_star = false;
      for (int i = 0; i < 4; ++i) {
        if (deg[i] == 3) is_star = true;
      }
      for (int i = 0; i < 4; ++i) {
        int orbit;
        if (is_star) {
          orbit = deg[i] == 3 ? 7 : 6;
        } else {
          orbit = deg[i] == 1 ? 4 : 5;
        }
        (*orbits)(nodes[i], orbit) += 1.0;
      }
      break;
    }
    case 4: {
      // Cycle C4 (2,2,2,2) or paw (1,2,2,3).
      bool is_cycle = true;
      for (int i = 0; i < 4; ++i) {
        if (deg[i] != 2) is_cycle = false;
      }
      for (int i = 0; i < 4; ++i) {
        int orbit;
        if (is_cycle) {
          orbit = 8;
        } else {
          orbit = deg[i] == 1 ? 9 : (deg[i] == 2 ? 10 : 11);
        }
        (*orbits)(nodes[i], orbit) += 1.0;
      }
      break;
    }
    case 5: {
      // Diamond (K4 minus an edge): degrees 2,3,3,2.
      for (int i = 0; i < 4; ++i) {
        (*orbits)(nodes[i], deg[i] == 2 ? 12 : 13) += 1.0;
      }
      break;
    }
    case 6: {
      for (int i = 0; i < 4; ++i) (*orbits)(nodes[i], 14) += 1.0;
      break;
    }
    default:
      GA_CHECK_MSG(false, "connected 4-node subgraph with <3 edges");
  }
}

// ---------------------------------------------------------------------------
// 5-node orbit lookup table: for every connected 10-bit adjacency mask, the
// global orbit id of each of the 5 positions. Built once by exhaustive
// canonization over all 120 permutations.

// Bit index of the edge {a, b} with a < b among the 10 vertex pairs.
constexpr int kPairBit[5][5] = {
    {-1, 0, 1, 2, 3},
    {0, -1, 4, 5, 6},
    {1, 4, -1, 7, 8},
    {2, 5, 7, -1, 9},
    {3, 6, 8, 9, -1},
};

int PermuteMask(int mask, const std::array<int, 5>& perm) {
  int out = 0;
  for (int a = 0; a < 5; ++a) {
    for (int b = a + 1; b < 5; ++b) {
      if (mask & (1 << kPairBit[a][b])) {
        out |= 1 << kPairBit[perm[a]][perm[b]];
      }
    }
  }
  return out;
}

bool MaskConnected(int mask) {
  // BFS over the 5 nodes.
  int visited = 1;  // Start at node 0.
  for (int round = 0; round < 5; ++round) {
    int next = visited;
    for (int a = 0; a < 5; ++a) {
      if (!(visited & (1 << a))) continue;
      for (int b = 0; b < 5; ++b) {
        if (a != b && (mask & (1 << kPairBit[std::min(a, b)][std::max(a, b)]))) {
          next |= 1 << b;
        }
      }
    }
    visited = next;
  }
  return visited == 0b11111;
}

struct Orbit5Table {
  // table[mask][v] = global orbit id, or -1 if mask disconnected.
  std::array<std::array<int, 5>, 1024> table;
  int num_graphlets = 0;
  int num_orbits = 0;
};

const Orbit5Table& GetOrbit5Table() {
  static const Orbit5Table* table = [] {
    auto* t = new Orbit5Table();
    for (auto& row : t->table) row.fill(-1);

    // All 120 permutations of 5 elements.
    std::array<int, 5> p = {0, 1, 2, 3, 4};
    std::vector<std::array<int, 5>> perms;
    do {
      perms.push_back(p);
    } while (std::next_permutation(p.begin(), p.end()));

    // Pass 1: canonical mask (minimum over permutations) per connected mask.
    std::vector<int> canon(1024, -1);
    std::vector<std::array<int, 5>> canon_perm(1024);
    for (int mask = 0; mask < 1024; ++mask) {
      if (!MaskConnected(mask)) continue;
      int best = 1 << 30;
      std::array<int, 5> best_perm = perms[0];
      for (const auto& perm : perms) {
        const int pm = PermuteMask(mask, perm);
        if (pm < best) {
          best = pm;
          best_perm = perm;
        }
      }
      canon[mask] = best;
      canon_perm[mask] = best_perm;  // Maps mask's vertices onto canonical's.
    }

    // Pass 2: order canonical classes by (edge count, mask) and compute each
    // class's vertex-orbit partition from its automorphism group.
    std::map<std::pair<int, int>, int> class_order;  // (edges, canon) -> id
    for (int mask = 0; mask < 1024; ++mask) {
      if (canon[mask] == mask) {
        class_order[{__builtin_popcount(mask), mask}] = 0;
      }
    }
    int next_graphlet = 0;
    for (auto& [key, id] : class_order) id = next_graphlet++;
    t->num_graphlets = next_graphlet;

    // orbit_of[canonical mask][v] = global orbit id.
    std::map<int, std::array<int, 5>> orbit_of;
    int next_orbit = 0;
    for (const auto& [key, graphlet_id] : class_order) {
      const int cmask = key.second;
      // Union vertices connected by an automorphism.
      std::array<int, 5> rep;
      std::iota(rep.begin(), rep.end(), 0);
      std::function<int(int)> find = [&](int x) {
        while (rep[x] != x) x = rep[x] = rep[rep[x]];
        return x;
      };
      for (const auto& perm : perms) {
        if (PermuteMask(cmask, perm) != cmask) continue;
        for (int v = 0; v < 5; ++v) {
          const int a = find(v);
          const int b = find(perm[v]);
          if (a != b) rep[std::max(a, b)] = std::min(a, b);
        }
      }
      // Assign global ids in order of each orbit's lowest vertex.
      std::array<int, 5> ids;
      ids.fill(-1);
      for (int v = 0; v < 5; ++v) {
        const int root = find(v);
        if (ids[root] == -1) ids[root] = next_orbit++;
        ids[v] = ids[root];
      }
      orbit_of[cmask] = ids;
    }
    t->num_orbits = next_orbit;
    GA_CHECK_MSG(t->num_graphlets == 21,
                 "expected 21 connected 5-node graphlets");
    GA_CHECK_MSG(t->num_orbits == kNumOrbits5,
                 "expected 58 orbits of 5-node graphlets");

    // Pass 3: per-mask, per-vertex global orbit via the canonizing perm.
    for (int mask = 0; mask < 1024; ++mask) {
      if (canon[mask] < 0) continue;
      const auto& ids = orbit_of[canon[mask]];
      for (int v = 0; v < 5; ++v) {
        t->table[mask][v] = ids[canon_perm[mask][v]];
      }
    }
    return t;
  }();
  return *table;
}

// ---------------------------------------------------------------------------
// ESU enumeration (Wernicke) for subgraph sizes 4 and 5.

class Esu {
 public:
  Esu(const Graph& g, int size, int64_t max_subgraphs,
      const Deadline& deadline, DenseMatrix* orbits)
      : g_(g),
        size_(size),
        max_subgraphs_(max_subgraphs),
        orbits_(orbits),
        blocked_(g.num_nodes(), false),
        // Emit costs O(size^2) adjacency probes; a 4096-emit stride keeps
        // the clock entirely out of the enumeration profile.
        checker_(deadline, /*stride=*/4096) {}

  Status Run() {
    const int n = g_.num_nodes();
    for (int v = 0; v < n; ++v) {
      sub_[0] = v;
      blocked_[v] = true;
      std::vector<int> ext;
      std::vector<int> newly_blocked;
      for (int u : g_.Neighbors(v)) {
        if (u > v) {
          ext.push_back(u);
          blocked_[u] = true;
          newly_blocked.push_back(u);
        }
      }
      GA_RETURN_IF_ERROR(Extend(1, v, ext));
      blocked_[v] = false;
      for (int u : newly_blocked) blocked_[u] = false;
    }
    return Status::Ok();
  }

 private:
  Status Extend(int depth, int root, std::vector<int> ext) {
    while (!ext.empty()) {
      const int w = ext.back();
      ext.pop_back();
      if (depth == size_ - 1) {
        sub_[depth] = w;
        GA_RETURN_IF_ERROR(Emit());
        continue;
      }
      sub_[depth] = w;
      // Extension set: remaining candidates + exclusive neighbors of w.
      std::vector<int> next_ext = ext;
      std::vector<int> newly_blocked;
      for (int u : g_.Neighbors(w)) {
        if (u > root && !blocked_[u]) {
          next_ext.push_back(u);
          blocked_[u] = true;
          newly_blocked.push_back(u);
        }
      }
      GA_RETURN_IF_ERROR(Extend(depth + 1, root, std::move(next_ext)));
      for (int u : newly_blocked) blocked_[u] = false;
    }
    return Status::Ok();
  }

  Status Emit() {
    // Two budget arms, both checked here: an exact cap on enumerated
    // subgraphs and an amortized wall-clock deadline.
    if (++count_ > max_subgraphs_) {
      return Status::ResourceExhausted(
          "graphlet enumeration exceeded subgraph budget");
    }
    GA_RETURN_IF_EXPIRED(checker_, "graphlet enumeration");
    if (size_ == 4) {
      std::array<int, 4> deg = {0, 0, 0, 0};
      int edges = 0;
      for (int i = 0; i < 4; ++i) {
        for (int j = i + 1; j < 4; ++j) {
          if (g_.HasEdge(sub_[i], sub_[j])) {
            ++edges;
            ++deg[i];
            ++deg[j];
          }
        }
      }
      AddOrbits4(sub_, deg, edges, orbits_);
    } else {
      int mask = 0;
      for (int i = 0; i < 5; ++i) {
        for (int j = i + 1; j < 5; ++j) {
          if (g_.HasEdge(sub_[i], sub_[j])) mask |= 1 << kPairBit[i][j];
        }
      }
      const auto& row = GetOrbit5Table().table[mask];
      for (int i = 0; i < 5; ++i) {
        (*orbits_)(sub_[i], row[i]) += 1.0;
      }
    }
    return Status::Ok();
  }

  const Graph& g_;
  const int size_;
  const int64_t max_subgraphs_;
  DenseMatrix* orbits_;
  std::array<int, 5> sub_ = {0, 0, 0, 0, 0};
  std::vector<bool> blocked_;  // In subgraph or already a known neighbor.
  DeadlineChecker checker_;
  int64_t count_ = 0;
};

}  // namespace

Result<DenseMatrix> CountGraphletOrbits(const Graph& g,
                                        int64_t max_subgraphs,
                                        const Deadline& deadline) {
  const int n = g.num_nodes();
  DenseMatrix orbits(n, kNumOrbits);

  // Orbits 0-3 analytically.
  std::vector<int64_t> tri = g.TriangleCounts();
  for (int v = 0; v < n; ++v) {
    const double d = g.Degree(v);
    orbits(v, 0) = d;
    orbits(v, 3) = static_cast<double>(tri[v]);
    orbits(v, 2) = d * (d - 1) / 2.0 - static_cast<double>(tri[v]);
    double ends = 0.0;
    for (int u : g.Neighbors(v)) ends += g.Degree(u) - 1;
    orbits(v, 1) = ends - 2.0 * static_cast<double>(tri[v]);
  }

  Esu esu(g, /*size=*/4, max_subgraphs, deadline, &orbits);
  GA_RETURN_IF_ERROR(esu.Run());
  return orbits;
}

Result<DenseMatrix> CountGraphletOrbits5(const Graph& g,
                                         int64_t max_subgraphs,
                                         const Deadline& deadline) {
  DenseMatrix orbits(g.num_nodes(), kNumOrbits5);
  Esu esu(g, /*size=*/5, max_subgraphs, deadline, &orbits);
  GA_RETURN_IF_ERROR(esu.Run());
  return orbits;
}

Result<DenseMatrix> CountGraphletOrbits73(const Graph& g,
                                          int64_t max_subgraphs,
                                          const Deadline& deadline) {
  GA_ASSIGN_OR_RETURN(DenseMatrix small,
                      CountGraphletOrbits(g, max_subgraphs, deadline));
  GA_ASSIGN_OR_RETURN(DenseMatrix five,
                      CountGraphletOrbits5(g, max_subgraphs, deadline));
  DenseMatrix full(g.num_nodes(), kNumOrbits + kNumOrbits5);
  for (int v = 0; v < g.num_nodes(); ++v) {
    for (int o = 0; o < kNumOrbits; ++o) full(v, o) = small(v, o);
    for (int o = 0; o < kNumOrbits5; ++o) {
      full(v, kNumOrbits + o) = five(v, o);
    }
  }
  return full;
}

}  // namespace graphalign
