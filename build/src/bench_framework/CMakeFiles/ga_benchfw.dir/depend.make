# Empty dependencies file for ga_benchfw.
# This may be replaced when dependencies are built.
