// Table 2: dataset statistics. Generates the stand-in for every real
// dataset (see DESIGN.md §4 for the substitution) and reports its n, m, and
// nodes outside the largest component next to the original's.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/timer.h"
#include "datasets/datasets.h"

namespace graphalign {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  bench::Banner("Table 2", "real-graph stand-ins vs. the originals", args);
  // CA-AstroPh at full scale takes a while to generate; smoke mode shrinks
  // everything to 25%.
  const double scale = args.full ? 1.0 : 0.25;
  std::printf("stand-in scale: %.2f\n", scale);

  Table t({"Dataset", "Type", "n(paper)", "m(paper)", "l(paper)",
           "n(standin)", "m(standin)", "l(standin)", "gen_s"});
  for (const DatasetSpec& spec : Table2Specs()) {
    WallTimer timer;
    auto g = MakeStandIn(spec.name, args.seed, scale);
    if (!g.ok()) {
      t.AddRow({spec.name, spec.type, std::to_string(spec.n),
                std::to_string(spec.m), std::to_string(spec.l), "ERR", "-",
                "-", "-"});
      continue;
    }
    t.AddRow({spec.name, spec.type, std::to_string(spec.n),
              std::to_string(spec.m), std::to_string(spec.l),
              std::to_string(g->num_nodes()), std::to_string(g->num_edges()),
              std::to_string(g->NodesOutsideLargestComponent()),
              Table::Num(timer.Seconds(), 2)});
  }
  bench::Emit(t, args);
  return 0;
}

}  // namespace
}  // namespace graphalign

int main(int argc, char** argv) { return graphalign::Main(argc, argv); }
