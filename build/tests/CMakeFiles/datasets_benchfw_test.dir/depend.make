# Empty dependencies file for datasets_benchfw_test.
# This may be replaced when dependencies are built.
