// Pins user-facing documentation to the code it documents.
//
// The README's exit-code table is the operator's contract — scripts branch
// on these numbers — and it lives in prose, where the compiler cannot see
// it. This test re-parses both sides: every `kExit*` constant declared in
// src/common/exit_codes.h must appear as a row in the README table (and
// nothing more), so adding an exit code without documenting it, or
// documenting a code that no longer exists, fails CI instead of shipping
// stale docs. Paths come from GA_SOURCE_DIR (set in tests/CMakeLists.txt).
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace graphalign {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// Exit codes declared in the header: `inline constexpr int kExitFoo = N;`.
std::set<int> HeaderExitCodes() {
  const std::string header =
      ReadFileOrDie(std::string(GA_SOURCE_DIR) + "/src/common/exit_codes.h");
  std::set<int> codes;
  const std::regex decl(R"(inline constexpr int kExit\w+ = (\d+);)");
  for (auto it = std::sregex_iterator(header.begin(), header.end(), decl);
       it != std::sregex_iterator(); ++it) {
    const int value = std::stoi((*it)[1]);
    EXPECT_TRUE(codes.insert(value).second)
        << "duplicate exit code value " << value << " in exit_codes.h";
  }
  return codes;
}

// Exit codes documented in the README: table rows of the form `| N | ... |`.
std::set<int> ReadmeExitCodes() {
  const std::string readme =
      ReadFileOrDie(std::string(GA_SOURCE_DIR) + "/README.md");
  std::set<int> codes;
  const std::regex row(R"(\n\| (\d+) \| )");
  for (auto it = std::sregex_iterator(readme.begin(), readme.end(), row);
       it != std::sregex_iterator(); ++it) {
    const int value = std::stoi((*it)[1]);
    EXPECT_TRUE(codes.insert(value).second)
        << "exit code " << value << " documented twice in README.md";
  }
  return codes;
}

TEST(DocsPin, ReadmeExitCodeTableMatchesHeader) {
  const std::set<int> header = HeaderExitCodes();
  const std::set<int> readme = ReadmeExitCodes();
  ASSERT_FALSE(header.empty()) << "no kExit* declarations parsed";
  ASSERT_FALSE(readme.empty()) << "no exit-code table rows parsed";
  EXPECT_EQ(header.size(), readme.size())
      << "README exit-code table and exit_codes.h disagree on how many exit "
         "codes exist; update the table (and its meanings) in README.md";
  for (int code : header) {
    EXPECT_TRUE(readme.count(code))
        << "exit code " << code
        << " is declared in exit_codes.h but missing from the README table";
  }
  for (int code : readme) {
    EXPECT_TRUE(header.count(code))
        << "exit code " << code
        << " is documented in README.md but not declared in exit_codes.h";
  }
}

TEST(DocsPin, ExitCodesAreDense) {
  // The codes double as server ResponseCode values; keep them 0..N-1 with
  // no gaps so a new code cannot silently collide or leave a hole.
  const std::set<int> header = HeaderExitCodes();
  int expected = 0;
  for (int code : header) EXPECT_EQ(code, expected++);
}

}  // namespace
}  // namespace graphalign
