#include "server/cache_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "server/protocol.h"

namespace graphalign {

namespace {

constexpr char kRecordMagic[4] = {'G', 'A', 'R', '1'};
constexpr size_t kRecordHeaderBytes =
    sizeof(kRecordMagic) + sizeof(uint32_t) + sizeof(uint32_t);
// A record payload is u64 key + value; values are response bodies, already
// bounded by the frame cap. Anything declaring more is corrupt framing.
constexpr uint32_t kMaxRecordPayload = kMaxFramePayload + sizeof(uint64_t);

std::string BuildRecord(uint64_t key, const std::string& value) {
  std::string payload;
  payload.reserve(sizeof(key) + value.size());
  payload.append(reinterpret_cast<const char*>(&key), sizeof(key));
  payload.append(value);
  std::string record(kRecordMagic, sizeof(kRecordMagic));
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32c(payload);
  record.append(reinterpret_cast<const char*>(&len), sizeof(len));
  record.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  record.append(payload);
  return record;
}

bool WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = write(fd, data + off, len - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

// Reads the whole log into memory. Cache logs hold encoded align results of
// request-sized graphs; at service-realistic sizes this is megabytes, and
// replay happens once per daemon start.
Result<std::string> ReadWholeFile(int fd) {
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n == 0) return bytes;
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("cache log read failed: " +
                              std::string(strerror(errno)));
    }
    bytes.append(buf, static_cast<size_t>(n));
  }
}

}  // namespace

CacheStore::CacheStore(int fd, std::string path)
    : path_(std::move(path)), fd_(fd) {}

CacheStore::~CacheStore() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
}

Result<std::unique_ptr<CacheStore>> CacheStore::Open(
    const std::string& dir,
    const std::function<void(uint64_t key, std::string value)>& on_record,
    ReplayStats* stats) {
  GA_FAILPOINT_STATUS("server.cache.replay.error",
                      Status::Internal("cache log unreadable (injected)"));
  if (dir.empty()) {
    return Status::InvalidArgument("cache store: directory path is empty");
  }
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("cache store: cannot create " + dir + ": " +
                            std::string(strerror(errno)));
  }
  const std::string path = dir + "/cache.log";
  const int fd = open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::Internal("cache store: cannot open " + path + ": " +
                            std::string(strerror(errno)));
  }
  auto bytes = ReadWholeFile(fd);
  if (!bytes.ok()) {
    close(fd);
    return bytes.status();
  }

  ReplayStats local;
  size_t pos = 0;            // Cursor into the log.
  size_t good_end = 0;       // End offset of the last well-framed record.
  const std::string& log = *bytes;
  while (pos < log.size()) {
    const size_t remaining = log.size() - pos;
    if (remaining < kRecordHeaderBytes) break;  // Partial header: torn tail.
    if (std::memcmp(log.data() + pos, kRecordMagic, sizeof(kRecordMagic)) !=
        0) {
      break;  // Tail garbage; no trustworthy boundary past this point.
    }
    uint32_t len = 0, crc = 0;
    std::memcpy(&len, log.data() + pos + sizeof(kRecordMagic), sizeof(len));
    std::memcpy(&crc, log.data() + pos + sizeof(kRecordMagic) + sizeof(len),
                sizeof(crc));
    if (len < sizeof(uint64_t) || len > kMaxRecordPayload) break;
    if (remaining < kRecordHeaderBytes + len) break;  // Partial body.
    const std::string_view payload(log.data() + pos + kRecordHeaderBytes,
                                   len);
    pos += kRecordHeaderBytes + len;
    good_end = pos;
    if (Crc32c(payload) != crc) {
      // Framing is intact, content is not: local damage, skip just this
      // record and keep replaying the rest.
      ++local.crc_skipped;
      continue;
    }
    uint64_t key = 0;
    std::memcpy(&key, payload.data(), sizeof(key));
    if (on_record) {
      on_record(key, std::string(payload.substr(sizeof(key))));
    }
    ++local.replayed;
  }
  local.truncated_bytes = log.size() - good_end;
  if (local.truncated_bytes > 0) {
    // Drop the torn tail so future appends start at a record boundary.
    if (ftruncate(fd, static_cast<off_t>(good_end)) != 0) {
      close(fd);
      return Status::Internal("cache store: cannot truncate torn tail of " +
                              path + ": " + std::string(strerror(errno)));
    }
  }
  if (lseek(fd, 0, SEEK_END) < 0) {
    close(fd);
    return Status::Internal("cache store: cannot seek " + path + ": " +
                            std::string(strerror(errno)));
  }
  if (stats != nullptr) *stats = local;
  return std::unique_ptr<CacheStore>(new CacheStore(fd, path));
}

Status CacheStore::Compact(
    const std::vector<std::pair<uint64_t, std::string>>& live) {
  std::string fresh;
  for (const auto& [key, value] : live) {
    fresh += BuildRecord(key, value);
  }
  const std::string tmp = path_ + ".tmp";
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) {
    return Status::FailedPrecondition("cache store: not open");
  }
  const int tfd = open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (tfd < 0) {
    return Status::Unavailable("cache compact: cannot create " + tmp + ": " +
                               std::string(strerror(errno)));
  }
  if (!WriteAll(tfd, fresh.data(), fresh.size()) || fsync(tfd) != 0) {
    const int err = errno;
    close(tfd);
    unlink(tmp.c_str());
    return Status::Unavailable("cache compact: write/fsync of " + tmp +
                               " failed: " + std::string(strerror(err)));
  }
  if (rename(tmp.c_str(), path_.c_str()) != 0) {
    const int err = errno;
    close(tfd);
    unlink(tmp.c_str());
    return Status::Unavailable("cache compact: rename over " + path_ +
                               " failed: " + std::string(strerror(err)));
  }
  // Make the rename durable; the temp fd IS the new log, so appends keep
  // going to the published file.
  std::string dir = path_;
  const size_t slash = dir.rfind('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash);
  const int dfd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)fsync(dfd);
    close(dfd);
  }
  close(fd_);
  fd_ = tfd;
  return Status::Ok();
}

uint64_t CacheStore::log_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return 0;
  struct stat st;
  if (fstat(fd_, &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

void CacheStore::Append(uint64_t key, const std::string& value) {
  const std::string record = BuildRecord(key, value);
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) {
    ++append_errors_;
    return;
  }
  if (GA_FAILPOINT_FIRED("server.cache.append.error")) {
    ++append_errors_;
    return;
  }
  if (GA_FAILPOINT_FIRED("server.cache.append.torn")) {
    // Simulate dying mid-append: header plus half the payload reach disk.
    const size_t torn = kRecordHeaderBytes + (record.size() - kRecordHeaderBytes) / 2;
    (void)WriteAll(fd_, record.data(), torn);
    ++append_errors_;
    return;
  }
  if (!WriteAll(fd_, record.data(), record.size())) {
    ++append_errors_;
  }
}

uint64_t CacheStore::append_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return append_errors_;
}

}  // namespace graphalign
