#include "linalg/dense.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"

namespace graphalign {

DenseMatrix DenseMatrix::Identity(int n) {
  DenseMatrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::FromRows(
    const std::vector<std::vector<double>>& rows) {
  const int r = static_cast<int>(rows.size());
  const int c = r == 0 ? 0 : static_cast<int>(rows[0].size());
  DenseMatrix m(r, c);
  for (int i = 0; i < r; ++i) {
    GA_CHECK(static_cast<int>(rows[i].size()) == c);
    std::copy(rows[i].begin(), rows[i].end(), m.Row(i));
  }
  return m;
}

void DenseMatrix::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void DenseMatrix::Scale(double s) {
  for (double& v : data_) v *= s;
}

void DenseMatrix::Axpy(double s, const DenseMatrix& other) {
  GA_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
}

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    const double* src = Row(r);
    for (int c = 0; c < cols_; ++c) t(c, r) = src[c];
  }
  return t;
}

double DenseMatrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double DenseMatrix::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double DenseMatrix::MaxAbs() const {
  double s = 0.0;
  for (double v : data_) s = std::max(s, std::fabs(v));
  return s;
}

std::vector<double> DenseMatrix::Col(int c) const {
  std::vector<double> v(rows_);
  for (int r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void DenseMatrix::SetCol(int c, const std::vector<double>& v) {
  GA_CHECK(static_cast<int>(v.size()) == rows_);
  for (int r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

DenseMatrix Multiply(const DenseMatrix& a, const DenseMatrix& b) {
  GA_CHECK(a.cols() == b.rows());
  DenseMatrix c(a.rows(), b.cols());
  const int64_t flops_per_row =
      static_cast<int64_t>(a.cols()) * b.cols() + 1;
  // i-k-j order: streams through rows of B, good locality for row-major.
  ParallelFor(
      a.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int i = static_cast<int>(lo); i < hi; ++i) {
          double* crow = c.Row(i);
          const double* arow = a.Row(i);
          for (int k = 0; k < a.cols(); ++k) {
            const double aik = arow[k];
            if (aik == 0.0) continue;
            const double* brow = b.Row(k);
            for (int j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
          }
        }
      },
      /*min_work=*/std::max<int64_t>(2, 1'000'000 / flops_per_row));
  return c;
}

DenseMatrix MultiplyAtB(const DenseMatrix& a, const DenseMatrix& b) {
  GA_CHECK(a.rows() == b.rows());
  DenseMatrix c(a.cols(), b.cols());
  const int64_t flops_per_row =
      static_cast<int64_t>(a.rows()) * b.cols() + 1;
  // Block-column ownership: each block owns a contiguous range of A's
  // columns (= rows of C) and accumulates over k in ascending order, so the
  // per-entry summation order matches the sequential k-outer loop exactly
  // and results stay byte-identical regardless of thread count.
  ParallelFor(
      a.cols(),
      [&](int64_t lo, int64_t hi) {
        for (int k = 0; k < a.rows(); ++k) {
          const double* arow = a.Row(k);
          const double* brow = b.Row(k);
          for (int i = static_cast<int>(lo); i < hi; ++i) {
            const double aki = arow[i];
            if (aki == 0.0) continue;
            double* crow = c.Row(i);
            for (int j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
          }
        }
      },
      /*min_work=*/std::max<int64_t>(2, 1'000'000 / flops_per_row));
  return c;
}

DenseMatrix MultiplyABt(const DenseMatrix& a, const DenseMatrix& b) {
  GA_CHECK(a.cols() == b.cols());
  DenseMatrix c(a.rows(), b.rows());
  const int64_t flops_per_row =
      static_cast<int64_t>(a.cols()) * b.rows() + 1;
  ParallelFor(
      a.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int i = static_cast<int>(lo); i < hi; ++i) {
          const double* arow = a.Row(i);
          double* crow = c.Row(i);
          for (int j = 0; j < b.rows(); ++j) {
            const double* brow = b.Row(j);
            double s = 0.0;
            for (int k = 0; k < a.cols(); ++k) s += arow[k] * brow[k];
            crow[j] = s;
          }
        }
      },
      /*min_work=*/std::max<int64_t>(2, 1'000'000 / flops_per_row));
  return c;
}

std::vector<double> MultiplyVec(const DenseMatrix& a,
                                const std::vector<double>& x) {
  GA_CHECK(a.cols() == static_cast<int>(x.size()));
  std::vector<double> y(a.rows(), 0.0);
  const int64_t flops_per_row = a.cols() + 1;
  ParallelFor(
      a.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int i = static_cast<int>(lo); i < hi; ++i) {
          const double* arow = a.Row(i);
          double s = 0.0;
          for (int j = 0; j < a.cols(); ++j) s += arow[j] * x[j];
          y[i] = s;
        }
      },
      /*min_work=*/std::max<int64_t>(2, 1'000'000 / flops_per_row));
  return y;
}

std::vector<double> MultiplyVecT(const DenseMatrix& a,
                                 const std::vector<double>& x) {
  GA_CHECK(a.rows() == static_cast<int>(x.size()));
  std::vector<double> y(a.cols(), 0.0);
  for (int i = 0; i < a.rows(); ++i) {
    const double* arow = a.Row(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (int j = 0; j < a.cols(); ++j) y[j] += arow[j] * xi;
  }
  return y;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  GA_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm2(const std::vector<double>& a) { return std::sqrt(Dot(a, a)); }

void Axpy(double s, const std::vector<double>& b, std::vector<double>* a) {
  GA_CHECK(a->size() == b.size());
  for (size_t i = 0; i < b.size(); ++i) (*a)[i] += s * b[i];
}

double NormalizeInPlace(std::vector<double>* a) {
  double n = Norm2(*a);
  if (n > 0.0) {
    for (double& v : *a) v /= n;
  }
  return n;
}

}  // namespace graphalign
