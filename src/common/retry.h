// Retry with capped exponential backoff and deterministic jitter
// (DESIGN.md §12).
//
// Transient failures — a BUSY daemon, a connect() racing server startup, an
// injected fault, a flaky isolated cell — should cost a bounded number of
// re-attempts, not a failed sweep cell or a dead client. Permanent failures
// (bad input, a real bug) must never be retried: the classifier below is the
// single source of truth for which is which.
//
// Jitter is deterministic: attempt k's delay is
//   min(cap, initial * multiplier^k) * (1/2 + u_k/2)
// where u_k comes from a SplitMix64 hash of (seed, k). The same policy and
// seed therefore reproduce the exact same delay sequence, which is what lets
// tests pin it and sweeps stay reproducible.
#ifndef GRAPHALIGN_COMMON_RETRY_H_
#define GRAPHALIGN_COMMON_RETRY_H_

#include <cstdint>
#include <functional>

#include "common/status.h"

namespace graphalign {

struct RetryPolicy {
  int max_attempts = 3;            // Total tries, including the first.
  double initial_backoff_ms = 100.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 5000.0;  // Cap applied before jitter.
  uint64_t jitter_seed = 2023;
};

// True for status codes a retry may clear: kUnavailable (transient faults,
// BUSY) and kResourceExhausted (admission control, allocation pressure).
// Everything else — including kDeadlineExceeded, which would just burn the
// same budget again — is permanent.
bool IsTransient(const Status& status);
bool IsTransient(StatusCode code);

// Backoff schedule iterator. NextDelayMs() returns the jittered delay to
// sleep before the next attempt and advances the sequence.
class Backoff {
 public:
  explicit Backoff(const RetryPolicy& policy) : policy_(policy) {}

  double NextDelayMs();
  int attempts_started() const { return attempt_; }

 private:
  RetryPolicy policy_;
  int attempt_ = 0;
};

// Runs `fn` up to policy.max_attempts times, sleeping the jittered backoff
// between attempts, while it returns a transient error. Returns the first
// success, the first permanent error, or the last transient error once
// attempts are exhausted. `on_retry` (optional) observes each scheduled
// retry: (attempt_just_failed [1-based], its status, upcoming delay ms).
Status RetryStatus(
    const RetryPolicy& policy, const std::function<Status()>& fn,
    const std::function<void(int, const Status&, double)>& on_retry = {});

// Sleep used between attempts (std::this_thread under the hood); exposed so
// call sites that must not block the caller can schedule differently.
void SleepForMs(double ms);

}  // namespace graphalign

#endif  // GRAPHALIGN_COMMON_RETRY_H_
