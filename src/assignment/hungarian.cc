// Hungarian algorithm (Kuhn-Munkres) with dual potentials, O(n^2 m).
// This is the "MWM" solver of the paper: an optimal linear-assignment
// algorithm used by LREA and cross-checked against Jonker-Volgenant.
#include <limits>
#include <vector>

#include "assignment/assignment.h"

namespace graphalign {

namespace {

// Minimizes total cost for an n x m cost matrix with n <= m.
// Returns row -> column assignment, or kDeadlineExceeded if the deadline
// expires between augmentation steps.
Result<std::vector<int>> HungarianMinCost(const DenseMatrix& cost,
                                          const Deadline& deadline) {
  const int n = cost.rows();
  const int m = cost.cols();
  GA_CHECK(n <= m);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Each augmentation step below scans O(m) columns, so polling every 32
  // steps bounds overshoot to ~32m operations.
  DeadlineChecker checker(deadline, /*stride=*/32);
  // 1-indexed potentials and matching (p[j] = row matched to column j).
  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<int> p(m + 1, 0), way(m + 1, 0);
  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<bool> used(m + 1, false);
    do {
      GA_RETURN_IF_EXPIRED(checker, "HungarianAssign");
      used[j0] = true;
      const int i0 = p[j0];
      int j1 = -1;
      double delta = kInf;
      const double* crow = cost.Row(i0 - 1);
      for (int j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = crow[j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }
  std::vector<int> row_to_col(n, -1);
  for (int j = 1; j <= m; ++j) {
    if (p[j] > 0) row_to_col[p[j] - 1] = j - 1;
  }
  return row_to_col;
}

}  // namespace

Result<Alignment> HungarianAssign(const DenseMatrix& similarity,
                                  const Deadline& deadline) {
  const int n = similarity.rows();
  const int m = similarity.cols();
  if (n == 0 || m == 0) {
    return Status::InvalidArgument("HungarianAssign: empty matrix");
  }
  // Maximize similarity == minimize negated similarity.
  if (n <= m) {
    DenseMatrix cost(n, m);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < m; ++j) cost(i, j) = -similarity(i, j);
    }
    return HungarianMinCost(cost, deadline);
  }
  // More sources than targets: solve the transpose, then invert.
  DenseMatrix cost(m, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) cost(j, i) = -similarity(i, j);
  }
  GA_ASSIGN_OR_RETURN(std::vector<int> col_to_row,
                      HungarianMinCost(cost, deadline));
  Alignment align(n, -1);
  for (int j = 0; j < m; ++j) {
    if (col_to_row[j] >= 0) align[col_to_row[j]] = j;
  }
  return align;
}

}  // namespace graphalign
