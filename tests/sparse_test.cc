// Sparse similarity pipeline tests (DESIGN.md §13): MinHash/LSH candidate
// generation, native vs dense-fallback scoring, end-to-end AlignSparse, and
// determinism. The whole binary is also registered under GRAPHALIGN_THREADS=1
// and =2 (tests/CMakeLists.txt); the pinned golden checksums below therefore
// prove byte-identical candidate sets and alignments at every pool size, the
// same way the parallel-determinism suite pins its references.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "align/aligner.h"
#include "align/lrea.h"
#include "align/nsd.h"
#include "align/regal.h"
#include "align/sparse_candidates.h"
#include "common/random.h"
#include "graph/generators.h"
#include "linalg/minhash.h"
#include "noise/noise.h"

namespace graphalign {
namespace {

Graph MustGraph(int n, const std::vector<Edge>& edges) {
  auto g = Graph::FromEdges(n, edges);
  GA_CHECK(g.ok());
  return *std::move(g);
}

// FNV-1a over the (row, col) pairs; similarities are hashed via their bit
// patterns where included.
uint64_t PairChecksum(const std::vector<SparseCandidate>& candidates) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const SparseCandidate& c : candidates) {
    mix(static_cast<uint64_t>(c.row));
    mix(static_cast<uint64_t>(c.col));
  }
  return h;
}

uint64_t AlignmentChecksum(const Alignment& alignment) {
  uint64_t h = 1469598103934665603ULL;
  for (int v : alignment) {
    h ^= static_cast<uint64_t>(static_cast<int64_t>(v));
    h *= 1099511628211ULL;
  }
  return h;
}

// The standard workload: a BA graph and its noiseless permuted copy, so the
// planted ground truth is exactly recoverable in principle.
AlignmentProblem PermutedProblem(int n, uint64_t seed) {
  Rng rng(seed);
  auto base = BarabasiAlbert(n, 3, &rng);
  EXPECT_TRUE(base.ok());
  NoiseOptions noise;
  noise.level = 0.0;
  auto problem = MakeAlignmentProblem(*base, noise, &rng);
  EXPECT_TRUE(problem.ok());
  return *std::move(problem);
}

TEST(MinHashTest, SignatureIsDeterministicAndSeedSensitive) {
  const std::vector<uint64_t> tokens = {3, 17, 99, 12345};
  MinHasher hasher(8, /*seed=*/42);
  uint64_t a[8], b[8];
  hasher.Signature(tokens, a);
  hasher.Signature(tokens, b);
  EXPECT_TRUE(std::equal(a, a + 8, b));
  MinHasher other(8, /*seed=*/43);
  other.Signature(tokens, b);
  EXPECT_FALSE(std::equal(a, a + 8, b));
}

TEST(MinHashTest, IdenticalSetsCollideDisjointSetsDoNot) {
  MinHasher hasher(16, /*seed=*/7);
  const std::vector<uint64_t> s1 = {1, 2, 3, 4, 5};
  const std::vector<uint64_t> s2 = {1, 2, 3, 4, 5};
  const std::vector<uint64_t> s3 = {100, 200, 300, 400, 500};
  uint64_t a[16], b[16], c[16];
  hasher.Signature(s1, a);
  hasher.Signature(s2, b);
  hasher.Signature(s3, c);
  int ab = 0, ac = 0;
  for (int k = 0; k < 16; ++k) {
    ab += (a[k] == b[k]);
    ac += (a[k] == c[k]);
  }
  EXPECT_EQ(ab, 16);  // Jaccard 1 -> all positions agree.
  EXPECT_EQ(ac, 0);   // Jaccard 0 -> agreement only by 2^-64 accident.
}

TEST(MinHashTest, EmptySetGetsSentinelNotGarbage) {
  MinHasher hasher(4, /*seed=*/9);
  uint64_t empty1[4], empty2[4], full[4];
  const std::vector<uint64_t> none;
  hasher.Signature(none, empty1);
  hasher.Signature(none, empty2);
  const std::vector<uint64_t> tokens = {11};
  hasher.Signature(tokens, full);
  EXPECT_TRUE(std::equal(empty1, empty1 + 4, empty2));
  EXPECT_FALSE(std::equal(empty1, empty1 + 4, full));
}

TEST(NodeTokensTest, SortedDedupedAndDegreeSensitive) {
  //     0 - 1 - 2
  //         |
  //         3
  Graph g = MustGraph(4, {{0, 1}, {1, 2}, {1, 3}});
  const std::vector<uint64_t> t1 = NodeTokens(g, 1, nullptr);
  EXPECT_TRUE(std::is_sorted(t1.begin(), t1.end()));
  EXPECT_TRUE(std::adjacent_find(t1.begin(), t1.end()) == t1.end());
  // Leaves 0, 2, 3 all see the same structure; the hub differs.
  EXPECT_EQ(NodeTokens(g, 0, nullptr), NodeTokens(g, 3, nullptr));
  EXPECT_NE(NodeTokens(g, 0, nullptr), t1);
}

TEST(LshCandidatesTest, ValidatesOptions) {
  Graph g = MustGraph(2, {{0, 1}});
  LshOptions bad;
  bad.bands = 0;
  EXPECT_EQ(GenerateLshCandidates(g, g, bad).status().code(),
            StatusCode::kInvalidArgument);
  bad = LshOptions();
  bad.rows_per_band = -1;
  EXPECT_EQ(GenerateLshCandidates(g, g, bad).status().code(),
            StatusCode::kInvalidArgument);
  bad = LshOptions();
  bad.bands = 256;
  bad.rows_per_band = 64;  // 16384 > 4096.
  EXPECT_EQ(GenerateLshCandidates(g, g, bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LshCandidatesTest, CandidatesAreSortedUniqueAndInRange) {
  AlignmentProblem problem = PermutedProblem(200, /*seed=*/11);
  LshStats stats;
  auto candidates =
      GenerateLshCandidates(problem.g1, problem.g2, {}, Deadline(), &stats);
  ASSERT_TRUE(candidates.ok());
  ASSERT_FALSE(candidates->empty());
  for (size_t i = 0; i < candidates->size(); ++i) {
    const SparseCandidate& c = (*candidates)[i];
    EXPECT_GE(c.row, 0);
    EXPECT_LT(c.row, problem.g1.num_nodes());
    EXPECT_GE(c.col, 0);
    EXPECT_LT(c.col, problem.g2.num_nodes());
    EXPECT_EQ(c.similarity, 0.0);
    if (i > 0) {
      const SparseCandidate& p = (*candidates)[i - 1];
      EXPECT_TRUE(p.row < c.row || (p.row == c.row && p.col < c.col));
    }
  }
  EXPECT_EQ(stats.candidates, static_cast<int64_t>(candidates->size()));
  EXPECT_GE(stats.rows_without_candidates, 0);
}

TEST(LshCandidatesTest, RecallsTruePairsOnPermutedCopy) {
  AlignmentProblem problem = PermutedProblem(300, /*seed=*/23);
  auto candidates = GenerateLshCandidates(problem.g1, problem.g2);
  ASSERT_TRUE(candidates.ok());
  int hits = 0;
  for (const SparseCandidate& c : *candidates) {
    if (problem.ground_truth[c.row] == c.col) ++hits;
  }
  // An identical node (Jaccard 1) collides in every band unless its bucket
  // is over the popularity cap; most true pairs must survive.
  EXPECT_GT(hits, problem.g1.num_nodes() / 2);
}

TEST(LshCandidatesTest, HandlesIsolatedNodes) {
  // Nodes 3 and 4 have no edges at all (empty token sets downstream of the
  // degree-0 tokens are still valid sets).
  Graph g1 = MustGraph(5, {{0, 1}, {1, 2}});
  Graph g2 = MustGraph(5, {{0, 1}, {1, 2}});
  auto candidates = GenerateLshCandidates(g1, g2);
  ASSERT_TRUE(candidates.ok());
  EXPECT_FALSE(candidates->empty());
}

TEST(LshCandidatesTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  AlignmentProblem problem = PermutedProblem(100, /*seed=*/5);
  auto result = GenerateLshCandidates(problem.g1, problem.g2, {},
                                      Deadline::AfterSeconds(0.0));
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

// -- Determinism ------------------------------------------------------------

// Golden checksum for the fixed workload below. The same constant must hold
// under GRAPHALIGN_THREADS=1 and =2 (this suite runs under both), which is
// the byte-identical cross-thread determinism contract.
constexpr uint64_t kCandidateGolden = 0x5b2d5bb59e4cf29eULL;

TEST(LshDeterminismTest, CandidateSetMatchesGoldenChecksum) {
  AlignmentProblem problem = PermutedProblem(400, /*seed=*/77);
  auto candidates = GenerateLshCandidates(problem.g1, problem.g2);
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(PairChecksum(*candidates), kCandidateGolden);
}

TEST(LshDeterminismTest, RepeatRunsAreByteIdentical) {
  AlignmentProblem problem = PermutedProblem(250, /*seed=*/31);
  auto a = GenerateLshCandidates(problem.g1, problem.g2);
  auto b = GenerateLshCandidates(problem.g1, problem.g2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].row, (*b)[i].row);
    EXPECT_EQ((*a)[i].col, (*b)[i].col);
  }
}

// Golden end-to-end alignment checksum (LSH + native NSD scoring + sparse
// LAP) for a fixed problem; pinned across thread counts like the above.
constexpr uint64_t kAlignGolden = 0x84b8a23625a0014fULL;

TEST(LshDeterminismTest, AlignSparseMatchesGoldenChecksum) {
  AlignmentProblem problem = PermutedProblem(300, /*seed=*/13);
  NsdAligner aligner;
  auto aligned = aligner.AlignSparse(problem.g1, problem.g2);
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ(AlignmentChecksum(aligned->alignment), kAlignGolden);
}

// -- Scoring modes ----------------------------------------------------------

TEST(SparseSimilarityTest, ModeFlagsMatchTheDesign) {
  for (const auto& [name, mode] :
       std::vector<std::pair<std::string, SparseSimilarityMode>>{
           {"NSD", SparseSimilarityMode::kNative},
           {"LREA", SparseSimilarityMode::kNative},
           {"REGAL", SparseSimilarityMode::kNative},
           {"IsoRank", SparseSimilarityMode::kDenseFallback},
           {"GRASP", SparseSimilarityMode::kDenseFallback}}) {
    auto aligner = MakeAligner(name);
    ASSERT_TRUE(aligner.ok());
    EXPECT_EQ((*aligner)->sparse_similarity_mode(), mode) << name;
  }
  EXPECT_STREQ(SparseSimilarityModeName(SparseSimilarityMode::kNative),
               "native");
  EXPECT_STREQ(
      SparseSimilarityModeName(SparseSimilarityMode::kDenseFallback),
      "dense-fallback");
}

// Native scoring must agree with the dense matrix sampled at the candidate
// positions: same factors, same arithmetic, no dense allocation.
template <typename AlignerT>
void ExpectNativeMatchesDense(int n, uint64_t seed) {
  AlignmentProblem problem = PermutedProblem(n, seed);
  AlignerT aligner;
  auto sparse = aligner.ComputeSparseSimilarity(problem.g1, problem.g2);
  ASSERT_TRUE(sparse.ok());
  EXPECT_EQ(sparse->mode, SparseSimilarityMode::kNative);
  auto dense = aligner.ComputeSimilarity(problem.g1, problem.g2);
  ASSERT_TRUE(dense.ok());
  ASSERT_FALSE(sparse->candidates.empty());
  for (const SparseCandidate& c : sparse->candidates) {
    EXPECT_NEAR(c.similarity, dense->Row(c.row)[c.col], 1e-9)
        << "(" << c.row << ", " << c.col << ")";
  }
}

TEST(SparseSimilarityTest, NsdNativeMatchesDense) {
  ExpectNativeMatchesDense<NsdAligner>(120, 3);
}

TEST(SparseSimilarityTest, LreaNativeMatchesDense) {
  ExpectNativeMatchesDense<LreaAligner>(100, 4);
}

TEST(SparseSimilarityTest, RegalNativeMatchesDense) {
  ExpectNativeMatchesDense<RegalAligner>(100, 5);
}

TEST(SparseSimilarityTest, DenseFallbackSamplesTheDenseMatrix) {
  AlignmentProblem problem = PermutedProblem(80, /*seed=*/17);
  auto aligner = MakeAligner("IsoRank");
  ASSERT_TRUE(aligner.ok());
  auto sparse = (*aligner)->ComputeSparseSimilarity(problem.g1, problem.g2);
  ASSERT_TRUE(sparse.ok());
  EXPECT_EQ(sparse->mode, SparseSimilarityMode::kDenseFallback);
  auto dense = (*aligner)->ComputeSimilarity(problem.g1, problem.g2);
  ASSERT_TRUE(dense.ok());
  for (const SparseCandidate& c : sparse->candidates) {
    EXPECT_EQ(c.similarity, dense->Row(c.row)[c.col]);
  }
}

// -- End to end -------------------------------------------------------------

TEST(AlignSparseTest, RecoversMostOfAPermutedCopy) {
  AlignmentProblem problem = PermutedProblem(300, /*seed=*/41);
  NsdAligner aligner;
  auto aligned = aligner.AlignSparse(problem.g1, problem.g2);
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ(aligned->mode, SparseSimilarityMode::kNative);
  EXPECT_GT(aligned->num_candidates, 0);
  int matched = 0;
  for (int v : aligned->alignment) matched += (v >= 0);
  // Every row with at least one candidate gets matched (max cardinality);
  // the LSH stage covers nearly all rows on a permuted copy.
  EXPECT_GT(matched, problem.g1.num_nodes() * 9 / 10);
}

TEST(AlignSparseTest, EmptyGraphIsInvalid) {
  Graph empty = MustGraph(0, {});
  Graph g = MustGraph(2, {{0, 1}});
  NsdAligner aligner;
  EXPECT_EQ(aligner.AlignSparse(empty, g).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AlignSparseTest, ExpiredDeadlinePropagates) {
  AlignmentProblem problem = PermutedProblem(100, /*seed=*/19);
  NsdAligner aligner;
  auto result = aligner.AlignSparse(problem.g1, problem.g2, {},
                                    Deadline::AfterSeconds(0.0));
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace graphalign
