#include "datasets/datasets.h"

#include <algorithm>
#include <numeric>
#include <cmath>

#include "graph/generators.h"
#include "noise/noise.h"

namespace graphalign {

std::vector<DatasetSpec> Table2Specs() {
  return {
      {"Arenas", "communication", 1133, 5451, 0},
      {"Facebook", "social", 4039, 88234, 0},
      {"CA-AstroPh", "collaboration", 17903, 197031, 0},
      {"inf-euroroad", "infrastructure", 1174, 1417, 200},
      {"inf-power", "infrastructure", 4941, 6594, 0},
      {"fb-Haverford76", "social", 1446, 59589, 0},
      {"fb-Hamilton46", "social", 2314, 96394, 2},
      {"fb-Bowdoin47", "social", 2252, 84387, 2},
      {"fb-Swarthmore42", "social", 1659, 61050, 2},
      {"soc-hamsterster", "social", 2426, 16630, 400},
      {"bio-celegans", "biological", 453, 2025, 0},
      {"ca-GrQc", "collaboration", 4158, 14422, 0},
      {"ca-netscience", "collaboration", 379, 914, 0},
      {"MultiMagna", "biological", 1004, 8323, 0},
      {"HighSchool", "proximity", 327, 5818, 0},
      {"Voles", "proximity", 712, 2391, 0},
  };
}

namespace {

// Geometric radius giving expected average degree `avg` at size n.
double GeometricRadius(int n, double avg) {
  return std::sqrt(avg / (3.14159265358979 * std::max(n, 2)));
}

// Attachment parameter giving ~avg/2 edges per node.
int HalfDegree(double avg) {
  return std::max(1, static_cast<int>(std::lround(avg / 2.0)));
}

}  // namespace

Result<Graph> MakeStandIn(const std::string& name, uint64_t seed,
                          double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("MakeStandIn: scale outside (0, 1]");
  }
  DatasetSpec spec;
  bool found = false;
  for (const DatasetSpec& s : Table2Specs()) {
    if (s.name == name) {
      spec = s;
      found = true;
      break;
    }
  }
  if (!found) return Status::NotFound("unknown dataset: " + name);

  const int n = std::max(30, static_cast<int>(std::lround(spec.n * scale)));
  const double avg_degree = 2.0 * spec.m / spec.n;
  Rng rng(seed ^ std::hash<std::string>{}(name));

  // Family recipes (see header / DESIGN.md).
  if (name == "inf-euroroad") {
    // Sparse road network: random geometric, naturally fragmented (l = 200).
    return RandomGeometric(n, GeometricRadius(n, avg_degree), &rng);
  }
  if (name == "inf-power") {
    // Power grid: ring lattice with shortcuts (the Watts-Strogatz original
    // application), connected like the real grid.
    const double p = std::max(0.0, avg_degree / 2.0 - 1.0);
    return NewmanWatts(n, 2, std::min(p, 1.0), &rng);
  }
  if (name == "HighSchool" || name == "Voles") {
    // Proximity contact networks: spatial.
    return RandomGeometric(n, GeometricRadius(n, avg_degree), &rng);
  }
  if (name == "soc-hamsterster") {
    // Heavy-tailed social graph with many small components (l = 400):
    // erased configuration model over a powerlaw bulk, with ~12% of nodes
    // forced to degree 1 so small fragments split off the giant component.
    std::vector<int> degrees = PowerLawDegreeSequence(n, 2.5, 5, &rng);
    for (int i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.12)) degrees[i] = 1;
    }
    if (std::accumulate(degrees.begin(), degrees.end(), 0LL) % 2 != 0) {
      degrees[0] += 1;
    }
    return ConfigurationModel(degrees, &rng);
  }
  // Default family: powerlaw-cluster (Holme-Kim). Collaboration networks
  // get a higher triangle probability than communication/social ones.
  double triangle_p = 0.4;
  if (spec.type == "collaboration") triangle_p = 0.7;
  if (spec.type == "biological") triangle_p = 0.25;
  const int m_attach = HalfDegree(avg_degree);
  return PowerlawCluster(n, std::min(m_attach, n - 1), triangle_p, &rng);
}

Result<std::vector<Graph>> EvolvingSnapshots(
    const Graph& base, const std::vector<double>& fractions, Rng* rng) {
  if (fractions.empty()) {
    return Status::InvalidArgument("EvolvingSnapshots: no fractions");
  }
  for (size_t i = 0; i < fractions.size(); ++i) {
    if (fractions[i] <= 0.0 || fractions[i] > 1.0) {
      return Status::InvalidArgument("EvolvingSnapshots: fraction outside (0,1]");
    }
    if (i > 0 && fractions[i] < fractions[i - 1]) {
      return Status::InvalidArgument("EvolvingSnapshots: fractions must ascend");
    }
  }
  // A single random edge order yields nested snapshots (temporal growth).
  std::vector<Edge> edges = base.Edges();
  rng->Shuffle(&edges);
  std::vector<Graph> snapshots;
  snapshots.reserve(fractions.size());
  for (double f : fractions) {
    const auto keep = static_cast<size_t>(
        std::llround(f * static_cast<double>(edges.size())));
    std::vector<Edge> subset(edges.begin(), edges.begin() + keep);
    GA_ASSIGN_OR_RETURN(Graph g, Graph::FromEdges(base.num_nodes(), subset));
    snapshots.push_back(std::move(g));
  }
  return snapshots;
}

Result<std::vector<Graph>> MultiMagnaVariants(const Graph& base, int count,
                                              double step, Rng* rng) {
  if (count < 1 || step <= 0.0 || step > 1.0) {
    return Status::InvalidArgument("MultiMagnaVariants: bad parameters");
  }
  std::vector<Graph> variants;
  variants.reserve(count);
  for (int i = 1; i <= count; ++i) {
    const auto extra = static_cast<int64_t>(
        std::llround(i * step * static_cast<double>(base.num_edges())));
    GA_ASSIGN_OR_RETURN(Graph g, AddRandomEdges(base, extra, rng));
    variants.push_back(std::move(g));
  }
  return variants;
}

}  // namespace graphalign
