// Figure 7: accuracy on real graphs (Arenas, Facebook, CA-AstroPh
// stand-ins) with synthetic noise up to 5% of all three types (§6.4.1).
//
// Expected shape: GWL/CONE near-optimal on Arenas; GWL DNF on the two big
// graphs at paper scale; CONE weaker under multi-modal noise; IsoRank best
// on Facebook.
#include <string>
#include <vector>

#include "bench_util.h"
#include "datasets/datasets.h"

namespace graphalign {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  bench::Banner("Figure 7", "accuracy on real graphs, noise 0-5%", args);
  const int reps = args.repetitions > 0 ? args.repetitions : (args.full ? 10 : 1);
  // Facebook/CA-AstroPh at full size need hours (as in the paper, where GWL
  // exceeded the limit); smoke mode shrinks them hard.
  const double scale = args.full ? 1.0 : 0.06;

  Journal journal = bench::MustOpenJournal(args);
  Table t({"dataset", "algorithm", "noise_type", "noise", "accuracy"});
  for (const std::string& dataset : {"Arenas", "Facebook", "CA-AstroPh"}) {
    const double ds_scale = dataset == std::string("Arenas")
                                ? (args.full ? 1.0 : 0.2)
                                : scale;
    auto base = MakeStandIn(dataset, args.seed, ds_scale);
    GA_CHECK(base.ok());
    std::printf("%s stand-in: n=%d m=%lld\n", dataset.c_str(),
                base->num_nodes(),
                static_cast<long long>(base->num_edges()));
    const bool sparse = base->AverageDegree() < 20.0;
    for (const std::string& name : SelectedAlgorithms(args)) {
      auto aligner = bench::MakeBenchAligner(name, sparse);
      for (NoiseType type : {NoiseType::kOneWay, NoiseType::kMultiModal,
                             NoiseType::kTwoWay}) {
        for (double level : bench::LowNoiseLevels(args.full)) {
          NoiseOptions noise;
          noise.type = type;
          noise.level = level;
          bench::JournaledRow(
              &t, &journal,
              bench::CellKey(
                  {dataset, name, NoiseTypeName(type), Table::Num(level, 2)}),
              [&] {
                RunOutcome out = RunAveraged(
                    aligner.get(), *base, noise,
                    AssignmentMethod::kJonkerVolgenant, reps,
                    args.seed + static_cast<uint64_t>(level * 1000), args);
                return std::vector<std::string>{dataset, name,
                                                NoiseTypeName(type),
                                                Table::Num(level, 2),
                                                FormatAccuracy(out)};
              });
        }
      }
    }
  }
  bench::Emit(t, args);
  return 0;
}

}  // namespace
}  // namespace graphalign

int main(int argc, char** argv) { return graphalign::Main(argc, argv); }
