#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "linalg/csr.h"
#include "linalg/dense.h"
#include "linalg/eigen_sym.h"
#include "linalg/kdtree.h"
#include "linalg/sinkhorn.h"
#include "linalg/svd.h"

namespace graphalign {
namespace {

constexpr double kTol = 1e-9;

TEST(DenseMatrixTest, BasicAccessAndFill) {
  DenseMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  m(1, 2) = 4.5;
  EXPECT_DOUBLE_EQ(m(1, 2), 4.5);
  m.Fill(1.0);
  EXPECT_DOUBLE_EQ(m.Sum(), 6.0);
  m.Scale(2.0);
  EXPECT_DOUBLE_EQ(m.Sum(), 12.0);
}

TEST(DenseMatrixTest, IdentityAndTranspose) {
  DenseMatrix i = DenseMatrix::Identity(3);
  EXPECT_DOUBLE_EQ(i.Sum(), 3.0);
  DenseMatrix m = DenseMatrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  DenseMatrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(DenseMatrixTest, MultiplyMatchesHandComputation) {
  DenseMatrix a = DenseMatrix::FromRows({{1, 2}, {3, 4}});
  DenseMatrix b = DenseMatrix::FromRows({{5, 6}, {7, 8}});
  DenseMatrix c = Multiply(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(DenseMatrixTest, TransposedMultipliesAgree) {
  Rng rng(1);
  DenseMatrix a(4, 3), b(4, 5);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) a(i, j) = rng.Normal();
    for (int j = 0; j < 5; ++j) b(i, j) = rng.Normal();
  }
  DenseMatrix direct = Multiply(a.Transposed(), b);
  DenseMatrix fused = MultiplyAtB(a, b);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 5; ++j) EXPECT_NEAR(direct(i, j), fused(i, j), kTol);
  }
  DenseMatrix bt = MultiplyABt(a.Transposed(), b.Transposed());
  DenseMatrix bt_ref = Multiply(a.Transposed(), b);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 5; ++j) EXPECT_NEAR(bt(i, j), bt_ref(i, j), kTol);
  }
}

TEST(DenseMatrixTest, MatVecAgree) {
  DenseMatrix a = DenseMatrix::FromRows({{1, 2, 0}, {0, 1, -1}});
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = MultiplyVec(a, x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  std::vector<double> z = MultiplyVecT(a, {1, 1});
  ASSERT_EQ(z.size(), 3u);
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  EXPECT_DOUBLE_EQ(z[1], 3.0);
  EXPECT_DOUBLE_EQ(z[2], -1.0);
}

TEST(VectorOpsTest, DotNormAxpyNormalize) {
  std::vector<double> a = {3, 4};
  EXPECT_DOUBLE_EQ(Norm2(a), 5.0);
  std::vector<double> b = {1, -1};
  EXPECT_DOUBLE_EQ(Dot(a, b), -1.0);
  Axpy(2.0, b, &a);
  EXPECT_DOUBLE_EQ(a[0], 5.0);
  EXPECT_DOUBLE_EQ(a[1], 2.0);
  double n = NormalizeInPlace(&a);
  EXPECT_NEAR(n, std::sqrt(29.0), kTol);
  EXPECT_NEAR(Norm2(a), 1.0, kTol);
  std::vector<double> zero = {0, 0};
  EXPECT_DOUBLE_EQ(NormalizeInPlace(&zero), 0.0);
}

TEST(CsrTest, FromTripletsSumsDuplicates) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      2, 2, {{0, 1, 1.0}, {0, 1, 2.0}, {1, 0, 5.0}});
  EXPECT_EQ(m.nnz(), 2);
  DenseMatrix d = m.ToDense();
  EXPECT_DOUBLE_EQ(d(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
}

TEST(CsrTest, SpmvMatchesDense) {
  Rng rng(2);
  std::vector<Triplet> trip;
  for (int i = 0; i < 60; ++i) {
    trip.push_back({static_cast<int>(rng.UniformInt(uint64_t{10})),
                    static_cast<int>(rng.UniformInt(uint64_t{8})),
                    rng.Normal()});
  }
  CsrMatrix s = CsrMatrix::FromTriplets(10, 8, trip);
  DenseMatrix d = s.ToDense();
  std::vector<double> x(8);
  for (double& v : x) v = rng.Normal();
  std::vector<double> ys = s.Multiply(x);
  std::vector<double> yd = MultiplyVec(d, x);
  for (int i = 0; i < 10; ++i) EXPECT_NEAR(ys[i], yd[i], kTol);

  std::vector<double> z(10);
  for (double& v : z) v = rng.Normal();
  std::vector<double> ts = s.MultiplyTransposed(z);
  std::vector<double> td = MultiplyVecT(d, z);
  for (int i = 0; i < 8; ++i) EXPECT_NEAR(ts[i], td[i], kTol);
}

TEST(CsrTest, SpmmMatchesDense) {
  Rng rng(3);
  std::vector<Triplet> trip;
  for (int i = 0; i < 40; ++i) {
    trip.push_back({static_cast<int>(rng.UniformInt(uint64_t{7})),
                    static_cast<int>(rng.UniformInt(uint64_t{6})),
                    rng.Normal()});
  }
  CsrMatrix s = CsrMatrix::FromTriplets(7, 6, trip);
  DenseMatrix b(6, 4);
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 4; ++j) b(i, j) = rng.Normal();
  DenseMatrix c = s.Multiply(b);
  DenseMatrix ref = Multiply(s.ToDense(), b);
  for (int i = 0; i < 7; ++i)
    for (int j = 0; j < 4; ++j) EXPECT_NEAR(c(i, j), ref(i, j), kTol);

  DenseMatrix b2(7, 3);
  for (int i = 0; i < 7; ++i)
    for (int j = 0; j < 3; ++j) b2(i, j) = rng.Normal();
  DenseMatrix ct = s.MultiplyTransposed(b2);
  DenseMatrix ref2 = Multiply(s.ToDense().Transposed(), b2);
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 3; ++j) EXPECT_NEAR(ct(i, j), ref2(i, j), kTol);
}

TEST(CsrTest, TransposeRowSumsScaleRows) {
  CsrMatrix m =
      CsrMatrix::FromTriplets(2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
  CsrMatrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t.ToDense()(2, 0), 2.0);

  std::vector<double> rs = m.RowSums();
  EXPECT_DOUBLE_EQ(rs[0], 3.0);
  EXPECT_DOUBLE_EQ(rs[1], 3.0);

  CsrMatrix scaled = m.ScaleRows({2.0, 0.5});
  EXPECT_DOUBLE_EQ(scaled.ToDense()(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(scaled.ToDense()(1, 1), 1.5);
}

TEST(SymmetricEigenTest, DiagonalMatrix) {
  DenseMatrix a = DenseMatrix::FromRows({{3, 0, 0}, {0, 1, 0}, {0, 0, 2}});
  auto res = SymmetricEigen(a);
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(res->eigenvalues[0], 1.0, kTol);
  EXPECT_NEAR(res->eigenvalues[1], 2.0, kTol);
  EXPECT_NEAR(res->eigenvalues[2], 3.0, kTol);
}

TEST(SymmetricEigenTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  DenseMatrix a = DenseMatrix::FromRows({{2, 1}, {1, 2}});
  auto res = SymmetricEigen(a);
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(res->eigenvalues[0], 1.0, kTol);
  EXPECT_NEAR(res->eigenvalues[1], 3.0, kTol);
}

TEST(SymmetricEigenTest, ReconstructsRandomSymmetricMatrix) {
  Rng rng(4);
  const int n = 20;
  DenseMatrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double v = rng.Normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  auto res = SymmetricEigen(a);
  ASSERT_TRUE(res.ok());
  // A = V diag(lambda) V^T.
  DenseMatrix vl = res->eigenvectors;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) vl(i, j) *= res->eigenvalues[j];
  }
  DenseMatrix rec = MultiplyABt(vl, res->eigenvectors);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) EXPECT_NEAR(rec(i, j), a(i, j), 1e-8);
  }
  // Eigenvectors are orthonormal.
  DenseMatrix gram = MultiplyAtB(res->eigenvectors, res->eigenvectors);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(SymmetricEigenTest, RejectsNonSquare) {
  EXPECT_FALSE(SymmetricEigen(DenseMatrix(2, 3)).ok());
}

TEST(LanczosTest, MatchesDenseOnRandomMatrix) {
  Rng rng(5);
  const int n = 40;
  DenseMatrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double v = rng.Normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  auto dense = SymmetricEigen(a);
  ASSERT_TRUE(dense.ok());

  LinearOperator op = [&](const std::vector<double>& x,
                          std::vector<double>* y) {
    *y = MultiplyVec(a, x);
  };
  auto small = LanczosEigen(op, n, 4, SpectrumEnd::kSmallest, n);
  ASSERT_TRUE(small.ok());
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(small->eigenvalues[j], dense->eigenvalues[j], 1e-6);
  }
  auto large = LanczosEigen(op, n, 4, SpectrumEnd::kLargest, n);
  ASSERT_TRUE(large.ok());
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(large->eigenvalues[j], dense->eigenvalues[n - 4 + j], 1e-6);
  }
}

TEST(LanczosTest, EigenvectorsSatisfyResidual) {
  Rng rng(6);
  const int n = 30;
  DenseMatrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double v = rng.Normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  LinearOperator op = [&](const std::vector<double>& x,
                          std::vector<double>* y) {
    *y = MultiplyVec(a, x);
  };
  auto res = LanczosEigen(op, n, 3, SpectrumEnd::kSmallest, n);
  ASSERT_TRUE(res.ok());
  for (int j = 0; j < 3; ++j) {
    std::vector<double> v = res->eigenvectors.Col(j);
    std::vector<double> av = MultiplyVec(a, v);
    Axpy(-res->eigenvalues[j], v, &av);
    EXPECT_LT(Norm2(av), 1e-6);
  }
}

TEST(LanczosTest, RejectsBadArguments) {
  LinearOperator op = [](const std::vector<double>& x,
                         std::vector<double>* y) { *y = x; };
  EXPECT_FALSE(LanczosEigen(op, 0, 1, SpectrumEnd::kSmallest).ok());
  EXPECT_FALSE(LanczosEigen(op, 5, 0, SpectrumEnd::kSmallest).ok());
  EXPECT_FALSE(LanczosEigen(op, 5, 6, SpectrumEnd::kSmallest).ok());
}

TEST(SvdTest, KnownDiagonal) {
  DenseMatrix a = DenseMatrix::FromRows({{3, 0}, {0, -2}});
  auto res = Svd(a);
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(res->singular_values[0], 3.0, kTol);
  EXPECT_NEAR(res->singular_values[1], 2.0, kTol);
}

TEST(SvdTest, ReconstructsRectangular) {
  Rng rng(7);
  for (auto [m, n] : {std::pair{8, 5}, std::pair{5, 8}}) {
    DenseMatrix a(m, n);
    for (int i = 0; i < m; ++i)
      for (int j = 0; j < n; ++j) a(i, j) = rng.Normal();
    auto res = Svd(a);
    ASSERT_TRUE(res.ok());
    const int r = static_cast<int>(res->singular_values.size());
    ASSERT_EQ(r, std::min(m, n));
    DenseMatrix us = res->u;
    for (int j = 0; j < r; ++j)
      for (int i = 0; i < m; ++i) us(i, j) *= res->singular_values[j];
    DenseMatrix rec = MultiplyABt(us, res->v);
    for (int i = 0; i < m; ++i)
      for (int j = 0; j < n; ++j) EXPECT_NEAR(rec(i, j), a(i, j), 1e-8);
    // Singular values descending.
    for (int j = 1; j < r; ++j) {
      EXPECT_GE(res->singular_values[j - 1], res->singular_values[j] - kTol);
    }
  }
}

TEST(SvdTest, RankDeficientMatrix) {
  // Rank-1: outer product.
  DenseMatrix a = DenseMatrix::FromRows({{1, 2}, {2, 4}, {3, 6}});
  auto res = Svd(a);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->singular_values[0], 1.0);
  EXPECT_NEAR(res->singular_values[1], 0.0, 1e-9);
}

TEST(SvdTest, RejectsEmptyAndNonFinite) {
  EXPECT_FALSE(Svd(DenseMatrix(0, 3)).ok());
  DenseMatrix bad(2, 2);
  bad(0, 0) = std::nan("");
  EXPECT_FALSE(Svd(bad).ok());
}

TEST(PseudoInverseTest, InvertsFullRankSquare) {
  DenseMatrix a = DenseMatrix::FromRows({{2, 1}, {1, 3}});
  auto pinv = PseudoInverse(a);
  ASSERT_TRUE(pinv.ok());
  DenseMatrix prod = Multiply(a, *pinv);
  EXPECT_NEAR(prod(0, 0), 1.0, 1e-8);
  EXPECT_NEAR(prod(0, 1), 0.0, 1e-8);
  EXPECT_NEAR(prod(1, 1), 1.0, 1e-8);
}

TEST(PseudoInverseTest, SatisfiesMoorePenroseOnRankDeficient) {
  DenseMatrix a = DenseMatrix::FromRows({{1, 2}, {2, 4}});
  auto pinv = PseudoInverse(a);
  ASSERT_TRUE(pinv.ok());
  // A A+ A = A.
  DenseMatrix apa = Multiply(Multiply(a, *pinv), a);
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j) EXPECT_NEAR(apa(i, j), a(i, j), 1e-8);
}

TEST(ProcrustesTest, RecoversRotation) {
  Rng rng(8);
  const double theta = 0.7;
  DenseMatrix q = DenseMatrix::FromRows(
      {{std::cos(theta), -std::sin(theta)}, {std::sin(theta), std::cos(theta)}});
  DenseMatrix a(20, 2);
  for (int i = 0; i < 20; ++i)
    for (int j = 0; j < 2; ++j) a(i, j) = rng.Normal();
  DenseMatrix b = Multiply(a, q);
  auto qhat = ProcrustesRotation(a, b);
  ASSERT_TRUE(qhat.ok());
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j) EXPECT_NEAR((*qhat)(i, j), q(i, j), 1e-8);
}

TEST(SinkhornTest, UniformCostGivesProductCoupling) {
  DenseMatrix cost(3, 3, 1.0);
  auto t = SinkhornTransport(cost, UniformMarginal(3), UniformMarginal(3));
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) EXPECT_NEAR((*t)(i, j), 1.0 / 9, 1e-6);
}

TEST(SinkhornTest, MarginalsAreRespected) {
  Rng rng(9);
  DenseMatrix cost(4, 5);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 5; ++j) cost(i, j) = rng.Uniform();
  std::vector<double> mu = {0.1, 0.2, 0.3, 0.4};
  std::vector<double> nu = {0.2, 0.2, 0.2, 0.2, 0.2};
  SinkhornOptions opts;
  opts.max_iters = 2000;
  opts.tolerance = 1e-10;
  auto t = SinkhornTransport(cost, mu, nu, opts);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 4; ++i) {
    double row = 0.0;
    for (int j = 0; j < 5; ++j) row += (*t)(i, j);
    EXPECT_NEAR(row, mu[i], 1e-6);
  }
  for (int j = 0; j < 5; ++j) {
    double col = 0.0;
    for (int i = 0; i < 4; ++i) col += (*t)(i, j);
    EXPECT_NEAR(col, nu[j], 1e-6);
  }
}

TEST(SinkhornTest, LowEpsilonApproachesPermutation) {
  // Cost strongly favors the identity matching.
  DenseMatrix cost = DenseMatrix::FromRows(
      {{0.0, 1.0, 1.0}, {1.0, 0.0, 1.0}, {1.0, 1.0, 0.0}});
  SinkhornOptions opts;
  opts.epsilon = 0.01;
  opts.max_iters = 2000;
  auto t = SinkhornTransport(cost, UniformMarginal(3), UniformMarginal(3), opts);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 3; ++i) EXPECT_GT((*t)(i, i), 0.3);
}

TEST(SinkhornTest, RejectsBadInput) {
  DenseMatrix cost(2, 2, 1.0);
  EXPECT_FALSE(
      SinkhornTransport(cost, UniformMarginal(3), UniformMarginal(2)).ok());
  SinkhornOptions opts;
  opts.epsilon = 0.0;
  EXPECT_FALSE(
      SinkhornTransport(cost, UniformMarginal(2), UniformMarginal(2), opts)
          .ok());
  DenseMatrix neg(2, 2, -1.0);
  EXPECT_FALSE(
      SinkhornProject(neg, UniformMarginal(2), UniformMarginal(2)).ok());
}

TEST(KdTreeTest, NearestMatchesBruteForce) {
  Rng rng(10);
  const int n = 200;
  const int d = 4;
  DenseMatrix pts(n, d);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < d; ++j) pts(i, j) = rng.Normal();
  KdTree tree(pts);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> q(d);
    for (double& v : q) v = rng.Normal();
    auto nn = tree.Nearest(q.data());
    // Brute force.
    int best = -1;
    double best_d = 1e300;
    for (int i = 0; i < n; ++i) {
      double s = 0.0;
      for (int j = 0; j < d; ++j) {
        double diff = pts(i, j) - q[j];
        s += diff * diff;
      }
      if (s < best_d) {
        best_d = s;
        best = i;
      }
    }
    EXPECT_EQ(nn.index, best);
    EXPECT_NEAR(nn.distance, std::sqrt(best_d), 1e-9);
  }
}

TEST(KdTreeTest, KNearestSortedAndCorrectCount) {
  Rng rng(11);
  const int n = 100;
  DenseMatrix pts(n, 3);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < 3; ++j) pts(i, j) = rng.Uniform();
  KdTree tree(pts);
  std::vector<double> q = {0.5, 0.5, 0.5};
  auto nbrs = tree.KNearest(q.data(), 10);
  ASSERT_EQ(nbrs.size(), 10u);
  for (size_t i = 1; i < nbrs.size(); ++i) {
    EXPECT_LE(nbrs[i - 1].distance, nbrs[i].distance + 1e-12);
  }
  // k larger than n clamps.
  EXPECT_EQ(tree.KNearest(q.data(), 500).size(), static_cast<size_t>(n));
}

TEST(KdTreeTest, ExactPointFound) {
  DenseMatrix pts = DenseMatrix::FromRows({{0, 0}, {1, 1}, {2, 2}});
  KdTree tree(pts);
  std::vector<double> q = {1.0, 1.0};
  auto nn = tree.Nearest(q.data());
  EXPECT_EQ(nn.index, 1);
  EXPECT_NEAR(nn.distance, 0.0, 1e-12);
}

}  // namespace
}  // namespace graphalign
