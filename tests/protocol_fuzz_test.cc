// Deterministic fuzz suite for the wire protocol (DESIGN.md §11, §14): the
// decoders are total functions, so every byte sequence — pure noise,
// truncated prefixes of valid messages, valid messages with flipped bytes —
// must map to a typed outcome without crashing, hanging, or reading out of
// bounds. The suite is seeded (SplitMix64) so every run covers the same
// inputs; tools/run_sanitize.sh re-runs this binary under AddressSanitizer,
// where a silent overread becomes a hard failure.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "server/protocol.h"

namespace graphalign {
namespace {

// SplitMix64: tiny, seedable, and good enough to cover the byte space. Kept
// local so the fuzz corpus never shifts underneath a changed shared RNG.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  std::string Bytes(size_t n) {
    std::string out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(static_cast<char>(Next() & 0xff));
    }
    return out;
  }

 private:
  uint64_t state_;
};

// Exercises every decoder that can see attacker bytes on `payload`. The only
// assertion is "no crash / no hang / no overread": each call must return,
// and ASan enforces the memory-safety half.
void DrainDecoders(std::string_view payload) {
  { Result<Request> r = DecodeRequest(payload); (void)r; }
  { Result<Response> r = DecodeResponse(payload); (void)r; }
  { Result<AlignResult> r = DecodeAlignResult(payload); (void)r; }
  { Result<EvaluateResult> r = DecodeEvaluateResult(payload); (void)r; }
  { Result<StatsResult> r = DecodeStatsResult(payload); (void)r; }
  { Result<CacheInfoResult> r = DecodeCacheInfoResult(payload); (void)r; }
  { Result<ServerStatsResult> r = DecodeServerStatsResult(payload); (void)r; }
}

WireGraph SmallWireGraph(SplitMix64* rng, int num_nodes, int num_edges) {
  WireGraph g;
  g.num_nodes = num_nodes;
  for (int i = 0; i < num_edges; ++i) {
    int u = static_cast<int>(rng->Below(static_cast<uint64_t>(num_nodes)));
    int v = static_cast<int>(rng->Below(static_cast<uint64_t>(num_nodes)));
    if (u == v) v = (v + 1) % num_nodes;
    g.edges.push_back(Edge{u < v ? u : v, u < v ? v : u});
  }
  return g;
}

// A corpus of well-formed encoded payloads: one request per RequestType and
// one response per shape of body. Mutations start from these so the fuzz
// reaches deep decoder paths (graph loops, string reads, vector counts)
// instead of dying at the type byte.
std::vector<std::string> SeedCorpus(SplitMix64* rng) {
  std::vector<std::string> corpus;

  Request ping;
  ping.type = RequestType::kPing;
  ping.client = "fuzz";
  corpus.push_back(EncodeRequest(ping));

  Request align;
  align.type = RequestType::kAlign;
  align.client = "fuzz-align";
  align.align.algo = "NSD";
  align.align.assign = "JV";
  align.align.deadline_ms = 1500;
  align.align.mem_limit_mb = 256;
  align.align.g1 = SmallWireGraph(rng, 12, 20);
  align.align.g2 = SmallWireGraph(rng, 12, 20);
  corpus.push_back(EncodeRequest(align));

  Request evaluate;
  evaluate.type = RequestType::kEvaluate;
  evaluate.evaluate.g1 = SmallWireGraph(rng, 8, 10);
  evaluate.evaluate.g2 = SmallWireGraph(rng, 8, 10);
  evaluate.evaluate.mapping = {0, 1, 2, 3, 4, 5, 6, 7};
  evaluate.evaluate.truth = {0, 1, 2, 3, -1, -1, 6, 7};
  corpus.push_back(EncodeRequest(evaluate));

  Request stats;
  stats.type = RequestType::kStats;
  stats.stats.g = SmallWireGraph(rng, 10, 15);
  corpus.push_back(EncodeRequest(stats));

  for (RequestType t : {RequestType::kCacheInfo, RequestType::kShutdown,
                        RequestType::kServerStats}) {
    Request r;
    r.type = t;
    r.client = "fuzz";
    corpus.push_back(EncodeRequest(r));
  }

  Response ok;
  ok.code = ResponseCode::kOk;
  ok.cache_hit = true;
  ok.elapsed_us = 1234;
  AlignResult align_body;
  align_body.mapping = {3, 1, 0, 2};
  align_body.mnc = 0.5;
  align_body.ec = 0.25;
  align_body.s3 = 0.125;
  align_body.align_seconds = 0.01;
  align_body.degraded = true;
  align_body.degrade_reason = "eigen fallback";
  ok.body = EncodeAlignResult(align_body);
  corpus.push_back(EncodeResponse(ok));

  Response err;
  err.code = ResponseCode::kQuarantined;
  err.message = "request signature quarantined";
  corpus.push_back(EncodeResponse(err));

  EvaluateResult eval_body;
  eval_body.mnc = 0.75;
  eval_body.has_accuracy = true;
  eval_body.accuracy = 0.9;
  corpus.push_back(EncodeEvaluateResult(eval_body));

  StatsResult stats_body;
  stats_body.num_nodes = 60;
  stats_body.num_edges = 171;
  stats_body.content_hash = 0xdeadbeefcafef00dull;
  corpus.push_back(EncodeStatsResult(stats_body));

  CacheInfoResult cache_body;
  cache_body.hits = 10;
  cache_body.entries = 3;
  cache_body.capacity_bytes = 1u << 20;
  corpus.push_back(EncodeCacheInfoResult(cache_body));

  ServerStatsResult server_body;
  server_body.workers = 4;
  server_body.uptime_seconds = 12.5;
  server_body.accepted = 100;
  server_body.quarantined_signatures = 2;
  server_body.worker_restarts = {0, 1, 0, 3};
  corpus.push_back(EncodeServerStatsResult(server_body));

  return corpus;
}

TEST(ProtocolFuzzTest, RandomBlobsNeverCrashTheFrameParser) {
  SplitMix64 rng(0x6761665f66757a31ull);  // "gaf_fuz1"
  for (int iter = 0; iter < 4000; ++iter) {
    std::string blob = rng.Bytes(rng.Below(96));
    // A random prefix sometimes gets the real magic so length validation is
    // reached, not just the magic check.
    if (blob.size() >= 4 && rng.Below(2) == 0) {
      std::memcpy(blob.data(), kFrameMagic, sizeof(kFrameMagic));
    }
    std::string payload;
    size_t consumed = 0;
    FrameStatus status = TryParseFrame(blob, &payload, &consumed);
    switch (status) {
      case FrameStatus::kComplete:
        EXPECT_LE(consumed, blob.size());
        EXPECT_LE(payload.size(), kMaxFramePayload);
        break;
      case FrameStatus::kIncomplete:
      case FrameStatus::kBadMagic:
      case FrameStatus::kOversized:
      case FrameStatus::kEmpty:
        break;
      default:
        FAIL() << "untyped frame status " << static_cast<int>(status);
    }
  }
}

TEST(ProtocolFuzzTest, RandomBlobsNeverCrashTheDecoders) {
  SplitMix64 rng(0x6761665f66757a32ull);
  for (int iter = 0; iter < 2000; ++iter) {
    DrainDecoders(rng.Bytes(rng.Below(160)));
  }
  // Empty and single-byte payloads are the classic off-by-one edges.
  DrainDecoders("");
  for (int b = 0; b < 256; ++b) {
    char c = static_cast<char>(b);
    DrainDecoders(std::string_view(&c, 1));
  }
}

TEST(ProtocolFuzzTest, EveryTruncationOfEveryValidMessageIsTyped) {
  SplitMix64 rng(0x6761665f66757a33ull);
  for (const std::string& msg : SeedCorpus(&rng)) {
    for (size_t len = 0; len < msg.size(); ++len) {
      DrainDecoders(std::string_view(msg.data(), len));
      // Framed truncations: the stream reader's view of a torn message.
      std::string framed = EncodeFrame(msg).substr(0, kFrameHeaderBytes + len);
      std::string payload;
      size_t consumed = 0;
      EXPECT_EQ(TryParseFrame(framed, &payload, &consumed),
                FrameStatus::kIncomplete);
    }
  }
}

TEST(ProtocolFuzzTest, ByteFlipsOnValidMessagesAreTyped) {
  SplitMix64 rng(0x6761665f66757a34ull);
  for (const std::string& msg : SeedCorpus(&rng)) {
    // Single flip at every offset: cheap and covers the length/count fields
    // a random fuzz would rarely hit with exactly-wrong values.
    for (size_t pos = 0; pos < msg.size(); ++pos) {
      std::string mutated = msg;
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1u << rng.Below(8)));
      DrainDecoders(mutated);
    }
    // Multi-byte stomps: overwrite a random window with random bytes.
    for (int iter = 0; iter < 200; ++iter) {
      std::string mutated = msg;
      size_t pos = rng.Below(mutated.size());
      size_t n = 1 + rng.Below(8);
      for (size_t i = 0; i < n && pos + i < mutated.size(); ++i) {
        mutated[pos + i] = static_cast<char>(rng.Next() & 0xff);
      }
      DrainDecoders(mutated);
    }
  }
}

TEST(ProtocolFuzzTest, HostileLengthPrefixesDoNotBlowUpAllocation) {
  // A four-byte count field stomped to 0xffffffff must fail the bounds
  // check, not reserve 4 G entries. Build payloads that are valid up to a
  // huge trailing count.
  SplitMix64 rng(0x6761665f66757a35ull);
  for (const std::string& msg : SeedCorpus(&rng)) {
    for (int iter = 0; iter < 64; ++iter) {
      std::string mutated = msg;
      if (mutated.size() < 4) continue;
      size_t pos = rng.Below(mutated.size() - 3);
      uint32_t huge = 0xfffffff0u + static_cast<uint32_t>(rng.Below(16));
      std::memcpy(mutated.data() + pos, &huge, sizeof(huge));
      DrainDecoders(mutated);
    }
  }
}

TEST(ProtocolFuzzTest, ValidCorpusStillRoundTrips) {
  // Guard against the fuzz passing because the decoders reject everything:
  // the untouched corpus must decode cleanly as the type that produced it.
  SplitMix64 rng(0x6761665f66757a36ull);
  std::vector<std::string> corpus = SeedCorpus(&rng);
  int request_ok = 0;
  int response_ok = 0;
  for (const std::string& msg : corpus) {
    if (DecodeRequest(msg).ok()) ++request_ok;
    if (DecodeResponse(msg).ok()) ++response_ok;
  }
  EXPECT_GE(request_ok, 7);   // One per RequestType.
  EXPECT_GE(response_ok, 2);  // The kOk and kQuarantined seeds.

  Request align;
  align.type = RequestType::kAlign;
  align.client = "roundtrip";
  align.align.algo = "GRASP";
  align.align.g1 = SmallWireGraph(&rng, 6, 8);
  align.align.g2 = SmallWireGraph(&rng, 6, 8);
  Result<Request> decoded = DecodeRequest(EncodeRequest(align));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->type, RequestType::kAlign);
  EXPECT_EQ(decoded->client, "roundtrip");
  EXPECT_EQ(decoded->align.algo, "GRASP");
  EXPECT_EQ(decoded->align.g1.edges.size(), align.align.g1.edges.size());
}

}  // namespace
}  // namespace graphalign
