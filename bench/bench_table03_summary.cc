// Table 3: the summary view — best/second-best algorithm per graph model
// (from the Figs 2-6 workload at 5% one-way noise) and time/memory
// feasibility at n > 2^14 and average degree > 10^3.
//
// Feasibility is *computed*, not transcribed: runtime and peak memory are
// measured at two sizes (and two densities), a power law is fitted, and the
// fit is extrapolated to the paper's thresholds (3 hours, 256 GB). Pass
// --full to measure at larger base sizes for tighter fits.
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "scalability.h"

namespace graphalign {
namespace {

struct Feasibility {
  bool time_nodes;   // n = 2^14 within 3 hours?
  bool time_degree;  // degree = 10^3 (n = 2^14) within 3 hours?
  bool mem_nodes;    // n = 2^14 within 256 GB?
  bool mem_degree;   // degree = 10^3 within 256 GB?
};

// Measures cost(n) at two sizes and extrapolates cost(target) by the fitted
// power law cost = c * n^alpha.
double Extrapolate(double x1, double c1, double x2, double c2,
                   double target) {
  c1 = std::max(c1, 1e-9);
  c2 = std::max(c2, c1 * 1.0001);  // Monotone guard.
  const double alpha = std::log(c2 / c1) / std::log(x2 / x1);
  return c2 * std::pow(target / x2, alpha);
}

Feasibility MeasureFeasibility(const std::string& name, const BenchArgs& args) {
  const int n1 = args.full ? 1024 : 192;
  const int n2 = 2 * n1;
  const double deg1 = 10.0;
  const double deg2 = args.full ? 60.0 : 30.0;
  auto probe = [&](int n, double deg, double* seconds, double* mem_mb) {
    Rng rng(args.seed);
    AlignmentProblem problem = bench::MakeScalabilityProblem(n, deg, &rng);
    RunOutcome mem = MeasurePeakMemory(args, [&] {
      auto aligner = bench::MakeBenchAligner(name, deg < 20.0);
      auto sim = aligner->ComputeSimilarity(problem.g1, problem.g2);
      (void)sim;
    });
    *mem_mb = mem.completed ? mem.peak_mem_mb : 1e9;
    auto aligner = bench::MakeBenchAligner(name, deg < 20.0);
    WallTimer timer;
    auto sim = aligner->ComputeSimilarity(problem.g1, problem.g2);
    *seconds = sim.ok() ? timer.Seconds() : 1e9;
  };
  double t_a, m_a, t_b, m_b, t_c, m_c;
  probe(n1, deg1, &t_a, &m_a);
  probe(n2, deg1, &t_b, &m_b);
  probe(n1, deg2, &t_c, &m_c);

  constexpr double kTimeBudget = 3.0 * 3600.0;
  constexpr double kMemBudgetMb = 256.0 * 1024.0;
  const double big_n = 16384.0;
  Feasibility f;
  f.time_nodes = Extrapolate(n1, t_a, n2, t_b, big_n) < kTimeBudget;
  f.mem_nodes = Extrapolate(n1, m_a, n2, m_b, big_n) < kMemBudgetMb;
  // Degree scaling measured at fixed n, extrapolated to degree 1000 at 2^14
  // nodes (combine the node extrapolation with the degree slope).
  const double deg_slope_t =
      std::log(std::max(t_c, 1e-9) / std::max(t_a, 1e-9)) /
      std::log(deg2 / deg1);
  const double deg_slope_m = std::log(std::max(m_c, 1.0) / std::max(m_a, 1.0)) /
                             std::log(deg2 / deg1);
  const double t_base = Extrapolate(n1, t_a, n2, t_b, big_n);
  const double m_base = Extrapolate(n1, m_a, n2, m_b, big_n);
  f.time_degree =
      t_base * std::pow(1000.0 / deg1, std::max(deg_slope_t, 0.0)) <
      kTimeBudget;
  f.mem_degree =
      m_base * std::pow(1000.0 / deg1, std::max(deg_slope_m, 0.0)) <
      kMemBudgetMb;
  return f;
}

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  bench::Banner("Table 3",
                "summary: best algorithms per model + feasibility limits",
                args);
  const int n = args.full ? 1133 : 150;
  const int reps = args.repetitions > 0 ? args.repetitions : 2;

  // Quality per model at 5% one-way noise.
  struct Model {
    const char* name;
    Result<Graph> (*make)(int, Rng*);
  };
  const Model models[] = {
      {"ER", [](int nn, Rng* r) { return ErdosRenyi(nn, 0.009 * 1133 / nn, r); }},
      {"BA", [](int nn, Rng* r) { return BarabasiAlbert(nn, 5, r); }},
      {"WS", [](int nn, Rng* r) { return WattsStrogatz(nn, 10, 0.5, r); }},
      {"NW", [](int nn, Rng* r) { return NewmanWatts(nn, 6, 0.5, r); }},
      {"PL", [](int nn, Rng* r) { return PowerlawCluster(nn, 5, 0.5, r); }},
  };
  std::map<std::string, std::map<std::string, double>> acc;
  for (const Model& model : models) {
    Rng rng(args.seed);
    auto base = model.make(n, &rng);
    GA_CHECK(base.ok());
    for (const std::string& name : SelectedAlgorithms(args)) {
      auto aligner = bench::MakeBenchAligner(name, true);
      NoiseOptions noise;
      noise.level = 0.05;
      RunOutcome out = RunAveraged(aligner.get(), *base, noise,
                                   AssignmentMethod::kJonkerVolgenant, reps,
                                   args.seed, args);
      acc[model.name][name] = out.completed ? out.quality.accuracy : -1.0;
    }
  }
  auto rank_marker = [&](const std::string& model, const std::string& algo) {
    std::vector<std::pair<double, std::string>> ranked;
    for (const auto& [a, v] : acc[model]) ranked.push_back({v, a});
    std::sort(ranked.rbegin(), ranked.rend());
    if (!ranked.empty() && ranked[0].second == algo) return std::string("1st");
    if (ranked.size() > 1 && ranked[1].second == algo) return std::string("2nd");
    return std::string("-");
  };

  Table t({"Algorithm", "ER", "BA/PL", "WS/NW", "Time n>2^14",
           "Time deg>10^3", "Mem n>2^14", "Mem deg>10^3"});
  for (const std::string& name : SelectedAlgorithms(args)) {
    Feasibility f = MeasureFeasibility(name, args);
    auto mark2 = [&](const char* a, const char* b) {
      std::string ma = rank_marker(a, name);
      std::string mb = rank_marker(b, name);
      if (ma == "1st" || mb == "1st") return std::string("1st");
      if (ma == "2nd" || mb == "2nd") return std::string("2nd");
      return std::string("-");
    };
    t.AddRow({name, rank_marker("ER", name), mark2("BA", "PL"),
              mark2("WS", "NW"), f.time_nodes ? "yes" : "no",
              f.time_degree ? "yes" : "no", f.mem_nodes ? "yes" : "no",
              f.mem_degree ? "yes" : "no"});
  }
  bench::Emit(t, args);
  std::printf(
      "feasibility columns are power-law extrapolations from measured runs\n"
      "(two sizes, two densities) against the paper's 3h / 256GB budgets.\n");
  return 0;
}

}  // namespace
}  // namespace graphalign

int main(int argc, char** argv) { return graphalign::Main(argc, argv); }
