# Empty compiler generated dependencies file for bench_fig11_scal_nodes.
# This may be replaced when dependencies are built.
