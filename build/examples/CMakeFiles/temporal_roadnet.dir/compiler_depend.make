# Empty compiler generated dependencies file for temporal_roadnet.
# This may be replaced when dependencies are built.
