file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_scal_degree.dir/bench_fig12_scal_degree.cc.o"
  "CMakeFiles/bench_fig12_scal_degree.dir/bench_fig12_scal_degree.cc.o.d"
  "bench_fig12_scal_degree"
  "bench_fig12_scal_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_scal_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
