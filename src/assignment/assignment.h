// Assignment (alignment-extraction) algorithms (paper §6.2).
//
// Every alignment algorithm produces a node-similarity matrix; the final
// one-to-one correspondence is extracted by one of four methods the paper
// compares: NearestNeighbor (NN), SortGreedy (SG), Maximum Weight Matching /
// Hungarian (MWM), and Jonker-Volgenant (JV).
#ifndef GRAPHALIGN_ASSIGNMENT_ASSIGNMENT_H_
#define GRAPHALIGN_ASSIGNMENT_ASSIGNMENT_H_

#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "linalg/dense.h"

namespace graphalign {

// alignment[u] = matched node in G2 for node u of G1, or -1 if unmatched.
using Alignment = std::vector<int>;

enum class AssignmentMethod {
  kNearestNeighbor,
  kSortGreedy,
  kHungarian,  // "MWM" in the paper.
  kJonkerVolgenant,
};

const char* AssignmentMethodName(AssignmentMethod method);

// All extraction entry points accept an optional deadline: the O(n^3)
// solvers (Hungarian, JV) poll it between augmentation phases and abort
// with kDeadlineExceeded; the near-linear ones (NN, SG) check it once
// up front. The default deadline never expires.

// Per-row argmax. May assign the same target to several sources (the paper
// notes NN yields many-to-one matchings).
Result<Alignment> NearestNeighborAssign(const DenseMatrix& similarity,
                                        const Deadline& deadline = Deadline());

// Greedily matches the globally most similar unmatched pair until no pair is
// left. One-to-one. O(n*m log(n*m)).
Result<Alignment> SortGreedyAssign(const DenseMatrix& similarity,
                                   const Deadline& deadline = Deadline());

// Optimal linear assignment maximizing total similarity via the Hungarian
// algorithm with potentials (Kuhn-Munkres). O(n^3). One-to-one.
Result<Alignment> HungarianAssign(const DenseMatrix& similarity,
                                  const Deadline& deadline = Deadline());

// Optimal linear assignment via the Jonker-Volgenant shortest-augmenting-path
// algorithm with column reduction and augmenting row reduction. Produces the
// same objective value as Hungarian, typically faster. One-to-one.
Result<Alignment> JonkerVolgenantAssign(const DenseMatrix& similarity,
                                        const Deadline& deadline = Deadline());

// Dispatch by method enum.
Result<Alignment> ExtractAlignment(const DenseMatrix& similarity,
                                   AssignmentMethod method,
                                   const Deadline& deadline = Deadline());

// Total similarity of an alignment (sum over matched pairs).
double AlignmentScore(const DenseMatrix& similarity,
                      const Alignment& alignment);

}  // namespace graphalign

#endif  // GRAPHALIGN_ASSIGNMENT_ASSIGNMENT_H_
