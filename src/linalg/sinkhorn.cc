#include "linalg/sinkhorn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/failpoint.h"

namespace graphalign {

std::vector<double> UniformMarginal(int n) {
  GA_CHECK(n > 0);
  return std::vector<double>(n, 1.0 / n);
}

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// log(sum_j exp(x_j)) over the finite entries of x; kNegInf when all entries
// are kNegInf (an empty row/column of the kernel).
double LogSumExp(const std::vector<double>& x) {
  double hi = kNegInf;
  for (double v : x) hi = std::max(hi, v);
  if (hi == kNegInf) return kNegInf;
  double s = 0.0;
  for (double v : x) {
    if (v != kNegInf) s += std::exp(v - hi);
  }
  return hi + std::log(s);
}

// Log-domain Sinkhorn: iterates dual potentials (f, g) with log-sum-exp
// updates so that T = exp(logK + f_i + g_j) never forms underflowed scaling
// products. Entries of `kernel` that are zero or non-finite become kNegInf
// in logK (zero transport mass); rows/columns with no usable entries get a
// kNegInf potential, conceding their marginal instead of dividing by zero.
Result<DenseMatrix> SinkhornProjectLog(const DenseMatrix& kernel,
                                       const std::vector<double>& mu,
                                       const std::vector<double>& nu,
                                       int max_iters, double tolerance,
                                       const Deadline& deadline) {
  const int n = kernel.rows();
  const int m = kernel.cols();
  DenseMatrix log_k(n, m);
  for (int i = 0; i < n; ++i) {
    const double* krow = kernel.Row(i);
    double* lrow = log_k.Row(i);
    for (int j = 0; j < m; ++j) {
      const double k = krow[j];
      lrow[j] = (std::isfinite(k) && k > 0.0) ? std::log(k) : kNegInf;
    }
  }
  auto safe_log = [](double v) { return v > 0.0 ? std::log(v) : kNegInf; };
  std::vector<double> f(n, 0.0), g(m, 0.0);
  std::vector<double> row_buf(m), col_buf(n);

  DeadlineChecker checker(deadline, /*stride=*/4);
  for (int iter = 0; iter < max_iters; ++iter) {
    GA_RETURN_IF_EXPIRED(checker, "SinkhornProject");
    // f_i = log mu_i - LSE_j(logK_ij + g_j)
    for (int i = 0; i < n; ++i) {
      const double* lrow = log_k.Row(i);
      for (int j = 0; j < m; ++j) {
        row_buf[j] = (lrow[j] == kNegInf || g[j] == kNegInf)
                         ? kNegInf
                         : lrow[j] + g[j];
      }
      const double lse = LogSumExp(row_buf);
      f[i] = lse == kNegInf ? kNegInf : safe_log(mu[i]) - lse;
    }
    // s_j = LSE_i(logK_ij + f_i); the column marginal error uses the
    // pre-update g, then g_j = log nu_j - s_j.
    double err = 0.0;
    for (int j = 0; j < m; ++j) {
      for (int i = 0; i < n; ++i) {
        col_buf[i] = (log_k(i, j) == kNegInf || f[i] == kNegInf)
                         ? kNegInf
                         : log_k(i, j) + f[i];
      }
      const double s = LogSumExp(col_buf);
      const double col_mass =
          (s == kNegInf || g[j] == kNegInf) ? 0.0 : std::exp(s + g[j]);
      err += std::fabs(col_mass - nu[j]);
      g[j] = s == kNegInf ? kNegInf : safe_log(nu[j]) - s;
    }
    if (err < tolerance) break;
  }

  DenseMatrix t(n, m);
  for (int i = 0; i < n; ++i) {
    const double* lrow = log_k.Row(i);
    double* trow = t.Row(i);
    for (int j = 0; j < m; ++j) {
      if (lrow[j] == kNegInf || f[i] == kNegInf || g[j] == kNegInf) {
        trow[j] = 0.0;
      } else {
        const double v = std::exp(lrow[j] + f[i] + g[j]);
        trow[j] = std::isfinite(v) ? v : 0.0;
      }
    }
  }
  return t;
}

}  // namespace

Result<DenseMatrix> SinkhornProject(const DenseMatrix& kernel,
                                    const std::vector<double>& mu,
                                    const std::vector<double>& nu,
                                    int max_iters, double tolerance,
                                    const Deadline& deadline,
                                    bool* used_log_fallback) {
  if (used_log_fallback != nullptr) *used_log_fallback = false;
  const int n = kernel.rows();
  const int m = kernel.cols();
  if (static_cast<int>(mu.size()) != n || static_cast<int>(nu.size()) != m) {
    return Status::InvalidArgument("SinkhornProject: marginal size mismatch");
  }
  bool needs_log_domain = GA_FAILPOINT_FIRED("linalg.sinkhorn.underflow");
  std::vector<double> row_mass(n, 0.0), col_mass(m, 0.0);
  for (int i = 0; i < n; ++i) {
    const double* krow = kernel.Row(i);
    for (int j = 0; j < m; ++j) {
      const double k = krow[j];
      if (std::isfinite(k) && k < 0.0) {
        // Negative mass is a caller bug, never an underflow artifact.
        return Status::InvalidArgument(
            "SinkhornProject: kernel must be finite and non-negative");
      }
      if (!std::isfinite(k)) {
        GA_FAILPOINT_STATUS(
            "linalg.sinkhorn.strict",
            Status::InvalidArgument(
                "SinkhornProject: kernel must be finite and non-negative"));
        needs_log_domain = true;
      } else {
        row_mass[i] += k;
        col_mass[j] += k;
      }
    }
  }
  // A row/column that underflowed to all-zero while its marginal wants mass
  // cannot be scaled back; only the log-domain path degrades gracefully.
  if (!needs_log_domain) {
    for (int i = 0; i < n; ++i) {
      if (row_mass[i] <= 0.0 && mu[i] > 0.0) needs_log_domain = true;
    }
    for (int j = 0; j < m; ++j) {
      if (col_mass[j] <= 0.0 && nu[j] > 0.0) needs_log_domain = true;
    }
  }
  if (needs_log_domain) {
    if (used_log_fallback != nullptr) *used_log_fallback = true;
    return SinkhornProjectLog(kernel, mu, nu, max_iters, tolerance, deadline);
  }
  std::vector<double> a(n, 1.0);
  std::vector<double> b(m, 1.0);
  std::vector<double> kb(n), ka(m);
  constexpr double kTiny = 1e-300;

  DeadlineChecker checker(deadline, /*stride=*/8);
  for (int iter = 0; iter < max_iters; ++iter) {
    GA_RETURN_IF_EXPIRED(checker, "SinkhornProject");
    // a = mu / (K b)
    for (int i = 0; i < n; ++i) {
      double s = 0.0;
      const double* krow = kernel.Row(i);
      for (int j = 0; j < m; ++j) s += krow[j] * b[j];
      kb[i] = s;
      a[i] = mu[i] / std::max(s, kTiny);
    }
    // b = nu / (K^T a)
    std::fill(ka.begin(), ka.end(), 0.0);
    for (int i = 0; i < n; ++i) {
      const double* krow = kernel.Row(i);
      const double ai = a[i];
      for (int j = 0; j < m; ++j) ka[j] += krow[j] * ai;
    }
    double err = 0.0;
    for (int j = 0; j < m; ++j) {
      err += std::fabs(ka[j] * b[j] - nu[j]);
      b[j] = nu[j] / std::max(ka[j], kTiny);
    }
    if (err < tolerance) break;
  }

  DenseMatrix t(n, m);
  bool finite = true;
  for (int i = 0; i < n; ++i) {
    const double* krow = kernel.Row(i);
    double* trow = t.Row(i);
    for (int j = 0; j < m; ++j) {
      trow[j] = a[i] * krow[j] * b[j];
      finite = finite && std::isfinite(trow[j]);
    }
  }
  if (!finite) {
    // Scaling factors overflowed (a*K*b hit inf*0 or similar): redo the
    // projection in the log domain rather than returning poisoned mass.
    if (used_log_fallback != nullptr) *used_log_fallback = true;
    return SinkhornProjectLog(kernel, mu, nu, max_iters, tolerance, deadline);
  }
  return t;
}

Result<DenseMatrix> SinkhornTransport(const DenseMatrix& cost,
                                      const std::vector<double>& mu,
                                      const std::vector<double>& nu,
                                      const SinkhornOptions& options,
                                      const Deadline& deadline) {
  const int n = cost.rows();
  const int m = cost.cols();
  if (n == 0 || m == 0) {
    return Status::InvalidArgument("SinkhornTransport: empty cost matrix");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("SinkhornTransport: epsilon must be > 0");
  }
  // Stabilize: exp(-(C - min C)/eps) keeps the kernel in (0, 1].
  double cmin = cost(0, 0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) cmin = std::min(cmin, cost(i, j));
  }
  DenseMatrix kernel(n, m);
  for (int i = 0; i < n; ++i) {
    const double* crow = cost.Row(i);
    double* krow = kernel.Row(i);
    for (int j = 0; j < m; ++j) {
      krow[j] = std::exp(-(crow[j] - cmin) / options.epsilon);
    }
  }
  return SinkhornProject(kernel, mu, nu, options.max_iters, options.tolerance,
                         deadline);
}

}  // namespace graphalign
