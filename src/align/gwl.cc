#include "align/gwl.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"

namespace graphalign {

namespace {

DenseMatrix RandomEmbedding(int n, int d, Rng* rng) {
  DenseMatrix x(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) x(i, j) = rng->Normal() / std::sqrt(d);
  }
  return x;
}

// Squared-distance cost between embedding rows, scaled by `weight`.
DenseMatrix EmbeddingCost(const DenseMatrix& x1, const DenseMatrix& x2,
                          double weight) {
  const int n1 = x1.rows();
  const int n2 = x2.rows();
  const int d = x1.cols();
  DenseMatrix cost(n1, n2);
  ParallelFor(n1, [&](int64_t lo, int64_t hi) {
    for (int i = static_cast<int>(lo); i < hi; ++i) {
      const double* a = x1.Row(i);
      double* crow = cost.Row(i);
      for (int j = 0; j < n2; ++j) {
        const double* b = x2.Row(j);
        double s = 0.0;
        for (int k = 0; k < d; ++k) {
          const double diff = a[k] - b[k];
          s += diff * diff;
        }
        crow[j] = weight * s;
      }
    }
  }, std::max<int64_t>(2, 500'000 / (static_cast<int64_t>(n2) * d + 1)));
  return cost;
}

// Pulls each row of x1 toward the transport-weighted barycenter of x2.
void UpdateEmbeddings(const DenseMatrix& t, DenseMatrix* x1,
                      const DenseMatrix& x2, double lr) {
  const int n1 = x1->rows();
  const int d = x1->cols();
  for (int i = 0; i < n1; ++i) {
    const double* trow = t.Row(i);
    double mass = 0.0;
    for (int j = 0; j < x2.rows(); ++j) mass += trow[j];
    if (mass <= 0.0) continue;
    double* xrow = x1->Row(i);
    for (int k = 0; k < d; ++k) {
      double target = 0.0;
      for (int j = 0; j < x2.rows(); ++j) target += trow[j] * x2(j, k);
      target /= mass;
      xrow[k] = (1.0 - lr) * xrow[k] + lr * target;
    }
  }
}

}  // namespace

Result<DenseMatrix> GwlAligner::ComputeSimilarityImpl(
    const Graph& g1, const Graph& g2, const Deadline& deadline) {
  GA_RETURN_IF_ERROR(ValidateInputs(g1, g2));
  if (options_.epochs < 1 || options_.embedding_dim < 1) {
    return Status::InvalidArgument("GWL: bad options");
  }
  const int n1 = g1.num_nodes();
  const int n2 = g2.num_nodes();
  const CsrMatrix cs = g1.AdjacencyCsr();
  const CsrMatrix ct = g2.AdjacencyCsr();
  // Node distributions: degree-proportional, as GWL's reference
  // implementation estimates them from the graph.
  std::vector<double> mu(n1), nu(n2);
  double zs = 0.0, zt = 0.0;
  for (int i = 0; i < n1; ++i) zs += g1.Degree(i) + 1.0;
  for (int j = 0; j < n2; ++j) zt += g2.Degree(j) + 1.0;
  for (int i = 0; i < n1; ++i) mu[i] = (g1.Degree(i) + 1.0) / zs;
  for (int j = 0; j < n2; ++j) nu[j] = (g2.Degree(j) + 1.0) / zt;

  Rng rng(options_.seed);
  DenseMatrix x1 = RandomEmbedding(n1, options_.embedding_dim, &rng);
  DenseMatrix x2 = RandomEmbedding(n2, options_.embedding_dim, &rng);

  DenseMatrix t(n1, n2);
  for (int i = 0; i < n1; ++i) {
    for (int j = 0; j < n2; ++j) t(i, j) = mu[i] * nu[j];
  }
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    GA_RETURN_IF_EXPIRED(deadline, "GWL");
    // The embedding (Wasserstein) term enters from the second epoch, once
    // the transport has shaped the embeddings.
    DenseMatrix extra;
    const DenseMatrix* extra_ptr = nullptr;
    if (epoch > 0) {
      extra = EmbeddingCost(x1, x2, options_.embedding_weight);
      extra_ptr = &extra;
    }
    GA_ASSIGN_OR_RETURN(
        t, GromovWassersteinTransport(cs, ct, mu, nu, options_.gw, extra_ptr,
                                      &t, deadline));
    UpdateEmbeddings(t, &x1, x2, /*lr=*/0.5);
    DenseMatrix tt = t.Transposed();
    UpdateEmbeddings(tt, &x2, x1, /*lr=*/0.5);
  }
  const double mx = t.MaxAbs();
  if (mx > 0.0) t.Scale(1.0 / mx);
  return t;
}

}  // namespace graphalign
