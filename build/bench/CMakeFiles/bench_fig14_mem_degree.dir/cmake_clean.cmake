file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_mem_degree.dir/bench_fig14_mem_degree.cc.o"
  "CMakeFiles/bench_fig14_mem_degree.dir/bench_fig14_mem_degree.cc.o.d"
  "bench_fig14_mem_degree"
  "bench_fig14_mem_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_mem_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
