// Cooperative deadline propagation for long-running computations.
//
// The benchmark protocol (paper §5.1, Table 3) reports runs that exceed the
// wall-clock budget as DNF. A Deadline carries a monotonic-clock expiry down
// through the aligners, the iterative linalg solvers, graphlet enumeration,
// and the assignment solvers; each long-running loop polls it cooperatively
// and bails out with StatusCode::kDeadlineExceeded. A default-constructed
// Deadline never expires, so every existing call site keeps its behavior.
//
// Polling the clock in a hot loop is not free, so inner loops go through
// DeadlineChecker, which consults the clock only once every `stride` calls.
#ifndef GRAPHALIGN_COMMON_DEADLINE_H_
#define GRAPHALIGN_COMMON_DEADLINE_H_

#include <chrono>
#include <string>

#include "common/status.h"

namespace graphalign {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  // Never expires.
  Deadline() = default;
  static Deadline Infinite() { return Deadline(); }

  // Expires `seconds` from now; seconds <= 0 yields an already-expired
  // deadline (zero-budget fast fail). Budgets beyond ~30 years are treated
  // as infinite to avoid chrono overflow.
  static Deadline AfterSeconds(double seconds) {
    if (seconds >= kInfiniteSeconds) return Infinite();
    if (seconds <= 0.0) return Deadline(Clock::now());
    return Deadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(seconds)));
  }

  bool is_infinite() const { return expiry_ == Clock::time_point::max(); }

  // True once the expiry has passed. Consults the clock (cheap but not free;
  // amortize via DeadlineChecker in tight loops).
  bool Expired() const { return !is_infinite() && Clock::now() >= expiry_; }

  // Seconds until expiry (<= 0 if expired; +inf if infinite).
  double RemainingSeconds() const {
    if (is_infinite()) return kInfiniteSeconds;
    return std::chrono::duration<double>(expiry_ - Clock::now()).count();
  }

 private:
  static constexpr double kInfiniteSeconds = 1e9;  // ~31 years.

  explicit Deadline(Clock::time_point expiry) : expiry_(expiry) {}

  Clock::time_point expiry_ = Clock::time_point::max();
};

// Amortized deadline polling for tight loops: consults the clock on the
// first call and every `stride` calls thereafter; once expired, stays
// expired. An infinite deadline short-circuits to a single branch.
class DeadlineChecker {
 public:
  explicit DeadlineChecker(const Deadline& deadline, int stride = 32)
      : deadline_(deadline), stride_(stride) {}

  bool Expired() {
    if (expired_) return true;
    if (deadline_.is_infinite()) return false;
    if (--countdown_ > 0) return false;
    countdown_ = stride_;
    expired_ = deadline_.Expired();
    return expired_;
  }

 private:
  Deadline deadline_;
  int stride_;
  int countdown_ = 1;  // Check the clock on the first call.
  bool expired_ = false;
};

}  // namespace graphalign

// Returns Status::DeadlineExceeded from the enclosing function when the
// deadline (or checker) has expired. `where` names the aborted computation.
#define GA_RETURN_IF_EXPIRED(deadline_or_checker, where)             \
  do {                                                               \
    if ((deadline_or_checker).Expired()) {                           \
      return ::graphalign::Status::DeadlineExceeded(                 \
          std::string(where) + ": deadline exceeded");               \
    }                                                                \
  } while (false)

#endif  // GRAPHALIGN_COMMON_DEADLINE_H_
