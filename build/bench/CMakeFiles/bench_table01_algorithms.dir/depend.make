# Empty dependencies file for bench_table01_algorithms.
# This may be replaced when dependencies are built.
