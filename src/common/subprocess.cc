#include "common/subprocess.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <new>

#include "common/deadline.h"
#include "common/failpoint.h"
#include "common/memory.h"
#include "common/parallel.h"
#include "common/timer.h"

namespace graphalign {

namespace {

// Payload frames are "GAPL" + little-endian u64 length + bytes. The magic
// lets the parent distinguish "child wrote nothing" from "child wrote
// garbage"; the length lets it detect a crash mid-write.
constexpr char kPayloadMagic[4] = {'G', 'A', 'P', 'L'};

void SetAddressSpaceLimit(int64_t headroom_bytes) {
  // RLIMIT_AS counts every mapping — the binary, shared libraries, and the
  // 8 MiB stacks of pool threads the child inherited from the parent — so an
  // absolute cap of a few hundred MB could be spent before the workload
  // allocates a byte. Budget on top of the current VmSize instead; when
  // /proc is unavailable fall back to the absolute value.
  int64_t base = CurrentVmBytes();
  const rlim_t cap = static_cast<rlim_t>((base > 0 ? base : 0) + headroom_bytes);
  struct rlimit rl;
  rl.rlim_cur = cap;
  rl.rlim_max = cap;
  setrlimit(RLIMIT_AS, &rl);
}

void DrainPipe(int fd, std::string* raw) {
  char buf[4096];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      raw->append(buf, static_cast<size_t>(n));
      continue;
    }
    return;  // 0 = EOF, -1 = EAGAIN or error; either way stop for now.
  }
}

// Extracts one complete frame from the raw pipe bytes.
bool ParsePayload(const std::string& raw, std::string* payload) {
  if (raw.size() < sizeof(kPayloadMagic) + sizeof(uint64_t)) return false;
  if (std::memcmp(raw.data(), kPayloadMagic, sizeof(kPayloadMagic)) != 0) {
    return false;
  }
  uint64_t len = 0;
  std::memcpy(&len, raw.data() + sizeof(kPayloadMagic), sizeof(len));
  const size_t header = sizeof(kPayloadMagic) + sizeof(uint64_t);
  if (raw.size() < header + len) return false;
  payload->assign(raw, header, len);
  return true;
}

const char* SignalName(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    default: return "signal";
  }
}

}  // namespace

const char* RunStatusName(RunStatus status) {
  switch (status) {
    case RunStatus::kOk: return "OK";
    case RunStatus::kExit: return "EXIT";
    case RunStatus::kCrash: return "CRASH";
    case RunStatus::kOom: return "OOM";
    case RunStatus::kTimeout: return "TIMEOUT";
  }
  return "UNKNOWN";
}

Result<int> CountProcThreads() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return Status::Internal("/proc/self/status unavailable");
  }
  char line[256];
  int threads = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "Threads:", 8) == 0) {
      threads = static_cast<int>(std::strtol(line + 8, nullptr, 10));
      break;
    }
  }
  std::fclose(f);
  if (threads <= 0) {
    return Status::Internal("Threads line missing from /proc/self/status");
  }
  return threads;
}

namespace {
std::atomic<int> g_fork_tolerant_threads{0};
}  // namespace

ScopedForkTolerantThread::ScopedForkTolerantThread() {
  g_fork_tolerant_threads.fetch_add(1, std::memory_order_relaxed);
}

ScopedForkTolerantThread::~ScopedForkTolerantThread() {
  g_fork_tolerant_threads.fetch_sub(1, std::memory_order_relaxed);
}

int ForkTolerantThreadsRegistered() {
  return g_fork_tolerant_threads.load(std::memory_order_relaxed);
}

bool WritePayload(int fd, const std::string& bytes) {
  std::string frame(kPayloadMagic, sizeof(kPayloadMagic));
  const uint64_t len = bytes.size();
  frame.append(reinterpret_cast<const char*>(&len), sizeof(len));
  frame.append(bytes);
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = write(fd, frame.data() + off, frame.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

Result<SubprocessResult> RunIsolated(
    const std::function<int(int payload_fd)>& body,
    const SubprocessOptions& options) {
  // Refuse to fork when threads we do not know about exist: a lock held by
  // one of them at fork time would be held forever in the child. The pool
  // workers are accounted for because ParallelFor runs inline after fork;
  // explicitly registered fork-tolerant threads (server workers) have made
  // the same promise via ScopedForkTolerantThread.
  auto threads = CountProcThreads();
  const int known =
      1 + ParallelWorkersStarted() + ForkTolerantThreadsRegistered();
  if (threads.ok() && *threads > known) {
    return Status::FailedPrecondition(
        "RunIsolated: " + std::to_string(*threads) +
        " threads running but only " + std::to_string(known) +
        " (main + pool workers + registered fork-tolerant threads) are "
        "known fork-tolerant");
  }

  GA_FAILPOINT_STATUS(
      "subprocess.fork.error",
      Status::Unavailable("fork() failed: Resource temporarily unavailable"));

  int fds[2];
  if (pipe(fds) != 0) {
    return Status::Internal("pipe() failed: " + std::string(strerror(errno)));
  }
  // Buffered stdio shared with the child would otherwise be flushed twice.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return Status::Internal("fork() failed: " + std::string(strerror(errno)));
  }

  if (pid == 0) {
    // Child. Exit via _exit in every path: the parent owns atexit state.
    close(fds[0]);
    std::set_new_handler(+[]() { _exit(kOomExitCode); });
    struct rlimit no_core = {0, 0};
    setrlimit(RLIMIT_CORE, &no_core);  // A crashing cell must not dump GBs.
    if (options.mem_limit_bytes > 0) {
      SetAddressSpaceLimit(options.mem_limit_bytes);
    }
    // Child-side fault site: crash/oom modes die here, inside the sandbox,
    // exercising the parent's containment and classification.
    if (GA_FAILPOINT_FIRED("subprocess.child.fault")) _exit(1);
    const int rc = body(fds[1]);
    std::fflush(stdout);
    std::fflush(stderr);
    close(fds[1]);
    _exit(rc);
  }

  // Parent: drain the payload pipe while waiting, so a chatty child never
  // blocks on a full pipe, and enforce the wall-clock cap with SIGKILL.
  close(fds[1]);
  fcntl(fds[0], F_SETFL, O_NONBLOCK);
  const Deadline hard_cap = options.wall_limit_seconds > 0
                                ? Deadline::AfterSeconds(options.wall_limit_seconds)
                                : Deadline::Infinite();
  WallTimer timer;
  std::string raw;
  bool killed_on_timeout = false;
  bool killed_on_cancel = false;
  int wstatus = 0;
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fds[0];
    pfd.events = POLLIN;
    pfd.revents = 0;
    if (poll(&pfd, 1, /*timeout_ms=*/50) > 0) DrainPipe(fds[0], &raw);
    const pid_t w = waitpid(pid, &wstatus, WNOHANG);
    if (w == pid) break;
    if (w < 0 && errno != EINTR) {
      close(fds[0]);
      return Status::Internal("waitpid() failed: " +
                              std::string(strerror(errno)));
    }
    if (!killed_on_timeout && hard_cap.Expired()) {
      kill(pid, SIGKILL);
      killed_on_timeout = true;
    }
    if (!killed_on_timeout && options.cancel && options.cancel()) {
      kill(pid, SIGKILL);
      killed_on_timeout = true;
      killed_on_cancel = true;
    }
  }
  DrainPipe(fds[0], &raw);  // Bytes written before the child exited.
  close(fds[0]);

  SubprocessResult result;
  result.wall_seconds = timer.Seconds();
  result.payload_valid = ParsePayload(raw, &result.payload);
  if (WIFEXITED(wstatus)) {
    const int code = WEXITSTATUS(wstatus);
    result.exit_code = code;
    if (code == 0) {
      result.status = RunStatus::kOk;
      result.detail = "ok";
    } else if (code == kOomExitCode) {
      result.status = RunStatus::kOom;
      result.detail = "allocation failed under the memory limit";
    } else {
      result.status = RunStatus::kExit;
      result.detail = "exit code " + std::to_string(code);
    }
  } else if (WIFSIGNALED(wstatus)) {
    const int sig = WTERMSIG(wstatus);
    result.term_signal = sig;
    if (sig == SIGKILL && killed_on_timeout) {
      result.status = RunStatus::kTimeout;
      result.killed_on_cancel = killed_on_cancel;
      result.detail = killed_on_cancel
                          ? "killed by the caller's cancellation hook"
                          : "killed after exceeding the wall-clock cap";
    } else if (sig == SIGKILL) {
      // Nobody else SIGKILLs the child; the kernel OOM-killer does.
      result.status = RunStatus::kOom;
      result.detail = "killed (likely by the kernel OOM killer)";
    } else {
      result.status = RunStatus::kCrash;
      result.detail = "killed by signal " + std::to_string(sig) + " (" +
                      SignalName(sig) + ")";
    }
  } else {
    result.status = RunStatus::kCrash;
    result.detail = "child ended with unexpected wait status";
  }
  return result;
}

}  // namespace graphalign
