# Empty dependencies file for bench_micro_aligners.
# This may be replaced when dependencies are built.
