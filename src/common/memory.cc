#include "common/memory.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "common/subprocess.h"

namespace graphalign {

namespace {

// Parses "<Key>:   <value> kB" lines from /proc/self/status.
int64_t ReadProcStatusKb(const char* key) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  int64_t kb = 0;
  const size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      kb = std::strtoll(line + key_len + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

// Child exit code distinguishing "VmHWM unreadable" from workload errors.
constexpr int kNoProcExitCode = 119;

}  // namespace

int64_t PeakRssBytes() { return ReadProcStatusKb("VmHWM") * 1024; }

int64_t CurrentRssBytes() { return ReadProcStatusKb("VmRSS") * 1024; }

int64_t CurrentVmBytes() { return ReadProcStatusKb("VmSize") * 1024; }

Result<double> MeasurePeakMemoryMb(const std::function<void()>& workload) {
  auto run = RunIsolated([&](int payload_fd) {
    workload();
    const int64_t peak = PeakRssBytes();
    if (peak <= 0) return kNoProcExitCode;
    const std::string bytes(reinterpret_cast<const char*>(&peak),
                            sizeof(peak));
    return WritePayload(payload_fd, bytes) ? 0 : 1;
  });
  if (!run.ok()) return run.status();
  switch (run->status) {
    case RunStatus::kOk:
      break;
    case RunStatus::kExit:
      if (run->exit_code == kNoProcExitCode) {
        return Status::Internal(
            "peak RSS not measurable: /proc unavailable in the child");
      }
      return Status::Internal("measurement child failed: " + run->detail);
    case RunStatus::kCrash:
      return Status::Internal("workload crashed: " + run->detail);
    case RunStatus::kOom:
      return Status::ResourceExhausted("workload ran out of memory: " +
                                       run->detail);
    case RunStatus::kTimeout:
      return Status::DeadlineExceeded("measurement child timed out");
  }
  if (!run->payload_valid || run->payload.size() != sizeof(int64_t)) {
    return Status::Internal("measurement child reported no peak RSS");
  }
  int64_t peak = 0;
  std::memcpy(&peak, run->payload.data(), sizeof(peak));
  return static_cast<double>(peak) / (1024.0 * 1024.0);
}

}  // namespace graphalign
