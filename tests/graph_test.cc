#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graphlets.h"
#include "graph/io.h"

namespace graphalign {
namespace {

Graph MustGraph(int n, const std::vector<Edge>& edges) {
  auto g = Graph::FromEdges(n, edges);
  GA_CHECK(g.ok());
  return *std::move(g);
}

TEST(GraphTest, EmptyGraph) {
  Graph g = MustGraph(0, {});
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.IsConnected());
}

TEST(GraphTest, BasicAdjacency) {
  Graph g = MustGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  auto nbrs = g.Neighbors(1);
  EXPECT_EQ(std::vector<int>(nbrs.begin(), nbrs.end()),
            (std::vector<int>{0, 2}));
}

TEST(GraphTest, DeduplicatesEdges) {
  Graph g = MustGraph(3, {{0, 1}, {1, 0}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.Degree(0), 1);
}

TEST(GraphTest, RejectsSelfLoopsAndOutOfRange) {
  EXPECT_FALSE(Graph::FromEdges(3, {{1, 1}}).ok());
  EXPECT_FALSE(Graph::FromEdges(3, {{0, 3}}).ok());
  EXPECT_FALSE(Graph::FromEdges(3, {{-1, 0}}).ok());
  EXPECT_FALSE(Graph::FromEdges(-1, {}).ok());
}

TEST(GraphTest, DegreeStatistics) {
  Graph g = MustGraph(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(g.MaxDegree(), 3);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 1.5);
}

TEST(GraphTest, EdgesRoundTrip) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 3}};
  Graph g = MustGraph(4, edges);
  std::vector<Edge> out = g.Edges();
  EXPECT_EQ(out.size(), 3u);
  for (const Edge& e : out) EXPECT_LT(e.u, e.v);
}

TEST(GraphTest, AdjacencyCsrIsSymmetric) {
  Graph g = MustGraph(3, {{0, 1}, {1, 2}});
  DenseMatrix a = g.AdjacencyCsr().ToDense();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(a(i, j), a(j, i));
      EXPECT_DOUBLE_EQ(a(i, j), g.HasEdge(i, j) ? 1.0 : 0.0);
    }
  }
}

TEST(GraphTest, RandomWalkRowsSumToOne) {
  Graph g = MustGraph(4, {{0, 1}, {0, 2}, {2, 3}});
  auto rw = g.RandomWalkCsr();
  std::vector<double> sums = rw.RowSums();
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(sums[i], 1.0, 1e-12);
}

TEST(GraphTest, NormalizedLaplacianProperties) {
  Graph g = MustGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  DenseMatrix l = g.NormalizedLaplacianDense();
  // Diagonal 1, symmetric, row i sums to 1 - sum of d^-1/2 terms;
  // for a 2-regular cycle, off-diagonals are -1/2.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(l(i, i), 1.0);
    for (int j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(l(i, j), l(j, i));
      if (g.HasEdge(i, j)) EXPECT_DOUBLE_EQ(l(i, j), -0.5);
    }
  }
}

TEST(GraphTest, PermutedPreservesStructure) {
  Graph g = MustGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}});
  Rng rng(1);
  std::vector<int> perm = RandomPermutation(5, &rng);
  auto pg = g.Permuted(perm);
  ASSERT_TRUE(pg.ok());
  EXPECT_EQ(pg->num_edges(), g.num_edges());
  for (const Edge& e : g.Edges()) {
    EXPECT_TRUE(pg->HasEdge(perm[e.u], perm[e.v]));
  }
  // Degree sequence preserved under relabeling.
  std::vector<int> d1(5), d2(5);
  for (int v = 0; v < 5; ++v) {
    d1[v] = g.Degree(v);
    d2[perm[v]] = pg->Degree(perm[v]);
  }
  for (int v = 0; v < 5; ++v) EXPECT_EQ(g.Degree(v), pg->Degree(perm[v]));
}

TEST(GraphTest, PermutedRejectsInvalid) {
  Graph g = MustGraph(3, {{0, 1}});
  EXPECT_FALSE(g.Permuted({0, 1}).ok());        // Wrong size.
  EXPECT_FALSE(g.Permuted({0, 1, 1}).ok());     // Duplicate.
  EXPECT_FALSE(g.Permuted({0, 1, 5}).ok());     // Out of range.
}

TEST(GraphTest, ConnectedComponents) {
  Graph g = MustGraph(6, {{0, 1}, {1, 2}, {3, 4}});
  int k = 0;
  std::vector<int> comp = g.ConnectedComponents(&k);
  EXPECT_EQ(k, 3);  // {0,1,2}, {3,4}, {5}.
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[0], comp[5]);
  EXPECT_FALSE(g.IsConnected());
  EXPECT_EQ(g.NodesOutsideLargestComponent(), 3);
}

TEST(GraphTest, TriangleCounts) {
  // Triangle 0-1-2 plus pendant 3.
  Graph g = MustGraph(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  std::vector<int64_t> tri = g.TriangleCounts();
  EXPECT_EQ(tri[0], 1);
  EXPECT_EQ(tri[1], 1);
  EXPECT_EQ(tri[2], 1);
  EXPECT_EQ(tri[3], 0);
}

TEST(GraphTest, TriangleCountsOnK4) {
  Graph g = MustGraph(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  for (int64_t t : g.TriangleCounts()) EXPECT_EQ(t, 3);
}

TEST(IoTest, RoundTrip) {
  Graph g = MustGraph(5, {{0, 1}, {1, 2}, {3, 4}});
  std::string path = testing::TempDir() + "/io_roundtrip.txt";
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  auto g2 = ReadEdgeList(path);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->num_edges(), 3);
  EXPECT_TRUE(g2->HasEdge(1, 2));
  std::remove(path.c_str());
}

TEST(IoTest, ParsesCommentsAndPreservesNumericIds) {
  std::string path = testing::TempDir() + "/io_comments.txt";
  FILE* f = fopen(path.c_str(), "w");
  fputs("# comment\n% other comment\n10 20\n20 30\n10 10\n", f);
  fclose(f);
  auto g = ReadEdgeList(path);
  ASSERT_TRUE(g.ok());
  // Dense numeric ids are preserved verbatim (nodes 0..30 exist, self-loop
  // dropped) so mapping files stay consistent across reloads.
  EXPECT_EQ(g->num_nodes(), 31);
  EXPECT_EQ(g->num_edges(), 2);
  EXPECT_TRUE(g->HasEdge(10, 20));
  EXPECT_TRUE(g->HasEdge(20, 30));
  std::remove(path.c_str());
}

TEST(IoTest, CountsDroppedSelfLoopsInLoadStats) {
  // Self-loops are silently dropped on load; LoadStats pins the count so the
  // `stats` subcommand (and any caller) can report the discrepancy between
  // file lines and graph edges instead of hiding it.
  std::string path = testing::TempDir() + "/io_self_loops.txt";
  FILE* f = fopen(path.c_str(), "w");
  fputs("0 1\n1 1\n1 2\n2 2\n0 0\n2 3\n", f);
  fclose(f);
  LoadStats stats;
  auto g = ReadEdgeList(path, /*num_nodes=*/0, &stats);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 3);
  EXPECT_EQ(stats.self_loops_dropped, 3);
  // A clean file reports zero (the struct is overwritten, not accumulated).
  std::string clean = testing::TempDir() + "/io_no_self_loops.txt";
  f = fopen(clean.c_str(), "w");
  fputs("0 1\n1 2\n", f);
  fclose(f);
  auto g2 = ReadEdgeList(clean, 0, &stats);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(stats.self_loops_dropped, 0);
  std::remove(path.c_str());
  std::remove(clean.c_str());
}

TEST(IoTest, RoundTripPreservesNodeIdentity) {
  // Writing and re-reading must not relabel nodes — ground-truth mapping
  // files depend on stable ids.
  Rng rng(77);
  auto g = BarabasiAlbert(60, 2, &rng);
  ASSERT_TRUE(g.ok());
  std::string path = testing::TempDir() + "/io_identity.txt";
  ASSERT_TRUE(WriteEdgeList(*g, path).ok());
  auto back = ReadEdgeList(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_nodes(), g->num_nodes());
  for (const Edge& e : g->Edges()) {
    EXPECT_TRUE(back->HasEdge(e.u, e.v));
  }
  EXPECT_EQ(back->num_edges(), g->num_edges());
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileAndMalformedLine) {
  EXPECT_EQ(ReadEdgeList("/nonexistent/file.txt").status().code(),
            StatusCode::kNotFound);
  std::string path = testing::TempDir() + "/io_bad.txt";
  FILE* f = fopen(path.c_str(), "w");
  fputs("1 notanumber\n", f);
  fclose(f);
  EXPECT_FALSE(ReadEdgeList(path).ok());
  std::remove(path.c_str());
}

// Writes `content` to a temp file, reads it as an edge list, and returns the
// resulting status (removing the file again).
Status ReadStatusOf(const std::string& name, const std::string& content) {
  const std::string path = testing::TempDir() + "/io_" + name;
  FILE* f = fopen(path.c_str(), "w");
  fputs(content.c_str(), f);
  fclose(f);
  Status s = ReadEdgeList(path).status();
  std::remove(path.c_str());
  return s;
}

TEST(IoTest, MalformedLinesNameTheLine) {
  Status s = ReadStatusOf("malformed.txt", "0 1\n1 2\nbogus line\n");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find(":3:"), std::string::npos) << s.ToString();

  // One id only is malformed, not silently padded.
  s = ReadStatusOf("oneid.txt", "0 1\n7\n");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find(":2:"), std::string::npos) << s.ToString();
}

TEST(IoTest, TrailingDataRejected) {
  // A third column means a weighted list; misreading it silently as
  // unweighted would be worse than failing.
  Status s = ReadStatusOf("weighted.txt", "0 1 0.75\n");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find(":1:"), std::string::npos) << s.ToString();
  // Trailing whitespace and \r are fine.
  EXPECT_TRUE(ReadStatusOf("crlf.txt", "0 1 \t\r\n2 3\r\n").ok());
}

TEST(IoTest, NegativeAndOverflowingIdsRejected) {
  Status s = ReadStatusOf("negative.txt", "0 1\n-2 3\n");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find(":2:"), std::string::npos) << s.ToString();
  EXPECT_NE(s.ToString().find("negative"), std::string::npos) << s.ToString();

  s = ReadStatusOf("overflow.txt", "0 99999999999999999999999999\n");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("out of range"), std::string::npos)
      << s.ToString();
}

TEST(IoTest, DuplicateEdgesRejectedWithBothLines) {
  // Exact repeats and reversed orientation both count as duplicates.
  Status s = ReadStatusOf("dup.txt", "0 1\n1 2\n1 0\n");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find(":3:"), std::string::npos) << s.ToString();
  EXPECT_NE(s.ToString().find("line 1"), std::string::npos) << s.ToString();
}

// ---------------------------------------------------------------------------
// Generators.

TEST(GeneratorsTest, ErdosRenyiEdgeCountConcentrates) {
  Rng rng(42);
  const int n = 400;
  const double p = 0.05;
  auto g = ErdosRenyi(n, p, &rng);
  ASSERT_TRUE(g.ok());
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g->num_edges()), expected, 4 * std::sqrt(expected));
}

TEST(GeneratorsTest, ErdosRenyiExtremes) {
  Rng rng(1);
  auto empty = ErdosRenyi(10, 0.0, &rng);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_edges(), 0);
  auto full = ErdosRenyi(10, 1.0, &rng);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->num_edges(), 45);
  EXPECT_FALSE(ErdosRenyi(10, 1.5, &rng).ok());
  EXPECT_FALSE(ErdosRenyi(-1, 0.5, &rng).ok());
}

TEST(GeneratorsTest, BarabasiAlbertDegreeAndEdges) {
  Rng rng(7);
  const int n = 500, m = 5;
  auto g = BarabasiAlbert(n, m, &rng);
  ASSERT_TRUE(g.ok());
  // m seed edges + m per subsequent node (minus dedup, which is rare).
  EXPECT_NEAR(static_cast<double>(g->num_edges()), m + (n - m - 1) * m, 10);
  for (int v = 0; v < n; ++v) EXPECT_GE(g->Degree(v), 1);
  EXPECT_TRUE(g->IsConnected());
  // Scale-free: max degree far above average.
  EXPECT_GT(g->MaxDegree(), 4 * g->AverageDegree());
  EXPECT_FALSE(BarabasiAlbert(5, 5, &rng).ok());
  EXPECT_FALSE(BarabasiAlbert(5, 0, &rng).ok());
}

TEST(GeneratorsTest, WattsStrogatzKeepsEdgeCount) {
  Rng rng(9);
  auto g = WattsStrogatz(200, 10, 0.5, &rng);
  ASSERT_TRUE(g.ok());
  // Rewiring never changes the number of edges (modulo rare dedup misses).
  EXPECT_NEAR(static_cast<double>(g->num_edges()), 200 * 5, 5);
  EXPECT_FALSE(WattsStrogatz(10, 3, 0.5, &rng).ok());   // Odd k.
  EXPECT_FALSE(WattsStrogatz(10, 10, 0.5, &rng).ok());  // k >= n.
}

TEST(GeneratorsTest, WattsStrogatzZeroRewireIsLattice) {
  Rng rng(10);
  auto g = WattsStrogatz(20, 4, 0.0, &rng);
  ASSERT_TRUE(g.ok());
  for (int v = 0; v < 20; ++v) EXPECT_EQ(g->Degree(v), 4);
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_TRUE(g->HasEdge(0, 2));
  EXPECT_TRUE(g->HasEdge(0, 19));
}

TEST(GeneratorsTest, NewmanWattsOnlyAddsEdges) {
  Rng rng(11);
  const int n = 300, k = 6;
  auto g = NewmanWatts(n, k, 0.5, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_GE(g->num_edges(), static_cast<int64_t>(n) * k / 2);
  // Lattice edges all still present.
  for (int v = 0; v < n; ++v) {
    for (int j = 1; j <= k / 2; ++j) EXPECT_TRUE(g->HasEdge(v, (v + j) % n));
  }
}

TEST(GeneratorsTest, PowerlawClusterHasMoreTrianglesThanBA) {
  Rng rng(13);
  auto pl = PowerlawCluster(400, 5, 0.9, &rng);
  ASSERT_TRUE(pl.ok());
  Rng rng2(13);
  auto ba = BarabasiAlbert(400, 5, &rng2);
  ASSERT_TRUE(ba.ok());
  auto total = [](const Graph& g) {
    int64_t t = 0;
    for (int64_t x : g.TriangleCounts()) t += x;
    return t;
  };
  EXPECT_GT(total(*pl), 2 * total(*ba));
}

TEST(GeneratorsTest, ConfigurationModelMatchesDegreesApproximately) {
  Rng rng(17);
  std::vector<int> degrees = NormalDegreeSequence(300, 10.0, 2.0, &rng);
  auto g = ConfigurationModel(degrees, &rng);
  ASSERT_TRUE(g.ok());
  // Erased configuration model loses a few percent of stubs to collisions.
  int64_t want = 0;
  for (int d : degrees) want += d;
  EXPECT_GT(g->num_edges(), want / 2 * 9 / 10);
  EXPECT_LE(g->num_edges(), want / 2);
  EXPECT_FALSE(ConfigurationModel({1, 1, 1}, &rng).ok());  // Odd sum.
  EXPECT_FALSE(ConfigurationModel({-1, 1}, &rng).ok());
}

TEST(GeneratorsTest, DegreeSequencesAreValid) {
  Rng rng(19);
  std::vector<int> norm = NormalDegreeSequence(100, 10.0, 3.0, &rng);
  int64_t sum = 0;
  for (int d : norm) {
    EXPECT_GE(d, 1);
    EXPECT_LE(d, 99);
    sum += d;
  }
  EXPECT_EQ(sum % 2, 0);

  std::vector<int> pl = PowerLawDegreeSequence(100, 2.5, 3, &rng);
  sum = 0;
  for (int d : pl) {
    EXPECT_GE(d, 3);
    sum += d;
  }
  EXPECT_EQ(sum % 2, 0);
}

TEST(GeneratorsTest, RandomGeometricConnectsNearbyNodes) {
  Rng rng(23);
  auto g = RandomGeometric(500, 0.08, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(g->num_edges(), 0);
  // Expected degree ~ n * pi * r^2; loose bounds.
  const double expected = 500 * 3.14159 * 0.08 * 0.08;
  EXPECT_NEAR(g->AverageDegree(), expected, expected);
}

TEST(GeneratorsTest, LargestComponentSubgraph) {
  Graph g = MustGraph(7, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {5, 6}});
  std::vector<int> mapping;
  Graph sub = LargestComponentSubgraph(g, &mapping);
  EXPECT_EQ(sub.num_nodes(), 3);
  EXPECT_EQ(sub.num_edges(), 3);
  int mapped = 0;
  for (int m : mapping) mapped += (m >= 0);
  EXPECT_EQ(mapped, 3);
}

TEST(GeneratorsTest, DeterministicGivenSeed) {
  Rng a(99), b(99);
  auto g1 = BarabasiAlbert(100, 3, &a);
  auto g2 = BarabasiAlbert(100, 3, &b);
  ASSERT_TRUE(g1.ok() && g2.ok());
  EXPECT_EQ(g1->Edges().size(), g2->Edges().size());
  auto e1 = g1->Edges(), e2 = g2->Edges();
  for (size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].u, e2[i].u);
    EXPECT_EQ(e1[i].v, e2[i].v);
  }
}

// ---------------------------------------------------------------------------
// Graphlet orbits.

TEST(GraphletsTest, TriangleOrbits) {
  Graph g = MustGraph(3, {{0, 1}, {1, 2}, {0, 2}});
  auto orbits = CountGraphletOrbits(g);
  ASSERT_TRUE(orbits.ok());
  for (int v = 0; v < 3; ++v) {
    EXPECT_DOUBLE_EQ((*orbits)(v, 0), 2.0);  // Degree.
    EXPECT_DOUBLE_EQ((*orbits)(v, 3), 1.0);  // One triangle.
    EXPECT_DOUBLE_EQ((*orbits)(v, 1), 0.0);  // No induced path ends.
    EXPECT_DOUBLE_EQ((*orbits)(v, 2), 0.0);
  }
}

TEST(GraphletsTest, Path4Orbits) {
  // 0-1-2-3 path.
  Graph g = MustGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  auto orbits = CountGraphletOrbits(g);
  ASSERT_TRUE(orbits.ok());
  EXPECT_DOUBLE_EQ((*orbits)(0, 4), 1.0);  // End of P4.
  EXPECT_DOUBLE_EQ((*orbits)(3, 4), 1.0);
  EXPECT_DOUBLE_EQ((*orbits)(1, 5), 1.0);  // Middle of P4.
  EXPECT_DOUBLE_EQ((*orbits)(2, 5), 1.0);
  // P3 counts: paths 0-1-2, 1-2-3.
  EXPECT_DOUBLE_EQ((*orbits)(0, 1), 1.0);
  EXPECT_DOUBLE_EQ((*orbits)(1, 2), 1.0);
  EXPECT_DOUBLE_EQ((*orbits)(1, 1), 1.0);  // 1 is an end of path 1-2-3.
}

TEST(GraphletsTest, StarOrbits) {
  // Star: center 0, leaves 1..3.
  Graph g = MustGraph(4, {{0, 1}, {0, 2}, {0, 3}});
  auto orbits = CountGraphletOrbits(g);
  ASSERT_TRUE(orbits.ok());
  EXPECT_DOUBLE_EQ((*orbits)(0, 7), 1.0);  // Center of claw.
  for (int v = 1; v <= 3; ++v) EXPECT_DOUBLE_EQ((*orbits)(v, 6), 1.0);
  EXPECT_DOUBLE_EQ((*orbits)(0, 2), 3.0);  // Middle of C(3,2)=3 3-paths.
}

TEST(GraphletsTest, CycleOrbits) {
  Graph g = MustGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  auto orbits = CountGraphletOrbits(g);
  ASSERT_TRUE(orbits.ok());
  for (int v = 0; v < 4; ++v) {
    EXPECT_DOUBLE_EQ((*orbits)(v, 8), 1.0);   // C4.
    EXPECT_DOUBLE_EQ((*orbits)(v, 14), 0.0);  // Not K4.
  }
}

TEST(GraphletsTest, PawDiamondK4Orbits) {
  // Paw: triangle 0-1-2 with pendant 3 on node 2.
  Graph paw = MustGraph(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  auto po = CountGraphletOrbits(paw);
  ASSERT_TRUE(po.ok());
  EXPECT_DOUBLE_EQ((*po)(3, 9), 1.0);   // Pendant.
  EXPECT_DOUBLE_EQ((*po)(0, 10), 1.0);  // Triangle deg-2 vertices.
  EXPECT_DOUBLE_EQ((*po)(1, 10), 1.0);
  EXPECT_DOUBLE_EQ((*po)(2, 11), 1.0);  // Hub.

  // Diamond: K4 minus edge {0,3}.
  Graph dia = MustGraph(4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}});
  auto dorb = CountGraphletOrbits(dia);
  ASSERT_TRUE(dorb.ok());
  EXPECT_DOUBLE_EQ((*dorb)(0, 12), 1.0);
  EXPECT_DOUBLE_EQ((*dorb)(3, 12), 1.0);
  EXPECT_DOUBLE_EQ((*dorb)(1, 13), 1.0);
  EXPECT_DOUBLE_EQ((*dorb)(2, 13), 1.0);

  Graph k4 = MustGraph(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  auto ko = CountGraphletOrbits(k4);
  ASSERT_TRUE(ko.ok());
  for (int v = 0; v < 4; ++v) EXPECT_DOUBLE_EQ((*ko)(v, 14), 1.0);
}

TEST(GraphletsTest, OrbitsInvariantUnderPermutation) {
  Rng rng(31);
  auto g = ErdosRenyi(40, 0.15, &rng);
  ASSERT_TRUE(g.ok());
  auto orbits = CountGraphletOrbits(*g);
  ASSERT_TRUE(orbits.ok());
  std::vector<int> perm = RandomPermutation(40, &rng);
  auto pg = g->Permuted(perm);
  ASSERT_TRUE(pg.ok());
  auto porbits = CountGraphletOrbits(*pg);
  ASSERT_TRUE(porbits.ok());
  for (int v = 0; v < 40; ++v) {
    for (int o = 0; o < kNumOrbits; ++o) {
      EXPECT_DOUBLE_EQ((*orbits)(v, o), (*porbits)(perm[v], o))
          << "node " << v << " orbit " << o;
    }
  }
}

TEST(GraphletsTest, SubgraphBudgetEnforced) {
  Rng rng(37);
  auto g = ErdosRenyi(50, 0.3, &rng);
  ASSERT_TRUE(g.ok());
  auto res = CountGraphletOrbits(*g, /*max_subgraphs=*/10);
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
}

TEST(GraphletsTest, OrbitCountIdentityOnK4) {
  // Every node of K4 participates in exactly C(3,2)=3 triangles and
  // 1 K4; no sparser 4-node graphlets exist in K4.
  Graph k4 = MustGraph(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  auto orbits = CountGraphletOrbits(k4);
  ASSERT_TRUE(orbits.ok());
  for (int v = 0; v < 4; ++v) {
    EXPECT_DOUBLE_EQ((*orbits)(v, 3), 3.0);
    for (int o : {4, 5, 6, 7, 8, 9, 10, 11, 12, 13}) {
      EXPECT_DOUBLE_EQ((*orbits)(v, o), 0.0);
    }
  }
}

TEST(ContentHashTest, InvariantToInsertionOrderAndOrientation) {
  // The same edge set in any insertion order, with either endpoint
  // orientation and with duplicates, must hash identically: the hash
  // addresses graph *content*, not construction history.
  Graph a = MustGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  Graph b = MustGraph(5, {{4, 0}, {2, 1}, {3, 2}, {0, 1}, {4, 3}});
  Graph c = MustGraph(5, {{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 4}, {4, 0},
                          {0, 4}});
  EXPECT_EQ(a.ContentHash(), b.ContentHash());
  EXPECT_EQ(a.ContentHash(), c.ContentHash());
}

TEST(ContentHashTest, SensitiveToSingleEdgeChange) {
  Graph base = MustGraph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  Graph extra = MustGraph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  Graph moved = MustGraph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {3, 5}});
  EXPECT_NE(base.ContentHash(), extra.ContentHash());
  EXPECT_NE(base.ContentHash(), moved.ContentHash());
  EXPECT_NE(extra.ContentHash(), moved.ContentHash());
}

TEST(ContentHashTest, SensitiveToIsolatedNodeCount) {
  // Same edges, different node count: different graphs, different hashes.
  Graph small = MustGraph(3, {{0, 1}, {1, 2}});
  Graph padded = MustGraph(4, {{0, 1}, {1, 2}});
  EXPECT_NE(small.ContentHash(), padded.ContentHash());
}

TEST(ContentHashTest, StableAcrossRuns) {
  // The hash is part of the service cache key and is printed by the CLI, so
  // it must be a stable function of content — pin one value forever.
  Graph g = MustGraph(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.ContentHash(), MustGraph(3, {{1, 2}, {0, 1}}).ContentHash());
  EXPECT_EQ(g.ContentHash(), 0x1987c4c064a6d4d4ull);
}

}  // namespace
}  // namespace graphalign
