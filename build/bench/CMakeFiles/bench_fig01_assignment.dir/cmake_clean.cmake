file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_assignment.dir/bench_fig01_assignment.cc.o"
  "CMakeFiles/bench_fig01_assignment.dir/bench_fig01_assignment.cc.o.d"
  "bench_fig01_assignment"
  "bench_fig01_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
