#include "bench_framework/experiment.h"

#include <signal.h>

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/exit_codes.h"
#include "common/failpoint.h"
#include "common/memory.h"
#include "common/parse.h"
#include "common/random.h"
#include "common/retry.h"
#include "common/subprocess.h"
#include "common/table.h"
#include "common/timer.h"

namespace graphalign {

namespace {

// Exits with a usage error; bench binaries have no meaningful way to
// continue past a malformed flag value.
[[noreturn]] void BenchArgError(const std::string& flag,
                                const std::string& value,
                                const char* expected) {
  std::fprintf(stderr, "invalid value '%s' for %s (expected %s)\n",
               value.c_str(), flag.c_str(), expected);
  std::exit(kExitUsage);
}

// Strict whole-string parsing lives in common/parse.h (shared with the CLI
// and server flags); these wrappers keep the exit-on-error bench contract.
int ParsePositiveInt(const std::string& flag, const char* value) {
  auto v = ParseStrictPositiveInt(value);
  if (!v.ok()) BenchArgError(flag, value, "a positive integer");
  return *v;
}

double ParsePositiveNumber(const std::string& flag, const char* value,
                           const char* expected) {
  auto v = ParseStrictPositiveDouble(value);
  if (!v.ok()) BenchArgError(flag, value, expected);
  return *v;
}

uint64_t ParseSeed(const std::string& flag, const char* value) {
  auto v = ParseStrictUint64(value);
  if (!v.ok()) BenchArgError(flag, value, "an unsigned integer");
  return *v;
}

// ---------------------------------------------------------------------------
// RunOutcome marshaling across the isolation pipe. Parent and child are the
// same binary, so a fixed struct of the POD fields plus the error string is
// enough; a version tag guards against a stale parent reading a child built
// from different code (impossible via fork, cheap to check anyway).

constexpr uint32_t kWireVersion = 4;

struct WireOutcome {
  uint32_t version;
  uint8_t completed;
  uint8_t degraded;
  int32_t completed_runs;
  double accuracy, mnc, ec, ics, s3;
  double similarity_seconds, assignment_seconds, peak_mem_mb;
  int64_t aux_count;
  uint64_t error_len;
  uint64_t degrade_reason_len;
};

std::string EncodeRunOutcome(const RunOutcome& out) {
  WireOutcome wire = {};
  wire.version = kWireVersion;
  wire.completed = out.completed ? 1 : 0;
  wire.degraded = out.degraded ? 1 : 0;
  wire.completed_runs = out.completed_runs;
  wire.accuracy = out.quality.accuracy;
  wire.mnc = out.quality.mnc;
  wire.ec = out.quality.ec;
  wire.ics = out.quality.ics;
  wire.s3 = out.quality.s3;
  wire.similarity_seconds = out.similarity_seconds;
  wire.assignment_seconds = out.assignment_seconds;
  wire.peak_mem_mb = out.peak_mem_mb;
  wire.aux_count = out.aux_count;
  wire.error_len = out.error.size();
  wire.degrade_reason_len = out.degrade_reason.size();
  std::string bytes(reinterpret_cast<const char*>(&wire), sizeof(wire));
  bytes.append(out.error);
  bytes.append(out.degrade_reason);
  return bytes;
}

bool DecodeRunOutcome(const std::string& bytes, RunOutcome* out) {
  if (bytes.size() < sizeof(WireOutcome)) return false;
  WireOutcome wire;
  std::memcpy(&wire, bytes.data(), sizeof(wire));
  if (wire.version != kWireVersion) return false;
  if (bytes.size() != sizeof(wire) + wire.error_len + wire.degrade_reason_len) {
    return false;
  }
  out->completed = wire.completed != 0;
  out->degraded = wire.degraded != 0;
  out->completed_runs = wire.completed_runs;
  out->quality.accuracy = wire.accuracy;
  out->quality.mnc = wire.mnc;
  out->quality.ec = wire.ec;
  out->quality.ics = wire.ics;
  out->quality.s3 = wire.s3;
  out->similarity_seconds = wire.similarity_seconds;
  out->assignment_seconds = wire.assignment_seconds;
  out->peak_mem_mb = wire.peak_mem_mb;
  out->aux_count = wire.aux_count;
  out->error = bytes.substr(sizeof(wire), wire.error_len);
  out->degrade_reason = bytes.substr(sizeof(wire) + wire.error_len);
  return true;
}

SubprocessOptions OptionsFromArgs(const BenchArgs& args) {
  SubprocessOptions opt;
  opt.mem_limit_bytes =
      static_cast<int64_t>(args.mem_limit_mb * 1024.0 * 1024.0);
  // The cooperative Deadline inside the child handles well-behaved
  // overruns; the hard kill is only the backstop for code that stops
  // polling (a hang in a foreign library, a livelock), so give it slack.
  if (args.time_limit_seconds > 0.0 && args.time_limit_seconds < 1e8) {
    opt.wall_limit_seconds = 2.0 * args.time_limit_seconds + 30.0;
  }
  return opt;
}

// Forks, runs `body`, and maps every way the child can die onto the
// outcome-error taxonomy the tables render.
RunOutcome RunOutcomeInChild(const SubprocessOptions& options,
                             const std::function<RunOutcome()>& body) {
  auto run = RunIsolated(
      [&](int payload_fd) {
        RunOutcome out = body();
        if (out.peak_mem_mb <= 0.0) {
          out.peak_mem_mb =
              static_cast<double>(PeakRssBytes()) / (1024.0 * 1024.0);
        }
        return WritePayload(payload_fd, EncodeRunOutcome(out)) ? 0 : 1;
      },
      options);
  RunOutcome out;
  if (!run.ok()) {
    out.error = run.status().ToString();
    return out;
  }
  switch (run->status) {
    case RunStatus::kOk: {
      if (run->payload_valid && DecodeRunOutcome(run->payload, &out)) {
        return out;
      }
      out.error = "isolated child exited cleanly but returned no result";
      return out;
    }
    case RunStatus::kExit:
      out.error = "ERR (isolated child " + run->detail + ")";
      return out;
    case RunStatus::kCrash:
      out.error = "CRASH (" + run->detail + ")";
      return out;
    case RunStatus::kOom:
      out.error = "OOM (" + run->detail + ")";
      return out;
    case RunStatus::kTimeout:
      out.error = "DNF (hard-killed at the wall-clock backstop)";
      return out;
  }
  out.error = "isolated child ended in an unknown state";
  return out;
}

// ---------------------------------------------------------------------------
// Fault-injection aligners (test hooks; see experiment.h).

class FaultAligner : public Aligner {
 public:
  enum class Kind { kCrash, kOom, kHang };

  explicit FaultAligner(Kind kind) : kind_(kind) {}

  std::string name() const override {
    switch (kind_) {
      case Kind::kCrash: return "_CRASH";
      case Kind::kOom: return "_OOM";
      case Kind::kHang: return "_HANG";
    }
    return "_FAULT";
  }

  AssignmentMethod default_assignment() const override {
    return AssignmentMethod::kSortGreedy;
  }

 protected:
  Result<DenseMatrix> ComputeSimilarityImpl(const Graph&, const Graph&,
                                            const Deadline&) override {
    switch (kind_) {
      case Kind::kCrash:
        raise(SIGSEGV);
        break;
      case Kind::kOom: {
        // Allocate-and-touch until the rlimit (or, as a safety net when run
        // without one, a 4 GB appetite) is hit. Touching every page makes
        // the usage resident, so RLIMIT_AS and the OOM killer both see it.
        std::vector<std::unique_ptr<char[]>> hog;
        constexpr size_t kChunk = 64 << 20;
        for (int i = 0; i < 64; ++i) {
          hog.push_back(std::make_unique<char[]>(kChunk));
          for (size_t off = 0; off < kChunk; off += 4096) {
            hog.back()[off] = static_cast<char>(off);
          }
        }
        return Status::ResourceExhausted(
            "_OOM injector survived its 4 GB appetite (no memory limit?)");
      }
      case Kind::kHang:
        // Deliberately never polls the deadline: only the executor's hard
        // wall-clock kill can stop this.
        for (volatile uint64_t spin = 0;; spin = spin + 1) {
        }
        break;
    }
    return Status::Internal("unreachable fault injector state");
  }

 private:
  Kind kind_;
};

}  // namespace

std::unique_ptr<Aligner> MakeFaultAligner(const std::string& name) {
  if (name == "_CRASH") {
    return std::make_unique<FaultAligner>(FaultAligner::Kind::kCrash);
  }
  if (name == "_OOM") {
    return std::make_unique<FaultAligner>(FaultAligner::Kind::kOom);
  }
  if (name == "_HANG") {
    return std::make_unique<FaultAligner>(FaultAligner::Kind::kHang);
  }
  return nullptr;
}

BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  bool explicit_isolate = false;
  bool no_isolate = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      GA_CHECK_MSG(i + 1 < argc, "missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--full") {
      args.full = true;
    } else if (arg == "--reps") {
      args.repetitions = ParsePositiveInt(arg, next());
    } else if (arg == "--algos") {
      std::stringstream ss(next());
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        if (!tok.empty()) args.algorithms.push_back(tok);
      }
    } else if (arg == "--csv") {
      args.csv_path = next();
    } else if (arg == "--json") {
      args.json_path = next();
    } else if (arg == "--seed") {
      args.seed = ParseSeed(arg, next());
    } else if (arg == "--time-limit") {
      args.time_limit_seconds =
          ParsePositiveNumber(arg, next(), "a positive number of seconds");
    } else if (arg == "--isolate") {
      explicit_isolate = true;
    } else if (arg == "--no-isolate") {
      no_isolate = true;
    } else if (arg == "--mem-limit") {
      args.mem_limit_mb =
          ParsePositiveNumber(arg, next(), "a positive number of megabytes");
    } else if (arg == "--journal") {
      args.journal_path = next();
    } else if (arg == "--resume") {
      args.resume = true;
    } else if (arg == "--retries") {
      // 0 is meaningful (no retries), so the positive-int parser won't do.
      const char* value = next();
      auto v = ParseStrictUint64(value);
      if (!v.ok() || *v > 100) {
        BenchArgError(arg, value, "a non-negative integer (at most 100)");
      }
      args.retries = static_cast<int>(*v);
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (supported: --full --reps N --algos A,B "
                   "--csv PATH --json PATH --seed S --time-limit T --isolate "
                   "--no-isolate --mem-limit MB --journal PATH --resume "
                   "--retries N)\n",
                   arg.c_str());
      std::exit(kExitUsage);
    }
  }
  if (no_isolate && (explicit_isolate || args.mem_limit_mb > 0.0)) {
    std::fprintf(stderr,
                 "--no-isolate conflicts with --isolate/--mem-limit\n");
    std::exit(kExitUsage);
  }
  if (args.resume && args.journal_path.empty()) {
    std::fprintf(stderr, "--resume requires --journal PATH\n");
    std::exit(kExitUsage);
  }
  // Paper-scale sweeps isolate by default: a single crashed cell must not
  // take down hours of accumulated results.
  args.isolate = !no_isolate && (explicit_isolate || args.mem_limit_mb > 0.0 ||
                                 args.full);
  return args;
}

std::vector<std::string> SelectedAlgorithms(const BenchArgs& args) {
  if (args.algorithms.empty()) return AllAlignerNames();
  return args.algorithms;
}

RunOutcome RunAligner(Aligner* aligner, const AlignmentProblem& problem,
                      AssignmentMethod method, double time_limit_seconds) {
  RunOutcome out;
  // The deadline covers the similarity stage only: the paper's budget and
  // timing semantics apply to similarity computation (§6.2, Table 3), and
  // the assignment stage is reported separately. AfterSeconds clamps huge
  // budgets to "infinite" and treats non-positive budgets (a previous
  // repetition already spent everything) as immediately expired.
  const Deadline deadline = Deadline::AfterSeconds(time_limit_seconds);
  WallTimer timer;
  // The robust path: with no fault this produces the exact matrix
  // ComputeSimilarity would (one extra finiteness scan); on a recoverable
  // numerical failure it degrades instead of losing the cell (DESIGN.md §12).
  auto sim = aligner->ComputeSimilarityRobust(problem.g1, problem.g2, deadline);
  out.similarity_seconds = timer.Seconds();
  if (!sim.ok()) {
    out.error = sim.status().code() == StatusCode::kDeadlineExceeded
                    ? "DNF (time limit)"
                    : sim.status().ToString();
    return out;
  }
  if (out.similarity_seconds > time_limit_seconds) {
    out.error = "DNF (time limit)";
    return out;
  }
  out.degraded = sim->degraded;
  out.degrade_reason = sim->degrade_reason;
  timer.Restart();
  // A degraded matrix gets the cheap greedy extraction: optimal assignment
  // on surrogate similarities buys nothing (see Aligner::AlignRobust).
  auto align = ExtractAlignment(
      sim->similarity,
      sim->degraded ? AssignmentMethod::kSortGreedy : method);
  if (!align.ok() && align.status().code() == StatusCode::kNumerical &&
      !sim->degraded && method != AssignmentMethod::kSortGreedy) {
    const std::string reason = align.status().message();
    align = ExtractAlignment(sim->similarity, AssignmentMethod::kSortGreedy);
    if (align.ok()) {
      out.degraded = true;
      out.degrade_reason = "greedy-assignment fallback (" + reason + ")";
    }
  }
  out.assignment_seconds = timer.Seconds();
  if (!align.ok()) {
    out.error = align.status().ToString();
    return out;
  }
  out.quality =
      EvaluateAlignment(problem.g1, problem.g2, *align, problem.ground_truth);
  out.completed = true;
  out.completed_runs = 1;
  return out;
}

RunOutcome RunAveraged(Aligner* aligner, const Graph& base,
                       const NoiseOptions& noise, AssignmentMethod method,
                       int reps, uint64_t seed, double time_limit_seconds) {
  RunOutcome total;
  Rng rng(seed);
  WallTimer budget;
  for (int r = 0; r < reps; ++r) {
    Rng instance_rng = rng.Fork();
    auto problem = MakeAlignmentProblem(base, noise, &instance_rng);
    if (!problem.ok()) {
      total.error = problem.status().ToString();
      return total;
    }
    RunOutcome one = RunAligner(aligner, *problem, method,
                                time_limit_seconds - budget.Seconds());
    if (!one.completed) {
      if (total.completed_runs == 0) {
        total.error = one.error;
        return total;
      }
      break;  // Keep the average over the completed repetitions.
    }
    total.quality.accuracy += one.quality.accuracy;
    total.quality.mnc += one.quality.mnc;
    total.quality.ec += one.quality.ec;
    total.quality.ics += one.quality.ics;
    total.quality.s3 += one.quality.s3;
    total.similarity_seconds += one.similarity_seconds;
    total.assignment_seconds += one.assignment_seconds;
    total.completed_runs += 1;
    if (one.degraded && !total.degraded) {
      total.degraded = true;
      total.degrade_reason = one.degrade_reason;
    }
    if (budget.Seconds() > time_limit_seconds) break;
  }
  const double k = total.completed_runs;
  total.quality.accuracy /= k;
  total.quality.mnc /= k;
  total.quality.ec /= k;
  total.quality.ics /= k;
  total.quality.s3 /= k;
  total.similarity_seconds /= k;
  total.assignment_seconds /= k;
  total.completed = true;
  return total;
}

namespace {

// A cell outcome worth a second attempt: containment-level faults (CRASH,
// OOM, a failed fork) can be transient — a cosmic-ray segfault, memory
// pressure from a neighboring process. DNF is not retryable: a repeat run
// would spend the same budget and reach the same verdict, and ERR is a
// deterministic typed failure.
bool IsRetryableOutcome(const RunOutcome& out) {
  if (out.completed) return false;
  return out.error.rfind("CRASH", 0) == 0 || out.error.rfind("OOM", 0) == 0 ||
         out.error.rfind("Unavailable", 0) == 0;
}

RunOutcome RunOneContained(const BenchArgs& args,
                           const std::function<RunOutcome()>& body) {
  // Parent-side flaky-cell site: `once` counters reset across fork, so an
  // injected transient fault must fire here, not in the child, for
  // "fails once, retried, succeeds" to be expressible.
  if (GA_FAILPOINT_FIRED("bench.cell.flaky")) {
    RunOutcome out;
    out.error = "CRASH (injected flaky fault)";
    return out;
  }
  if (!args.isolate) return body();
  return RunOutcomeInChild(OptionsFromArgs(args), body);
}

}  // namespace

RunOutcome RunContained(const BenchArgs& args,
                        const std::function<RunOutcome()>& body) {
  RunOutcome out = RunOneContained(args, body);
  RetryPolicy policy;
  policy.max_attempts = 1 + std::max(0, args.retries);
  policy.initial_backoff_ms = 50.0;
  policy.jitter_seed = args.seed;
  Backoff backoff(policy);
  for (int retry = 0; retry < std::max(0, args.retries); ++retry) {
    if (!IsRetryableOutcome(out)) break;
    const std::string first_error = out.error;
    SleepForMs(backoff.NextDelayMs());
    out = RunOneContained(args, body);
    if (out.completed) {
      std::fprintf(stderr, "note: cell retried after transient fault: %s\n",
                   first_error.c_str());
    }
  }
  return out;
}

RunOutcome MeasurePeakMemory(const BenchArgs& args,
                             const std::function<void()>& body) {
  return RunOutcomeInChild(OptionsFromArgs(args), [&] {
    body();
    RunOutcome out;
    out.completed = true;
    out.completed_runs = 1;
    return out;
  });
}

RunOutcome RunAligner(Aligner* aligner, const AlignmentProblem& problem,
                      AssignmentMethod method, const BenchArgs& args) {
  return RunContained(args, [&] {
    return RunAligner(aligner, problem, method, args.time_limit_seconds);
  });
}

RunOutcome RunAveraged(Aligner* aligner, const Graph& base,
                       const NoiseOptions& noise, AssignmentMethod method,
                       int reps, uint64_t seed, const BenchArgs& args) {
  return RunContained(args, [&] {
    return RunAveraged(aligner, base, noise, method, reps, seed,
                       args.time_limit_seconds);
  });
}

std::string FormatOutcome(const RunOutcome& outcome, double value) {
  if (!outcome.completed) {
    for (const char* tag : {"DNF", "CRASH", "OOM"}) {
      if (outcome.error.rfind(tag, 0) == 0) return tag;
    }
    return "ERR";
  }
  // The '*' marks values produced through a numerical fallback — comparable
  // in kind but not in faith to the clean cells (README: degraded results).
  if (outcome.degraded) return Table::Num(value) + "*";
  return Table::Num(value);
}

std::string FormatAccuracy(const RunOutcome& outcome) {
  return FormatOutcome(outcome, outcome.quality.accuracy);
}

}  // namespace graphalign
