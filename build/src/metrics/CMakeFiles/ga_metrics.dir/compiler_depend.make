# Empty compiler generated dependencies file for ga_metrics.
# This may be replaced when dependencies are built.
