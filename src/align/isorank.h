// IsoRank (Singh, Xu & Berger 2008), adapted to unrestricted alignment as in
// the paper (§3.1, §6.1): the Blast prior is replaced by the degree
// similarity sim(u,v) = 1 - |deg u - deg v| / max(deg u, deg v), and the
// pairwise-similarity fixed point
//     R = alpha * M R + (1 - alpha) * E
// is solved by power iteration without materializing the Kronecker operator:
//     M R = (A D_A^-1) R (D_B^-1 B).
#ifndef GRAPHALIGN_ALIGN_ISORANK_H_
#define GRAPHALIGN_ALIGN_ISORANK_H_

#include <string>

#include "align/aligner.h"

namespace graphalign {

struct IsoRankOptions {
  double alpha = 0.9;      // Topology weight (Table 1).
  int max_iterations = 100;  // The paper caps IsoRank at 100 iterations (§6.6).
  double tolerance = 1e-9;  // Early stop on max-abs change.
  // §6.1 ablation: false replaces the degree-similarity prior with a
  // uniform one (the "binary weights" earlier works used, which the paper
  // found to hurt IsoRank).
  bool use_degree_prior = true;
};

class IsoRankAligner : public Aligner {
 public:
  explicit IsoRankAligner(const IsoRankOptions& options = {})
      : options_(options) {}

  std::string name() const override { return "IsoRank"; }
  AssignmentMethod default_assignment() const override {
    return AssignmentMethod::kSortGreedy;  // As proposed (Table 1).
  }

 protected:
  Result<DenseMatrix> ComputeSimilarityImpl(const Graph& g1, const Graph& g2,
                                            const Deadline& deadline) override;

 private:
  IsoRankOptions options_;
};

// The paper's degree-based prior (§6.1), exposed for reuse by NSD and the
// ablation benchmarks. E(u,v) = 1 - |d_u - d_v| / max(d_u, d_v); pairs of
// isolated nodes score 1.
DenseMatrix DegreeSimilarityPrior(const Graph& g1, const Graph& g2);

}  // namespace graphalign

#endif  // GRAPHALIGN_ALIGN_ISORANK_H_
