// Temporal infrastructure matching: align two snapshots of a road network
// (intersections at different timestamps — an application from the paper's
// introduction). Road networks are sparse, nearly planar, and often
// disconnected, which is exactly the regime where spectral methods (GRASP)
// falter and prior-based diffusion (IsoRank, NSD) holds up (§6.4.2).
//
// The example aligns the current network against an older snapshot that
// lacks 10% of today's road segments, and demonstrates the
// largest-connected-component workaround for spectral methods.
//
// Build & run:  ./build/examples/temporal_roadnet [--full]
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "align/aligner.h"
#include "common/random.h"
#include "common/table.h"
#include "datasets/datasets.h"
#include "graph/generators.h"
#include "metrics/metrics.h"
#include "noise/noise.h"

int main(int argc, char** argv) {
  using namespace graphalign;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  auto today = MakeStandIn("inf-euroroad", /*seed=*/3, full ? 1.0 : 0.5);
  if (!today.ok()) {
    std::fprintf(stderr, "%s\n", today.status().ToString().c_str());
    return 1;
  }
  std::printf("road network: %d intersections, %lld segments, %d outside "
              "largest component\n",
              today->num_nodes(), static_cast<long long>(today->num_edges()),
              today->NodesOutsideLargestComponent());

  // The older snapshot: 90% of today's segments existed back then.
  Rng rng(17);
  auto snapshots = EvolvingSnapshots(*today, {0.90}, &rng);
  if (!snapshots.ok()) {
    std::fprintf(stderr, "%s\n", snapshots.status().ToString().c_str());
    return 1;
  }
  auto problem = MakeProblemFromPair(*today, (*snapshots)[0], &rng);
  if (!problem.ok()) {
    std::fprintf(stderr, "%s\n", problem.status().ToString().c_str());
    return 1;
  }

  Table t({"method", "graph", "accuracy", "MNC"});
  for (const std::string& name : {"IsoRank", "NSD", "GRASP"}) {
    auto aligner = MakeAligner(name);
    auto alignment = (*aligner)->Align(problem->g1, problem->g2,
                                       AssignmentMethod::kJonkerVolgenant);
    if (!alignment.ok()) {
      t.AddRow({name, "full", "ERR", "-"});
      continue;
    }
    QualityReport q = EvaluateAlignment(problem->g1, problem->g2, *alignment,
                                        problem->ground_truth);
    t.AddRow({name, "full", Table::Num(q.accuracy), Table::Num(q.mnc)});
  }

  // Spectral workaround: restrict both graphs to their largest component
  // (GRASP's documented failure mode is disconnectedness, §6.4).
  {
    Graph lcc1 = LargestComponentSubgraph(problem->g1);
    // Align the component against itself under the same protocol.
    Rng lrng(23);
    NoiseOptions noise;
    noise.level = 0.10;
    auto lcc_problem = MakeAlignmentProblem(lcc1, noise, &lrng);
    if (lcc_problem.ok()) {
      auto grasp = MakeAligner("GRASP");
      auto alignment = (*grasp)->Align(lcc_problem->g1, lcc_problem->g2,
                                       AssignmentMethod::kJonkerVolgenant);
      if (alignment.ok()) {
        QualityReport q =
            EvaluateAlignment(lcc_problem->g1, lcc_problem->g2, *alignment,
                              lcc_problem->ground_truth);
        t.AddRow({"GRASP", "largest-component", Table::Num(q.accuracy),
                  Table::Num(q.mnc)});
      }
    }
  }
  t.Print(std::cout);
  return 0;
}
