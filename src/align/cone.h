// CONE-Align (Chen et al. 2020), paper §3.7: per-graph proximity-preserving
// node embeddings, followed by embedding-subspace alignment that alternates
// a Wasserstein step (Sinkhorn optimal transport) and a Procrustes step
// (orthogonal rotation via SVD), Eq. 12; extraction by nearest neighbor
// over the aligned embeddings.
//
// Embeddings: truncated eigenfactorization of the random-walk polynomial
// sum_{r=1..window} Ahat^r / window (a NetMF-style proximity matrix; the
// reference implementation uses NetMF — see DESIGN.md substitution notes).
#ifndef GRAPHALIGN_ALIGN_CONE_H_
#define GRAPHALIGN_ALIGN_CONE_H_

#include <cstdint>
#include <string>

#include "align/aligner.h"

namespace graphalign {

struct ConeOptions {
  // Embedding dimension. Table 1 reports dim=512 for the reference NetMF
  // embeddings; for this implementation's spectral embeddings, dimensions
  // beyond the reliable eigengap carry pure noise and destroy alignment on
  // dense graphs (see bench_ablation_lrea_cone), so the default is the
  // empirically robust 32 (further clamped to n/3).
  int dim = 32;
  int window = 10;          // Random-walk window of the proximity matrix.
  int outer_iterations = 20;  // Wasserstein/Procrustes alternations (§3.7).
  double epsilon = 0.02;      // Sinkhorn entropic regularization.
  int sinkhorn_iterations = 50;
  uint64_t seed = 7;        // Lanczos start vectors.
};

class ConeAligner : public Aligner {
 public:
  explicit ConeAligner(const ConeOptions& options = {}) : options_(options) {}

  std::string name() const override { return "CONE"; }
  AssignmentMethod default_assignment() const override {
    return AssignmentMethod::kNearestNeighbor;  // As proposed (Table 1).
  }
 protected:
  Result<DenseMatrix> ComputeSimilarityImpl(const Graph& g1, const Graph& g2,
                                            const Deadline& deadline) override;

  // Native extraction: k-d tree NN over the aligned embeddings.
  Result<Alignment> AlignNativeImpl(const Graph& g1, const Graph& g2,
                                    const Deadline& deadline) override;

 private:
  // Returns embeddings of g1 (rows 0..n1-1, already rotated into g2's
  // subspace) stacked over embeddings of g2.
  Result<DenseMatrix> AlignedEmbeddings(const Graph& g1, const Graph& g2,
                                        const Deadline& deadline);

  ConeOptions options_;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_ALIGN_CONE_H_
