#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "align/aligner.h"
#include "align/cone.h"
#include "align/graal.h"
#include "align/grasp.h"
#include "align/gw_common.h"
#include "align/gwl.h"
#include "align/isorank.h"
#include "align/lrea.h"
#include "align/nsd.h"
#include "align/regal.h"
#include "align/sgwl.h"
#include "common/random.h"
#include "graph/generators.h"
#include "linalg/sinkhorn.h"
#include "metrics/metrics.h"
#include "noise/noise.h"

namespace graphalign {
namespace {

// Shared fixtures: a powerlaw-cluster base graph with a permuted copy
// (zero noise) and a 5%-one-way-noise variant. The accuracy thresholds below
// were calibrated against this instance and mirror the paper's findings
// (all algorithms recover isomorphic graphs; robustness ordering under
// noise: GWL/S-GWL/CONE > GRAAL > IsoRank/NSD > REGAL/GRASP > LREA).
class AlignFixture : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(123);
    auto base = PowerlawCluster(80, 3, 0.3, &rng);
    GA_CHECK(base.ok());
    base_ = new Graph(*base);
    NoiseOptions clean;
    clean.level = 0.0;
    Rng r1(7);
    auto p0 = MakeAlignmentProblem(*base_, clean, &r1);
    GA_CHECK(p0.ok());
    clean_ = new AlignmentProblem(*std::move(p0));
    NoiseOptions noisy;
    noisy.level = 0.05;
    Rng r2(7);
    auto p5 = MakeAlignmentProblem(*base_, noisy, &r2);
    GA_CHECK(p5.ok());
    noisy_ = new AlignmentProblem(*std::move(p5));
  }

  static const Graph* base_;
  static const AlignmentProblem* clean_;
  static const AlignmentProblem* noisy_;
};

const Graph* AlignFixture::base_ = nullptr;
const AlignmentProblem* AlignFixture::clean_ = nullptr;
const AlignmentProblem* AlignFixture::noisy_ = nullptr;

double JvAccuracy(Aligner* aligner, const AlignmentProblem& prob) {
  auto align =
      aligner->Align(prob.g1, prob.g2, AssignmentMethod::kJonkerVolgenant);
  GA_CHECK(align.ok());
  return Accuracy(*align, prob.ground_truth);
}

// ---------------------------------------------------------------------------
// Factory.

TEST(AlignerFactoryTest, CreatesAllPaperAlgorithms) {
  for (const std::string& name : AllAlignerNames()) {
    auto aligner = MakeAligner(name);
    ASSERT_TRUE(aligner.ok()) << name;
    EXPECT_EQ((*aligner)->name(), name);
  }
  EXPECT_EQ(AllAlignerNames().size(), 9u);
}

TEST(AlignerFactoryTest, UnknownNameRejected) {
  EXPECT_EQ(MakeAligner("FooAlign").status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Parameterized over all nine algorithms: common contract.

class AllAlignersTest : public AlignFixture,
                        public testing::WithParamInterface<std::string> {};

INSTANTIATE_TEST_SUITE_P(Paper, AllAlignersTest,
                         testing::Values("IsoRank", "GRAAL", "NSD", "LREA",
                                         "REGAL", "GWL", "S-GWL", "CONE",
                                         "GRASP"),
                         [](const auto& info) {
                           std::string n = info.param;
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

TEST_P(AllAlignersTest, RecoversIsomorphicGraphs) {
  auto aligner = MakeAligner(GetParam());
  ASSERT_TRUE(aligner.ok());
  const double acc = JvAccuracy(aligner->get(), *clean_);
  // GRASP's spectral embedding tolerates slightly below-perfect recovery on
  // graphs with near-degenerate eigenspaces (paper: "almost consistently").
  const double threshold = GetParam() == "GRASP" ? 0.85 : 0.95;
  EXPECT_GE(acc, threshold) << GetParam();
}

TEST_P(AllAlignersTest, SimilarityShapeAndFiniteness) {
  auto aligner = MakeAligner(GetParam());
  ASSERT_TRUE(aligner.ok());
  auto sim = (*aligner)->ComputeSimilarity(clean_->g1, clean_->g2);
  ASSERT_TRUE(sim.ok()) << GetParam();
  EXPECT_EQ(sim->rows(), clean_->g1.num_nodes());
  EXPECT_EQ(sim->cols(), clean_->g2.num_nodes());
  for (int i = 0; i < sim->rows(); ++i) {
    for (int j = 0; j < sim->cols(); ++j) {
      ASSERT_TRUE(std::isfinite((*sim)(i, j)))
          << GetParam() << " at (" << i << "," << j << ")";
    }
  }
}

TEST_P(AllAlignersTest, RejectsEmptyGraphs) {
  auto aligner = MakeAligner(GetParam());
  ASSERT_TRUE(aligner.ok());
  Graph empty;
  EXPECT_FALSE((*aligner)->ComputeSimilarity(empty, clean_->g2).ok());
  EXPECT_FALSE((*aligner)->ComputeSimilarity(clean_->g1, empty).ok());
}

TEST_P(AllAlignersTest, DeterministicAcrossRuns) {
  auto a1 = MakeAligner(GetParam());
  auto a2 = MakeAligner(GetParam());
  ASSERT_TRUE(a1.ok() && a2.ok());
  auto s1 = (*a1)->ComputeSimilarity(noisy_->g1, noisy_->g2);
  auto s2 = (*a2)->ComputeSimilarity(noisy_->g1, noisy_->g2);
  ASSERT_TRUE(s1.ok() && s2.ok());
  for (int i = 0; i < s1->rows(); ++i) {
    for (int j = 0; j < s1->cols(); ++j) {
      ASSERT_DOUBLE_EQ((*s1)(i, j), (*s2)(i, j)) << GetParam();
    }
  }
}

TEST_P(AllAlignersTest, NativeAlignmentIsValid) {
  auto aligner = MakeAligner(GetParam());
  ASSERT_TRUE(aligner.ok());
  auto align = (*aligner)->AlignNative(noisy_->g1, noisy_->g2);
  ASSERT_TRUE(align.ok()) << GetParam();
  ASSERT_EQ(static_cast<int>(align->size()), noisy_->g1.num_nodes());
  for (int t : *align) {
    EXPECT_GE(t, -1);
    EXPECT_LT(t, noisy_->g2.num_nodes());
  }
}

TEST_P(AllAlignersTest, BetterThanRandomUnderNoise) {
  auto aligner = MakeAligner(GetParam());
  ASSERT_TRUE(aligner.ok());
  const double acc = JvAccuracy(aligner->get(), *noisy_);
  // Random matching on 80 nodes scores ~1/80 = 0.0125.
  EXPECT_GE(acc, 0.10) << GetParam();
}

// ---------------------------------------------------------------------------
// Paper finding (§6.2/§6.3): robustness ordering and assignment effects.

TEST_F(AlignFixture, GwFamilyIsMostNoiseRobust) {
  for (const std::string& name : {"GWL", "S-GWL", "CONE"}) {
    auto aligner = MakeAligner(name);
    ASSERT_TRUE(aligner.ok());
    EXPECT_GE(JvAccuracy(aligner->get(), *noisy_), 0.85) << name;
  }
}

TEST_F(AlignFixture, JvBeatsSortGreedyForIsoRank) {
  // §6.2: "NSD and IsoRank ... benefit significantly from using JV."
  IsoRankAligner iso;
  auto jv = iso.Align(noisy_->g1, noisy_->g2,
                      AssignmentMethod::kJonkerVolgenant);
  auto sg = iso.Align(noisy_->g1, noisy_->g2, AssignmentMethod::kSortGreedy);
  ASSERT_TRUE(jv.ok() && sg.ok());
  EXPECT_GT(Accuracy(*jv, noisy_->ground_truth),
            Accuracy(*sg, noisy_->ground_truth) + 0.1);
}

TEST_F(AlignFixture, LreaCollapsesUnderNoiseButNotToZero) {
  // §6.3: LREA is perfect on isomorphic graphs yet drops sharply with noise.
  LreaAligner lrea;
  const double clean_acc = JvAccuracy(&lrea, *clean_);
  const double noisy_acc = JvAccuracy(&lrea, *noisy_);
  EXPECT_GE(clean_acc, 0.95);
  EXPECT_LT(noisy_acc, clean_acc - 0.4);
}

// ---------------------------------------------------------------------------
// Algorithm-specific behavior.

TEST(IsoRankTest, DegreePriorProperties) {
  Rng rng(1);
  auto g1 = BarabasiAlbert(30, 2, &rng);
  auto g2 = BarabasiAlbert(30, 2, &rng);
  ASSERT_TRUE(g1.ok() && g2.ok());
  DenseMatrix e = DegreeSimilarityPrior(*g1, *g2);
  for (int u = 0; u < 30; ++u) {
    for (int v = 0; v < 30; ++v) {
      ASSERT_GE(e(u, v), 0.0);
      ASSERT_LE(e(u, v), 1.0);
      if (g1->Degree(u) == g2->Degree(v)) {
        EXPECT_DOUBLE_EQ(e(u, v), 1.0);
      }
    }
  }
}

TEST(IsoRankTest, InvalidAlphaRejected) {
  IsoRankOptions opt;
  opt.alpha = 1.5;
  IsoRankAligner iso(opt);
  Rng rng(2);
  auto g = ErdosRenyi(10, 0.3, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(iso.ComputeSimilarity(*g, *g).ok());
}

TEST(NsdTest, InvalidOptionsRejected) {
  Rng rng(3);
  auto g = ErdosRenyi(10, 0.3, &rng);
  ASSERT_TRUE(g.ok());
  NsdOptions bad_alpha;
  bad_alpha.alpha = -0.1;
  EXPECT_FALSE(NsdAligner(bad_alpha).ComputeSimilarity(*g, *g).ok());
  NsdOptions bad_iters;
  bad_iters.iterations = 0;
  EXPECT_FALSE(NsdAligner(bad_iters).ComputeSimilarity(*g, *g).ok());
}

TEST(LreaTest, FactorsMultiplyToSimilarity) {
  Rng rng(4);
  auto g = ErdosRenyi(25, 0.2, &rng);
  ASSERT_TRUE(g.ok());
  LreaAligner lrea;
  auto factors = lrea.ComputeFactors(*g, *g);
  ASSERT_TRUE(factors.ok());
  EXPECT_EQ(factors->u.rows(), 25);
  EXPECT_EQ(factors->v.rows(), 25);
  EXPECT_EQ(factors->u.cols(), factors->v.cols());
  EXPECT_LE(factors->u.cols(), LreaOptions().max_rank);
  auto sim = lrea.ComputeSimilarity(*g, *g);
  ASSERT_TRUE(sim.ok());
  DenseMatrix rec = MultiplyABt(factors->u, factors->v);
  for (int i = 0; i < 25; ++i) {
    for (int j = 0; j < 25; ++j) {
      EXPECT_NEAR(rec(i, j), (*sim)(i, j), 1e-9);
    }
  }
}

TEST(LreaTest, ScoreConstraintEnforced) {
  LreaOptions opt;
  opt.overlap_score = 1.0;
  opt.noninform_score = 1.0;
  opt.conflict_score = 0.5;  // c1 = 1 + 0.5 - 2 < 0.
  LreaAligner lrea(opt);
  Rng rng(5);
  auto g = ErdosRenyi(10, 0.3, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(lrea.ComputeSimilarity(*g, *g).ok());
}

TEST(LreaTest, NativeExtractionIsOneToOne) {
  Rng rng(6);
  auto base = BarabasiAlbert(50, 3, &rng);
  ASSERT_TRUE(base.ok());
  NoiseOptions opts;
  opts.level = 0.02;
  auto prob = MakeAlignmentProblem(*base, opts, &rng);
  ASSERT_TRUE(prob.ok());
  LreaAligner lrea;
  auto align = lrea.AlignNative(prob->g1, prob->g2);
  ASSERT_TRUE(align.ok());
  std::set<int> used;
  for (int t : *align) {
    if (t < 0) continue;
    EXPECT_TRUE(used.insert(t).second) << "duplicate target " << t;
  }
}

TEST(RegalTest, EmbeddingsAreRowNormalized) {
  Rng rng(7);
  auto g1 = BarabasiAlbert(40, 3, &rng);
  auto g2 = BarabasiAlbert(40, 3, &rng);
  ASSERT_TRUE(g1.ok() && g2.ok());
  RegalAligner regal;
  auto y = regal.ComputeEmbeddings(*g1, *g2);
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(y->rows(), 80);
  for (int i = 0; i < y->rows(); ++i) {
    double norm = 0.0;
    for (int j = 0; j < y->cols(); ++j) norm += (*y)(i, j) * (*y)(i, j);
    // Rows are unit-norm or all-zero (isolated structural class).
    EXPECT_TRUE(std::fabs(std::sqrt(norm) - 1.0) < 1e-9 || norm == 0.0);
  }
}

TEST(RegalTest, SimilarityIsExpOfNegativeDistance) {
  Rng rng(8);
  auto g = BarabasiAlbert(30, 2, &rng);
  ASSERT_TRUE(g.ok());
  RegalAligner regal;
  auto sim = regal.ComputeSimilarity(*g, *g);
  ASSERT_TRUE(sim.ok());
  for (int i = 0; i < sim->rows(); ++i) {
    for (int j = 0; j < sim->cols(); ++j) {
      ASSERT_GT((*sim)(i, j), 0.0);
      ASSERT_LE((*sim)(i, j), 1.0 + 1e-12);
    }
  }
}

TEST(GraspTest, HandlesDisconnectedGraphsWithoutCrashing) {
  // §6.4: GRASP falters on disconnected graphs — but must not fail.
  Rng rng(9);
  auto c1 = ErdosRenyi(20, 0.3, &rng);
  auto c2 = ErdosRenyi(20, 0.3, &rng);
  ASSERT_TRUE(c1.ok() && c2.ok());
  std::vector<Edge> edges;
  for (const Edge& e : c1->Edges()) edges.push_back(e);
  for (const Edge& e : c2->Edges()) edges.push_back({e.u + 20, e.v + 20});
  auto disconnected = Graph::FromEdges(40, edges);
  ASSERT_TRUE(disconnected.ok());
  ASSERT_FALSE(disconnected->IsConnected());
  GraspAligner grasp;
  auto sim = grasp.ComputeSimilarity(*disconnected, *disconnected);
  EXPECT_TRUE(sim.ok());
}

TEST(GraspTest, InvalidTimeRangeRejected) {
  GraspOptions opt;
  opt.t_min = 5.0;
  opt.t_max = 1.0;
  GraspAligner grasp(opt);
  Rng rng(10);
  auto g = ErdosRenyi(10, 0.4, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(grasp.ComputeSimilarity(*g, *g).ok());
}

TEST(GwCommonTest, TransportHasPrescribedMarginals) {
  Rng rng(11);
  auto g1 = ErdosRenyi(15, 0.3, &rng);
  auto g2 = ErdosRenyi(18, 0.3, &rng);
  ASSERT_TRUE(g1.ok() && g2.ok());
  std::vector<double> mu = UniformMarginal(15);
  std::vector<double> nu = UniformMarginal(18);
  GwOptions opts;
  auto t = GromovWassersteinTransport(g1->AdjacencyCsr(), g2->AdjacencyCsr(),
                                      mu, nu, opts);
  ASSERT_TRUE(t.ok());
  // The Sinkhorn projection ends on the column update, so column marginals
  // are exact and row marginals approximate.
  for (int j = 0; j < 18; ++j) {
    double col = 0.0;
    for (int i = 0; i < 15; ++i) col += (*t)(i, j);
    EXPECT_NEAR(col, nu[j], 1e-9);
  }
  for (int i = 0; i < 15; ++i) {
    double row = 0.0;
    for (int j = 0; j < 18; ++j) row += (*t)(i, j);
    EXPECT_NEAR(row, mu[i], 5e-3);
  }
}

TEST(GwCommonTest, IdenticalGraphsHaveLowerObjectiveThanShuffled) {
  Rng rng(12);
  auto g = BarabasiAlbert(25, 2, &rng);
  ASSERT_TRUE(g.ok());
  std::vector<double> mu = UniformMarginal(25);
  GwOptions opts;
  opts.outer_iterations = 50;
  auto t = GromovWassersteinTransport(g->AdjacencyCsr(), g->AdjacencyCsr(),
                                      mu, mu, opts);
  ASSERT_TRUE(t.ok());
  const double obj = GromovWassersteinObjective(
      g->AdjacencyCsr(), g->AdjacencyCsr(), mu, mu, *t);
  // Product coupling is strictly worse than the learned transport.
  DenseMatrix product(25, 25, 1.0 / (25.0 * 25.0));
  const double base = GromovWassersteinObjective(
      g->AdjacencyCsr(), g->AdjacencyCsr(), mu, mu, product);
  EXPECT_LT(obj, base);
}

TEST(GwCommonTest, InvalidInputsRejected) {
  Rng rng(13);
  auto g = ErdosRenyi(10, 0.4, &rng);
  ASSERT_TRUE(g.ok());
  GwOptions opts;
  EXPECT_FALSE(GromovWassersteinTransport(g->AdjacencyCsr(),
                                          g->AdjacencyCsr(),
                                          UniformMarginal(5),
                                          UniformMarginal(10), opts)
                   .ok());
  GwOptions bad_beta;
  bad_beta.beta = 0.0;
  EXPECT_FALSE(GromovWassersteinTransport(g->AdjacencyCsr(),
                                          g->AdjacencyCsr(),
                                          UniformMarginal(10),
                                          UniformMarginal(10), bad_beta)
                   .ok());
}

TEST(SgwlTest, RecursionHandlesLargerGraphs) {
  Rng rng(14);
  auto base = BarabasiAlbert(300, 3, &rng);
  ASSERT_TRUE(base.ok());
  NoiseOptions opts;
  opts.level = 0.0;
  auto prob = MakeAlignmentProblem(*base, opts, &rng);
  ASSERT_TRUE(prob.ok());
  SgwlOptions sopt = SgwlOptions::ForSparseGraphs();  // BA(m=3) is sparse.
  sopt.leaf_size = 64;  // Force at least one partitioning level.
  SgwlAligner sgwl(sopt);
  auto align = sgwl.Align(prob->g1, prob->g2,
                          AssignmentMethod::kJonkerVolgenant);
  ASSERT_TRUE(align.ok());
  // Divide-and-conquer trades accuracy for scalability (paper §3.6); it
  // must stay far above random (1/300 ~ 0.003).
  EXPECT_GE(Accuracy(*align, prob->ground_truth), 0.2);
}

TEST(SgwlTest, SparsePresetUsesSmallerBeta) {
  EXPECT_LT(SgwlOptions::ForSparseGraphs().gw.beta, SgwlOptions().gw.beta);
}

TEST(GraalTest, SimilarityWithinExpectedRange) {
  Rng rng(15);
  auto g = BarabasiAlbert(30, 2, &rng);
  ASSERT_TRUE(g.ok());
  GraalAligner graal;
  auto sim = graal.ComputeSimilarity(*g, *g);
  ASSERT_TRUE(sim.ok());
  for (int i = 0; i < 30; ++i) {
    for (int j = 0; j < 30; ++j) {
      ASSERT_GE((*sim)(i, j), 0.0);
      ASSERT_LE((*sim)(i, j), 2.0);
    }
    // Self-similarity of the signature part is maximal on identical graphs.
    EXPECT_GT((*sim)(i, i), 0.75);
  }
}

TEST(GraalTest, SignatureSimilarityIsPermutationInvariant) {
  Rng rng(16);
  auto g = ErdosRenyi(25, 0.2, &rng);
  ASSERT_TRUE(g.ok());
  std::vector<int> perm = RandomPermutation(25, &rng);
  auto pg = g->Permuted(perm);
  ASSERT_TRUE(pg.ok());
  auto sim = GraphletSignatureSimilarity(*g, *pg, 1'000'000);
  ASSERT_TRUE(sim.ok());
  for (int u = 0; u < 25; ++u) {
    EXPECT_NEAR((*sim)(u, perm[u]), 1.0, 1e-12);
  }
}

TEST(GraalTest, EnumerationBudgetSurfacesAsError) {
  GraalOptions opt;
  opt.max_subgraphs = 3;
  GraalAligner graal(opt);
  Rng rng(17);
  auto g = ErdosRenyi(20, 0.5, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(graal.ComputeSimilarity(*g, *g).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ConeTest, InvalidOptionsRejected) {
  ConeOptions opt;
  opt.dim = 1;
  ConeAligner cone(opt);
  Rng rng(18);
  auto g = ErdosRenyi(10, 0.4, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(cone.ComputeSimilarity(*g, *g).ok());
}

// ---------------------------------------------------------------------------
// Integration: every algorithm x every assignment method produces a valid
// alignment on a small instance.

class AssignmentSwapTest
    : public testing::TestWithParam<std::tuple<std::string, AssignmentMethod>> {
};

INSTANTIATE_TEST_SUITE_P(
    Matrix, AssignmentSwapTest,
    testing::Combine(testing::ValuesIn(AllAlignerNames()),
                     testing::Values(AssignmentMethod::kNearestNeighbor,
                                     AssignmentMethod::kSortGreedy,
                                     AssignmentMethod::kHungarian,
                                     AssignmentMethod::kJonkerVolgenant)),
    [](const auto& info) {
      std::string n = std::get<0>(info.param);
      std::replace(n.begin(), n.end(), '-', '_');
      return n + "_" + AssignmentMethodName(std::get<1>(info.param));
    });

TEST_P(AssignmentSwapTest, ProducesValidAlignment) {
  const auto& [name, method] = GetParam();
  Rng rng(19);
  auto base = BarabasiAlbert(40, 2, &rng);
  ASSERT_TRUE(base.ok());
  NoiseOptions opts;
  opts.level = 0.02;
  auto prob = MakeAlignmentProblem(*base, opts, &rng);
  ASSERT_TRUE(prob.ok());
  auto aligner = MakeAligner(name);
  ASSERT_TRUE(aligner.ok());
  auto align = (*aligner)->Align(prob->g1, prob->g2, method);
  ASSERT_TRUE(align.ok()) << name;
  ASSERT_EQ(align->size(), static_cast<size_t>(40));
  std::set<int> used;
  for (int t : *align) {
    ASSERT_GE(t, -1);
    ASSERT_LT(t, 40);
    if (method != AssignmentMethod::kNearestNeighbor && t >= 0) {
      EXPECT_TRUE(used.insert(t).second)
          << name << "/" << AssignmentMethodName(method)
          << " produced a duplicate match";
    }
  }
}

}  // namespace
}  // namespace graphalign
