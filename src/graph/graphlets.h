// Graphlet-orbit counting for GRAAL's node signatures (paper §3.2).
//
// Counts, for every node, how often it touches each automorphism orbit of
// the connected graphlets on 2-4 nodes (15 orbits). Orbits 0-3 are computed
// analytically; orbits 4-14 by ESU enumeration (Wernicke) of connected
// induced 4-node subgraphs, each visited exactly once.
//
// Orbit numbering (Przulj-style):
//   0  edge endpoint (= degree)
//   1  end of a 3-path            2  middle of a 3-path
//   3  triangle vertex
//   4  end of a 4-path            5  middle of a 4-path
//   6  leaf of a 3-star (claw)    7  center of a 3-star
//   8  4-cycle vertex
//   9  pendant of a paw          10  triangle vertices of a paw (deg 2)
//  11  hub of a paw (deg 3)
//  12  degree-2 vertex of a diamond   13  degree-3 vertex of a diamond
//  14  K4 vertex
#ifndef GRAPHALIGN_GRAPH_GRAPHLETS_H_
#define GRAPHALIGN_GRAPH_GRAPHLETS_H_

#include <cstdint>

#include "common/deadline.h"
#include "common/status.h"
#include "graph/graph.h"
#include "linalg/dense.h"

namespace graphalign {

inline constexpr int kNumOrbits = 15;

// Returns an n x 15 matrix of orbit counts. Enumeration stops with
// ResourceExhausted if more than `max_subgraphs` connected 4-node subgraphs
// exist (dense graphs make GRAAL's preprocessing intractable, mirroring the
// paper's GRAAL timeouts). The wall-clock deadline is the second arm of the
// same budget mechanism: both are polled in the enumeration's emit path, the
// count budget exactly and the deadline amortized, and expiry returns
// kDeadlineExceeded.
Result<DenseMatrix> CountGraphletOrbits(const Graph& g,
                                        int64_t max_subgraphs = 200'000'000,
                                        const Deadline& deadline = Deadline());

// Orbits of the connected graphlets on exactly 5 nodes. There are 21 such
// graphlets with 58 automorphism orbits; together with the 15 orbits of the
// 2-4-node graphlets this yields the full 73-orbit graphlet degree vector
// GRAAL was published with.
inline constexpr int kNumOrbits5 = 58;

// Returns an n x 58 matrix of 5-node orbit counts. Orbits are numbered
// deterministically: connected 5-node graphs are canonized by exhaustive
// permutation (a one-time 1024-entry table), ordered by (edge count,
// canonical adjacency mask), and their automorphism orbits ordered by the
// orbit's lowest canonical vertex. Enumeration uses ESU for k = 5 with the
// same subgraph budget semantics as the 4-node counter.
Result<DenseMatrix> CountGraphletOrbits5(const Graph& g,
                                         int64_t max_subgraphs = 200'000'000,
                                         const Deadline& deadline = Deadline());

// Convenience: the full 73-column GDV [orbits 0-14 | 5-node orbits].
Result<DenseMatrix> CountGraphletOrbits73(const Graph& g,
                                          int64_t max_subgraphs = 200'000'000,
                                          const Deadline& deadline = Deadline());

}  // namespace graphalign

#endif  // GRAPHALIGN_GRAPH_GRAPHLETS_H_
