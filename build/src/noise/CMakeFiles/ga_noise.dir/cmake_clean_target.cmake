file(REMOVE_RECURSE
  "libga_noise.a"
)
