// Figure 11: similarity-stage runtime vs node count (2^10..2^16 at paper
// scale) on configuration-model graphs with average degree 10 (§6.6).
// Expected ordering: LREA/NSD/REGAL fastest, IsoRank/GWL slowest.
#include "scalability.h"

int main(int argc, char** argv) {
  graphalign::BenchArgs probe = graphalign::ParseBenchArgs(argc, argv);
  return graphalign::bench::RunScalabilitySweep(
      "Figure 11", "runtime vs number of nodes (assignment excluded)",
      graphalign::bench::NodeSweep(probe.full),
      graphalign::bench::SweepMetric::kTime, argc, argv);
}
