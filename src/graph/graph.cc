#include "graph/graph.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <string>

namespace graphalign {

Result<Graph> Graph::FromEdges(int num_nodes, const std::vector<Edge>& edges) {
  if (num_nodes < 0) {
    return Status::InvalidArgument("Graph: negative node count");
  }
  for (const Edge& e : edges) {
    if (e.u < 0 || e.u >= num_nodes || e.v < 0 || e.v >= num_nodes) {
      return Status::OutOfRange("Graph: edge endpoint out of range (" +
                                std::to_string(e.u) + "," +
                                std::to_string(e.v) + ")");
    }
    if (e.u == e.v) {
      return Status::InvalidArgument("Graph: self-loop at node " +
                                     std::to_string(e.u));
    }
  }
  // Canonicalize, sort, dedup.
  std::vector<std::pair<int, int>> canon;
  canon.reserve(edges.size());
  for (const Edge& e : edges) {
    canon.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v));
  }
  std::sort(canon.begin(), canon.end());
  canon.erase(std::unique(canon.begin(), canon.end()), canon.end());

  auto owned = std::make_shared<Owned>();
  std::vector<int64_t>& offsets = owned->offsets;
  std::vector<int>& adj = owned->adj;
  std::vector<int> degree(num_nodes, 0);
  for (const auto& [u, v] : canon) {
    degree[u]++;
    degree[v]++;
  }
  offsets.assign(num_nodes + 1, 0);
  for (int i = 0; i < num_nodes; ++i) offsets[i + 1] = offsets[i] + degree[i];
  adj.resize(static_cast<size_t>(offsets[num_nodes]));
  std::vector<int64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : canon) {
    adj[cursor[u]++] = v;
    adj[cursor[v]++] = u;
  }
  for (int i = 0; i < num_nodes; ++i) {
    std::sort(adj.begin() + offsets[i], adj.begin() + offsets[i + 1]);
  }

  Graph g;
  g.num_nodes_ = num_nodes;
  g.num_edges_ = static_cast<int64_t>(canon.size());
  g.offsets_ = offsets.data();
  g.adj_ = adj.data();
  g.backing_ = std::move(owned);
  return g;
}

Graph Graph::FromCsrUnchecked(int num_nodes, int64_t num_edges,
                              const int64_t* offsets, const int* adj,
                              std::shared_ptr<const void> backing) {
  Graph g;
  g.num_nodes_ = num_nodes;
  g.num_edges_ = num_edges;
  g.offsets_ = offsets;
  g.adj_ = adj;
  g.backing_ = std::move(backing);
  return g;
}

bool Graph::HasEdge(int u, int v) const {
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

int Graph::MaxDegree() const {
  int d = 0;
  for (int i = 0; i < num_nodes_; ++i) d = std::max(d, Degree(i));
  return d;
}

std::vector<Edge> Graph::Edges() const {
  std::vector<Edge> out;
  out.reserve(static_cast<size_t>(num_edges_));
  for (int u = 0; u < num_nodes_; ++u) {
    for (int v : Neighbors(u)) {
      if (u < v) out.push_back({u, v});
    }
  }
  return out;
}

uint64_t Graph::ContentHash() const {
  // FNV-1a, mixing fixed-width little-endian words so the hash does not
  // depend on host struct layout.
  uint64_t h = 14695981039346656037ull;
  auto mix64 = [&h](uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix64(static_cast<uint64_t>(num_nodes_));
  for (int u = 0; u < num_nodes_; ++u) {
    for (int v : Neighbors(u)) {
      // The CSR stores each undirected edge twice; hash the u < v copy only,
      // which enumerates the canonical edge list in sorted order.
      if (u < v) {
        mix64((static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
              static_cast<uint32_t>(v));
      }
    }
  }
  return h;
}

CsrMatrix Graph::AdjacencyCsr() const {
  std::vector<Triplet> trip;
  trip.reserve(static_cast<size_t>(2 * num_edges_));
  for (int u = 0; u < num_nodes_; ++u) {
    for (int v : Neighbors(u)) trip.push_back({u, v, 1.0});
  }
  return CsrMatrix::FromTriplets(num_nodes_, num_nodes_, std::move(trip));
}

CsrMatrix Graph::RandomWalkCsr() const {
  std::vector<Triplet> trip;
  trip.reserve(static_cast<size_t>(2 * num_edges_));
  for (int u = 0; u < num_nodes_; ++u) {
    const double inv = Degree(u) > 0 ? 1.0 / Degree(u) : 0.0;
    for (int v : Neighbors(u)) trip.push_back({u, v, inv});
  }
  return CsrMatrix::FromTriplets(num_nodes_, num_nodes_, std::move(trip));
}

CsrMatrix Graph::SymNormalizedAdjacencyCsr() const {
  std::vector<double> inv_sqrt(num_nodes_, 0.0);
  for (int u = 0; u < num_nodes_; ++u) {
    if (Degree(u) > 0) inv_sqrt[u] = 1.0 / std::sqrt(Degree(u));
  }
  std::vector<Triplet> trip;
  trip.reserve(static_cast<size_t>(2 * num_edges_));
  for (int u = 0; u < num_nodes_; ++u) {
    for (int v : Neighbors(u)) {
      trip.push_back({u, v, inv_sqrt[u] * inv_sqrt[v]});
    }
  }
  return CsrMatrix::FromTriplets(num_nodes_, num_nodes_, std::move(trip));
}

DenseMatrix Graph::NormalizedLaplacianDense() const {
  DenseMatrix l(num_nodes_, num_nodes_);
  std::vector<double> inv_sqrt(num_nodes_, 0.0);
  for (int u = 0; u < num_nodes_; ++u) {
    if (Degree(u) > 0) inv_sqrt[u] = 1.0 / std::sqrt(Degree(u));
    l(u, u) = Degree(u) > 0 ? 1.0 : 0.0;
  }
  for (int u = 0; u < num_nodes_; ++u) {
    for (int v : Neighbors(u)) {
      l(u, v) = -inv_sqrt[u] * inv_sqrt[v];
    }
  }
  return l;
}

Result<Graph> Graph::Permuted(const std::vector<int>& perm) const {
  if (static_cast<int>(perm.size()) != num_nodes_) {
    return Status::InvalidArgument("Permuted: permutation size mismatch");
  }
  std::vector<bool> seen(num_nodes_, false);
  for (int p : perm) {
    if (p < 0 || p >= num_nodes_ || seen[p]) {
      return Status::InvalidArgument("Permuted: not a permutation");
    }
    seen[p] = true;
  }
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(num_edges_));
  for (int u = 0; u < num_nodes_; ++u) {
    for (int v : Neighbors(u)) {
      if (u < v) edges.push_back({perm[u], perm[v]});
    }
  }
  return FromEdges(num_nodes_, edges);
}

std::vector<int> Graph::ConnectedComponents(int* num_components) const {
  std::vector<int> comp(num_nodes_, -1);
  int next = 0;
  std::vector<int> stack;
  for (int s = 0; s < num_nodes_; ++s) {
    if (comp[s] != -1) continue;
    comp[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      for (int v : Neighbors(u)) {
        if (comp[v] == -1) {
          comp[v] = next;
          stack.push_back(v);
        }
      }
    }
    ++next;
  }
  if (num_components != nullptr) *num_components = next;
  return comp;
}

bool Graph::IsConnected() const {
  if (num_nodes_ <= 1) return true;
  int k = 0;
  ConnectedComponents(&k);
  return k == 1;
}

int Graph::NodesOutsideLargestComponent() const {
  if (num_nodes_ == 0) return 0;
  int k = 0;
  std::vector<int> comp = ConnectedComponents(&k);
  std::vector<int> sizes(k, 0);
  for (int c : comp) sizes[c]++;
  return num_nodes_ - *std::max_element(sizes.begin(), sizes.end());
}

std::vector<int64_t> Graph::TriangleCounts() const {
  std::vector<int64_t> tri(num_nodes_, 0);
  for (int u = 0; u < num_nodes_; ++u) {
    auto nu = Neighbors(u);
    for (int v : nu) {
      if (v <= u) continue;
      // Intersect sorted N(u) and N(v), counting w > v to count each
      // triangle once.
      auto nv = Neighbors(v);
      size_t i = 0, j = 0;
      while (i < nu.size() && j < nv.size()) {
        if (nu[i] < nv[j]) {
          ++i;
        } else if (nu[i] > nv[j]) {
          ++j;
        } else {
          if (nu[i] > v) {
            tri[u]++;
            tri[v]++;
            tri[nu[i]]++;
          }
          ++i;
          ++j;
        }
      }
    }
  }
  return tri;
}

}  // namespace graphalign
