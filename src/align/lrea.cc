#include "align/lrea.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <utility>
#include <vector>

#include "assignment/sparse_lap.h"
#include "linalg/csr.h"
#include "linalg/svd.h"

namespace graphalign {

namespace {

// Appends column `col` to matrix `m` (n x r -> n x r+1).
DenseMatrix AppendColumns(const DenseMatrix& m,
                          const std::vector<std::vector<double>>& cols) {
  DenseMatrix out(m.rows(), m.cols() + static_cast<int>(cols.size()));
  for (int i = 0; i < m.rows(); ++i) {
    const double* src = m.Row(i);
    double* dst = out.Row(i);
    std::copy(src, src + m.cols(), dst);
    for (size_t c = 0; c < cols.size(); ++c) {
      dst[m.cols() + c] = cols[c][i];
    }
  }
  return out;
}

// Compresses X = U V^T to rank <= max_rank via thin QR of both factors and
// SVD of the small core R_u R_v^T.
Status Compress(int max_rank, const Deadline& deadline, DenseMatrix* u,
                DenseMatrix* v) {
  GA_ASSIGN_OR_RETURN(QrResult qu, ThinQr(*u, /*tol=*/1e-12, deadline));
  GA_ASSIGN_OR_RETURN(QrResult qv, ThinQr(*v, /*tol=*/1e-12, deadline));
  DenseMatrix core = MultiplyABt(qu.r, qv.r);  // ru x rv
  GA_ASSIGN_OR_RETURN(SvdResult svd, Svd(core, deadline));
  const int r = std::min(
      max_rank, static_cast<int>(svd.singular_values.size()));
  // U <- Qu * U_core * sqrt(S), V <- Qv * V_core * sqrt(S).
  DenseMatrix ucore(svd.u.rows(), r), vcore(svd.v.rows(), r);
  for (int j = 0; j < r; ++j) {
    const double s = std::sqrt(std::max(svd.singular_values[j], 0.0));
    for (int i = 0; i < svd.u.rows(); ++i) ucore(i, j) = svd.u(i, j) * s;
    for (int i = 0; i < svd.v.rows(); ++i) vcore(i, j) = svd.v(i, j) * s;
  }
  *u = Multiply(qu.q, ucore);
  *v = Multiply(qv.q, vcore);
  return Status::Ok();
}

}  // namespace

Result<LreaAligner::Factors> LreaAligner::ComputeFactors(
    const Graph& g1, const Graph& g2, const Deadline& deadline) {
  GA_RETURN_IF_ERROR(ValidateInputs(g1, g2));
  if (options_.iterations < 1 || options_.max_rank < 1) {
    return Status::InvalidArgument("LREA: bad options");
  }
  const double c1 = options_.overlap_score + options_.conflict_score -
                    2.0 * options_.noninform_score;
  const double c2 = options_.noninform_score - options_.conflict_score;
  const double c3 = options_.conflict_score;
  if (c1 <= 0.0) {
    return Status::InvalidArgument(
        "LREA: scores must satisfy sO + sC > 2 sN (overlap-dominant)");
  }
  const int n1 = g1.num_nodes();
  const int n2 = g2.num_nodes();
  const CsrMatrix a = g1.AdjacencyCsr();
  const CsrMatrix b = g2.AdjacencyCsr();

  // Rank-1 start: X = (1/sqrt(n1 n2)) * 1 1^T.
  DenseMatrix u(n1, 1, 1.0 / std::sqrt(static_cast<double>(n1)));
  DenseMatrix v(n2, 1, 1.0 / std::sqrt(static_cast<double>(n2)));

  for (int iter = 0; iter < options_.iterations; ++iter) {
    GA_RETURN_IF_EXPIRED(deadline, "LREA");
    // Factored application of Eq. 7 with E = all-ones:
    //   term1 = c1 (A U)(B V)^T
    //   term2 = c2 (A U s_v) 1^T          with s_v = V^T 1
    //   term3 = c2 1 (B V s_u)^T          with s_u = U^T 1
    //   term4 = c3 (s_u . s_v) 1 1^T
    DenseMatrix au = a.Multiply(u);  // n1 x r
    DenseMatrix bv = b.Multiply(v);  // n2 x r
    const int r = u.cols();
    std::vector<double> su(r, 0.0), sv(r, 0.0);
    for (int i = 0; i < n1; ++i) {
      const double* row = u.Row(i);
      for (int j = 0; j < r; ++j) su[j] += row[j];
    }
    for (int i = 0; i < n2; ++i) {
      const double* row = v.Row(i);
      for (int j = 0; j < r; ++j) sv[j] += row[j];
    }
    // New left factor columns: [sqrt(c1) A U | c2 (A U s_v) | 1 | 1].
    // Weights are split so U carries c-scaling and V stays unscaled
    // (term k contributes (u_col)(v_col)^T exactly).
    std::vector<double> t2(n1, 0.0);
    for (int i = 0; i < n1; ++i) {
      const double* row = au.Row(i);
      double s = 0.0;
      for (int j = 0; j < r; ++j) s += row[j] * sv[j];
      t2[i] = c2 * s;
    }
    std::vector<double> t3(n2, 0.0);
    for (int i = 0; i < n2; ++i) {
      const double* row = bv.Row(i);
      double s = 0.0;
      for (int j = 0; j < r; ++j) s += row[j] * su[j];
      t3[i] = c2 * s;
    }
    const double susv = std::inner_product(su.begin(), su.end(), sv.begin(),
                                           0.0);
    DenseMatrix au_scaled = au;
    au_scaled.Scale(c1);
    std::vector<double> ones1(n1, 1.0), ones2(n2, 1.0);
    std::vector<double> c3vec(n2, c3 * susv);
    DenseMatrix new_u = AppendColumns(au_scaled, {t2, ones1, ones1});
    DenseMatrix new_v = AppendColumns(bv, {ones2, t3, c3vec});
    GA_RETURN_IF_ERROR(Compress(options_.max_rank, deadline, &new_u, &new_v));
    // Normalize ||X||_F = sqrt(sum of sigma^2); factors carry sqrt(sigma),
    // so scale both by the fourth root of the squared Frobenius norm.
    double fro2 = 0.0;
    DenseMatrix gram = MultiplyAtB(new_u, new_u);
    DenseMatrix gram_v = MultiplyAtB(new_v, new_v);
    DenseMatrix prod = Multiply(gram, gram_v);
    for (int i = 0; i < prod.rows(); ++i) fro2 += prod(i, i);
    const double fro = std::sqrt(std::max(fro2, 1e-300));
    const double scale = 1.0 / std::sqrt(std::sqrt(fro * fro));
    new_u.Scale(scale);
    new_v.Scale(scale);
    u = std::move(new_u);
    v = std::move(new_v);
  }
  return Factors{std::move(u), std::move(v)};
}

Result<DenseMatrix> LreaAligner::ComputeSimilarityImpl(
    const Graph& g1, const Graph& g2, const Deadline& deadline) {
  GA_ASSIGN_OR_RETURN(Factors f, ComputeFactors(g1, g2, deadline));
  return MultiplyABt(f.u, f.v);
}

Status LreaAligner::ScoreSparseCandidatesImpl(
    const Graph& g1, const Graph& g2, const Deadline& deadline,
    std::vector<SparseCandidate>* candidates) {
  GA_ASSIGN_OR_RETURN(Factors f, ComputeFactors(g1, g2, deadline));
  const int r = f.u.cols();
  for (SparseCandidate& c : *candidates) {
    const double* ui = f.u.Row(c.row);
    const double* vj = f.v.Row(c.col);
    double sim = 0.0;
    for (int k = 0; k < r; ++k) sim += ui[k] * vj[k];
    c.similarity = sim;
  }
  return Status::Ok();
}

Result<Alignment> LreaAligner::AlignNativeImpl(const Graph& g1,
                                               const Graph& g2,
                                               const Deadline& deadline) {
  GA_ASSIGN_OR_RETURN(Factors f, ComputeFactors(g1, g2, deadline));
  const int n1 = f.u.rows();
  const int n2 = f.v.rows();
  const int r = f.u.cols();

  // Union of sorted matchings: for each rank component, sort both factors'
  // entries (positives descending and negatives ascending, which pairs large
  // positive with large positive and large negative with large negative) and
  // propose position-wise pairs.
  std::set<std::pair<int, int>> proposed;
  std::vector<int> order1(n1), order2(n2);
  for (int j = 0; j < r; ++j) {
    std::iota(order1.begin(), order1.end(), 0);
    std::iota(order2.begin(), order2.end(), 0);
    std::sort(order1.begin(), order1.end(), [&](int x, int y) {
      return f.u(x, j) > f.u(y, j);
    });
    std::sort(order2.begin(), order2.end(), [&](int x, int y) {
      return f.v(x, j) > f.v(y, j);
    });
    for (int p = 0; p < std::min(n1, n2); ++p) {
      proposed.insert({order1[p], order2[p]});
    }
  }
  std::vector<SparseCandidate> candidates;
  candidates.reserve(proposed.size());
  for (const auto& [i, j] : proposed) {
    double sim = 0.0;
    for (int c = 0; c < r; ++c) sim += f.u(i, c) * f.v(j, c);
    candidates.push_back({i, j, sim});
  }
  return SparseLapAssign(n1, n2, candidates, deadline);
}

}  // namespace graphalign
