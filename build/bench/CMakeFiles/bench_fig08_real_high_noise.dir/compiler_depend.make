# Empty compiler generated dependencies file for bench_fig08_real_high_noise.
# This may be replaced when dependencies are built.
