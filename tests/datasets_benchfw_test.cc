#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "align/isorank.h"
#include "bench_framework/experiment.h"
#include "bench_framework/journal.h"
#include "common/random.h"
#include "common/table.h"
#include "datasets/datasets.h"
#include "graph/generators.h"

namespace graphalign {
namespace {

TEST(Table2Test, SixteenDatasetsInTableOrder) {
  auto specs = Table2Specs();
  ASSERT_EQ(specs.size(), 16u);
  EXPECT_EQ(specs.front().name, "Arenas");
  EXPECT_EQ(specs.back().name, "Voles");
  for (const auto& s : specs) {
    EXPECT_GT(s.n, 0);
    EXPECT_GT(s.m, 0);
    EXPECT_GE(s.l, 0);
    EXPECT_FALSE(s.type.empty());
  }
}

TEST(StandInTest, UnknownNameAndBadScaleRejected) {
  EXPECT_EQ(MakeStandIn("NoSuchGraph").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(MakeStandIn("Arenas", 1, 0.0).ok());
  EXPECT_FALSE(MakeStandIn("Arenas", 1, 1.5).ok());
}

TEST(StandInTest, FullScaleMatchesTable2Sizes) {
  // Spot-check a few cheap stand-ins: node count exact, edge count within
  // 30% of the original (generators control density only approximately).
  for (const std::string& name :
       {"Arenas", "ca-netscience", "HighSchool", "Voles", "bio-celegans",
        "inf-euroroad"}) {
    DatasetSpec spec;
    for (const auto& s : Table2Specs()) {
      if (s.name == name) spec = s;
    }
    auto g = MakeStandIn(name);
    ASSERT_TRUE(g.ok()) << name;
    EXPECT_EQ(g->num_nodes(), spec.n) << name;
    EXPECT_NEAR(static_cast<double>(g->num_edges()),
                static_cast<double>(spec.m), 0.3 * spec.m)
        << name;
  }
}

TEST(StandInTest, ScaleReducesSizeProportionally) {
  auto quarter = MakeStandIn("Arenas", 1, 0.25);
  ASSERT_TRUE(quarter.ok());
  EXPECT_NEAR(quarter->num_nodes(), 1133 * 0.25, 2);
}

TEST(StandInTest, InfrastructureStandInsAreSparse) {
  auto road = MakeStandIn("inf-euroroad", 5, 0.5);
  ASSERT_TRUE(road.ok());
  EXPECT_LT(road->AverageDegree(), 5.0);
  auto power = MakeStandIn("inf-power", 5, 0.5);
  ASSERT_TRUE(power.ok());
  EXPECT_LT(power->AverageDegree(), 5.0);
  EXPECT_TRUE(power->IsConnected());  // The grid stand-in stays connected.
}

TEST(StandInTest, SocialStandInsAreSkewed) {
  auto fb = MakeStandIn("Facebook", 5, 0.2);
  ASSERT_TRUE(fb.ok());
  EXPECT_GT(fb->MaxDegree(), 3 * fb->AverageDegree());
}

TEST(StandInTest, HamstersterHasManySmallComponents) {
  auto g = MakeStandIn("soc-hamsterster", 5, 1.0);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(g->NodesOutsideLargestComponent(), 0);
}

TEST(StandInTest, DeterministicForSeed) {
  auto a = MakeStandIn("Arenas", 99, 0.2);
  auto b = MakeStandIn("Arenas", 99, 0.2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->num_edges(), b->num_edges());
  auto ea = a->Edges(), eb = b->Edges();
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_TRUE(ea[i] == eb[i]);
  }
}

TEST(EvolvingSnapshotsTest, NestedSubsetsWithRequestedFractions) {
  Rng rng(1);
  auto base = PowerlawCluster(100, 4, 0.4, &rng);
  ASSERT_TRUE(base.ok());
  auto snaps = EvolvingSnapshots(*base, {0.8, 0.85, 0.9, 0.99}, &rng);
  ASSERT_TRUE(snaps.ok());
  ASSERT_EQ(snaps->size(), 4u);
  for (size_t i = 0; i < snaps->size(); ++i) {
    EXPECT_EQ((*snaps)[i].num_nodes(), base->num_nodes());
    const double frac = std::vector<double>{0.8, 0.85, 0.9, 0.99}[i];
    EXPECT_NEAR(static_cast<double>((*snaps)[i].num_edges()),
                frac * base->num_edges(), 1.0);
    // Nested: every edge of snapshot i is in snapshot i+1 and in the base.
    for (const Edge& e : (*snaps)[i].Edges()) {
      EXPECT_TRUE(base->HasEdge(e.u, e.v));
      if (i + 1 < snaps->size()) {
        EXPECT_TRUE((*snaps)[i + 1].HasEdge(e.u, e.v));
      }
    }
  }
}

TEST(EvolvingSnapshotsTest, ValidatesFractions) {
  Rng rng(2);
  auto base = ErdosRenyi(30, 0.2, &rng);
  ASSERT_TRUE(base.ok());
  EXPECT_FALSE(EvolvingSnapshots(*base, {}, &rng).ok());
  EXPECT_FALSE(EvolvingSnapshots(*base, {0.9, 0.8}, &rng).ok());
  EXPECT_FALSE(EvolvingSnapshots(*base, {0.0}, &rng).ok());
  EXPECT_FALSE(EvolvingSnapshots(*base, {1.2}, &rng).ok());
}

TEST(MultiMagnaVariantsTest, VariantsAddIncreasingNoise) {
  Rng rng(3);
  auto base = PowerlawCluster(100, 4, 0.25, &rng);
  ASSERT_TRUE(base.ok());
  auto variants = MultiMagnaVariants(*base, 5, 0.05, &rng);
  ASSERT_TRUE(variants.ok());
  ASSERT_EQ(variants->size(), 5u);
  int64_t prev = base->num_edges();
  for (const Graph& v : *variants) {
    EXPECT_GT(v.num_edges(), prev);
    prev = v.num_edges();
    // All base edges survive (variants only add).
    for (const Edge& e : base->Edges()) EXPECT_TRUE(v.HasEdge(e.u, e.v));
  }
  EXPECT_FALSE(MultiMagnaVariants(*base, 0, 0.05, &rng).ok());
  EXPECT_FALSE(MultiMagnaVariants(*base, 3, 0.0, &rng).ok());
}

// ---------------------------------------------------------------------------
// Bench framework.

TEST(BenchArgsTest, ParsesAllFlags) {
  const char* argv[] = {"bench",  "--full", "--reps", "7",
                        "--algos", "GWL,CONE", "--csv",  "/tmp/x.csv",
                        "--seed", "99",     "--time-limit", "12.5"};
  BenchArgs args = ParseBenchArgs(12, const_cast<char**>(argv));
  EXPECT_TRUE(args.full);
  EXPECT_EQ(args.repetitions, 7);
  ASSERT_EQ(args.algorithms.size(), 2u);
  EXPECT_EQ(args.algorithms[0], "GWL");
  EXPECT_EQ(args.algorithms[1], "CONE");
  EXPECT_EQ(args.csv_path, "/tmp/x.csv");
  EXPECT_EQ(args.seed, 99u);
  EXPECT_DOUBLE_EQ(args.time_limit_seconds, 12.5);
}

TEST(BenchArgsTest, DefaultsSelectAllAlgorithms) {
  BenchArgs args;
  EXPECT_EQ(SelectedAlgorithms(args).size(), 9u);
  args.algorithms = {"GWL"};
  EXPECT_EQ(SelectedAlgorithms(args).size(), 1u);
}

TEST(RunAlignerTest, CompletesAndTimesStages) {
  Rng rng(4);
  auto base = BarabasiAlbert(40, 3, &rng);
  ASSERT_TRUE(base.ok());
  NoiseOptions noise;
  noise.level = 0.02;
  auto prob = MakeAlignmentProblem(*base, noise, &rng);
  ASSERT_TRUE(prob.ok());
  IsoRankAligner iso;
  RunOutcome out = RunAligner(&iso, *prob,
                              AssignmentMethod::kJonkerVolgenant, 60.0);
  ASSERT_TRUE(out.completed) << out.error;
  EXPECT_GE(out.similarity_seconds, 0.0);
  EXPECT_GE(out.assignment_seconds, 0.0);
  EXPECT_GT(out.quality.accuracy, 0.2);
  EXPECT_EQ(out.completed_runs, 1);
}

TEST(RunAlignerTest, TimeLimitYieldsDnf) {
  Rng rng(5);
  auto base = BarabasiAlbert(60, 3, &rng);
  ASSERT_TRUE(base.ok());
  NoiseOptions noise;
  auto prob = MakeAlignmentProblem(*base, noise, &rng);
  ASSERT_TRUE(prob.ok());
  IsoRankAligner iso;
  RunOutcome out =
      RunAligner(&iso, *prob, AssignmentMethod::kJonkerVolgenant, 0.0);
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.error.rfind("DNF", 0), 0u);
  EXPECT_EQ(FormatAccuracy(out), "DNF");
}

TEST(RunAveragedTest, AveragesOverRepetitions) {
  Rng rng(6);
  auto base = BarabasiAlbert(40, 3, &rng);
  ASSERT_TRUE(base.ok());
  NoiseOptions noise;
  noise.level = 0.02;
  IsoRankAligner iso;
  RunOutcome out = RunAveraged(&iso, *base, noise,
                               AssignmentMethod::kJonkerVolgenant,
                               /*reps=*/3, /*seed=*/1, /*limit=*/60.0);
  ASSERT_TRUE(out.completed) << out.error;
  EXPECT_EQ(out.completed_runs, 3);
  EXPECT_GE(out.quality.accuracy, 0.0);
  EXPECT_LE(out.quality.accuracy, 1.0);
  EXPECT_EQ(FormatAccuracy(out), Table::Num(out.quality.accuracy));
}

TEST(RunAveragedTest, DeterministicForSeed) {
  Rng rng(7);
  auto base = BarabasiAlbert(40, 3, &rng);
  ASSERT_TRUE(base.ok());
  NoiseOptions noise;
  noise.level = 0.03;
  IsoRankAligner iso;
  RunOutcome a = RunAveraged(&iso, *base, noise,
                             AssignmentMethod::kJonkerVolgenant, 2, 5, 60.0);
  RunOutcome b = RunAveraged(&iso, *base, noise,
                             AssignmentMethod::kJonkerVolgenant, 2, 5, 60.0);
  ASSERT_TRUE(a.completed && b.completed);
  EXPECT_DOUBLE_EQ(a.quality.accuracy, b.quality.accuracy);
}

// ---------------------------------------------------------------------------
// Isolation flags, journal, and crash/OOM containment.

TEST(BenchArgsTest, ParsesIsolationFlags) {
  const char* argv[] = {"bench", "--isolate", "--mem-limit", "512",
                        "--journal", "/tmp/j.tsv", "--resume"};
  BenchArgs args = ParseBenchArgs(7, const_cast<char**>(argv));
  EXPECT_TRUE(args.isolate);
  EXPECT_DOUBLE_EQ(args.mem_limit_mb, 512.0);
  EXPECT_EQ(args.journal_path, "/tmp/j.tsv");
  EXPECT_TRUE(args.resume);
}

TEST(BenchArgsTest, MemLimitAloneImpliesIsolation) {
  const char* argv[] = {"bench", "--mem-limit", "256"};
  BenchArgs args = ParseBenchArgs(3, const_cast<char**>(argv));
  EXPECT_TRUE(args.isolate);
}

TEST(BenchArgsTest, FullImpliesIsolationUnlessOptedOut) {
  const char* full_argv[] = {"bench", "--full"};
  EXPECT_TRUE(ParseBenchArgs(2, const_cast<char**>(full_argv)).isolate);
  const char* opt_out_argv[] = {"bench", "--full", "--no-isolate"};
  EXPECT_FALSE(ParseBenchArgs(3, const_cast<char**>(opt_out_argv)).isolate);
  const char* smoke_argv[] = {"bench"};
  EXPECT_FALSE(ParseBenchArgs(1, const_cast<char**>(smoke_argv)).isolate);
}

TEST(JournalTest, RecordsAndResumes) {
  const std::string path = testing::TempDir() + "/journal_resume.tsv";
  std::remove(path.c_str());
  {
    auto j = Journal::Open(path, /*resume=*/true);  // Missing file is fine.
    ASSERT_TRUE(j.ok()) << j.status().ToString();
    EXPECT_EQ(j->loaded(), 0u);
    ASSERT_TRUE(j->Record("NSD|0.05", {"NSD", "0.05", "0.91"}).ok());
    ASSERT_TRUE(j->Record("GWL|0.05", {"GWL", "0.05", "DNF"}).ok());
  }
  auto j = Journal::Open(path, /*resume=*/true);
  ASSERT_TRUE(j.ok()) << j.status().ToString();
  EXPECT_EQ(j->loaded(), 2u);
  const std::vector<std::string>* row = j->Row("NSD|0.05");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[2], "0.91");
  EXPECT_EQ(j->Row("missing"), nullptr);
  std::remove(path.c_str());
}

TEST(JournalTest, WithoutResumeTruncatesAndRejectsBadCells) {
  const std::string path = testing::TempDir() + "/journal_trunc.tsv";
  {
    auto j = Journal::Open(path, /*resume=*/true);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE(j->Record("k", {"a", "b"}).ok());
  }
  auto j = Journal::Open(path, /*resume=*/false);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->loaded(), 0u);
  EXPECT_EQ(j->Row("k"), nullptr);
  EXPECT_FALSE(j->Record("bad\tkey", {"a"}).ok());
  EXPECT_FALSE(j->Record("k", {"multi\nline"}).ok());
  std::remove(path.c_str());
}

TEST(JournalTest, DropsTrailingPartialLine) {
  const std::string path = testing::TempDir() + "/journal_partial.tsv";
  {
    std::ofstream f(path);
    f << "done\tA\t1\n"
      << "torn\tB\t0.5";  // No newline: the writer died mid-record.
  }
  auto j = Journal::Open(path, /*resume=*/true);
  ASSERT_TRUE(j.ok()) << j.status().ToString();
  EXPECT_EQ(j->loaded(), 1u);
  EXPECT_NE(j->Row("done"), nullptr);
  EXPECT_EQ(j->Row("torn"), nullptr);
  std::remove(path.c_str());
}

TEST(FaultAlignerTest, OnlyFaultNamesResolve) {
  EXPECT_NE(MakeFaultAligner("_CRASH"), nullptr);
  EXPECT_NE(MakeFaultAligner("_OOM"), nullptr);
  EXPECT_NE(MakeFaultAligner("_HANG"), nullptr);
  EXPECT_EQ(MakeFaultAligner("GWL"), nullptr);
  EXPECT_EQ(MakeFaultAligner(""), nullptr);
}

BenchArgs IsolatedArgs() {
  BenchArgs args;
  args.isolate = true;
  args.time_limit_seconds = 120.0;
  return args;
}

AlignmentProblem SmallProblem() {
  Rng rng(11);
  auto base = BarabasiAlbert(30, 3, &rng);
  GA_CHECK(base.ok());
  NoiseOptions noise;
  noise.level = 0.02;
  auto prob = MakeAlignmentProblem(*base, noise, &rng);
  GA_CHECK(prob.ok());
  return *std::move(prob);
}

TEST(ContainmentTest, CrashingAlignerYieldsCrashOutcome) {
  auto crash = MakeFaultAligner("_CRASH");
  ASSERT_NE(crash, nullptr);
  AlignmentProblem prob = SmallProblem();
  RunOutcome out = RunAligner(crash.get(), prob,
                              AssignmentMethod::kJonkerVolgenant,
                              IsolatedArgs());
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.error.rfind("CRASH", 0), 0u) << out.error;
  EXPECT_EQ(FormatAccuracy(out), "CRASH");
}

TEST(ContainmentTest, OomAlignerYieldsOomOutcome) {
  auto oom = MakeFaultAligner("_OOM");
  ASSERT_NE(oom, nullptr);
  AlignmentProblem prob = SmallProblem();
  BenchArgs args = IsolatedArgs();
  args.mem_limit_mb = 256.0;
  RunOutcome out = RunAligner(oom.get(), prob,
                              AssignmentMethod::kJonkerVolgenant, args);
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.error.rfind("OOM", 0), 0u) << out.error;
  EXPECT_EQ(FormatOutcome(out, 0.0), "OOM");
}

TEST(ContainmentTest, HealthyRunRoundtripsThroughTheChild) {
  Rng rng(7);
  auto base = BarabasiAlbert(40, 3, &rng);
  ASSERT_TRUE(base.ok());
  NoiseOptions noise;
  noise.level = 0.03;
  IsoRankAligner iso;
  // The isolated result must match the inline result bit-for-bit: the child
  // runs the same deterministic code and only the transport differs.
  RunOutcome inline_out = RunAveraged(&iso, *base, noise,
                                      AssignmentMethod::kJonkerVolgenant, 2, 5,
                                      60.0);
  RunOutcome isolated = RunAveraged(&iso, *base, noise,
                                    AssignmentMethod::kJonkerVolgenant, 2, 5,
                                    IsolatedArgs());
  ASSERT_TRUE(inline_out.completed);
  ASSERT_TRUE(isolated.completed) << isolated.error;
  EXPECT_DOUBLE_EQ(isolated.quality.accuracy, inline_out.quality.accuracy);
  EXPECT_EQ(isolated.completed_runs, inline_out.completed_runs);
  EXPECT_GT(isolated.peak_mem_mb, 0.0);
}

TEST(ContainmentTest, MeasurePeakMemoryReportsChildPeak) {
  BenchArgs args;  // Isolation off: MeasurePeakMemory forks regardless.
  RunOutcome out = MeasurePeakMemory(args, [] {
    std::vector<char> block(32u << 20, 1);
    EXPECT_GT(block[1 << 20], 0);
  });
  ASSERT_TRUE(out.completed) << out.error;
  EXPECT_GE(out.peak_mem_mb, 32.0);
}

}  // namespace
}  // namespace graphalign
