#include <cstdio>
#include "align/aligner.h"
#include "common/random.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "metrics/metrics.h"
#include "noise/noise.h"
using namespace graphalign;
int main(int argc, char** argv) {
  Rng rng(123);
  auto base = PowerlawCluster(80, 3, 0.3, &rng);
  if (!base.ok()) { printf("gen fail\n"); return 1; }
  for (double level : {0.0, 0.05}) {
    NoiseOptions nopt; nopt.level = level;
    Rng nrng(7);
    auto prob = MakeAlignmentProblem(*base, nopt, &nrng);
    if (!prob.ok()) { printf("prob fail\n"); return 1; }
    printf("== noise %.2f ==\n", level);
    for (const auto& name : AllAlignerNames()) {
      if (argc > 1 && name != argv[1]) continue;
      printf("%-8s ", name.c_str()); fflush(stdout);
      auto aligner = MakeAligner(name);
      WallTimer t;
      auto align = (*aligner)->Align(prob->g1, prob->g2, AssignmentMethod::kJonkerVolgenant);
      if (!align.ok()) { printf("ERROR %s\n", align.status().ToString().c_str()); continue; }
      double acc = Accuracy(*align, prob->ground_truth);
      auto nat = (*aligner)->AlignNative(prob->g1, prob->g2);
      double nacc = nat.ok() ? Accuracy(*nat, prob->ground_truth) : -1;
      printf("acc(JV)=%.3f acc(native)=%.3f  %.2fs\n", acc, nacc, t.Seconds());
      fflush(stdout);
    }
  }
  return 0;
}
