
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/csr.cc" "src/linalg/CMakeFiles/ga_linalg.dir/csr.cc.o" "gcc" "src/linalg/CMakeFiles/ga_linalg.dir/csr.cc.o.d"
  "/root/repo/src/linalg/dense.cc" "src/linalg/CMakeFiles/ga_linalg.dir/dense.cc.o" "gcc" "src/linalg/CMakeFiles/ga_linalg.dir/dense.cc.o.d"
  "/root/repo/src/linalg/eigen_sym.cc" "src/linalg/CMakeFiles/ga_linalg.dir/eigen_sym.cc.o" "gcc" "src/linalg/CMakeFiles/ga_linalg.dir/eigen_sym.cc.o.d"
  "/root/repo/src/linalg/kdtree.cc" "src/linalg/CMakeFiles/ga_linalg.dir/kdtree.cc.o" "gcc" "src/linalg/CMakeFiles/ga_linalg.dir/kdtree.cc.o.d"
  "/root/repo/src/linalg/sinkhorn.cc" "src/linalg/CMakeFiles/ga_linalg.dir/sinkhorn.cc.o" "gcc" "src/linalg/CMakeFiles/ga_linalg.dir/sinkhorn.cc.o.d"
  "/root/repo/src/linalg/svd.cc" "src/linalg/CMakeFiles/ga_linalg.dir/svd.cc.o" "gcc" "src/linalg/CMakeFiles/ga_linalg.dir/svd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ga_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
