// Content-addressed LRU result cache for the alignment service.
//
// The hot path of a shared alignment service is repeated requests for the
// same graph pair (the same datasets get re-aligned by many clients), so
// completed align results are cached under a key derived purely from the
// request *content*: the two graphs' canonical content hashes
// (Graph::ContentHash), the algorithm, and the assignment method. Identical
// content always maps to the same key regardless of how or when it was
// submitted; a one-edge change produces a different graph hash and therefore
// a different key. Keys are 64-bit (FNV-1a over the components), so a
// collision is possible in principle; at service-realistic cache sizes
// (thousands of entries) the probability is ~2^-40 per pair and an
// alignment result is advisory, not safety-critical.
//
// Eviction is size-based LRU: the cache holds at most `capacity_bytes` of
// encoded result payloads and evicts least-recently-used entries past that.
// All operations are thread-safe; workers hit it concurrently.
#ifndef GRAPHALIGN_SERVER_CACHE_H_
#define GRAPHALIGN_SERVER_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace graphalign {

class ResultCache {
 public:
  explicit ResultCache(int64_t capacity_bytes);

  // The content-addressed key of an align request.
  static uint64_t Key(uint64_t g1_hash, uint64_t g2_hash,
                      const std::string& algo, const std::string& assign);

  // Copies the cached value into *value and refreshes its recency. Counts a
  // hit or a miss either way.
  bool Get(uint64_t key, std::string* value);

  // Inserts (or replaces) an entry, then evicts LRU entries until the cache
  // fits its capacity. A value larger than the whole capacity is dropped
  // (never cached) rather than evicting everything for a useless resident.
  void Put(uint64_t key, std::string value);

  struct Stats {
    uint64_t hits = 0, misses = 0, evictions = 0;
    uint64_t entries = 0, bytes = 0, capacity_bytes = 0;
  };
  Stats GetStats() const;

  // Every resident entry, least-recently-used first, so replaying the
  // snapshot in order (e.g. from a compacted log) restores both the content
  // and the recency order. Used by startup log compaction.
  std::vector<std::pair<uint64_t, std::string>> Snapshot() const;

 private:
  struct Entry {
    uint64_t key;
    std::string value;
  };

  void EvictToFitLocked();

  const int64_t capacity_bytes_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  int64_t bytes_ = 0;
  uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_SERVER_CACHE_H_
