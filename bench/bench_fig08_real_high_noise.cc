// Figure 8: accuracy on the network-repository graphs with one-way noise up
// to 25%, 5 runs averaged (§6.4.2).
//
// Expected shape: CONE least noise-affected; REGAL struggles beyond 5%;
// GRASP collapses on datasets that are (or become) disconnected
// (inf-euroroad, soc-hamsterster); IsoRank consistently third-best and best
// on infrastructure graphs; S-GWL close to the best with density-tuned beta.
#include <string>
#include <vector>

#include "bench_util.h"
#include "datasets/datasets.h"

namespace graphalign {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  bench::Banner("Figure 8", "accuracy on real graphs, one-way noise 0-25%",
                args);
  const int reps = args.repetitions > 0 ? args.repetitions : (args.full ? 5 : 1);
  const double scale = args.full ? 1.0 : 0.12;

  const char* datasets[] = {"inf-euroroad",    "inf-power",
                            "fb-Haverford76",  "fb-Hamilton46",
                            "fb-Bowdoin47",    "fb-Swarthmore42",
                            "soc-hamsterster", "bio-celegans",
                            "ca-GrQc",         "ca-netscience"};
  Journal journal = bench::MustOpenJournal(args);
  Table t({"dataset", "algorithm", "noise", "accuracy"});
  for (const char* dataset : datasets) {
    auto base = MakeStandIn(dataset, args.seed, scale);
    GA_CHECK(base.ok());
    std::printf("%s stand-in: n=%d m=%lld components_l=%d\n", dataset,
                base->num_nodes(), static_cast<long long>(base->num_edges()),
                base->NodesOutsideLargestComponent());
    const bool sparse = base->AverageDegree() < 20.0;  // §6.4.2 beta choice.
    for (const std::string& name : SelectedAlgorithms(args)) {
      auto aligner = bench::MakeBenchAligner(name, sparse);
      for (double level : bench::HighNoiseLevels(args.full)) {
        NoiseOptions noise;
        noise.level = level;
        bench::JournaledRow(
            &t, &journal,
            bench::CellKey({dataset, name, Table::Num(level, 2)}), [&] {
              RunOutcome out = RunAveraged(
                  aligner.get(), *base, noise,
                  AssignmentMethod::kJonkerVolgenant, reps,
                  args.seed + static_cast<uint64_t>(level * 1000), args);
              return std::vector<std::string>{dataset, name,
                                              Table::Num(level, 2),
                                              FormatAccuracy(out)};
            });
      }
    }
  }
  bench::Emit(t, args);
  return 0;
}

}  // namespace
}  // namespace graphalign

int main(int argc, char** argv) { return graphalign::Main(argc, argv); }
