file(REMOVE_RECURSE
  "CMakeFiles/bench_excluded_netalign.dir/bench_excluded_netalign.cc.o"
  "CMakeFiles/bench_excluded_netalign.dir/bench_excluded_netalign.cc.o.d"
  "bench_excluded_netalign"
  "bench_excluded_netalign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_excluded_netalign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
