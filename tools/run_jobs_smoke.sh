#!/usr/bin/env bash
# End-to-end exercise of the durable async job subsystem (DESIGN.md §17),
# including a real kill -9 mid-execution:
#   1. serve --jobs-dir --http-port with the jobs.exec.delay failpoint
#      armed, so a claimed job sits in RUNNING long enough to murder the
#      daemon; the async submit goes over raw HTTP (bash /dev/tcp) and
#      must answer 202 with a 16-hex job id,
#   2. kill -9 the daemon while the job is RUNNING, restart it on the same
#      --jobs-dir: recovery must re-enqueue the interrupted job
#      (jobs recovered=1) and run it to DONE,
#   3. resubmitting with the same idempotency key must return the original
#      job id marked (existing), exit 13, and must not execute anything
#      (the executions counter does not move),
#   4. `jobs result --out` must write a mapping byte-identical to a
#      synchronous `submit --out` of the same pair — a crash between
#      submission and completion is invisible in the answer.
#
# Usage: tools/run_jobs_smoke.sh [graphalign-binary]
set -euo pipefail

TOOL="${1:-build/src/cli/graphalign}"
if [[ ! -x "$TOOL" ]]; then
  echo "graphalign binary not found: $TOOL (build it first)" >&2
  exit 1
fi
TOOL="$(cd "$(dirname "$TOOL")" && pwd)/$(basename "$TOOL")"

WORK="$(mktemp -d)"
STORE="$WORK/store"
JOBS="$WORK/jobs"
SOCK="$WORK/ga.sock"
DAEMON_PID=""
cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2> /dev/null; then
    kill -9 "$DAEMON_PID" 2> /dev/null || true
    wait "$DAEMON_PID" 2> /dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

# http METHOD TARGET [BODY-FILE] -> whole raw response on stdout.
http() {
  local method="$1" target="$2" body="${3:-}"
  exec 3<> "/dev/tcp/127.0.0.1/$HTTP_PORT"
  if [[ -n "$body" ]]; then
    local len
    len="$(wc -c < "$body")"
    {
      printf '%s %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n' \
        "$method" "$target"
      printf 'Content-Type: application/json\r\nContent-Length: %s\r\n\r\n' \
        "$len"
      cat "$body"
    } >&3
  else
    printf '%s %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n' \
      "$method" "$target" >&3
  fi
  cat <&3
  exec 3<&- 3>&-
}

expect_status() {  # expect_status FILE CODE WHAT
  head -1 "$1" | grep -q "HTTP/1.1 $2 " || {
    echo "$3: expected HTTP $2, got: $(head -1 "$1")" >&2
    cat "$1" >&2
    exit 1
  }
}

# start_daemon LOG-FILE [EXTRA-ENV...]: serve on $SOCK with the shared
# store and jobs dirs, wait for the ping, parse the gateway port.
start_daemon() {
  local log="$1"
  shift
  env "$@" "$TOOL" serve --socket "$SOCK" --workers 2 --job-workers 1 \
    --store-dir "$STORE" --jobs-dir "$JOBS" --http-port 0 \
    > "$log" 2>&1 &
  DAEMON_PID=$!
  local up=0
  for _ in 1 2 3; do
    if "$TOOL" submit --socket "$SOCK" --ping --retries 4 > /dev/null 2>&1
    then
      up=1
      break
    fi
    kill -0 "$DAEMON_PID" 2> /dev/null || break
  done
  if [[ "$up" != 1 ]]; then
    echo "daemon never came up (or died during startup):" >&2
    cat "$log" >&2
    exit 1
  fi
  HTTP_PORT=""
  for _ in $(seq 1 50); do
    HTTP_PORT="$(sed -n \
      's/.*gateway serving on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log" \
      | head -1)"
    [[ -n "$HTTP_PORT" ]] && break
    sleep 0.1
  done
  if [[ -z "$HTTP_PORT" ]]; then
    echo "gateway port not announced in the daemon log:" >&2
    cat "$log" >&2
    exit 1
  fi
}

echo "== 0/4 materialize a graph pair and upload it =="
"$TOOL" generate --model er --n 60 --p 0.08 --seed 31 --out "$WORK/s1.txt"
"$TOOL" perturb --in "$WORK/s1.txt" --noise one-way --level 0.05 --seed 32 \
  --out "$WORK/s2.txt"
# The job runner stalls 5s before executing each claimed job: a window to
# kill -9 the daemon with the job pinned in RUNNING.
start_daemon "$WORK/daemon1.log" \
  GRAPHALIGN_FAILPOINTS="jobs.exec.delay=delay-ms:5000"
"$TOOL" submit --socket "$SOCK" --put-graph "$WORK/s1.txt" > "$WORK/put1.out"
"$TOOL" submit --socket "$SOCK" --put-graph "$WORK/s2.txt" > "$WORK/put2.out"
H1="$(sed -n 's/.*hash=\([0-9a-f]*\).*/\1/p' "$WORK/put1.out" | head -1)"
H2="$(sed -n 's/.*hash=\([0-9a-f]*\).*/\1/p' "$WORK/put2.out" | head -1)"
echo "daemon 1 up on port $HTTP_PORT; graphs $H1 / $H2"

echo "== 1/4 async submit over raw HTTP: 202 + job id =="
printf '{"idem_key":"smoke-key","algo":"GRASP","g1_hash":"%s","g2_hash":"%s"}' \
  "$H1" "$H2" > "$WORK/job.json"
http POST /v1/jobs "$WORK/job.json" > "$WORK/submit.out"
expect_status "$WORK/submit.out" 202 submit-job
JOB_ID="$(python3 -c '
import json, sys
raw = open(sys.argv[1], "rb").read()
body = json.loads(raw.split(b"\r\n\r\n", 1)[1])
assert body["status"] == "ACCEPTED", body
assert body["existing"] is False, body
print(body["job_id"])' "$WORK/submit.out")"
[[ "${#JOB_ID}" == 16 ]] || {
  echo "job id is not 16 hex digits: '$JOB_ID'" >&2
  exit 1
}
echo "job $JOB_ID accepted"

echo "== 2/4 kill -9 mid-job, restart, recover to DONE =="
# Wait until the runner has claimed the job (journalled RUNNING), so the
# kill lands mid-execution, not mid-queue.
claimed=0
for _ in $(seq 1 50); do
  "$TOOL" jobs status --socket "$SOCK" --id "$JOB_ID" > "$WORK/st.out" || true
  if grep -q "state=RUNNING" "$WORK/st.out"; then
    claimed=1
    break
  fi
  sleep 0.1
done
[[ "$claimed" == 1 ]] || {
  echo "job never reached RUNNING before the kill:" >&2
  cat "$WORK/st.out" >&2
  exit 1
}
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2> /dev/null || true
DAEMON_PID=""
rm -f "$SOCK"
echo "daemon killed -9 with job $JOB_ID in RUNNING"

start_daemon "$WORK/daemon2.log"   # No failpoint: the retry runs for real.
"$TOOL" submit --socket "$SOCK" --stats > "$WORK/stats1.out"
grep -q "recovered=1" "$WORK/stats1.out" || {
  echo "restart did not report the recovered job:" >&2
  cat "$WORK/stats1.out" >&2
  exit 1
}
done_state=0
for _ in $(seq 1 100); do
  "$TOOL" jobs status --socket "$SOCK" --id "$JOB_ID" > "$WORK/st.out" || true
  if grep -q "state=DONE" "$WORK/st.out"; then
    done_state=1
    break
  fi
  if grep -q "state=FAILED" "$WORK/st.out"; then
    echo "recovered job FAILED instead of completing:" >&2
    cat "$WORK/st.out" >&2
    exit 1
  fi
  sleep 0.2
done
[[ "$done_state" == 1 ]] || {
  echo "job never reached DONE after recovery:" >&2
  cat "$WORK/st.out" "$WORK/daemon2.log" >&2
  exit 1
}
echo "job $JOB_ID recovered and completed after the crash"

echo "== 3/4 idempotent resubmit: same id, nothing executes twice =="
exec_before="$(sed -n 's/.*executions=\([0-9]*\).*/\1/p' < <( \
  "$TOOL" submit --socket "$SOCK" --stats) | head -1)"
rc=0
"$TOOL" jobs submit --socket "$SOCK" --g1-hash "$H1" --g2-hash "$H2" \
  --algo GRASP --idem-key smoke-key > "$WORK/resubmit.out" || rc=$?
[[ "$rc" == 13 ]] || {
  echo "resubmit: expected exit 13 (accepted), got $rc:" >&2
  cat "$WORK/resubmit.out" >&2
  exit 1
}
grep -q "job=$JOB_ID" "$WORK/resubmit.out" || {
  echo "resubmit answered a different job id (wanted $JOB_ID):" >&2
  cat "$WORK/resubmit.out" >&2
  exit 1
}
grep -q "(existing)" "$WORK/resubmit.out" || {
  echo "resubmit is not marked (existing):" >&2
  cat "$WORK/resubmit.out" >&2
  exit 1
}
exec_after="$(sed -n 's/.*executions=\([0-9]*\).*/\1/p' < <( \
  "$TOOL" submit --socket "$SOCK" --stats) | head -1)"
[[ "$exec_before" == "$exec_after" ]] || {
  echo "resubmit re-executed the job: executions $exec_before ->" \
    "$exec_after" >&2
  exit 1
}
echo "resubmit deduped onto $JOB_ID (executions still $exec_after)"

echo "== 4/4 jobs result --out == synchronous submit --out, byte for byte =="
"$TOOL" jobs result --socket "$SOCK" --id "$JOB_ID" \
  --out "$WORK/async.map" > "$WORK/result.out"
grep -q "job result: matched=" "$WORK/result.out" || {
  echo "jobs result did not print a result line:" >&2
  cat "$WORK/result.out" >&2
  exit 1
}
"$TOOL" submit --socket "$SOCK" --g1-hash "$H1" --g2-hash "$H2" \
  --algo GRASP --no-cache --out "$WORK/sync.map" > /dev/null
cmp -s "$WORK/async.map" "$WORK/sync.map" || {
  echo "async job mapping differs from the synchronous mapping" >&2
  diff "$WORK/async.map" "$WORK/sync.map" >&2 || true
  exit 1
}
echo "async mapping is byte-identical to the synchronous submit"

"$TOOL" submit --socket "$SOCK" --shutdown > /dev/null
wait "$DAEMON_PID" 2> /dev/null || true
DAEMON_PID=""
echo "jobs smoke test passed"
