# Empty compiler generated dependencies file for bench_excluded_netalign.
# This may be replaced when dependencies are built.
