file(REMOVE_RECURSE
  "CMakeFiles/temporal_roadnet.dir/temporal_roadnet.cc.o"
  "CMakeFiles/temporal_roadnet.dir/temporal_roadnet.cc.o.d"
  "temporal_roadnet"
  "temporal_roadnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_roadnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
