// Closed-loop load generator for the alignment service daemon.
//
// Spawns --clients threads, each issuing --requests requests back-to-back
// against a running daemon (fresh connection per request, like real
// short-lived clients). Each request is drawn from a weighted --mix of
// traffic kinds:
//
//   hit      one fixed graph pair, NSD: after the first fork, pure cache
//            hits — the fast path under load.
//   miss     a unique ER pair per request: always a cold isolated fork.
//   degraded a fixed pair on GRASP: degrades only when the daemon has
//            numerical failpoints armed, otherwise an ordinary fork.
//   poison   _CRASH on a small pool of pairs: repeated signatures, so a
//            daemon with quarantine enabled trips it mid-run and the tail
//            of the mix is answered with typed QUARANTINED, not forks.
//   batch    one kAlignBatch frame: 4 NSD jobs over the shared hit pair,
//            exercising amortized graph resolution (and, after the first
//            batch, the result cache).
//   async    kSubmitJob against the durable job queue (daemon must run
//            with --jobs-dir): a deterministic coin picks between the
//            shared hit pair (idempotent resubmission — answered with the
//            existing job) and a unique pair (fresh enqueue + background
//            execution). ACCEPTED is the expected typed answer.
//
// With --http-port N the generator also drives the HTTP/JSON gateway:
// when a GAF1 endpoint (--socket/--port) is given too, each request flips
// a deterministic coin between GAF1 and HTTP (mixed-transport traffic,
// reported as separate `kind@http` rows); with only --http-port, all
// traffic is HTTP. The HTTP client is a minimal blocking loopback client
// (one connection per request, Connection: close), mirroring how curl-ish
// clients hit the gateway.
//
// Reports per-kind counts, a typed-response histogram (SHED, QUARANTINED,
// BUSY, ... plus TRANSPORT for connect/IO failures), latency percentiles
// (p50/p90/p99/p999), and closed-loop throughput. --json writes the same
// table with run metadata for checked-in baselines (BENCH_loadgen.json,
// BENCH_gateway.json for --http-port runs).
//
// Exit code: 0 when every response was *typed* (any code — overload
// answers are correct behavior under chaos), 1 when transport errors or
// bad arguments show the daemon actually failed its clients.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/table.h"
#include "common/timer.h"
#include "gateway/json.h"
#include "graph/generators.h"
#include "server/client.h"
#include "server/protocol.h"

namespace graphalign {
namespace {

struct MixEntry {
  std::string kind;
  int weight = 0;
};

struct LoadgenOptions {
  std::string socket_path;
  int port = -1;
  int http_port = -1;  // >= 0: also (or only) drive the HTTP gateway.
  int clients = 4;
  int requests = 50;  // Per client.
  std::vector<MixEntry> mix = {{"hit", 6}, {"miss", 3}, {"poison", 1}};
  uint64_t seed = 42;
  uint64_t deadline_ms = 5000;
  int nodes = 48;
  std::string json_path;
  std::string client_prefix = "loadgen";
  double timeout_seconds = 60.0;
};

// Per-kind accumulator, merged across worker threads at the end.
struct KindStats {
  uint64_t sent = 0;
  uint64_t transport_errors = 0;
  uint64_t cache_hits = 0;
  std::map<std::string, uint64_t> by_code;  // Typed responses by name.
  std::vector<double> latencies_ms;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH | --port N | --http-port N\n"
      "  [--clients C] [--requests N]\n"
      "  [--mix hit:W,miss:W,degraded:W,poison:W,batch:W,async:W] [--seed S]\n"
      "  [--deadline-ms D] [--nodes N] [--timeout T] [--json PATH]\n",
      argv0);
  return 1;
}

bool ParseMix(const std::string& spec, std::vector<MixEntry>* out) {
  std::vector<MixEntry> mix;
  size_t pos = 0;
  while (pos < spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string part =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const size_t colon = part.find(':');
    if (colon == std::string::npos) return false;
    MixEntry e;
    e.kind = part.substr(0, colon);
    if (e.kind != "hit" && e.kind != "miss" && e.kind != "degraded" &&
        e.kind != "poison" && e.kind != "batch" && e.kind != "async") {
      return false;
    }
    try {
      e.weight = std::stoi(part.substr(colon + 1));
    } catch (...) {
      return false;
    }
    if (e.weight < 0) return false;
    if (e.weight > 0) mix.push_back(e);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (mix.empty()) return false;
  *out = std::move(mix);
  return true;
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(idx, sorted->size() - 1)];
}

Result<WireGraph> MakeWirePair(int nodes, uint64_t seed, WireGraph* second) {
  Rng rng(seed);
  GA_ASSIGN_OR_RETURN(Graph g1, ErdosRenyi(nodes, 0.12, &rng));
  GA_ASSIGN_OR_RETURN(Graph g2, ErdosRenyi(nodes, 0.12, &rng));
  *second = ToWire(g2);
  return ToWire(g1);
}

// The gateway's inline-graph schema: {"n": N, "edges": [[u, v], ...]}.
JsonValue WireGraphJson(const WireGraph& g) {
  JsonValue out = JsonValue::Object();
  out.Set("n", JsonValue::Number(static_cast<double>(g.num_nodes)));
  JsonValue edges = JsonValue::Array();
  for (const Edge& e : g.edges) {
    JsonValue pair = JsonValue::Array();
    pair.Push(JsonValue::Number(static_cast<double>(e.u)));
    pair.Push(JsonValue::Number(static_cast<double>(e.v)));
    edges.Push(std::move(pair));
  }
  out.Set("edges", std::move(edges));
  return out;
}

// Minimal blocking HTTP/1.1 call against the loopback gateway: one
// connection per request, Connection: close, read to EOF. On transport
// failure returns false; otherwise *status_name holds the JSON body's
// "status" (the daemon's typed response code, or the gateway's own error
// status), falling back to the numeric HTTP status for opaque bodies, and
// *cache_hit the body's "cache_hit" when present.
bool HttpCall(int port, const std::string& method, const std::string& target,
              const std::string& body, double timeout_seconds,
              std::string* status_name, bool* cache_hit) {
  *status_name = "TRANSPORT";
  *cache_hit = false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout_seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  std::string request = method + " " + target + " HTTP/1.1\r\n" +
                        "Host: 127.0.0.1\r\nConnection: close\r\n";
  if (!body.empty()) {
    request += "Content-Type: application/json\r\nContent-Length: " +
               std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n";
  request += body;
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    reply.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (reply.size() < 12 || reply.compare(0, 5, "HTTP/") != 0) return false;
  *status_name = "HTTP_" + reply.substr(9, 3);
  const size_t split = reply.find("\r\n\r\n");
  if (split != std::string::npos) {
    auto parsed = ParseJson(
        std::string_view(reply).substr(split + 4));
    if (parsed.ok()) {
      if (parsed->Get("status").is_string()) {
        *status_name = parsed->Get("status").AsString();
      }
      if (parsed->Get("cache_hit").is_bool()) {
        *cache_hit = parsed->Get("cache_hit").AsBool();
      }
    }
  }
  return true;
}

class Loadgen {
 public:
  explicit Loadgen(const LoadgenOptions& options) : options_(options) {}

  int Run() {
    // Fixed pairs are generated once and shared read-only by all threads.
    WireGraph hit_g2, degraded_g2;
    auto hit_g1 = MakeWirePair(options_.nodes, options_.seed * 7919 + 1,
                               &hit_g2);
    auto degraded_g1 =
        MakeWirePair(options_.nodes, options_.seed * 7919 + 2, &degraded_g2);
    if (!hit_g1.ok() || !degraded_g1.ok()) {
      std::fprintf(stderr, "loadgen: graph generation failed\n");
      return 1;
    }
    hit_.g1 = *std::move(hit_g1);
    hit_.g2 = std::move(hit_g2);
    degraded_.g1 = *std::move(degraded_g1);
    degraded_.g2 = std::move(degraded_g2);
    for (int i = 0; i < kPoisonPool; ++i) {
      WireGraph g2;
      auto g1 = MakeWirePair(options_.nodes, options_.seed * 7919 + 100 + i,
                             &g2);
      if (!g1.ok()) {
        std::fprintf(stderr, "loadgen: graph generation failed\n");
        return 1;
      }
      poison_[i].g1 = *std::move(g1);
      poison_[i].g2 = std::move(g2);
    }
    for (const MixEntry& e : options_.mix) total_weight_ += e.weight;

    WallTimer wall;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(options_.clients));
    for (int c = 0; c < options_.clients; ++c) {
      threads.emplace_back([this, c] { ClientLoop(c); });
    }
    for (std::thread& t : threads) t.join();
    const double wall_seconds = wall.Seconds();
    return Report(wall_seconds);
  }

 private:
  struct Pair {
    WireGraph g1, g2;
  };
  static constexpr int kPoisonPool = 2;

  const std::string& PickKind(Rng* rng) {
    int roll = static_cast<int>(rng->UniformInt(
        static_cast<uint64_t>(total_weight_)));
    for (const MixEntry& e : options_.mix) {
      roll -= e.weight;
      if (roll < 0) return e.kind;
    }
    return options_.mix.back().kind;
  }

  static constexpr int kBatchJobs = 4;

  Request BuildRequest(const std::string& kind, int client_index, Rng* rng) {
    Request req;
    req.type = RequestType::kAlign;
    req.client =
        options_.client_prefix + "-" + std::to_string(client_index);
    if (kind == "batch") {
      // K identical NSD jobs over the shared hit pair: one frame, one
      // admission decision, two graph constructions — and after the first
      // batch lands, pure cache hits.
      req.type = RequestType::kAlignBatch;
      AlignBatchRequest& b = req.align_batch;
      b.graphs.resize(2);
      b.graphs[0].inline_graph = hit_.g1;
      b.graphs[1].inline_graph = hit_.g2;
      for (int j = 0; j < kBatchJobs; ++j) {
        BatchJob job;
        job.g1 = 0;
        job.g2 = 1;
        job.algo = "NSD";
        job.assign = "JV";
        job.deadline_ms = options_.deadline_ms;
        b.jobs.push_back(std::move(job));
      }
      return req;
    }
    if (kind == "async") {
      // Half the stream resubmits the shared hit pair (content-id dedupe:
      // the daemon answers with the existing job, no re-execution), half
      // enqueues a unique pair the job runners grind through in the
      // background.
      req.type = RequestType::kSubmitJob;
      AlignRequest& job = req.submit_job.align;
      job.algo = "NSD";
      job.assign = "JV";
      job.deadline_ms = options_.deadline_ms;
      if (rng->UniformInt(2) == 0) {
        job.g1 = hit_.g1;
        job.g2 = hit_.g2;
      } else {
        WireGraph g2;
        auto g1 = MakeWirePair(options_.nodes, rng->Next(), &g2);
        if (g1.ok()) {
          job.g1 = *std::move(g1);
          job.g2 = std::move(g2);
        } else {
          job.g1 = hit_.g1;
          job.g2 = hit_.g2;
        }
      }
      return req;
    }
    AlignRequest& a = req.align;
    a.assign = "JV";
    a.deadline_ms = options_.deadline_ms;
    if (kind == "hit") {
      a.algo = "NSD";
      a.g1 = hit_.g1;
      a.g2 = hit_.g2;
    } else if (kind == "miss") {
      a.algo = "NSD";
      WireGraph g2;
      // A unique pair per request: the daemon has never seen it, so this
      // is always a cold fork. Generation failure is practically
      // impossible for ER at these sizes, but fall back to the hit pair
      // rather than crashing the harness mid-run.
      auto g1 = MakeWirePair(options_.nodes, rng->Next(), &g2);
      if (g1.ok()) {
        a.g1 = *std::move(g1);
        a.g2 = std::move(g2);
      } else {
        a.g1 = hit_.g1;
        a.g2 = hit_.g2;
      }
    } else if (kind == "degraded") {
      a.algo = "GRASP";
      a.g1 = degraded_.g1;
      a.g2 = degraded_.g2;
    } else {  // poison
      a.algo = "_CRASH";
      const Pair& p = poison_[rng->UniformInt(
          static_cast<uint64_t>(kPoisonPool))];
      a.g1 = p.g1;
      a.g2 = p.g2;
    }
    return req;
  }

  // Serializes a built GAF1 request into the gateway's JSON schema, so a
  // traffic kind exercises the daemon identically over both transports.
  static void ToHttp(const Request& req, std::string* target,
                     std::string* body) {
    JsonValue v = JsonValue::Object();
    v.Set("client", JsonValue::Str(req.client));
    if (req.type == RequestType::kAlignBatch) {
      *target = "/v1/align:batch";
      JsonValue graphs = JsonValue::Array();
      for (const BatchGraphRef& ref : req.align_batch.graphs) {
        graphs.Push(WireGraphJson(ref.inline_graph));
      }
      v.Set("graphs", std::move(graphs));
      JsonValue jobs = JsonValue::Array();
      for (const BatchJob& job : req.align_batch.jobs) {
        JsonValue j = JsonValue::Object();
        j.Set("g1", JsonValue::Number(static_cast<double>(job.g1)));
        j.Set("g2", JsonValue::Number(static_cast<double>(job.g2)));
        j.Set("algo", JsonValue::Str(job.algo));
        j.Set("assign", JsonValue::Str(job.assign));
        j.Set("deadline_ms",
              JsonValue::Number(static_cast<double>(job.deadline_ms)));
        jobs.Push(std::move(j));
      }
      v.Set("jobs", std::move(jobs));
    } else if (req.type == RequestType::kSubmitJob) {
      *target = "/v1/jobs";
      const AlignRequest& job = req.submit_job.align;
      v.Set("algo", JsonValue::Str(job.algo));
      v.Set("assign", JsonValue::Str(job.assign));
      v.Set("deadline_ms",
            JsonValue::Number(static_cast<double>(job.deadline_ms)));
      v.Set("g1", WireGraphJson(job.g1));
      v.Set("g2", WireGraphJson(job.g2));
    } else {
      *target = "/v1/align";
      v.Set("algo", JsonValue::Str(req.align.algo));
      v.Set("assign", JsonValue::Str(req.align.assign));
      v.Set("deadline_ms",
            JsonValue::Number(static_cast<double>(req.align.deadline_ms)));
      v.Set("g1", WireGraphJson(req.align.g1));
      v.Set("g2", WireGraphJson(req.align.g2));
    }
    *body = v.Dump();
  }

  void ClientLoop(int client_index) {
    // Deterministic per-thread stream: same seed + same mix => same
    // request sequence, independent of scheduling.
    Rng rng(options_.seed + 0x9e3779b97f4a7c15ull *
                                static_cast<uint64_t>(client_index + 1));
    ClientOptions conn;
    conn.socket_path = options_.socket_path;
    conn.port = options_.port;
    conn.timeout_seconds = options_.timeout_seconds;
    // Mixed-transport runs flip a per-request coin; HTTP-only runs (no
    // GAF1 endpoint at all) send everything through the gateway.
    const bool has_gaf1 = !options_.socket_path.empty() || options_.port >= 0;
    std::map<std::string, KindStats> local;
    for (int i = 0; i < options_.requests; ++i) {
      const std::string kind = PickKind(&rng);
      const bool use_http =
          options_.http_port >= 0 && (!has_gaf1 || rng.UniformInt(2) == 0);
      const Request req = BuildRequest(kind, client_index, &rng);
      KindStats& ks = local[use_http ? kind + "@http" : kind];
      ++ks.sent;
      WallTimer timer;
      if (use_http) {
        std::string target, body, status;
        bool cache_hit = false;
        ToHttp(req, &target, &body);
        const bool transported =
            HttpCall(options_.http_port, "POST", target, body,
                     options_.timeout_seconds, &status, &cache_hit);
        ks.latencies_ms.push_back(timer.Seconds() * 1e3);
        if (!transported) {
          ++ks.transport_errors;
          continue;
        }
        ++ks.by_code[status];
        if (cache_hit) ++ks.cache_hits;
        continue;
      }
      auto client = Client::Connect(conn);
      Result<Response> resp =
          client.ok() ? client->Call(req) : Result<Response>(client.status());
      ks.latencies_ms.push_back(timer.Seconds() * 1e3);
      if (!resp.ok()) {
        ++ks.transport_errors;
        continue;
      }
      ++ks.by_code[ResponseCodeName(resp->code)];
      if (resp->cache_hit) ++ks.cache_hits;
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [kind, ks] : local) {
      KindStats& merged = stats_[kind];
      merged.sent += ks.sent;
      merged.transport_errors += ks.transport_errors;
      merged.cache_hits += ks.cache_hits;
      for (const auto& [code, n] : ks.by_code) merged.by_code[code] += n;
      merged.latencies_ms.insert(merged.latencies_ms.end(),
                                 ks.latencies_ms.begin(),
                                 ks.latencies_ms.end());
    }
  }

  int Report(double wall_seconds) {
    Table table({"kind", "sent", "ok", "cache_hits", "typed_errors",
                 "transport", "p50_ms", "p90_ms", "p99_ms", "p999_ms"});
    uint64_t total_sent = 0, total_transport = 0;
    std::map<std::string, uint64_t> histogram;
    std::vector<double> all_latencies;
    for (auto& [kind, ks] : stats_) {
      std::sort(ks.latencies_ms.begin(), ks.latencies_ms.end());
      all_latencies.insert(all_latencies.end(), ks.latencies_ms.begin(),
                           ks.latencies_ms.end());
      uint64_t ok = 0, typed_errors = 0;
      for (const auto& [code, n] : ks.by_code) {
        histogram[code] += n;
        if (code == "OK") {
          ok += n;
        } else {
          typed_errors += n;
        }
      }
      total_sent += ks.sent;
      total_transport += ks.transport_errors;
      table.AddRow({kind, std::to_string(ks.sent), std::to_string(ok),
                    std::to_string(ks.cache_hits),
                    std::to_string(typed_errors),
                    std::to_string(ks.transport_errors),
                    Table::Num(Percentile(&ks.latencies_ms, 0.50), 2),
                    Table::Num(Percentile(&ks.latencies_ms, 0.90), 2),
                    Table::Num(Percentile(&ks.latencies_ms, 0.99), 2),
                    Table::Num(Percentile(&ks.latencies_ms, 0.999), 2)});
    }
    std::sort(all_latencies.begin(), all_latencies.end());
    const double throughput =
        wall_seconds > 0.0 ? static_cast<double>(total_sent) / wall_seconds
                           : 0.0;
    table.Print(std::cout);
    std::printf("\ntyped responses:");
    for (const auto& [code, n] : histogram) {
      std::printf(" %s=%llu", code.c_str(),
                  static_cast<unsigned long long>(n));
    }
    std::printf(" TRANSPORT=%llu\n",
                static_cast<unsigned long long>(total_transport));
    std::printf(
        "%llu requests, %d clients, %.2fs wall, %.1f req/s, "
        "p50=%.2fms p99=%.2fms p999=%.2fms\n",
        static_cast<unsigned long long>(total_sent), options_.clients,
        wall_seconds, throughput, Percentile(&all_latencies, 0.50),
        Percentile(&all_latencies, 0.99), Percentile(&all_latencies, 0.999));

    if (!options_.json_path.empty()) {
      std::vector<std::pair<std::string, std::string>> meta = {
          {"bench", options_.http_port >= 0 ? "gateway" : "loadgen"},
          {"http_port_used", options_.http_port >= 0 ? "1" : "0"},
          {"clients", std::to_string(options_.clients)},
          {"requests_per_client", std::to_string(options_.requests)},
          {"seed", std::to_string(options_.seed)},
          {"nodes", std::to_string(options_.nodes)},
          {"deadline_ms", std::to_string(options_.deadline_ms)},
          {"wall_seconds", Table::Num(wall_seconds, 3)},
          {"throughput_rps", Table::Num(throughput, 1)},
          {"transport_errors", std::to_string(total_transport)},
      };
      for (const auto& [code, n] : histogram) {
        meta.emplace_back("responses_" + code, std::to_string(n));
      }
      if (!table.WriteJson(options_.json_path, meta)) {
        std::fprintf(stderr, "loadgen: cannot write %s\n",
                     options_.json_path.c_str());
        return 1;
      }
      std::printf("wrote %s\n", options_.json_path.c_str());
    }
    // Typed overload answers are the daemon doing its job; only transport
    // failures mean clients were actually dropped.
    return total_transport == 0 ? 0 : 1;
  }

  const LoadgenOptions options_;
  Pair hit_, degraded_;
  Pair poison_[kPoisonPool];
  int total_weight_ = 0;
  std::mutex mu_;
  std::map<std::string, KindStats> stats_;
};

int Main(int argc, char** argv) {
  LoadgenOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--socket" && (v = next())) {
      options.socket_path = v;
    } else if (arg == "--port" && (v = next())) {
      options.port = std::atoi(v);
    } else if (arg == "--http-port" && (v = next())) {
      options.http_port = std::atoi(v);
    } else if (arg == "--clients" && (v = next())) {
      options.clients = std::atoi(v);
    } else if (arg == "--requests" && (v = next())) {
      options.requests = std::atoi(v);
    } else if (arg == "--mix" && (v = next())) {
      if (!ParseMix(v, &options.mix)) {
        std::fprintf(stderr, "loadgen: bad --mix '%s'\n", v);
        return Usage(argv[0]);
      }
    } else if (arg == "--seed" && (v = next())) {
      options.seed = static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--deadline-ms" && (v = next())) {
      options.deadline_ms =
          static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--nodes" && (v = next())) {
      options.nodes = std::atoi(v);
    } else if (arg == "--timeout" && (v = next())) {
      options.timeout_seconds = std::atof(v);
    } else if (arg == "--json" && (v = next())) {
      options.json_path = v;
    } else {
      std::fprintf(stderr, "loadgen: unknown or incomplete flag '%s'\n",
                   arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (options.socket_path.empty() && options.port < 0 &&
      options.http_port < 0) {
    std::fprintf(stderr,
                 "loadgen: --socket, --port, or --http-port is required\n");
    return Usage(argv[0]);
  }
  if (options.clients <= 0 || options.requests <= 0 || options.nodes < 8) {
    std::fprintf(stderr,
                 "loadgen: --clients/--requests must be positive, "
                 "--nodes at least 8\n");
    return Usage(argv[0]);
  }
  Loadgen loadgen(options);
  return loadgen.Run();
}

}  // namespace
}  // namespace graphalign

int main(int argc, char** argv) { return graphalign::Main(argc, argv); }
