// Hand-rolled HTTP/1.1 request parsing and response writing for the
// embedded gateway (DESIGN.md §16), in the shasta AssemblerHttpServer
// idiom: no dependency, a blocking server loop, and a total parser with
// hard size caps so arbitrary bytes on the port yield a typed outcome —
// never a crash, an unbounded buffer, or a hang the idle timeout can't
// break.
//
// Scope (deliberate): requests with an optional Content-Length body.
// Transfer-Encoding (chunked), HTTP/2 upgrade, and multipart are rejected
// with typed statuses — every client the gateway serves (CLI tools, curl,
// loadgen) speaks plain bodies.
#ifndef GRAPHALIGN_GATEWAY_HTTP_H_
#define GRAPHALIGN_GATEWAY_HTTP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace graphalign {

// Hard caps applied while parsing, before any proportional buffering.
struct HttpLimits {
  size_t max_head_bytes = 16 * 1024;   // Request line + headers. → 431.
  size_t max_headers = 64;             // Header count. → 431.
  size_t max_body_bytes = 8u << 20;    // Declared Content-Length. → 413.
};

struct HttpRequest {
  std::string method;   // Uppercase token, e.g. "GET".
  std::string target;   // Origin-form target, e.g. "/v1/align".
  std::string version;  // "HTTP/1.0" or "HTTP/1.1".
  // Names lowercased at parse time; values have outer whitespace trimmed.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  // Case-insensitive lookup of the first header with this (lowercase)
  // name; empty string when absent.
  std::string_view Header(std::string_view name) const;
  bool KeepAlive() const;  // HTTP/1.1 default-on, "Connection: close" off.
};

enum class HttpParseStatus {
  kComplete,    // One whole request parsed; *consumed bytes were used.
  kIncomplete,  // A prefix of a valid request; read more and retry.
  kBad,         // Malformed request line/headers/body framing. → 400.
  kTooLarge,    // Head past max_head_bytes/max_headers. → 431.
  kBodyTooLarge,  // Declared Content-Length past max_body_bytes. → 413.
  kUnsupported,   // Transfer-Encoding or other framing we refuse. → 501.
};

const char* HttpParseStatusName(HttpParseStatus status);

// Attempts to parse one request from the front of `buf`. On kComplete,
// *request is filled and *consumed is the total byte count (so a
// keep-alive connection can shift the buffer and parse the next request).
// On any non-kComplete/kIncomplete outcome *error names the violation.
// Total: never reads past buf, never allocates past the declared
// (validated) body length.
HttpParseStatus ParseHttpRequest(std::string_view buf, const HttpLimits& limits,
                                 HttpRequest* request, size_t* consumed,
                                 std::string* error);

// The reason phrase of the status codes the gateway emits.
const char* HttpStatusReason(int status);

// Serializes a full response with Content-Length framing (and
// "Connection: close" unless keep_alive). `extra_headers` are emitted
// verbatim after the framing headers — the gateway uses this for
// Retry-After backoff hints on 429/503.
std::string EncodeHttpResponse(
    int status, std::string_view content_type, std::string_view body,
    bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers = {});

}  // namespace graphalign

#endif  // GRAPHALIGN_GATEWAY_HTTP_H_
