// Sparse linear assignment: optimal matching restricted to an explicit
// candidate set, via successive shortest augmenting paths with potentials.
//
// LREA's "union of matchings" extraction produces O(n * rank) candidate
// pairs; solving the LAP on that sparse set (rather than a dense n^2 matrix)
// is what makes LREA scale (paper §3.4, §6.2).
#ifndef GRAPHALIGN_ASSIGNMENT_SPARSE_LAP_H_
#define GRAPHALIGN_ASSIGNMENT_SPARSE_LAP_H_

#include <vector>

#include "assignment/assignment.h"
#include "common/status.h"

namespace graphalign {

struct SparseCandidate {
  int row;
  int col;
  double similarity;
};

// Maximum-cardinality matching over the candidate edges that maximizes total
// similarity among such matchings. Rows that cannot be matched get -1.
// Duplicate (row, col) candidates are allowed; the highest-similarity one
// wins. O(A * E log E) with A augmentations and E candidates. The deadline
// is polled inside the Dijkstra pop loop (every ~4096 pops), so even a
// single oversized augmentation respects the budget; on expiry returns
// kDeadlineExceeded.
Result<Alignment> SparseLapAssign(int num_rows, int num_cols,
                                  const std::vector<SparseCandidate>& candidates,
                                  const Deadline& deadline = Deadline());

}  // namespace graphalign

#endif  // GRAPHALIGN_ASSIGNMENT_SPARSE_LAP_H_
