// Closed-loop load generator for the alignment service daemon.
//
// Spawns --clients threads, each issuing --requests requests back-to-back
// against a running daemon (fresh connection per request, like real
// short-lived clients). Each request is drawn from a weighted --mix of
// traffic kinds:
//
//   hit      one fixed graph pair, NSD: after the first fork, pure cache
//            hits — the fast path under load.
//   miss     a unique ER pair per request: always a cold isolated fork.
//   degraded a fixed pair on GRASP: degrades only when the daemon has
//            numerical failpoints armed, otherwise an ordinary fork.
//   poison   _CRASH on a small pool of pairs: repeated signatures, so a
//            daemon with quarantine enabled trips it mid-run and the tail
//            of the mix is answered with typed QUARANTINED, not forks.
//
// Reports per-kind counts, a typed-response histogram (SHED, QUARANTINED,
// BUSY, ... plus TRANSPORT for connect/IO failures), latency percentiles
// (p50/p90/p99/p999), and closed-loop throughput. --json writes the same
// table with run metadata for checked-in baselines (BENCH_loadgen.json).
//
// Exit code: 0 when every response was *typed* (any code — overload
// answers are correct behavior under chaos), 1 when transport errors or
// bad arguments show the daemon actually failed its clients.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/table.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "server/client.h"
#include "server/protocol.h"

namespace graphalign {
namespace {

struct MixEntry {
  std::string kind;
  int weight = 0;
};

struct LoadgenOptions {
  std::string socket_path;
  int port = -1;
  int clients = 4;
  int requests = 50;  // Per client.
  std::vector<MixEntry> mix = {{"hit", 6}, {"miss", 3}, {"poison", 1}};
  uint64_t seed = 42;
  uint64_t deadline_ms = 5000;
  int nodes = 48;
  std::string json_path;
  std::string client_prefix = "loadgen";
  double timeout_seconds = 60.0;
};

// Per-kind accumulator, merged across worker threads at the end.
struct KindStats {
  uint64_t sent = 0;
  uint64_t transport_errors = 0;
  uint64_t cache_hits = 0;
  std::map<std::string, uint64_t> by_code;  // Typed responses by name.
  std::vector<double> latencies_ms;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH | --port N [--clients C] [--requests N]\n"
      "  [--mix hit:W,miss:W,degraded:W,poison:W] [--seed S]\n"
      "  [--deadline-ms D] [--nodes N] [--timeout T] [--json PATH]\n",
      argv0);
  return 1;
}

bool ParseMix(const std::string& spec, std::vector<MixEntry>* out) {
  std::vector<MixEntry> mix;
  size_t pos = 0;
  while (pos < spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string part =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const size_t colon = part.find(':');
    if (colon == std::string::npos) return false;
    MixEntry e;
    e.kind = part.substr(0, colon);
    if (e.kind != "hit" && e.kind != "miss" && e.kind != "degraded" &&
        e.kind != "poison") {
      return false;
    }
    try {
      e.weight = std::stoi(part.substr(colon + 1));
    } catch (...) {
      return false;
    }
    if (e.weight < 0) return false;
    if (e.weight > 0) mix.push_back(e);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (mix.empty()) return false;
  *out = std::move(mix);
  return true;
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(idx, sorted->size() - 1)];
}

Result<WireGraph> MakeWirePair(int nodes, uint64_t seed, WireGraph* second) {
  Rng rng(seed);
  GA_ASSIGN_OR_RETURN(Graph g1, ErdosRenyi(nodes, 0.12, &rng));
  GA_ASSIGN_OR_RETURN(Graph g2, ErdosRenyi(nodes, 0.12, &rng));
  *second = ToWire(g2);
  return ToWire(g1);
}

class Loadgen {
 public:
  explicit Loadgen(const LoadgenOptions& options) : options_(options) {}

  int Run() {
    // Fixed pairs are generated once and shared read-only by all threads.
    WireGraph hit_g2, degraded_g2;
    auto hit_g1 = MakeWirePair(options_.nodes, options_.seed * 7919 + 1,
                               &hit_g2);
    auto degraded_g1 =
        MakeWirePair(options_.nodes, options_.seed * 7919 + 2, &degraded_g2);
    if (!hit_g1.ok() || !degraded_g1.ok()) {
      std::fprintf(stderr, "loadgen: graph generation failed\n");
      return 1;
    }
    hit_.g1 = *std::move(hit_g1);
    hit_.g2 = std::move(hit_g2);
    degraded_.g1 = *std::move(degraded_g1);
    degraded_.g2 = std::move(degraded_g2);
    for (int i = 0; i < kPoisonPool; ++i) {
      WireGraph g2;
      auto g1 = MakeWirePair(options_.nodes, options_.seed * 7919 + 100 + i,
                             &g2);
      if (!g1.ok()) {
        std::fprintf(stderr, "loadgen: graph generation failed\n");
        return 1;
      }
      poison_[i].g1 = *std::move(g1);
      poison_[i].g2 = std::move(g2);
    }
    for (const MixEntry& e : options_.mix) total_weight_ += e.weight;

    WallTimer wall;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(options_.clients));
    for (int c = 0; c < options_.clients; ++c) {
      threads.emplace_back([this, c] { ClientLoop(c); });
    }
    for (std::thread& t : threads) t.join();
    const double wall_seconds = wall.Seconds();
    return Report(wall_seconds);
  }

 private:
  struct Pair {
    WireGraph g1, g2;
  };
  static constexpr int kPoisonPool = 2;

  const std::string& PickKind(Rng* rng) {
    int roll = static_cast<int>(rng->UniformInt(
        static_cast<uint64_t>(total_weight_)));
    for (const MixEntry& e : options_.mix) {
      roll -= e.weight;
      if (roll < 0) return e.kind;
    }
    return options_.mix.back().kind;
  }

  Request BuildRequest(const std::string& kind, int client_index, Rng* rng) {
    Request req;
    req.type = RequestType::kAlign;
    req.client =
        options_.client_prefix + "-" + std::to_string(client_index);
    AlignRequest& a = req.align;
    a.assign = "JV";
    a.deadline_ms = options_.deadline_ms;
    if (kind == "hit") {
      a.algo = "NSD";
      a.g1 = hit_.g1;
      a.g2 = hit_.g2;
    } else if (kind == "miss") {
      a.algo = "NSD";
      WireGraph g2;
      // A unique pair per request: the daemon has never seen it, so this
      // is always a cold fork. Generation failure is practically
      // impossible for ER at these sizes, but fall back to the hit pair
      // rather than crashing the harness mid-run.
      auto g1 = MakeWirePair(options_.nodes, rng->Next(), &g2);
      if (g1.ok()) {
        a.g1 = *std::move(g1);
        a.g2 = std::move(g2);
      } else {
        a.g1 = hit_.g1;
        a.g2 = hit_.g2;
      }
    } else if (kind == "degraded") {
      a.algo = "GRASP";
      a.g1 = degraded_.g1;
      a.g2 = degraded_.g2;
    } else {  // poison
      a.algo = "_CRASH";
      const Pair& p = poison_[rng->UniformInt(
          static_cast<uint64_t>(kPoisonPool))];
      a.g1 = p.g1;
      a.g2 = p.g2;
    }
    return req;
  }

  void ClientLoop(int client_index) {
    // Deterministic per-thread stream: same seed + same mix => same
    // request sequence, independent of scheduling.
    Rng rng(options_.seed + 0x9e3779b97f4a7c15ull *
                                static_cast<uint64_t>(client_index + 1));
    ClientOptions conn;
    conn.socket_path = options_.socket_path;
    conn.port = options_.port;
    conn.timeout_seconds = options_.timeout_seconds;
    std::map<std::string, KindStats> local;
    for (int i = 0; i < options_.requests; ++i) {
      const std::string kind = PickKind(&rng);
      const Request req = BuildRequest(kind, client_index, &rng);
      KindStats& ks = local[kind];
      ++ks.sent;
      WallTimer timer;
      auto client = Client::Connect(conn);
      Result<Response> resp =
          client.ok() ? client->Call(req) : Result<Response>(client.status());
      ks.latencies_ms.push_back(timer.Seconds() * 1e3);
      if (!resp.ok()) {
        ++ks.transport_errors;
        continue;
      }
      ++ks.by_code[ResponseCodeName(resp->code)];
      if (resp->cache_hit) ++ks.cache_hits;
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [kind, ks] : local) {
      KindStats& merged = stats_[kind];
      merged.sent += ks.sent;
      merged.transport_errors += ks.transport_errors;
      merged.cache_hits += ks.cache_hits;
      for (const auto& [code, n] : ks.by_code) merged.by_code[code] += n;
      merged.latencies_ms.insert(merged.latencies_ms.end(),
                                 ks.latencies_ms.begin(),
                                 ks.latencies_ms.end());
    }
  }

  int Report(double wall_seconds) {
    Table table({"kind", "sent", "ok", "cache_hits", "typed_errors",
                 "transport", "p50_ms", "p90_ms", "p99_ms", "p999_ms"});
    uint64_t total_sent = 0, total_transport = 0;
    std::map<std::string, uint64_t> histogram;
    std::vector<double> all_latencies;
    for (auto& [kind, ks] : stats_) {
      std::sort(ks.latencies_ms.begin(), ks.latencies_ms.end());
      all_latencies.insert(all_latencies.end(), ks.latencies_ms.begin(),
                           ks.latencies_ms.end());
      uint64_t ok = 0, typed_errors = 0;
      for (const auto& [code, n] : ks.by_code) {
        histogram[code] += n;
        if (code == "OK") {
          ok += n;
        } else {
          typed_errors += n;
        }
      }
      total_sent += ks.sent;
      total_transport += ks.transport_errors;
      table.AddRow({kind, std::to_string(ks.sent), std::to_string(ok),
                    std::to_string(ks.cache_hits),
                    std::to_string(typed_errors),
                    std::to_string(ks.transport_errors),
                    Table::Num(Percentile(&ks.latencies_ms, 0.50), 2),
                    Table::Num(Percentile(&ks.latencies_ms, 0.90), 2),
                    Table::Num(Percentile(&ks.latencies_ms, 0.99), 2),
                    Table::Num(Percentile(&ks.latencies_ms, 0.999), 2)});
    }
    std::sort(all_latencies.begin(), all_latencies.end());
    const double throughput =
        wall_seconds > 0.0 ? static_cast<double>(total_sent) / wall_seconds
                           : 0.0;
    table.Print(std::cout);
    std::printf("\ntyped responses:");
    for (const auto& [code, n] : histogram) {
      std::printf(" %s=%llu", code.c_str(),
                  static_cast<unsigned long long>(n));
    }
    std::printf(" TRANSPORT=%llu\n",
                static_cast<unsigned long long>(total_transport));
    std::printf(
        "%llu requests, %d clients, %.2fs wall, %.1f req/s, "
        "p50=%.2fms p99=%.2fms p999=%.2fms\n",
        static_cast<unsigned long long>(total_sent), options_.clients,
        wall_seconds, throughput, Percentile(&all_latencies, 0.50),
        Percentile(&all_latencies, 0.99), Percentile(&all_latencies, 0.999));

    if (!options_.json_path.empty()) {
      std::vector<std::pair<std::string, std::string>> meta = {
          {"bench", "loadgen"},
          {"clients", std::to_string(options_.clients)},
          {"requests_per_client", std::to_string(options_.requests)},
          {"seed", std::to_string(options_.seed)},
          {"nodes", std::to_string(options_.nodes)},
          {"deadline_ms", std::to_string(options_.deadline_ms)},
          {"wall_seconds", Table::Num(wall_seconds, 3)},
          {"throughput_rps", Table::Num(throughput, 1)},
          {"transport_errors", std::to_string(total_transport)},
      };
      for (const auto& [code, n] : histogram) {
        meta.emplace_back("responses_" + code, std::to_string(n));
      }
      if (!table.WriteJson(options_.json_path, meta)) {
        std::fprintf(stderr, "loadgen: cannot write %s\n",
                     options_.json_path.c_str());
        return 1;
      }
      std::printf("wrote %s\n", options_.json_path.c_str());
    }
    // Typed overload answers are the daemon doing its job; only transport
    // failures mean clients were actually dropped.
    return total_transport == 0 ? 0 : 1;
  }

  const LoadgenOptions options_;
  Pair hit_, degraded_;
  Pair poison_[kPoisonPool];
  int total_weight_ = 0;
  std::mutex mu_;
  std::map<std::string, KindStats> stats_;
};

int Main(int argc, char** argv) {
  LoadgenOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--socket" && (v = next())) {
      options.socket_path = v;
    } else if (arg == "--port" && (v = next())) {
      options.port = std::atoi(v);
    } else if (arg == "--clients" && (v = next())) {
      options.clients = std::atoi(v);
    } else if (arg == "--requests" && (v = next())) {
      options.requests = std::atoi(v);
    } else if (arg == "--mix" && (v = next())) {
      if (!ParseMix(v, &options.mix)) {
        std::fprintf(stderr, "loadgen: bad --mix '%s'\n", v);
        return Usage(argv[0]);
      }
    } else if (arg == "--seed" && (v = next())) {
      options.seed = static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--deadline-ms" && (v = next())) {
      options.deadline_ms =
          static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--nodes" && (v = next())) {
      options.nodes = std::atoi(v);
    } else if (arg == "--timeout" && (v = next())) {
      options.timeout_seconds = std::atof(v);
    } else if (arg == "--json" && (v = next())) {
      options.json_path = v;
    } else {
      std::fprintf(stderr, "loadgen: unknown or incomplete flag '%s'\n",
                   arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (options.socket_path.empty() && options.port < 0) {
    std::fprintf(stderr, "loadgen: --socket or --port is required\n");
    return Usage(argv[0]);
  }
  if (options.clients <= 0 || options.requests <= 0 || options.nodes < 8) {
    std::fprintf(stderr,
                 "loadgen: --clients/--requests must be positive, "
                 "--nodes at least 8\n");
    return Usage(argv[0]);
  }
  Loadgen loadgen(options);
  return loadgen.Run();
}

}  // namespace
}  // namespace graphalign

int main(int argc, char** argv) { return graphalign::Main(argc, argv); }
