// Durable async job subsystem (DESIGN.md §17): journal framing and replay,
// the manager's state machine, crash recovery with bounded attempts,
// idempotent resubmission, cancellation, TTL GC with compaction, and the
// v5 protocol codecs the job surface rides on. Registered under the `jobs`
// ctest label; tools/run_jobs_smoke.sh drives the same contract end-to-end
// through a real daemon and a real kill -9.
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/status.h"
#include "jobs/journal.h"
#include "jobs/manager.h"
#include "server/protocol.h"

namespace graphalign {
namespace {

class JobsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/ga_jobsXXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    DeactivateAllFailpoints();
    std::string cmd = "rm -rf '" + dir_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  std::unique_ptr<JobManager> OpenManager(uint32_t max_attempts = 3,
                                          uint64_t ttl_seconds = 3600,
                                          uint64_t now_ms = 1000) {
    JobManagerOptions options;
    options.dir = dir_;
    options.max_attempts = max_attempts;
    options.ttl_seconds = ttl_seconds;
    options.exhausted_terminal_code = 42;
    auto manager = JobManager::Open(options, now_ms);
    GA_CHECK(manager.ok());
    return *std::move(manager);
  }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// Journal framing and replay.

TEST_F(JobsTest, JournalAppendAndReplay) {
  std::vector<std::string> seen;
  auto collect = [&seen](std::string_view p) { seen.emplace_back(p); };
  {
    auto journal = JobJournal::Open(dir_, collect);
    ASSERT_TRUE(journal.ok());
    EXPECT_TRUE(seen.empty());
    ASSERT_TRUE((*journal)->Append("alpha").ok());
    ASSERT_TRUE((*journal)->Append("").ok() == false);  // Empty is invalid.
    ASSERT_TRUE((*journal)->Append("beta").ok());
    EXPECT_GT((*journal)->log_bytes(), 0u);
  }
  JobJournal::ReplayStats stats;
  auto reopened = JobJournal::Open(dir_, collect, &stats);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "alpha");
  EXPECT_EQ(seen[1], "beta");
  EXPECT_EQ(stats.replayed, 2u);
  EXPECT_EQ(stats.crc_skipped, 0u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
}

TEST_F(JobsTest, JournalTruncatesTornTailAndStaysWritable) {
  auto noop = [](std::string_view) {};
  {
    auto journal = JobJournal::Open(dir_, noop);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append("good record").ok());
    // A crash mid-append: header + half the payload.
    ASSERT_TRUE(ActivateFailpoint("jobs.journal.append.torn", "once").ok());
    EXPECT_EQ((*journal)->Append("torn record").code(),
              StatusCode::kUnavailable);
  }
  std::vector<std::string> seen;
  JobJournal::ReplayStats stats;
  auto reopened = JobJournal::Open(
      dir_, [&seen](std::string_view p) { seen.emplace_back(p); }, &stats);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "good record");
  EXPECT_GT(stats.truncated_bytes, 0u);
  // The torn tail was cut away: appends land on a clean boundary.
  ASSERT_TRUE((*reopened)->Append("after recovery").ok());
  seen.clear();
  auto again = JobJournal::Open(
      dir_, [&seen](std::string_view p) { seen.emplace_back(p); });
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1], "after recovery");
}

TEST_F(JobsTest, JournalSkipsCrcCorruptRecordAndKeepsRest) {
  auto noop = [](std::string_view) {};
  {
    auto journal = JobJournal::Open(dir_, noop);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append("first-record").ok());
    ASSERT_TRUE((*journal)->Append("second-record").ok());
  }
  // Flip one payload byte inside the first record (framing stays intact).
  const std::string path = dir_ + "/jobs.journal";
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekp(12, std::ios::beg);  // magic(4) + len(4) + crc(4) = payload start.
  f.put('X');
  f.close();
  std::vector<std::string> seen;
  JobJournal::ReplayStats stats;
  auto reopened = JobJournal::Open(
      dir_, [&seen](std::string_view p) { seen.emplace_back(p); }, &stats);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "second-record");
  EXPECT_EQ(stats.crc_skipped, 1u);
}

// ---------------------------------------------------------------------------
// Manager state machine.

TEST_F(JobsTest, SubmitClaimDoneAndDurableResult) {
  uint64_t id = 0;
  {
    auto m = OpenManager();
    auto sub = m->Submit("", "spec-bytes", 2000);
    ASSERT_TRUE(sub.ok());
    EXPECT_FALSE(sub->existing);
    EXPECT_EQ(sub->record.state, JobState::kAccepted);
    id = sub->record.job_id;
    EXPECT_EQ(id, JobContentId("spec-bytes"));
    JobRecord claimed;
    std::shared_ptr<std::atomic<bool>> cancel;
    ASSERT_TRUE(m->ClaimNext(&claimed, &cancel));
    EXPECT_EQ(claimed.job_id, id);
    EXPECT_EQ(claimed.state, JobState::kRunning);
    EXPECT_EQ(claimed.attempts, 1u);
    EXPECT_EQ(claimed.spec_bytes, "spec-bytes");
    ASSERT_NE(cancel, nullptr);
    EXPECT_FALSE(cancel->load());
    ASSERT_TRUE(m->CompleteDone(id, "result-bytes", 3000).ok());
    auto got = m->Get(id);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->state, JobState::kDone);
    EXPECT_EQ(got->result_bytes, "result-bytes");
  }
  // The DONE record and its result bytes survive a restart.
  auto m2 = OpenManager();
  auto got = m2->Get(id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->state, JobState::kDone);
  EXPECT_EQ(got->result_bytes, "result-bytes");
  EXPECT_EQ(m2->Stats().pending, 0u);
}

TEST_F(JobsTest, IdempotentResubmitNeverExecutesTwice) {
  auto m = OpenManager();
  auto first = m->Submit("key-1", "same-spec", 2000);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->existing);
  // Same key, same content: the existing job comes back, nothing enqueued.
  auto second = m->Submit("key-1", "same-spec", 2100);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->existing);
  EXPECT_EQ(second->record.job_id, first->record.job_id);
  // Same content without a key dedupes on the content id too.
  auto third = m->Submit("", "same-spec", 2200);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->existing);
  const JobManagerStats stats = m->Stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.deduped, 2u);
  EXPECT_EQ(stats.pending, 1u);  // One job, queued once.
  // Run it to DONE; a resubmit afterwards still dedupes (result served
  // again) and the queue stays empty — the work never runs twice.
  JobRecord claimed;
  std::shared_ptr<std::atomic<bool>> cancel;
  ASSERT_TRUE(m->ClaimNext(&claimed, &cancel));
  ASSERT_TRUE(m->CompleteDone(claimed.job_id, "r", 3000).ok());
  auto after_done = m->Submit("key-1", "same-spec", 4000);
  ASSERT_TRUE(after_done.ok());
  EXPECT_TRUE(after_done->existing);
  EXPECT_EQ(after_done->record.state, JobState::kDone);
  EXPECT_EQ(m->Stats().executions, 1u);
  EXPECT_EQ(m->Stats().pending, 0u);
}

TEST_F(JobsTest, IdemKeyBoundToDifferentContentIsConflict) {
  auto m = OpenManager();
  ASSERT_TRUE(m->Submit("shared-key", "content-A", 2000).ok());
  auto clash = m->Submit("shared-key", "content-B", 2100);
  ASSERT_FALSE(clash.ok());
  EXPECT_EQ(clash.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(JobsTest, RetryableExhaustsIntoTypedFailed) {
  auto m = OpenManager(/*max_attempts=*/2);
  auto sub = m->Submit("", "flaky-spec", 2000);
  ASSERT_TRUE(sub.ok());
  const uint64_t id = sub->record.job_id;
  JobRecord claimed;
  std::shared_ptr<std::atomic<bool>> cancel;
  ASSERT_TRUE(m->ClaimNext(&claimed, &cancel));
  ASSERT_TRUE(m->CompleteRetryable(id, "crashed", 2100).ok());
  auto mid = m->Get(id);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->state, JobState::kAccepted);  // Re-enqueued, attempt 1/2.
  ASSERT_TRUE(m->ClaimNext(&claimed, &cancel));
  EXPECT_EQ(claimed.attempts, 2u);
  ASSERT_TRUE(m->CompleteRetryable(id, "crashed again", 2200).ok());
  auto final = m->Get(id);
  ASSERT_TRUE(final.ok());
  EXPECT_EQ(final->state, JobState::kFailed);
  EXPECT_EQ(final->terminal_code, 42u);  // options.exhausted_terminal_code.
  EXPECT_EQ(m->Stats().pending, 0u);
}

TEST_F(JobsTest, CrashWithRunningJobRecoversToAccepted) {
  uint64_t id = 0;
  {
    auto m = OpenManager(/*max_attempts=*/3);
    auto sub = m->Submit("", "interrupted-spec", 2000);
    ASSERT_TRUE(sub.ok());
    id = sub->record.job_id;
    JobRecord claimed;
    std::shared_ptr<std::atomic<bool>> cancel;
    ASSERT_TRUE(m->ClaimNext(&claimed, &cancel));
    // Destroyed while RUNNING: the journal's last word for this job is the
    // claim — exactly what a kill -9 mid-execution leaves behind.
  }
  auto m2 = OpenManager(/*max_attempts=*/3, 3600, /*now_ms=*/5000);
  EXPECT_EQ(m2->Stats().recovered, 1u);
  auto rec = m2->Get(id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, JobState::kAccepted);
  EXPECT_EQ(rec->attempts, 1u);  // The lost attempt stays counted.
  JobRecord claimed;
  std::shared_ptr<std::atomic<bool>> cancel;
  ASSERT_TRUE(m2->ClaimNext(&claimed, &cancel));
  EXPECT_EQ(claimed.job_id, id);
  EXPECT_EQ(claimed.attempts, 2u);
}

TEST_F(JobsTest, CrashLoopExhaustsAttemptsAtRecovery) {
  uint64_t id = 0;
  {
    auto m = OpenManager(/*max_attempts=*/1);
    auto sub = m->Submit("", "poison-spec", 2000);
    ASSERT_TRUE(sub.ok());
    id = sub->record.job_id;
    JobRecord claimed;
    std::shared_ptr<std::atomic<bool>> cancel;
    ASSERT_TRUE(m->ClaimNext(&claimed, &cancel));
  }
  // The only allowed attempt did not survive the restart: typed FAILED,
  // never a retry storm.
  auto m2 = OpenManager(/*max_attempts=*/1, 3600, /*now_ms=*/5000);
  EXPECT_EQ(m2->Stats().recovered, 0u);
  auto rec = m2->Get(id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, JobState::kFailed);
  EXPECT_EQ(rec->terminal_code, 42u);
  EXPECT_EQ(m2->Stats().pending, 0u);
}

TEST_F(JobsTest, CancelSemantics) {
  auto m = OpenManager();
  // Cancel an unknown id.
  EXPECT_EQ(m->Cancel(777, 2000).status().code(), StatusCode::kNotFound);
  // Cancel an ACCEPTED job: it leaves the queue entirely.
  auto sub = m->Submit("", "to-cancel", 2000);
  ASSERT_TRUE(sub.ok());
  auto cancelled = m->Cancel(sub->record.job_id, 2100);
  ASSERT_TRUE(cancelled.ok());
  EXPECT_EQ(cancelled->state, JobState::kCancelled);
  EXPECT_EQ(m->Stats().pending, 0u);
  // Cancelling a terminal job is a typed refusal.
  EXPECT_EQ(m->Cancel(sub->record.job_id, 2200).status().code(),
            StatusCode::kFailedPrecondition);
  // A RUNNING job's cancel flips the runner's flag; its late completion is
  // silently discarded (the cancel verdict is absorbing).
  auto sub2 = m->Submit("", "cancel-in-flight", 3000);
  ASSERT_TRUE(sub2.ok());
  JobRecord claimed;
  std::shared_ptr<std::atomic<bool>> cancel;
  ASSERT_TRUE(m->ClaimNext(&claimed, &cancel));
  EXPECT_EQ(claimed.job_id, sub2->record.job_id);
  ASSERT_TRUE(m->Cancel(claimed.job_id, 3100).ok());
  EXPECT_TRUE(cancel->load());
  ASSERT_TRUE(m->CompleteDone(claimed.job_id, "late result", 3200).ok());
  auto rec = m->Get(claimed.job_id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, JobState::kCancelled);
  EXPECT_TRUE(rec->result_bytes.empty());
  // A cancelled job may be resubmitted: fresh cycle, not a dedupe.
  auto resub = m->Submit("", "cancel-in-flight", 4000);
  ASSERT_TRUE(resub.ok());
  EXPECT_FALSE(resub->existing);
  EXPECT_EQ(resub->record.state, JobState::kAccepted);
}

TEST_F(JobsTest, GcExpiresTerminalJobsAndCompacts) {
  auto m = OpenManager(/*max_attempts=*/3, /*ttl_seconds=*/1);
  auto sub = m->Submit("gc-key", "gc-spec", 2000);
  ASSERT_TRUE(sub.ok());
  const uint64_t id = sub->record.job_id;
  JobRecord claimed;
  std::shared_ptr<std::atomic<bool>> cancel;
  ASSERT_TRUE(m->ClaimNext(&claimed, &cancel));
  ASSERT_TRUE(m->CompleteDone(id, "gc-result", 3000).ok());
  // Before the TTL: still served.
  ASSERT_TRUE(m->Gc(3500).ok());
  EXPECT_TRUE(m->Get(id).ok());
  // Past the TTL: expired from the table, the journal, and the idem index.
  const uint64_t bytes_before = m->Stats().journal_bytes;
  ASSERT_TRUE(m->Gc(5000).ok());
  EXPECT_EQ(m->Get(id).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(m->Stats().gced, 1u);
  EXPECT_LT(m->Stats().journal_bytes, bytes_before);
  // The key is free again, and the GC survives a restart.
  auto resub = m->Submit("gc-key", "different-spec", 6000);
  ASSERT_TRUE(resub.ok());
  EXPECT_FALSE(resub->existing);
  auto m2 = OpenManager();
  EXPECT_EQ(m2->Get(id).status().code(), StatusCode::kNotFound);
}

TEST_F(JobsTest, JournalAppendFailureRefusesTheSubmit) {
  auto m = OpenManager();
  ASSERT_TRUE(ActivateFailpoint("jobs.journal.append.error", "once").ok());
  auto refused = m->Submit("", "unjournaled-spec", 2000);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  // Not half-accepted: the job does not exist and nothing is queued.
  EXPECT_EQ(m->Get(JobContentId("unjournaled-spec")).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(m->Stats().pending, 0u);
  // The journal stays open; the next submit succeeds.
  EXPECT_TRUE(m->Submit("", "unjournaled-spec", 2100).ok());
}

TEST_F(JobsTest, ContentIdIsStableAndNonZero) {
  EXPECT_EQ(JobContentId("abc"), JobContentId("abc"));
  EXPECT_NE(JobContentId("abc"), JobContentId("abd"));
  EXPECT_NE(JobContentId(""), 0u);
  EXPECT_NE(JobContentId("x"), 0u);
}

// ---------------------------------------------------------------------------
// Protocol v5: job request/response codecs.

TEST_F(JobsTest, SubmitJobRequestRoundTrip) {
  Request req;
  req.type = RequestType::kSubmitJob;
  req.client = "tester";
  req.submit_job.idem_key = "idem-abc";
  AlignRequest& a = req.submit_job.align;
  a.algo = "NSD";
  a.assign = "JV";
  a.deadline_ms = 1234;
  a.g1.num_nodes = 3;
  a.g1.edges = {{0, 1}, {1, 2}};
  a.g2.num_nodes = 3;
  a.g2.edges = {{0, 2}};
  auto decoded = DecodeRequest(EncodeRequest(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, RequestType::kSubmitJob);
  EXPECT_EQ(decoded->client, "tester");
  EXPECT_EQ(decoded->submit_job.idem_key, "idem-abc");
  EXPECT_EQ(decoded->submit_job.align.algo, "NSD");
  EXPECT_EQ(decoded->submit_job.align.deadline_ms, 1234u);
  EXPECT_EQ(decoded->submit_job.align.g1.edges.size(), 2u);
}

TEST_F(JobsTest, JobIdRequestRoundTrip) {
  for (RequestType type : {RequestType::kJobStatus, RequestType::kJobResult,
                           RequestType::kCancelJob}) {
    Request req;
    req.type = type;
    req.job_id.job_id = 0xdeadbeefcafef00dull;
    auto decoded = DecodeRequest(EncodeRequest(req));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->type, type);
    EXPECT_EQ(decoded->job_id.job_id, 0xdeadbeefcafef00dull);
  }
}

TEST_F(JobsTest, JobInfoRoundTrip) {
  JobInfo info;
  info.job_id = 0x0123456789abcdefull;
  info.state = 2;
  info.state_name = "DONE";
  info.attempts = 2;
  info.max_attempts = 3;
  info.submitted_unix_ms = 111;
  info.updated_unix_ms = 222;
  info.terminal_code = 0;
  info.message = "fine";
  info.existing = true;
  auto decoded = DecodeJobInfo(EncodeJobInfo(info));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->job_id, info.job_id);
  EXPECT_EQ(decoded->state, info.state);
  EXPECT_EQ(decoded->state_name, "DONE");
  EXPECT_EQ(decoded->attempts, 2u);
  EXPECT_EQ(decoded->max_attempts, 3u);
  EXPECT_EQ(decoded->submitted_unix_ms, 111u);
  EXPECT_EQ(decoded->updated_unix_ms, 222u);
  EXPECT_EQ(decoded->message, "fine");
  EXPECT_TRUE(decoded->existing);
}

TEST_F(JobsTest, AlignSpecRoundTripIsCanonical) {
  AlignRequest a;
  a.algo = "GRASP";
  a.assign = "NN";
  a.by_hash = true;
  a.g1_hash = 7;
  a.g2_hash = 9;
  a.deadline_ms = 500;
  a.mem_limit_mb = 64;
  a.no_cache = true;
  const std::string spec = EncodeAlignSpec(a);
  // Canonical: identical requests encode to identical bytes (the content
  // id depends on it).
  EXPECT_EQ(spec, EncodeAlignSpec(a));
  auto decoded = DecodeAlignSpec(spec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->algo, "GRASP");
  EXPECT_EQ(decoded->assign, "NN");
  EXPECT_TRUE(decoded->by_hash);
  EXPECT_EQ(decoded->g1_hash, 7u);
  EXPECT_EQ(decoded->g2_hash, 9u);
  EXPECT_EQ(decoded->deadline_ms, 500u);
  EXPECT_EQ(decoded->mem_limit_mb, 64u);
  EXPECT_TRUE(decoded->no_cache);
  EXPECT_EQ(EncodeAlignSpec(*decoded), spec);
}

TEST_F(JobsTest, ResponseCarriesRetryAfterHint) {
  Response r;
  r.code = ResponseCode::kBusy;
  r.retry_after_ms = 250;
  r.message = "try later";
  auto decoded = DecodeResponse(EncodeResponse(r));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, ResponseCode::kBusy);
  EXPECT_EQ(decoded->retry_after_ms, 250u);
}

TEST_F(JobsTest, ServerStatsCarryJobCounters) {
  ServerStatsResult s;
  s.jobs_submitted = 1;
  s.jobs_deduped = 2;
  s.jobs_done = 3;
  s.jobs_failed = 4;
  s.jobs_cancelled = 5;
  s.jobs_executions = 6;
  s.jobs_recovered = 7;
  s.jobs_pending = 8;
  auto decoded = DecodeServerStatsResult(EncodeServerStatsResult(s));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->jobs_submitted, 1u);
  EXPECT_EQ(decoded->jobs_deduped, 2u);
  EXPECT_EQ(decoded->jobs_done, 3u);
  EXPECT_EQ(decoded->jobs_failed, 4u);
  EXPECT_EQ(decoded->jobs_cancelled, 5u);
  EXPECT_EQ(decoded->jobs_executions, 6u);
  EXPECT_EQ(decoded->jobs_recovered, 7u);
  EXPECT_EQ(decoded->jobs_pending, 8u);
}

}  // namespace
}  // namespace graphalign
