// Figure 1: assignment methods (NN / SG / MWM / JV) per algorithm, on the
// Arenas stand-in (solid lines in the paper) and a synthetic powerlaw graph
// (dashed lines), with connectivity-preserving one-way noise 0-5% (§6.2).
//
// Expected shape: JV/MWM >= SG >= NN for every algorithm, with the largest
// JV gains for GWL, IsoRank, and NSD.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "datasets/datasets.h"
#include "graph/generators.h"

namespace graphalign {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  bench::Banner("Figure 1",
                "assignment methods per algorithm (accuracy, one-way noise)",
                args);
  const int reps = args.repetitions > 0 ? args.repetitions : (args.full ? 5 : 1);
  const double scale = args.full ? 1.0 : 0.15;

  // The two benchmark graphs of §6.2.
  Rng rng(args.seed);
  auto arenas = MakeStandIn("Arenas", args.seed, scale);
  GA_CHECK(arenas.ok());
  const int pl_n = args.full ? 1133 : 170;
  auto powerlaw = PowerlawCluster(pl_n, 5, 0.5, &rng);
  GA_CHECK(powerlaw.ok());

  const AssignmentMethod methods[] = {
      AssignmentMethod::kNearestNeighbor, AssignmentMethod::kSortGreedy,
      AssignmentMethod::kHungarian, AssignmentMethod::kJonkerVolgenant};

  Journal journal = bench::MustOpenJournal(args);
  Table t({"graph", "algorithm", "assignment", "noise", "accuracy"});
  struct Dataset {
    const char* label;
    const Graph* graph;
  };
  const Dataset datasets[] = {{"Arenas", &*arenas}, {"PL", &*powerlaw}};
  for (const Dataset& ds : datasets) {
    for (const std::string& name : SelectedAlgorithms(args)) {
      auto aligner = bench::MakeBenchAligner(name, /*sparse_graph=*/true);
      for (AssignmentMethod method : methods) {
        // MWM is only reported for LREA in the paper (it matches JV
        // elsewhere); we keep the same economy in smoke mode.
        if (!args.full && method == AssignmentMethod::kHungarian &&
            name != "LREA") {
          continue;
        }
        for (double level : bench::LowNoiseLevels(args.full)) {
          NoiseOptions noise;
          noise.level = level;
          noise.keep_connected = true;  // §6.2 keeps graphs connected.
          bench::JournaledRow(
              &t, &journal,
              bench::CellKey({ds.label, name, AssignmentMethodName(method),
                              Table::Num(level, 2)}),
              [&] {
                RunOutcome out = RunAveraged(
                    aligner.get(), *ds.graph, noise, method, reps,
                    args.seed + static_cast<uint64_t>(level * 100), args);
                return std::vector<std::string>{
                    ds.label, name, AssignmentMethodName(method),
                    Table::Num(level, 2), FormatAccuracy(out)};
              });
        }
      }
    }
  }
  bench::Emit(t, args);
  return 0;
}

}  // namespace
}  // namespace graphalign

int main(int argc, char** argv) { return graphalign::Main(argc, argv); }
