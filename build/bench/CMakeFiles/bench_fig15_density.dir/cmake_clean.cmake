file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_density.dir/bench_fig15_density.cc.o"
  "CMakeFiles/bench_fig15_density.dir/bench_fig15_density.cc.o.d"
  "bench_fig15_density"
  "bench_fig15_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
