// Shared implementation for the scalability experiments (Figs 11-14):
// configuration-model graphs with normal degree distribution, sweeping node
// count or average degree; runtime EXCLUDES the assignment step (§6.6), and
// memory is the per-run peak RSS measured in a forked child.
//
// An algorithm that exceeds the time budget at one sweep point is marked DNF
// and skipped for all larger points, mirroring the paper's 3-hour cutoff.
#ifndef GRAPHALIGN_BENCH_SCALABILITY_H_
#define GRAPHALIGN_BENCH_SCALABILITY_H_

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "noise/noise.h"

namespace graphalign {
namespace bench {

struct SweepPoint {
  std::string label;
  int n;
  double avg_degree;
};

// Builds the workload pair: a configuration-model graph and a permuted copy
// (the scalability experiments measure runtime, not accuracy).
inline AlignmentProblem MakeScalabilityProblem(int n, double avg_degree,
                                               Rng* rng) {
  std::vector<int> degrees =
      NormalDegreeSequence(n, avg_degree, avg_degree / 4.0, rng);
  auto base = ConfigurationModel(degrees, rng);
  GA_CHECK(base.ok());
  NoiseOptions noise;
  noise.level = 0.0;
  auto problem = MakeAlignmentProblem(*base, noise, rng);
  GA_CHECK(problem.ok());
  return *std::move(problem);
}

enum class SweepMetric { kTime, kMemory };

inline int RunScalabilitySweep(const std::string& figure_id,
                               const std::string& what,
                               const std::vector<SweepPoint>& points,
                               SweepMetric metric, int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  Banner(figure_id, what, args);
  const int reps = args.repetitions > 0 ? args.repetitions : (args.full ? 5 : 1);
  // GRAAL is excluded from the scalability study (quintic preprocessing,
  // §6.6) unless explicitly requested.
  std::vector<std::string> algorithms;
  for (const std::string& name : SelectedAlgorithms(args)) {
    if (name == "GRAAL" && args.algorithms.empty()) continue;
    algorithms.push_back(name);
  }

  Journal journal = MustOpenJournal(args);
  Table t({"point", "n", "avg_deg", "algorithm",
           metric == SweepMetric::kTime ? "similarity_s" : "peak_mem_mb"});
  std::set<std::string> dnf;
  for (const SweepPoint& point : points) {
    Rng rng(args.seed);
    AlignmentProblem problem =
        MakeScalabilityProblem(point.n, point.avg_degree, &rng);
    for (const std::string& name : algorithms) {
      // Computes the metric cell; crashes/OOM kills are contained per cell
      // when isolation is on (the default for --full) and rendered as
      // CRASH/OOM alongside the DNF semantics of the time budget.
      auto compute_cell = [&]() -> std::string {
        if (dnf.count(name) > 0) return "DNF";
        if (metric == SweepMetric::kTime) {
          RunOutcome out = RunContained(args, [&] {
            auto aligner = MakeBenchAligner(name, point.avg_degree < 20.0);
            const Deadline deadline =
                Deadline::AfterSeconds(args.time_limit_seconds);
            RunOutcome one;
            double total = 0.0;
            for (int r = 0; r < reps; ++r) {
              WallTimer timer;
              auto sim =
                  aligner->ComputeSimilarity(problem.g1, problem.g2, deadline);
              const double secs = timer.Seconds();
              if (!sim.ok()) {
                one.error =
                    sim.status().code() == StatusCode::kDeadlineExceeded
                        ? "DNF (time limit)"
                        : sim.status().ToString();
                return one;
              }
              if (secs > args.time_limit_seconds) {
                one.error = "DNF (time limit)";
                return one;
              }
              total += secs;
            }
            one.completed = true;
            one.completed_runs = reps;
            one.similarity_seconds = total / reps;
            return one;
          });
          // An over-budget point disqualifies the algorithm for all larger
          // points, mirroring the paper's cutoff.
          if (!out.completed && out.error.rfind("DNF", 0) == 0) {
            dnf.insert(name);
          }
          return FormatOutcome(out, out.similarity_seconds);
        }
        RunOutcome out = MeasurePeakMemory(args, [&] {
          auto aligner = MakeBenchAligner(name, point.avg_degree < 20.0);
          auto sim = aligner->ComputeSimilarity(problem.g1, problem.g2);
          (void)sim;
        });
        if (!out.completed) return FormatOutcome(out, 0.0);
        return Table::Num(out.peak_mem_mb, 1);
      };
      const std::string key = CellKey({point.label, name});
      if (const std::vector<std::string>* cached = journal.Row(key)) {
        // Keep the DNF skip-set consistent on resume, so an algorithm that
        // already timed out is not re-run at larger points.
        if (!cached->empty() && cached->back() == "DNF") dnf.insert(name);
        t.AddRow(*cached);
        continue;
      }
      const std::vector<std::string> cells = {
          point.label, std::to_string(point.n), Table::Num(point.avg_degree, 1),
          name, compute_cell()};
      Status recorded = journal.Record(key, cells);
      if (!recorded.ok()) {
        std::fprintf(stderr, "journal: %s\n", recorded.ToString().c_str());
      }
      t.AddRow(cells);
    }
  }
  Emit(t, args);
  return 0;
}

// Node-count sweep points (Figs 11/13): 2^10..2^16 at paper scale.
inline std::vector<SweepPoint> NodeSweep(bool full) {
  std::vector<SweepPoint> points;
  const int lo = full ? 10 : 7;
  const int hi = full ? 16 : 9;
  for (int p = lo; p <= hi; ++p) {
    points.push_back({"2^" + std::to_string(p), 1 << p, 10.0});
  }
  return points;
}

// Degree sweep points (Figs 12/14): degree 10..10^4 at n = 2^14.
inline std::vector<SweepPoint> DegreeSweep(bool full) {
  const int n = full ? (1 << 14) : (1 << 9);
  std::vector<SweepPoint> points;
  const std::vector<double> degrees =
      full ? std::vector<double>{10, 100, 1000, 10000}
           : std::vector<double>{10, 50, 100};
  for (double d : degrees) {
    points.push_back({"deg" + std::to_string(static_cast<int>(d)), n, d});
  }
  return points;
}

}  // namespace bench
}  // namespace graphalign

#endif  // GRAPHALIGN_BENCH_SCALABILITY_H_
