file(REMOVE_RECURSE
  "libga_datasets.a"
)
