#include "server/cache.h"

namespace graphalign {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void MixBytes(uint64_t* h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

}  // namespace

ResultCache::ResultCache(int64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

uint64_t ResultCache::Key(uint64_t g1_hash, uint64_t g2_hash,
                          const std::string& algo,
                          const std::string& assign) {
  uint64_t h = kFnvOffset;
  MixBytes(&h, &g1_hash, sizeof(g1_hash));
  MixBytes(&h, &g2_hash, sizeof(g2_hash));
  // Length-prefix the strings so ("ab","c") and ("a","bc") differ.
  const uint64_t algo_len = algo.size();
  MixBytes(&h, &algo_len, sizeof(algo_len));
  MixBytes(&h, algo.data(), algo.size());
  const uint64_t assign_len = assign.size();
  MixBytes(&h, &assign_len, sizeof(assign_len));
  MixBytes(&h, assign.data(), assign.size());
  return h;
}

bool ResultCache::Get(uint64_t key, std::string* value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *value = it->second->value;
  ++hits_;
  return true;
}

void ResultCache::Put(uint64_t key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int64_t>(value.size()) > capacity_bytes_) return;
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= static_cast<int64_t>(it->second->value.size());
    bytes_ += static_cast<int64_t>(value.size());
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    bytes_ += static_cast<int64_t>(value.size());
    lru_.push_front(Entry{key, std::move(value)});
    index_[key] = lru_.begin();
  }
  EvictToFitLocked();
}

void ResultCache::EvictToFitLocked() {
  while (bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= static_cast<int64_t>(victim.value.size());
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

std::vector<std::pair<uint64_t, std::string>> ResultCache::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<uint64_t, std::string>> out;
  out.reserve(lru_.size());
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    out.emplace_back(it->key, it->value);
  }
  return out;
}

ResultCache::Stats ResultCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.entries = lru_.size();
  stats.bytes = static_cast<uint64_t>(bytes_);
  stats.capacity_bytes = static_cast<uint64_t>(capacity_bytes_);
  return stats;
}

}  // namespace graphalign
