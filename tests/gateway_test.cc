// Tests for the HTTP/JSON gateway (DESIGN.md §16): the hand-rolled HTTP
// parser (table-driven over hostile inputs), the strict JSON codec, the
// pinned ResponseCode→HTTP status mapping, the kAlignBatch execution path
// (amortized graph resolution, partial outcomes), and an end-to-end
// gateway+daemon pair exercised over real TCP sockets — every route, every
// error mapping, oversize/slowloris/overload hardening, and concurrent
// clients.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/exit_codes.h"
#include "common/failpoint.h"
#include "common/status.h"
#include "common/subprocess.h"
#include "gateway/gateway.h"
#include "gateway/http.h"
#include "gateway/json.h"
#include "graph/graph.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "store/graph_store.h"

namespace graphalign {
namespace {

// ---------------------------------------------------------------------------
// HTTP parser: every byte sequence maps to a typed outcome.

struct HttpCase {
  const char* name;
  std::string input;
  HttpParseStatus want;
};

TEST(HttpParserTest, TableOfHostileInputs) {
  const HttpLimits limits;
  const HttpCase cases[] = {
      {"empty", "", HttpParseStatus::kIncomplete},
      {"partial request line", "GET /heal", HttpParseStatus::kIncomplete},
      {"head without blank line", "GET / HTTP/1.1\r\nHost: x\r\n",
       HttpParseStatus::kIncomplete},
      {"minimal GET", "GET /healthz HTTP/1.1\r\n\r\n",
       HttpParseStatus::kComplete},
      {"http 1.0", "GET / HTTP/1.0\r\n\r\n", HttpParseStatus::kComplete},
      {"unsupported version", "GET / HTTP/2.0\r\n\r\n", HttpParseStatus::kBad},
      {"one space", "GET/ HTTP/1.1\r\n\r\n", HttpParseStatus::kBad},
      {"three spaces", "GET / x HTTP/1.1\r\n\r\n", HttpParseStatus::kBad},
      {"empty method", " / HTTP/1.1\r\n\r\n", HttpParseStatus::kBad},
      {"method with ctl", "G\x01T / HTTP/1.1\r\n\r\n", HttpParseStatus::kBad},
      {"absolute-form target", "GET http://x/ HTTP/1.1\r\n\r\n",
       HttpParseStatus::kBad},
      {"control byte in target", "GET /a\tb HTTP/1.1\r\n\r\n",
       HttpParseStatus::kBad},
      {"header without colon", "GET / HTTP/1.1\r\nHostx\r\n\r\n",
       HttpParseStatus::kBad},
      {"empty header name", "GET / HTTP/1.1\r\n: v\r\n\r\n",
       HttpParseStatus::kBad},
      // Space before the colon is the classic request-smuggling shape.
      {"space in header name", "GET / HTTP/1.1\r\nHost : x\r\n\r\n",
       HttpParseStatus::kBad},
      {"transfer-encoding",
       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
       HttpParseStatus::kUnsupported},
      {"bad content-length", "POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n",
       HttpParseStatus::kBad},
      {"negative content-length",
       "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", HttpParseStatus::kBad},
      {"conflicting content-lengths",
       "POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\nx",
       HttpParseStatus::kBad},
      {"duplicate equal content-lengths",
       "POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 1\r\n\r\nx",
       HttpParseStatus::kComplete},
      {"body not yet arrived", "POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab",
       HttpParseStatus::kIncomplete},
      {"body complete", "POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello",
       HttpParseStatus::kComplete},
      {"declared body over cap",
       "POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n",
       HttpParseStatus::kBodyTooLarge},
      {"huge content-length",
       "POST / HTTP/1.1\r\nContent-Length: 18446744073709551615\r\n\r\n",
       HttpParseStatus::kBad},
  };
  for (const HttpCase& c : cases) {
    HttpRequest request;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(ParseHttpRequest(c.input, limits, &request, &consumed, &error),
              c.want)
        << c.name << " error=" << error;
  }
}

TEST(HttpParserTest, HeadFloodIsRejectedAtTheCap) {
  // A drip of headers with no terminating blank line must flip from
  // kIncomplete to kTooLarge the moment the cap is crossed — the parser
  // never asks the caller to buffer an unbounded head.
  HttpLimits limits;
  limits.max_head_bytes = 256;
  std::string flood = "GET / HTTP/1.1\r\n";
  HttpRequest request;
  size_t consumed = 0;
  std::string error;
  while (flood.size() <= limits.max_head_bytes) {
    EXPECT_EQ(ParseHttpRequest(flood, limits, &request, &consumed, &error),
              HttpParseStatus::kIncomplete);
    flood += "X-Pad: yyyyyyyyyyyyyyyy\r\n";
  }
  EXPECT_EQ(ParseHttpRequest(flood, limits, &request, &consumed, &error),
            HttpParseStatus::kTooLarge);
  // Same cap when the terminator did arrive but the head is oversized.
  flood += "\r\n";
  EXPECT_EQ(ParseHttpRequest(flood, limits, &request, &consumed, &error),
            HttpParseStatus::kTooLarge);
}

TEST(HttpParserTest, TooManyHeaders) {
  HttpLimits limits;
  limits.max_headers = 4;
  std::string req = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 5; ++i) req += "H" + std::to_string(i) + ": v\r\n";
  req += "\r\n";
  HttpRequest request;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ParseHttpRequest(req, limits, &request, &consumed, &error),
            HttpParseStatus::kTooLarge);
}

TEST(HttpParserTest, ParsesFieldsAndConsumesExactly) {
  const std::string raw =
      "POST /v1/align HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type:  application/json \r\n"
      "Content-Length: 4\r\n"
      "\r\n"
      "bodyNEXT";
  HttpRequest request;
  size_t consumed = 0;
  std::string error;
  const HttpLimits limits;
  ASSERT_EQ(ParseHttpRequest(raw, limits, &request, &consumed, &error),
            HttpParseStatus::kComplete);
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/v1/align");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_EQ(request.Header("host"), "localhost");
  EXPECT_EQ(request.Header("content-type"), "application/json");
  EXPECT_EQ(request.body, "body");
  EXPECT_EQ(consumed, raw.size() - 4);  // "NEXT" belongs to the next request.
  EXPECT_TRUE(request.KeepAlive());
}

TEST(HttpParserTest, KeepAliveSemantics) {
  const HttpLimits limits;
  HttpRequest request;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ParseHttpRequest("GET / HTTP/1.1\r\nConnection: close\r\n\r\n",
                             limits, &request, &consumed, &error),
            HttpParseStatus::kComplete);
  EXPECT_FALSE(request.KeepAlive());
  ASSERT_EQ(ParseHttpRequest("GET / HTTP/1.0\r\n\r\n", limits, &request,
                             &consumed, &error),
            HttpParseStatus::kComplete);
  EXPECT_FALSE(request.KeepAlive());
  ASSERT_EQ(ParseHttpRequest("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
                             limits, &request, &consumed, &error),
            HttpParseStatus::kComplete);
  EXPECT_TRUE(request.KeepAlive());
}

TEST(HttpParserTest, RandomBlobsAreTyped) {
  // Cheap in-binary fuzz (the ASan pass re-covers this via
  // protocol_fuzz_test): random bytes must never crash the parser.
  uint64_t state = 0x687474705f66757aull;  // "http_fuz"
  auto next = [&state] {
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    return z ^ (z >> 31);
  };
  const HttpLimits limits;
  for (int iter = 0; iter < 2000; ++iter) {
    std::string blob;
    const size_t len = next() % 200;
    for (size_t i = 0; i < len; ++i) {
      blob.push_back(static_cast<char>(next() & 0xff));
    }
    if (next() % 2 == 0) blob = "GET / HTTP/1.1\r\n" + blob;
    HttpRequest request;
    size_t consumed = 0;
    std::string error;
    (void)ParseHttpRequest(blob, limits, &request, &consumed, &error);
  }
}

TEST(HttpResponseTest, EncodesFraming) {
  const std::string resp = EncodeHttpResponse(404, "application/json",
                                              "{\"a\":1}", false);
  EXPECT_EQ(resp.rfind("HTTP/1.1 404 Not Found\r\n", 0), 0u);
  EXPECT_NE(resp.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(resp.substr(resp.size() - 7), "{\"a\":1}");
  const std::string keep = EncodeHttpResponse(200, "text/plain", "ok", true);
  EXPECT_EQ(keep.find("Connection: close"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSON codec.

TEST(JsonTest, ParsesAndDumpsRoundTrip) {
  auto v = ParseJson(
      R"({"algo":"NSD","n":3,"edges":[[0,1],[1,2]],"flag":true,"null":null,)"
      R"("f":-2.5})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->Get("algo").AsString(), "NSD");
  EXPECT_EQ(v->Get("edges").AsArray().size(), 2u);
  EXPECT_TRUE(v->Get("flag").AsBool());
  EXPECT_TRUE(v->Get("null").is_null());
  EXPECT_TRUE(v->Has("null"));
  EXPECT_FALSE(v->Has("absent"));
  EXPECT_TRUE(v->Get("absent").is_null());
  EXPECT_EQ(v->Get("f").AsNumber(), -2.5);
  auto again = ParseJson(v->Dump());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->Dump(), v->Dump());
}

TEST(JsonTest, StringEscapes) {
  auto v = ParseJson(R"(["a\"b\\c\n\t\u0041\u00e9"])");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->AsArray()[0].AsString(), "a\"b\\c\n\tA\xc3\xa9");
  EXPECT_EQ(JsonEscape("a\"b\\c\n\x01"), "a\\\"b\\\\c\\n\\u0001");
}

TEST(JsonTest, RejectionsAreTyped) {
  const char* bad[] = {
      "",           "{",           "[1,]",       "{\"a\":}",  "tru",
      "01",         "1.",          "\"\\x\"",    "\"",        "[1] trailing",
      "{\"a\" 1}",  "nan",         "infinity",   "+1",        "1e999",
  };
  for (const char* text : bad) {
    auto v = ParseJson(text);
    EXPECT_FALSE(v.ok()) << "'" << text << "' parsed";
    if (!v.ok()) {
      EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(JsonTest, DepthCapHolds) {
  std::string deep(kMaxJsonDepth + 8, '[');
  EXPECT_FALSE(ParseJson(deep).ok());
  std::string nested;
  for (size_t i = 0; i < kMaxJsonDepth + 8; ++i) nested += "{\"a\":";
  EXPECT_FALSE(ParseJson(nested).ok());
  // At the cap it still parses.
  std::string ok_depth(kMaxJsonDepth - 1, '[');
  ok_depth += std::string(kMaxJsonDepth - 1, ']');
  EXPECT_TRUE(ParseJson(ok_depth).ok());
}

TEST(JsonTest, AsInt64EnforcesIntegralityAndRange) {
  int64_t out = 0;
  EXPECT_TRUE(JsonValue::Number(42).AsInt64(&out, 0, 100));
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(JsonValue::Number(42.5).AsInt64(&out, 0, 100));
  EXPECT_FALSE(JsonValue::Number(101).AsInt64(&out, 0, 100));
  EXPECT_FALSE(JsonValue::Number(-1).AsInt64(&out, 0, 100));
  EXPECT_FALSE(JsonValue::Str("42").AsInt64(&out, 0, 100));
}

// ---------------------------------------------------------------------------
// The pinned status mapping.

TEST(StatusMappingTest, EveryResponseCodeMapsToItsPinnedStatus) {
  EXPECT_EQ(HttpStatusForResponseCode(ResponseCode::kOk), 200);
  EXPECT_EQ(HttpStatusForResponseCode(ResponseCode::kAccepted), 202);
  EXPECT_EQ(HttpStatusForResponseCode(ResponseCode::kPartial), 207);
  EXPECT_EQ(HttpStatusForResponseCode(ResponseCode::kBadRequest), 400);
  EXPECT_EQ(HttpStatusForResponseCode(ResponseCode::kNoGraph), 404);
  EXPECT_EQ(HttpStatusForResponseCode(ResponseCode::kNoJob), 404);
  EXPECT_EQ(HttpStatusForResponseCode(ResponseCode::kQuarantined), 409);
  EXPECT_EQ(HttpStatusForResponseCode(ResponseCode::kConflict), 409);
  EXPECT_EQ(HttpStatusForResponseCode(ResponseCode::kBusy), 429);
  EXPECT_EQ(HttpStatusForResponseCode(ResponseCode::kShed), 503);
  EXPECT_EQ(HttpStatusForResponseCode(ResponseCode::kShuttingDown), 503);
  EXPECT_EQ(HttpStatusForResponseCode(ResponseCode::kDnf), 504);
  EXPECT_EQ(HttpStatusForResponseCode(ResponseCode::kError), 500);
  EXPECT_EQ(HttpStatusForResponseCode(ResponseCode::kCrash), 500);
  EXPECT_EQ(HttpStatusForResponseCode(ResponseCode::kOom), 500);
  EXPECT_EQ(HttpStatusForResponseCode(ResponseCode::kNumerical), 500);
}

TEST(StatusMappingTest, PartialSharesTheExitCode) {
  EXPECT_EQ(static_cast<int>(ResponseCode::kPartial), kExitPartial);
  EXPECT_STREQ(ResponseCodeName(ResponseCode::kPartial), "PARTIAL");
}

// ---------------------------------------------------------------------------
// Batch codec + request building.

TEST(BatchCodecTest, ResultRoundTrips) {
  AlignBatchResult batch;
  batch.graph_loads = 2;
  BatchJobOutcome ok;
  ok.code = ResponseCode::kOk;
  ok.cache_hit = true;
  AlignResult inner;
  inner.mapping = {1, 0};
  inner.mnc = 0.5;
  ok.body = EncodeAlignResult(inner);
  batch.jobs.push_back(ok);
  BatchJobOutcome failed;
  failed.code = ResponseCode::kDnf;
  failed.message = "deadline exceeded";
  batch.jobs.push_back(failed);
  auto decoded = DecodeAlignBatchResult(EncodeAlignBatchResult(batch));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->graph_loads, 2u);
  ASSERT_EQ(decoded->jobs.size(), 2u);
  EXPECT_EQ(decoded->jobs[0].code, ResponseCode::kOk);
  EXPECT_TRUE(decoded->jobs[0].cache_hit);
  EXPECT_EQ(decoded->jobs[1].code, ResponseCode::kDnf);
  EXPECT_EQ(decoded->jobs[1].message, "deadline exceeded");
  auto inner2 = DecodeAlignResult(decoded->jobs[0].body);
  ASSERT_TRUE(inner2.ok());
  EXPECT_EQ(inner2->mapping, inner.mapping);
}

TEST(BatchCodecTest, RequestRoundTripsAndValidates) {
  Request req;
  req.type = RequestType::kAlignBatch;
  req.client = "batcher";
  BatchGraphRef by_hash;
  by_hash.by_hash = true;
  by_hash.hash = 0x1122334455667788ull;
  req.align_batch.graphs.push_back(by_hash);
  BatchGraphRef inline_ref;
  inline_ref.inline_graph.num_nodes = 3;
  inline_ref.inline_graph.edges = {{0, 1}, {1, 2}};
  req.align_batch.graphs.push_back(inline_ref);
  BatchJob job;
  job.g1 = 0;
  job.g2 = 1;
  job.algo = "NSD";
  req.align_batch.jobs.push_back(job);
  auto decoded = DecodeRequest(EncodeRequest(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->align_batch.graphs.size(), 2u);
  EXPECT_TRUE(decoded->align_batch.graphs[0].by_hash);
  EXPECT_EQ(decoded->align_batch.graphs[0].hash, by_hash.hash);
  EXPECT_EQ(decoded->align_batch.graphs[1].inline_graph.edges.size(), 2u);
  ASSERT_EQ(decoded->align_batch.jobs.size(), 1u);
  EXPECT_EQ(decoded->align_batch.jobs[0].algo, "NSD");

  // A job referencing a graph outside the table must not decode.
  req.align_batch.jobs[0].g2 = 7;
  EXPECT_FALSE(DecodeRequest(EncodeRequest(req)).ok());
}

TEST(BatchCodecTest, JsonSchemaBuildsTheSameRequest) {
  auto doc = ParseJson(
      R"({"graphs":[{"hash":"1122334455667788"},{"n":3,"edges":[[0,1],[1,2]]}],)"
      R"("jobs":[{"g1":0,"g2":1,"algo":"NSD","deadline_ms":250,)"
      R"("no_cache":true}],"client":"batcher"})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  Request req;
  Status built = BatchRequestFromJson(*doc, &req);
  ASSERT_TRUE(built.ok()) << built.ToString();
  EXPECT_EQ(req.type, RequestType::kAlignBatch);
  EXPECT_EQ(req.client, "batcher");
  ASSERT_EQ(req.align_batch.graphs.size(), 2u);
  EXPECT_TRUE(req.align_batch.graphs[0].by_hash);
  EXPECT_EQ(req.align_batch.graphs[0].hash, 0x1122334455667788ull);
  ASSERT_EQ(req.align_batch.jobs.size(), 1u);
  EXPECT_EQ(req.align_batch.jobs[0].deadline_ms, 250u);
  EXPECT_TRUE(req.align_batch.jobs[0].no_cache);

  // Violations are named: job index out of range, missing algo, bad hash.
  for (const char* bad : {
           R"({"graphs":[{"n":2,"edges":[]}],"jobs":[{"g1":0,"g2":5,"algo":"NSD"}]})",
           R"({"graphs":[{"n":2,"edges":[]}],"jobs":[{"g1":0,"g2":0}]})",
           R"({"graphs":[{"hash":"xyz"}],"jobs":[{"g1":0,"g2":0,"algo":"NSD"}]})",
           R"({"graphs":[],"jobs":[{"g1":0,"g2":0,"algo":"NSD"}]})",
           R"({"graphs":[{"n":2,"edges":[]}],"jobs":[]})",
       }) {
    Request r;
    EXPECT_FALSE(BatchRequestFromJson(*ParseJson(bad), &r).ok()) << bad;
  }
}

// ---------------------------------------------------------------------------
// End-to-end: daemon + gateway over real sockets.

std::string TempPath(const char* tag) {
  return "/tmp/ga_gw_" + std::string(tag) + "_" + std::to_string(getpid());
}

Graph MustGraph(int n, const std::vector<Edge>& edges) {
  auto g = Graph::FromEdges(n, edges);
  GA_CHECK(g.ok());
  return *std::move(g);
}

// Blocking HTTP exchange: connect, send raw bytes, read to EOF, split the
// status code and body out of the response.
struct HttpReply {
  bool ok = false;
  int status = 0;
  std::string raw;
  std::string body;
};

int ConnectTcp(int port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return -1;
  }
  return fd;
}

HttpReply ReadReply(int fd) {
  HttpReply reply;
  char chunk[4096];
  for (;;) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    reply.raw.append(chunk, static_cast<size_t>(n));
  }
  if (reply.raw.rfind("HTTP/1.1 ", 0) == 0 && reply.raw.size() >= 12) {
    reply.status = std::atoi(reply.raw.c_str() + 9);
    reply.ok = true;
  }
  const size_t body = reply.raw.find("\r\n\r\n");
  if (body != std::string::npos) reply.body = reply.raw.substr(body + 4);
  return reply;
}

HttpReply DoRaw(int port, const std::string& bytes) {
  HttpReply reply;
  const int fd = ConnectTcp(port);
  if (fd < 0) return reply;
  (void)send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  shutdown(fd, SHUT_WR);
  reply = ReadReply(fd);
  close(fd);
  return reply;
}

HttpReply Get(int port, const std::string& path) {
  return DoRaw(port, "GET " + path + " HTTP/1.1\r\nHost: t\r\n"
                     "Connection: close\r\n\r\n");
}

HttpReply Post(int port, const std::string& path, const std::string& body) {
  return DoRaw(port, "POST " + path + " HTTP/1.1\r\nHost: t\r\n"
                     "Content-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n" + body);
}

class GatewayFixture : public ::testing::Test {
 protected:
  void StartDaemon(ServerOptions options) {
    if (options.socket_path.empty()) {
      options.socket_path = TempPath("sock");
    }
    socket_path_ = options.socket_path;
    auto server = Server::Create(options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = *std::move(server);
    ASSERT_TRUE(server_->Start().ok());
  }

  void StartGateway(GatewayOptions options = {}) {
    options.backend.socket_path = socket_path_;
    auto gateway = Gateway::Create(options);
    ASSERT_TRUE(gateway.ok()) << gateway.status().ToString();
    gateway_ = *std::move(gateway);
    ASSERT_TRUE(gateway_->Start().ok());
    ASSERT_GT(gateway_->port(), 0);
  }

  void TearDown() override {
    if (gateway_ != nullptr) {
      gateway_->Shutdown();
      gateway_->Wait();
    }
    if (server_ != nullptr) {
      server_->Shutdown();
      server_->Wait();
    }
    if (!socket_path_.empty()) ::unlink(socket_path_.c_str());
  }

  // The daemon's own counters, fetched over GAF1 like any client would.
  ServerStatsResult DaemonStats() {
    ClientOptions copts;
    copts.socket_path = socket_path_;
    auto client = Client::Connect(copts);
    GA_CHECK(client.ok());
    Request req;
    req.type = RequestType::kServerStats;
    auto resp = client->Call(req);
    GA_CHECK(resp.ok());
    auto stats = DecodeServerStatsResult(resp->body);
    GA_CHECK(stats.ok());
    return *stats;
  }

  int port() const { return gateway_->port(); }

  std::string socket_path_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<Gateway> gateway_;
};

constexpr char kInlineAlignBody[] =
    R"({"algo":"NSD","g1":{"n":4,"edges":[[0,1],[1,2],[2,3]]},)"
    R"("g2":{"n":4,"edges":[[0,1],[1,2],[2,3],[3,0]]}})";

TEST_F(GatewayFixture, HealthzAndRoutingAndErrors) {
  StartDaemon({});
  StartGateway();

  HttpReply reply = Get(port(), "/healthz");
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.body, "ok\n");

  EXPECT_EQ(Get(port(), "/nope").status, 404);
  EXPECT_EQ(Get(port(), "/v1/align").status, 405);  // GET on a POST route.
  EXPECT_EQ(Post(port(), "/healthz", "").status, 405);
  EXPECT_EQ(Post(port(), "/v1/align", "not json").status, 400);
  EXPECT_EQ(Post(port(), "/v1/align", "{}").status, 400);  // No algo.
  EXPECT_EQ(Post(port(), "/v1/align",
                 R"({"algo":"NSD","g1":{"n":2,"edges":[]},)"
                 R"("g2_hash":"0011223344556677"})")
                .status,
            400);  // Mixed inline + hash.
  EXPECT_EQ(DoRaw(port(), "BOGUS\r\n\r\n").status, 400);
  EXPECT_EQ(DoRaw(port(), "POST /v1/align HTTP/1.1\r\n"
                          "Transfer-Encoding: chunked\r\n\r\n")
                .status,
            501);

  const GatewayStats stats = gateway_->stats();
  EXPECT_GE(stats.requests, 9u);
  EXPECT_GE(stats.bad_requests, 5u);
}

TEST_F(GatewayFixture, AlignInlineMatchesDirectSubmit) {
  StartDaemon({});
  StartGateway();

  HttpReply reply = Post(port(), "/v1/align", kInlineAlignBody);
  ASSERT_EQ(reply.status, 200) << reply.raw;
  auto body = ParseJson(reply.body);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_EQ(body->Get("status").AsString(), "OK");
  ASSERT_EQ(body->Get("mapping").AsArray().size(), 4u);

  // The identical job over GAF1 must produce the identical mapping (the
  // smoke script re-proves this byte-for-byte against the CLI).
  ClientOptions copts;
  copts.socket_path = socket_path_;
  auto client = Client::Connect(copts);
  ASSERT_TRUE(client.ok());
  Request req;
  req.type = RequestType::kAlign;
  req.align.algo = "NSD";
  req.align.g1 = ToWire(MustGraph(4, {{0, 1}, {1, 2}, {2, 3}}));
  req.align.g2 = ToWire(MustGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}));
  auto resp = client->Call(req);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->code, ResponseCode::kOk);
  auto direct = DecodeAlignResult(resp->body);
  ASSERT_TRUE(direct.ok());
  for (size_t i = 0; i < direct->mapping.size(); ++i) {
    int64_t via_http = -2;
    ASSERT_TRUE(body->Get("mapping").AsArray()[i].AsInt64(&via_http, -1,
                                                          1 << 20));
    EXPECT_EQ(via_http, direct->mapping[i]) << "node " << i;
  }

  // Unknown aligner: the daemon's typed ERROR surfaces as 500 with the
  // code name in the JSON body.
  reply = Post(port(), "/v1/align",
               R"({"algo":"BOGUS","g1":{"n":2,"edges":[[0,1]]},)"
               R"("g2":{"n":2,"edges":[[0,1]]}})");
  EXPECT_EQ(reply.status, 500);
  auto err_body = ParseJson(reply.body);
  ASSERT_TRUE(err_body.ok());
  EXPECT_EQ(err_body->Get("status").AsString(), "ERROR");
}

TEST_F(GatewayFixture, GraphStoreRoutesAndAlignByHash) {
  ServerOptions sopts;
  sopts.store_dir = TempPath("store");
  StartDaemon(sopts);
  StartGateway();

  HttpReply put = Post(port(), "/v1/graphs",
                       R"({"n":4,"edges":[[0,1],[1,2],[2,3]]})");
  ASSERT_EQ(put.status, 200) << put.raw;
  auto put_body = ParseJson(put.body);
  ASSERT_TRUE(put_body.ok());
  const std::string h1 = put_body->Get("hash").AsString();
  ASSERT_EQ(h1.size(), 16u);

  HttpReply put2 = Post(port(), "/v1/graphs",
                        R"({"n":4,"edges":[[0,1],[1,2],[2,3],[3,0]]})");
  ASSERT_EQ(put2.status, 200);
  const std::string h2 = ParseJson(put2.body)->Get("hash").AsString();

  EXPECT_EQ(Get(port(), "/v1/graphs/" + h1).status, 200);
  EXPECT_EQ(Get(port(), "/v1/graphs/0000000000000000").status, 404);
  EXPECT_EQ(Get(port(), "/v1/graphs/zz").status, 400);  // Not a hash.

  HttpReply align = Post(port(), "/v1/align",
                         R"({"algo":"NSD","g1_hash":")" + h1 +
                             R"(","g2_hash":")" + h2 + R"("})");
  ASSERT_EQ(align.status, 200) << align.raw;
  EXPECT_EQ(ParseJson(align.body)->Get("mapping").AsArray().size(), 4u);

  // A hash the store never held: NO_GRAPH → 404, name in the body.
  HttpReply missing = Post(port(), "/v1/align",
                           R"({"algo":"NSD","g1_hash":"00000000000000ff",)"
                           R"("g2_hash":")" + h2 + R"("})");
  EXPECT_EQ(missing.status, 404);
  EXPECT_EQ(ParseJson(missing.body)->Get("status").AsString(), "NO_GRAPH");
}

TEST_F(GatewayFixture, BatchAmortizesGraphLoads) {
  ServerOptions sopts;
  sopts.store_dir = TempPath("batchstore");
  StartDaemon(sopts);
  StartGateway();

  const std::string h1 =
      ParseJson(Post(port(), "/v1/graphs",
                     R"({"n":5,"edges":[[0,1],[1,2],[2,3],[3,4]]})")
                    .body)
          ->Get("hash")
          .AsString();
  const std::string h2 =
      ParseJson(Post(port(), "/v1/graphs",
                     R"({"n":5,"edges":[[0,1],[1,2],[2,3],[3,4],[4,0]]})")
                    .body)
          ->Get("hash")
          .AsString();

  const uint64_t gets_before = DaemonStats().store_gets;

  // K=5 no_cache jobs over two store graphs: every job executes, yet the
  // graph table resolves each hash exactly once — the acceptance criterion
  // (≤ 2 opens for the whole batch, not 2K).
  std::string jobs;
  for (int i = 0; i < 5; ++i) {
    if (i > 0) jobs += ",";
    jobs += R"({"g1":0,"g2":1,"algo":"NSD","no_cache":true})";
  }
  HttpReply reply = Post(port(), "/v1/align:batch",
                         R"({"graphs":[{"hash":")" + h1 + R"("},{"hash":")" +
                             h2 + R"("}],"jobs":[)" + jobs + "]}");
  ASSERT_EQ(reply.status, 200) << reply.raw;
  auto body = ParseJson(reply.body);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  int64_t loads = -1;
  ASSERT_TRUE(body->Get("graph_loads").AsInt64(&loads, 0, 1000));
  EXPECT_EQ(loads, 2);
  ASSERT_EQ(body->Get("jobs").AsArray().size(), 5u);
  for (const JsonValue& job : body->Get("jobs").AsArray()) {
    EXPECT_EQ(job.Get("status").AsString(), "OK");
    EXPECT_EQ(job.Get("mapping").AsArray().size(), 5u);
  }

  const ServerStatsResult after = DaemonStats();
  EXPECT_EQ(after.store_gets - gets_before, 2u);
  EXPECT_GE(after.batches, 1u);
  EXPECT_GE(after.batch_jobs, 5u);
  EXPECT_EQ(after.batch_graph_loads, 2u);

  // Same batch with caching on: the first pass executes once and populates
  // the cache (2 more loads), the second is answered entirely from the
  // cache — an all-cached batch never touches the graph table at all.
  jobs.clear();
  for (int i = 0; i < 5; ++i) {
    if (i > 0) jobs += ",";
    jobs += R"({"g1":0,"g2":1,"algo":"NSD"})";
  }
  const std::string cached_batch = R"({"graphs":[{"hash":")" + h1 +
                                   R"("},{"hash":")" + h2 +
                                   R"("}],"jobs":[)" + jobs + "]}";
  reply = Post(port(), "/v1/align:batch", cached_batch);
  ASSERT_EQ(reply.status, 200) << reply.raw;
  reply = Post(port(), "/v1/align:batch", cached_batch);
  ASSERT_EQ(reply.status, 200) << reply.raw;
  body = ParseJson(reply.body);
  ASSERT_TRUE(body->Get("graph_loads").AsInt64(&loads, 0, 1000));
  EXPECT_EQ(loads, 0);
  for (const JsonValue& job : body->Get("jobs").AsArray()) {
    EXPECT_TRUE(job.Get("cache_hit").AsBool());
  }
  EXPECT_EQ(DaemonStats().store_gets - gets_before, 4u);
}

TEST_F(GatewayFixture, BatchPartialAndUniformFailures) {
  StartDaemon({});
  StartGateway();

  // Mixed outcomes: top-level 207 PARTIAL, per-job codes preserved.
  HttpReply reply = Post(
      port(), "/v1/align:batch",
      R"({"graphs":[{"n":3,"edges":[[0,1],[1,2]]}],)"
      R"("jobs":[{"g1":0,"g2":0,"algo":"NSD"},{"g1":0,"g2":0,"algo":"BOGUS"}]})");
  ASSERT_EQ(reply.status, 207) << reply.raw;
  auto body = ParseJson(reply.body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->Get("status").AsString(), "PARTIAL");
  ASSERT_EQ(body->Get("jobs").AsArray().size(), 2u);
  EXPECT_EQ(body->Get("jobs").AsArray()[0].Get("status").AsString(), "OK");
  EXPECT_EQ(body->Get("jobs").AsArray()[1].Get("status").AsString(), "ERROR");

  // Uniform failure: the shared code surfaces at the top (500 here), so
  // retry classification still works on whole batches.
  reply = Post(
      port(), "/v1/align:batch",
      R"({"graphs":[{"n":3,"edges":[[0,1],[1,2]]}],)"
      R"("jobs":[{"g1":0,"g2":0,"algo":"BOGUS"},{"g1":0,"g2":0,"algo":"NOPE"}]})");
  ASSERT_EQ(reply.status, 500) << reply.raw;
  body = ParseJson(reply.body);
  EXPECT_EQ(body->Get("status").AsString(), "ERROR");
  ASSERT_EQ(body->Get("jobs").AsArray().size(), 2u);
}

TEST_F(GatewayFixture, OversizeBodyAnswers413BeforeBuffering) {
  StartDaemon({});
  GatewayOptions gopts;
  gopts.limits.max_body_bytes = 1024;
  StartGateway(gopts);

  // Declaring past the cap is refused from the header alone — no body sent.
  HttpReply reply = DoRaw(port(),
                          "POST /v1/align HTTP/1.1\r\nHost: t\r\n"
                          "Content-Length: 1000000\r\n\r\n");
  EXPECT_EQ(reply.status, 413);
  EXPECT_EQ(gateway_->stats().oversized, 1u);

  HttpLimits defaults;
  std::string huge_header =
      "GET /healthz HTTP/1.1\r\nX-Pad: " +
      std::string(defaults.max_head_bytes, 'y') + "\r\n\r\n";
  EXPECT_EQ(DoRaw(port(), huge_header).status, 431);
}

TEST_F(GatewayFixture, SlowRequestAnswers408) {
  StartDaemon({});
  GatewayOptions gopts;
  gopts.io_timeout_seconds = 0.4;
  StartGateway(gopts);

  // Send half a request and stall: the gateway must give up with 408
  // instead of holding the worker forever.
  const int fd = ConnectTcp(port());
  ASSERT_GE(fd, 0);
  const std::string half = "POST /v1/align HTTP/1.1\r\nContent-Le";
  ASSERT_EQ(send(fd, half.data(), half.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(half.size()));
  HttpReply reply = ReadReply(fd);
  close(fd);
  EXPECT_EQ(reply.status, 408) << reply.raw;
  EXPECT_EQ(gateway_->stats().timeouts, 1u);
}

TEST_F(GatewayFixture, ConnectionLimitAnswers503AtAccept) {
  StartDaemon({});
  GatewayOptions gopts;
  gopts.workers = 1;
  gopts.max_connections = 1;
  gopts.io_timeout_seconds = 5.0;
  StartGateway(gopts);

  // Occupy the single slot with a half-sent request, then connect again:
  // the second connection must be turned away with a typed 503 now, not
  // queued behind the stalled one.
  const int held = ConnectTcp(port());
  ASSERT_GE(held, 0);
  const std::string half = "GET /healthz HTT";
  ASSERT_GT(send(held, half.data(), half.size(), MSG_NOSIGNAL), 0);
  // Give the worker a moment to claim the held connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  HttpReply reply = Get(port(), "/healthz");
  EXPECT_EQ(reply.status, 503) << reply.raw;
  auto body = ParseJson(reply.body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->Get("status").AsString(), "BUSY");
  // The accept-time rejection carries the standard backoff hint.
  EXPECT_NE(reply.raw.find("Retry-After:"), std::string::npos) << reply.raw;
  EXPECT_GE(gateway_->stats().rejected_overload, 1u);
  close(held);
}

TEST_F(GatewayFixture, KeepAliveServesSequentialRequests) {
  StartDaemon({});
  StartGateway();

  const int fd = ConnectTcp(port());
  ASSERT_GE(fd, 0);
  const std::string two =
      "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(send(fd, two.data(), two.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(two.size()));
  HttpReply reply = ReadReply(fd);
  close(fd);
  // Both pipelined requests answered on one connection.
  size_t first = reply.raw.find("HTTP/1.1 200");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(reply.raw.find("HTTP/1.1 200", first + 1), std::string::npos);
}

TEST_F(GatewayFixture, StatsReportsBothLayers) {
  StartDaemon({});
  StartGateway();

  ASSERT_EQ(Get(port(), "/healthz").status, 200);
  ASSERT_EQ(Post(port(), "/v1/align", kInlineAlignBody).status, 200);

  HttpReply reply = Get(port(), "/stats");
  ASSERT_EQ(reply.status, 200) << reply.raw;
  auto body = ParseJson(reply.body);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  const JsonValue& gw = body->Get("gateway");
  int64_t v = 0;
  ASSERT_TRUE(gw.Get("requests").AsInt64(&v, 1, 1 << 20));
  const JsonValue& daemon = body->Get("daemon");
  ASSERT_TRUE(daemon.is_object());
  // Forwarded calls carry the HTTP transport tag, so the daemon's
  // per-transport counter moves.
  ASSERT_TRUE(daemon.Get("served_http").AsInt64(&v, 1, 1 << 20));
  ASSERT_TRUE(daemon.Get("served").AsInt64(&v, 1, 1 << 20));
}

TEST_F(GatewayFixture, ConcurrentClientsAllSucceed) {
  StartDaemon({});
  GatewayOptions gopts;
  gopts.workers = 4;
  StartGateway(gopts);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  const int p = port();
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, p, &failures] {
      // The daemon lives in this process and forks per alignment; these
      // client threads only touch sockets, so they register as
      // fork-tolerant exactly like the gateway's own workers.
      ScopedForkTolerantThread fork_tolerant;
      for (int i = 0; i < kPerThread; ++i) {
        HttpReply reply = (t + i) % 2 == 0
                              ? Get(p, "/healthz")
                              : Post(p, "/v1/align", kInlineAlignBody);
        if (reply.status != 200) ++failures[t];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
}

TEST_F(GatewayFixture, GatewayWithDeadBackendAnswers503) {
  // No daemon at all: the gateway stays up and reports the outage as a
  // typed 503, never a hang or a crash.
  socket_path_ = TempPath("deadsock");
  StartGateway();
  HttpReply reply = Get(port(), "/healthz");
  EXPECT_EQ(reply.status, 503);
  EXPECT_GE(gateway_->stats().backend_errors, 1u);
}

// ---------------------------------------------------------------------------
// Async jobs over HTTP (DESIGN.md §17).

HttpReply Delete(int port, const std::string& path) {
  return DoRaw(port, "DELETE " + path + " HTTP/1.1\r\nHost: t\r\n"
                     "Connection: close\r\n\r\n");
}

TEST_F(GatewayFixture, JobRoutesEndToEnd) {
  ServerOptions sopts;
  sopts.jobs_dir = TempPath("jobs");
  StartDaemon(sopts);
  StartGateway();

  // Submit: 202 with the job envelope, job id rendered as 16 hex digits.
  const std::string job_body =
      R"({"idem_key":"e2e-key",)" + std::string(kInlineAlignBody).substr(1);
  HttpReply sub = Post(port(), "/v1/jobs", job_body);
  ASSERT_EQ(sub.status, 202) << sub.raw;
  auto sub_json = ParseJson(sub.body);
  ASSERT_TRUE(sub_json.ok()) << sub.body;
  EXPECT_EQ(sub_json->Get("status").AsString(), "ACCEPTED");
  const std::string id = sub_json->Get("job_id").AsString();
  ASSERT_EQ(id.size(), 16u);

  // Resubmitting the identical content dedupes onto the same job id.
  HttpReply dup = Post(port(), "/v1/jobs", job_body);
  ASSERT_EQ(dup.status, 202) << dup.raw;
  auto dup_json = ParseJson(dup.body);
  ASSERT_TRUE(dup_json.ok());
  EXPECT_EQ(dup_json->Get("job_id").AsString(), id);
  EXPECT_TRUE(dup_json->Get("existing").AsBool());

  // The same key bound to different content is a typed 409 CONFLICT.
  const std::string clashing =
      R"({"idem_key":"e2e-key","algo":"NSD","g1":{"n":2,"edges":[[0,1]]},)"
      R"("g2":{"n":2,"edges":[[0,1]]}})";
  HttpReply clash = Post(port(), "/v1/jobs", clashing);
  EXPECT_EQ(clash.status, 409) << clash.raw;
  EXPECT_EQ(ParseJson(clash.body)->Get("status").AsString(), "CONFLICT");

  // Malformed and unknown ids get their own typed answers.
  EXPECT_EQ(Get(port(), "/v1/jobs/zz").status, 400);
  HttpReply missing = Get(port(), "/v1/jobs/00000000000000ff");
  EXPECT_EQ(missing.status, 404) << missing.raw;
  EXPECT_EQ(ParseJson(missing.body)->Get("status").AsString(), "NO_JOB");

  // Poll the job to DONE; the status answer then embeds the result.
  JsonValue done;
  for (int i = 0; i < 200; ++i) {
    HttpReply poll = Get(port(), "/v1/jobs/" + id);
    ASSERT_TRUE(poll.ok) << poll.raw;
    auto poll_json = ParseJson(poll.body);
    ASSERT_TRUE(poll_json.ok()) << poll.body;
    const std::string state = poll_json->Get("state").AsString();
    ASSERT_NE(state, "FAILED") << poll.body;
    if (state == "DONE") {
      ASSERT_EQ(poll.status, 200);
      done = *poll_json;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_TRUE(done.is_object()) << "job never reached DONE";
  EXPECT_EQ(done.Get("terminal_status").AsString(), "OK");
  // The embedded mapping is the same alignment a synchronous POST
  // /v1/align of the identical body produces.
  ASSERT_EQ(done.Get("result").Get("mapping").AsArray().size(), 4u);
  HttpReply sync = Post(port(), "/v1/align", kInlineAlignBody);
  ASSERT_EQ(sync.status, 200);
  auto sync_json = ParseJson(sync.body);
  ASSERT_TRUE(sync_json.ok());
  for (size_t i = 0; i < 4; ++i) {
    int64_t via_job = -2, via_sync = -3;
    ASSERT_TRUE(done.Get("result").Get("mapping").AsArray()[i].AsInt64(
        &via_job, -1, 1 << 20));
    ASSERT_TRUE(sync_json->Get("mapping").AsArray()[i].AsInt64(&via_sync, -1,
                                                               1 << 20));
    EXPECT_EQ(via_job, via_sync) << "node " << i;
  }

  // Cancelling a finished job is a typed 409; the daemon's job counters
  // are visible through GET /stats.
  HttpReply cancel = Delete(port(), "/v1/jobs/" + id);
  EXPECT_EQ(cancel.status, 409) << cancel.raw;
  HttpReply stats = Get(port(), "/stats");
  ASSERT_EQ(stats.status, 200);
  auto stats_json = ParseJson(stats.body);
  ASSERT_TRUE(stats_json.ok());
  int64_t v = 0;
  ASSERT_TRUE(
      stats_json->Get("daemon").Get("jobs_submitted").AsInt64(&v, 1, 1 << 20));
  ASSERT_TRUE(
      stats_json->Get("daemon").Get("jobs_deduped").AsInt64(&v, 1, 1 << 20));
}

TEST_F(GatewayFixture, CancelAcceptedJobBeforeItRuns) {
  ServerOptions sopts;
  sopts.jobs_dir = TempPath("canceljobs");
  sopts.job_workers = 1;
  StartDaemon(sopts);
  StartGateway();

  // Wedge the single job worker with a slow job, then submit and cancel a
  // second one while it is still ACCEPTED.
  ASSERT_TRUE(
      ActivateFailpoint("jobs.exec.delay", "delay-ms:700").ok());
  ASSERT_EQ(Post(port(), "/v1/jobs", kInlineAlignBody).status, 202);
  const std::string second =
      R"({"algo":"NSD","g1":{"n":5,"edges":[[0,1],[1,2],[2,3],[3,4]]},)"
      R"("g2":{"n":5,"edges":[[0,1],[1,2],[2,3],[3,4],[4,0]]}})";
  HttpReply sub = Post(port(), "/v1/jobs", second);
  ASSERT_EQ(sub.status, 202) << sub.raw;
  const std::string id = ParseJson(sub.body)->Get("job_id").AsString();
  HttpReply cancel = Delete(port(), "/v1/jobs/" + id);
  ASSERT_EQ(cancel.status, 200) << cancel.raw;
  auto cancel_json = ParseJson(cancel.body);
  ASSERT_TRUE(cancel_json.ok());
  EXPECT_EQ(cancel_json->Get("state").AsString(), "CANCELLED");
  // A cancelled job stays cancelled: polling reports the terminal verdict.
  HttpReply poll = Get(port(), "/v1/jobs/" + id);
  EXPECT_EQ(ParseJson(poll.body)->Get("state").AsString(), "CANCELLED");
  DeactivateAllFailpoints();
}

TEST_F(GatewayFixture, JobsDisabledDaemonAnswersTypedError) {
  StartDaemon({});  // No --jobs-dir: synchronous-only.
  StartGateway();
  HttpReply reply = Post(port(), "/v1/jobs", kInlineAlignBody);
  EXPECT_EQ(reply.status, 500) << reply.raw;
  auto body = ParseJson(reply.body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->Get("status").AsString(), "ERROR");
}

TEST_F(GatewayFixture, QuotaRejectionCarriesRetryAfterHint) {
  ServerOptions sopts;
  sopts.quota_rps = 0.5;  // Burst max(1, 2*0.5) = 1: the second align trips.
  StartDaemon(sopts);
  StartGateway();

  const std::string body =
      R"({"client":"quota-tester",)" + std::string(kInlineAlignBody).substr(1);
  HttpReply first = Post(port(), "/v1/align", body);
  ASSERT_EQ(first.status, 200) << first.raw;
  HttpReply second = Post(port(), "/v1/align", body);
  ASSERT_EQ(second.status, 429) << second.raw;
  auto json = ParseJson(second.body);
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->Get("status").AsString(), "BUSY");
  // The daemon's backoff hint reaches HTTP clients twice: as a standard
  // Retry-After header (delta-seconds, rounded up) and verbatim in the
  // body for sub-second precision.
  EXPECT_NE(second.raw.find("Retry-After:"), std::string::npos) << second.raw;
  int64_t hint_ms = 0;
  ASSERT_TRUE(json->Get("retry_after_ms").AsInt64(&hint_ms, 1, 60000));
}

}  // namespace
}  // namespace graphalign
