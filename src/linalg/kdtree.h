// k-d tree for Euclidean nearest-neighbor queries over embeddings.
//
// REGAL and CONE extract alignments by querying target-graph embeddings with
// source-graph embeddings (paper §3.5, §3.7).
#ifndef GRAPHALIGN_LINALG_KDTREE_H_
#define GRAPHALIGN_LINALG_KDTREE_H_

#include <vector>

#include "common/status.h"
#include "linalg/dense.h"

namespace graphalign {

class KdTree {
 public:
  // Builds over the rows of `points` (n x d). The matrix is copied.
  explicit KdTree(const DenseMatrix& points);

  int size() const { return points_.rows(); }
  int dim() const { return points_.cols(); }

  struct Neighbor {
    int index;
    double distance;  // Euclidean.
  };

  // Index of the nearest row to `query` (length d). Requires a non-empty tree.
  Neighbor Nearest(const double* query) const;
  // The k nearest rows, sorted by increasing distance. k is clamped to size().
  std::vector<Neighbor> KNearest(const double* query, int k) const;

 private:
  struct Node {
    int point = -1;      // Row index of the splitting point.
    int axis = 0;        // Splitting dimension.
    int left = -1;       // Child node ids, -1 if absent.
    int right = -1;
  };

  int Build(std::vector<int>* indices, int lo, int hi, int depth);
  void Search(int node_id, const double* query, int k,
              std::vector<Neighbor>* heap) const;
  double SquaredDistance(int row, const double* query) const;

  DenseMatrix points_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_LINALG_KDTREE_H_
