#include "common/memory.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

namespace graphalign {

namespace {

// Parses "<Key>:   <value> kB" lines from /proc/self/status.
int64_t ReadProcStatusKb(const char* key) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  int64_t kb = 0;
  const size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      kb = std::strtoll(line + key_len + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

int64_t PeakRssBytes() { return ReadProcStatusKb("VmHWM") * 1024; }

int64_t CurrentRssBytes() { return ReadProcStatusKb("VmRSS") * 1024; }

Result<double> MeasurePeakMemoryMb(const std::function<void()>& workload) {
  int fds[2];
  if (pipe(fds) != 0) {
    return Status::Internal("pipe() failed");
  }
  pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return Status::Internal("fork() failed");
  }
  if (pid == 0) {
    // Child: run the workload, report VmHWM, exit without running atexit
    // handlers (the parent owns all shared state).
    close(fds[0]);
    workload();
    int64_t peak = PeakRssBytes();
    ssize_t ignored = write(fds[1], &peak, sizeof(peak));
    (void)ignored;
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  int64_t peak = 0;
  ssize_t n = read(fds[0], &peak, sizeof(peak));
  close(fds[0]);
  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
  if (n != sizeof(peak) || !WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
    return Status::Internal("child measurement process failed");
  }
  return static_cast<double>(peak) / (1024.0 * 1024.0);
}

}  // namespace graphalign
