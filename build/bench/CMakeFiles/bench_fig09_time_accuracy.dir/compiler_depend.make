# Empty compiler generated dependencies file for bench_fig09_time_accuracy.
# This may be replaced when dependencies are built.
