#include "align/grasp.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.h"
#include "linalg/csr.h"
#include "linalg/eigen_sym.h"
#include "linalg/svd.h"

namespace graphalign {

namespace {

// k smallest eigenpairs of the normalized Laplacian. Dense path for small
// graphs (exact), Lanczos otherwise.
Result<SymmetricEigenResult> LaplacianEigs(const Graph& g, int k,
                                           const Deadline& deadline) {
  const int n = g.num_nodes();
  if (n <= 1200) {
    GA_ASSIGN_OR_RETURN(
        SymmetricEigenResult full,
        SymmetricEigen(g.NormalizedLaplacianDense(), deadline));
    SymmetricEigenResult out;
    out.eigenvalues.assign(full.eigenvalues.begin(),
                           full.eigenvalues.begin() + k);
    out.eigenvectors = DenseMatrix(n, k);
    for (int j = 0; j < k; ++j) {
      for (int i = 0; i < n; ++i) {
        out.eigenvectors(i, j) = full.eigenvectors(i, j);
      }
    }
    return out;
  }
  const CsrMatrix adj = g.SymNormalizedAdjacencyCsr();
  LinearOperator op = [&adj](const std::vector<double>& x,
                             std::vector<double>* y) {
    *y = adj.Multiply(x);
    // L x = x - \hat{A} x.
    for (size_t i = 0; i < x.size(); ++i) (*y)[i] = x[i] - (*y)[i];
  };
  const int steps = std::min(g.num_nodes(), std::max(4 * k, 80));
  return LanczosEigen(op, n, k, SpectrumEnd::kSmallest, steps,
                      /*seed=*/12345, deadline);
}

// Heat-kernel diagonals: F(v, s) = sum_j exp(-t_s lambda_j) phi_j(v)^2.
DenseMatrix HeatKernelDiagonals(const SymmetricEigenResult& eig,
                                const std::vector<double>& times) {
  const int n = eig.eigenvectors.rows();
  const int k = static_cast<int>(eig.eigenvalues.size());
  const int q = static_cast<int>(times.size());
  DenseMatrix f(n, q);
  ParallelFor(q, [&](int64_t lo, int64_t hi) {
    for (int s = static_cast<int>(lo); s < hi; ++s) {
      for (int j = 0; j < k; ++j) {
        const double w = std::exp(-times[s] * eig.eigenvalues[j]);
        for (int v = 0; v < n; ++v) {
          const double phi = eig.eigenvectors(v, j);
          f(v, s) += w * phi * phi;
        }
      }
    }
  }, std::max<int64_t>(2, 500'000 / (static_cast<int64_t>(n) * k + 1)));
  return f;
}

}  // namespace

Result<DenseMatrix> GraspAligner::ComputeSimilarityImpl(
    const Graph& g1, const Graph& g2, const Deadline& deadline) {
  GA_RETURN_IF_ERROR(ValidateInputs(g1, g2));
  if (options_.q < 2 || options_.t_min <= 0.0 ||
      options_.t_max <= options_.t_min) {
    return Status::InvalidArgument("GRASP: bad time-step configuration");
  }
  const int n1 = g1.num_nodes();
  const int n2 = g2.num_nodes();
  // The basis can never exceed the eigenpairs both graphs actually have:
  // clamping k below by 2 regardless used to read past the eigenvector
  // matrix on 1- and 2-node graphs.
  const int max_basis = std::min(n1 - 1, n2 - 1);
  if (max_basis < 1) {
    return Status::InvalidArgument(
        "GRASP: graphs must have at least 2 nodes for a spectral basis");
  }
  const int k = std::max(1, std::min(options_.k, max_basis));
  // Heat kernels use the full spectrum when the dense eigensolver is in
  // play (n <= 1200, matching GRASP's O(n^3) profile in Table 1); beyond
  // that, a Lanczos subset bounded by k_functions (never below k).
  const int small = std::min(n1, n2);
  const int k_func =
      small <= 1200 ? max_basis
                    : std::max(k, std::min(options_.k_functions, max_basis));

  GA_ASSIGN_OR_RETURN(SymmetricEigenResult eig_full1,
                      LaplacianEigs(g1, k_func, deadline));
  GA_ASSIGN_OR_RETURN(SymmetricEigenResult eig_full2,
                      LaplacianEigs(g2, k_func, deadline));
  // The k smallest eigenpairs are the aligned basis.
  SymmetricEigenResult eig1, eig2;
  eig1.eigenvalues.assign(eig_full1.eigenvalues.begin(),
                          eig_full1.eigenvalues.begin() + k);
  eig2.eigenvalues.assign(eig_full2.eigenvalues.begin(),
                          eig_full2.eigenvalues.begin() + k);
  eig1.eigenvectors = DenseMatrix(n1, k);
  eig2.eigenvectors = DenseMatrix(n2, k);
  for (int j = 0; j < k; ++j) {
    for (int i = 0; i < n1; ++i) {
      eig1.eigenvectors(i, j) = eig_full1.eigenvectors(i, j);
    }
    for (int i = 0; i < n2; ++i) {
      eig2.eigenvectors(i, j) = eig_full2.eigenvectors(i, j);
    }
  }

  // Log-spaced diffusion times.
  std::vector<double> times(options_.q);
  const double log_min = std::log(options_.t_min);
  const double log_max = std::log(options_.t_max);
  for (int s = 0; s < options_.q; ++s) {
    times[s] =
        std::exp(log_min + (log_max - log_min) * s / (options_.q - 1));
  }

  // The heat-kernel and descriptor passes below are bounded parallel
  // regions; one check between the eigensolves and them bounds overshoot.
  GA_RETURN_IF_EXPIRED(deadline, "GRASP descriptors");
  DenseMatrix f = HeatKernelDiagonals(eig_full1, times);  // n1 x q
  DenseMatrix g = HeatKernelDiagonals(eig_full2, times);  // n2 x q

  // Coefficients of the corresponding functions in each eigenbasis.
  DenseMatrix a_hat = MultiplyAtB(eig1.eigenvectors, f);  // k x q
  DenseMatrix b_hat = MultiplyAtB(eig2.eigenvectors, g);  // k x q

  // Base alignment: orthogonal M with M * b_hat ~= a_hat
  // (solves min ||b_hat^T Q - a_hat^T||, M = Q^T).
  GA_ASSIGN_OR_RETURN(DenseMatrix q_rot,
                      ProcrustesRotation(b_hat.Transposed(),
                                         a_hat.Transposed(), deadline));
  // Aligned target basis Psi' = Psi * Q (so that Psi'^T G = M Psi^T G).
  DenseMatrix psi_aligned = Multiply(eig2.eigenvectors, q_rot);
  DenseMatrix b_aligned = MultiplyAtB(psi_aligned, g);  // = M * b_hat

  // Diagonal functional map C: a_hat_i ~= c_i * b_aligned_i, per row i.
  std::vector<double> c(k, 1.0);
  for (int i = 0; i < k; ++i) {
    double num = 0.0, den = 0.0;
    for (int s = 0; s < options_.q; ++s) {
      num += a_hat(i, s) * b_aligned(i, s);
      den += b_aligned(i, s) * b_aligned(i, s);
    }
    c[i] = den > 1e-15 ? num / den : 1.0;
  }

  // Spectral embeddings: rows of Phi vs rows of Psi' scaled by C.
  DenseMatrix e2 = psi_aligned;
  for (int v = 0; v < n2; ++v) {
    for (int i = 0; i < k; ++i) e2(v, i) *= c[i];
  }

  // Node descriptors: aligned spectral embedding concatenated with the
  // heat-kernel diagonals (the corresponding functions themselves, which are
  // permutation-equivariant and anchor the matching when near-degenerate
  // eigenspaces make the base alignment ambiguous). Both blocks are scaled
  // to comparable magnitude.
  // The aligned-basis block gets a modest weight: the heat-kernel block
  // anchors the matching, the aligned eigenvectors refine it.
  // The aligned-basis block is a tiebreaker next to the heat-kernel block.
  // Its weight decays with n: HKS margins tighten as the spectrum packs,
  // so a constant-weight basis block (whose base-alignment error does NOT
  // shrink) would overwhelm them on larger graphs.
  const double phi_scale = 1.0 / std::sqrt(static_cast<double>(n1));
  double f_norm = 0.0;
  for (int v = 0; v < n1; ++v) {
    for (int s = 0; s < options_.q; ++s) f_norm += f(v, s) * f(v, s);
  }
  const double hks_scale =
      f_norm > 0.0 ? std::sqrt(static_cast<double>(n1) * options_.q / f_norm)
                   : 1.0;

  // Similarity = 1 / (1 + ||descriptor_u - descriptor_v||).
  DenseMatrix sim(n1, n2);
  ParallelFor(n1, [&](int64_t lo, int64_t hi) {
  for (int u = static_cast<int>(lo); u < hi; ++u) {
    const double* row1 = eig1.eigenvectors.Row(u);
    const double* fu = f.Row(u);
    double* out = sim.Row(u);
    for (int v = 0; v < n2; ++v) {
      const double* row2 = e2.Row(v);
      double d = 0.0;
      for (int i = 0; i < k; ++i) {
        const double diff = phi_scale * (row1[i] - row2[i]);
        d += diff * diff;
      }
      const double* gv = g.Row(v);
      for (int s = 0; s < options_.q; ++s) {
        const double diff = hks_scale * (fu[s] - gv[s]);
        d += diff * diff;
      }
      out[v] = 1.0 / (1.0 + std::sqrt(d));
    }
  }
  }, std::max<int64_t>(
         2, 500'000 / (static_cast<int64_t>(n2) * (k + options_.q) + 1)));
  return sim;
}

}  // namespace graphalign
