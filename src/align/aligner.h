// Common interface for all nine unrestricted graph-alignment algorithms
// (paper §3). Each algorithm produces a node-similarity matrix; the final
// correspondence is extracted by a pluggable assignment method (§6.2), with
// each algorithm also exposing the extraction its authors proposed
// (Table 1) via AlignNative().
#ifndef GRAPHALIGN_ALIGN_ALIGNER_H_
#define GRAPHALIGN_ALIGN_ALIGNER_H_

#include <memory>
#include <string>
#include <vector>

#include "align/sparse_candidates.h"
#include "assignment/assignment.h"
#include "assignment/sparse_lap.h"
#include "common/deadline.h"
#include "common/status.h"
#include "graph/graph.h"
#include "linalg/dense.h"

namespace graphalign {

// Output of the fault-tolerant similarity path. `degraded` marks results
// produced by a fallback (sanitized matrix or degree-profile similarity)
// after a recoverable numerical failure; `degrade_reason` says which one and
// why. Degraded values render with a trailing `*` in benchmark tables.
struct SimilarityResult {
  DenseMatrix similarity;
  bool degraded = false;
  std::string degrade_reason;
};

// Output of the fault-tolerant end-to-end path.
struct RobustAlignment {
  Alignment alignment;
  bool degraded = false;
  std::string degrade_reason;
};

// How an aligner fulfills the sparse similarity contract (DESIGN.md §13).
// Naturally low-rank algorithms (LREA, REGAL, NSD) score only the candidate
// pairs and never materialize n1 x n2 values; everything else falls back to
// computing the dense matrix and sampling the candidate entries from it —
// same result shape, none of the memory savings. The flag is the typed
// answer to "did --sparse actually buy me anything for this algorithm".
enum class SparseSimilarityMode {
  kNative,         // O(candidates) scoring; dense matrix never exists.
  kDenseFallback,  // Dense similarity computed, then sampled at candidates.
};

const char* SparseSimilarityModeName(SparseSimilarityMode mode);

// Output of the sparse similarity path: the LSH candidate pairs with their
// similarity fields scored, ready for SparseLapAssign.
struct SparseSimilarityResult {
  std::vector<SparseCandidate> candidates;  // Sorted by (row, col).
  SparseSimilarityMode mode = SparseSimilarityMode::kDenseFallback;
  LshStats lsh;
};

// Output of the end-to-end sparse pipeline.
struct SparseAlignment {
  Alignment alignment;
  SparseSimilarityMode mode = SparseSimilarityMode::kDenseFallback;
  int64_t num_candidates = 0;
};

class Aligner {
 public:
  virtual ~Aligner() = default;

  // Short display name, e.g. "IsoRank".
  virtual std::string name() const = 0;

  // Assignment method the original authors proposed (Table 1).
  virtual AssignmentMethod default_assignment() const = 0;

  // The algorithm's core output: an n1 x n2 node-similarity matrix
  // (higher = more similar). This is the step whose runtime the paper's
  // scalability figures report (assignment excluded, §6.2).
  //
  // An expired `deadline` aborts the computation cooperatively with
  // StatusCode::kDeadlineExceeded (the harness reports it as DNF, matching
  // the paper's budget semantics). The default deadline never expires.
  Result<DenseMatrix> ComputeSimilarity(const Graph& g1, const Graph& g2,
                                        const Deadline& deadline = Deadline());

  // Full pipeline with an explicit assignment method. The deadline covers
  // both stages: similarity and assignment extraction. (The bench harness
  // instead deadlines only the similarity stage, which is what the paper
  // times and budgets, §6.2.)
  Result<Alignment> Align(const Graph& g1, const Graph& g2,
                          AssignmentMethod method,
                          const Deadline& deadline = Deadline());

  // Full pipeline with the author-proposed extraction (Table 1).
  Result<Alignment> AlignNative(const Graph& g1, const Graph& g2,
                                const Deadline& deadline = Deadline());

  // Fault-tolerant similarity (degradation policy, DESIGN.md §12):
  //   * success with a finite matrix — passed through unchanged;
  //   * success with NaN/inf entries — non-finite entries are zeroed and the
  //     result is marked degraded (a poisoned cell must not decide a match);
  //   * kNumerical failure (eigensolver non-convergence, SVD sweep
  //     exhaustion) — replaced by the degree-profile similarity
  //     1 / (1 + |deg_i - deg_j|), marked degraded;
  //   * every other failure (invalid input, deadline, crash) propagates.
  // With no fault, the returned matrix is bit-identical to
  // ComputeSimilarity's: degradation costs one finiteness scan and nothing
  // else.
  Result<SimilarityResult> ComputeSimilarityRobust(
      const Graph& g1, const Graph& g2, const Deadline& deadline = Deadline());

  // Fault-tolerant end-to-end pipeline. A degraded similarity is extracted
  // with SortGreedy (Hungarian/JV on a sanitized or surrogate matrix buys
  // accuracy the matrix no longer has); a kNumerical extraction failure
  // falls back to SortGreedy once before giving up.
  Result<RobustAlignment> AlignRobust(const Graph& g1, const Graph& g2,
                                      AssignmentMethod method,
                                      const Deadline& deadline = Deadline());

  // Whether ComputeSparseSimilarity scores candidates natively (without an
  // n1 x n2 matrix) or through the dense fallback.
  virtual SparseSimilarityMode sparse_similarity_mode() const {
    return SparseSimilarityMode::kDenseFallback;
  }

  // Sparse similarity pipeline (DESIGN.md §13): generates LSH candidate
  // pairs over structural node signatures, then scores exactly those pairs.
  // For kNative aligners both stages are sub-quadratic in memory; for
  // kDenseFallback aligners the scoring stage still materializes the dense
  // matrix (the typed mode in the result says which happened). The deadline
  // covers generation and scoring.
  Result<SparseSimilarityResult> ComputeSparseSimilarity(
      const Graph& g1, const Graph& g2, const LshOptions& lsh = {},
      const Deadline& deadline = Deadline());

  // End-to-end sparse pipeline: LSH candidates -> candidate scoring ->
  // optimal sparse-candidate LAP. Rows the LSH stage found no candidate for
  // come back unmatched (-1) — the speed/quality tradeoff the fig17 bench
  // records.
  Result<SparseAlignment> AlignSparse(const Graph& g1, const Graph& g2,
                                      const LshOptions& lsh = {},
                                      const Deadline& deadline = Deadline());

 protected:
  // Algorithm-specific similarity computation. Implementations poll the
  // deadline at their outer-iteration boundaries and forward it to the
  // iterative solvers they call.
  virtual Result<DenseMatrix> ComputeSimilarityImpl(
      const Graph& g1, const Graph& g2, const Deadline& deadline) = 0;

  // Author-proposed extraction. Algorithms whose native extraction is not
  // "similarity + LAP" (GRAAL's seed-and-extend, LREA's sparse
  // union-of-matchings, CONE/REGAL's kd-tree greedy) override this.
  virtual Result<Alignment> AlignNativeImpl(const Graph& g1, const Graph& g2,
                                            const Deadline& deadline) {
    return Align(g1, g2, default_assignment(), deadline);
  }

  // Scores candidates->similarity in place. The base implementation is the
  // dense fallback (ComputeSimilarityImpl + gather); kNative aligners
  // override it together with sparse_similarity_mode().
  virtual Status ScoreSparseCandidatesImpl(
      const Graph& g1, const Graph& g2, const Deadline& deadline,
      std::vector<SparseCandidate>* candidates);

  // Shared input validation: non-empty graphs.
  static Status ValidateInputs(const Graph& g1, const Graph& g2);
};

// Factory for all paper algorithms with Table-1 hyperparameters; names:
// "IsoRank", "GRAAL", "NSD", "LREA", "REGAL", "GWL", "S-GWL", "CONE",
// "GRASP". Returns NotFound for unknown names.
Result<std::unique_ptr<Aligner>> MakeAligner(const std::string& name);

// All paper algorithm names in Table-1 order.
std::vector<std::string> AllAlignerNames();

}  // namespace graphalign

#endif  // GRAPHALIGN_ALIGN_ALIGNER_H_
