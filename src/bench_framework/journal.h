// Checkpoint journal for resumable benchmark sweeps.
//
// A paper-scale sweep (§5.1: algorithms × datasets × noise levels under a
// 3-hour budget) can run for many hours; a kill — machine reboot, OOM of the
// harness itself, ctrl-C — must not discard the cells already computed.
// Each bench binary appends one line per completed cell to a journal file as
// it goes ("<key>\t<cell>\t<cell>..."); restarted with --resume, rows whose
// key is already journaled are replayed verbatim instead of recomputed, so
// an interrupted sweep finishes byte-identical to an uninterrupted one
// (cells are deterministic given the seed and do not depend on the fate of
// other cells).
//
// Crash consistency: records are flushed line-by-line, and a trailing
// partial line (the harness died mid-write) is dropped on load.
#ifndef GRAPHALIGN_BENCH_FRAMEWORK_JOURNAL_H_
#define GRAPHALIGN_BENCH_FRAMEWORK_JOURNAL_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace graphalign {

class Journal {
 public:
  // Disabled journal: Row() always misses, Record() is a no-op.
  Journal() = default;

  // Opens `path` for appending. With `resume` the existing records are
  // loaded and served from Row(); without it the file is truncated and the
  // sweep starts fresh.
  static Result<Journal> Open(const std::string& path, bool resume);

  bool enabled() const { return !path_.empty(); }

  // Number of records loaded from a resumed journal.
  size_t loaded() const { return done_.size(); }

  // The journaled cells for `key`, or nullptr if the cell still has to run.
  const std::vector<std::string>* Row(const std::string& key) const;

  // Appends and flushes one completed cell. Keys and cells must not contain
  // tabs or newlines (InvalidArgument). No-op Ok() when disabled.
  Status Record(const std::string& key, const std::vector<std::string>& cells);

 private:
  std::string path_;
  std::map<std::string, std::vector<std::string>> done_;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_BENCH_FRAMEWORK_JOURNAL_H_
