// Write-ahead journal for the durable async job subsystem (DESIGN.md §17).
//
// Every job state transition — submission, claim, completion, cancellation —
// is appended as one CRC32C-framed record *before* the in-memory state
// changes are acted on, so a `kill -9` at any instant leaves a journal that
// replays to a consistent job table. The framing is the cache log's
// (server/cache_store) with its own magic:
//
//   "GAJ1" (4-byte magic) | u32 payload_len | u32 crc32c(payload) | payload
//
// where the payload is an opaque event blob owned by jobs/manager.h. Every
// append is fsynced: jobs are heavyweight (each execution forks an isolated
// child), so one fsync per transition is noise next to the work it makes
// durable — and it is exactly what turns "accepted" into a promise that
// survives the daemon.
//
// Replay rules, identical to the cache log, at every record boundary:
//   * clean EOF                      -> done
//   * partial header / partial body /
//     bad magic / absurd length      -> torn or corrupt tail: truncate the
//                                       file back to the last good record
//                                       and stop (a crash mid-append wrote
//                                       it; nothing after it is sound)
//   * CRC mismatch on a record whose
//     framing is intact              -> skip just that record and continue
//
// Replay never fails the manager: the worst corrupt journal yields an empty
// job table, not a crash. Compaction (TTL GC) rewrites the live records to
// a fresh journal and publishes it atomically (temp + fsync + rename +
// directory fsync), the store's publish idiom, so a crash mid-compaction
// keeps the old journal whole.
//
// Failpoints (tools/run_chaos.sh arms them):
//   jobs.journal.append.error  - the append is dropped as if write() failed
//   jobs.journal.append.torn   - a deliberately truncated record is written,
//                                simulating a crash mid-append
//   jobs.journal.replay.error  - Open() fails, simulating an unreadable log
#ifndef GRAPHALIGN_JOBS_JOURNAL_H_
#define GRAPHALIGN_JOBS_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace graphalign {

// Journal records beyond this payload size are rejected at append and
// treated as corruption at replay. Sized to hold an inline graph-pair spec
// (the GAF1 frame cap) plus event framing.
inline constexpr uint32_t kMaxJournalPayload = (64u << 20) + 4096;

class JobJournal {
 public:
  struct ReplayStats {
    uint64_t replayed = 0;         // Records delivered to the callback.
    uint64_t crc_skipped = 0;      // Intact-framing records with a bad CRC.
    uint64_t truncated_bytes = 0;  // Torn/corrupt tail bytes dropped.
  };

  // Opens (creating if needed) `dir`/jobs.journal, replays every good
  // record through `on_record`, truncates any torn tail, and returns a
  // journal ready for appends. Fails only when the directory/file cannot
  // be created or read at all — never because of journal content.
  static Result<std::unique_ptr<JobJournal>> Open(
      const std::string& dir,
      const std::function<void(std::string_view payload)>& on_record,
      ReplayStats* stats = nullptr);

  ~JobJournal();
  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  // Appends one record and fsyncs it. Thread-safe. An append failure (IO
  // error, disk full) is returned as kUnavailable and counted; the journal
  // stays open for later appends — durability degrades, service does not.
  Status Append(std::string_view payload);

  // fsyncs the journal fd (a no-op when every append already synced, kept
  // as the explicit seal for SIGTERM drain so graceful shutdown never
  // depends on the per-append behavior).
  Status Sync();

  // Rewrites the journal to hold exactly `live` records, in order, dropping
  // everything else (superseded transitions, CRC-skipped residue, GC'd
  // jobs). Published atomically; on failure the old journal and fd keep
  // working unchanged. Thread-safe against Append.
  Status Compact(const std::vector<std::string>& live);

  // Current byte size of the journal on disk (0 if unusable).
  uint64_t log_bytes() const;

  uint64_t append_errors() const;
  const std::string& path() const { return path_; }

 private:
  JobJournal(int fd, std::string path);

  static std::string BuildRecord(std::string_view payload);

  const std::string path_;
  mutable std::mutex mu_;
  int fd_ = -1;
  uint64_t append_errors_ = 0;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_JOBS_JOURNAL_H_
