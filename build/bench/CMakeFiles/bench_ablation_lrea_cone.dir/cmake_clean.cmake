file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lrea_cone.dir/bench_ablation_lrea_cone.cc.o"
  "CMakeFiles/bench_ablation_lrea_cone.dir/bench_ablation_lrea_cone.cc.o.d"
  "bench_ablation_lrea_cone"
  "bench_ablation_lrea_cone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lrea_cone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
