// Process-isolated execution of fallible workloads.
//
// The benchmark protocol (paper §5.1, Table 3) treats a run that dies — a
// segfault in an algorithm, an allocation beyond the memory budget, a hang —
// as a reportable per-cell outcome, not a fatal event for the whole sweep.
// RunIsolated provides the primitive: fork a child, apply rlimit-enforced
// memory and wall-clock caps, run the workload there, and classify how the
// child ended (clean exit / crash signal / out-of-memory / timeout kill).
// Whatever the child marshals back through the payload pipe survives every
// failure mode except never having been written.
//
// Fork safety: worker threads do not survive fork(), so the child must not
// depend on any thread started before it. The graphalign thread pool is
// fork-tolerant by construction (ParallelFor detects a forked child and runs
// inline; see parallel.cc), and RunIsolated refuses to fork — returning
// FailedPrecondition — when /proc shows threads beyond the main thread and
// the known pool workers, rather than risking a deadlock on a lock held by a
// thread that no longer exists.
#ifndef GRAPHALIGN_COMMON_SUBPROCESS_H_
#define GRAPHALIGN_COMMON_SUBPROCESS_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"

namespace graphalign {

// How the isolated child ended.
enum class RunStatus {
  kOk,       // Exited 0; the payload (if any) is the result.
  kExit,     // Exited with a nonzero code (a clean in-child error).
  kCrash,    // Killed by a crash-class signal (SIGSEGV, SIGABRT, ...).
  kOom,      // Allocation failed under the memory limit, or the kernel
             // OOM-killer took the child down.
  kTimeout,  // Still running at the wall-clock cap; killed by the parent.
};

// Short upper-case name used in tables and logs: OK/EXIT/CRASH/OOM/TIMEOUT.
const char* RunStatusName(RunStatus status);

struct SubprocessOptions {
  // Hard wall-clock cap in seconds; the parent SIGKILLs the child once it
  // is exceeded (kTimeout). Non-positive = unlimited. This is the
  // non-cooperative backstop behind the cooperative Deadline budget.
  double wall_limit_seconds = 0.0;

  // Memory the child may allocate on top of the process baseline, enforced
  // with RLIMIT_AS (the limit is set to the current VmSize plus this
  // headroom, so thread stacks and mapped binaries of the parent do not
  // count against the workload). Non-positive = unlimited.
  int64_t mem_limit_bytes = 0;

  // Optional cancellation hook, polled by the parent's wait loop (~50 ms
  // cadence). Returning true SIGKILLs the child immediately; the result is
  // classified kTimeout with killed_on_cancel set, so callers (the server's
  // worker watchdog) can distinguish it from the wall-clock backstop. Must
  // be cheap and thread-safe: it runs on the waiting parent thread.
  std::function<bool()> cancel;
};

struct SubprocessResult {
  RunStatus status = RunStatus::kOk;
  int exit_code = 0;     // Valid for kOk / kExit.
  int term_signal = 0;   // Valid for kCrash (and SIGKILL-classified kOom).
  double wall_seconds = 0.0;
  // True when the kill came from SubprocessOptions::cancel rather than the
  // wall-clock cap (both classify as kTimeout).
  bool killed_on_cancel = false;
  // Bytes the child sent with WritePayload; payload_valid is true only when
  // a complete frame arrived (a crash mid-write leaves it false).
  bool payload_valid = false;
  std::string payload;
  // Human-readable classification, e.g. "killed by signal 11 (SIGSEGV)".
  std::string detail;
};

// Exit code the child uses when operator new fails under the rlimit (the
// installed new-handler exits with it instead of throwing std::bad_alloc).
inline constexpr int kOomExitCode = 117;

// Runs `body` in a forked child under `options`. `body` receives the write
// end of the payload pipe and its return value becomes the child's exit
// code; the child never returns to the caller's stack (it _exits). Returns
// a Status only when isolation itself is impossible (pipe/fork failure,
// unknown threads running); every workload failure is a SubprocessResult.
Result<SubprocessResult> RunIsolated(const std::function<int(int payload_fd)>& body,
                                     const SubprocessOptions& options = {});

// Writes `bytes` to `fd` as one length-prefixed frame (for use inside the
// child body). Returns false on a short or failed write.
bool WritePayload(int fd, const std::string& bytes);

// Declares the current thread fork-tolerant for the lifetime of the object:
// the thread promises that nothing a RunIsolated child executes depends on
// state (locks, condition variables) this thread may hold at fork time. The
// server's worker threads register themselves so they can fork isolated
// alignments while their siblings keep serving; like the parallel pool's
// workers, they qualify because the forked child never touches the server's
// queues or cache. Unregistered foreign threads still make RunIsolated
// refuse with FailedPrecondition.
class ScopedForkTolerantThread {
 public:
  ScopedForkTolerantThread();
  ~ScopedForkTolerantThread();
  ScopedForkTolerantThread(const ScopedForkTolerantThread&) = delete;
  ScopedForkTolerantThread& operator=(const ScopedForkTolerantThread&) = delete;
};

// Number of currently registered fork-tolerant threads (beyond the pool).
int ForkTolerantThreadsRegistered();

// Number of threads of the calling process per /proc/self/status, or a
// Status when /proc is unavailable.
Result<int> CountProcThreads();

}  // namespace graphalign

#endif  // GRAPHALIGN_COMMON_SUBPROCESS_H_
