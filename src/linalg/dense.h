// Dense row-major matrix of doubles with the kernels the alignment
// algorithms need (GEMM variants, norms, row operations).
//
// This module exists because no external linear-algebra library is available
// in the build environment; it favors clarity and cache-friendly loop orders
// over micro-optimized kernels.
#ifndef GRAPHALIGN_LINALG_DENSE_H_
#define GRAPHALIGN_LINALG_DENSE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace graphalign {

class DenseMatrix {
 public:
  DenseMatrix() : rows_(0), cols_(0) {}
  DenseMatrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, fill) {
    GA_CHECK(rows >= 0 && cols >= 0);
  }

  static DenseMatrix Identity(int n);
  // Builds from row-major nested initializer data (test convenience).
  static DenseMatrix FromRows(const std::vector<std::vector<double>>& rows);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double& operator()(int r, int c) {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  double* Row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const double* Row(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void Fill(double v);
  void Scale(double s);
  // this += s * other. Shapes must match.
  void Axpy(double s, const DenseMatrix& other);

  DenseMatrix Transposed() const;
  double FrobeniusNorm() const;
  double Sum() const;
  double MaxAbs() const;

  // Extracts column c as a vector.
  std::vector<double> Col(int c) const;
  void SetCol(int c, const std::vector<double>& v);

  bool operator==(const DenseMatrix& other) const = default;

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

// C = A * B.
DenseMatrix Multiply(const DenseMatrix& a, const DenseMatrix& b);
// C = A^T * B.
DenseMatrix MultiplyAtB(const DenseMatrix& a, const DenseMatrix& b);
// C = A * B^T.
DenseMatrix MultiplyABt(const DenseMatrix& a, const DenseMatrix& b);
// y = A * x.
std::vector<double> MultiplyVec(const DenseMatrix& a,
                                const std::vector<double>& x);
// y = A^T * x.
std::vector<double> MultiplyVecT(const DenseMatrix& a,
                                 const std::vector<double>& x);

// Vector helpers used throughout the numerical code.
double Dot(const std::vector<double>& a, const std::vector<double>& b);
double Norm2(const std::vector<double>& a);
// a += s * b.
void Axpy(double s, const std::vector<double>& b, std::vector<double>* a);
// Normalizes to unit 2-norm; returns the original norm (0 if zero vector).
double NormalizeInPlace(std::vector<double>* a);

}  // namespace graphalign

#endif  // GRAPHALIGN_LINALG_DENSE_H_
