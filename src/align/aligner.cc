#include "align/aligner.h"

#include <cmath>
#include <limits>

#include "common/failpoint.h"

#include "align/cone.h"
#include "align/graal.h"
#include "align/grasp.h"
#include "align/gwl.h"
#include "align/isorank.h"
#include "align/lrea.h"
#include "align/nsd.h"
#include "align/regal.h"
#include "align/sgwl.h"

namespace graphalign {

Status Aligner::ValidateInputs(const Graph& g1, const Graph& g2) {
  if (g1.num_nodes() == 0 || g2.num_nodes() == 0) {
    return Status::InvalidArgument("aligner: empty input graph");
  }
  return Status::Ok();
}

const char* SparseSimilarityModeName(SparseSimilarityMode mode) {
  switch (mode) {
    case SparseSimilarityMode::kNative:
      return "native";
    case SparseSimilarityMode::kDenseFallback:
      return "dense-fallback";
  }
  return "unknown";
}

Status Aligner::ScoreSparseCandidatesImpl(
    const Graph& g1, const Graph& g2, const Deadline& deadline,
    std::vector<SparseCandidate>* candidates) {
  GA_ASSIGN_OR_RETURN(DenseMatrix sim, ComputeSimilarityImpl(g1, g2, deadline));
  for (SparseCandidate& c : *candidates) {
    c.similarity = sim.Row(c.row)[c.col];
  }
  return Status::Ok();
}

Result<SparseSimilarityResult> Aligner::ComputeSparseSimilarity(
    const Graph& g1, const Graph& g2, const LshOptions& lsh,
    const Deadline& deadline) {
  GA_RETURN_IF_ERROR(ValidateInputs(g1, g2));
  GA_RETURN_IF_EXPIRED(deadline, name());
  GA_FAILPOINT_STATUS(
      "align.sparse.candidates.error",
      Status::Unavailable(name() + ": LSH candidate generation failed"));
  SparseSimilarityResult out;
  out.mode = sparse_similarity_mode();
  GA_ASSIGN_OR_RETURN(out.candidates,
                      GenerateLshCandidates(g1, g2, lsh, deadline, &out.lsh));
  GA_RETURN_IF_ERROR(
      ScoreSparseCandidatesImpl(g1, g2, deadline, &out.candidates));
  return out;
}

Result<SparseAlignment> Aligner::AlignSparse(const Graph& g1, const Graph& g2,
                                             const LshOptions& lsh,
                                             const Deadline& deadline) {
  GA_ASSIGN_OR_RETURN(SparseSimilarityResult sim,
                      ComputeSparseSimilarity(g1, g2, lsh, deadline));
  SparseAlignment out;
  out.mode = sim.mode;
  out.num_candidates = static_cast<int64_t>(sim.candidates.size());
  GA_ASSIGN_OR_RETURN(out.alignment,
                      SparseLapAssign(g1.num_nodes(), g2.num_nodes(),
                                      sim.candidates, deadline));
  return out;
}

Result<DenseMatrix> Aligner::ComputeSimilarity(const Graph& g1,
                                               const Graph& g2,
                                               const Deadline& deadline) {
  // Zero-budget fast fail: an already-expired deadline returns before any
  // algorithm-specific work begins.
  GA_RETURN_IF_EXPIRED(deadline, name());
  GA_FAILPOINT_STATUS(
      "align.similarity.error",
      Status::Numerical(name() + ": similarity computation diverged"));
  GA_ASSIGN_OR_RETURN(DenseMatrix sim, ComputeSimilarityImpl(g1, g2, deadline));
  if (GA_FAILPOINT_FIRED("align.similarity.nan")) {
    // Poison a deterministic scatter of entries (plus the corner, so even a
    // 1x1 matrix is hit) to exercise the NaN-sanitize recovery path.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    double* data = sim.data();
    const int64_t total = static_cast<int64_t>(sim.rows()) * sim.cols();
    for (int64_t idx = 0; idx < total; idx += 97) data[idx] = nan;
  }
  return sim;
}

Result<Alignment> Aligner::Align(const Graph& g1, const Graph& g2,
                                 AssignmentMethod method,
                                 const Deadline& deadline) {
  GA_ASSIGN_OR_RETURN(DenseMatrix sim, ComputeSimilarity(g1, g2, deadline));
  return ExtractAlignment(sim, method, deadline);
}

Result<Alignment> Aligner::AlignNative(const Graph& g1, const Graph& g2,
                                       const Deadline& deadline) {
  GA_RETURN_IF_EXPIRED(deadline, name());
  return AlignNativeImpl(g1, g2, deadline);
}

namespace {

// Cheap structural surrogate used when an algorithm's similarity fails
// numerically: nodes with close degrees are plausible matches. Weak, but
// finite, deterministic, and better than losing the cell outright.
DenseMatrix DegreeProfileSimilarity(const Graph& g1, const Graph& g2) {
  const int n1 = g1.num_nodes();
  const int n2 = g2.num_nodes();
  DenseMatrix sim(n1, n2);
  for (int i = 0; i < n1; ++i) {
    const int di = g1.Degree(i);
    double* row = sim.Row(i);
    for (int j = 0; j < n2; ++j) {
      row[j] = 1.0 / (1.0 + std::abs(di - g2.Degree(j)));
    }
  }
  return sim;
}

// Zeroes non-finite entries in place; returns how many were zeroed.
int64_t SanitizeNonFinite(DenseMatrix* m) {
  double* data = m->data();
  const int64_t total = static_cast<int64_t>(m->rows()) * m->cols();
  int64_t poisoned = 0;
  for (int64_t i = 0; i < total; ++i) {
    if (!std::isfinite(data[i])) {
      data[i] = 0.0;
      ++poisoned;
    }
  }
  return poisoned;
}

}  // namespace

Result<SimilarityResult> Aligner::ComputeSimilarityRobust(
    const Graph& g1, const Graph& g2, const Deadline& deadline) {
  GA_RETURN_IF_ERROR(ValidateInputs(g1, g2));
  Result<DenseMatrix> sim = ComputeSimilarity(g1, g2, deadline);
  SimilarityResult out;
  if (sim.ok()) {
    out.similarity = std::move(*sim);
    const int64_t poisoned = SanitizeNonFinite(&out.similarity);
    if (poisoned > 0) {
      out.degraded = true;
      out.degrade_reason = name() + ": zeroed " + std::to_string(poisoned) +
                           " non-finite similarity entries";
    }
    return out;
  }
  if (sim.status().code() != StatusCode::kNumerical) return sim.status();
  out.similarity = DegreeProfileSimilarity(g1, g2);
  out.degraded = true;
  out.degrade_reason =
      "degree-profile fallback (" + sim.status().message() + ")";
  return out;
}

Result<RobustAlignment> Aligner::AlignRobust(const Graph& g1, const Graph& g2,
                                             AssignmentMethod method,
                                             const Deadline& deadline) {
  GA_ASSIGN_OR_RETURN(SimilarityResult sim,
                      ComputeSimilarityRobust(g1, g2, deadline));
  RobustAlignment out;
  out.degraded = sim.degraded;
  out.degrade_reason = sim.degrade_reason;
  // A degraded matrix does not deserve an O(n^3) optimal solver; SortGreedy
  // extracts the same ranking signal at a fraction of the cost.
  AssignmentMethod effective = sim.degraded ? AssignmentMethod::kSortGreedy
                                            : method;
  Result<Alignment> align =
      ExtractAlignment(sim.similarity, effective, deadline);
  if (!align.ok() && align.status().code() == StatusCode::kNumerical &&
      effective != AssignmentMethod::kSortGreedy) {
    const std::string reason = align.status().message();
    align = ExtractAlignment(sim.similarity, AssignmentMethod::kSortGreedy,
                             deadline);
    if (align.ok()) {
      out.degraded = true;
      out.degrade_reason = out.degrade_reason.empty()
                               ? "greedy-assignment fallback (" + reason + ")"
                               : out.degrade_reason +
                                     "; greedy-assignment fallback (" +
                                     reason + ")";
    }
  }
  GA_RETURN_IF_ERROR(align.status());
  out.alignment = std::move(*align);
  return out;
}

Result<std::unique_ptr<Aligner>> MakeAligner(const std::string& name) {
  if (name == "IsoRank") return std::unique_ptr<Aligner>(new IsoRankAligner());
  if (name == "GRAAL") return std::unique_ptr<Aligner>(new GraalAligner());
  if (name == "NSD") return std::unique_ptr<Aligner>(new NsdAligner());
  if (name == "LREA") return std::unique_ptr<Aligner>(new LreaAligner());
  if (name == "REGAL") return std::unique_ptr<Aligner>(new RegalAligner());
  if (name == "GWL") return std::unique_ptr<Aligner>(new GwlAligner());
  if (name == "S-GWL") return std::unique_ptr<Aligner>(new SgwlAligner());
  if (name == "CONE") return std::unique_ptr<Aligner>(new ConeAligner());
  if (name == "GRASP") return std::unique_ptr<Aligner>(new GraspAligner());
  return Status::NotFound("unknown aligner: " + name);
}

std::vector<std::string> AllAlignerNames() {
  return {"IsoRank", "GRAAL", "NSD",  "LREA", "REGAL",
          "GWL",     "S-GWL", "CONE", "GRASP"};
}

}  // namespace graphalign
