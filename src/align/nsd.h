// Network Similarity Decomposition (Kollias, Mohammadi & Grama 2011),
// paper §3.3: approximates the IsoRank fixed point by decomposing the
// Kronecker power series into per-component outer products
//     X^(n) = sum_i [ (1-a) sum_k a^k z_i^(k) (w_i^(k))^T + a^n z_i^(n) (w_i^(n))^T ]
// with z_i^(k) = (A~^T)^k z_i and w_i^(k) = (B~^T)^k w_i, where A~ = D^-1 A.
// In the unrestricted setting the components are the uniform and the
// degree vector (no Blast prior).
#ifndef GRAPHALIGN_ALIGN_NSD_H_
#define GRAPHALIGN_ALIGN_NSD_H_

#include <string>

#include "align/aligner.h"

namespace graphalign {

struct NsdOptions {
  double alpha = 0.8;  // Decay (Table 1).
  int iterations = 15;  // Depth of the power series.
};

class NsdAligner : public Aligner {
 public:
  explicit NsdAligner(const NsdOptions& options = {}) : options_(options) {}

  std::string name() const override { return "NSD"; }
  AssignmentMethod default_assignment() const override {
    return AssignmentMethod::kSortGreedy;  // As proposed (Table 1).
  }

 protected:
  Result<DenseMatrix> ComputeSimilarityImpl(const Graph& g1, const Graph& g2,
                                            const Deadline& deadline) override;

 private:
  NsdOptions options_;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_ALIGN_NSD_H_
