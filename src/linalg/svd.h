// Singular value decomposition via one-sided Jacobi rotations.
//
// Used by REGAL (Nyström landmark factorization), CONE (Procrustes updates),
// and the Moore-Penrose pseudo-inverse. One-sided Jacobi is simple, robust,
// and accurate for the small-to-medium matrices these call sites produce
// (landmark counts p ~ 10 log n, embedding dims d <= 512).
#ifndef GRAPHALIGN_LINALG_SVD_H_
#define GRAPHALIGN_LINALG_SVD_H_

#include "common/deadline.h"
#include "common/status.h"
#include "linalg/dense.h"

namespace graphalign {

struct SvdResult {
  // A (m x n) = U (m x r) * diag(singular_values) * V^T (r x n), with
  // r = min(m, n) and singular values in descending order.
  DenseMatrix u;
  std::vector<double> singular_values;
  DenseMatrix v;  // n x r; columns are right singular vectors.
};

// Thin SVD. Converges in O(min(m,n)^2 * max(m,n)) per sweep; a handful of
// sweeps suffice in practice. Fails only on non-finite input or an expired
// deadline (polled between Jacobi column-pair rotations).
Result<SvdResult> Svd(const DenseMatrix& a,
                      const Deadline& deadline = Deadline());

// Moore-Penrose pseudo-inverse computed from the SVD; singular values below
// `rcond * sigma_max` are treated as zero.
Result<DenseMatrix> PseudoInverse(const DenseMatrix& a, double rcond = 1e-10,
                                  const Deadline& deadline = Deadline());

// Orthogonal Procrustes: the orthogonal Q minimizing ||A Q - B||_F, obtained
// from the SVD of A^T B. A and B must be m x d with the same shape.
Result<DenseMatrix> ProcrustesRotation(const DenseMatrix& a,
                                       const DenseMatrix& b,
                                       const Deadline& deadline = Deadline());

struct QrResult {
  DenseMatrix q;  // m x r with orthonormal columns.
  DenseMatrix r;  // r x n upper triangular (rank-revealing: r <= n).
};

// Thin QR by modified Gram-Schmidt with column pivot-free rank truncation:
// columns whose residual norm falls below `tol * ||col||` are dropped, so
// q has full column rank. Used by LREA's low-rank compression.
Result<QrResult> ThinQr(const DenseMatrix& a, double tol = 1e-12,
                        const Deadline& deadline = Deadline());

}  // namespace graphalign

#endif  // GRAPHALIGN_LINALG_SVD_H_
