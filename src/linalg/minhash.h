// MinHash signatures and banded LSH keys for the sparse similarity pipeline
// (DESIGN.md §13).
//
// A node is summarized as a small set of integer tokens (degree buckets,
// neighborhood histogram buckets, optional graphlet orbits — built in
// align/sparse_candidates). MinHash compresses a token set into a fixed-width
// signature whose per-position collision probability equals the Jaccard
// similarity of the sets; banding the signature (the shasta LowHash idiom)
// turns "high Jaccard" into "same bucket in at least one band" without
// comparing all pairs.
//
// Everything here is a pure function of (tokens, seed): signatures are
// byte-identical across thread counts, platforms, and runs.
#ifndef GRAPHALIGN_LINALG_MINHASH_H_
#define GRAPHALIGN_LINALG_MINHASH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace graphalign {

// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation. Used as the
// hash family underlying MinHash (one seed per hash function) and for band
// keys.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// A family of `num_hashes` independent hash functions, seeded
// deterministically from `seed`.
class MinHasher {
 public:
  MinHasher(int num_hashes, uint64_t seed);

  int num_hashes() const { return static_cast<int>(seeds_.size()); }

  // Writes the MinHash signature of `tokens` to out[0..num_hashes):
  // out[k] = min over tokens t of Mix64(t ^ seed_k). An empty token set
  // yields a per-function sentinel (Mix64 of the seed itself) so empty sets
  // collide only with other empty sets.
  void Signature(std::span<const uint64_t> tokens, uint64_t* out) const;

 private:
  std::vector<uint64_t> seeds_;
};

// Order-sensitive key of one signature band (rows values starting at `sig`),
// mixed with a per-band seed so the same row values in different bands land
// in independent bucket spaces.
uint64_t BandKey(const uint64_t* sig, int rows, uint64_t band_seed);

}  // namespace graphalign

#endif  // GRAPHALIGN_LINALG_MINHASH_H_
