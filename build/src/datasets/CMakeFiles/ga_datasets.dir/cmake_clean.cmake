file(REMOVE_RECURSE
  "CMakeFiles/ga_datasets.dir/datasets.cc.o"
  "CMakeFiles/ga_datasets.dir/datasets.cc.o.d"
  "libga_datasets.a"
  "libga_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
