// Experiment harness shared by the figure/table benchmarks.
//
// Mirrors the paper's protocol (§5.1): for each configuration, several noisy
// instances are generated from one base graph, every algorithm aligns each
// instance, and averaged quality/timing is reported. Runtime of the
// similarity stage is reported separately from assignment (§6.2), and runs
// exceeding a time budget are reported as DNF — the same semantics as the
// paper's 3-hour limit (Table 3).
#ifndef GRAPHALIGN_BENCH_FRAMEWORK_EXPERIMENT_H_
#define GRAPHALIGN_BENCH_FRAMEWORK_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "align/aligner.h"
#include "common/status.h"
#include "graph/graph.h"
#include "metrics/metrics.h"
#include "noise/noise.h"

namespace graphalign {

// Command-line contract shared by all bench binaries:
//   --full           paper-scale sizes (default: scaled-down smoke sizes)
//   --reps N         repetitions per configuration
//   --algos A,B,C    restrict to a subset of algorithms
//   --csv PATH       also write the result table as CSV
//   --seed S         master seed
//   --time-limit T   per-run budget in seconds (DNF beyond it)
struct BenchArgs {
  bool full = false;
  int repetitions = 0;  // 0 = bench-specific default.
  std::vector<std::string> algorithms;  // Empty = all.
  std::string csv_path;
  uint64_t seed = 2023;
  double time_limit_seconds = 600.0;
};

BenchArgs ParseBenchArgs(int argc, char** argv);

// The algorithms selected by the args (all paper algorithms when empty).
std::vector<std::string> SelectedAlgorithms(const BenchArgs& args);

// Outcome of one or more alignment runs.
struct RunOutcome {
  bool completed = false;
  std::string error;          // Set when not completed.
  QualityReport quality;      // Averaged over completed repetitions.
  double similarity_seconds = 0.0;  // Averaged.
  double assignment_seconds = 0.0;  // Averaged.
  int completed_runs = 0;
};

// Runs `aligner` once on `problem`, timing similarity and assignment
// separately. The budget is enforced cooperatively: the similarity stage is
// given a Deadline and aborts with DNF soon after it expires, rather than
// only being flagged DNF after running to completion.
RunOutcome RunAligner(Aligner* aligner, const AlignmentProblem& problem,
                      AssignmentMethod method, double time_limit_seconds);

// The paper's averaged protocol: `reps` noisy instances from `base` per the
// options, aligned and averaged. Stops early (DNF) once the budget is spent.
RunOutcome RunAveraged(Aligner* aligner, const Graph& base,
                       const NoiseOptions& noise, AssignmentMethod method,
                       int reps, uint64_t seed, double time_limit_seconds);

// Formats an outcome's accuracy (or "DNF"/"ERR") for tables.
std::string FormatOutcome(const RunOutcome& outcome, double value);
std::string FormatAccuracy(const RunOutcome& outcome);

}  // namespace graphalign

#endif  // GRAPHALIGN_BENCH_FRAMEWORK_EXPERIMENT_H_
