// Alignment quality measures (paper §5.2): node correctness (accuracy),
// matched neighborhood consistency (MNC), edge correctness (EC), induced
// conserved structure (ICS), and the symmetric substructure score (S3).
#ifndef GRAPHALIGN_METRICS_METRICS_H_
#define GRAPHALIGN_METRICS_METRICS_H_

#include <vector>

#include "assignment/assignment.h"
#include "graph/graph.h"

namespace graphalign {

// Fraction of nodes u with alignment[u] == ground_truth[u] (§5.2.2).
double Accuracy(const Alignment& alignment,
                const std::vector<int>& ground_truth);

// Mean Jaccard similarity between the image of each node's neighborhood and
// the neighborhood of its match (Eq. 15). Nodes with no match score 0; a
// node whose mapped and target neighborhoods are both empty scores 1.
double MeanMatchedNeighborhoodConsistency(const Graph& g1, const Graph& g2,
                                          const Alignment& alignment);

// Edge-overlap statistics shared by EC / ICS / S3.
struct EdgeOverlap {
  int64_t source_edges = 0;     // |E_A|
  int64_t preserved_edges = 0;  // |f(E_A)|: source edges mapped onto edges.
  int64_t induced_edges = 0;    // |E(G_B[f(V_A)])|
};
EdgeOverlap ComputeEdgeOverlap(const Graph& g1, const Graph& g2,
                               const Alignment& alignment);

// EC = |f(E_A)| / |E_A| (§5.2.3).
double EdgeCorrectness(const Graph& g1, const Graph& g2,
                       const Alignment& alignment);

// ICS = |f(E_A)| / |E(G_B[f(V_A)])| (§5.2.3); 0 if the induced graph is empty.
double InducedConservedStructure(const Graph& g1, const Graph& g2,
                                 const Alignment& alignment);

// S3 = |f(E_A)| / (|E_A| + |E(G_B[f(V_A)])| - |f(E_A)|) (Eq. 16).
double SymmetricSubstructureScore(const Graph& g1, const Graph& g2,
                                  const Alignment& alignment);

// All five measures at once (cheaper than five separate passes).
struct QualityReport {
  double accuracy = 0.0;
  double mnc = 0.0;
  double ec = 0.0;
  double ics = 0.0;
  double s3 = 0.0;
};
QualityReport EvaluateAlignment(const Graph& g1, const Graph& g2,
                                const Alignment& alignment,
                                const std::vector<int>& ground_truth);

}  // namespace graphalign

#endif  // GRAPHALIGN_METRICS_METRICS_H_
