#!/usr/bin/env bash
# End-to-end exercise of the sweep robustness features (DESIGN.md §10):
#   1. a journaled baseline sweep,
#   2. an interrupted sweep resumed with --resume, whose CSV must be
#      byte-identical to the baseline,
#   3. a sweep with crashing/OOMing cells contained by --isolate.
#
# Usage: tools/run_sweep.sh [path-to-bench-binary]
# The binary must speak the common BenchArgs flags; bench_fig02_er is the
# default and what the ctest registration passes.
set -euo pipefail

BENCH="${1:-build/bench/bench_fig02_er}"
if [[ ! -x "$BENCH" ]]; then
  echo "bench binary not found: $BENCH (build it first)" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== 1/3 baseline journaled sweep =="
"$BENCH" --algos NSD,LREA --reps 1 --seed 7 \
  --journal "$WORK/full.tsv" --csv "$WORK/full.csv" > /dev/null
[[ -s "$WORK/full.csv" ]] || { echo "baseline csv missing" >&2; exit 1; }
[[ -s "$WORK/full.tsv" ]] || { echo "baseline journal missing" >&2; exit 1; }

echo "== 2/3 interrupted sweep, then --resume =="
# Simulate an interruption: only the NSD cells complete before the "crash".
"$BENCH" --algos NSD --reps 1 --seed 7 \
  --journal "$WORK/part.tsv" --csv "$WORK/part.csv" > /dev/null
# Resume the full sweep on the partial journal: NSD replays, LREA computes.
"$BENCH" --algos NSD,LREA --reps 1 --seed 7 --resume \
  --journal "$WORK/part.tsv" --csv "$WORK/resumed.csv" > /dev/null
if ! cmp -s "$WORK/full.csv" "$WORK/resumed.csv"; then
  echo "resumed sweep diverged from the uninterrupted baseline:" >&2
  diff "$WORK/full.csv" "$WORK/resumed.csv" >&2 || true
  exit 1
fi
echo "resume reproduced the baseline CSV byte-identically"

echo "== 3/3 crash/OOM containment =="
"$BENCH" --algos NSD,_CRASH,_OOM --reps 1 --seed 7 \
  --isolate --mem-limit 512 --time-limit 60 \
  --csv "$WORK/contained.csv" > /dev/null
grep -q "CRASH" "$WORK/contained.csv" || {
  echo "expected CRASH cells in the contained sweep" >&2; exit 1; }
grep -q "OOM" "$WORK/contained.csv" || {
  echo "expected OOM cells in the contained sweep" >&2; exit 1; }
if grep "^NSD," "$WORK/contained.csv" | grep -Eq "CRASH|OOM"; then
  echo "healthy NSD cells were poisoned by faulting neighbors" >&2
  exit 1
fi
grep -cq "^NSD," "$WORK/contained.csv" || {
  echo "NSD cells missing from the contained sweep" >&2; exit 1; }
echo "faulting cells contained; healthy cells unaffected"

echo "all sweep robustness checks passed"
