file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_nw.dir/bench_fig05_nw.cc.o"
  "CMakeFiles/bench_fig05_nw.dir/bench_fig05_nw.cc.o.d"
  "bench_fig05_nw"
  "bench_fig05_nw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_nw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
