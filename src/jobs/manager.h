// Durable async job table: the state machine over the journal (DESIGN.md §17).
//
// A job is an opaque spec (the server encodes an AlignRequest into it; this
// layer never looks inside) with a content-derived id and an optional client
// idempotency key. States:
//
//             +----------------------------- cancel ----------------+
//             v                                                      |
//   ACCEPTED ---claim---> RUNNING ---done--------> DONE              |
//      ^                    |  \----failed-------> FAILED            |
//      |                    |   \---quarantined--> QUARANTINED       |
//      |                    \-----retryable----+                     |
//      |                       attempts < max  |  attempts == max    |
//      +---------------------------------------+--------> FAILED    |
//                                                                    v
//                                                               CANCELLED
//
// Every transition is journaled (jobs/journal.h) *before* it takes effect,
// so replay after `kill -9` reconstructs the table exactly: DONE jobs keep
// their results, RUNNING jobs go back to ACCEPTED (counted as recovered)
// unless their attempts are exhausted — then they become a typed FAILED,
// never a retry storm. Terminal states are absorbing: completions arriving
// for a cancelled job are ignored, cancel of a finished job is refused.
//
// Idempotency: the content id is a 64-bit hash of the spec bytes, so
// resubmitting identical content returns the existing job (existing=true)
// without re-executing — including DONE jobs, whose stored result is served
// again. An idempotency key pins that contract across clients: reusing a
// key with *different* content is refused (FailedPrecondition → CONFLICT)
// rather than silently aliased. FAILED and CANCELLED jobs are the one
// exception: resubmitting them starts a fresh attempt cycle.
#ifndef GRAPHALIGN_JOBS_MANAGER_H_
#define GRAPHALIGN_JOBS_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "jobs/journal.h"

namespace graphalign {

enum class JobState : uint32_t {
  kAccepted = 0,     // Journaled, waiting for a runner.
  kRunning = 1,      // Claimed by a runner; an execution is in flight.
  kDone = 2,         // Finished; result bytes stored in the journal.
  kFailed = 3,       // Terminal failure (typed via terminal_code).
  kQuarantined = 4,  // Input quarantined; resubmission returns this verdict.
  kCancelled = 5,    // Client-cancelled; late completions are ignored.
};

// "ACCEPTED", "RUNNING", ... — the wire/state names used by protocol and
// gateway JSON. Unknown values name as "UNKNOWN".
const char* JobStateName(JobState state);

inline bool JobStateTerminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kQuarantined || s == JobState::kCancelled;
}

// Content-derived job id: FNV-1a over the spec bytes (never 0; 0 means "no
// job"). Two submissions with byte-identical specs are the same job.
uint64_t JobContentId(std::string_view spec_bytes);

struct JobRecord {
  uint64_t job_id = 0;
  std::string idem_key;
  std::string spec_bytes;
  JobState state = JobState::kAccepted;
  uint32_t attempts = 0;      // Executions started (claims), incl. recovered.
  uint32_t max_attempts = 1;
  uint64_t submitted_unix_ms = 0;
  uint64_t updated_unix_ms = 0;  // Timestamp of the latest transition.
  uint32_t terminal_code = 0;    // Opaque failure code (FAILED/QUARANTINED).
  std::string message;           // Human-readable outcome detail.
  std::string result_bytes;      // DONE only; opaque to this layer.
};

struct JobManagerOptions {
  std::string dir;            // Journal directory (required).
  uint32_t max_attempts = 3;  // Executions per job before typed FAILED.
  uint64_t ttl_seconds = 24 * 3600;  // Terminal-job retention before Gc.
  uint64_t compact_bytes = 4u << 20;  // Gc compacts once the log exceeds this.
  // terminal_code stamped on jobs whose attempts are exhausted (at recovery
  // or retryable completion). Opaque here; the server passes its CRASH code.
  uint32_t exhausted_terminal_code = 0;
};

struct JobManagerStats {
  uint64_t submitted = 0;   // Fresh submissions journaled.
  uint64_t deduped = 0;     // Submissions answered from an existing job.
  uint64_t done = 0;        // Transitions into DONE.
  uint64_t failed = 0;      // Transitions into FAILED or QUARANTINED.
  uint64_t cancelled = 0;   // Transitions into CANCELLED.
  uint64_t executions = 0;  // Claims handed to runners.
  uint64_t recovered = 0;   // RUNNING jobs re-enqueued at startup replay.
  uint64_t pending = 0;     // Jobs currently ACCEPTED or RUNNING.
  uint64_t gced = 0;        // Terminal jobs expired by Gc.
  uint64_t journal_bytes = 0;
  uint64_t journal_append_errors = 0;
  uint64_t replay_events = 0;          // Journal records applied at Open.
  uint64_t replay_crc_skipped = 0;     // Bad-CRC records skipped at Open.
  uint64_t replay_truncated_bytes = 0;  // Torn tail dropped at Open.
};

class JobManager {
 public:
  // One submission's outcome: the job's current record plus whether it was
  // deduplicated onto a previously submitted job.
  struct SubmitOutcome {
    JobRecord record;
    bool existing = false;
  };

  // Opens the journal under options.dir, replays it, and applies the
  // recovery rules (RUNNING → re-enqueue or exhausted-FAILED, journaled
  // with `now_ms` timestamps). Fails only when the journal file itself is
  // unusable, never because of its content.
  static Result<std::unique_ptr<JobManager>> Open(
      const JobManagerOptions& options, uint64_t now_ms);

  ~JobManager();
  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  // Submits (or deduplicates) a job. Errors: InvalidArgument on empty spec,
  // FailedPrecondition when `idem_key` is already bound to different
  // content, Unavailable when the journal append fails (the job is NOT
  // accepted — durability is the contract, so an unjournaled job is
  // refused, not half-kept).
  Result<SubmitOutcome> Submit(const std::string& idem_key,
                               std::string spec_bytes, uint64_t now_ms);

  // Snapshot of one job / all jobs. NotFound when the id was never
  // submitted or has been GC'd. List() omits spec/result bytes.
  Result<JobRecord> Get(uint64_t job_id) const;
  std::vector<JobRecord> List() const;

  // Blocks until a job can be claimed or Stop() is called (false). On
  // success the job has transitioned ACCEPTED → RUNNING (journaled, attempt
  // counted), *out holds its record (spec included), and *cancel is a flag
  // the runner must poll: it flips when the client cancels the job.
  bool ClaimNext(JobRecord* out,
                 std::shared_ptr<std::atomic<bool>>* cancel);

  // Completions, called by the runner for a job it claimed. All are no-ops
  // (Ok) when the job is no longer RUNNING — a cancel won the race and the
  // result is discarded. CompleteRetryable re-enqueues the job unless its
  // attempts are exhausted, in which case it becomes FAILED with the
  // options' exhausted_terminal_code.
  Status CompleteDone(uint64_t job_id, std::string result_bytes,
                      uint64_t now_ms);
  Status CompleteFailed(uint64_t job_id, uint32_t terminal_code,
                        const std::string& message, bool quarantined,
                        uint64_t now_ms);
  Status CompleteRetryable(uint64_t job_id, const std::string& message,
                           uint64_t now_ms);

  // Cancels a job: ACCEPTED leaves the queue, RUNNING gets its cancel flag
  // flipped (the in-flight child is killed by the runner's poll) and any
  // late completion is ignored. NotFound for unknown ids,
  // FailedPrecondition for jobs already terminal.
  Result<JobRecord> Cancel(uint64_t job_id, uint64_t now_ms);

  // Expires terminal jobs older than ttl_seconds and compacts the journal
  // when it has grown past compact_bytes (or anything was expired).
  Status Gc(uint64_t now_ms);

  // fsyncs the journal: the explicit seal for SIGTERM drain.
  Status Seal();

  // Wakes every ClaimNext waiter to return false. Idempotent.
  void Stop();

  JobManagerStats Stats() const;

 private:
  explicit JobManager(JobManagerOptions options);

  // Journal event codecs + application (mu_ held).
  std::string EncodeSubmitEvent(const JobRecord& r) const;
  std::string EncodeStateEvent(const JobRecord& r) const;
  void ApplyEvent(std::string_view payload);
  Status JournalState(const JobRecord& r);  // Append + count errors.

  const JobManagerOptions options_;
  std::unique_ptr<JobJournal> journal_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
  std::unordered_map<uint64_t, JobRecord> jobs_;
  std::unordered_map<std::string, uint64_t> idem_;  // key → job_id
  std::deque<uint64_t> queue_;                      // FIFO of ACCEPTED ids.
  std::unordered_map<uint64_t, std::shared_ptr<std::atomic<bool>>> cancels_;

  // Counters (mu_ held). Replay stats are filled once at Open.
  uint64_t submitted_ = 0, deduped_ = 0, done_ = 0, failed_ = 0;
  uint64_t cancelled_ = 0, executions_ = 0, recovered_ = 0, gced_ = 0;
  uint64_t replay_bad_events_ = 0;
  JobJournal::ReplayStats replay_stats_;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_JOBS_MANAGER_H_
