file(REMOVE_RECURSE
  "CMakeFiles/bench_table03_summary.dir/bench_table03_summary.cc.o"
  "CMakeFiles/bench_table03_summary.dir/bench_table03_summary.cc.o.d"
  "bench_table03_summary"
  "bench_table03_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table03_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
