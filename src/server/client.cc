#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace graphalign {

namespace {

void SetTimeouts(int fd, double seconds) {
  if (seconds <= 0.0) return;
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

Result<Client> Client::Connect(const ClientOptions& options) {
  if (!options.socket_path.empty() && options.port >= 0) {
    return Status::InvalidArgument(
        "client: choose one transport (socket path or port), not both");
  }
  if (options.socket_path.empty() && options.port < 0) {
    return Status::InvalidArgument(
        "client: a Unix socket path or a TCP port is required");
  }
  int fd = -1;
  if (!options.socket_path.empty()) {
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options.socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("client: socket path too long: " +
                                     options.socket_path);
    }
    std::strncpy(addr.sun_path, options.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Internal("socket() failed: " +
                              std::string(strerror(errno)));
    }
    if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
      const std::string detail = strerror(errno);
      close(fd);
      return Status::NotFound("cannot connect to " + options.socket_path +
                              ": " + detail);
    }
  } else {
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options.port));
    if (inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument(
          "client: host must be a numeric IPv4 address, got " + options.host);
    }
    fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Internal("socket() failed: " +
                              std::string(strerror(errno)));
    }
    if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
      const std::string detail = strerror(errno);
      close(fd);
      return Status::NotFound("cannot connect to " + options.host + ":" +
                              std::to_string(options.port) + ": " + detail);
    }
  }
  SetTimeouts(fd, options.timeout_seconds);
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

Result<Response> Client::Call(const Request& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client: not connected");
  GA_RETURN_IF_ERROR(WriteFrameToFd(fd_, EncodeRequest(request)));
  std::string payload;
  GA_ASSIGN_OR_RETURN(const bool got_frame, ReadFrameFromFd(fd_, &payload));
  if (!got_frame) {
    return Status::Internal(
        "server closed the connection without responding");
  }
  return DecodeResponse(payload);
}

Result<Response> CallWithRetry(const ClientOptions& options,
                               const Request& request,
                               const RetryPolicy& policy) {
  Backoff backoff(policy);
  const int attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
  Result<Response> last = Status::Internal("CallWithRetry: no attempt ran");
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    auto client = Client::Connect(options);
    if (!client.ok()) {
      last = client.status();
    } else {
      last = client->Call(request);
    }
    bool transient;
    if (last.ok()) {
      // BUSY, SHUTTING_DOWN, and SHED are the daemon's own "try again /
      // try elsewhere" answers; everything else — QUARANTINED included,
      // since quarantine outlives any backoff — is a final verdict.
      transient = last->code == ResponseCode::kBusy ||
                  last->code == ResponseCode::kShuttingDown ||
                  last->code == ResponseCode::kShed;
    } else {
      // Any transport-level failure could be the daemon starting up,
      // restarting, or shedding load by dropping connections.
      transient = true;
    }
    if (!transient || attempt == attempts) return last;
    // A server-provided backoff hint (Retry-After over HTTP) beats the
    // client's jittered schedule: the daemon knows its own queue and quota
    // refill; guessing longer wastes latency, guessing shorter wastes a
    // doomed round trip.
    const uint64_t hint_ms = last.ok() ? last->retry_after_ms : 0;
    SleepForMs(hint_ms > 0 ? hint_ms : backoff.NextDelayMs());
  }
  return last;
}

}  // namespace graphalign
