# Empty dependencies file for bench_fig01_assignment.
# This may be replaced when dependencies are built.
