#include "align/graal.h"

#include <algorithm>
#include <numeric>
#include <cmath>
#include <limits>
#include <vector>

#include "common/parallel.h"
#include "graph/graphlets.h"

namespace graphalign {

namespace {

// Orbit dependency counts for orbits 0-14 (how many orbits an orbit's count
// depends on), used in the signature weights w_i = 1 - log(o_i)/log(T).
constexpr int kOrbitDependencies[kNumOrbits] = {1, 2, 2, 2, 2, 3, 2, 3,
                                                3, 3, 3, 4, 3, 4, 4};

// Per-orbit weights for a signature of `total` orbits. Orbits 0-14 use the
// published dependency counts; 5-node orbits approximate the dependency
// count by the graphlet's edge count scale (between 4 and 5), which matches
// the published weights' trend of decreasing with graphlet complexity.
std::vector<double> SignatureWeights(int total) {
  std::vector<double> weights(total);
  const double log_total = std::log(static_cast<double>(total));
  for (int i = 0; i < total; ++i) {
    const double deps = i < kNumOrbits
                            ? static_cast<double>(kOrbitDependencies[i])
                            : 4.0 + (i - kNumOrbits) /
                                        static_cast<double>(kNumOrbits5);
    weights[i] = 1.0 - std::log(deps) / log_total;
  }
  return weights;
}

}  // namespace

Result<DenseMatrix> GraphletSignatureSimilarity(const Graph& g1,
                                                const Graph& g2,
                                                int64_t max_subgraphs,
                                                bool full_gdv,
                                                const Deadline& deadline) {
  DenseMatrix o1, o2;
  if (full_gdv) {
    GA_ASSIGN_OR_RETURN(o1, CountGraphletOrbits73(g1, max_subgraphs, deadline));
    GA_ASSIGN_OR_RETURN(o2, CountGraphletOrbits73(g2, max_subgraphs, deadline));
  } else {
    GA_ASSIGN_OR_RETURN(o1, CountGraphletOrbits(g1, max_subgraphs, deadline));
    GA_ASSIGN_OR_RETURN(o2, CountGraphletOrbits(g2, max_subgraphs, deadline));
  }
  // The signature-distance pass below is a single bounded parallel region
  // (n1 * n2 * total flops); it is covered by the enclosing check interval.
  GA_RETURN_IF_EXPIRED(deadline, "GRAAL signature");
  const int total = o1.cols();
  const std::vector<double> weights = SignatureWeights(total);
  const double weight_sum =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  const int n1 = g1.num_nodes();
  const int n2 = g2.num_nodes();
  DenseMatrix sim(n1, n2);
  ParallelFor(n1, [&](int64_t lo, int64_t hi) {
    for (int u = static_cast<int>(lo); u < hi; ++u) {
      const double* a = o1.Row(u);
      double* out = sim.Row(u);
      for (int v = 0; v < n2; ++v) {
        const double* b = o2.Row(v);
        double dist = 0.0;
        for (int i = 0; i < total; ++i) {
          const double num = std::fabs(std::log(a[i] + 1.0) -
                                       std::log(b[i] + 1.0));
          const double den = std::log(std::max(a[i], b[i]) + 2.0);
          dist += weights[i] * num / den;
        }
        out[v] = 1.0 - dist / weight_sum;
      }
    }
  }, std::max<int64_t>(2, 100'000 / (n2 + 1)));
  return sim;
}

Result<DenseMatrix> GraalAligner::ComputeSimilarityImpl(
    const Graph& g1, const Graph& g2, const Deadline& deadline) {
  GA_RETURN_IF_ERROR(ValidateInputs(g1, g2));
  if (options_.alpha < 0.0 || options_.alpha > 1.0) {
    return Status::InvalidArgument("GRAAL: alpha outside [0,1]");
  }
  GA_ASSIGN_OR_RETURN(
      DenseMatrix sig,
      GraphletSignatureSimilarity(g1, g2, options_.max_subgraphs,
                                  options_.use_five_node_orbits, deadline));
  const double denom =
      std::max(1, g1.MaxDegree() + g2.MaxDegree());
  // Similarity = 2 - C = (1-alpha) degree term + alpha signature term,
  // shifted so values live in [0, 2] exactly as Eq. 2's complement.
  DenseMatrix sim(g1.num_nodes(), g2.num_nodes());
  for (int u = 0; u < g1.num_nodes(); ++u) {
    const double du = g1.Degree(u);
    double* out = sim.Row(u);
    const double* srow = sig.Row(u);
    for (int v = 0; v < g2.num_nodes(); ++v) {
      out[v] = (1.0 - options_.alpha) * (du + g2.Degree(v)) / denom +
               options_.alpha * srow[v];
    }
  }
  return sim;
}

Result<Alignment> GraalAligner::AlignNativeImpl(const Graph& g1,
                                                const Graph& g2,
                                                const Deadline& deadline) {
  GA_ASSIGN_OR_RETURN(DenseMatrix sim, ComputeSimilarity(g1, g2, deadline));
  const int n1 = g1.num_nodes();
  const int n2 = g2.num_nodes();
  Alignment align(n1, -1);
  std::vector<bool> used2(n2, false);
  int matched = 0;
  const int target = std::min(n1, n2);

  // BFS ring at exact distance r from `src`, restricted to unmatched nodes.
  auto rings_from = [](const Graph& g, int src) {
    std::vector<int> dist(g.num_nodes(), -1);
    dist[src] = 0;
    std::vector<int> frontier = {src};
    std::vector<std::vector<int>> rings;
    while (!frontier.empty()) {
      std::vector<int> next;
      for (int u : frontier) {
        for (int v : g.Neighbors(u)) {
          if (dist[v] == -1) {
            dist[v] = dist[u] + 1;
            next.push_back(v);
          }
        }
      }
      if (!next.empty()) rings.push_back(next);
      frontier = std::move(next);
    }
    return rings;
  };

  while (matched < target) {
    // Each seed-and-extend round scans O(n1 * n2) for the seed, so checking
    // once per round keeps the overshoot within one round.
    GA_RETURN_IF_EXPIRED(deadline, "GRAAL seed-and-extend");
    // Seed: globally most similar unmatched pair.
    int su = -1, sv = -1;
    double best = -std::numeric_limits<double>::infinity();
    for (int u = 0; u < n1; ++u) {
      if (align[u] != -1) continue;
      const double* row = sim.Row(u);
      for (int v = 0; v < n2; ++v) {
        if (!used2[v]) {
          if (row[v] > best) {
            best = row[v];
            su = u;
            sv = v;
          }
        }
      }
    }
    if (su < 0) break;
    align[su] = sv;
    used2[sv] = true;
    ++matched;

    // Extend: greedily align same-radius BFS spheres around the seeds.
    std::vector<std::vector<int>> rings1 = rings_from(g1, su);
    std::vector<std::vector<int>> rings2 = rings_from(g2, sv);
    const size_t radius = std::min(rings1.size(), rings2.size());
    for (size_t r = 0; r < radius && matched < target; ++r) {
      std::vector<int> cand1, cand2;
      for (int u : rings1[r]) {
        if (align[u] == -1) cand1.push_back(u);
      }
      for (int v : rings2[r]) {
        if (!used2[v]) cand2.push_back(v);
      }
      if (cand1.empty() || cand2.empty()) continue;
      // Greedy pairing by descending similarity within the sphere.
      std::vector<std::pair<double, std::pair<int, int>>> pairs;
      pairs.reserve(cand1.size() * cand2.size());
      for (int u : cand1) {
        for (int v : cand2) pairs.push_back({sim(u, v), {u, v}});
      }
      std::sort(pairs.begin(), pairs.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      for (const auto& [s, uv] : pairs) {
        if (matched >= target) break;
        const auto [u, v] = uv;
        if (align[u] != -1 || used2[v]) continue;
        align[u] = v;
        used2[v] = true;
        ++matched;
      }
    }
  }
  return align;
}

}  // namespace graphalign
