// Multiple-network alignment across "species": the IsoRankN-style extension
// (paper §3.1) built from pairwise aligners via star composition.
//
// Four related interactomes (a base species and three diverged variants)
// are aligned jointly; the output clusters group proteins believed to play
// the same role in every species — the "functional orthologs" a biologist
// would feed into downstream enrichment analysis.
//
// Build & run:  ./build/examples/multi_species_ppi [--full]
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "align/cone.h"
#include "align/multi.h"
#include "common/random.h"
#include "common/table.h"
#include "datasets/datasets.h"
#include "noise/noise.h"

int main(int argc, char** argv) {
  using namespace graphalign;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  auto base = MakeStandIn("MultiMagna", /*seed=*/21, full ? 1.0 : 0.25);
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }
  // Three diverged species: 2% / 4% / 6% two-way structural drift.
  Rng rng(55);
  std::vector<Graph> species = {*base};
  for (int i = 1; i <= 3; ++i) {
    NoiseOptions drift;
    drift.type = NoiseType::kTwoWay;
    drift.level = 0.02 * i;
    auto prob = MakeAlignmentProblem(*base, drift, &rng);
    if (!prob.ok()) {
      std::fprintf(stderr, "%s\n", prob.status().ToString().c_str());
      return 1;
    }
    species.push_back(prob->g2);
  }
  std::printf("aligning %zu interactomes of %d proteins each\n",
              species.size(), base->num_nodes());

  ConeAligner cone;
  auto result = AlignMultiple(species, &cone,
                              AssignmentMethod::kJonkerVolgenant);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  auto clusters = AlignmentClusters(*result, species);

  // Cluster census: complete clusters contain one protein per species.
  int complete = 0;
  for (const auto& cluster : clusters) {
    std::vector<bool> seen(species.size(), false);
    for (const auto& [g, u] : cluster) seen[g] = true;
    bool all = true;
    for (bool s : seen) all = all && s;
    complete += all;
  }
  std::printf("reference species: %d\n", result->reference);
  std::printf("ortholog clusters: %zu total, %d spanning all %zu species\n",
              clusters.size(), complete, species.size());

  // Any-to-any correspondence through the star: species 1 -> species 3.
  auto map13 = ComposeAlignment(*result, species, 1, 3);
  if (map13.ok()) {
    int mapped = 0;
    for (int v : *map13) mapped += (v >= 0);
    std::printf("species1 -> species3 composed map covers %d/%zu proteins\n",
                mapped, map13->size());
  }
  return complete > 0 ? 0 : 1;
}
