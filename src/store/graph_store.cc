#include "store/graph_store.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace graphalign {

namespace {

constexpr char kGstSuffix[] = ".gst";
constexpr char kCorruptSuffix[] = ".gst.corrupt";

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

uint64_t FileBytes(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size) : 0;
}

}  // namespace

std::string GraphStore::HashName(uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

Result<uint64_t> GraphStore::ParseHashName(const std::string& name) {
  if (name.size() != 16) {
    return Status::InvalidArgument("store: hash must be 16 hex digits: " +
                                   name);
  }
  uint64_t hash = 0;
  for (char c : name) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return Status::InvalidArgument("store: bad hex digit in hash: " + name);
    }
    hash = (hash << 4) | static_cast<uint64_t>(digit);
  }
  return hash;
}

Result<std::unique_ptr<GraphStore>> GraphStore::Open(const std::string& dir) {
  if (dir.empty()) {
    return Status::InvalidArgument("store: directory path is empty");
  }
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Unavailable("store: cannot create " + dir + ": " +
                               std::string(strerror(errno)));
  }
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    return Status::Unavailable("store: cannot open " + dir + ": " +
                               std::string(strerror(errno)));
  }
  closedir(d);
  return std::unique_ptr<GraphStore>(new GraphStore(dir));
}

std::string GraphStore::PathFor(uint64_t hash) const {
  return dir_ + "/" + HashName(hash) + kGstSuffix;
}

void GraphStore::Quarantine(uint64_t hash, const std::string& path) {
  // Rename, never delete: the corpse stays inspectable until `store gc`,
  // and the original name frees up for a clean re-upload.
  (void)rename(path.c_str(), (path + ".corrupt").c_str());
  mapped_.erase(hash);
  ++counters_.corrupt;
}

Result<uint64_t> GraphStore::Put(const Graph& g, bool* already_present) {
  const uint64_t hash = g.ContentHash();
  const std::string path = PathFor(hash);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.puts;
  }
  struct stat st;
  if (stat(path.c_str(), &st) == 0) {
    // Content addressing makes this a true dedupe hit — same hash, same
    // bytes. (If the existing copy is secretly corrupt, the next Get will
    // quarantine it; overwriting here would hide the evidence.)
    if (already_present != nullptr) *already_present = true;
    return hash;
  }
  if (already_present != nullptr) *already_present = false;
  GA_RETURN_IF_ERROR(WriteGstFile(g, path));
  return hash;
}

bool GraphStore::Has(uint64_t hash) const {
  struct stat st;
  return stat(PathFor(hash).c_str(), &st) == 0;
}

Result<Graph> GraphStore::Get(uint64_t hash) {
  const std::string path = PathFor(hash);
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.gets;
  auto it = mapped_.find(hash);
  if (it != mapped_.end()) {
    return it->second;
  }
  GstInfo info;
  Result<Graph> opened = OpenGstFile(path, &info);
  if (!opened.ok()) {
    if (opened.status().code() == StatusCode::kNotFound) {
      ++counters_.missing;
      return Status::NotFound("store: no graph " + HashName(hash));
    }
    if (opened.status().code() == StatusCode::kCorrupt) {
      Quarantine(hash, path);
      return Status::Corrupt("store: " + HashName(hash) +
                             " failed verification and was quarantined: " +
                             opened.status().message());
    }
    return opened.status();  // Transient (kUnavailable): no quarantine.
  }
  // The filename is a promise about the content; a mismatch means the
  // bytes verify as *some* graph, just not the one they claim to be.
  if (info.content_hash != hash) {
    Quarantine(hash, path);
    return Status::Corrupt("store: " + HashName(hash) +
                           " header declares different content hash " +
                           HashName(info.content_hash) + "; quarantined");
  }
  mapped_.emplace(hash, *opened);
  return std::move(opened).value();
}

Result<std::vector<GraphStore::Entry>> GraphStore::List() const {
  DIR* d = opendir(dir_.c_str());
  if (d == nullptr) {
    return Status::Unavailable("store: cannot open " + dir_ + ": " +
                               std::string(strerror(errno)));
  }
  std::vector<Entry> entries;
  for (struct dirent* de = readdir(d); de != nullptr; de = readdir(d)) {
    const std::string name = de->d_name;
    Entry entry;
    std::string stem;
    if (EndsWith(name, kCorruptSuffix)) {
      entry.corrupt = true;
      stem = name.substr(0, name.size() - strlen(kCorruptSuffix));
    } else if (EndsWith(name, kGstSuffix)) {
      stem = name.substr(0, name.size() - strlen(kGstSuffix));
    } else {
      continue;
    }
    Result<uint64_t> hash = ParseHashName(stem);
    if (!hash.ok()) continue;  // Foreign file; not ours to report.
    entry.hash = *hash;
    entry.file_bytes = FileBytes(dir_ + "/" + name);
    entries.push_back(entry);
  }
  closedir(d);
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.hash < b.hash; });
  return entries;
}

Result<GraphStore::FsckReport> GraphStore::Fsck() {
  GA_ASSIGN_OR_RETURN(std::vector<Entry> entries, List());
  FsckReport report;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& entry : entries) {
    if (entry.corrupt) continue;  // Already quarantined.
    ++report.checked;
    const std::string path = PathFor(entry.hash);
    GstInfo info;
    Result<Graph> opened = OpenGstFile(path, &info);
    bool good = opened.ok() && info.content_hash == entry.hash &&
                // Deep check: the name must match the *recomputed* hash,
                // not just the header's claim about itself.
                opened->ContentHash() == entry.hash;
    if (good) {
      ++report.ok;
      continue;
    }
    if (opened.ok() || opened.status().code() == StatusCode::kCorrupt) {
      Quarantine(entry.hash, path);
      ++report.corrupt;
      report.quarantined.push_back(path + ".corrupt");
    }
    // kUnavailable/kNotFound: transient or raced away — neither corrupt
    // nor ok; it simply is not counted against the repository.
  }
  return report;
}

Result<GraphStore::GcReport> GraphStore::Gc() {
  DIR* d = opendir(dir_.c_str());
  if (d == nullptr) {
    return Status::Unavailable("store: cannot open " + dir_ + ": " +
                               std::string(strerror(errno)));
  }
  std::vector<std::string> doomed;
  for (struct dirent* de = readdir(d); de != nullptr; de = readdir(d)) {
    const std::string name = de->d_name;
    if (EndsWith(name, kCorruptSuffix) ||
        name.find(".tmp-") != std::string::npos) {
      doomed.push_back(dir_ + "/" + name);
    }
  }
  closedir(d);
  GcReport report;
  for (const std::string& path : doomed) {
    const uint64_t bytes = FileBytes(path);
    if (unlink(path.c_str()) == 0) {
      ++report.removed;
      report.bytes_freed += bytes;
    }
  }
  return report;
}

GraphStore::Counters GraphStore::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace graphalign
