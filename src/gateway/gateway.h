// Embedded HTTP/JSON gateway in front of the alignment daemon
// (DESIGN.md §16).
//
// The gateway is an HTTP/1.1 server (gateway/http.h) that translates JSON
// requests into GAF1 calls against a running daemon and maps the typed
// ResponseCode taxonomy onto HTTP statuses. It deliberately runs as a
// *client* of the daemon — even when both live in one process (`serve
// --http-port`) — so admission control, per-client quotas, shedding,
// quarantine, the result cache, and the stats counters apply to HTTP
// traffic unchanged, with zero parallel enforcement paths.
//
// Routes:
//   GET  /healthz              daemon ping → 200 "ok" | 503
//   GET  /stats                daemon kServerStats + gateway counters, JSON
//   POST /v1/graphs            {"n","edges"} → kPutGraph → {"hash",...}
//   GET  /v1/graphs/<16hex>    kHasGraph → 200 | 404
//   POST /v1/align             JSON align job (inline or *_hash) → kAlign
//   POST /v1/align:batch       {"graphs":[...],"jobs":[...]} → kAlignBatch
//   POST   /v1/jobs            align JSON + optional "idem_key"
//                              → kSubmitJob → 202 job envelope
//   GET    /v1/jobs/<16hex>    kJobStatus (+ embedded "result" once DONE)
//   DELETE /v1/jobs/<16hex>    kCancelJob → 200 | 404 | 409
//
// Status mapping (mirrors the exit-code table; the JSON body always
// carries the exact code name in "status"):
//   OK→200  ACCEPTED→202  PARTIAL→207  BAD_REQUEST→400
//   NO_GRAPH/NO_JOB→404  BUSY→429  SHED/SHUTTING_DOWN→503  DNF→504
//   QUARANTINED/CONFLICT→409  ERROR/CRASH/OOM/NUMERICAL→500
// plus gateway-local 400 (bad HTTP/JSON), 404 (unknown route), 405, 408
// (idle/slowloris timeout), 413 (body cap), 431 (head cap), 501
// (unsupported framing), 503 (connection limit).
//
// Transient rejections (429 quota, 503 busy/shed/drain, and the gateway's
// own accept-time 503) carry a Retry-After header (delta-seconds, rounded
// up) plus "retry_after_ms" in the body — the server-side backoff hint
// `submit --retries` honors over its jitter schedule.
#ifndef GRAPHALIGN_GATEWAY_GATEWAY_H_
#define GRAPHALIGN_GATEWAY_GATEWAY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "gateway/http.h"
#include "gateway/json.h"
#include "server/client.h"
#include "server/protocol.h"

namespace graphalign {

struct GatewayOptions {
  // TCP port to serve HTTP on (loopback only). 0 = kernel-assigned; read
  // the bound port back with port().
  int http_port = 0;

  // How to reach the daemon (server/client.h). Every HTTP request becomes
  // one GAF1 call over a fresh backend connection.
  ClientOptions backend;

  int workers = 4;

  // Admission bound shared by the queue and the workers: connections
  // beyond this many queued-or-in-flight are answered 503 at accept time,
  // the HTTP analogue of the daemon's typed BUSY.
  int max_connections = 64;

  // Per-connection socket timeout; also the budget for reading one full
  // request head, so a slowloris drip cannot hold a worker (408).
  double io_timeout_seconds = 10.0;

  // Parser caps (413/431). max_body_bytes must admit the largest inline
  // batch a client may legitimately send.
  HttpLimits limits;
};

// HTTP-side counters, surfaced under "gateway" in GET /stats. These count
// what the daemon cannot see: connections turned away before any GAF1
// call existed.
struct GatewayStats {
  uint64_t connections = 0;        // Accepted sockets.
  uint64_t requests = 0;           // HTTP requests answered (any status).
  uint64_t rejected_overload = 0;  // 503 at accept (connection limit).
  uint64_t bad_requests = 0;       // 400/431/501 from the HTTP parser.
  uint64_t oversized = 0;          // 413 (body cap).
  uint64_t timeouts = 0;           // 408 (idle / slow request).
  uint64_t backend_errors = 0;     // GAF1 call failed (daemon unreachable).
};

class Gateway {
 public:
  static Result<std::unique_ptr<Gateway>> Create(const GatewayOptions& options);
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  Status Start();
  void Shutdown();  // Stop accepting, cut live connections.
  void Wait();      // Join all threads.

  int port() const;  // Bound HTTP port.
  GatewayStats stats() const;

 private:
  class Impl;
  explicit Gateway(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

// The HTTP status for a daemon response code (the table above). Exposed
// for tests and the CLI so the mapping is pinned in exactly one place.
int HttpStatusForResponseCode(ResponseCode code);

// Builds a kAlignBatch request from the batch JSON schema (README):
//   {"graphs":[{"hash":"16hex"}|{"n":N,"edges":[[u,v],...]}, ...],
//    "jobs":[{"g1":i,"g2":j,"algo":"...",("assign","deadline_ms",
//             "mem_limit_mb","no_cache")}, ...], ("client")}
// Shared by POST /v1/align:batch and `graphalign submit --batch` so the
// two entry points cannot drift. InvalidArgument names the violation.
Status BatchRequestFromJson(const JsonValue& body, Request* request);

}  // namespace graphalign

#endif  // GRAPHALIGN_GATEWAY_GATEWAY_H_
