file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_grasp_disconnect.dir/bench_ablation_grasp_disconnect.cc.o"
  "CMakeFiles/bench_ablation_grasp_disconnect.dir/bench_ablation_grasp_disconnect.cc.o.d"
  "bench_ablation_grasp_disconnect"
  "bench_ablation_grasp_disconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_grasp_disconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
