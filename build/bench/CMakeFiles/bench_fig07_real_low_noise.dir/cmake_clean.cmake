file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_real_low_noise.dir/bench_fig07_real_low_noise.cc.o"
  "CMakeFiles/bench_fig07_real_low_noise.dir/bench_fig07_real_low_noise.cc.o.d"
  "bench_fig07_real_low_noise"
  "bench_fig07_real_low_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_real_low_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
