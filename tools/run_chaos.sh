#!/usr/bin/env bash
# Chaos walkthrough (DESIGN.md §12): arms every compiled-in failpoint site
# through GRAPHALIGN_FAILPOINTS and asserts each injected fault produces a
# *typed* outcome — a documented exit code, a degraded-but-complete result,
# or a contained CRASH — never an unhandled abort, a hang, or silence:
#   1. every site x {error, delay-ms} through an isolated align: exit code
#      must stay in the documented set and the run must finish in time,
#   2. crash mode on the similarity path under --isolate: typed exit 4,
#   3. a forced eigensolver non-convergence: degraded result, exit 0,
#   4. a daemon armed with server.busy=once: submit --retries rides through
#      BUSY; SIGTERM then drains it cleanly.
#
# Usage: tools/run_chaos.sh [path-to-graphalign-binary]
set -euo pipefail

TOOL="${1:-build/src/cli/graphalign}"
if [[ ! -x "$TOOL" ]]; then
  echo "graphalign binary not found: $TOOL (build it first)" >&2
  exit 1
fi

WORK="$(mktemp -d)"
SOCK="$WORK/ga.sock"
DAEMON_PID=""
cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2> /dev/null; then
    kill -9 "$DAEMON_PID" 2> /dev/null || true
    wait "$DAEMON_PID" 2> /dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== 0/4 generate a graph pair =="
"$TOOL" generate --model er --n 60 --p 0.1 --seed 7 --out "$WORK/g1.txt"
"$TOOL" perturb --in "$WORK/g1.txt" --noise one-way --level 0.05 --seed 8 \
  --out "$WORK/g2.txt"

# Documented align exit codes: 0 ok, 1 error, 3 DNF, 4 crash, 5 OOM,
# 7 numerical. 2 (usage), >=124 (timeout(1): the run hung), 139 (uncontained
# SIGSEGV) and anything undocumented fail the walkthrough.
check_typed_exit() {
  local rc=$1 what=$2
  case "$rc" in
    0 | 1 | 3 | 4 | 5 | 7) return 0 ;;
  esac
  echo "untyped outcome (rc=$rc) for: $what" >&2
  return 1
}

echo "== 1/4 every site x {error, delay}: typed outcomes only =="
SITES="$("$TOOL" failpoints)"
[[ -n "$SITES" ]] || { echo "failpoints listing is empty" >&2; exit 1; }
for site in $SITES; do
  for mode in error delay-ms:10; do
    rc=0
    GRAPHALIGN_FAILPOINTS="$site=$mode" timeout 120 \
      "$TOOL" align --g1 "$WORK/g1.txt" --g2 "$WORK/g2.txt" \
      --algo GRASP --isolate > "$WORK/cell.out" 2> "$WORK/cell.err" || rc=$?
    check_typed_exit "$rc" "$site=$mode" || {
      cat "$WORK/cell.out" "$WORK/cell.err" >&2; exit 1; }
  done
done
echo "all $(echo "$SITES" | wc -l) sites yielded typed outcomes"

echo "== 2/4 crash mode is contained under isolation =="
rc=0
GRAPHALIGN_FAILPOINTS="align.similarity.error=crash" timeout 120 \
  "$TOOL" align --g1 "$WORK/g1.txt" --g2 "$WORK/g2.txt" \
  --algo NSD --isolate > "$WORK/crash.out" 2> "$WORK/crash.err" || rc=$?
if [[ "$rc" != 4 ]] || ! grep -q "CRASH" "$WORK/crash.err"; then
  echo "expected contained CRASH (rc=4), got rc=$rc:" >&2
  cat "$WORK/crash.out" "$WORK/crash.err" >&2
  exit 1
fi
echo "injected SIGSEGV contained as a typed CRASH"

echo "== 3/4 forced eigensolver failure degrades gracefully =="
GRAPHALIGN_FAILPOINTS="linalg.eigen.no-converge=error" \
  "$TOOL" align --g1 "$WORK/g1.txt" --g2 "$WORK/g2.txt" \
  --algo GRASP > "$WORK/degraded.out"
grep -q "\[degraded:" "$WORK/degraded.out" || {
  echo "degraded run did not report its fallback:" >&2
  cat "$WORK/degraded.out" >&2
  exit 1
}
echo "degraded run completed and reported: $(grep -o '\[degraded:.*' "$WORK/degraded.out")"

echo "== 4/4 daemon: BUSY ridden out by --retries, drained by SIGTERM =="
GRAPHALIGN_FAILPOINTS="server.busy=once" \
  "$TOOL" serve --socket "$SOCK" --workers 1 > "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
# Readiness via the client's own --retries backoff (it also rides through
# the armed once-BUSY); between rounds, fail fast with the daemon log if
# the process died instead of burning the whole retry budget.
up=0
for _ in 1 2 3; do
  if "$TOOL" submit --socket "$SOCK" --ping --retries 4 > /dev/null 2>&1; then
    up=1
    break
  fi
  kill -0 "$DAEMON_PID" 2> /dev/null || break
done
if [[ "$up" != 1 ]]; then
  echo "daemon never answered despite retries (or died):" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
fi

kill -TERM "$DAEMON_PID"
for _ in $(seq 1 50); do
  kill -0 "$DAEMON_PID" 2> /dev/null || break
  sleep 0.1
done
if kill -0 "$DAEMON_PID" 2> /dev/null; then
  echo "daemon did not drain on SIGTERM" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
fi
wait "$DAEMON_PID" 2> /dev/null || true
DAEMON_PID=""
grep -q "draining" "$WORK/daemon.log" || {
  echo "daemon log missing the draining notice:" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
}
grep -q "daemon stopped" "$WORK/daemon.log" || {
  echo "daemon log missing clean-stop line:" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
}
echo "daemon rode out injected BUSY and drained cleanly on SIGTERM"

echo "chaos walkthrough passed"
