// Tests for the fault-injection framework (common/failpoint.h) and the
// retry/backoff layer (common/retry.h): mode semantics, spec parsing,
// pinned deterministic jitter, and the transient/permanent classifier.

#include <chrono>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/retry.h"
#include "common/status.h"

namespace graphalign {
namespace {

// Every test arms sites programmatically and must leave the process-wide
// registry clean for the next test.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { DeactivateAllFailpoints(); }
};

// A function body with an injection site, as production code has. The
// GA_FAILPOINT_STATUS macro latches its site name in a function-local
// static, so this helper (called with varying names) spells out the
// macro's expansion against the registry directly.
Status GuardedOp(const std::string& site) {
  Failpoint& fp = Failpoint::Get(site);
  if (fp.armed()) {
    Status s = fp.Fire(Status::Numerical("natural failure at " + site));
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

TEST_F(FailpointTest, UnarmedSiteDoesNothing) {
  EXPECT_TRUE(GuardedOp("test.fp.unarmed").ok());
  EXPECT_FALSE(Failpoint::Get("test.fp.unarmed").armed());
  EXPECT_EQ(Failpoint::Get("test.fp.unarmed").hits(), 0);
}

TEST_F(FailpointTest, ErrorModeFiresNaturalErrorEveryHit) {
  ASSERT_TRUE(ActivateFailpoint("test.fp.err", "error").ok());
  for (int i = 0; i < 3; ++i) {
    Status s = GuardedOp("test.fp.err");
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kNumerical);
    EXPECT_NE(s.message().find("natural failure"), std::string::npos);
  }
  EXPECT_EQ(Failpoint::Get("test.fp.err").hits(), 3);
}

TEST_F(FailpointTest, OnceModeFiresExactlyOnceThenDisarms) {
  ASSERT_TRUE(ActivateFailpoint("test.fp.once", "once").ok());
  EXPECT_FALSE(GuardedOp("test.fp.once").ok());
  EXPECT_TRUE(GuardedOp("test.fp.once").ok());
  EXPECT_TRUE(GuardedOp("test.fp.once").ok());
  EXPECT_EQ(Failpoint::Get("test.fp.once").hits(), 1);
}

TEST_F(FailpointTest, ProbZeroNeverFiresProbOneAlwaysFires) {
  ASSERT_TRUE(ActivateFailpoint("test.fp.p0", "prob:0").ok());
  ASSERT_TRUE(ActivateFailpoint("test.fp.p1", "prob:1").ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(GuardedOp("test.fp.p0").ok());
    EXPECT_FALSE(GuardedOp("test.fp.p1").ok());
  }
}

TEST_F(FailpointTest, DelayModeSleepsThenContinues) {
  ASSERT_TRUE(ActivateFailpoint("test.fp.delay", "delay-ms:30").ok());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(GuardedOp("test.fp.delay").ok());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 25);
}

TEST_F(FailpointTest, FiredBranchForcesDegradedPath) {
  ASSERT_TRUE(ActivateFailpoint("test.fp.branch", "nan").ok());
  EXPECT_TRUE(GA_FAILPOINT_FIRED("test.fp.branch"));
  DeactivateFailpoint("test.fp.branch");
  EXPECT_FALSE(GA_FAILPOINT_FIRED("test.fp.branch"));
}

TEST_F(FailpointTest, SpecParsingArmsMultipleSites) {
  ASSERT_TRUE(ActivateFailpointsFromSpec(
                  "test.fp.a=error;test.fp.b=delay-ms:5,test.fp.c=once")
                  .ok());
  EXPECT_TRUE(Failpoint::Get("test.fp.a").armed());
  EXPECT_TRUE(Failpoint::Get("test.fp.b").armed());
  EXPECT_TRUE(Failpoint::Get("test.fp.c").armed());
  std::vector<std::string> armed = ArmedFailpoints();
  EXPECT_EQ(armed.size(), 3u);
}

TEST_F(FailpointTest, MalformedSpecsAreTypedErrors) {
  const char* bad[] = {
      "no-equals-sign",       "site=",       "site=unknown-mode",
      "site=prob:notanumber", "site=prob:2", "site=delay-ms:-1",
      "site=delay-ms:junk",   "=error",
  };
  for (const char* spec : bad) {
    Status s = ActivateFailpointsFromSpec(spec);
    EXPECT_FALSE(s.ok()) << spec;
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << spec;
  }
}

TEST_F(FailpointTest, DeactivateAllClearsEverything) {
  ASSERT_TRUE(ActivateFailpointsFromSpec("test.fp.x=error;test.fp.y=once")
                  .ok());
  ASSERT_FALSE(GuardedOp("test.fp.x").ok());
  DeactivateAllFailpoints();
  EXPECT_TRUE(GuardedOp("test.fp.x").ok());
  EXPECT_TRUE(GuardedOp("test.fp.y").ok());
  EXPECT_TRUE(ArmedFailpoints().empty());
  EXPECT_EQ(Failpoint::Get("test.fp.x").hits(), 0);  // Reset with disarm.
}

TEST_F(FailpointTest, KnownFailpointsListsCompiledSites) {
  std::vector<std::string> known = KnownFailpoints();
  ASSERT_FALSE(known.empty());
  auto has = [&known](const char* name) {
    for (const std::string& k : known) {
      if (k == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("linalg.eigen.no-converge"));
  EXPECT_TRUE(has("align.similarity.nan"));
  EXPECT_TRUE(has("server.busy"));
  EXPECT_TRUE(has("bench.cell.flaky"));
}

// ---------------------------------------------------------------------------
// Retry / backoff.

TEST(RetryTest, TransientClassifier) {
  EXPECT_TRUE(IsTransient(Status::Unavailable("daemon busy")));
  EXPECT_TRUE(IsTransient(StatusCode::kResourceExhausted));
  EXPECT_FALSE(IsTransient(Status::Ok()));
  EXPECT_FALSE(IsTransient(StatusCode::kDeadlineExceeded));  // Same budget,
                                                             // same verdict.
  EXPECT_FALSE(IsTransient(StatusCode::kNumerical));
  EXPECT_FALSE(IsTransient(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsTransient(StatusCode::kInternal));
}

TEST(RetryTest, JitterIsPinnedUnderFixedSeed) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 100.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 5000.0;
  policy.jitter_seed = 42;

  // Two iterators over the same policy produce the identical sequence:
  // jitter is a pure function of (seed, attempt index).
  Backoff a(policy);
  Backoff b(policy);
  std::vector<double> delays;
  for (int i = 0; i < 8; ++i) {
    const double d = a.NextDelayMs();
    EXPECT_DOUBLE_EQ(d, b.NextDelayMs());
    delays.push_back(d);
  }

  // Each delay lands in the jitter band [base/2, base] of the capped
  // exponential schedule.
  double base = 100.0;
  for (size_t i = 0; i < delays.size(); ++i) {
    EXPECT_GE(delays[i], base / 2.0) << "attempt " << i;
    EXPECT_LE(delays[i], base) << "attempt " << i;
    base = std::min(5000.0, base * 2.0);
  }

  // A different seed gives a different (still valid) sequence.
  policy.jitter_seed = 43;
  Backoff c(policy);
  bool any_different = false;
  for (size_t i = 0; i < delays.size(); ++i) {
    if (c.NextDelayMs() != delays[i]) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RetryTest, BackoffCapIsRespected) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 100.0;
  policy.backoff_multiplier = 10.0;
  policy.max_backoff_ms = 250.0;
  Backoff backoff(policy);
  for (int i = 0; i < 10; ++i) {
    EXPECT_LE(backoff.NextDelayMs(), 250.0) << "attempt " << i;
  }
}

TEST(RetryTest, TransientFailureIsRetriedUntilSuccess) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ms = 1.0;
  policy.max_backoff_ms = 2.0;
  int calls = 0;
  Status s = RetryStatus(policy, [&calls] {
    ++calls;
    return calls < 3 ? Status::Unavailable("transient") : Status::Ok();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, PermanentFailureIsNeverRetried) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ms = 1.0;
  const Status permanent[] = {
      Status::InvalidArgument("bad input"),
      Status::Numerical("diverged"),
      Status::DeadlineExceeded("over budget"),
      Status::Internal("bug"),
  };
  for (const Status& want : permanent) {
    int calls = 0;
    Status got = RetryStatus(policy, [&] {
      ++calls;
      return want;
    });
    EXPECT_EQ(got.code(), want.code());
    EXPECT_EQ(calls, 1) << want.ToString();
  }
}

TEST(RetryTest, ExhaustedAttemptsReturnLastTransientError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1.0;
  policy.max_backoff_ms = 2.0;
  int calls = 0;
  std::vector<int> observed_attempts;
  std::vector<double> observed_delays;
  Status s = RetryStatus(
      policy,
      [&calls] {
        ++calls;
        return Status::Unavailable("attempt " + std::to_string(calls));
      },
      [&](int attempt, const Status& status, double delay_ms) {
        observed_attempts.push_back(attempt);
        observed_delays.push_back(delay_ms);
        EXPECT_EQ(status.code(), StatusCode::kUnavailable);
      });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_NE(s.message().find("attempt 3"), std::string::npos);
  // on_retry fires once per scheduled retry (attempts 1 and 2 failed and
  // were retried; attempt 3's failure is final).
  ASSERT_EQ(observed_attempts.size(), 2u);
  EXPECT_EQ(observed_attempts[0], 1);
  EXPECT_EQ(observed_attempts[1], 2);
  // The observed delays match the policy's pinned schedule.
  Backoff backoff(policy);
  EXPECT_DOUBLE_EQ(observed_delays[0], backoff.NextDelayMs());
  EXPECT_DOUBLE_EQ(observed_delays[1], backoff.NextDelayMs());
}

TEST(RetryTest, MaxAttemptsOneMeansSingleShot) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  int calls = 0;
  Status s = RetryStatus(policy, [&calls] {
    ++calls;
    return Status::Unavailable("transient");
  });
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace graphalign
