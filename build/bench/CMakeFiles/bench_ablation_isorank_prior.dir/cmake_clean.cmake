file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_isorank_prior.dir/bench_ablation_isorank_prior.cc.o"
  "CMakeFiles/bench_ablation_isorank_prior.dir/bench_ablation_isorank_prior.cc.o.d"
  "bench_ablation_isorank_prior"
  "bench_ablation_isorank_prior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_isorank_prior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
