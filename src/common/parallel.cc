#include "common/parallel.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace graphalign {

namespace {

// Set while the current thread is executing a block of a pool job. A nested
// ParallelFor issued from inside a job must not touch the pool: Run() keeps
// a single (fn_, n_, next_block_) job slot, so a reentrant submission would
// overwrite the live state of the outer job and corrupt its partition.
thread_local bool t_in_pool_job = false;

// Worker threads launched so far (set once in the Pool constructor).
std::atomic<int> g_workers_started{0};

// A minimal persistent pool: workers sleep on a condition variable and are
// woken with a (fn, n, blocks) job; the submitting thread participates too.
class Pool {
 public:
  static Pool& Instance() {
    static Pool* pool = new Pool();  // Never destroyed (worker threads).
    return *pool;
  }

  int thread_count() const { return workers_ + 1; }

  // Worker threads do not survive fork(); a forked child must run inline.
  bool InForkedChild() const { return getpid() != owner_pid_; }

  void Run(int64_t n, const std::function<void(int64_t, int64_t)>& fn) {
    const int parts = thread_count();
    {
      std::unique_lock<std::mutex> lock(mu_);
      fn_ = &fn;
      n_ = n;
      parts_ = parts;
      next_block_ = 0;
      pending_ = workers_;
      ++generation_;
      cv_.notify_all();
    }
    // The caller works through blocks alongside the workers.
    DrainBlocks();
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    fn_ = nullptr;
  }

 private:
  Pool() {
    int threads = static_cast<int>(std::thread::hardware_concurrency());
    if (const char* env = std::getenv("GRAPHALIGN_THREADS")) {
      const int parsed = std::atoi(env);
      if (parsed > 0) threads = parsed;
    }
    threads = std::max(1, threads);
    owner_pid_ = getpid();
    workers_ = threads - 1;
    g_workers_started.store(workers_, std::memory_order_relaxed);
    for (int w = 0; w < workers_; ++w) {
      std::thread([this] { WorkerLoop(); }).detach();
    }
  }

  void WorkerLoop() {
    uint64_t seen_generation = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return generation_ != seen_generation; });
        seen_generation = generation_;
      }
      DrainBlocks();
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  void DrainBlocks() {
    for (;;) {
      const int block = next_block_.fetch_add(1);
      if (block >= parts_) break;
      const int64_t begin = n_ * block / parts_;
      const int64_t end = n_ * (block + 1) / parts_;
      if (begin < end) {
        t_in_pool_job = true;
        (*fn_)(begin, end);
        t_in_pool_job = false;
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  const std::function<void(int64_t, int64_t)>* fn_ = nullptr;
  int64_t n_ = 0;
  int parts_ = 1;
  std::atomic<int> next_block_{0};
  int pending_ = 0;
  uint64_t generation_ = 0;
  int workers_ = 0;
  pid_t owner_pid_ = 0;
};

}  // namespace

int ParallelThreadCount() { return Pool::Instance().thread_count(); }

int ParallelWorkersStarted() {
  return g_workers_started.load(std::memory_order_relaxed);
}

void ParallelFor(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
                 int64_t min_work) {
  if (n <= 0) return;
  // A nested call from inside a pool job runs inline: the pool has a single
  // job slot and reentrant submission would corrupt the outer job.
  if (t_in_pool_job) {
    fn(0, n);
    return;
  }
  Pool& pool = Pool::Instance();
  if (n < min_work || pool.thread_count() == 1 || pool.InForkedChild()) {
    fn(0, n);
    return;
  }
  pool.Run(n, fn);
}

}  // namespace graphalign
