#include "noise/noise.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

namespace graphalign {

const char* NoiseTypeName(NoiseType type) {
  switch (type) {
    case NoiseType::kOneWay:
      return "one-way";
    case NoiseType::kMultiModal:
      return "multi-modal";
    case NoiseType::kTwoWay:
      return "two-way";
  }
  return "unknown";
}

Result<Graph> RemoveRandomEdges(const Graph& g, int64_t count, Rng* rng,
                                bool keep_connected) {
  if (count < 0) {
    return Status::InvalidArgument("RemoveRandomEdges: negative count");
  }
  if (count > g.num_edges()) count = g.num_edges();
  std::vector<Edge> edges = g.Edges();
  rng->Shuffle(&edges);
  if (!keep_connected) {
    edges.resize(edges.size() - static_cast<size_t>(count));
    return Graph::FromEdges(g.num_nodes(), edges);
  }
  // Greedy connectivity-preserving removal: drop an edge only if the graph
  // stays as connected as before (same number of components).
  int base_components = 0;
  g.ConnectedComponents(&base_components);
  std::vector<bool> removed(edges.size(), false);
  int64_t done = 0;
  for (size_t i = 0; i < edges.size() && done < count; ++i) {
    removed[i] = true;
    std::vector<Edge> kept;
    kept.reserve(edges.size());
    for (size_t j = 0; j < edges.size(); ++j) {
      if (!removed[j]) kept.push_back(edges[j]);
    }
    GA_ASSIGN_OR_RETURN(Graph candidate, Graph::FromEdges(g.num_nodes(), kept));
    int comps = 0;
    candidate.ConnectedComponents(&comps);
    if (comps > base_components) {
      removed[i] = false;  // Bridge: keep it.
    } else {
      ++done;
    }
  }
  std::vector<Edge> kept;
  for (size_t j = 0; j < edges.size(); ++j) {
    if (!removed[j]) kept.push_back(edges[j]);
  }
  return Graph::FromEdges(g.num_nodes(), kept);
}

Result<Graph> AddRandomEdges(const Graph& g, int64_t count, Rng* rng) {
  if (count < 0) {
    return Status::InvalidArgument("AddRandomEdges: negative count");
  }
  const int n = g.num_nodes();
  const int64_t capacity =
      static_cast<int64_t>(n) * (n - 1) / 2 - g.num_edges();
  if (count > capacity) count = capacity;
  std::vector<Edge> edges = g.Edges();
  std::set<std::pair<int, int>> present;
  for (const Edge& e : edges) {
    present.insert({std::min(e.u, e.v), std::max(e.u, e.v)});
  }
  int64_t added = 0;
  while (added < count) {
    int u = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
    int v = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
    if (u == v) continue;
    auto key = std::make_pair(std::min(u, v), std::max(u, v));
    if (!present.insert(key).second) continue;
    edges.push_back({u, v});
    ++added;
  }
  return Graph::FromEdges(n, edges);
}

Result<AlignmentProblem> MakeAlignmentProblem(const Graph& base,
                                              const NoiseOptions& options,
                                              Rng* rng) {
  if (options.level < 0.0 || options.level > 1.0) {
    return Status::InvalidArgument("noise level outside [0,1]");
  }
  const int64_t k = static_cast<int64_t>(
      std::llround(options.level * static_cast<double>(base.num_edges())));

  Graph g1 = base;
  Graph g2 = base;
  switch (options.type) {
    case NoiseType::kOneWay: {
      GA_ASSIGN_OR_RETURN(g2, RemoveRandomEdges(base, k, rng,
                                                options.keep_connected));
      break;
    }
    case NoiseType::kMultiModal: {
      GA_ASSIGN_OR_RETURN(
          Graph pruned,
          RemoveRandomEdges(base, k, rng, options.keep_connected));
      GA_ASSIGN_OR_RETURN(g2, AddRandomEdges(pruned, k, rng));
      break;
    }
    case NoiseType::kTwoWay: {
      GA_ASSIGN_OR_RETURN(
          g1, RemoveRandomEdges(base, k, rng, options.keep_connected));
      GA_ASSIGN_OR_RETURN(
          g2, RemoveRandomEdges(base, k, rng, options.keep_connected));
      break;
    }
  }

  AlignmentProblem problem;
  problem.g1 = std::move(g1);
  if (options.permute) {
    std::vector<int> perm = RandomPermutation(base.num_nodes(), rng);
    GA_ASSIGN_OR_RETURN(problem.g2, g2.Permuted(perm));
    problem.ground_truth = std::move(perm);
  } else {
    problem.g2 = std::move(g2);
    problem.ground_truth.resize(base.num_nodes());
    for (int i = 0; i < base.num_nodes(); ++i) problem.ground_truth[i] = i;
  }
  return problem;
}

Result<AlignmentProblem> MakeProblemFromPair(const Graph& g1, const Graph& g2,
                                             Rng* rng) {
  if (g1.num_nodes() != g2.num_nodes()) {
    return Status::InvalidArgument(
        "MakeProblemFromPair: node-count mismatch (paper protocol aligns "
        "snapshots over the same node set)");
  }
  AlignmentProblem problem;
  problem.g1 = g1;
  std::vector<int> perm = RandomPermutation(g2.num_nodes(), rng);
  GA_ASSIGN_OR_RETURN(problem.g2, g2.Permuted(perm));
  problem.ground_truth = std::move(perm);
  return problem;
}

}  // namespace graphalign
