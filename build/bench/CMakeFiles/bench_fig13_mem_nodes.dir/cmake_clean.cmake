file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_mem_nodes.dir/bench_fig13_mem_nodes.cc.o"
  "CMakeFiles/bench_fig13_mem_nodes.dir/bench_fig13_mem_nodes.cc.o.d"
  "bench_fig13_mem_nodes"
  "bench_fig13_mem_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_mem_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
