
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/deadline_test.cc" "tests/CMakeFiles/deadline_test.dir/deadline_test.cc.o" "gcc" "tests/CMakeFiles/deadline_test.dir/deadline_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ga_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ga_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ga_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/ga_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/assignment/CMakeFiles/ga_assignment.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ga_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/ga_align.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/ga_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_framework/CMakeFiles/ga_benchfw.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/ga_cli.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
