#!/usr/bin/env bash
# End-to-end exercise of the sweep robustness features (DESIGN.md §10):
#   1. a journaled baseline sweep,
#   2. an interrupted sweep resumed with --resume, whose CSV must be
#      byte-identical to the baseline,
#   3. a sweep with crashing/OOMing cells contained by --isolate,
#   4. the sparse-pipeline bench (DESIGN.md §13): dense and sparse rows per
#      cell, deterministic across a re-run, valid --json output.
#
# Usage: tools/run_sweep.sh [path-to-bench-binary] [path-to-sparse-bench]
# The binaries must speak the common BenchArgs flags; bench_fig02_er and
# bench_fig17_sparse_scal are the defaults and what ctest passes.
set -euo pipefail

BENCH="${1:-build/bench/bench_fig02_er}"
SPARSE_BENCH="${2:-build/bench/bench_fig17_sparse_scal}"
if [[ ! -x "$BENCH" ]]; then
  echo "bench binary not found: $BENCH (build it first)" >&2
  exit 1
fi
if [[ ! -x "$SPARSE_BENCH" ]]; then
  echo "sparse bench binary not found: $SPARSE_BENCH (build it first)" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Per-step wall-time banners: each "== k/4 ==" step reports how long it
# took, so a slow CI run shows where the time went without re-running.
STEP_T0=$SECONDS
step_done() {
  echo "-- step took $((SECONDS - STEP_T0))s"
  STEP_T0=$SECONDS
}

echo "== 1/4 baseline journaled sweep =="
"$BENCH" --algos NSD,LREA --reps 1 --seed 7 \
  --journal "$WORK/full.tsv" --csv "$WORK/full.csv" > /dev/null
[[ -s "$WORK/full.csv" ]] || { echo "baseline csv missing" >&2; exit 1; }
[[ -s "$WORK/full.tsv" ]] || { echo "baseline journal missing" >&2; exit 1; }

step_done
echo "== 2/4 interrupted sweep, then --resume =="
# Simulate an interruption: only the NSD cells complete before the "crash".
"$BENCH" --algos NSD --reps 1 --seed 7 \
  --journal "$WORK/part.tsv" --csv "$WORK/part.csv" > /dev/null
# Resume the full sweep on the partial journal: NSD replays, LREA computes.
"$BENCH" --algos NSD,LREA --reps 1 --seed 7 --resume \
  --journal "$WORK/part.tsv" --csv "$WORK/resumed.csv" > /dev/null
if ! cmp -s "$WORK/full.csv" "$WORK/resumed.csv"; then
  echo "resumed sweep diverged from the uninterrupted baseline:" >&2
  diff "$WORK/full.csv" "$WORK/resumed.csv" >&2 || true
  exit 1
fi
echo "resume reproduced the baseline CSV byte-identically"

step_done
echo "== 3/4 crash/OOM containment =="
"$BENCH" --algos NSD,_CRASH,_OOM --reps 1 --seed 7 \
  --isolate --mem-limit 512 --time-limit 60 \
  --csv "$WORK/contained.csv" > /dev/null
grep -q "CRASH" "$WORK/contained.csv" || {
  echo "expected CRASH cells in the contained sweep" >&2; exit 1; }
grep -q "OOM" "$WORK/contained.csv" || {
  echo "expected OOM cells in the contained sweep" >&2; exit 1; }
if grep "^NSD," "$WORK/contained.csv" | grep -Eq "CRASH|OOM"; then
  echo "healthy NSD cells were poisoned by faulting neighbors" >&2
  exit 1
fi
grep -cq "^NSD," "$WORK/contained.csv" || {
  echo "NSD cells missing from the contained sweep" >&2; exit 1; }
echo "faulting cells contained; healthy cells unaffected"

step_done
echo "== 4/4 sparse pipeline sweep =="
"$SPARSE_BENCH" --algos NSD --seed 7 \
  --csv "$WORK/sparse.csv" --json "$WORK/sparse.json" > /dev/null
# Every sweep point must carry a dense row and a sparse row with a non-empty
# candidate count.
grep -q ",dense," "$WORK/sparse.csv" || {
  echo "expected dense rows in the sparse sweep" >&2; exit 1; }
grep -q ",sparse," "$WORK/sparse.csv" || {
  echo "expected sparse rows in the sparse sweep" >&2; exit 1; }
if grep ",sparse," "$WORK/sparse.csv" | grep -q ',-$'; then
  echo "sparse rows are missing candidate counts" >&2; exit 1
fi
# The JSON emitter must produce well-formed output with the bench metadata.
python3 - "$WORK/sparse.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["meta"]["bench"] == "fig17_sparse_scal", doc["meta"]
assert len(doc["rows"]) > 0
modes = {r["mode"] for r in doc["rows"]}
assert modes == {"dense", "sparse"}, modes
EOF
# Determinism: the same seed reproduces every column except the wall-clock
# `seconds` (column 6) byte-identically — candidates and accuracy included.
"$SPARSE_BENCH" --algos NSD --seed 7 --csv "$WORK/sparse2.csv" > /dev/null
cut -d, -f1-5,7- "$WORK/sparse.csv" > "$WORK/sparse.stable"
cut -d, -f1-5,7- "$WORK/sparse2.csv" > "$WORK/sparse2.stable"
if ! cmp -s "$WORK/sparse.stable" "$WORK/sparse2.stable"; then
  echo "sparse sweep is not deterministic across re-runs:" >&2
  diff "$WORK/sparse.stable" "$WORK/sparse2.stable" >&2 || true
  exit 1
fi
echo "sparse sweep rows, JSON, and determinism verified"

step_done
echo "all sweep robustness checks passed"
