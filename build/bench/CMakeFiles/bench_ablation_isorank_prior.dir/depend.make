# Empty dependencies file for bench_ablation_isorank_prior.
# This may be replaced when dependencies are built.
