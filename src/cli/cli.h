// The graphalign command-line tool, as a library so tests can drive it.
//
// Subcommands:
//   generate  --model {er,ba,ws,nw,pl,geometric} --n N [--p P] [--m M]
//             [--k K] [--seed S] --out FILE
//   perturb   --in FILE --noise {one-way,multi-modal,two-way} --level L
//             [--seed S] [--no-permute] --out FILE [--truth FILE]
//   align     --g1 FILE --g2 FILE --algo NAME
//             [--assign {NN,SG,MWM,JV,native}] [--out FILE]
//   evaluate  --g1 FILE --g2 FILE --mapping FILE [--truth FILE]
//   stats     --in FILE
//   serve     --socket PATH | --port N [--workers K] [--cache-mb M]
//             [--queue Q] [--io-timeout T] [--threads N]
//   submit    --socket PATH | [--host H] --port N, with --ping, --shutdown,
//             --cache-info, --stats FILE, align flags (--g1 --g2 --algo
//             [--assign M] [--time-limit T] [--mem-limit MB] [--no-cache]
//             [--out FILE]), or evaluate flags (--g1 --g2 --mapping
//             [--truth FILE])
//
// `serve` runs the alignment service daemon (src/server, DESIGN.md §11);
// `submit` drives it. Mapping/truth files are "u v" per line (node of g1,
// node of g2). Exit codes follow common/exit_codes.h.
#ifndef GRAPHALIGN_CLI_CLI_H_
#define GRAPHALIGN_CLI_CLI_H_

#include <ostream>

namespace graphalign {

// Runs the CLI; returns the process exit code. Output (including errors)
// goes to `out` / `err`.
int RunCli(int argc, const char* const* argv, std::ostream& out,
           std::ostream& err);

}  // namespace graphalign

#endif  // GRAPHALIGN_CLI_CLI_H_
