// Low-Rank EigenAlign (Nassar et al. 2018), paper §3.4. The EigenAlign
// operator (Eq. 7)
//   X <- c1 A X B^T + c2 A X E^T + c2 E X B^T + c3 E X E^T
// is iterated in factored form X = U V^T: each application maps rank r to
// rank r+3 exactly, and a QR+SVD recompression keeps the rank bounded.
// Alignment is extracted from the "union of sorted matchings" sparse
// candidate set solved with an optimal sparse LAP, as the authors propose.
//
// Coefficients come from the EigenAlign scores (overlap s_O, non-informative
// s_N, conflict s_C): c1 = sO + sC - 2 sN, c2 = sN - sC, c3 = sC. Defaults
// chosen overlap-dominant so that isomorphic graphs are recovered exactly.
#ifndef GRAPHALIGN_ALIGN_LREA_H_
#define GRAPHALIGN_ALIGN_LREA_H_

#include <string>

#include "align/aligner.h"
#include "linalg/dense.h"

namespace graphalign {

struct LreaOptions {
  int iterations = 8;     // Power iterations of the factored operator.
  int max_rank = 10;      // Rank cap after recompression.
  double overlap_score = 2.0;    // s_O.
  double noninform_score = 1.0;  // s_N.
  double conflict_score = 0.5;   // s_C.
};

class LreaAligner : public Aligner {
 public:
  explicit LreaAligner(const LreaOptions& options = {}) : options_(options) {}

  std::string name() const override { return "LREA"; }
  AssignmentMethod default_assignment() const override {
    return AssignmentMethod::kHungarian;  // "MWM" (Table 1).
  }
  // The low-rank factors X = U V^T without densification.
  struct Factors {
    DenseMatrix u;  // n1 x r
    DenseMatrix v;  // n2 x r
  };
  Result<Factors> ComputeFactors(const Graph& g1, const Graph& g2,
                                 const Deadline& deadline = Deadline());

  // Candidate (i, j) scores as dot(U row i, V row j): O(candidates * rank)
  // time, no dense matrix.
  SparseSimilarityMode sparse_similarity_mode() const override {
    return SparseSimilarityMode::kNative;
  }

 protected:
  Result<DenseMatrix> ComputeSimilarityImpl(const Graph& g1, const Graph& g2,
                                            const Deadline& deadline) override;

  // Native extraction: union of sorted matchings over the rank-1 components,
  // solved as an optimal sparse LAP (the authors' scalable path).
  Result<Alignment> AlignNativeImpl(const Graph& g1, const Graph& g2,
                                    const Deadline& deadline) override;

  Status ScoreSparseCandidatesImpl(
      const Graph& g1, const Graph& g2, const Deadline& deadline,
      std::vector<SparseCandidate>* candidates) override;

 private:
  LreaOptions options_;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_ALIGN_LREA_H_
