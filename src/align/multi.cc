#include "align/multi.h"

#include <numeric>
#include <string>

namespace graphalign {

Result<MultiAlignmentResult> AlignMultiple(const std::vector<Graph>& graphs,
                                           Aligner* aligner,
                                           AssignmentMethod method,
                                           int reference) {
  if (graphs.size() < 2) {
    return Status::InvalidArgument("AlignMultiple: need at least 2 graphs");
  }
  if (reference >= static_cast<int>(graphs.size())) {
    return Status::OutOfRange("AlignMultiple: reference index out of range");
  }
  MultiAlignmentResult result;
  if (reference >= 0) {
    result.reference = reference;
  } else {
    for (size_t g = 1; g < graphs.size(); ++g) {
      if (graphs[g].num_nodes() >
          graphs[result.reference].num_nodes()) {
        result.reference = static_cast<int>(g);
      }
    }
  }
  const Graph& ref = graphs[result.reference];
  result.to_reference.resize(graphs.size());
  for (size_t g = 0; g < graphs.size(); ++g) {
    if (static_cast<int>(g) == result.reference) {
      Alignment identity(ref.num_nodes());
      std::iota(identity.begin(), identity.end(), 0);
      result.to_reference[g] = std::move(identity);
      continue;
    }
    auto alignment = aligner->Align(graphs[g], ref, method);
    if (!alignment.ok()) {
      return Status(alignment.status().code(),
                    "aligning graph " + std::to_string(g) + " to reference: " +
                        alignment.status().message());
    }
    result.to_reference[g] = *std::move(alignment);
  }
  return result;
}

Result<Alignment> ComposeAlignment(const MultiAlignmentResult& result,
                                   const std::vector<Graph>& graphs, int from,
                                   int to) {
  const int k = static_cast<int>(result.to_reference.size());
  if (from < 0 || from >= k || to < 0 || to >= k) {
    return Status::OutOfRange("ComposeAlignment: graph index out of range");
  }
  if (static_cast<size_t>(k) != graphs.size()) {
    return Status::InvalidArgument("ComposeAlignment: graphs/result mismatch");
  }
  // Invert to_reference[to]: reference node -> node of `to`.
  const int ref_nodes = graphs[result.reference].num_nodes();
  std::vector<int> from_ref(ref_nodes, -1);
  const Alignment& to_map = result.to_reference[to];
  for (size_t v = 0; v < to_map.size(); ++v) {
    if (to_map[v] >= 0 && to_map[v] < ref_nodes) {
      from_ref[to_map[v]] = static_cast<int>(v);
    }
  }
  const Alignment& from_map = result.to_reference[from];
  Alignment composed(from_map.size(), -1);
  for (size_t u = 0; u < from_map.size(); ++u) {
    const int r = from_map[u];
    if (r >= 0 && r < ref_nodes) composed[u] = from_ref[r];
  }
  return composed;
}

std::vector<std::vector<std::pair<int, int>>> AlignmentClusters(
    const MultiAlignmentResult& result, const std::vector<Graph>& graphs) {
  const int ref_nodes = graphs[result.reference].num_nodes();
  std::vector<std::vector<std::pair<int, int>>> clusters(ref_nodes);
  for (size_t g = 0; g < result.to_reference.size(); ++g) {
    const Alignment& map = result.to_reference[g];
    for (size_t u = 0; u < map.size(); ++u) {
      if (map[u] >= 0 && map[u] < ref_nodes) {
        clusters[map[u]].push_back({static_cast<int>(g), static_cast<int>(u)});
      }
    }
  }
  return clusters;
}

}  // namespace graphalign
