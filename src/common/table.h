// Plain-text table and CSV emission for benchmark reports.
//
// Every figure/table bench prints (a) an aligned human-readable table that
// mirrors the series the paper plots and (b) optional CSV for downstream
// plotting.
#ifndef GRAPHALIGN_COMMON_TABLE_H_
#define GRAPHALIGN_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace graphalign {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Adds a row; the row is padded/truncated to the header width.
  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with fixed precision, "-" for NaN.
  static std::string Num(double v, int precision = 3);

  size_t num_rows() const { return rows_.size(); }

  // Column-aligned plain text.
  void Print(std::ostream& os) const;
  // RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  void PrintCsv(std::ostream& os) const;
  // Writes CSV to `path`; returns false on IO failure.
  bool WriteCsv(const std::string& path) const;
  // JSON: {"meta": {...}, "rows": [{header: cell, ...}, ...]}. Cells that
  // parse as finite numbers are emitted as numbers, everything else as
  // strings; `meta` carries free-form key/value context (bench name, seed).
  void PrintJson(std::ostream& os,
                 const std::vector<std::pair<std::string, std::string>>& meta =
                     {}) const;
  // Writes JSON to `path`; returns false on IO failure.
  bool WriteJson(const std::string& path,
                 const std::vector<std::pair<std::string, std::string>>& meta =
                     {}) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_COMMON_TABLE_H_
