// Memory measurement for the scalability experiments (Figs 13-14).
//
// The paper reports peak resident memory per algorithm run. VmHWM in
// /proc/self/status is monotone over a process lifetime, so measuring several
// runs in one process would only record the largest. MeasurePeakMemoryMb
// therefore runs each workload in a forked child (via RunIsolated in
// common/subprocess.h): the child runs the workload, reads its own VmHWM,
// and reports it over a pipe.
#ifndef GRAPHALIGN_COMMON_MEMORY_H_
#define GRAPHALIGN_COMMON_MEMORY_H_

#include <cstdint>
#include <functional>

#include "common/status.h"

namespace graphalign {

// Peak resident set size (VmHWM) of the calling process, in bytes.
// Returns 0 if /proc is unavailable.
int64_t PeakRssBytes();

// Current resident set size (VmRSS) of the calling process, in bytes.
int64_t CurrentRssBytes();

// Current virtual address-space size (VmSize) of the calling process, in
// bytes. Returns 0 if /proc is unavailable. This is the baseline on top of
// which subprocess memory limits budget their headroom.
int64_t CurrentVmBytes();

// Runs `workload` in a forked child and returns the child's peak RSS in MiB.
//
// Errors are a Status, never a silent 0: FailedPrecondition when foreign
// threads make forking unsafe (the graphalign pool is accounted for — its
// workers are fork-tolerant), Internal when /proc is unavailable in the
// child or the workload crashed. The workload itself must not depend on
// threads started before the fork; ParallelFor inside it runs inline.
Result<double> MeasurePeakMemoryMb(const std::function<void()>& workload);

}  // namespace graphalign

#endif  // GRAPHALIGN_COMMON_MEMORY_H_
