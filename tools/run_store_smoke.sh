#!/usr/bin/env bash
# End-to-end exercise of the graph store (DESIGN.md §15):
#   1. import the paper's stand-in datasets plus generated edge lists into a
#      content-addressed store; a re-import must deduplicate,
#   2. store verify walks every entry and must find zero corruption,
#   3. a daemon armed with --store-dir answers submit-by-hash: put-graph
#      twice, has-graph (present and absent), align by hash, and the by-hash
#      mapping must be byte-identical to the wire-path mapping of the same
#      pair,
#   4. store bench times text parse-load vs GST1 mmap-open on paper-scale
#      graphs and writes the BENCH-convention report; mmap must win.
#
# Usage: tools/run_store_smoke.sh [path-to-graphalign-binary] [bench-json]
# The optional second argument is where the bench report lands (default:
# scratch); pass bench/../BENCH_store.json to refresh the checked-in copy.
set -euo pipefail

TOOL="${1:-build/src/cli/graphalign}"
if [[ ! -x "$TOOL" ]]; then
  echo "graphalign binary not found: $TOOL (build it first)" >&2
  exit 1
fi
TOOL="$(cd "$(dirname "$TOOL")" && pwd)/$(basename "$TOOL")"

WORK="$(mktemp -d)"
BENCH_JSON="${2:-$WORK/BENCH_store.json}"
case "$BENCH_JSON" in
  /*) ;;
  *) BENCH_JSON="$PWD/$BENCH_JSON" ;;
esac
STORE="$WORK/store"
SOCK="$WORK/ga.sock"
DAEMON_PID=""
cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2> /dev/null; then
    kill "$DAEMON_PID" 2> /dev/null || true
    wait "$DAEMON_PID" 2> /dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== 0/4 materialize graphs =="
# A small pair for the align round-trip (daemon-side compute stays quick)
# and two paper-scale graphs for the parse-vs-mmap bench.
"$TOOL" generate --model er --n 300 --p 0.05 --seed 7 --out "$WORK/s1.txt"
"$TOOL" perturb --in "$WORK/s1.txt" --noise one-way --level 0.05 --seed 8 \
  --out "$WORK/s2.txt"
"$TOOL" generate --model er --n 1500 --p 0.01 --seed 9 --out "$WORK/big1.txt"
"$TOOL" generate --model ba --n 4000 --m 5 --seed 10 --out "$WORK/big2.txt"

echo "== 1/4 import datasets and edge lists; dedupe on re-import =="
for ds in Arenas inf-euroroad bio-celegans ca-netscience HighSchool; do
  "$TOOL" store import --dir "$STORE" --dataset "$ds" --seed 1
done
"$TOOL" store import --dir "$STORE" --in "$WORK/s1.txt" > /dev/null
"$TOOL" store import --dir "$STORE" --in "$WORK/s2.txt" > /dev/null
"$TOOL" store import --dir "$STORE" --dataset Arenas --seed 1 \
  > "$WORK/dedupe.out"
grep -q "(already present)" "$WORK/dedupe.out" || {
  echo "re-import of an identical dataset did not deduplicate:" >&2
  cat "$WORK/dedupe.out" >&2
  exit 1
}
"$TOOL" store ls --dir "$STORE" > "$WORK/ls.out"
grep -q "^7 entries$" "$WORK/ls.out" || {
  echo "expected 7 store entries:" >&2
  cat "$WORK/ls.out" >&2
  exit 1
}
echo "7 graphs imported; identical re-import deduplicated"

echo "== 2/4 store verify: every entry intact =="
"$TOOL" store verify --dir "$STORE" > "$WORK/verify.out"
grep -q "checked=7 ok=7 corrupt=0" "$WORK/verify.out" || {
  echo "verify did not pass cleanly:" >&2
  cat "$WORK/verify.out" >&2
  exit 1
}
echo "verify: $(cat "$WORK/verify.out")"

echo "== 3/4 daemon: submit-by-hash round trip =="
"$TOOL" serve --socket "$SOCK" --workers 2 --store-dir "$STORE" \
  > "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
up=0
for _ in 1 2 3; do
  if "$TOOL" submit --socket "$SOCK" --ping --retries 4 > /dev/null 2>&1; then
    up=1
    break
  fi
  kill -0 "$DAEMON_PID" 2> /dev/null || break
done
if [[ "$up" != 1 ]]; then
  echo "daemon never came up (or died during startup):" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
fi

"$TOOL" submit --socket "$SOCK" --put-graph "$WORK/s1.txt" > "$WORK/put1.out"
"$TOOL" submit --socket "$SOCK" --put-graph "$WORK/s2.txt" > "$WORK/put2.out"
H1="$(sed -n 's/.*hash=\([0-9a-f]*\).*/\1/p' "$WORK/put1.out" | head -1)"
H2="$(sed -n 's/.*hash=\([0-9a-f]*\).*/\1/p' "$WORK/put2.out" | head -1)"
if [[ -z "$H1" || -z "$H2" ]]; then
  echo "put-graph did not answer a content hash:" >&2
  cat "$WORK/put1.out" "$WORK/put2.out" >&2
  exit 1
fi
"$TOOL" submit --socket "$SOCK" --has-graph "$H1" > /dev/null || {
  echo "has-graph said the just-uploaded $H1 is absent" >&2
  exit 1
}
rc=0
"$TOOL" submit --socket "$SOCK" --has-graph 0123456789abcdef \
  > /dev/null 2>&1 || rc=$?
if [[ "$rc" != 11 ]]; then
  echo "has-graph on an unknown hash should exit 11, got $rc" >&2
  exit 1
fi

"$TOOL" submit --socket "$SOCK" --g1-hash "$H1" --g2-hash "$H2" \
  --algo GRASP --out "$WORK/byhash.map" > "$WORK/byhash.out"
grep -q "status=OK" "$WORK/byhash.out" || {
  echo "by-hash align did not succeed:" >&2
  cat "$WORK/byhash.out" >&2
  exit 1
}
"$TOOL" submit --socket "$SOCK" --g1 "$WORK/s1.txt" --g2 "$WORK/s2.txt" \
  --algo GRASP --no-cache --out "$WORK/wire.map" > /dev/null
cmp -s "$WORK/byhash.map" "$WORK/wire.map" || {
  echo "by-hash mapping differs from the wire-path mapping" >&2
  exit 1
}
"$TOOL" submit --socket "$SOCK" --stats > "$WORK/stats.out"
grep -q "graph_store: puts=" "$WORK/stats.out" || {
  echo "daemon stats missing the graph_store counters:" >&2
  cat "$WORK/stats.out" >&2
  exit 1
}
"$TOOL" submit --socket "$SOCK" --shutdown > /dev/null
wait "$DAEMON_PID" 2> /dev/null || true
DAEMON_PID=""
echo "put-graph/has-graph/align-by-hash round trip matched the wire path"

echo "== 4/4 bench: parse-load vs mmap-open =="
# Run from $WORK so the report's graph names are stable basenames, not
# scratch-directory paths.
(cd "$WORK" && "$TOOL" store bench --dir "$STORE" \
  --in big1.txt,big2.txt --reps 5 --json "$BENCH_JSON")
python3 - "$BENCH_JSON" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
rows = report["rows"]
assert rows, "bench report has no rows"
for row in rows:
    assert row["mmap_ms"] < row["parse_ms"], f"mmap-open lost to parse: {row}"
    print(f"  {row['graph']}: n={row['n']} m={row['m']} "
          f"parse={row['parse_ms']:.2f}ms mmap={row['mmap_ms']:.2f}ms "
          f"({row['speedup']:.1f}x)")
print(f"mmap-open beat parse-load on all {len(rows)} graphs")
EOF

echo "store smoke test passed"
