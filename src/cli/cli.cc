#include "cli/cli.h"

#include <pthread.h>
#include <signal.h>
#include <stdlib.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "align/aligner.h"
#include "common/exit_codes.h"
#include "datasets/datasets.h"
#include "common/failpoint.h"
#include "common/parse.h"
#include "common/random.h"
#include "common/status.h"
#include "common/subprocess.h"
#include "common/table.h"
#include "common/timer.h"
#include "gateway/gateway.h"
#include "gateway/json.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "jobs/manager.h"
#include "metrics/metrics.h"
#include "noise/noise.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "store/graph_store.h"
#include "store/gst.h"

namespace graphalign {

namespace {

// Minimal --key value parser; flags without a value use "true".
class Flags {
 public:
  Flags(int argc, const char* const* argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        error_ = "unexpected positional argument: " + key;
        return;
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "true";
      }
    }
  }

  const std::string& error() const { return error_; }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  uint64_t GetSeed() const {
    auto it = values_.find("seed");
    return it == values_.end() ? 2023
                               : std::strtoull(it->second.c_str(), nullptr, 10);
  }

 private:
  std::map<std::string, std::string> values_;
  std::string error_;
};

Status WriteMapping(const Alignment& alignment, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::Internal("cannot write " + path);
  for (size_t u = 0; u < alignment.size(); ++u) {
    if (alignment[u] >= 0) f << u << " " << alignment[u] << "\n";
  }
  return f ? Status::Ok() : Status::Internal("write failed: " + path);
}

Result<Alignment> ReadMapping(const std::string& path, int n1) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot open " + path);
  Alignment alignment(n1, -1);
  std::string line;
  int line_no = 0;
  while (std::getline(f, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    int u, v;
    if (!(ss >> u >> v)) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": malformed mapping line");
    }
    if (u < 0 || u >= n1) {
      return Status::OutOfRange(path + ": source node out of range");
    }
    alignment[u] = v;
  }
  return alignment;
}

int Fail(std::ostream& err, const Status& status) {
  err << "error: " << status.ToString() << "\n";
  return kExitError;
}

// --threads N: per-invocation override of GRAPHALIGN_THREADS, validated with
// the same strict whole-string rules as the bench flags. Must run before the
// first ParallelFor of the process — the pool latches its size on first use
// — which holds for every CLI path (commands parse flags before computing).
Status ApplyThreadsFlag(const Flags& flags) {
  if (!flags.Has("threads")) return Status::Ok();
  const std::string value = flags.GetString("threads");
  auto n = ParseStrictPositiveInt(value);
  if (!n.ok() || *n > 1024) {
    return Status::InvalidArgument(
        "--threads must be a positive integer (1..1024), got '" + value +
        "'");
  }
  setenv("GRAPHALIGN_THREADS", std::to_string(*n).c_str(), 1);
  return Status::Ok();
}

int CmdGenerate(const Flags& flags, std::ostream& out, std::ostream& err) {
  const std::string model = flags.GetString("model");
  const int n = flags.GetInt("n", 0);
  const std::string path = flags.GetString("out");
  if (model.empty() || n <= 0 || path.empty()) {
    return Fail(err, Status::InvalidArgument(
                         "generate requires --model, --n and --out"));
  }
  Rng rng(flags.GetSeed());
  Result<Graph> g = Status::InvalidArgument("unknown model: " + model);
  if (model == "er") {
    g = ErdosRenyi(n, flags.GetDouble("p", 0.01), &rng);
  } else if (model == "ba") {
    g = BarabasiAlbert(n, flags.GetInt("m", 3), &rng);
  } else if (model == "ws") {
    g = WattsStrogatz(n, flags.GetInt("k", 10), flags.GetDouble("p", 0.5),
                      &rng);
  } else if (model == "nw") {
    g = NewmanWatts(n, flags.GetInt("k", 6), flags.GetDouble("p", 0.5), &rng);
  } else if (model == "pl") {
    g = PowerlawCluster(n, flags.GetInt("m", 3), flags.GetDouble("p", 0.5),
                        &rng);
  } else if (model == "geometric") {
    g = RandomGeometric(n, flags.GetDouble("radius", 0.05), &rng);
  }
  if (!g.ok()) return Fail(err, g.status());
  Status s = WriteEdgeList(*g, path);
  if (!s.ok()) return Fail(err, s);
  out << "generated " << model << " graph: n=" << g->num_nodes()
      << " m=" << g->num_edges() << " -> " << path << "\n";
  return 0;
}

int CmdPerturb(const Flags& flags, std::ostream& out, std::ostream& err) {
  const std::string in = flags.GetString("in");
  const std::string out_path = flags.GetString("out");
  if (in.empty() || out_path.empty()) {
    return Fail(err,
                Status::InvalidArgument("perturb requires --in and --out"));
  }
  auto g = ReadEdgeList(in);
  if (!g.ok()) return Fail(err, g.status());
  NoiseOptions noise;
  const std::string type = flags.GetString("noise", "one-way");
  if (type == "one-way") {
    noise.type = NoiseType::kOneWay;
  } else if (type == "multi-modal") {
    noise.type = NoiseType::kMultiModal;
  } else if (type == "two-way") {
    noise.type = NoiseType::kTwoWay;
  } else {
    return Fail(err, Status::InvalidArgument("unknown noise type: " + type));
  }
  noise.level = flags.GetDouble("level", 0.05);
  noise.permute = !flags.Has("no-permute");
  Rng rng(flags.GetSeed());
  auto problem = MakeAlignmentProblem(*g, noise, &rng);
  if (!problem.ok()) return Fail(err, problem.status());
  // Two-way noise also changes g1; warn when we silently keep the original.
  if (noise.type == NoiseType::kTwoWay) {
    err << "note: two-way noise perturbs the source too; writing only the "
           "target (use the library API for full control)\n";
  }
  Status s = WriteEdgeList(problem->g2, out_path);
  if (!s.ok()) return Fail(err, s);
  const std::string truth_path = flags.GetString("truth");
  if (!truth_path.empty()) {
    GA_CHECK(problem->ground_truth.size() ==
             static_cast<size_t>(g->num_nodes()));
    Status ts = WriteMapping(problem->ground_truth, truth_path);
    if (!ts.ok()) return Fail(err, ts);
  }
  out << "perturbed (" << type << ", level=" << noise.level
      << "): m=" << g->num_edges() << " -> " << problem->g2.num_edges()
      << ", wrote " << out_path << "\n";
  return 0;
}

// Strict flag parsing shared by align/serve/submit: positive whole-string
// values, same rules as the bench harness (ParseBenchArgs).
Result<int> StrictIntFlag(const Flags& flags, const std::string& key,
                          int fallback) {
  if (!flags.Has(key)) return fallback;
  auto v = ParseStrictPositiveInt(flags.GetString(key));
  if (!v.ok()) {
    return Status::InvalidArgument("--" + key +
                                   " must be a positive integer, got '" +
                                   flags.GetString(key) + "'");
  }
  return *v;
}

Result<double> StrictDoubleFlag(const Flags& flags, const std::string& key,
                                double fallback) {
  if (!flags.Has(key)) return fallback;
  auto v = ParseStrictPositiveDouble(flags.GetString(key));
  if (!v.ok()) {
    return Status::InvalidArgument("--" + key +
                                   " must be a positive number, got '" +
                                   flags.GetString(key) + "'");
  }
  return *v;
}

int CmdAlignInner(const Flags& flags, std::ostream& out, std::ostream& err) {
  const std::string g1_path = flags.GetString("g1");
  const std::string g2_path = flags.GetString("g2");
  const std::string algo = flags.GetString("algo");
  if (g1_path.empty() || g2_path.empty() || algo.empty()) {
    return Fail(err, Status::InvalidArgument(
                         "align requires --g1, --g2 and --algo"));
  }
  auto g1 = ReadEdgeList(g1_path);
  if (!g1.ok()) return Fail(err, g1.status());
  auto g2 = ReadEdgeList(g2_path);
  if (!g2.ok()) return Fail(err, g2.status());
  auto aligner = MakeAligner(algo);
  if (!aligner.ok()) return Fail(err, aligner.status());

  // --time-limit T: cooperative budget in seconds over the whole alignment
  // (similarity + assignment). The run aborts with DNF soon after expiry.
  Deadline deadline;  // Infinite unless --time-limit is given.
  if (flags.Has("time-limit")) {
    const double limit = flags.GetDouble("time-limit", 0.0);
    if (limit <= 0.0) {
      return Fail(err, Status::InvalidArgument(
                           "--time-limit must be a positive number of "
                           "seconds"));
    }
    deadline = Deadline::AfterSeconds(limit);
  }

  // --sparse: LSH candidate generation + candidate-only scoring + sparse
  // LAP. Never builds the n1 x n2 matrix for native-capable algorithms
  // (LREA, REGAL, NSD); the output says which path actually ran.
  if (flags.Has("sparse")) {
    LshOptions lsh;
    auto bands = StrictIntFlag(flags, "lsh-bands", lsh.bands);
    if (!bands.ok()) return Fail(err, bands.status());
    lsh.bands = *bands;
    auto rows = StrictIntFlag(flags, "lsh-rows", lsh.rows_per_band);
    if (!rows.ok()) return Fail(err, rows.status());
    lsh.rows_per_band = *rows;
    WallTimer sparse_timer;
    auto sparse = (*aligner)->AlignSparse(*g1, *g2, lsh, deadline);
    if (!sparse.ok()) {
      if (sparse.status().code() == StatusCode::kDeadlineExceeded) {
        err << "DNF: " << algo << " exceeded the time limit after "
            << Table::Num(sparse_timer.Seconds(), 2) << "s\n";
        return kExitDnf;
      }
      if (sparse.status().code() == StatusCode::kNumerical) {
        err << "NUMERICAL: " << sparse.status().message() << "\n";
        return kExitNumerical;
      }
      return Fail(err, sparse.status());
    }
    const double secs = sparse_timer.Seconds();
    int matched = 0;
    for (int v : sparse->alignment) matched += (v >= 0);
    out << algo << "/sparse aligned " << matched << "/" << g1->num_nodes()
        << " nodes in " << Table::Num(secs, 2) << "s (candidates="
        << sparse->num_candidates << ", "
        << SparseSimilarityModeName(sparse->mode) << ")\n";
    const std::string out_path = flags.GetString("out");
    if (!out_path.empty()) {
      Status s = WriteMapping(sparse->alignment, out_path);
      if (!s.ok()) return Fail(err, s);
      out << "mapping written to " << out_path << "\n";
    }
    out << "MNC=" << Table::Num(MeanMatchedNeighborhoodConsistency(
                       *g1, *g2, sparse->alignment))
        << " EC=" << Table::Num(EdgeCorrectness(*g1, *g2, sparse->alignment))
        << " S3=" << Table::Num(SymmetricSubstructureScore(
                       *g1, *g2, sparse->alignment))
        << "\n";
    return 0;
  }

  const std::string assign = flags.GetString("assign", "JV");
  WallTimer timer;
  Result<Alignment> alignment = Alignment{};
  bool degraded = false;
  std::string degrade_reason;
  if (assign == "native") {
    alignment = (*aligner)->AlignNative(*g1, *g2, deadline);
  } else {
    AssignmentMethod method;
    if (assign == "NN") {
      method = AssignmentMethod::kNearestNeighbor;
    } else if (assign == "SG") {
      method = AssignmentMethod::kSortGreedy;
    } else if (assign == "MWM") {
      method = AssignmentMethod::kHungarian;
    } else if (assign == "JV") {
      method = AssignmentMethod::kJonkerVolgenant;
    } else {
      return Fail(err, Status::InvalidArgument(
                           "unknown assignment method: " + assign));
    }
    // The robust path degrades gracefully on recoverable numerical failures
    // (sanitized matrix, degree-profile fallback, greedy assignment) instead
    // of erroring out; a degraded result is reported as such below.
    auto robust = (*aligner)->AlignRobust(*g1, *g2, method, deadline);
    if (robust.ok()) {
      alignment = std::move(robust->alignment);
      degraded = robust->degraded;
      degrade_reason = std::move(robust->degrade_reason);
    } else {
      alignment = robust.status();
    }
  }
  if (!alignment.ok()) {
    if (alignment.status().code() == StatusCode::kDeadlineExceeded) {
      err << "DNF: " << algo << " exceeded the time limit after "
          << Table::Num(timer.Seconds(), 2) << "s\n";
      return kExitDnf;
    }
    if (alignment.status().code() == StatusCode::kNumerical) {
      err << "NUMERICAL: " << alignment.status().message() << "\n";
      return kExitNumerical;
    }
    return Fail(err, alignment.status());
  }
  const double secs = timer.Seconds();
  int matched = 0;
  for (int v : *alignment) matched += (v >= 0);
  out << algo << "/" << assign << " aligned " << matched << "/"
      << g1->num_nodes() << " nodes in " << Table::Num(secs, 2) << "s";
  if (degraded) out << " [degraded: " << degrade_reason << "]";
  out << "\n";
  const std::string out_path = flags.GetString("out");
  if (!out_path.empty()) {
    Status s = WriteMapping(*alignment, out_path);
    if (!s.ok()) return Fail(err, s);
    out << "mapping written to " << out_path << "\n";
  }
  // Structural quality is computable without ground truth.
  out << "MNC=" << Table::Num(MeanMatchedNeighborhoodConsistency(
                     *g1, *g2, *alignment))
      << " EC=" << Table::Num(EdgeCorrectness(*g1, *g2, *alignment))
      << " S3=" << Table::Num(SymmetricSubstructureScore(*g1, *g2, *alignment))
      << "\n";
  return 0;
}

// `align` front door: --isolate / --mem-limit MB run the alignment in a
// forked child under rlimit caps, so a crashing or memory-hungry aligner
// yields a distinct exit code (4 = crash, 5 = OOM, 3 = DNF) instead of
// taking the CLI down with it.
int CmdAlign(const Flags& flags, std::ostream& out, std::ostream& err) {
  Status threads = ApplyThreadsFlag(flags);
  if (!threads.ok()) return Fail(err, threads);
  const bool isolate = flags.Has("isolate") || flags.Has("mem-limit");
  if (!isolate) return CmdAlignInner(flags, out, err);

  SubprocessOptions options;
  if (flags.Has("mem-limit")) {
    const double mb = flags.GetDouble("mem-limit", 0.0);
    if (mb <= 0.0) {
      return Fail(err, Status::InvalidArgument(
                           "--mem-limit must be a positive number of "
                           "megabytes"));
    }
    options.mem_limit_bytes = static_cast<int64_t>(mb * 1024.0 * 1024.0);
  }
  if (flags.Has("time-limit")) {
    const double limit = flags.GetDouble("time-limit", 0.0);
    if (limit <= 0.0) {
      return Fail(err, Status::InvalidArgument(
                           "--time-limit must be a positive number of "
                           "seconds"));
    }
    // The cooperative deadline inside the child remains the primary limit;
    // the hard kill is a backstop for non-cooperative hangs.
    options.wall_limit_seconds = 2.0 * limit + 30.0;
  }
  auto result = RunIsolated(
      [&](int) {
        const int rc = CmdAlignInner(flags, out, err);
        out.flush();
        err.flush();
        return rc;
      },
      options);
  if (!result.ok()) return Fail(err, result.status());
  switch (result->status) {
    case RunStatus::kOk:
      return kExitOk;
    case RunStatus::kExit:
      return result->exit_code;
    case RunStatus::kCrash:
      err << "CRASH: " << result->detail << "\n";
      return kExitCrash;
    case RunStatus::kOom:
      err << "OOM: " << result->detail << "\n";
      return kExitOom;
    case RunStatus::kTimeout:
      err << "DNF: hard-killed at the wall-clock backstop after "
          << Table::Num(result->wall_seconds, 2) << "s\n";
      return kExitDnf;
  }
  return kExitError;
}

int CmdEvaluate(const Flags& flags, std::ostream& out, std::ostream& err) {
  const std::string g1_path = flags.GetString("g1");
  const std::string g2_path = flags.GetString("g2");
  const std::string mapping_path = flags.GetString("mapping");
  if (g1_path.empty() || g2_path.empty() || mapping_path.empty()) {
    return Fail(err, Status::InvalidArgument(
                         "evaluate requires --g1, --g2 and --mapping"));
  }
  auto g1 = ReadEdgeList(g1_path);
  if (!g1.ok()) return Fail(err, g1.status());
  auto g2 = ReadEdgeList(g2_path);
  if (!g2.ok()) return Fail(err, g2.status());
  auto mapping = ReadMapping(mapping_path, g1->num_nodes());
  if (!mapping.ok()) return Fail(err, mapping.status());
  out << "MNC=" << Table::Num(MeanMatchedNeighborhoodConsistency(*g1, *g2,
                                                                 *mapping))
      << " EC=" << Table::Num(EdgeCorrectness(*g1, *g2, *mapping))
      << " ICS=" << Table::Num(InducedConservedStructure(*g1, *g2, *mapping))
      << " S3=" << Table::Num(SymmetricSubstructureScore(*g1, *g2, *mapping));
  const std::string truth_path = flags.GetString("truth");
  if (!truth_path.empty()) {
    auto truth = ReadMapping(truth_path, g1->num_nodes());
    if (!truth.ok()) return Fail(err, truth.status());
    out << " accuracy=" << Table::Num(Accuracy(*mapping, *truth));
  }
  out << "\n";
  return 0;
}

int CmdStats(const Flags& flags, std::ostream& out, std::ostream& err) {
  const std::string in = flags.GetString("in");
  if (in.empty()) {
    return Fail(err, Status::InvalidArgument("stats requires --in"));
  }
  LoadStats load_stats;
  auto g = ReadEdgeList(in, /*num_nodes=*/0, &load_stats);
  if (!g.ok()) return Fail(err, g.status());
  int components = 0;
  g->ConnectedComponents(&components);
  int64_t triangles = 0;
  for (int64_t t : g->TriangleCounts()) triangles += t;
  char hash[24];
  std::snprintf(hash, sizeof(hash), "%016llx",
                static_cast<unsigned long long>(g->ContentHash()));
  out << "n=" << g->num_nodes() << " m=" << g->num_edges()
      << " avg_degree=" << Table::Num(g->AverageDegree(), 2)
      << " max_degree=" << g->MaxDegree() << " components=" << components
      << " outside_lcc=" << g->NodesOutsideLargestComponent()
      << " triangles=" << triangles / 3
      << " self_loops_dropped=" << load_stats.self_loops_dropped
      << " hash=" << hash << "\n";
  return 0;
}

// ---------------------------------------------------------------------------
// serve / submit: the alignment service daemon and its client.

int CmdServe(const Flags& flags, std::ostream& out, std::ostream& err) {
  Status threads = ApplyThreadsFlag(flags);
  if (!threads.ok()) return Fail(err, threads);
  ServerOptions options;
  options.socket_path = flags.GetString("socket");
  if (flags.Has("port")) {
    // Port 0 (kernel-assigned) is allowed, so parse as unsigned, not
    // strictly positive.
    auto port = ParseStrictUint64(flags.GetString("port"));
    if (!port.ok() || *port > 65535) {
      return Fail(err, Status::InvalidArgument(
                           "--port must be an integer in 0..65535, got '" +
                           flags.GetString("port") + "'"));
    }
    options.port = static_cast<int>(*port);
  }
  auto workers = StrictIntFlag(flags, "workers", options.workers);
  if (!workers.ok()) return Fail(err, workers.status());
  options.workers = *workers;
  auto queue = StrictIntFlag(flags, "queue", 0);
  if (!queue.ok()) return Fail(err, queue.status());
  options.queue_capacity = *queue;
  auto cache_mb = StrictDoubleFlag(flags, "cache-mb", options.cache_mb);
  if (!cache_mb.ok()) return Fail(err, cache_mb.status());
  options.cache_mb = *cache_mb;
  auto io_timeout =
      StrictDoubleFlag(flags, "io-timeout", options.io_timeout_seconds);
  if (!io_timeout.ok()) return Fail(err, io_timeout.status());
  options.io_timeout_seconds = *io_timeout;
  options.cache_dir = flags.GetString("cache-dir");
  options.store_dir = flags.GetString("store-dir");
  auto compact_mb =
      StrictDoubleFlag(flags, "cache-compact-mb", options.cache_compact_mb);
  if (!compact_mb.ok()) return Fail(err, compact_mb.status());
  options.cache_compact_mb = *compact_mb;
  auto quota = StrictDoubleFlag(flags, "quota", options.quota_rps);
  if (!quota.ok()) return Fail(err, quota.status());
  options.quota_rps = *quota;
  options.shed = flags.Has("shed");
  // "--quarantine 0" / "--grace 0" disable those guards, so zero is legal
  // here even though the strict parsers demand positive values.
  if (flags.GetString("quarantine") == "0") {
    options.quarantine_threshold = 0;
  } else {
    auto quarantine =
        StrictIntFlag(flags, "quarantine", options.quarantine_threshold);
    if (!quarantine.ok()) return Fail(err, quarantine.status());
    options.quarantine_threshold = *quarantine;
  }
  if (flags.GetString("grace") == "0") {
    options.watchdog_grace_seconds = 0.0;
  } else {
    auto grace =
        StrictDoubleFlag(flags, "grace", options.watchdog_grace_seconds);
    if (!grace.ok()) return Fail(err, grace.status());
    options.watchdog_grace_seconds = *grace;
  }
  // --jobs-dir DIR enables the durable async job queue (DESIGN.md §17);
  // without it kSubmitJob is refused and the daemon is synchronous-only.
  options.jobs_dir = flags.GetString("jobs-dir");
  auto job_attempts =
      StrictIntFlag(flags, "job-attempts", options.job_attempts);
  if (!job_attempts.ok()) return Fail(err, job_attempts.status());
  options.job_attempts = *job_attempts;
  auto job_ttl = StrictDoubleFlag(flags, "job-ttl", options.job_ttl_seconds);
  if (!job_ttl.ok()) return Fail(err, job_ttl.status());
  options.job_ttl_seconds = *job_ttl;
  auto job_workers =
      StrictIntFlag(flags, "job-workers", options.job_workers);
  if (!job_workers.ok()) return Fail(err, job_workers.status());
  options.job_workers = *job_workers;
  // --http-port N: also serve the HTTP/JSON gateway (DESIGN.md §16) on
  // 127.0.0.1:N (0 = kernel-assigned). The gateway forwards every HTTP
  // request as a GAF1 call against this daemon, so quotas/shed/quarantine
  // apply to HTTP traffic unchanged.
  int http_port = -1;
  if (flags.Has("http-port")) {
    auto p = ParseStrictUint64(flags.GetString("http-port"));
    if (!p.ok() || *p > 65535) {
      return Fail(err, Status::InvalidArgument(
                           "--http-port must be an integer in 0..65535, "
                           "got '" + flags.GetString("http-port") + "'"));
    }
    http_port = static_cast<int>(*p);
  }

  // Block SIGINT/SIGTERM before spawning server threads (they inherit the
  // mask), then consume them on a dedicated sigwait thread. Signal-driven
  // shutdown thus runs in normal thread context, free of
  // async-signal-safety constraints. SIGTERM drains gracefully (finish
  // in-flight requests, answer queued clients with SHUTTING_DOWN); SIGINT
  // or a second signal escalates to a hard Shutdown.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  auto server = Server::Create(options);
  if (!server.ok()) return Fail(err, server.status());
  Status started = (*server)->Start();
  if (!started.ok()) return Fail(err, started);

  // The gateway threads inherit the blocked signal mask: operator signals
  // keep flowing to the sigwaiter below, which shuts both layers down.
  std::unique_ptr<Gateway> gateway;
  if (http_port >= 0) {
    GatewayOptions gw;
    gw.http_port = http_port;
    if (!options.socket_path.empty()) {
      gw.backend.socket_path = options.socket_path;
    } else {
      gw.backend.port = (*server)->port();
    }
    auto created = Gateway::Create(gw);
    Status gw_started =
        created.ok() ? (*created)->Start() : created.status();
    if (!gw_started.ok()) {
      (*server)->Shutdown();
      (*server)->Wait();
      return Fail(err, gw_started);
    }
    gateway = std::move(*created);
  }

  std::atomic<bool> server_done{false};
  std::thread sigwaiter([&sigs, &server, &server_done, &err] {
    // Blocks in sigwait only and holds no locks, so forking alignment
    // workers remain safe while this thread exists.
    ScopedForkTolerantThread fork_tolerant;
    bool drained = false;
    for (;;) {
      int sig = 0;
      sigwait(&sigs, &sig);
      // Wait() already returned in the main thread: this is its nudge to
      // exit, not an operator signal.
      if (server_done.load(std::memory_order_acquire)) return;
      if (sig == SIGTERM && !drained) {
        drained = true;
        err << "SIGTERM: draining (send again to force shutdown)\n";
        err.flush();
        (*server)->Drain();
        continue;  // A second signal escalates.
      }
      (*server)->Shutdown();
      return;
    }
  });

  if (!options.socket_path.empty()) {
    out << "graphalign daemon serving on unix socket " << options.socket_path;
  } else {
    out << "graphalign daemon serving on 127.0.0.1:" << (*server)->port();
  }
  out << " (workers=" << options.workers << ", cache="
      << Table::Num(options.cache_mb, 0) << "MB)\n";
  if (gateway != nullptr) {
    out << "graphalign gateway serving on 127.0.0.1:" << gateway->port()
        << "\n";
  }
  out.flush();

  (*server)->Wait();
  if (gateway != nullptr) {
    gateway->Shutdown();
    gateway->Wait();
  }
  // Wake the sigwaiter if it is still blocked (shutdown via a kShutdown
  // request, or a drain that completed); sigwait consumes the nudge.
  server_done.store(true, std::memory_order_release);
  pthread_kill(sigwaiter.native_handle(), SIGTERM);
  sigwaiter.join();
  const ResultCache::Stats stats = (*server)->cache_stats();
  out << "daemon stopped (cache: " << stats.hits << " hits, " << stats.misses
      << " misses, " << stats.entries << " entries)\n";
  return kExitOk;
}

Result<WireGraph> LoadWireGraph(const std::string& path) {
  GA_ASSIGN_OR_RETURN(Graph g, ReadEdgeList(path));
  return ToWire(g);
}

int PrintAlignResponse(const Response& response, const AlignRequest& request,
                       int n1, const std::string& out_path, std::ostream& out,
                       std::ostream& err) {
  auto result = DecodeAlignResult(response.body);
  if (!result.ok()) return Fail(err, result.status());
  int matched = 0;
  for (int32_t v : result->mapping) matched += (v >= 0);
  // By-hash submissions never load g1 locally; the mapping length is n1.
  if (n1 == 0) n1 = static_cast<int>(result->mapping.size());
  out << request.algo << "/" << request.assign << " aligned " << matched
      << "/" << n1 << " nodes in " << Table::Num(result->align_seconds, 2)
      << "s (server)";
  if (result->degraded) out << " [degraded: " << result->degrade_reason << "]";
  out << "\n";
  out << "MNC=" << Table::Num(result->mnc) << " EC=" << Table::Num(result->ec)
      << " S3=" << Table::Num(result->s3) << "\n";
  if (!out_path.empty()) {
    Alignment alignment(result->mapping.begin(), result->mapping.end());
    Status s = WriteMapping(alignment, out_path);
    if (!s.ok()) return Fail(err, s);
    out << "mapping written to " << out_path << "\n";
  }
  return kExitOk;
}

// Prints the outcome of a job-surface call (kSubmitJob/kJobStatus/
// kJobResult/kCancelJob) and exits with the response code, so scripts can
// branch on 13 (accepted/pending), 14 (no such job), 15 (conflict) without
// parsing. A finished kJobResult carries the align result — byte-identical
// to what the synchronous path would have returned — and honors --out.
int PrintJobResponse(const Request& request, const Response& response,
                     const std::string& out_path, std::ostream& out,
                     std::ostream& err) {
  if (request.type == RequestType::kJobResult &&
      response.code == ResponseCode::kOk) {
    auto result = DecodeAlignResult(response.body);
    if (!result.ok()) return Fail(err, result.status());
    int matched = 0;
    for (int32_t v : result->mapping) matched += (v >= 0);
    out << "job result: matched=" << matched << "/" << result->mapping.size()
        << " MNC=" << Table::Num(result->mnc)
        << " EC=" << Table::Num(result->ec)
        << " S3=" << Table::Num(result->s3)
        << " align_s=" << Table::Num(result->align_seconds, 2) << "\n";
    if (!out_path.empty()) {
      Alignment alignment(result->mapping.begin(), result->mapping.end());
      Status s = WriteMapping(alignment, out_path);
      if (!s.ok()) return Fail(err, s);
      out << "mapping written to " << out_path << "\n";
    }
    return kExitOk;
  }
  // Everything else answers with a job envelope when one exists.
  auto info = DecodeJobInfo(response.body);
  if (info.ok()) {
    out << "job=" << GraphStore::HashName(info->job_id)
        << " state=" << info->state_name << " attempts=" << info->attempts
        << "/" << info->max_attempts;
    if (info->existing) out << " (existing)";
    if (JobStateTerminal(static_cast<JobState>(info->state))) {
      out << " terminal=" << ResponseCodeName(
                                 static_cast<ResponseCode>(info->terminal_code));
    }
    if (!info->message.empty()) out << " message=" << info->message;
    out << "\n";
  }
  if (response.code != ResponseCode::kOk &&
      response.code != ResponseCode::kAccepted) {
    err << ResponseCodeName(response.code) << ": " << response.message << "\n";
  }
  return static_cast<int>(response.code);
}

int CmdSubmit(const Flags& flags, std::ostream& out, std::ostream& err,
              bool force_async = false) {
  ClientOptions conn;
  conn.socket_path = flags.GetString("socket");
  if (flags.Has("port")) {
    auto port = ParseStrictUint64(flags.GetString("port"));
    if (!port.ok() || *port == 0 || *port > 65535) {
      return Fail(err, Status::InvalidArgument(
                           "--port must be an integer in 1..65535, got '" +
                           flags.GetString("port") + "'"));
    }
    conn.port = static_cast<int>(*port);
  }
  conn.host = flags.GetString("host", conn.host);
  auto timeout = StrictDoubleFlag(flags, "timeout", conn.timeout_seconds);
  if (!timeout.ok()) return Fail(err, timeout.status());
  conn.timeout_seconds = *timeout;

  // --retries N: retry transient failures (connect errors, BUSY, SHED,
  // SHUTTING_DOWN) up to N extra attempts with jittered exponential
  // backoff. 0 (the default) keeps the single-shot behavior. QUARANTINED
  // is permanent and is never retried.
  RetryPolicy retry_policy;
  retry_policy.max_attempts = 1;
  if (flags.Has("retries")) {
    auto retries = ParseStrictUint64(flags.GetString("retries"));
    if (!retries.ok() || *retries > 100) {
      return Fail(err, Status::InvalidArgument(
                           "--retries must be an integer in 0..100, got '" +
                           flags.GetString("retries") + "'"));
    }
    retry_policy.max_attempts = 1 + static_cast<int>(*retries);
  }

  // Build the request: --ping / --shutdown / --cache-info / --stats
  // [FILE], evaluate when --mapping is present, align when --algo is
  // present. --client NAME tags the request for per-client quotas.
  Request request;
  request.client = flags.GetString("client");
  if (request.client.size() > kMaxNameLen) {
    return Fail(err, Status::InvalidArgument(
                         "--client must be at most " +
                         std::to_string(kMaxNameLen) + " bytes"));
  }
  int align_n1 = 0;
  if (flags.Has("ping")) {
    request.type = RequestType::kPing;
  } else if (flags.Has("shutdown")) {
    request.type = RequestType::kShutdown;
  } else if (flags.Has("cache-info")) {
    request.type = RequestType::kCacheInfo;
  } else if (flags.Has("stats")) {
    if (flags.GetString("stats") == "true") {
      // Bare --stats: the daemon's own serving counters (admission,
      // quarantine, watchdog, durable cache), not graph stats.
      request.type = RequestType::kServerStats;
    } else {
      request.type = RequestType::kStats;
      auto g = LoadWireGraph(flags.GetString("stats"));
      if (!g.ok()) return Fail(err, g.status());
      request.stats.g = std::move(*g);
    }
  } else if (flags.Has("mapping")) {
    request.type = RequestType::kEvaluate;
    const std::string g1_path = flags.GetString("g1");
    const std::string g2_path = flags.GetString("g2");
    if (g1_path.empty() || g2_path.empty()) {
      return Fail(err, Status::InvalidArgument(
                           "submit evaluate requires --g1, --g2, --mapping"));
    }
    auto g1 = ReadEdgeList(g1_path);
    if (!g1.ok()) return Fail(err, g1.status());
    auto g2 = ReadEdgeList(g2_path);
    if (!g2.ok()) return Fail(err, g2.status());
    auto mapping = ReadMapping(flags.GetString("mapping"), g1->num_nodes());
    if (!mapping.ok()) return Fail(err, mapping.status());
    request.evaluate.g1 = ToWire(*g1);
    request.evaluate.g2 = ToWire(*g2);
    request.evaluate.mapping.assign(mapping->begin(), mapping->end());
    const std::string truth_path = flags.GetString("truth");
    if (!truth_path.empty()) {
      auto truth = ReadMapping(truth_path, g1->num_nodes());
      if (!truth.ok()) return Fail(err, truth.status());
      request.evaluate.truth.assign(truth->begin(), truth->end());
    }
  } else if (flags.Has("put-graph")) {
    request.type = RequestType::kPutGraph;
    auto g = LoadWireGraph(flags.GetString("put-graph"));
    if (!g.ok()) return Fail(err, g.status());
    request.put_graph.g = std::move(*g);
  } else if (flags.Has("has-graph")) {
    request.type = RequestType::kHasGraph;
    auto hash = GraphStore::ParseHashName(flags.GetString("has-graph"));
    if (!hash.ok()) return Fail(err, hash.status());
    request.has_graph.hash = *hash;
  } else if (flags.Has("batch")) {
    // submit --batch jobs.json: one kAlignBatch frame carrying K jobs over
    // a shared graph table. The JSON schema is the HTTP gateway's
    // (README), plus a CLI-only {"file": PATH} graph form expanded to an
    // inline graph here, client-side.
    std::ifstream batch_in(flags.GetString("batch"));
    if (!batch_in) {
      return Fail(err, Status::NotFound("cannot open batch file: " +
                                        flags.GetString("batch")));
    }
    std::ostringstream batch_text;
    batch_text << batch_in.rdbuf();
    auto parsed = ParseJson(batch_text.str());
    if (!parsed.ok()) return Fail(err, parsed.status());
    JsonValue doc = *parsed;
    if (doc.is_object() && doc.Get("graphs").is_array()) {
      JsonValue graphs = JsonValue::Array();
      for (const JsonValue& g : doc.Get("graphs").AsArray()) {
        if (!g.is_object() || !g.Has("file")) {
          graphs.Push(g);
          continue;
        }
        if (!g.Get("file").is_string()) {
          return Fail(err, Status::InvalidArgument(
                               "batch graph \"file\" must be a path string"));
        }
        auto wire = LoadWireGraph(g.Get("file").AsString());
        if (!wire.ok()) return Fail(err, wire.status());
        JsonValue inline_g = JsonValue::Object();
        inline_g.Set("n", JsonValue::Number(wire->num_nodes));
        JsonValue edges = JsonValue::Array();
        for (const Edge& e : wire->edges) {
          JsonValue pair = JsonValue::Array();
          pair.Push(JsonValue::Number(e.u));
          pair.Push(JsonValue::Number(e.v));
          edges.Push(std::move(pair));
        }
        inline_g.Set("edges", std::move(edges));
        graphs.Push(std::move(inline_g));
      }
      doc.Set("graphs", std::move(graphs));
    }
    const std::string client_flag = request.client;
    Status built = BatchRequestFromJson(doc, &request);
    if (!built.ok()) return Fail(err, built);
    if (!client_flag.empty()) request.client = client_flag;  // --client wins.
  } else if (flags.Has("algo")) {
    request.type = RequestType::kAlign;
    AlignRequest& a = request.align;
    a.algo = flags.GetString("algo");
    a.assign = flags.GetString("assign", "JV");
    a.no_cache = flags.Has("no-cache");
    const std::string g1_path = flags.GetString("g1");
    const std::string g2_path = flags.GetString("g2");
    if (flags.Has("g1-hash") || flags.Has("g2-hash")) {
      // Submit-by-hash: name both graphs by content hash; the daemon maps
      // them from its store. Mixing a hash with an inline file is rejected
      // (the wire format forbids the ambiguity too).
      if (!g1_path.empty() || !g2_path.empty()) {
        return Fail(err, Status::InvalidArgument(
                             "submit align takes either --g1/--g2 files or "
                             "--g1-hash/--g2-hash, not a mix"));
      }
      auto h1 = GraphStore::ParseHashName(flags.GetString("g1-hash"));
      if (!h1.ok()) return Fail(err, h1.status());
      auto h2 = GraphStore::ParseHashName(flags.GetString("g2-hash"));
      if (!h2.ok()) return Fail(err, h2.status());
      a.by_hash = true;
      a.g1_hash = *h1;
      a.g2_hash = *h2;
    } else {
      if (g1_path.empty() || g2_path.empty()) {
        return Fail(err, Status::InvalidArgument(
                             "submit align requires --g1, --g2 and --algo"));
      }
      auto g1 = LoadWireGraph(g1_path);
      if (!g1.ok()) return Fail(err, g1.status());
      auto g2 = LoadWireGraph(g2_path);
      if (!g2.ok()) return Fail(err, g2.status());
      align_n1 = g1->num_nodes;
      a.g1 = std::move(*g1);
      a.g2 = std::move(*g2);
    }
    if (flags.Has("time-limit")) {
      auto limit = StrictDoubleFlag(flags, "time-limit", 0.0);
      if (!limit.ok()) return Fail(err, limit.status());
      a.deadline_ms = static_cast<uint64_t>(*limit * 1000.0);
    }
    if (flags.Has("mem-limit")) {
      auto mb = StrictDoubleFlag(flags, "mem-limit", 0.0);
      if (!mb.ok()) return Fail(err, mb.status());
      a.mem_limit_mb = static_cast<uint64_t>(*mb);
    }
  } else {
    return Fail(err, Status::InvalidArgument(
                         "submit requires an action: --ping, --shutdown, "
                         "--cache-info, --stats FILE, --put-graph FILE, "
                         "--has-graph HASH, align flags (--g1 --g2 or "
                         "--g1-hash --g2-hash, with --algo), or evaluate "
                         "flags (--g1 --g2 --mapping)"));
  }

  // --async (or `graphalign jobs submit`): enqueue the align as a durable
  // job instead of blocking on it. --idem-key KEY makes resubmission after
  // a client crash return the original job instead of executing twice.
  if (flags.Has("async") || force_async) {
    if (request.type != RequestType::kAlign) {
      return Fail(err, Status::InvalidArgument(
                           "--async applies to align submissions only"));
    }
    const std::string idem_key = flags.GetString("idem-key");
    if (idem_key.size() > kMaxNameLen) {
      return Fail(err, Status::InvalidArgument(
                           "--idem-key must be at most " +
                           std::to_string(kMaxNameLen) + " bytes"));
    }
    request.type = RequestType::kSubmitJob;
    request.submit_job.align = std::move(request.align);
    request.align = AlignRequest{};
    request.submit_job.idem_key = idem_key;
  }

  auto response = CallWithRetry(conn, request, retry_policy);
  if (!response.ok()) return Fail(err, response.status());

  // Machine-greppable outcome line first; details follow.
  out << "status=" << ResponseCodeName(response->code)
      << " cache=" << (response->cache_hit ? "hit" : "miss")
      << " elapsed_us=" << response->elapsed_us << "\n";
  if (request.type == RequestType::kSubmitJob ||
      request.type == RequestType::kJobStatus ||
      request.type == RequestType::kJobResult ||
      request.type == RequestType::kCancelJob) {
    return PrintJobResponse(request, *response, flags.GetString("out"), out,
                            err);
  }
  if (request.type == RequestType::kAlignBatch) {
    // Batches carry per-job detail even on PARTIAL or a uniform failure
    // code; only an admission-level rejection (BUSY/SHUTTING_DOWN before
    // execution) arrives without a decodable body.
    auto batch = DecodeAlignBatchResult(response->body);
    if (!batch.ok()) {
      if (response->code != ResponseCode::kOk) {
        err << ResponseCodeName(response->code) << ": " << response->message
            << "\n";
        return static_cast<int>(response->code);
      }
      return Fail(err, batch.status());
    }
    size_t ok_jobs = 0;
    for (const BatchJobOutcome& j : batch->jobs) {
      ok_jobs += (j.code == ResponseCode::kOk);
    }
    out << "batch: jobs=" << batch->jobs.size() << " ok=" << ok_jobs
        << " failed=" << (batch->jobs.size() - ok_jobs)
        << " graph_loads=" << batch->graph_loads << "\n";
    for (size_t i = 0; i < batch->jobs.size(); ++i) {
      const BatchJobOutcome& j = batch->jobs[i];
      out << "job " << i << ": status=" << ResponseCodeName(j.code)
          << " cache=" << (j.cache_hit ? "hit" : "miss");
      if (j.code == ResponseCode::kOk) {
        auto r = DecodeAlignResult(j.body);
        if (r.ok()) {
          out << " MNC=" << Table::Num(r->mnc) << " EC=" << Table::Num(r->ec)
              << " S3=" << Table::Num(r->s3)
              << " align_s=" << Table::Num(r->align_seconds, 2);
        }
      } else if (!j.message.empty()) {
        out << " error=" << j.message;
      }
      out << "\n";
    }
    if (response->code != ResponseCode::kOk) {
      err << ResponseCodeName(response->code) << ": " << response->message
          << "\n";
    }
    return static_cast<int>(response->code);
  }
  if (response->code != ResponseCode::kOk) {
    err << ResponseCodeName(response->code) << ": " << response->message
        << "\n";
    return static_cast<int>(response->code);
  }
  switch (request.type) {
    case RequestType::kPing:
    case RequestType::kShutdown:
      out << response->message << "\n";
      return kExitOk;
    case RequestType::kCacheInfo: {
      auto info = DecodeCacheInfoResult(response->body);
      if (!info.ok()) return Fail(err, info.status());
      out << "cache: hits=" << info->hits << " misses=" << info->misses
          << " evictions=" << info->evictions << " entries=" << info->entries
          << " bytes=" << info->bytes << "/" << info->capacity_bytes << "\n";
      return kExitOk;
    }
    case RequestType::kServerStats: {
      auto stats = DecodeServerStatsResult(response->body);
      if (!stats.ok()) return Fail(err, stats.status());
      out << "server: workers=" << stats->workers
          << " uptime_s=" << Table::Num(stats->uptime_seconds, 1)
          << " accepted=" << stats->accepted << " served=" << stats->served
          << " queue_depth=" << stats->queue_depth
          << " in_flight=" << stats->in_flight << "\n";
      out << "admission: busy=" << stats->busy_rejected
          << " quota=" << stats->quota_rejected << " shed=" << stats->shed
          << "\n";
      out << "quarantine: responses=" << stats->quarantined
          << " signatures=" << stats->quarantined_signatures
          << " watchdog_kills=" << stats->watchdog_kills << "\n";
      out << "cache_log: replayed=" << stats->cache_replayed
          << " crc_skipped=" << stats->cache_crc_skipped
          << " truncated_bytes=" << stats->cache_truncated_bytes
          << " append_errors=" << stats->cache_append_errors
          << " open_errors=" << stats->cache_open_errors << "\n";
      out << "graph_store: puts=" << stats->store_puts
          << " gets=" << stats->store_gets
          << " corrupt=" << stats->store_corrupt
          << " missing=" << stats->store_missing
          << " unavailable=" << stats->store_unavailable << "\n";
      out << "jobs: submitted=" << stats->jobs_submitted
          << " deduped=" << stats->jobs_deduped
          << " done=" << stats->jobs_done
          << " failed=" << stats->jobs_failed
          << " cancelled=" << stats->jobs_cancelled
          << " executions=" << stats->jobs_executions
          << " recovered=" << stats->jobs_recovered
          << " pending=" << stats->jobs_pending << "\n";
      out << "worker_restarts:";
      for (uint64_t r : stats->worker_restarts) out << " " << r;
      out << "\n";
      return kExitOk;
    }
    case RequestType::kStats: {
      auto stats = DecodeStatsResult(response->body);
      if (!stats.ok()) return Fail(err, stats.status());
      char hash[24];
      std::snprintf(hash, sizeof(hash), "%016llx",
                    static_cast<unsigned long long>(stats->content_hash));
      out << "n=" << stats->num_nodes << " m=" << stats->num_edges
          << " avg_degree=" << Table::Num(stats->avg_degree, 2)
          << " max_degree=" << stats->max_degree
          << " components=" << stats->components << " hash=" << hash << "\n";
      return kExitOk;
    }
    case RequestType::kEvaluate: {
      auto result = DecodeEvaluateResult(response->body);
      if (!result.ok()) return Fail(err, result.status());
      out << "MNC=" << Table::Num(result->mnc)
          << " EC=" << Table::Num(result->ec)
          << " ICS=" << Table::Num(result->ics)
          << " S3=" << Table::Num(result->s3);
      if (result->has_accuracy) {
        out << " accuracy=" << Table::Num(result->accuracy);
      }
      out << "\n";
      return kExitOk;
    }
    case RequestType::kPutGraph: {
      auto result = DecodePutGraphResult(response->body);
      if (!result.ok()) return Fail(err, result.status());
      out << "stored hash=" << GraphStore::HashName(result->content_hash)
          << (result->already_present ? " (already present)" : "") << "\n";
      return kExitOk;
    }
    case RequestType::kHasGraph: {
      auto result = DecodeHasGraphResult(response->body);
      if (!result.ok()) return Fail(err, result.status());
      out << "present=" << (result->present ? 1 : 0) << "\n";
      // Absent is exit 11 so scripts can branch on it without parsing.
      return result->present ? kExitOk : kExitNoGraph;
    }
    case RequestType::kAlign:
      return PrintAlignResponse(*response, request.align, align_n1,
                                flags.GetString("out"), out, err);
    case RequestType::kAlignBatch:
    case RequestType::kSubmitJob:
    case RequestType::kJobStatus:
    case RequestType::kJobResult:
    case RequestType::kCancelJob:
      return kExitError;  // Unreachable: handled above.
  }
  return kExitError;
}

// Lists every fault-injection site compiled into this binary, one per line
// (the machine-readable counterpart of DESIGN.md §12). tools/run_chaos.sh
// iterates this output to arm each site in turn via GRAPHALIGN_FAILPOINTS.
int CmdFailpoints(const Flags& flags, std::ostream& out, std::ostream& err) {
  if (flags.Has("armed")) {
    for (const std::string& spec : ArmedFailpoints()) out << spec << "\n";
    return kExitOk;
  }
  (void)err;
  for (const std::string& name : KnownFailpoints()) out << name << "\n";
  return kExitOk;
}

// ---------------------------------------------------------------------------
// store: offline management of the content-addressed graph repository.

int CmdStoreImport(GraphStore& store, const Flags& flags, std::ostream& out,
                   std::ostream& err) {
  Result<Graph> g = Status::InvalidArgument(
      "store import requires --in FILE or --dataset NAME");
  if (flags.Has("in")) {
    g = ReadEdgeList(flags.GetString("in"));
  } else if (flags.Has("dataset")) {
    g = MakeStandIn(flags.GetString("dataset"), flags.GetSeed(),
                    flags.GetDouble("scale", 1.0));
  }
  if (!g.ok()) return Fail(err, g.status());
  bool already = false;
  auto hash = store.Put(*g, &already);
  if (!hash.ok()) return Fail(err, hash.status());
  out << "imported n=" << g->num_nodes() << " m=" << g->num_edges()
      << " hash=" << GraphStore::HashName(*hash)
      << (already ? " (already present)" : "") << "\n";
  return kExitOk;
}

int CmdStoreLs(GraphStore& store, std::ostream& out, std::ostream& err) {
  auto entries = store.List();
  if (!entries.ok()) return Fail(err, entries.status());
  for (const GraphStore::Entry& e : *entries) {
    out << GraphStore::HashName(e.hash) << " " << e.file_bytes << " bytes"
        << (e.corrupt ? " CORRUPT" : "") << "\n";
  }
  out << entries->size() << " entries\n";
  return kExitOk;
}

int CmdStoreVerify(GraphStore& store, std::ostream& out, std::ostream& err) {
  auto report = store.Fsck();
  if (!report.ok()) return Fail(err, report.status());
  out << "checked=" << report->checked << " ok=" << report->ok
      << " corrupt=" << report->corrupt << "\n";
  for (const std::string& path : report->quarantined) {
    out << "quarantined: " << path << "\n";
  }
  return report->corrupt == 0 ? kExitOk : kExitError;
}

int CmdStoreGc(GraphStore& store, std::ostream& out, std::ostream& err) {
  auto report = store.Gc();
  if (!report.ok()) return Fail(err, report.status());
  out << "removed=" << report->removed
      << " bytes_freed=" << report->bytes_freed << "\n";
  return kExitOk;
}

// `store bench --in a.el[,b.el...]`: imports each edge list, then times
// text parse-load against GST1 mmap-open (full CRC + structural
// verification included — the honest cost of the store path). Best-of-reps
// per graph; --json writes the BENCH-convention report.
int CmdStoreBench(GraphStore& store, const Flags& flags, std::ostream& out,
                  std::ostream& err) {
  const std::string in = flags.GetString("in");
  if (in.empty()) {
    return Fail(err,
                Status::InvalidArgument("store bench requires --in FILE[,..]"));
  }
  auto reps = StrictIntFlag(flags, "reps", 5);
  if (!reps.ok()) return Fail(err, reps.status());
  std::vector<std::string> paths;
  for (size_t pos = 0; pos < in.size();) {
    const size_t comma = in.find(',', pos);
    const size_t end = comma == std::string::npos ? in.size() : comma;
    if (end > pos) paths.push_back(in.substr(pos, end - pos));
    pos = end + 1;
  }
  std::ostringstream rows;
  for (size_t i = 0; i < paths.size(); ++i) {
    auto g = ReadEdgeList(paths[i]);
    if (!g.ok()) return Fail(err, g.status());
    auto hash = store.Put(*g);
    if (!hash.ok()) return Fail(err, hash.status());
    const std::string gst_path =
        store.dir() + "/" + GraphStore::HashName(*hash) + ".gst";
    double parse_s = 0.0, mmap_s = 0.0;
    for (int r = 0; r < *reps; ++r) {
      WallTimer t;
      auto reread = ReadEdgeList(paths[i]);
      if (!reread.ok()) return Fail(err, reread.status());
      const double s = t.Seconds();
      if (r == 0 || s < parse_s) parse_s = s;
    }
    for (int r = 0; r < *reps; ++r) {
      WallTimer t;
      auto mapped = OpenGstFile(gst_path);
      if (!mapped.ok()) return Fail(err, mapped.status());
      const double s = t.Seconds();
      if (r == 0 || s < mmap_s) mmap_s = s;
    }
    const double speedup = mmap_s > 0.0 ? parse_s / mmap_s : 0.0;
    out << paths[i] << ": n=" << g->num_nodes() << " m=" << g->num_edges()
        << " parse_ms=" << Table::Num(parse_s * 1000.0, 3)
        << " mmap_ms=" << Table::Num(mmap_s * 1000.0, 3)
        << " speedup=" << Table::Num(speedup, 1) << "x\n";
    if (i > 0) rows << ",\n";
    rows << "    {\"graph\": \"" << paths[i] << "\", \"n\": " << g->num_nodes()
         << ", \"m\": " << g->num_edges()
         << ", \"parse_ms\": " << Table::Num(parse_s * 1000.0, 3)
         << ", \"mmap_ms\": " << Table::Num(mmap_s * 1000.0, 3)
         << ", \"speedup\": " << Table::Num(speedup, 1) << "}";
  }
  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    std::ofstream f(json_path);
    if (!f) {
      return Fail(err, Status::Internal("cannot write " + json_path));
    }
    f << "{\n  \"meta\": {\"bench\": \"store\", \"reps\": " << *reps
      << "},\n  \"rows\": [\n" << rows.str() << "\n  ]\n}\n";
    if (!f.flush()) {
      return Fail(err, Status::Internal("write failed: " + json_path));
    }
    out << "wrote " << json_path << "\n";
  }
  return kExitOk;
}

int CmdStore(int argc, const char* const* argv, std::ostream& out,
             std::ostream& err) {
  if (argc < 3) {
    err << "usage: graphalign store <import|ls|verify|gc|bench> --dir DIR "
           "[--flags]\n";
    return kExitUsage;
  }
  const std::string action = argv[2];
  Flags flags(argc, argv, 3);
  if (!flags.error().empty()) {
    return Fail(err, Status::InvalidArgument(flags.error()));
  }
  const std::string dir = flags.GetString("dir");
  if (dir.empty()) {
    return Fail(err, Status::InvalidArgument("store " + action +
                                             " requires --dir DIR"));
  }
  auto store = GraphStore::Open(dir);
  if (!store.ok()) return Fail(err, store.status());
  if (action == "import") return CmdStoreImport(**store, flags, out, err);
  if (action == "ls") return CmdStoreLs(**store, out, err);
  if (action == "verify" || action == "fsck") {
    return CmdStoreVerify(**store, out, err);
  }
  if (action == "gc") return CmdStoreGc(**store, out, err);
  if (action == "bench") return CmdStoreBench(**store, flags, out, err);
  err << "unknown store action: " << action
      << " (want import|ls|verify|gc|bench)\n";
  return kExitUsage;
}

// ---------------------------------------------------------------------------
// jobs: the durable async job queue (DESIGN.md §17). submit/status/result/
// cancel talk to a live daemon; ls/gc open the journal directly (the
// CmdStore model) and must not race a daemon on the same --dir.

uint64_t NowUnixMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

int CmdJobsLs(const Flags& flags, std::ostream& out, std::ostream& err) {
  JobManagerOptions options;
  options.dir = flags.GetString("dir");
  // Opening replays the journal, which also journals crash recovery for
  // any RUNNING jobs it finds — correct offline (a RUNNING job with no
  // daemon attached IS a crashed attempt), wrong against a live daemon.
  auto manager = JobManager::Open(options, NowUnixMs());
  if (!manager.ok()) return Fail(err, manager.status());
  const std::vector<JobRecord> jobs = (*manager)->List();
  for (const JobRecord& r : jobs) {
    out << GraphStore::HashName(r.job_id) << " " << JobStateName(r.state)
        << " attempts=" << r.attempts << "/" << r.max_attempts
        << " updated_ms=" << r.updated_unix_ms;
    if (!r.idem_key.empty()) out << " key=" << r.idem_key;
    if (!r.message.empty()) out << " message=" << r.message;
    out << "\n";
  }
  out << jobs.size() << " jobs\n";
  return kExitOk;
}

int CmdJobsGc(const Flags& flags, std::ostream& out, std::ostream& err) {
  JobManagerOptions options;
  options.dir = flags.GetString("dir");
  auto ttl = StrictDoubleFlag(flags, "ttl", options.ttl_seconds);
  if (!ttl.ok()) return Fail(err, ttl.status());
  options.ttl_seconds = *ttl;
  auto manager = JobManager::Open(options, NowUnixMs());
  if (!manager.ok()) return Fail(err, manager.status());
  Status gc = (*manager)->Gc(NowUnixMs());
  if (!gc.ok()) return Fail(err, gc);
  const JobManagerStats stats = (*manager)->Stats();
  out << "gced=" << stats.gced << " journal_bytes=" << stats.journal_bytes
      << "\n";
  return kExitOk;
}

int CmdJobs(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  if (argc < 3) {
    err << "usage: graphalign jobs <submit|status|result|cancel|ls|gc> "
           "[--flags]\n";
    return kExitUsage;
  }
  const std::string action = argv[2];
  Flags flags(argc, argv, 3);
  if (!flags.error().empty()) {
    return Fail(err, Status::InvalidArgument(flags.error()));
  }
  // `jobs submit` is `submit --async` under its canonical name.
  if (action == "submit") return CmdSubmit(flags, out, err, true);
  if (action == "ls" || action == "gc") {
    if (flags.GetString("dir").empty()) {
      return Fail(err, Status::InvalidArgument("jobs " + action +
                                               " requires --dir DIR"));
    }
    return action == "ls" ? CmdJobsLs(flags, out, err)
                          : CmdJobsGc(flags, out, err);
  }
  if (action != "status" && action != "result" && action != "cancel") {
    err << "unknown jobs action: " << action
        << " (want submit|status|result|cancel|ls|gc)\n";
    return kExitUsage;
  }
  ClientOptions conn;
  conn.socket_path = flags.GetString("socket");
  if (flags.Has("port")) {
    auto port = ParseStrictUint64(flags.GetString("port"));
    if (!port.ok() || *port == 0 || *port > 65535) {
      return Fail(err, Status::InvalidArgument(
                           "--port must be an integer in 1..65535, got '" +
                           flags.GetString("port") + "'"));
    }
    conn.port = static_cast<int>(*port);
  }
  conn.host = flags.GetString("host", conn.host);
  auto timeout = StrictDoubleFlag(flags, "timeout", conn.timeout_seconds);
  if (!timeout.ok()) return Fail(err, timeout.status());
  conn.timeout_seconds = *timeout;
  auto id = GraphStore::ParseHashName(flags.GetString("id"));
  if (!id.ok()) {
    return Fail(err, Status::InvalidArgument(
                         "jobs " + action +
                         " requires --id JOBID (16 hex digits, as printed "
                         "by submit --async)"));
  }
  Request request;
  request.client = flags.GetString("client");
  request.type = action == "status"   ? RequestType::kJobStatus
                 : action == "result" ? RequestType::kJobResult
                                      : RequestType::kCancelJob;
  request.job_id.job_id = *id;
  auto response = CallWithRetry(conn, request, {});
  if (!response.ok()) return Fail(err, response.status());
  out << "status=" << ResponseCodeName(response->code)
      << " elapsed_us=" << response->elapsed_us << "\n";
  return PrintJobResponse(request, *response, flags.GetString("out"), out,
                          err);
}

constexpr char kUsage[] =
    "usage: graphalign "
    "<generate|perturb|align|evaluate|stats|serve|submit|jobs|store|"
    "failpoints> [--flags]\n"
    "  generate --model {er,ba,ws,nw,pl,geometric} --n N [--p P] [--m M]\n"
    "           [--k K] [--radius R] [--seed S] --out FILE\n"
    "  perturb  --in FILE [--noise {one-way,multi-modal,two-way}]\n"
    "           [--level L] [--seed S] [--no-permute] --out FILE\n"
    "           [--truth FILE]\n"
    "  align    --g1 FILE --g2 FILE --algo NAME\n"
    "           [--assign {NN,SG,MWM,JV,native}] [--time-limit T] [--out FILE]\n"
    "           [--isolate] [--mem-limit MB] [--threads N]\n"
    "           [--sparse [--lsh-bands N] [--lsh-rows R]]\n"
    "  evaluate --g1 FILE --g2 FILE --mapping FILE [--truth FILE]\n"
    "  stats    --in FILE\n"
    "  serve    --socket PATH | --port N [--workers K] [--cache-mb M]\n"
    "           [--queue Q] [--io-timeout T] [--threads N]\n"
    "           [--cache-dir DIR] [--cache-compact-mb M] [--quota RPS]\n"
    "           [--shed] [--quarantine N] [--grace T] [--store-dir DIR]\n"
    "           [--http-port N]  (also serve the HTTP/JSON gateway; see\n"
    "           README \"HTTP API\". 0 = kernel-assigned)\n"
    "           [--jobs-dir DIR] [--job-attempts N] [--job-ttl T]\n"
    "           [--job-workers K]  (durable async jobs; see README "
    "\"Async jobs\")\n"
    "  submit   --socket PATH | [--host H] --port N [--timeout T]\n"
    "           [--retries N] [--client NAME]\n"
    "           with --ping | --shutdown | --cache-info | --stats [FILE]\n"
    "           (bare --stats prints the daemon's serving counters)\n"
    "           | --put-graph FILE | --has-graph HASH\n"
    "           | --g1 FILE --g2 FILE --algo NAME [--assign M]\n"
    "             [--time-limit T] [--mem-limit MB] [--no-cache] [--out FILE]\n"
    "             [--async [--idem-key KEY]]  (enqueue as a durable job;\n"
    "             prints the job id, exit 13)\n"
    "           | --g1-hash HASH --g2-hash HASH --algo NAME [...]\n"
    "           | --g1 FILE --g2 FILE --mapping FILE [--truth FILE]\n"
    "           | --batch JOBS.json  (K align jobs over a shared graph\n"
    "             table, one frame; graphs: {\"hash\"}|{\"file\"}|\n"
    "             {\"n\",\"edges\"}; exit 12 = mixed per-job outcomes)\n"
    "  jobs     <submit|status|result|cancel> --socket PATH | --port N\n"
    "           submit: align flags as `submit --async` [--idem-key KEY]\n"
    "           status|result|cancel: --id JOBID [--out FILE (result)]\n"
    "           <ls|gc> --dir DIR [--ttl T (gc)]  (offline journal access;\n"
    "           do not run against a live daemon's --jobs-dir)\n"
    "  store    <import|ls|verify|gc|bench> --dir DIR\n"
    "           import: --in FILE | --dataset NAME [--scale S] [--seed S]\n"
    "           bench:  --in FILE[,FILE...] [--reps N] [--json FILE]\n"
    "  failpoints [--armed]   list fault-injection sites (or the armed set)\n"
    "algorithms: IsoRank GRAAL NSD LREA REGAL GWL S-GWL CONE GRASP\n"
    "exit codes (align/submit): 0 ok, 1 error, 2 usage, 3 DNF, 4 crash,\n"
    "  5 OOM, 6 server busy, 7 numerical failure, 8 server shutting down,\n"
    "  9 shed (queue wait ate the deadline; transient, retried by\n"
    "  --retries), 10 quarantined (signature kept crashing; permanent),\n"
    "  11 no graph (submit-by-hash named a hash the store does not hold;\n"
    "  re-upload with --put-graph), 12 partial (a batch finished with\n"
    "  mixed per-job outcomes; inspect the per-job codes), 13 accepted\n"
    "  (async job enqueued or still running; poll jobs status), 14 no job\n"
    "  (unknown or GC-expired job id), 15 conflict (idem-key bound to\n"
    "  different content, or cancelling a finished job)\n"
    "fault injection: GRAPHALIGN_FAILPOINTS=\"site=mode[:arg],...\" with\n"
    "  modes error|once|prob:P|nan|delay-ms:N|crash|oom (see DESIGN.md §12)\n";

}  // namespace

int RunCli(int argc, const char* const* argv, std::ostream& out,
           std::ostream& err) {
  if (argc < 2) {
    err << kUsage;
    return kExitUsage;
  }
  const std::string cmd = argv[1];
  // `store` and `jobs` have a positional action word; they parse their own
  // flags.
  if (cmd == "store") return CmdStore(argc, argv, out, err);
  if (cmd == "jobs") return CmdJobs(argc, argv, out, err);
  Flags flags(argc, argv, 2);
  if (!flags.error().empty()) {
    return Fail(err, Status::InvalidArgument(flags.error()));
  }
  if (cmd == "generate") return CmdGenerate(flags, out, err);
  if (cmd == "perturb") return CmdPerturb(flags, out, err);
  if (cmd == "align") return CmdAlign(flags, out, err);
  if (cmd == "evaluate") return CmdEvaluate(flags, out, err);
  if (cmd == "stats") return CmdStats(flags, out, err);
  if (cmd == "serve") return CmdServe(flags, out, err);
  if (cmd == "submit") return CmdSubmit(flags, out, err);
  if (cmd == "failpoints") return CmdFailpoints(flags, out, err);
  err << "unknown command: " << cmd << "\n" << kUsage;
  return kExitUsage;
}

}  // namespace graphalign
