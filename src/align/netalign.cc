#include "align/netalign.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "align/isorank.h"
#include "assignment/sparse_lap.h"

namespace graphalign {

namespace {

// Sparse candidate scores with adjacency between candidates ("squares").
struct CandidateGraph {
  std::vector<int> row;       // Source node of candidate k.
  std::vector<int> col;       // Target node of candidate k.
  std::vector<double> prior;  // Degree-prior similarity of candidate k.
  // candidate id lookup per (row, col).
  std::unordered_map<int64_t, int> index;
  int n1 = 0;
  int n2 = 0;

  int64_t Key(int i, int j) const {
    return static_cast<int64_t>(i) * n2 + j;
  }
  int Find(int i, int j) const {
    auto it = index.find(Key(i, j));
    return it == index.end() ? -1 : it->second;
  }
};

CandidateGraph BuildCandidates(const Graph& g1, const Graph& g2,
                               int per_node) {
  CandidateGraph cg;
  cg.n1 = g1.num_nodes();
  cg.n2 = g2.num_nodes();
  DenseMatrix prior = DegreeSimilarityPrior(g1, g2);
  std::vector<int> order(cg.n2);
  for (int i = 0; i < cg.n1; ++i) {
    std::iota(order.begin(), order.end(), 0);
    const double* row = prior.Row(i);
    const int c = std::min(per_node, cg.n2);
    std::partial_sort(order.begin(), order.begin() + c, order.end(),
                      [&](int a, int b) { return row[a] > row[b]; });
    for (int k = 0; k < c; ++k) {
      const int j = order[k];
      if (cg.index.emplace(cg.Key(i, j), static_cast<int>(cg.row.size()))
              .second) {
        cg.row.push_back(i);
        cg.col.push_back(j);
        cg.prior.push_back(row[j]);
      }
    }
  }
  return cg;
}

// Scores after damped neighborhood reinforcement over squares.
Result<std::vector<double>> ReinforceScores(const Graph& g1, const Graph& g2,
                                            const CandidateGraph& cg,
                                            const NetAlignOptions& options,
                                            const Deadline& deadline) {
  const size_t m = cg.row.size();
  std::vector<double> score(m);
  for (size_t k = 0; k < m; ++k) score[k] = options.alpha * cg.prior[k];

  std::vector<double> next(m);
  for (int iter = 0; iter < options.iterations; ++iter) {
    GA_RETURN_IF_EXPIRED(deadline, "NetAlign reinforcement");
    // Normalize to unit max so beta acts as a relative weight.
    double mx = 0.0;
    for (double s : score) mx = std::max(mx, s);
    const double inv = mx > 0.0 ? 1.0 / mx : 1.0;
    for (size_t k = 0; k < m; ++k) {
      const int i = cg.row[k];
      const int j = cg.col[k];
      double overlap = 0.0;
      // Squares: neighbor pairs that are themselves candidates.
      for (int i2 : g1.Neighbors(i)) {
        for (int j2 : g2.Neighbors(j)) {
          const int other = cg.Find(i2, j2);
          if (other >= 0) overlap += score[other] * inv;
        }
      }
      const double reinforced =
          options.alpha * cg.prior[k] + options.beta * overlap;
      next[k] = options.damping * score[k] + (1.0 - options.damping) * reinforced;
    }
    score.swap(next);
  }
  return score;
}

}  // namespace

Result<DenseMatrix> NetAlignAligner::ComputeSimilarityImpl(
    const Graph& g1, const Graph& g2, const Deadline& deadline) {
  GA_RETURN_IF_ERROR(ValidateInputs(g1, g2));
  if (options_.candidates_per_node < 1 || options_.iterations < 0 ||
      options_.damping < 0.0 || options_.damping >= 1.0) {
    return Status::InvalidArgument("NetAlign: bad options");
  }
  CandidateGraph cg =
      BuildCandidates(g1, g2, options_.candidates_per_node);
  GA_ASSIGN_OR_RETURN(std::vector<double> score,
                      ReinforceScores(g1, g2, cg, options_, deadline));
  DenseMatrix sim(g1.num_nodes(), g2.num_nodes());
  for (size_t k = 0; k < cg.row.size(); ++k) {
    sim(cg.row[k], cg.col[k]) = score[k];
  }
  return sim;
}

Result<Alignment> NetAlignAligner::AlignNativeImpl(const Graph& g1,
                                                   const Graph& g2,
                                                   const Deadline& deadline) {
  GA_RETURN_IF_ERROR(ValidateInputs(g1, g2));
  if (options_.candidates_per_node < 1 || options_.iterations < 0 ||
      options_.damping < 0.0 || options_.damping >= 1.0) {
    return Status::InvalidArgument("NetAlign: bad options");
  }
  CandidateGraph cg =
      BuildCandidates(g1, g2, options_.candidates_per_node);
  GA_ASSIGN_OR_RETURN(std::vector<double> score,
                      ReinforceScores(g1, g2, cg, options_, deadline));
  std::vector<SparseCandidate> candidates;
  candidates.reserve(cg.row.size());
  for (size_t k = 0; k < cg.row.size(); ++k) {
    candidates.push_back({cg.row[k], cg.col[k], score[k]});
  }
  return SparseLapAssign(g1.num_nodes(), g2.num_nodes(), candidates, deadline);
}

}  // namespace graphalign
