#!/usr/bin/env bash
# Builds the sparse-pipeline test binary under -DGRAPHALIGN_SANITIZE=address
# and runs it: the MinHash/LSH candidate generator and the sparse LAP solver
# are the newest pointer-heavy code in the tree, so they get an ASan pass in
# the test matrix (DESIGN.md §13), not just the release build. The protocol
# fuzz suite rides along: randomized/truncated/bit-flipped frames into the
# wire decoders are exactly the inputs where ASan turns a silent overread
# into a hard failure.
#
# Usage: tools/run_sanitize.sh [source-dir]
# Exits 77 (the ctest SKIP_RETURN_CODE) when the toolchain cannot produce an
# ASan binary, so environments without libasan skip instead of failing.
set -euo pipefail

SRC="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
BUILD="$SRC/build-asan"

# Probe: can this toolchain link -fsanitize=address at all?
PROBE="$(mktemp -d)"
trap 'rm -rf "$PROBE"' EXIT
echo 'int main() { return 0; }' > "$PROBE/probe.cc"
if ! c++ -fsanitize=address "$PROBE/probe.cc" -o "$PROBE/probe" 2>/dev/null; then
  echo "toolchain cannot link -fsanitize=address; skipping" >&2
  exit 77
fi

cmake -S "$SRC" -B "$BUILD" -DGRAPHALIGN_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
# Only the sparse suite, the protocol fuzz suite, and their dependency
# closure — not the whole tree.
cmake --build "$BUILD" --target sparse_test protocol_fuzz_test -j > /dev/null

# halt_on_error keeps the failure visible to ctest; detect_leaks stays on so
# candidate buffers and solver scratch are leak-checked too.
ASAN_OPTIONS=halt_on_error=1 "$BUILD/tests/sparse_test"
echo "sparse pipeline is clean under AddressSanitizer"
ASAN_OPTIONS=halt_on_error=1 "$BUILD/tests/protocol_fuzz_test"
echo "protocol decoders are clean under AddressSanitizer"
