#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/failpoint.h"
#include "common/random.h"

namespace graphalign {

namespace {

// Householder reduction of symmetric `a` (n x n) to tridiagonal form.
// On exit `a` holds the accumulated orthogonal transform Q, `d` the diagonal
// and `e` the subdiagonal (e[0] unused). The deadline is polled between
// Householder columns (each column costs O(n^2)).
Status Tred2(DenseMatrix* a_io, const Deadline& deadline,
             std::vector<double>* d_out, std::vector<double>* e_out) {
  DenseMatrix& a = *a_io;
  const int n = a.rows();
  std::vector<double>& d = *d_out;
  std::vector<double>& e = *e_out;
  d.assign(n, 0.0);
  e.assign(n, 0.0);

  DeadlineChecker checker(deadline, /*stride=*/8);
  for (int i = n - 1; i >= 1; --i) {
    GA_RETURN_IF_EXPIRED(checker, "SymmetricEigen");
    const int l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (int k = 0; k <= l; ++k) scale += std::fabs(a(i, k));
      if (scale == 0.0) {
        e[i] = a(i, l);
      } else {
        for (int k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        f = 0.0;
        for (int j = 0; j <= l; ++j) {
          a(j, i) = a(i, j) / h;
          g = 0.0;
          for (int k = 0; k <= j; ++k) g += a(j, k) * a(i, k);
          for (int k = j + 1; k <= l; ++k) g += a(k, j) * a(i, k);
          e[j] = g / h;
          f += e[j] * a(i, j);
        }
        const double hh = f / (h + h);
        for (int j = 0; j <= l; ++j) {
          f = a(i, j);
          e[j] = g = e[j] - hh * f;
          for (int k = 0; k <= j; ++k) {
            a(j, k) -= f * e[k] + g * a(i, k);
          }
        }
      }
    } else {
      e[i] = a(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  for (int i = 0; i < n; ++i) {
    GA_RETURN_IF_EXPIRED(checker, "SymmetricEigen");
    const int l = i - 1;
    if (d[i] != 0.0) {
      for (int j = 0; j <= l; ++j) {
        double g = 0.0;
        for (int k = 0; k <= l; ++k) g += a(i, k) * a(k, j);
        for (int k = 0; k <= l; ++k) a(k, j) -= g * a(k, i);
      }
    }
    d[i] = a(i, i);
    a(i, i) = 1.0;
    for (int j = 0; j <= l; ++j) a(j, i) = a(i, j) = 0.0;
  }
  return Status::Ok();
}

// Implicit-shift QL on a tridiagonal matrix; `z` accumulates eigenvectors
// (initialized to the transform from Tred2, or identity).
Status Tql2(std::vector<double>* d_io, std::vector<double>* e_io,
            const Deadline& deadline, DenseMatrix* z_io) {
  std::vector<double>& d = *d_io;
  std::vector<double>& e = *e_io;
  DenseMatrix& z = *z_io;
  const int n = static_cast<int>(d.size());

  for (int i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  DeadlineChecker checker(deadline, /*stride=*/16);
  for (int l = 0; l < n; ++l) {
    int iter = 0;
    int m;
    do {
      GA_RETURN_IF_EXPIRED(checker, "SymmetricEigen");
      for (m = l; m < n - 1; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-14 * dd) break;
      }
      if (m != l) {
        if (iter++ == 100) {
          // Recoverable numerics, not a bug: callers can degrade (fall back
          // to a cheaper similarity + greedy assignment) instead of failing.
          return Status::Numerical("tql2: QL iteration did not converge");
        }
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + (g >= 0.0 ? std::fabs(r) : -std::fabs(r)));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        int i;
        for (i = m - 1; i >= l; --i) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (int k = 0; k < n; ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (r == 0.0 && i >= l) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  return Status::Ok();
}

void SortAscending(SymmetricEigenResult* res) {
  const int n = static_cast<int>(res->eigenvalues.size());
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return res->eigenvalues[a] < res->eigenvalues[b];
  });
  std::vector<double> vals(n);
  DenseMatrix vecs(res->eigenvectors.rows(), n);
  for (int j = 0; j < n; ++j) {
    vals[j] = res->eigenvalues[order[j]];
    for (int r = 0; r < res->eigenvectors.rows(); ++r) {
      vecs(r, j) = res->eigenvectors(r, order[j]);
    }
  }
  res->eigenvalues = std::move(vals);
  res->eigenvectors = std::move(vecs);
}

}  // namespace

Result<SymmetricEigenResult> SymmetricEigen(DenseMatrix a,
                                            const Deadline& deadline) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SymmetricEigen: matrix is not square");
  }
  const int n = a.rows();
  if (n == 0) {
    return SymmetricEigenResult{{}, DenseMatrix(0, 0)};
  }
  GA_FAILPOINT_STATUS("linalg.eigen.no-converge",
                      Status::Numerical("tql2: QL iteration did not converge"));
  std::vector<double> d;
  std::vector<double> e;
  GA_RETURN_IF_ERROR(Tred2(&a, deadline, &d, &e));
  GA_RETURN_IF_ERROR(Tql2(&d, &e, deadline, &a));
  SymmetricEigenResult res{std::move(d), std::move(a)};
  SortAscending(&res);
  return res;
}

Result<SymmetricEigenResult> LanczosEigen(const LinearOperator& op, int n,
                                          int k, SpectrumEnd end, int steps,
                                          uint64_t seed,
                                          const Deadline& deadline) {
  if (n <= 0) return Status::InvalidArgument("LanczosEigen: n must be > 0");
  if (k <= 0 || k > n) {
    return Status::InvalidArgument("LanczosEigen: need 0 < k <= n");
  }
  GA_FAILPOINT_STATUS(
      "linalg.lanczos.error",
      Status::Numerical("LanczosEigen: iteration lost orthogonality"));
  int m = steps > 0 ? steps : std::max(2 * k + 20, 40);
  m = std::min(m, n);
  if (m < k) m = k;

  Rng rng(seed);
  // Lanczos basis, rows are basis vectors (m x n).
  std::vector<std::vector<double>> basis;
  basis.reserve(m);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Normal();
  NormalizeInPlace(&v);
  basis.push_back(v);

  std::vector<double> alpha;
  std::vector<double> beta;  // beta[j] couples basis[j] and basis[j+1].
  std::vector<double> w(n);

  DeadlineChecker checker(deadline, /*stride=*/4);
  for (int j = 0; j < m; ++j) {
    GA_RETURN_IF_EXPIRED(checker, "LanczosEigen");
    op(basis[j], &w);
    const double a = Dot(w, basis[j]);
    alpha.push_back(a);
    if (j + 1 == m) break;
    Axpy(-a, basis[j], &w);
    if (j > 0) Axpy(-beta[j - 1], basis[j - 1], &w);
    // Full reorthogonalization (twice for numerical safety).
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& q : basis) Axpy(-Dot(w, q), q, &w);
    }
    double b = Norm2(w);
    if (b < 1e-12) {
      // Invariant subspace found: restart with a random orthogonal vector.
      for (double& x : w) x = rng.Normal();
      for (int pass = 0; pass < 2; ++pass) {
        for (const auto& q : basis) Axpy(-Dot(w, q), q, &w);
      }
      b = Norm2(w);
      if (b < 1e-12) {
        m = j + 1;  // The whole space is exhausted.
        break;
      }
      beta.push_back(0.0);
    } else {
      beta.push_back(b);
    }
    for (double& x : w) x /= b;
    basis.push_back(w);
  }

  const int dim = static_cast<int>(alpha.size());
  DenseMatrix t(dim, dim);
  for (int i = 0; i < dim; ++i) {
    t(i, i) = alpha[i];
    if (i + 1 < dim) {
      t(i, i + 1) = beta[i];
      t(i + 1, i) = beta[i];
    }
  }
  GA_ASSIGN_OR_RETURN(SymmetricEigenResult tri,
                      SymmetricEigen(std::move(t), deadline));

  const int kk = std::min(k, dim);
  SymmetricEigenResult out;
  out.eigenvalues.resize(kk);
  out.eigenvectors = DenseMatrix(n, kk);
  for (int j = 0; j < kk; ++j) {
    const int src = end == SpectrumEnd::kSmallest ? j : dim - kk + j;
    out.eigenvalues[j] = tri.eigenvalues[src];
    for (int i = 0; i < dim; ++i) {
      const double s = tri.eigenvectors(i, src);
      if (s == 0.0) continue;
      const std::vector<double>& q = basis[i];
      for (int r = 0; r < n; ++r) out.eigenvectors(r, j) += s * q[r];
    }
  }
  return out;
}

}  // namespace graphalign
