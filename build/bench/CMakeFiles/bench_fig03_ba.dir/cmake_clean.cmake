file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_ba.dir/bench_fig03_ba.cc.o"
  "CMakeFiles/bench_fig03_ba.dir/bench_fig03_ba.cc.o.d"
  "bench_fig03_ba"
  "bench_fig03_ba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_ba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
