#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "assignment/assignment.h"
#include "assignment/sparse_lap.h"
#include "common/random.h"

namespace graphalign {
namespace {

// Exhaustive optimal LAP value for small square matrices.
double BruteForceBest(const DenseMatrix& sim) {
  const int n = sim.rows();
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = -1e300;
  do {
    double s = 0.0;
    for (int i = 0; i < n; ++i) s += sim(i, perm[i]);
    best = std::max(best, s);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

bool IsOneToOne(const Alignment& a) {
  std::set<int> used;
  for (int x : a) {
    if (x < 0) continue;
    if (!used.insert(x).second) return false;
  }
  return true;
}

DenseMatrix RandomSim(int n, int m, Rng* rng) {
  DenseMatrix s(n, m);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) s(i, j) = rng->Uniform();
  }
  return s;
}

TEST(NearestNeighborTest, PicksRowArgmax) {
  DenseMatrix sim = DenseMatrix::FromRows({{0.1, 0.9}, {0.8, 0.2}});
  auto a = NearestNeighborAssign(sim);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)[0], 1);
  EXPECT_EQ((*a)[1], 0);
}

TEST(NearestNeighborTest, AllowsManyToOne) {
  DenseMatrix sim = DenseMatrix::FromRows({{0.9, 0.1}, {0.8, 0.2}});
  auto a = NearestNeighborAssign(sim);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)[0], 0);
  EXPECT_EQ((*a)[1], 0);  // Same target twice: NN is many-to-one.
}

TEST(SortGreedyTest, OneToOneAndGreedyOrder) {
  DenseMatrix sim = DenseMatrix::FromRows({{0.9, 0.8}, {0.85, 0.1}});
  auto a = SortGreedyAssign(sim);
  ASSERT_TRUE(a.ok());
  // Greedy takes (0,0)=0.9 first, forcing (1,?)... 1's best left is col 1.
  EXPECT_EQ((*a)[0], 0);
  EXPECT_EQ((*a)[1], 1);
  EXPECT_TRUE(IsOneToOne(*a));
}

TEST(SortGreedyTest, GreedyIsNotAlwaysOptimal) {
  // Classic counterexample: greedy picks 1.0 then 0.0 (total 1.0);
  // optimum is 0.9 + 0.9 = 1.8.
  DenseMatrix sim = DenseMatrix::FromRows({{1.0, 0.9}, {0.9, 0.0}});
  auto greedy = SortGreedyAssign(sim);
  auto optimal = HungarianAssign(sim);
  ASSERT_TRUE(greedy.ok() && optimal.ok());
  EXPECT_LT(AlignmentScore(sim, *greedy), AlignmentScore(sim, *optimal));
}

TEST(HungarianTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + static_cast<int>(rng.UniformInt(uint64_t{5}));
    DenseMatrix sim = RandomSim(n, n, &rng);
    auto a = HungarianAssign(sim);
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE(IsOneToOne(*a));
    EXPECT_NEAR(AlignmentScore(sim, *a), BruteForceBest(sim), 1e-9);
  }
}

TEST(JonkerVolgenantTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + static_cast<int>(rng.UniformInt(uint64_t{5}));
    DenseMatrix sim = RandomSim(n, n, &rng);
    auto a = JonkerVolgenantAssign(sim);
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE(IsOneToOne(*a));
    EXPECT_NEAR(AlignmentScore(sim, *a), BruteForceBest(sim), 1e-9);
  }
}

TEST(LapSolversTest, HungarianAndJvAgreeOnLargerInstances) {
  Rng rng(3);
  for (int n : {10, 40, 120}) {
    DenseMatrix sim = RandomSim(n, n, &rng);
    auto h = HungarianAssign(sim);
    auto jv = JonkerVolgenantAssign(sim);
    ASSERT_TRUE(h.ok() && jv.ok());
    EXPECT_NEAR(AlignmentScore(sim, *h), AlignmentScore(sim, *jv), 1e-8)
        << "n=" << n;
  }
}

TEST(LapSolversTest, RectangularMatrices) {
  Rng rng(4);
  // Wide: fewer sources than targets.
  DenseMatrix wide = RandomSim(3, 6, &rng);
  for (auto method : {AssignmentMethod::kHungarian,
                      AssignmentMethod::kJonkerVolgenant,
                      AssignmentMethod::kSortGreedy}) {
    auto a = ExtractAlignment(wide, method);
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE(IsOneToOne(*a));
    int matched = 0;
    for (int x : *a) matched += (x >= 0);
    EXPECT_EQ(matched, 3);
  }
  // Tall: more sources than targets — some sources stay unmatched.
  DenseMatrix tall = RandomSim(6, 3, &rng);
  for (auto method : {AssignmentMethod::kHungarian,
                      AssignmentMethod::kJonkerVolgenant,
                      AssignmentMethod::kSortGreedy}) {
    auto a = ExtractAlignment(tall, method);
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE(IsOneToOne(*a));
    int matched = 0;
    for (int x : *a) matched += (x >= 0);
    EXPECT_EQ(matched, 3) << AssignmentMethodName(method);
  }
}

TEST(LapSolversTest, OptimalBeatsOrTiesGreedyAlways) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    DenseMatrix sim = RandomSim(15, 15, &rng);
    auto sg = SortGreedyAssign(sim);
    auto jv = JonkerVolgenantAssign(sim);
    ASSERT_TRUE(sg.ok() && jv.ok());
    EXPECT_GE(AlignmentScore(sim, *jv), AlignmentScore(sim, *sg) - 1e-9);
  }
}

TEST(LapSolversTest, NegativeSimilaritiesHandled) {
  Rng rng(6);
  DenseMatrix sim(8, 8);
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j) sim(i, j) = rng.Normal();
  auto h = HungarianAssign(sim);
  auto jv = JonkerVolgenantAssign(sim);
  ASSERT_TRUE(h.ok() && jv.ok());
  EXPECT_NEAR(AlignmentScore(sim, *h), AlignmentScore(sim, *jv), 1e-8);
}

TEST(LapSolversTest, IdentityOnDiagonalDominantMatrix) {
  const int n = 50;
  DenseMatrix sim(n, n, 0.1);
  for (int i = 0; i < n; ++i) sim(i, i) = 1.0;
  for (auto method :
       {AssignmentMethod::kNearestNeighbor, AssignmentMethod::kSortGreedy,
        AssignmentMethod::kHungarian, AssignmentMethod::kJonkerVolgenant}) {
    auto a = ExtractAlignment(sim, method);
    ASSERT_TRUE(a.ok());
    for (int i = 0; i < n; ++i) EXPECT_EQ((*a)[i], i);
  }
}

TEST(LapSolversTest, EmptyMatricesRejected) {
  DenseMatrix empty(0, 0);
  EXPECT_FALSE(NearestNeighborAssign(empty).ok());
  EXPECT_FALSE(SortGreedyAssign(empty).ok());
  EXPECT_FALSE(HungarianAssign(empty).ok());
  EXPECT_FALSE(JonkerVolgenantAssign(empty).ok());
}

TEST(AssignmentMethodTest, Names) {
  EXPECT_STREQ(AssignmentMethodName(AssignmentMethod::kNearestNeighbor), "NN");
  EXPECT_STREQ(AssignmentMethodName(AssignmentMethod::kSortGreedy), "SG");
  EXPECT_STREQ(AssignmentMethodName(AssignmentMethod::kHungarian), "MWM");
  EXPECT_STREQ(AssignmentMethodName(AssignmentMethod::kJonkerVolgenant), "JV");
}

// ---------------------------------------------------------------------------
// Sparse LAP.

TEST(SparseLapTest, MatchesDenseJvOnFullCandidateSet) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 12;
    DenseMatrix sim = RandomSim(n, n, &rng);
    std::vector<SparseCandidate> cands;
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) cands.push_back({i, j, sim(i, j)});
    auto sparse = SparseLapAssign(n, n, cands);
    auto dense = JonkerVolgenantAssign(sim);
    ASSERT_TRUE(sparse.ok() && dense.ok());
    EXPECT_NEAR(AlignmentScore(sim, *sparse), AlignmentScore(sim, *dense),
                1e-8);
  }
}

TEST(SparseLapTest, RespectsCandidateRestrictions) {
  // Only the anti-diagonal is allowed.
  std::vector<SparseCandidate> cands = {{0, 2, 1.0}, {1, 1, 1.0}, {2, 0, 1.0}};
  auto a = SparseLapAssign(3, 3, cands);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)[0], 2);
  EXPECT_EQ((*a)[1], 1);
  EXPECT_EQ((*a)[2], 0);
}

TEST(SparseLapTest, MaximizesCardinalityFirst) {
  // Row 0 could grab col 0 (sim 10), leaving row 1 unmatched; max
  // cardinality requires 0->1, 1->0.
  std::vector<SparseCandidate> cands = {
      {0, 0, 10.0}, {0, 1, 1.0}, {1, 0, 1.0}};
  auto a = SparseLapAssign(2, 2, cands);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)[0], 1);
  EXPECT_EQ((*a)[1], 0);
}

TEST(SparseLapTest, UnmatchableRowsGetMinusOne) {
  std::vector<SparseCandidate> cands = {{0, 0, 1.0}, {1, 0, 2.0}};
  auto a = SparseLapAssign(3, 1, cands);
  ASSERT_TRUE(a.ok());
  int matched = 0;
  for (int x : *a) matched += (x >= 0);
  EXPECT_EQ(matched, 1);
  EXPECT_EQ((*a)[2], -1);
  // The higher-similarity row wins the single column.
  EXPECT_EQ((*a)[1], 0);
}

TEST(SparseLapTest, ValidatesInput) {
  EXPECT_FALSE(SparseLapAssign(2, 2, {{5, 0, 1.0}}).ok());
  EXPECT_FALSE(SparseLapAssign(2, 2, {{0, -1, 1.0}}).ok());
  EXPECT_FALSE(SparseLapAssign(-1, 2, {}).ok());
  EXPECT_FALSE(SparseLapAssign(2, 2, {{0, 0, std::nan("")}}).ok());
  auto empty = SparseLapAssign(3, 3, {});
  ASSERT_TRUE(empty.ok());
  for (int x : *empty) EXPECT_EQ(x, -1);
}

TEST(SparseLapTest, DuplicatePairsKeepTheHighestSimilarity) {
  // LSH bands can emit the same (row, col) more than once; the solver must
  // dedup keeping the best score. The duplicate (0,0) is decisive here:
  // deduped to 0.9, the diagonal scores 0.9 + 0.2 = 1.1 and beats the
  // anti-diagonal's 0.3 + 0.3 = 0.6; if the 0.1 copy were kept instead, the
  // anti-diagonal would win.
  const std::vector<SparseCandidate> cands = {
      {0, 0, 0.1}, {0, 0, 0.9}, {0, 0, 0.5},
      {0, 1, 0.3}, {1, 0, 0.3}, {1, 1, 0.2}};
  auto a = SparseLapAssign(2, 2, cands);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)[0], 0);
  EXPECT_EQ((*a)[1], 1);
}

TEST(SparseLapTest, AllNegativeSimilaritiesStillMatch) {
  // max_sim must clamp at 0.0 so costs (max_sim - sim) stay strictly
  // positive; a negative max_sim would make some costs negative and break
  // Dijkstra's non-negativity requirement.
  std::vector<SparseCandidate> cands = {
      {0, 0, -0.5}, {0, 1, -2.0}, {1, 0, -3.0}, {1, 1, -0.1}};
  auto a = SparseLapAssign(2, 2, cands);
  ASSERT_TRUE(a.ok());
  // Full cardinality, and the best total (-0.5 + -0.1) wins.
  EXPECT_EQ((*a)[0], 0);
  EXPECT_EQ((*a)[1], 1);
}

TEST(SparseLapTest, LargeRandomAgreesWithDense) {
  Rng rng(8);
  const int n = 60;
  DenseMatrix sim = RandomSim(n, n, &rng);
  std::vector<SparseCandidate> cands;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) cands.push_back({i, j, sim(i, j)});
  auto sparse = SparseLapAssign(n, n, cands);
  auto dense = HungarianAssign(sim);
  ASSERT_TRUE(sparse.ok() && dense.ok());
  EXPECT_NEAR(AlignmentScore(sim, *sparse), AlignmentScore(sim, *dense), 1e-7);
}

}  // namespace
}  // namespace graphalign
