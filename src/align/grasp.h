// GRASP (Hermanns et al. 2021), paper §3.8: aligns graphs through spectral
// signatures. Pipeline:
//   1. k smallest eigenpairs of each normalized Laplacian (Lanczos; dense
//      solver for small graphs).
//   2. Heat-kernel diagonals at q log-spaced time steps as corresponding
//      functions (Eq. 13).
//   3. Base alignment of the two eigenbases via an orthogonal functional-map
//      fit M minimizing ||Phi^T F - M Psi^T G||_F (the coupling term of
//      Eq. 14; the diagonalization-promoting term is approximated by the
//      orthogonality of M — see DESIGN.md).
//   4. Diagonal map C between aligned coefficient spaces by least squares.
//   5. Node correspondence by linear assignment (JV) on spectral-embedding
//      distances.
#ifndef GRAPHALIGN_ALIGN_GRASP_H_
#define GRAPHALIGN_ALIGN_GRASP_H_

#include <string>

#include "align/aligner.h"

namespace graphalign {

struct GraspOptions {
  int k = 20;          // Aligned eigenvectors (Table 1).
  int q = 100;         // Heat-kernel time steps (Table 1).
  double t_min = 0.1;  // Smallest diffusion time.
  double t_max = 50.0;  // Largest diffusion time.
  // Eigenpairs used to synthesize the heat kernels (the functional
  // descriptors); only the k smallest are base-aligned. Below n = 1200 the
  // dense eigensolver provides the full spectrum; beyond, Lanczos computes
  // this many pairs.
  int k_functions = 150;
};

class GraspAligner : public Aligner {
 public:
  explicit GraspAligner(const GraspOptions& options = {})
      : options_(options) {}

  std::string name() const override { return "GRASP"; }
  AssignmentMethod default_assignment() const override {
    return AssignmentMethod::kJonkerVolgenant;  // As proposed (Table 1).
  }
 protected:
  Result<DenseMatrix> ComputeSimilarityImpl(const Graph& g1, const Graph& g2,
                                            const Deadline& deadline) override;

 private:
  GraspOptions options_;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_ALIGN_GRASP_H_
