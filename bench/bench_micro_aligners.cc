// Google-benchmark microbenchmarks for the similarity stage of every
// alignment algorithm at a fixed small size — a quick regression guard for
// the relative runtime ordering (NSD/REGAL/LREA fast; IsoRank/GWL slow).
#include <benchmark/benchmark.h>

#include "align/aligner.h"
#include "common/random.h"
#include "graph/generators.h"
#include "noise/noise.h"

namespace graphalign {
namespace {

const AlignmentProblem& Problem() {
  static const AlignmentProblem* problem = [] {
    Rng rng(42);
    auto base = PowerlawCluster(150, 5, 0.5, &rng);
    GA_CHECK(base.ok());
    NoiseOptions noise;
    noise.level = 0.02;
    auto p = MakeAlignmentProblem(*base, noise, &rng);
    GA_CHECK(p.ok());
    return new AlignmentProblem(*std::move(p));
  }();
  return *problem;
}

void RunSimilarity(benchmark::State& state, const std::string& name) {
  auto aligner = MakeAligner(name);
  GA_CHECK(aligner.ok());
  for (auto _ : state) {
    auto sim = (*aligner)->ComputeSimilarity(Problem().g1, Problem().g2);
    GA_CHECK(sim.ok());
    benchmark::DoNotOptimize(sim);
  }
}

void BM_IsoRank(benchmark::State& s) { RunSimilarity(s, "IsoRank"); }
void BM_Graal(benchmark::State& s) { RunSimilarity(s, "GRAAL"); }
void BM_Nsd(benchmark::State& s) { RunSimilarity(s, "NSD"); }
void BM_Lrea(benchmark::State& s) { RunSimilarity(s, "LREA"); }
void BM_Regal(benchmark::State& s) { RunSimilarity(s, "REGAL"); }
void BM_Gwl(benchmark::State& s) { RunSimilarity(s, "GWL"); }
void BM_Sgwl(benchmark::State& s) { RunSimilarity(s, "S-GWL"); }
void BM_Cone(benchmark::State& s) { RunSimilarity(s, "CONE"); }
void BM_Grasp(benchmark::State& s) { RunSimilarity(s, "GRASP"); }

BENCHMARK(BM_IsoRank);
BENCHMARK(BM_Graal);
BENCHMARK(BM_Nsd);
BENCHMARK(BM_Lrea);
BENCHMARK(BM_Regal);
BENCHMARK(BM_Gwl);
BENCHMARK(BM_Sgwl);
BENCHMARK(BM_Cone);
BENCHMARK(BM_Grasp);

}  // namespace
}  // namespace graphalign

BENCHMARK_MAIN();
