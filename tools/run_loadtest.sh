#!/usr/bin/env bash
# Overload/chaos walkthrough of the hardened daemon (DESIGN.md §14):
#   1. a daemon with the durable cache, shedding, and quarantine enabled —
#      plus probabilistic failpoints in the request and cache-append paths —
#      takes a mixed hit/miss/poison closed-loop load from tools/loadgen.
#      Every response must be typed (zero transport errors), the daemon must
#      outlive the run, and the poison mix must trip at least one quarantine.
#   2. deterministic quarantine: the same _CRASH signature three times is
#      three typed CRASHes; the fourth submit exits 10 (QUARANTINED) without
#      a fork.
#   3. warm restart: SIGTERM-drain a daemon whose cache log holds a result,
#      restart on the same --cache-dir, and the identical resubmit must be a
#      cache hit with zero corrupt-record crashes.
#   4. deterministic shed + watchdog: a non-cooperative _HANG occupies the
#      single worker until the watchdog SIGKILLs it past deadline + grace;
#      the NSD request queued behind it has outwaited its own deadline and
#      exits 9 (SHED) instead of forking guaranteed-late work.
#
# Usage: tools/run_loadtest.sh [graphalign-binary] [loadgen-binary] [--full]
#   --full runs the larger load profile (more clients/requests) and is what
#   produced the checked-in BENCH_loadgen.json; the default is a short smoke
#   profile suitable for ctest.
set -euo pipefail

TOOL="${1:-build/src/cli/graphalign}"
LOADGEN="${2:-build/src/loadgen}"
PROFILE="${3:-}"
for bin in "$TOOL" "$LOADGEN"; do
  if [[ ! -x "$bin" ]]; then
    echo "binary not found: $bin (build it first)" >&2
    exit 1
  fi
done

CLIENTS=4
REQUESTS=25
if [[ "$PROFILE" == "--full" ]]; then
  CLIENTS=8
  REQUESTS=100
fi

WORK="$(mktemp -d)"
SOCK="$WORK/ga.sock"
DAEMON_PID=""
cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2> /dev/null; then
    kill -9 "$DAEMON_PID" 2> /dev/null || true
    wait "$DAEMON_PID" 2> /dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

# Readiness via the client's own --retries backoff; fail fast with the
# daemon log if the process died during startup.
wait_ready() {
  local up=0
  for _ in 1 2 3; do
    if "$TOOL" submit --socket "$SOCK" --ping --retries 4 > /dev/null 2>&1; then
      up=1
      break
    fi
    kill -0 "$DAEMON_PID" 2> /dev/null || break
  done
  if [[ "$up" != 1 ]]; then
    echo "daemon never came up (or died during startup):" >&2
    cat "$WORK/daemon.log" >&2
    return 1
  fi
}

stop_daemon_sigterm() {
  kill -TERM "$DAEMON_PID"
  for _ in $(seq 1 100); do
    kill -0 "$DAEMON_PID" 2> /dev/null || break
    sleep 0.1
  done
  if kill -0 "$DAEMON_PID" 2> /dev/null; then
    echo "daemon did not drain on SIGTERM" >&2
    cat "$WORK/daemon.log" >&2
    return 1
  fi
  wait "$DAEMON_PID" 2> /dev/null || true
  DAEMON_PID=""
}

echo "== 0/4 generate a graph pair =="
"$TOOL" generate --model er --n 60 --p 0.1 --seed 7 --out "$WORK/g1.txt"
"$TOOL" perturb --in "$WORK/g1.txt" --noise one-way --level 0.05 --seed 8 \
  --out "$WORK/g2.txt"

echo "== 1/4 chaos load: typed answers only, daemon outlives the run =="
GRAPHALIGN_FAILPOINTS="server.request.error=prob:0.05,server.cache.append.error=prob:0.2" \
  "$TOOL" serve --socket "$SOCK" --workers 4 --cache-mb 16 \
  --cache-dir "$WORK/cache_a" --shed --quarantine 3 \
  > "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
wait_ready

lg_rc=0
"$LOADGEN" --socket "$SOCK" --clients "$CLIENTS" --requests "$REQUESTS" \
  --mix hit:5,miss:3,degraded:1,poison:1 --seed 42 --deadline-ms 5000 \
  --json "$WORK/loadgen.json" > "$WORK/loadgen.out" 2>&1 || lg_rc=$?
cat "$WORK/loadgen.out"
if [[ "$lg_rc" != 0 ]]; then
  echo "loadgen saw transport errors — the daemon dropped clients" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
fi
kill -0 "$DAEMON_PID" 2> /dev/null || {
  echo "daemon died under load:" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
}
"$TOOL" submit --socket "$SOCK" --stats > "$WORK/stats.out"
cat "$WORK/stats.out"
grep -q "signatures=0" "$WORK/stats.out" && {
  echo "poison mix never tripped the quarantine:" >&2
  cat "$WORK/stats.out" >&2
  exit 1
}
"$TOOL" submit --socket "$SOCK" --shutdown > /dev/null
wait "$DAEMON_PID" 2> /dev/null || true
DAEMON_PID=""
echo "chaos load served typed; quarantine tripped under the poison mix"

echo "== 2/4 deterministic quarantine at the threshold =="
"$TOOL" serve --socket "$SOCK" --workers 2 --cache-dir "$WORK/cache_b" \
  --quarantine 3 > "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
wait_ready
for i in 1 2 3; do
  rc=0
  "$TOOL" submit --socket "$SOCK" --g1 "$WORK/g1.txt" --g2 "$WORK/g2.txt" \
    --algo _CRASH > /dev/null 2>&1 || rc=$?
  if [[ "$rc" != 4 ]]; then
    echo "crash #$i: expected typed CRASH (rc=4), got rc=$rc" >&2
    exit 1
  fi
done
rc=0
"$TOOL" submit --socket "$SOCK" --g1 "$WORK/g1.txt" --g2 "$WORK/g2.txt" \
  --algo _CRASH > "$WORK/q.out" 2> "$WORK/q.err" || rc=$?
if [[ "$rc" != 10 ]] || ! grep -q "status=QUARANTINED" "$WORK/q.out"; then
  echo "expected QUARANTINED (rc=10) at the threshold, got rc=$rc:" >&2
  cat "$WORK/q.out" "$WORK/q.err" >&2
  exit 1
fi
echo "three typed CRASHes, then QUARANTINED without a fork"

echo "== 3/4 SIGTERM, restart on the same --cache-dir: warm cache =="
"$TOOL" submit --socket "$SOCK" --g1 "$WORK/g1.txt" --g2 "$WORK/g2.txt" \
  --algo NSD > "$WORK/cold.out"
grep -q "cache=miss" "$WORK/cold.out" || {
  echo "pre-restart align unexpectedly warm:" >&2
  cat "$WORK/cold.out" >&2
  exit 1
}
stop_daemon_sigterm

"$TOOL" serve --socket "$SOCK" --workers 2 --cache-dir "$WORK/cache_b" \
  > "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
wait_ready
"$TOOL" submit --socket "$SOCK" --g1 "$WORK/g1.txt" --g2 "$WORK/g2.txt" \
  --algo NSD > "$WORK/warm.out"
grep -q "status=OK cache=hit" "$WORK/warm.out" || {
  echo "restart did not come back warm from the cache log:" >&2
  cat "$WORK/warm.out" "$WORK/daemon.log" >&2
  exit 1
}
"$TOOL" submit --socket "$SOCK" --stats > "$WORK/stats.out"
grep -q "crc_skipped=0 truncated_bytes=0" "$WORK/stats.out" || {
  echo "clean shutdown left a damaged cache log:" >&2
  cat "$WORK/stats.out" >&2
  exit 1
}
"$TOOL" submit --socket "$SOCK" --shutdown > /dev/null
wait "$DAEMON_PID" 2> /dev/null || true
DAEMON_PID=""
echo "restart replayed the durable log: identical resubmit was a cache hit"

echo "== 4/4 watchdog kills a hung fork; queued request is shed =="
"$TOOL" serve --socket "$SOCK" --workers 1 --shed --grace 1 \
  > "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
wait_ready
# _HANG ignores its cooperative 1s deadline; the watchdog SIGKILLs it at
# deadline + grace (~2s). The NSD behind it waits that long in the queue
# with a 300ms deadline, so shedding answers it with a typed SHED.
hang_rc=0
"$TOOL" submit --socket "$SOCK" --g1 "$WORK/g1.txt" --g2 "$WORK/g2.txt" \
  --algo _HANG --time-limit 1 > "$WORK/hang.out" 2> "$WORK/hang.err" &
HANG=$!
sleep 0.4  # Let the hang occupy the single worker.
shed_rc=0
"$TOOL" submit --socket "$SOCK" --g1 "$WORK/g1.txt" --g2 "$WORK/g2.txt" \
  --algo NSD --time-limit 0.3 > "$WORK/shed.out" 2> "$WORK/shed.err" || shed_rc=$?
wait "$HANG" || hang_rc=$?
if [[ "$shed_rc" != 9 ]] || ! grep -q "status=SHED" "$WORK/shed.out"; then
  echo "expected SHED (rc=9) for the queued request, got rc=$shed_rc:" >&2
  cat "$WORK/shed.out" "$WORK/shed.err" "$WORK/daemon.log" >&2
  exit 1
fi
if [[ "$hang_rc" != 1 ]] || ! grep -q "watchdog" "$WORK/hang.err"; then
  echo "expected a watchdog-kill ERROR for _HANG, got rc=$hang_rc:" >&2
  cat "$WORK/hang.out" "$WORK/hang.err" "$WORK/daemon.log" >&2
  exit 1
fi
"$TOOL" submit --socket "$SOCK" --stats > "$WORK/stats.out"
grep -q "watchdog_kills=0" "$WORK/stats.out" && {
  echo "watchdog kill not counted:" >&2
  cat "$WORK/stats.out" >&2
  exit 1
}
stop_daemon_sigterm
echo "watchdog killed the hung fork; the stale queued request was shed"

echo "load test passed"
