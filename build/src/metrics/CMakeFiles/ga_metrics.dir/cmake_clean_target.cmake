file(REMOVE_RECURSE
  "libga_metrics.a"
)
